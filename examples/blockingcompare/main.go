// Blockingcompare: run MFIBlocks and the ten baseline blocking techniques
// on one dataset and print a Table-10-style comparison — the fastest way
// to see why soft, key-free blocking suits this data.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
)

func main() {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 600
	gen, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pre, err := core.PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		log.Fatal(err)
	}
	truePairs := gen.Gold.TruePairs()
	truthSet := eval.NewPairSet(truePairs)
	truthIdx := make([][2]int, 0, len(truePairs))
	for _, p := range truePairs {
		truthIdx = append(truthIdx, [2]int{pre.Index(p.A), pre.Index(p.B)})
	}

	fmt.Printf("Italy-shaped set: %d records, %d true pairs, %d total pairs\n\n",
		pre.Len(), len(truePairs), pre.Len()*(pre.Len()-1)/2)
	fmt.Printf("%-12s %8s %10s %12s %10s\n", "Algorithm", "Recall", "Precision", "Comparisons", "Time")

	t0 := time.Now()
	res, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		log.Fatal(err)
	}
	m := eval.Evaluate(res.Pairs, truthSet)
	fmt.Printf("%-12s %8.3f %10.4f %12d %10s\n",
		"MFIBlocks", m.Recall, m.Precision, len(res.Pairs), time.Since(t0).Round(time.Millisecond))

	for _, b := range blocking.All() {
		t0 := time.Now()
		blocks := b.Block(pre)
		bm := blocking.EvaluateBlocks(blocks, pre.Len(), truthIdx)
		fmt.Printf("%-12s %8.3f %10.4f %12d %10s\n",
			b.Name(), bm.Recall, bm.Precision, bm.TP+bm.FP, time.Since(t0).Round(time.Millisecond))
	}
}
