// Familysearch: multi-granularity uncertain resolution — the Capelluto
// scenario of Section 6.5. Candidate pairs that are false positives for a
// single-person match (siblings sharing last name, parents, and places)
// are exactly the pairs a family-level resolution wants to keep.
//
// The example resolves the same dataset at two granularities by tuning
// the pipeline the way the paper prescribes: person-level uses the
// same-source filter and tight blocking; family-level loosens the
// sparse-neighborhood constraint and keeps same-source siblings.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func main() {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 600
	gen, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d reports, %d persons in %d families\n",
		gen.Collection.Len(), gen.Gold.Entities(), len(gen.Families))

	personTruth := eval.NewPairSet(gen.Gold.TruePairs())
	familyTruth := eval.NewPairSet(gen.Gold.FamilyPairs())

	// Person granularity: tight neighborhoods, same-source pairs dropped
	// (one witness rarely files two pages about the same person).
	person := core.NewOptions(gen.Gaz)
	person.Gazetteer = gen.Gaz
	person.Classify = false
	person.Blocking.NG = 2

	// Family granularity: denser neighborhoods and same-source pairs
	// kept — the aunt who filed pages for all three Capelluto children is
	// evidence FOR the family link, not against it.
	family := person
	family.SameSrc = false
	family.Blocking = mfiblocks.NewConfig()
	family.Blocking.NG = 5
	family.Blocking.P = 4

	resPerson, err := core.Run(person, gen.Collection)
	if err != nil {
		log.Fatal(err)
	}
	resFamily, err := core.Run(family, gen.Collection)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("the same pipeline, judged against both ground truths:")
	fmt.Printf("%-22s %28s %28s\n", "", "vs person truth", "vs family truth")
	for _, row := range []struct {
		name string
		res  *core.Resolution
	}{
		{"person-tuned run", resPerson},
		{"family-tuned run", resFamily},
	} {
		mp := eval.Evaluate(row.res.Pairs(), personTruth)
		mf := eval.Evaluate(row.res.Pairs(), familyTruth)
		fmt.Printf("%-22s  P=%.2f R=%.2f F1=%.2f       P=%.2f R=%.2f F1=%.2f\n",
			row.name, mp.Precision, mp.Recall, mp.F1, mf.Precision, mf.Recall, mf.F1)
	}

	// The paper's observation, quantified: pairs that are false positives
	// at person level but true at family level are siblings worth
	// keeping.
	siblings := 0
	for _, m := range resFamily.Matches {
		if !personTruth.Has(m.Pair) && familyTruth.Has(m.Pair) {
			siblings++
		}
	}
	fmt.Printf("\nfamily-tuned run: %d person-level false positives are real family links\n", siblings)

	// Show one reconstructed family.
	showFamily(gen, resFamily)
}

func showFamily(gen *dataset.Generated, res *core.Resolution) {
	// Find the cluster whose dominant family covers the most reports.
	type hit struct {
		entity  *core.Entity
		family  int
		covered int
		persons int
	}
	var best hit
	for _, e := range res.Clusters(0.15) {
		if len(e.Reports) < 3 {
			continue
		}
		famCount := map[int]int{}
		famPersons := map[int]map[int]bool{}
		for _, id := range e.Reports {
			f, _ := gen.Gold.Family(id)
			p, _ := gen.Gold.Entity(id)
			famCount[f]++
			if famPersons[f] == nil {
				famPersons[f] = map[int]bool{}
			}
			famPersons[f][p] = true
		}
		for f, c := range famCount {
			if c > best.covered && len(famPersons[f]) > 1 {
				best = hit{entity: e, family: f, covered: c, persons: len(famPersons[f])}
			}
		}
	}
	if best.entity == nil {
		fmt.Println("\n(no multi-member family cluster at this certainty)")
		return
	}
	last, _ := best.entity.Best(record.LastName)
	city, _ := best.entity.Best(record.PermCity)
	fmt.Printf("\nreconstructed family: a %d-report cluster holds %d reports about %d members of the %s family of %s\n",
		len(best.entity.Reports), best.covered, best.persons, last, city)
}
