// Uncertainquery: the probabilistic-database view of Section 3.2 — keep
// every pairwise comparison as an uncertain same-as relation and answer
// different questions from the SAME resolution:
//
//   - "How many victims do these reports describe?" needs one
//     deterministic number -> expected entity count over possible worlds.
//   - "Are these two reports the same person?" wants a probability,
//     including transitive evidence the ranked list cannot see.
//   - A museum app wants one crisp clustering -> the most likely world.
//
// It also runs the source-analysis extension: submitter dedup and
// per-source reliability.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/narrative"
	"repro/internal/probdb"
	"repro/internal/sources"
)

func main() {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 500
	gen, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Resolve with a trained model so scores are calibrated confidences.
	pre, err := core.PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		log.Fatal(err)
	}
	blk, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		log.Fatal(err)
	}
	tagger := &dataset.Tagger{Gold: gen.Gold, Coll: gen.Collection, Rng: rand.New(rand.NewSource(3))}
	tags := tagger.TagPairs(blk.Pairs)
	model, err := core.TrainModel(adtree.NewTrainConfig(), tags, gen.Collection, gen.Gaz, core.OmitMaybe)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.NewOptions(gen.Gaz)
	opts.Gazetteer = gen.Gaz
	opts.Model = model
	opts.Classify = false // keep ALL scored pairs: the probabilistic DB wants them
	res, err := core.Run(opts, gen.Collection)
	if err != nil {
		log.Fatal(err)
	}

	// Load the same-as relation with calibrated probabilities.
	ids := make([]int64, 0, gen.Collection.Len())
	for _, r := range gen.Collection.Records {
		ids = append(ids, r.BookID)
	}
	store := probdb.New(ids)
	calib := probdb.NewCalibration()
	for _, m := range res.Matches {
		if err := store.Add(m.Pair, calib.Prob(m.Score)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("same-as relation: %d records, %d uncertain edges\n", store.Len(), len(store.Edges()))

	// Q1: one deterministic number for the museum wall.
	expected := store.ExpectedEntities(300, 17)
	fmt.Printf("expected distinct victims: %.1f (ground truth %d)\n", expected, gen.Gold.Entities())

	// Q2: pairwise probability including transitivity.
	shown := 0
	for _, m := range res.Matches {
		direct := store.DirectProb(m.Pair)
		if direct < 0.4 || direct > 0.6 {
			continue // pick genuinely uncertain pairs
		}
		p, err := store.SameEntityProb(m.Pair.A, m.Pair.B, 300, 23)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P(%d ~ %d): direct %.2f, with transitive evidence %.2f (gold: %v)\n",
			m.Pair.A, m.Pair.B, direct, p, gen.Gold.Match(m.Pair.A, m.Pair.B))
		shown++
		if shown >= 3 {
			break
		}
	}

	// Q3: the crisp view, plus a narrative with conflict flags.
	world := store.MostLikelyWorld()
	fmt.Printf("most likely world: %d entities\n", len(world))
	nb := &narrative.Builder{Coll: gen.Collection}
	for _, group := range world {
		if len(group) >= 3 {
			n := nb.Build(fmt.Sprintf("entity of report %d", group[0]), group)
			fmt.Println()
			fmt.Print(n)
			break
		}
	}

	// Extension: source analysis.
	clusters := sources.DedupSubmitters(sources.NewDedupConfig(), gen.Collection)
	distinct := 0
	for _, r := range gen.Collection.Records {
		if _, ok := sources.ParseSubmitter(r.Source); ok {
			distinct++
		}
	}
	fmt.Printf("\nsubmitter ER: %d clusters\n", len(clusters))
	profiles := sources.ProfileSources(gen.Collection, res.Pairs())
	fmt.Println("largest sources by volume:")
	for i, p := range profiles {
		if i >= 4 {
			break
		}
		fmt.Printf("  %s\n", p)
	}
}
