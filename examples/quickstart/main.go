// Quickstart: generate a small Names-Project-shaped dataset, run the
// uncertain entity resolution pipeline, and inspect the ranked matches —
// the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/record"
)

func main() {
	// 1. A small Italy-like dataset with known ground truth.
	cfg := dataset.ItalyConfig()
	cfg.Persons = 500
	gen, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d victim reports, %d true persons\n",
		gen.Collection.Len(), gen.Gold.Entities())

	// 2. Resolve with the default pipeline (preprocessing + MFIBlocks +
	//    same-source filter; no trained classifier yet, so matches are
	//    ranked by blocking similarity).
	opts := core.NewOptions(gen.Gaz)
	opts.Gazetteer = gen.Gaz
	opts.Classify = false // no model in the quickstart
	res, err := core.Run(opts, gen.Collection)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d ranked matches (%d same-source pairs discarded)\n",
		len(res.Matches), res.DiscardedSameSrc)

	// 3. The uncertain-ER model: the same resolution serves different
	//    certainty levels at query time.
	truth := eval.NewPairSet(gen.Gold.TruePairs())
	for _, theta := range []float64{0.2, 0.4, 0.6} {
		accepted := res.AtCertainty(theta)
		m := eval.Evaluate(pairsOf(res, theta), truth)
		fmt.Printf("certainty >= %.1f: %4d matches  precision=%.2f recall=%.2f\n",
			theta, len(accepted), m.Precision, m.Recall)
	}

	// 4. Crisp entities on demand.
	entities := res.Clusters(0.4)
	multi := 0
	for _, e := range entities {
		if len(e.Reports) > 1 {
			multi++
		}
	}
	fmt.Printf("at certainty 0.4 the %d reports resolve to %d entities (%d multi-report)\n",
		gen.Collection.Len(), len(entities), multi)
}

func pairsOf(res *core.Resolution, theta float64) []record.Pair {
	ms := res.AtCertainty(theta)
	out := make([]record.Pair, len(ms))
	for i, m := range ms {
		out[i] = m.Pair
	}
	return out
}
