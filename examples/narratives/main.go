// Narratives: the Guido-Foa scenario of the paper's introduction — weave
// every report referring to one person, scattered across testimony pages
// and victim lists under different spellings, into a single narrative.
//
// The example trains an ADTree on simulated expert tags, resolves the
// Italy-shaped dataset at full pipeline strength, then picks the most
// richly documented resolved entity and tells its story, listing the raw
// reports (Table 1 style) next to the merged view (Figure 2 style).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func main() {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 700
	gen, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Train the ranked-resolution classifier on simulated expert tags,
	// exactly as the deployment did: blocking candidates are graded, the
	// grades train the ADTree.
	pre, err := core.PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		log.Fatal(err)
	}
	blk, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		log.Fatal(err)
	}
	tagger := &dataset.Tagger{Gold: gen.Gold, Coll: gen.Collection, Rng: rand.New(rand.NewSource(7))}
	tags := tagger.TagPairs(blk.Pairs)
	model, err := core.TrainModel(adtree.NewTrainConfig(), tags, gen.Collection, gen.Gaz, core.OmitMaybe)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.NewOptions(gen.Gaz)
	opts.Gazetteer = gen.Gaz
	opts.Model = model
	res, err := core.Run(opts, gen.Collection)
	if err != nil {
		log.Fatal(err)
	}

	// Find the most richly documented resolved person.
	var best *core.Entity
	for _, e := range res.Clusters(0) {
		if best == nil || len(e.Reports) > len(best.Reports) {
			best = e
		}
	}
	if best == nil || len(best.Reports) < 2 {
		log.Fatal("no multi-report entity resolved; try a larger dataset")
	}

	fmt.Println("The reports, as they arrived over the decades:")
	fmt.Println()
	for _, id := range best.Reports {
		r := gen.Collection.ByID(id)
		fmt.Printf("  BookID %d  [%s %s]\n", r.BookID, r.Kind, r.Source)
		printFields(r)
	}

	fmt.Println()
	fmt.Println("Woven into one person:")
	fmt.Printf("  %s\n", best.Narrative())

	fmt.Println()
	fmt.Println("Conflicting evidence retained by the uncertain model:")
	for _, t := range []record.ItemType{record.FirstName, record.LastName, record.BirthYear, record.DeathCity} {
		vs := best.Values[t]
		if len(vs) > 1 {
			fmt.Printf("  %-12s:", t)
			for _, v := range vs {
				fmt.Printf(" %s(x%d)", v.Value, v.Reports)
			}
			fmt.Println()
		}
	}

	// Ground truth check, possible only because this dataset is
	// synthetic.
	entities := map[int]bool{}
	for _, id := range best.Reports {
		e, _ := gen.Gold.Entity(id)
		entities[e] = true
	}
	fmt.Println()
	fmt.Printf("ground truth: the %d reports belong to %d true person(s)\n",
		len(best.Reports), len(entities))
}

func printFields(r *record.Record) {
	show := []record.ItemType{
		record.FirstName, record.LastName, record.Gender, record.BirthYear,
		record.BirthCity, record.PermCity, record.DeathCity,
		record.SpouseName, record.MotherName, record.FatherName,
	}
	for _, t := range show {
		if vs := r.Values(t); len(vs) > 0 {
			fmt.Printf("      %-14s %v\n", t, vs)
		}
	}
}
