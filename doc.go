// Package repro reproduces "Multi-Source Uncertain Entity Resolution:
// Transforming Holocaust Victim Reports into People" (Sagi, Gal, Barkol,
// Bergman, Avram; SIGMOD 2016 / Information Systems).
//
// The library lives under internal/: the uncertain-ER pipeline in
// internal/core, the MFIBlocks soft-blocking algorithm in
// internal/mfiblocks over the FP-Growth/MFI miner in internal/fpgrowth,
// the alternating-decision-tree classifier in internal/adtree, the 48
// pair features in internal/features, ten baseline blocking techniques in
// internal/blocking, and the synthetic Names-Project-shaped data
// generator in internal/dataset. internal/experiments regenerates every
// table and figure of the paper's evaluation; the benchmarks in
// bench_test.go drive them.
package repro
