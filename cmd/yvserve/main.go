// Command yvserve resolves a records file and serves the uncertain
// resolution over HTTP — the paper's Web-query interface with the
// certainty slider.
//
// Usage:
//
//	yvserve -in records.jsonl [-model model.json] [-addr :8080] [-pprof] [-v]
//
// Then:
//
//	curl 'localhost:8080/api/search?last=Foa&certainty=0.3'
//	curl 'localhost:8080/api/entity?book=1000042&certainty=0.3'
//	curl 'localhost:8080/api/narrative?book=1000042'
//	curl 'localhost:8080/api/stats?certainty=0.5'
//	curl 'localhost:8080/api/report'
//	curl 'localhost:8080/metrics'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	in := flag.String("in", "", "input records (JSONL or .yvst, required)")
	modelPath := flag.String("model", "", "trained ADTree model (enables classification)")
	addr := flag.String("addr", ":8080", "listen address")
	ng := flag.Float64("ng", 3.5, "neighborhood growth parameter")
	workers := flag.Int("workers", 0, "pair-scoring workers (0 = GOMAXPROCS, 1 = serial)")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	verbose := flag.Bool("v", false, "debug logging (per-request and per-stage telemetry)")
	flag.Parse()
	telemetry.SetVerbose(*verbose)

	if *in == "" {
		fmt.Fprintln(os.Stderr, "yvserve: -in is required")
		os.Exit(2)
	}
	records, err := loadRecords(*in)
	if err != nil {
		fatal(err)
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		fatal(err)
	}

	bc := mfiblocks.NewConfig()
	bc.NG = *ng
	opts := core.Options{
		Blocking:   bc,
		Geo:        gazetteer.Builtin(0),
		Preprocess: true,
		SameSrc:    true,
		Workers:    *workers,
	}
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err := adtree.Load(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		opts.Model = model
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "yvserve: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("resolving %d records...\n", coll.Len())
	res, err := core.Run(opts, coll)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("resolved: %d ranked matches\n", len(res.Matches))

	srv := server.New(res, coll)
	if *pprofFlag {
		srv.EnablePprof()
		fmt.Println("pprof enabled at /debug/pprof/")
	}
	fmt.Printf("serving on %s (try /api/stats, /metrics, /api/report)\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func loadRecords(path string) ([]*record.Record, error) {
	if strings.HasSuffix(path, ".yvst") {
		s, err := store.Open(path)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		return s.All()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadJSONL(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yvserve: %v\n", err)
	os.Exit(1)
}
