// Command yvserve resolves a records file and serves the uncertain
// resolution over HTTP — the paper's Web-query interface with the
// certainty slider.
//
// Usage:
//
//	yvserve -in records.jsonl [-model model.json] [-addr :8080]
//	        [-max-inflight N] [-request-timeout D] [-drain D] [-pprof]
//	        [-trace] [-trace-out t.json] [-v]
//
// Then:
//
//	curl 'localhost:8080/api/search?last=Foa&certainty=0.3'
//	curl 'localhost:8080/api/entity?book=1000042&certainty=0.3'
//	curl 'localhost:8080/api/narrative?book=1000042'
//	curl 'localhost:8080/api/stats?certainty=0.5'
//	curl 'localhost:8080/api/report'
//	curl 'localhost:8080/api/trace'
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func main() {
	in := flag.String("in", "", "input records (JSONL or .yvst, required)")
	modelPath := flag.String("model", "", "trained ADTree model (enables classification)")
	addr := flag.String("addr", ":8080", "listen address")
	ng := flag.Float64("ng", 3.5, "neighborhood growth parameter")
	workers := flag.Int("workers", 0, "blocking and pair-scoring workers (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "signature-partitioned blocking shards (0 or 1 = monolithic; output is bit-identical)")
	mineShards := flag.Int("mine-shards", 0, "shard-local MFI miners over rank ranges (0 or 1 = one mining pass; output is bit-identical)")
	spillPairs := flag.Int("spill-pairs", 0, "spill candidate pairs to disk past this many in memory during resolution (0 = unbounded)")
	blockCache := flag.Int("block-cache", mfiblocks.DefaultBlockCache, "cross-iteration block materialization cache entries (0 disables; output is bit-identical either way)")
	maxInflight := flag.Int("max-inflight", 256, "max concurrent requests before shedding with 503 (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline, 503 on expiry (0 = none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline on SIGINT/SIGTERM")
	pprofFlag := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceFlag := flag.Bool("trace", false, "trace the resolution run and serve it at /api/trace")
	traceOut := flag.String("trace-out", "", "also write the resolution's trace (Chrome trace-event JSON) to this file; implies -trace")
	verbose := flag.Bool("v", false, "debug logging (per-request and per-stage telemetry)")
	flag.Parse()
	telemetry.SetVerbose(*verbose)

	if *in == "" {
		fmt.Fprintln(os.Stderr, "yvserve: -in is required")
		os.Exit(2)
	}
	records, err := loadRecords(*in)
	if err != nil {
		fatal(err)
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		fatal(err)
	}

	bc := mfiblocks.NewConfig()
	bc.NG = *ng
	bc.Shards = *shards
	bc.MineShards = *mineShards
	bc.SpillPairs = *spillPairs
	bc.BlockCache = *blockCache
	opts := core.Options{
		Blocking:   bc,
		Geo:        gazetteer.Builtin(0),
		Preprocess: true,
		SameSrc:    true,
		Workers:    *workers,
	}
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err := adtree.Load(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		opts.Model = model
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "yvserve: %v\n", err)
		os.Exit(2)
	}

	if *traceFlag || *traceOut != "" {
		opts.Trace = trace.New()
		opts.Trace.StartSampler(0)
	}

	fmt.Printf("resolving %d records...\n", coll.Len())
	res, err := core.Run(opts, coll)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("resolved: %d ranked matches\n", len(res.Matches))
	if opts.Trace != nil {
		// The flight recorder covers the resolution, not the serving
		// phase; stop it before export so /api/trace is stable.
		opts.Trace.Sampler().Stop()
	}
	if *traceOut != "" {
		if err := opts.Trace.WriteChromeFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, opts.Trace.Len())
	}

	srv := server.New(res, coll)
	srv.MaxInflight = *maxInflight
	srv.RequestTimeout = *requestTimeout
	if *pprofFlag {
		srv.EnablePprof()
		fmt.Println("pprof enabled at /debug/pprof/")
	}

	// A bare ListenAndServe has no timeouts: one slow-reading client can
	// hold a connection (and its inflight slot) forever. WriteTimeout
	// sits above the per-request deadline so the middleware's 503 is
	// always written before the connection is torn down.
	writeTimeout := 2 * time.Minute
	if *requestTimeout > 0 {
		writeTimeout = *requestTimeout + 10*time.Second
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM drain in-flight requests up to the -drain deadline,
	// then the listener closes; a second signal kills immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (try /api/stats, /metrics, /api/report)\n", *addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal is immediate
		fmt.Printf("shutting down (draining up to %s)...\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(os.Stderr, "yvserve: drain incomplete: %v\n", err)
			hs.Close()
			os.Exit(1)
		}
		fmt.Println("drained cleanly")
	}
}

func loadRecords(path string) ([]*record.Record, error) {
	if strings.HasSuffix(path, ".yvst") {
		// CLIs recover by default: a torn tail from a killed writer is
		// truncated to the last whole frame rather than refusing to serve.
		s, err := store.Open(path, store.Recover)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		if s.RepairedBytes > 0 {
			fmt.Fprintf(os.Stderr, "yvserve: repaired torn tail in %s (%d bytes truncated)\n", path, s.RepairedBytes)
		}
		return s.All()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadJSONL(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yvserve: %v\n", err)
	os.Exit(1)
}
