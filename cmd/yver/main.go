// Command yver runs the uncertain entity resolution pipeline over a
// records file produced by yvgen (or any records.jsonl in the same
// format) and emits the ranked matches and, optionally, the entity
// clusters at a chosen certainty.
//
// Usage:
//
//	yver -in records.jsonl [-ng 3.5] [-maxminsup 5] [-certainty 0.3]
//	     [-samesrc] [-top 20] [-clusters] [-report out.json] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	in := flag.String("in", "", "input records.jsonl (required)")
	ng := flag.Float64("ng", 3.5, "neighborhood growth parameter")
	maxMinSup := flag.Int("maxminsup", 5, "initial minimum support")
	certainty := flag.Float64("certainty", 0.0, "certainty threshold for output")
	sameSrc := flag.Bool("samesrc", true, "discard same-source candidate pairs")
	top := flag.Int("top", 20, "ranked matches to print")
	clusters := flag.Bool("clusters", false, "print entity clusters at the certainty")
	first := flag.String("first", "", "search: first name (matched through equivalence classes)")
	last := flag.String("last", "", "search: last name")
	modelPath := flag.String("model", "", "trained ADTree model (from yvtrain); enables classification")
	workers := flag.Int("workers", 0, "blocking and pair-scoring workers (0 = GOMAXPROCS, 1 = serial)")
	reportPath := flag.String("report", "", "write the run's telemetry report (JSON) to this file")
	verbose := flag.Bool("v", false, "debug logging (per-stage and per-iteration telemetry)")
	flag.Parse()
	telemetry.SetVerbose(*verbose)

	if *in == "" {
		fmt.Fprintln(os.Stderr, "yver: -in is required")
		os.Exit(2)
	}
	records, err := loadRecords(*in)
	if err != nil {
		fatal(err)
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		fatal(err)
	}

	bc := mfiblocks.NewConfig()
	bc.NG = *ng
	bc.MaxMinSup = *maxMinSup
	opts := core.Options{
		Blocking:   bc,
		Geo:        gazetteer.Builtin(0),
		Preprocess: true,
		SameSrc:    *sameSrc,
		Workers:    *workers,
	}
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err := adtree.Load(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		opts.Model = model
		opts.Classify = true
	}
	// Validate at the flag boundary: a bad -workers or NaN parameter
	// should fail here, not deep inside the scoring pool.
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "yver: %v\n", err)
		os.Exit(2)
	}
	res, err := core.Run(opts, coll)
	if err != nil {
		fatal(err)
	}
	if *reportPath != "" {
		if err := res.Report.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry report written to %s\n", *reportPath)
	}

	accepted := res.AtCertainty(*certainty)
	fmt.Printf("records=%d candidates=%d accepted@%.2f=%d (same-source dropped %d)\n",
		coll.Len(), len(res.Matches), *certainty, len(accepted), res.DiscardedSameSrc)
	n := *top
	if n > len(accepted) {
		n = len(accepted)
	}
	for _, m := range accepted[:n] {
		fmt.Printf("  %d <-> %d  score=%.3f\n", m.Pair.A, m.Pair.B, m.Score)
	}

	if *first != "" || *last != "" {
		hits := res.Search(core.Query{First: *first, Last: *last, Certainty: *certainty})
		fmt.Printf("search %q %q @%.2f: %d entities\n", *first, *last, *certainty, len(hits))
		for i, e := range hits {
			if i >= *top {
				break
			}
			fmt.Printf("  %v: %s\n", e.Reports, e.Narrative())
		}
	}

	if *clusters {
		ents := res.Clusters(*certainty)
		multi := 0
		for _, e := range ents {
			if len(e.Reports) > 1 {
				multi++
			}
		}
		fmt.Printf("entities=%d (%d with multiple reports)\n", len(ents), multi)
		shown := 0
		for _, e := range ents {
			if len(e.Reports) < 2 {
				continue
			}
			fmt.Printf("  %v: %s\n", e.Reports, e.Narrative())
			shown++
			if shown >= 5 {
				break
			}
		}
	}
}

// loadRecords reads JSONL or, for .yvst files, the binary store format.
// Store files open with recovery: a torn tail from a killed writer is
// truncated to the last whole frame instead of aborting the run.
func loadRecords(path string) ([]*record.Record, error) {
	if strings.HasSuffix(path, ".yvst") {
		s, err := store.Open(path, store.Recover)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		if s.RepairedBytes > 0 {
			fmt.Fprintf(os.Stderr, "yver: repaired torn tail in %s (%d bytes truncated)\n", path, s.RepairedBytes)
		}
		return s.All()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadJSONL(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yver: %v\n", err)
	os.Exit(1)
}
