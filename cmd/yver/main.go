// Command yver runs the uncertain entity resolution pipeline over a
// records file produced by yvgen (or any records.jsonl in the same
// format) and emits the ranked matches and, optionally, the entity
// clusters at a chosen certainty.
//
// Usage:
//
//	yver -in records.jsonl [-ng 3.5] [-maxminsup 5] [-certainty 0.3]
//	     [-samesrc] [-top 20] [-clusters] [-report out.json] [-v]
//	     [-shards n] [-mine-shards n] [-spill-pairs n] [-stream]
//	     [-trace-out t.json] [-progress]
//
// -shards partitions block materialization by MFI-key signature,
// -mine-shards splits MFI mining itself into shard-local miners over
// rank ranges of one shared FP-tree (a cross-shard maximality merge
// keeps the result exact), -spill-pairs bounds the in-memory
// candidate window
// (overflow merges through sorted disk runs), and -block-cache bounds
// the cross-iteration block materialization memo (0 disables it); all
// four leave the ranked output bit-identical.
// -stream reads a .yvst store through the windowed reader and resolves
// it with the bounded-memory streaming pipeline — records are encoded as
// they arrive and dropped unless a flag (model, search, clusters) needs
// their values. -trace-out records the run's span hierarchy and flight-
// recorder series as Chrome trace-event JSON (load in Perfetto);
// -progress prints a live status line (stage, rate, shards, ETA) to
// stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func main() {
	in := flag.String("in", "", "input records.jsonl (required)")
	ng := flag.Float64("ng", 3.5, "neighborhood growth parameter")
	maxMinSup := flag.Int("maxminsup", 5, "initial minimum support")
	certainty := flag.Float64("certainty", 0.0, "certainty threshold for output")
	sameSrc := flag.Bool("samesrc", true, "discard same-source candidate pairs")
	top := flag.Int("top", 20, "ranked matches to print")
	clusters := flag.Bool("clusters", false, "print entity clusters at the certainty")
	first := flag.String("first", "", "search: first name (matched through equivalence classes)")
	last := flag.String("last", "", "search: last name")
	modelPath := flag.String("model", "", "trained ADTree model (from yvtrain); enables classification")
	workers := flag.Int("workers", 0, "blocking and pair-scoring workers (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "signature-partitioned blocking shards (0 or 1 = monolithic; output is bit-identical)")
	mineShards := flag.Int("mine-shards", 0, "shard-local MFI miners over rank ranges (0 or 1 = one mining pass; output is bit-identical)")
	spillPairs := flag.Int("spill-pairs", 0, "spill candidate pairs to disk past this many in memory (0 = unbounded; -stream defaults to a bounded cap)")
	blockCache := flag.Int("block-cache", mfiblocks.DefaultBlockCache, "cross-iteration block materialization cache entries (0 disables; output is bit-identical either way)")
	stream := flag.Bool("stream", false, "stream a .yvst store through the bounded-memory pipeline instead of loading the whole corpus")
	reportPath := flag.String("report", "", "write the run's telemetry report (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the run's trace (Chrome trace-event JSON, Perfetto-loadable) to this file; enables tracing and the flight recorder")
	progress := flag.Bool("progress", false, "print live progress (stage, records/sec, shard completion, ETA) to stderr")
	verbose := flag.Bool("v", false, "debug logging (per-stage and per-iteration telemetry)")
	flag.Parse()
	telemetry.SetVerbose(*verbose)

	if *in == "" {
		fmt.Fprintln(os.Stderr, "yver: -in is required")
		os.Exit(2)
	}

	bc := mfiblocks.NewConfig()
	bc.NG = *ng
	bc.MaxMinSup = *maxMinSup
	bc.Shards = *shards
	bc.MineShards = *mineShards
	bc.SpillPairs = *spillPairs
	bc.BlockCache = *blockCache
	opts := core.Options{
		Blocking:   bc,
		Geo:        gazetteer.Builtin(0),
		Preprocess: true,
		SameSrc:    *sameSrc,
		Workers:    *workers,
	}
	if *modelPath != "" {
		mf, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err := adtree.Load(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		opts.Model = model
		opts.Classify = true
	}
	// Validate at the flag boundary: a bad -workers or NaN parameter
	// should fail here, not deep inside the scoring pool.
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "yver: %v\n", err)
		os.Exit(2)
	}

	if *traceOut != "" {
		opts.Trace = trace.New()
		opts.Trace.StartSampler(0)
	}
	if *progress {
		opts.Progress = &trace.Progress{W: os.Stderr}
		opts.Progress.Start()
	}

	var res *core.Resolution
	var err error
	if *stream {
		// Skeleton records suffice for ranked matches and clustering;
		// model scoring, search, and narratives compare record values, so
		// any flag that needs them keeps the full records in memory.
		retain := opts.Model != nil || *first != "" || *last != "" || *clusters
		res, err = runStream(*in, opts, retain)
	} else {
		var records []*record.Record
		records, err = loadRecords(*in)
		if err != nil {
			fatal(err)
		}
		var coll *record.Collection
		coll, err = record.NewCollection(records)
		if err != nil {
			fatal(err)
		}
		res, err = core.Run(opts, coll)
	}
	opts.Progress.Stop()
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		// Stop the flight recorder before exporting so its final sample
		// (and the summary in the report) covers the whole run.
		opts.Trace.Sampler().Stop()
		if err := opts.Trace.WriteChromeFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, opts.Trace.Len())
	}
	if *reportPath != "" {
		if err := res.Report.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry report written to %s\n", *reportPath)
	}

	accepted := res.AtCertainty(*certainty)
	fmt.Printf("records=%d candidates=%d accepted@%.2f=%d (same-source dropped %d)\n",
		res.Report.Records, len(res.Matches), *certainty, len(accepted), res.DiscardedSameSrc)
	n := *top
	if n > len(accepted) {
		n = len(accepted)
	}
	for _, m := range accepted[:n] {
		fmt.Printf("  %d <-> %d  score=%.3f\n", m.Pair.A, m.Pair.B, m.Score)
	}

	if *first != "" || *last != "" {
		hits := res.Search(core.Query{First: *first, Last: *last, Certainty: *certainty})
		fmt.Printf("search %q %q @%.2f: %d entities\n", *first, *last, *certainty, len(hits))
		for i, e := range hits {
			if i >= *top {
				break
			}
			fmt.Printf("  %v: %s\n", e.Reports, e.Narrative())
		}
	}

	if *clusters {
		ents := res.Clusters(*certainty)
		multi := 0
		for _, e := range ents {
			if len(e.Reports) > 1 {
				multi++
			}
		}
		fmt.Printf("entities=%d (%d with multiple reports)\n", len(ents), multi)
		shown := 0
		for _, e := range ents {
			if len(e.Reports) < 2 {
				continue
			}
			fmt.Printf("  %v: %s\n", e.Reports, e.Narrative())
			shown++
			if shown >= 5 {
				break
			}
		}
	}
}

// runStream resolves a .yvst store through the windowed reader and the
// streaming pipeline: records are encoded and dropped (or retained, when
// a flag needs their values) as they arrive, and candidate pairs spill
// to disk past the configured cap.
func runStream(path string, opts core.Options, retain bool) (*core.Resolution, error) {
	if !strings.HasSuffix(path, ".yvst") {
		return nil, fmt.Errorf("-stream requires a .yvst store, got %s", path)
	}
	src, err := store.OpenWindowReader(path, store.Recover)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	res, err := core.RunStream(core.StreamOptions{Options: opts, RetainRecords: retain}, src)
	if err != nil {
		return nil, err
	}
	if src.TornBytes() > 0 {
		fmt.Fprintf(os.Stderr, "yver: skipped torn tail in %s (%d bytes)\n", path, src.TornBytes())
	}
	return res, nil
}

// loadRecords reads JSONL or, for .yvst files, the binary store format.
// Store files open with recovery: a torn tail from a killed writer is
// truncated to the last whole frame instead of aborting the run.
func loadRecords(path string) ([]*record.Record, error) {
	if strings.HasSuffix(path, ".yvst") {
		s, err := store.Open(path, store.Recover)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		if s.RepairedBytes > 0 {
			fmt.Fprintf(os.Stderr, "yver: repaired torn tail in %s (%d bytes truncated)\n", path, s.RepairedBytes)
		}
		return s.All()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return record.ReadJSONL(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yver: %v\n", err)
	os.Exit(1)
}
