// Command yvtag is the tagging application of Section 5.1 (Figure 7) in
// CLI form: it runs blocking over a records file, presents candidate
// pairs ordered by descending similarity with their differences
// highlighted, and collects {y,p,m,n,N} grades into a tags file. A batch
// mode (-auto with a gold file) replays the archival experts through the
// simulator instead.
//
// Usage:
//
//	yvtag -in records.jsonl -out tags.tsv            # interactive
//	yvtag -in records.jsonl -gold gold.jsonl -auto -out tags.tsv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func main() {
	in := flag.String("in", "", "input records.jsonl (required)")
	goldPath := flag.String("gold", "", "gold.jsonl for -auto mode")
	auto := flag.Bool("auto", false, "simulate the expert instead of prompting")
	out := flag.String("out", "tags.tsv", "output tags file")
	limit := flag.Int("limit", 50, "candidate pairs to grade (interactive mode)")
	seed := flag.Int64("seed", 2016, "expert-simulation seed")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "yvtag: -in is required")
		os.Exit(2)
	}
	records := readRecords(*in)
	coll, err := record.NewCollection(records)
	if err != nil {
		fatal(err)
	}

	pre, err := core.Preprocess(coll)
	if err != nil {
		fatal(err)
	}
	res, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		fatal(err)
	}
	// Order by descending similarity, as the tagging app did.
	pairs := append([]record.Pair(nil), res.Pairs...)
	sort.Slice(pairs, func(i, j int) bool {
		si, sj := res.PairScores[pairs[i]], res.PairScores[pairs[j]]
		if si != sj {
			return si > sj
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	fmt.Printf("%d candidate pairs from blocking\n", len(pairs))

	var tagged []dataset.TaggedPair
	if *auto {
		if *goldPath == "" {
			fmt.Fprintln(os.Stderr, "yvtag: -auto requires -gold")
			os.Exit(2)
		}
		gold := readGold(*goldPath)
		tagger := &dataset.Tagger{Gold: gold, Coll: coll, Rng: rand.New(rand.NewSource(*seed))}
		tagged = tagger.TagPairs(pairs).Pairs
	} else {
		tagged = interactive(coll, res, pairs, *limit)
	}

	writeTags(*out, tagged)
	hist := dataset.NewTagSet(tagged).CountByTag()
	fmt.Printf("wrote %d tags to %s (", len(tagged), *out)
	for t := dataset.NumTags - 1; t >= 0; t-- {
		fmt.Printf("%s:%d ", dataset.Tag(t), hist[t])
	}
	fmt.Println(")")
}

// interactive prompts for grades, highlighting attribute differences.
func interactive(coll *record.Collection, res *mfiblocks.Result, pairs []record.Pair, limit int) []dataset.TaggedPair {
	sc := bufio.NewScanner(os.Stdin)
	var out []dataset.TaggedPair
	for i, p := range pairs {
		if i >= limit {
			break
		}
		a, b := coll.ByID(p.A), coll.ByID(p.B)
		fmt.Printf("\n[%d/%d] similarity %.3f\n", i+1, min(limit, len(pairs)), res.PairScores[p])
		printSideBySide(a, b)
		fmt.Print("match? [y]es [p]robably [m]aybe [n]o-probably [N]o [q]uit: ")
		if !sc.Scan() {
			break
		}
		var tag dataset.Tag
		switch strings.TrimSpace(sc.Text()) {
		case "y":
			tag = dataset.Yes
		case "p":
			tag = dataset.ProbablyYes
		case "m":
			tag = dataset.Maybe
		case "n":
			tag = dataset.ProbablyNo
		case "N":
			tag = dataset.No
		case "q":
			return out
		default:
			fmt.Println("skipped")
			continue
		}
		out = append(out, dataset.TaggedPair{Pair: p, Tag: tag})
	}
	return out
}

// printSideBySide renders two records with differing values flagged, the
// CLI equivalent of the tagging app's yellow highlighting.
func printSideBySide(a, b *record.Record) {
	for t := 0; t < record.NumItemTypes; t++ {
		ty := record.ItemType(t)
		va, vb := a.Values(ty), b.Values(ty)
		if len(va) == 0 && len(vb) == 0 {
			continue
		}
		marker := " "
		if strings.Join(va, "|") != strings.Join(vb, "|") {
			marker = "*"
		}
		fmt.Printf("  %s %-22s %-28s %s\n", marker, ty, strings.Join(va, ", "), strings.Join(vb, ", "))
	}
}

func readRecords(path string) []*record.Record {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	records, err := record.ReadJSONL(f)
	if err != nil {
		fatal(err)
	}
	return records
}

type goldRow struct {
	BookID int64 `json:"book_id"`
	Entity int   `json:"entity"`
	Family int   `json:"family"`
}

func readGold(path string) *dataset.Gold {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	gold := dataset.NewGold()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row goldRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			fatal(err)
		}
		gold.Add(row.BookID, row.Entity, row.Family)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return gold
}

func writeTags(path string, tagged []dataset.TaggedPair) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, tp := range tagged {
		fmt.Fprintf(w, "%d\t%d\t%s\n", tp.Pair.A, tp.Pair.B, tp.Tag)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yvtag: %v\n", err)
	os.Exit(1)
}
