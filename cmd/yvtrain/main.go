// Command yvtrain trains the ranked-resolution ADTree from a records file
// and a tags file (as written by yvtag) and saves the model as JSON for
// yver -model.
//
// Usage:
//
//	yvtrain -in records.jsonl -tags tags.tsv -out model.json
//	        [-maybe omit|no|keep] [-rounds 10] [-cv 10]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gazetteer"
	"repro/internal/record"
)

func main() {
	in := flag.String("in", "", "input records.jsonl (required)")
	tagsPath := flag.String("tags", "", "tags.tsv from yvtag (required)")
	out := flag.String("out", "model.json", "output model file")
	maybeMode := flag.String("maybe", "omit", "Maybe handling: omit, no (fold into non-match)")
	rounds := flag.Int("rounds", 10, "boosting rounds")
	cv := flag.Int("cv", 10, "cross-validation folds for the accuracy report (0 to skip)")
	flag.Parse()

	if *in == "" || *tagsPath == "" {
		fmt.Fprintln(os.Stderr, "yvtrain: -in and -tags are required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	records, err := record.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		fatal(err)
	}
	tags := readTags(*tagsPath)

	var mode core.MaybeMode
	switch *maybeMode {
	case "omit":
		mode = core.OmitMaybe
	case "no":
		mode = core.MaybeAsNo
	default:
		fmt.Fprintf(os.Stderr, "yvtrain: unknown -maybe %q\n", *maybeMode)
		os.Exit(2)
	}

	gaz := gazetteer.Builtin(0)
	cfg := adtree.NewTrainConfig()
	cfg.Rounds = *rounds

	if *cv > 1 {
		insts, _, err := core.Instances(tags, coll, gaz, mode)
		if err != nil {
			fatal(err)
		}
		if acc, err := core.CrossValidate(cfg, insts, *cv); err == nil {
			fmt.Printf("%d-fold CV accuracy over %d instances: %.1f%%\n", *cv, len(insts), 100*acc)
		} else {
			fmt.Fprintf(os.Stderr, "yvtrain: cross-validation skipped: %v\n", err)
		}
	}

	model, err := core.TrainModel(cfg, tags, coll, gaz, mode)
	if err != nil {
		fatal(err)
	}
	of, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := model.Save(of); err != nil {
		fatal(err)
	}
	if err := of.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("trained %d rounds on %d tagged pairs; model saved to %s\n", model.Rounds, tags.Len(), *out)
	fmt.Println("model:")
	fmt.Print(model.String())
}

// readTags parses the yvtag TSV format: bookA \t bookB \t grade.
func readTags(path string) *dataset.TagSet {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	byName := map[string]dataset.Tag{}
	for t := 0; t < dataset.NumTags; t++ {
		byName[dataset.Tag(t).String()] = dataset.Tag(t)
	}
	var tagged []dataset.TaggedPair
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 3 {
			fatal(fmt.Errorf("tags line %d: want 3 tab-separated fields, got %d", line, len(parts)))
		}
		a, errA := strconv.ParseInt(parts[0], 10, 64)
		b, errB := strconv.ParseInt(parts[1], 10, 64)
		if errA != nil || errB != nil {
			fatal(fmt.Errorf("tags line %d: bad BookIDs", line))
		}
		tag, ok := byName[parts[2]]
		if !ok {
			fatal(fmt.Errorf("tags line %d: unknown grade %q", line, parts[2]))
		}
		tagged = append(tagged, dataset.TaggedPair{Pair: record.MakePair(a, b), Tag: tag})
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return dataset.NewTagSet(tagged)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yvtrain: %v\n", err)
	os.Exit(1)
}
