// Command yvgen generates synthetic Names-Project-shaped datasets and
// writes them (with the gold standard) to disk.
//
// Usage:
//
//	yvgen -preset italy|random|full [-persons N] [-seed S] -out dir
//
// It writes records.jsonl (the victim reports) and gold.jsonl (one JSON
// object per report mapping BookID to entity and family).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/record"
	"repro/internal/store"
)

func main() {
	preset := flag.String("preset", "italy", "dataset preset: italy, random, or full")
	persons := flag.Int("persons", 0, "override the preset's person count")
	seed := flag.Int64("seed", 0, "override the preset's seed")
	out := flag.String("out", "", "output directory (required)")
	binary := flag.Bool("binary", false, "also write records.yvst (binary store format)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "yvgen: -out is required")
		os.Exit(2)
	}

	var cfg dataset.Config
	switch *preset {
	case "italy":
		cfg = dataset.ItalyConfig()
	case "random":
		cfg = dataset.RandomSetConfig(47000)
	case "full":
		cfg = dataset.FullShapeConfig(120000)
	default:
		fmt.Fprintf(os.Stderr, "yvgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	if *persons > 0 {
		cfg.Persons = *persons
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	g, err := dataset.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := writeRecords(filepath.Join(*out, "records.jsonl"), g.Records); err != nil {
		fatal(err)
	}
	if err := writeGold(filepath.Join(*out, "gold.jsonl"), g); err != nil {
		fatal(err)
	}
	if *binary {
		if err := store.WriteAll(filepath.Join(*out, "records.yvst"), g.Records); err != nil {
			fatal(err)
		}
	}
	sizes := g.Gold.ClusterSizes()
	fmt.Printf("wrote %d records for %d entities (%d families) to %s\n",
		len(g.Records), g.Gold.Entities(), len(g.Families), *out)
	fmt.Printf("cluster sizes: %v\n", sizes)
}

func writeRecords(path string, records []*record.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := record.WriteJSONL(f, records); err != nil {
		return err
	}
	return f.Close()
}

type goldRow struct {
	BookID int64 `json:"book_id"`
	Entity int   `json:"entity"`
	Family int   `json:"family"`
}

func writeGold(path string, g *dataset.Generated) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, r := range g.Records {
		e, _ := g.Gold.Entity(r.BookID)
		fam, _ := g.Gold.Family(r.BookID)
		if err := enc.Encode(goldRow{BookID: r.BookID, Entity: e, Family: fam}); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "yvgen: %v\n", err)
	os.Exit(1)
}
