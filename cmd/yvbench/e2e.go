package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/spill"
	"repro/internal/store"
	"repro/internal/telemetry/trace"
)

// rowTracePath derives the per-row trace file from the -e2e-trace-out
// base: multi-size runs suffix the record count before the extension so
// rows don't clobber each other.
func rowTracePath(base string, n int, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + strconv.Itoa(n) + ext
}

// gitCommit stamps report rows with the short commit hash of the tree
// the benchmark ran from; empty (and omitted from the JSON) outside a
// git checkout or without git on PATH.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// e2eBenchSchemaVersion identifies the BENCH_e2e.json layout; bump on any
// field removal or rename.
const e2eBenchSchemaVersion = 1

// e2eBenchReport is the machine-readable end-to-end benchmark emitted by
// -bench-e2e: the full streaming pipeline (windowed .yvst ingest,
// signature-sharded blocking, disk-spilled candidate scoring, ranking)
// at each requested corpus size. Every row is measured in a fresh child
// process so peak_rss_bytes is the pipeline's real high-water mark, not
// the parent's dataset generator.
type e2eBenchReport struct {
	SchemaVersion int           `json:"schema_version"`
	Dataset       string        `json:"dataset"`
	SpillCap      int           `json:"spill_cap"`
	Rows          []e2eBenchRow `json:"rows"`
}

type e2eBenchRow struct {
	Records        int            `json:"records"`
	Shards         int            `json:"shards"`
	MineShards     int            `json:"mine_shards"`
	Workers        int            `json:"workers"`
	BlockCache     int            `json:"block_cache"`
	GoMaxProcs     int            `json:"gomaxprocs"`
	GoVersion      string         `json:"go_version"`
	GitCommit      string         `json:"git_commit,omitempty"`
	WallClockNS    int64          `json:"wall_clock_ns"`
	RecordsPerSec  float64        `json:"records_per_sec"`
	PeakRSSBytes   int64          `json:"peak_rss_bytes"`
	CandidatePairs int            `json:"candidate_pairs"`
	Matches        int            `json:"matches"`
	SpillRuns      int            `json:"spill_runs"`
	SpilledEntries int64          `json:"spilled_entries"`
	Stages         []e2eStageSpan `json:"stages"`
}

type e2eStageSpan struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// e2eChildResult is the measurement the child process prints on stdout;
// the parent supplies wall clock and RSS from outside the process.
type e2eChildResult struct {
	Records        int            `json:"records"`
	GoMaxProcs     int            `json:"gomaxprocs"`
	GoVersion      string         `json:"go_version"`
	CandidatePairs int            `json:"candidate_pairs"`
	Matches        int            `json:"matches"`
	SpillRuns      int            `json:"spill_runs"`
	SpilledEntries int64          `json:"spilled_entries"`
	Stages         []e2eStageSpan `json:"stages"`
}

// e2eStreamOptions is the one pipeline configuration both the child and
// any in-process caller run: the bounded-memory streaming defaults over
// the random-set gazetteer.
func e2eStreamOptions(shards, mineShards, workers, blockCache int) core.StreamOptions {
	opts := core.StreamOptions{Options: core.Options{
		Blocking:   mfiblocks.NewConfig(),
		Preprocess: true,
		Gazetteer:  gazetteer.Builtin(dataset.RandomSetConfig(1).TownsPerCounty),
		SameSrc:    true,
		Workers:    workers,
	}}
	opts.Blocking.Workers = workers
	opts.Blocking.Shards = shards
	opts.Blocking.MineShards = mineShards
	opts.Blocking.SpillPairs = spill.DefaultCap
	opts.Blocking.BlockCache = blockCache
	return opts
}

// maxrssBytes converts getrusage's Maxrss to bytes: Linux reports KiB,
// darwin reports bytes. A hardcoded *1024 inflated darwin peaks (and any
// local -e2e-max-rss-mb gate) 1024×.
func maxrssBytes(maxrss int64) int64 {
	if runtime.GOOS == "darwin" {
		return maxrss
	}
	return maxrss * 1024
}

// runE2EChild is the measured half of -bench-e2e: stream the .yvst at
// path through the sharded spilled pipeline and print the counters as
// JSON. It runs in its own process so the parent can read the kernel's
// peak-RSS accounting for exactly this work.
func runE2EChild(path string, shards, mineShards, workers, blockCache int, traceOut string) error {
	if workers > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(workers)
	}
	src, err := store.OpenWindowReader(path)
	if err != nil {
		return fmt.Errorf("bench-e2e child: %w", err)
	}
	defer src.Close()

	opts := e2eStreamOptions(shards, mineShards, workers, blockCache)
	if traceOut != "" {
		opts.Trace = trace.New()
		opts.Trace.StartSampler(0)
	}
	// Live progress on stderr (stdout carries the JSON result): stage,
	// records/sec, shard completion, ETA, every few seconds.
	opts.Progress = &trace.Progress{W: os.Stderr}
	opts.Progress.Start()
	res, err := core.RunStream(opts, src)
	opts.Progress.Stop()
	if err != nil {
		return fmt.Errorf("bench-e2e child: %w", err)
	}
	if traceOut != "" {
		opts.Trace.Sampler().Stop()
		if err := opts.Trace.WriteChromeFile(traceOut); err != nil {
			return fmt.Errorf("bench-e2e child: %w", err)
		}
		fmt.Fprintf(os.Stderr, "bench-e2e child: trace written to %s (%d spans)\n", traceOut, opts.Trace.Len())
	}
	out := e2eChildResult{
		Records:    res.Report.Records,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Matches:    len(res.Matches),
	}
	if res.Report.Scoring != nil {
		out.CandidatePairs = res.Report.Scoring.Candidates
	}
	if res.Blocking.Spill != nil {
		st := res.Blocking.Spill.Stats()
		out.SpillRuns = st.Runs
		out.SpilledEntries = st.SpilledEntries
	}
	for _, s := range res.Report.Stages {
		out.Stages = append(out.Stages, e2eStageSpan{Name: s.Name, DurationNS: s.DurationNS})
	}
	return json.NewEncoder(os.Stdout).Encode(&out)
}

// e2eCorpus generates a random-set corpus of exactly n records and writes
// it as a .yvst store under dir. Person count is seeded from the preset's
// ~2.1 reports/person ratio and grown until generation covers n, then the
// record list is truncated to exactly n so every row measures the size it
// claims.
func e2eCorpus(dir string, n int) (string, error) {
	persons := n * 55 / 100
	var records []*record.Record
	for try := 0; try < 4; try++ {
		cfg := dataset.RandomSetConfig(persons)
		gen, err := dataset.Generate(cfg)
		if err != nil {
			return "", fmt.Errorf("bench-e2e: generate: %w", err)
		}
		if len(gen.Collection.Records) >= n {
			records = gen.Collection.Records[:n]
			break
		}
		persons += persons / 2
	}
	if records == nil {
		return "", fmt.Errorf("bench-e2e: could not generate %d records", n)
	}
	path := filepath.Join(dir, fmt.Sprintf("e2e-%d.yvst", n))
	if err := store.WriteAll(path, records); err != nil {
		return "", fmt.Errorf("bench-e2e: store: %w", err)
	}
	return path, nil
}

// runE2EBench generates each requested corpus size, re-execs this binary
// as a child pipeline per row, and writes the self-validated JSON report
// to path. maxRSSMB > 0 turns the report into a gate: any row whose
// measured peak RSS exceeds the ceiling fails the run (the CI smoke
// test's memory-boundedness check).
func runE2EBench(path, recordsCSV string, shards, mineShards, workers, blockCache, maxRSSMB int, traceOut string) error {
	var sizes []int
	for _, f := range strings.Split(recordsCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return fmt.Errorf("bench-e2e: bad -e2e-records entry %q", f)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("bench-e2e: -e2e-records is empty")
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("bench-e2e: %w", err)
	}
	dir, err := os.MkdirTemp("", "yvbench-e2e-*")
	if err != nil {
		return fmt.Errorf("bench-e2e: %w", err)
	}
	defer os.RemoveAll(dir)

	report := e2eBenchReport{
		SchemaVersion: e2eBenchSchemaVersion,
		Dataset:       "random_set",
		SpillCap:      spill.DefaultCap,
	}
	for _, n := range sizes {
		fmt.Printf("bench-e2e: generating %d-record corpus...\n", n)
		corpus, err := e2eCorpus(dir, n)
		if err != nil {
			return err
		}
		fmt.Printf("bench-e2e: running pipeline over %s (shards=%d mine-shards=%d workers=%d block-cache=%d)...\n",
			filepath.Base(corpus), shards, mineShards, workers, blockCache)

		args := []string{
			"-e2e-child", corpus,
			"-e2e-shards", strconv.Itoa(shards),
			"-e2e-mine-shards", strconv.Itoa(mineShards),
			"-e2e-workers", strconv.Itoa(workers),
			"-block-cache", strconv.Itoa(blockCache),
		}
		if traceOut != "" {
			args = append(args, "-e2e-trace-out", rowTracePath(traceOut, n, len(sizes) > 1))
		}
		cmd := exec.Command(self, args...)
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = os.Stderr
		t0 := time.Now()
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("bench-e2e: child at %d records: %w", n, err)
		}
		wall := time.Since(t0)

		var child e2eChildResult
		if err := json.Unmarshal(stdout.Bytes(), &child); err != nil {
			return fmt.Errorf("bench-e2e: child output at %d records: %w", n, err)
		}
		if child.Records != n {
			return fmt.Errorf("bench-e2e: child resolved %d records, want %d", child.Records, n)
		}
		ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage)
		if !ok {
			return fmt.Errorf("bench-e2e: no rusage for child")
		}
		row := e2eBenchRow{
			Records:        n,
			Shards:         shards,
			MineShards:     mineShards,
			Workers:        workers,
			BlockCache:     blockCache,
			GoMaxProcs:     child.GoMaxProcs,
			GoVersion:      child.GoVersion,
			GitCommit:      gitCommit(),
			WallClockNS:    wall.Nanoseconds(),
			RecordsPerSec:  float64(n) / wall.Seconds(),
			PeakRSSBytes:   maxrssBytes(ru.Maxrss),
			CandidatePairs: child.CandidatePairs,
			Matches:        child.Matches,
			SpillRuns:      child.SpillRuns,
			SpilledEntries: child.SpilledEntries,
			Stages:         child.Stages,
		}
		report.Rows = append(report.Rows, row)
		// Persist after every row: a paper-scale suite runs for hours, and
		// an external kill mid-row must not lose the rows already measured.
		if err := writeE2EReport(path, &report); err != nil {
			return err
		}
		fmt.Printf("bench-e2e: %d records in %v (%.0f rec/s, peak RSS %d MiB, %d candidates, %d matches)\n",
			n, wall.Round(time.Millisecond), row.RecordsPerSec, row.PeakRSSBytes>>20,
			row.CandidatePairs, row.Matches)
		if maxRSSMB > 0 && row.PeakRSSBytes > int64(maxRSSMB)<<20 {
			return fmt.Errorf("bench-e2e: %d records peaked at %d MiB RSS, ceiling %d MiB",
				n, row.PeakRSSBytes>>20, maxRSSMB)
		}
	}
	fmt.Printf("e2e benchmark report written to %s\n", path)
	return nil
}

// writeE2EReport validates and writes the report's current rows to
// path, overwriting any previous (shorter) snapshot.
func writeE2EReport(path string, report *e2eBenchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-e2e: marshal: %w", err)
	}
	data = append(data, '\n')
	// Self-validate: the emitted bytes must round-trip and every row must
	// carry real measurements — a malformed report should fail here, not
	// in the CI step that consumes it.
	var check e2eBenchReport
	if err := json.Unmarshal(data, &check); err != nil {
		return fmt.Errorf("bench-e2e: emitted JSON does not round-trip: %w", err)
	}
	if check.SchemaVersion != e2eBenchSchemaVersion || len(check.Rows) != len(report.Rows) {
		return fmt.Errorf("bench-e2e: emitted report failed validation")
	}
	for _, r := range check.Rows {
		if r.Records <= 0 || r.WallClockNS <= 0 || r.RecordsPerSec <= 0 ||
			r.PeakRSSBytes <= 0 || r.CandidatePairs <= 0 || len(r.Stages) == 0 {
			return fmt.Errorf("bench-e2e: row at %d records has no measurements", r.Records)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench-e2e: %w", err)
	}
	return nil
}
