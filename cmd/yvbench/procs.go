package main

import (
	"runtime"
	"testing"
)

// benchAt runs one benchmark with the Go scheduler widened to at least
// workers Ps and reports the GOMAXPROCS it actually ran under. On
// machines with fewer cores than the requested worker count (CI
// containers are routinely one or two cores), the process default
// silently serializes "parallel" variants: the report would claim
// workers=8 while the scheduler ran everything on one P, and the
// report-level gomaxprocs field contradicted the variant names. Widening
// for the measurement keeps the variant honest — goroutines genuinely
// interleave — and the per-entry gomaxprocs records what really ran.
// The previous setting is restored before returning.
func benchAt(workers int, fn func(*testing.B)) (testing.BenchmarkResult, int) {
	procs := runtime.GOMAXPROCS(0)
	if workers > procs {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		procs = workers
	}
	return testing.Benchmark(fn), procs
}
