// Command yvbench regenerates the paper's tables and figures.
//
// Usage:
//
//	yvbench [-scale quick|full] [-list] [-report out.json] [-v] [exp ...]
//	yvbench -bench-blocking out.json
//	yvbench -bench-scoring out.json
//
// With no experiment ids, every experiment runs in paper order. Use -list
// to enumerate the available ids. -report writes the accumulated
// telemetry registry (every counter, gauge, and histogram the runs
// produced) as JSON when the experiments finish. -bench-blocking skips
// the experiments entirely and instead micro-benchmarks the blocking
// engine hot paths (FP-tree build, maximal mining at several worker
// counts, support-set probes), writing a machine-readable JSON report.
// -bench-scoring does the same for the pair-scoring hot paths: the
// similarity kernels (string tier and interned-ID tier), profile
// construction, profiled extraction with the memo cache off and on, and
// the end-to-end scoring stage at two worker counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "dataset scale: quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0, "blocking and pair-scoring workers for pipeline experiments (0 = GOMAXPROCS, 1 = serial)")
	reportPath := flag.String("report", "", "write the accumulated telemetry registry (JSON) to this file")
	benchBlocking := flag.String("bench-blocking", "", "benchmark the blocking engine hot paths and write the JSON report to this file, then exit")
	benchScoring := flag.String("bench-scoring", "", "benchmark the pair-scoring kernels and stage and write the JSON report to this file, then exit")
	verbose := flag.Bool("v", false, "debug logging (per-stage and per-iteration telemetry)")
	flag.Parse()
	telemetry.SetVerbose(*verbose)

	if *benchBlocking != "" {
		if err := runBlockingBench(*benchBlocking); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchScoring != "" {
		if err := runScoringBench(*benchScoring); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "yvbench: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "yvbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "yvbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	runner := experiments.NewRunner(scale)
	runner.ScoringWorkers = *workers
	for _, e := range selected {
		t0 := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *reportPath != "" {
		if err := telemetry.Default().WriteJSONFile(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry report written to %s\n", *reportPath)
	}
}
