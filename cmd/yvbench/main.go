// Command yvbench regenerates the paper's tables and figures.
//
// Usage:
//
//	yvbench [-scale quick|full] [-list] [exp ...]
//
// With no experiment ids, every experiment runs in paper order. Use -list
// to enumerate the available ids.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "dataset scale: quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0, "pair-scoring workers for pipeline experiments (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "yvbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "yvbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	runner := experiments.NewRunner(scale)
	runner.ScoringWorkers = *workers
	for _, e := range selected {
		t0 := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
