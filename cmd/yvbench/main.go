// Command yvbench regenerates the paper's tables and figures.
//
// Usage:
//
//	yvbench [-scale quick|full] [-list] [-report out.json] [-v] [exp ...]
//	yvbench -bench-blocking out.json
//	yvbench -bench-scoring out.json
//	yvbench -bench-e2e out.json [-e2e-records 100000,1000000] [-e2e-shards n] [-e2e-mine-shards n] [-e2e-workers n] [-e2e-max-rss-mb n] [-e2e-trace-out t.json]
//
// With no experiment ids, every experiment runs in paper order. Use -list
// to enumerate the available ids. -report writes the accumulated
// telemetry registry (every counter, gauge, and histogram the runs
// produced) as JSON when the experiments finish. -bench-blocking skips
// the experiments entirely and instead micro-benchmarks the blocking
// engine hot paths (FP-tree build, maximal mining at several worker
// counts, support-set probes), writing a machine-readable JSON report.
// -bench-scoring does the same for the pair-scoring hot paths: the
// similarity kernels (string tier and interned-ID tier), profile
// construction, profiled extraction with the memo cache off and on, and
// the end-to-end scoring stage at two worker counts. -bench-e2e measures
// the full streaming pipeline (windowed .yvst ingest, signature-sharded
// blocking, disk-spilled scoring, ranking) at each -e2e-records corpus
// size, re-execing itself per row so peak RSS is the pipeline's own
// high-water mark; -e2e-max-rss-mb turns the report into a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/mfiblocks"
	"repro/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "dataset scale: quick or full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0, "blocking and pair-scoring workers for pipeline experiments (0 = GOMAXPROCS, 1 = serial)")
	reportPath := flag.String("report", "", "write the accumulated telemetry registry (JSON) to this file")
	benchBlocking := flag.String("bench-blocking", "", "benchmark the blocking engine hot paths and write the JSON report to this file, then exit")
	benchScoring := flag.String("bench-scoring", "", "benchmark the pair-scoring kernels and stage and write the JSON report to this file, then exit")
	benchE2E := flag.String("bench-e2e", "", "benchmark the streaming pipeline end-to-end and write the JSON report to this file, then exit")
	e2eRecords := flag.String("e2e-records", "100000,1000000", "comma-separated corpus sizes (records) for -bench-e2e")
	e2eShards := flag.Int("e2e-shards", 8, "blocking shards for -bench-e2e rows")
	e2eMineShards := flag.Int("e2e-mine-shards", 8, "shard-local MFI miners for -bench-e2e rows (0 or 1 = one mining pass)")
	e2eWorkers := flag.Int("e2e-workers", 8, "pipeline workers for -bench-e2e rows")
	blockCache := flag.Int("block-cache", mfiblocks.DefaultBlockCache, "cross-iteration block materialization cache entries for -bench-e2e rows (0 disables)")
	e2eMaxRSSMB := flag.Int("e2e-max-rss-mb", 0, "fail -bench-e2e if any row's peak RSS exceeds this many MiB (0 = no ceiling)")
	e2eTraceOut := flag.String("e2e-trace-out", "", "write each -bench-e2e row's trace (Chrome trace-event JSON) to this file (multi-size runs suffix the record count)")
	e2eChild := flag.String("e2e-child", "", "internal: stream this .yvst through the pipeline, print JSON counters, and exit")
	verbose := flag.Bool("v", false, "debug logging (per-stage and per-iteration telemetry)")
	flag.Parse()
	telemetry.SetVerbose(*verbose)

	if *e2eChild != "" {
		if err := runE2EChild(*e2eChild, *e2eShards, *e2eMineShards, *e2eWorkers, *blockCache, *e2eTraceOut); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchE2E != "" {
		if err := runE2EBench(*benchE2E, *e2eRecords, *e2eShards, *e2eMineShards, *e2eWorkers, *blockCache, *e2eMaxRSSMB, *e2eTraceOut); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchBlocking != "" {
		if err := runBlockingBench(*benchBlocking); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchScoring != "" {
		if err := runScoringBench(*benchScoring); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "yvbench: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "yvbench: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "yvbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	runner := experiments.NewRunner(scale)
	runner.ScoringWorkers = *workers
	for _, e := range selected {
		t0 := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}

	if *reportPath != "" {
		if err := telemetry.Default().WriteJSONFile(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "yvbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry report written to %s\n", *reportPath)
	}
}
