package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fpgrowth"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

// blockingBenchSchemaVersion identifies the BENCH_blocking.json layout;
// bump on any field removal or rename.
const blockingBenchSchemaVersion = 1

// blockingBenchReport is the machine-readable blocking micro-benchmark
// emitted by -bench-blocking: the hot paths of the blocking engine (flat
// FP-tree construction, maximal mining at several worker counts, and
// support-set probes) measured over a dataset-generated workload so CI
// can track ns/op and allocs/op across revisions.
type blockingBenchReport struct {
	SchemaVersion int                  `json:"schema_version"`
	GoMaxProcs    int                  `json:"gomaxprocs"`
	Records       int                  `json:"records"`
	Items         int                  `json:"items"`
	Benchmarks    []blockingBenchEntry `json:"benchmarks"`
}

type blockingBenchEntry struct {
	Name        string  `json:"name"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// runBlockingBench measures the blocking engine over a scaled-down Italy
// dataset and writes the JSON report to path. The scale keeps a full
// sweep under a few seconds so CI can run it as a smoke test.
func runBlockingBench(path string) error {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 1200 // ~2.5K records: representative shape, CI-fast
	gen, err := dataset.Generate(cfg)
	if err != nil {
		return fmt.Errorf("bench-blocking: generate: %w", err)
	}
	coll := gen.Collection
	dict := record.BuildDictionary(coll)
	encoded := make([][]int, coll.Len())
	for i, r := range coll.Records {
		encoded[i] = dict.Encode(r)
	}

	const minsup = 3
	report := blockingBenchReport{
		SchemaVersion: blockingBenchSchemaVersion,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Records:       coll.Len(),
		Items:         dict.Len(),
	}
	add := func(name string, workers int, fn func(*testing.B)) {
		r, procs := benchAt(workers, fn)
		report.Benchmarks = append(report.Benchmarks, blockingBenchEntry{
			Name:        name,
			GoMaxProcs:  procs,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	miner := fpgrowth.NewMiner(encoded)
	add("tree_build", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			miner.TreeStats(minsup, nil)
		}
	})
	for _, workers := range []int{1, 8} {
		m := fpgrowth.NewMiner(encoded)
		m.Workers = workers
		add(fmt.Sprintf("mine_maximal/workers=%d", workers), workers, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MineMaximal(minsup, nil)
			}
		})
	}
	index := miner.BuildIndex()
	mfis := miner.MineMaximal(minsup, nil)
	if len(mfis) == 0 {
		return fmt.Errorf("bench-blocking: dataset mined no MFIs at minsup=%d", minsup)
	}
	add("support_set", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			index.SupportSet(mfis[i%len(mfis)].Items)
		}
	})
	add("build_index", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			miner.BuildIndex()
		}
	})

	// Block materialization: the merge-based scorer in isolation, then
	// the full buildBlocks loop with the cross-iteration cache off and
	// on (the cached entry measures the steady-state hit path — the
	// cache persists across b.N iterations).
	bbCfg := mfiblocks.NewConfig()
	bbCfg.Workers = 1
	bb, err := mfiblocks.NewBlockBench(bbCfg, coll, minsup)
	if err != nil {
		return fmt.Errorf("bench-blocking: %w", err)
	}
	members := bb.LargestMembers()
	add("cluster_jaccard", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb.Score(members)
		}
	})
	add("build_blocks/cache=off", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb.BuildBlocks(false)
		}
	})
	add("build_blocks/cache=on", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bb.BuildBlocks(true)
		}
	})

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-blocking: marshal: %w", err)
	}
	data = append(data, '\n')
	// Self-validate: the emitted bytes must round-trip, and every entry
	// must carry a positive iteration count — a malformed report should
	// fail here, not in the CI step that consumes it.
	var check blockingBenchReport
	if err := json.Unmarshal(data, &check); err != nil {
		return fmt.Errorf("bench-blocking: emitted JSON does not round-trip: %w", err)
	}
	if check.SchemaVersion != blockingBenchSchemaVersion || len(check.Benchmarks) == 0 {
		return fmt.Errorf("bench-blocking: emitted report failed validation")
	}
	for _, e := range check.Benchmarks {
		if e.Iterations <= 0 || e.NsPerOp <= 0 {
			return fmt.Errorf("bench-blocking: benchmark %q has no measurements", e.Name)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench-blocking: %w", err)
	}
	for _, e := range report.Benchmarks {
		fmt.Printf("%-28s %12.0f ns/op %8d allocs/op %10d B/op\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	fmt.Printf("blocking benchmark report written to %s\n", path)
	return nil
}
