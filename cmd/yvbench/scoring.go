package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/mfiblocks"
	"repro/internal/similarity"
)

// scoringBenchSchemaVersion identifies the BENCH_scoring.json layout;
// bump on any field removal or rename.
const scoringBenchSchemaVersion = 1

// scoringBenchReport is the machine-readable scoring micro-benchmark
// emitted by -bench-scoring: the similarity kernels (string tier and
// interned-ID tier), profile construction, profiled pair extraction
// with the memo cache off and on, and the end-to-end scoring stage at
// two worker counts — measured over a dataset-generated workload so CI
// can track ns/op and allocs/op across revisions.
type scoringBenchReport struct {
	SchemaVersion int                 `json:"schema_version"`
	GoMaxProcs    int                 `json:"gomaxprocs"`
	Records       int                 `json:"records"`
	Candidates    int                 `json:"candidates"`
	Benchmarks    []scoringBenchEntry `json:"benchmarks"`
}

type scoringBenchEntry struct {
	Name        string  `json:"name"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// runScoringBench measures the pair-scoring hot paths over a scaled-down
// Italy dataset and writes the JSON report to path. The scale keeps a
// full sweep under a few seconds so CI can run it as a smoke test.
func runScoringBench(path string) error {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 600 // representative value skew, CI-fast
	gen, err := dataset.Generate(cfg)
	if err != nil {
		return fmt.Errorf("bench-scoring: generate: %w", err)
	}
	pre, err := core.PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		return fmt.Errorf("bench-scoring: preprocess: %w", err)
	}
	blk, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		return fmt.Errorf("bench-scoring: blocking: %w", err)
	}
	if len(blk.Pairs) == 0 {
		return fmt.Errorf("bench-scoring: blocking produced no candidate pairs")
	}
	tagger := &dataset.Tagger{Gold: gen.Gold, Coll: gen.Collection, Rng: rand.New(rand.NewSource(99))}
	tags := tagger.TagPairs(blk.Pairs)
	model, err := core.TrainModel(adtree.NewTrainConfig(), tags, gen.Collection, gen.Gaz, core.OmitMaybe)
	if err != nil {
		return fmt.Errorf("bench-scoring: train: %w", err)
	}

	report := scoringBenchReport{
		SchemaVersion: scoringBenchSchemaVersion,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Records:       pre.Len(),
		Candidates:    len(blk.Pairs),
	}
	add := func(name string, workers int, fn func(*testing.B)) {
		r, procs := benchAt(workers, fn)
		report.Benchmarks = append(report.Benchmarks, scoringBenchEntry{
			Name:        name,
			GoMaxProcs:  procs,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// Kernel tier: representative surname-length inputs.
	const ka, kb = "Capelluto", "Capeluto"
	add("kernel/jaro", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.Jaro(ka, kb)
		}
	})
	add("kernel/jaro_winkler", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.JaroWinkler(ka, kb)
		}
	})
	add("kernel/levenshtein", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.Levenshtein(ka, kb)
		}
	})
	add("kernel/jaccard_qgrams_map", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.JaccardQGrams(ka, kb, 2)
		}
	})
	in := similarity.NewInterner()
	ga := similarity.QGramIDs(in, ka, 2)
	gb := similarity.QGramIDs(in, kb, 2)
	add("kernel/jaccard_interned", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			similarity.JaccardSortedIDs(ga, gb)
		}
	})

	// Profile tier: build and compare profiles of two blocked records.
	ra := pre.ByID(blk.Pairs[0].A)
	rb := pre.ByID(blk.Pairs[0].B)
	ex := features.NewExtractor(gen.Gaz)
	add("profile", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex.Profile(ra)
		}
	})
	pa, pb := ex.Profile(ra), ex.Profile(rb)
	add("extract_profiled/memo=off", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex.ExtractProfiled(pa, pb)
		}
	})
	exMemo := features.NewExtractor(gen.Gaz)
	exMemo.Memo = features.NewPairMemo(0)
	ma, mb := exMemo.Profile(ra), exMemo.Profile(rb)
	exMemo.ExtractProfiled(ma, mb) // warm the memo: steady-state is all hits
	add("extract_profiled/memo=on", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exMemo.ExtractProfiled(ma, mb)
		}
	})

	// Stage tier: the full scoring pass over every candidate pair.
	for _, workers := range []int{1, 8} {
		opts := core.Options{Geo: gen.Gaz, Model: model, Classify: true, SameSrc: true, Workers: workers}
		add(fmt.Sprintf("score_pairs/workers=%d", workers), workers, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if matches := core.ScoreCandidates(opts, pre, blk); len(matches) == 0 {
					b.Fatal("no matches scored")
				}
			}
		})
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-scoring: marshal: %w", err)
	}
	data = append(data, '\n')
	// Self-validate: the emitted bytes must round-trip, and every entry
	// must carry a positive iteration count — a malformed report should
	// fail here, not in the CI step that consumes it.
	var check scoringBenchReport
	if err := json.Unmarshal(data, &check); err != nil {
		return fmt.Errorf("bench-scoring: emitted JSON does not round-trip: %w", err)
	}
	if check.SchemaVersion != scoringBenchSchemaVersion || len(check.Benchmarks) == 0 {
		return fmt.Errorf("bench-scoring: emitted report failed validation")
	}
	for _, e := range check.Benchmarks {
		if e.Iterations <= 0 || e.NsPerOp <= 0 {
			return fmt.Errorf("bench-scoring: benchmark %q has no measurements", e.Name)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench-scoring: %w", err)
	}
	for _, e := range report.Benchmarks {
		fmt.Printf("%-28s %12.1f ns/op %8d allocs/op %10d B/op\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	fmt.Printf("scoring benchmark report written to %s\n", path)
	return nil
}
