package narrative

import (
	"strings"
	"testing"

	"repro/internal/record"
)

func fixture(t *testing.T) (*Builder, []int64) {
	t.Helper()
	mk := func(id int64, items ...record.Item) *record.Record {
		return &record.Record{BookID: id, Items: items}
	}
	it := func(ty record.ItemType, v string) record.Item { return record.Item{Type: ty, Value: v} }
	recs := []*record.Record{
		mk(1, it(record.FirstName, "Guido"), it(record.BirthYear, "1920"),
			it(record.BirthCity, "Torino"), it(record.DeathCity, "Auschwitz")),
		mk(2, it(record.FirstName, "Guido"), it(record.BirthYear, "1920"),
			it(record.SpouseName, "Olga"), it(record.DeathCity, "Auschwitz")),
		mk(3, it(record.FirstName, "Guido"), it(record.BirthYear, "1936"),
			it(record.BirthCity, "Torino")),
	}
	coll, err := record.NewCollection(recs)
	if err != nil {
		t.Fatal(err)
	}
	return &Builder{Coll: coll}, []int64{1, 2, 3}
}

func TestBuildEventsAndConflicts(t *testing.T) {
	b, ids := fixture(t)
	n := b.Build("Guido Foa", ids)

	if len(n.Events) == 0 {
		t.Fatal("no events built")
	}
	// Events are ordered by life stage.
	prev := EventKind(0)
	for _, e := range n.Events {
		if e.Kind < prev {
			t.Errorf("events out of order: %v after %v", e.Kind, prev)
		}
		prev = e.Kind
	}

	var birthYear *Event
	for i := range n.Events {
		if strings.HasPrefix(n.Events[i].Text, "born 19") {
			birthYear = &n.Events[i]
		}
	}
	if birthYear == nil {
		t.Fatal("no birth-year event")
	}
	if birthYear.Text != "born 1920" {
		t.Errorf("majority year = %q", birthYear.Text)
	}
	if !birthYear.Conflicted() {
		t.Error("1920 vs 1936 should conflict")
	}
	if len(birthYear.Alternatives) != 1 || birthYear.Alternatives[0].Text != "born 1936" {
		t.Errorf("alternatives = %+v", birthYear.Alternatives)
	}
	// Confidence: 2 of 3 eligible reports agree.
	if got := birthYear.Confidence; got < 0.66 || got > 0.67 {
		t.Errorf("confidence = %v, want 2/3", got)
	}
	if birthYear.Year != 1920 {
		t.Errorf("anchored year = %d", birthYear.Year)
	}
}

func TestUnanimousEventHasFullConfidence(t *testing.T) {
	b, ids := fixture(t)
	n := b.Build("Guido", ids)
	for _, e := range n.Events {
		if e.Text == "perished in Auschwitz" {
			if e.Confidence != 1 {
				t.Errorf("unanimous death confidence = %v", e.Confidence)
			}
			if e.Conflicted() {
				t.Error("unanimous event marked conflicted")
			}
			return
		}
	}
	t.Fatal("death event missing")
}

func TestConflictsAndMeanConfidence(t *testing.T) {
	b, ids := fixture(t)
	n := b.Build("Guido", ids)
	conflicts := n.Conflicts()
	if len(conflicts) == 0 {
		t.Fatal("expected at least one conflict")
	}
	mc := n.MeanConfidence()
	if mc <= 0 || mc > 1 {
		t.Errorf("mean confidence = %v", mc)
	}
	empty := &Narrative{}
	if empty.MeanConfidence() != 0 {
		t.Error("empty narrative mean confidence should be 0")
	}
}

func TestStringRendersConflictMarker(t *testing.T) {
	b, ids := fixture(t)
	s := b.Build("Guido Foa", ids).String()
	if !strings.Contains(s, "Guido Foa (3 reports)") {
		t.Errorf("missing subject header:\n%s", s)
	}
	if !strings.Contains(s, " ! ") || !strings.Contains(s, "vs: born 1936") {
		t.Errorf("conflict rendering missing:\n%s", s)
	}
}

func TestMissingAttributesSkipped(t *testing.T) {
	coll, err := record.NewCollection([]*record.Record{{BookID: 9}})
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Coll: coll}
	n := b.Build("Nobody", []int64{9})
	if len(n.Events) != 0 {
		t.Errorf("bare record produced events: %+v", n.Events)
	}
	// Unknown BookIDs are tolerated.
	n = b.Build("Ghost", []int64{404})
	if len(n.Events) != 0 {
		t.Errorf("unknown report produced events")
	}
}

func TestEventKindNames(t *testing.T) {
	for k := 0; k < NumEventKinds; k++ {
		if strings.HasPrefix(EventKind(k).String(), "EventKind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
