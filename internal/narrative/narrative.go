// Package narrative turns resolved entities into narratives: ordered
// sequences of life events with source attribution, conflict detection,
// and per-event confidence. This is the paper's motivating application —
// "a robust automatic procedure to identify and collect all information
// pertaining to a single entity ... as a stepping stone towards
// automatically creating narratives" — taken one step further than the
// core.Entity merged view: events are typed, dated where possible, and
// carry the reports that support or contradict them.
package narrative

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/record"
)

// EventKind orders the canonical life events.
type EventKind uint8

// The event kinds, in life order.
const (
	Birth EventKind = iota
	Family
	Marriage
	Residence
	Occupation
	Wartime
	Death

	// NumEventKinds is the number of event kinds.
	NumEventKinds = int(Death) + 1
)

var eventKindNames = [NumEventKinds]string{
	"birth", "family", "marriage", "residence", "occupation", "wartime", "death",
}

func (k EventKind) String() string {
	if int(k) < NumEventKinds {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one narrative element: a fact of some kind, the reports
// supporting it, and the alternatives that contradict it.
type Event struct {
	Kind EventKind
	// Text is the rendered fact ("born 1920 in Torino").
	Text string
	// Year anchors the event on the timeline; 0 when unknown.
	Year int
	// Support lists the BookIDs of the reports carrying the fact.
	Support []int64
	// Confidence is the fraction of eligible reports agreeing with the
	// fact (reports lacking the attribute are not eligible).
	Confidence float64
	// Alternatives are conflicting values with their own support.
	Alternatives []Alternative
}

// Alternative is a conflicting reading of the same event.
type Alternative struct {
	Text    string
	Support []int64
}

// Conflicted reports whether the event has contradicting evidence.
func (e *Event) Conflicted() bool { return len(e.Alternatives) > 0 }

// Narrative is the ordered event sequence of one person.
type Narrative struct {
	// Subject is the display name.
	Subject string
	// Reports are the BookIDs woven together.
	Reports []int64
	// Events are ordered by life stage, then year.
	Events []Event
}

// Builder assembles narratives from the reports attributed to an entity.
type Builder struct {
	// Coll resolves BookIDs to records.
	Coll *record.Collection
}

// valueSupport gathers, per value of an item type, the supporting reports.
func (b *Builder) valueSupport(ids []int64, t record.ItemType) map[string][]int64 {
	out := make(map[string][]int64)
	for _, id := range ids {
		r := b.Coll.ByID(id)
		if r == nil {
			continue
		}
		seen := map[string]bool{}
		for _, v := range r.Values(t) {
			key := strings.ToLower(v)
			if seen[key] {
				continue
			}
			seen[key] = true
			out[v] = append(out[v], id)
		}
	}
	return out
}

// majority picks the best-supported value; ok is false when no report
// carries the attribute.
func majority(support map[string][]int64) (value string, ids []int64, eligible int, ok bool) {
	seenReports := map[int64]bool{}
	for v, s := range support {
		for _, id := range s {
			seenReports[id] = true
		}
		if len(s) > len(ids) || (len(s) == len(ids) && v < value) {
			value, ids = v, s
		}
	}
	return value, ids, len(seenReports), len(support) > 0
}

// Build assembles the narrative of the reports (an entity's members).
func (b *Builder) Build(subject string, ids []int64) *Narrative {
	n := &Narrative{Subject: subject, Reports: append([]int64(nil), ids...)}

	n.addValueEvent(b, ids, Birth, record.BirthYear, func(v string) string { return "born " + v })
	n.addValueEvent(b, ids, Birth, record.BirthCity, func(v string) string { return "born in " + v })
	n.addValueEvent(b, ids, Family, record.FatherName, func(v string) string { return "child of father " + v })
	n.addValueEvent(b, ids, Family, record.MotherName, func(v string) string { return "child of mother " + v })
	n.addValueEvent(b, ids, Marriage, record.SpouseName, func(v string) string { return "married to " + v })
	n.addValueEvent(b, ids, Residence, record.PermCity, func(v string) string { return "lived in " + v })
	n.addValueEvent(b, ids, Occupation, record.Profession, func(v string) string { return "worked as " + v })
	n.addValueEvent(b, ids, Wartime, record.WarCity, func(v string) string { return "was during the war in " + v })
	n.addValueEvent(b, ids, Death, record.DeathCity, func(v string) string { return "perished in " + v })

	// Anchor years: birth events get the birth year; death defaults after
	// wartime.
	year := b.birthYear(ids)
	for i := range n.Events {
		if n.Events[i].Kind == Birth && year > 0 {
			n.Events[i].Year = year
		}
	}
	sort.SliceStable(n.Events, func(i, j int) bool {
		if n.Events[i].Kind != n.Events[j].Kind {
			return n.Events[i].Kind < n.Events[j].Kind
		}
		return n.Events[i].Text < n.Events[j].Text
	})
	return n
}

func (b *Builder) birthYear(ids []int64) int {
	v, _, _, ok := majority(b.valueSupport(ids, record.BirthYear))
	if !ok {
		return 0
	}
	y, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return y
}

// addValueEvent emits one event per attribute with majority/alternative
// split.
func (n *Narrative) addValueEvent(b *Builder, ids []int64, kind EventKind, t record.ItemType, render func(string) string) {
	support := b.valueSupport(ids, t)
	value, winners, eligible, ok := majority(support)
	if !ok {
		return
	}
	ev := Event{
		Kind:       kind,
		Text:       render(value),
		Support:    winners,
		Confidence: float64(len(winners)) / float64(eligible),
	}
	// Alternatives: every other value.
	var alts []Alternative
	for v, s := range support {
		if v == value {
			continue
		}
		alts = append(alts, Alternative{Text: render(v), Support: s})
	}
	sort.Slice(alts, func(i, j int) bool {
		if len(alts[i].Support) != len(alts[j].Support) {
			return len(alts[i].Support) > len(alts[j].Support)
		}
		return alts[i].Text < alts[j].Text
	})
	ev.Alternatives = alts
	n.Events = append(n.Events, ev)
}

// String renders the narrative with conflicts flagged.
func (n *Narrative) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d reports)\n", n.Subject, len(n.Reports))
	for _, e := range n.Events {
		marker := " "
		if e.Conflicted() {
			marker = "!"
		}
		fmt.Fprintf(&b, " %s [%s] %s (confidence %.2f, %d reports)\n",
			marker, e.Kind, e.Text, e.Confidence, len(e.Support))
		for _, a := range e.Alternatives {
			fmt.Fprintf(&b, "     vs: %s (%d reports)\n", a.Text, len(a.Support))
		}
	}
	return b.String()
}

// Conflicts returns the conflicted events.
func (n *Narrative) Conflicts() []Event {
	var out []Event
	for _, e := range n.Events {
		if e.Conflicted() {
			out = append(out, e)
		}
	}
	return out
}

// MeanConfidence averages event confidence; 0 for an empty narrative.
func (n *Narrative) MeanConfidence() float64 {
	if len(n.Events) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range n.Events {
		sum += e.Confidence
	}
	return sum / float64(len(n.Events))
}
