package core

import (
	"strings"

	"repro/internal/names"
	"repro/internal/record"
)

// Query is a relative-search request, the paper's motivating Web use case:
// a person searching for perished relatives controls the size of the
// response by tuning the certainty parameter.
type Query struct {
	// First matches any of an entity's first names, through the name
	// equivalence classes (searching "Isak" finds "Yitzhak"). Empty
	// matches everything.
	First string
	// Last matches any of an entity's last names case-insensitively.
	// Empty matches everything.
	Last string
	// Certainty is the resolution threshold: lower values merge more
	// reports per entity (fewer, richer results), higher values split
	// them (more, smaller results).
	Certainty float64
}

// Search resolves the collection at the query's certainty and returns the
// entities matching the name query, ordered as produced by Clusters.
// Without a deterministic query (e.g. the example record is missed), a
// record's information may surface under more than one spelling; the
// equivalence classes absorb the registered variants — the paper's point
// that a simple "first name = Guido AND last name = Foa" query misses the
// "Foy" record.
func (r *Resolution) Search(q Query) []*Entity {
	var out []*Entity
	for _, e := range r.Clusters(q.Certainty) {
		if entityMatches(e, q) {
			out = append(out, e)
		}
	}
	return out
}

func entityMatches(e *Entity, q Query) bool {
	if q.First != "" && !anyNameMatches(e.Values[record.FirstName], q.First, true) {
		return false
	}
	if q.Last != "" && !anyNameMatches(e.Values[record.LastName], q.Last, false) {
		return false
	}
	return true
}

func anyNameMatches(vs []ValueSupport, query string, useClasses bool) bool {
	for _, v := range vs {
		if strings.EqualFold(v.Value, query) {
			return true
		}
		if useClasses && names.SameClass(v.Value, query) {
			return true
		}
	}
	return false
}
