package core

import (
	"testing"

	"repro/internal/adtree"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func TestNewOptionsDefaults(t *testing.T) {
	fx := newFixture(t, 100)
	opts := NewOptions(fx.gen.Gaz)
	if !opts.Preprocess || !opts.SameSrc || !opts.Classify {
		t.Errorf("defaults wrong: %+v", opts)
	}
	if opts.Blocking.MaxMinSup != mfiblocks.NewConfig().MaxMinSup {
		t.Error("blocking defaults not applied")
	}
	// Classify defaults on but needs a model; supply one and run.
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, fx.gen.Collection, fx.gen.Gaz, MaybeAsNo)
	if err != nil {
		t.Fatal(err)
	}
	opts.Model = model
	opts.Gazetteer = fx.gen.Gaz
	if _, err := Run(opts, fx.gen.Collection); err != nil {
		t.Fatalf("Run with defaults: %v", err)
	}
}

func TestEntityOf(t *testing.T) {
	fx := newFixture(t, 150)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	id := fx.gen.Collection.Records[0].BookID
	e, ok := res.EntityOf(id, 0.3)
	if !ok {
		t.Fatalf("record %d not in any entity", id)
	}
	found := false
	for _, rid := range e.Reports {
		if rid == id {
			found = true
		}
	}
	if !found {
		t.Error("EntityOf returned an entity not containing the record")
	}
	if _, ok := res.EntityOf(-1, 0.3); ok {
		t.Error("unknown record resolved to an entity")
	}
}

func TestInstancesUnknownRecord(t *testing.T) {
	fx := newFixture(t, 100)
	bad := dataset.NewTagSet([]dataset.TaggedPair{
		{Pair: record.MakePair(1, 2), Tag: dataset.Yes},
	})
	if _, _, err := Instances(bad, fx.gen.Collection, fx.gen.Gaz, MaybeAsNo); err == nil {
		t.Error("tagged pair with unknown records accepted")
	}
}
