package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/adtree"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func TestOptionsValidate(t *testing.T) {
	valid := func() Options {
		return Options{Blocking: mfiblocks.NewConfig()}
	}
	if err := validOpts(valid()).Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"negative workers", func(o *Options) { o.Workers = -1 }, "Workers"},
		{"classify without model", func(o *Options) { o.Classify = true }, "Model"},
		{"NaN NG", func(o *Options) { o.Blocking.NG = math.NaN() }, "NG"},
		{"Inf P", func(o *Options) { o.Blocking.P = math.Inf(1) }, "P"},
		{"NaN prune fraction", func(o *Options) { o.Blocking.PruneFraction = math.NaN() }, "PruneFraction"},
		{"NaN min score", func(o *Options) { o.Blocking.MinScore = math.NaN() }, "MinScore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := valid()
			tc.mut(&o)
			err := o.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			// Run must refuse the same options at the door.
			empty, cerr := record.NewCollection(nil)
			if cerr != nil {
				t.Fatal(cerr)
			}
			if _, runErr := Run(o, empty); runErr == nil {
				t.Errorf("Run accepted options Validate rejects")
			}
		})
	}
}

func validOpts(o Options) *Options { return &o }

func TestNewOptionsDefaults(t *testing.T) {
	fx := newFixture(t, 100)
	opts := NewOptions(fx.gen.Gaz)
	if !opts.Preprocess || !opts.SameSrc || !opts.Classify {
		t.Errorf("defaults wrong: %+v", opts)
	}
	if opts.Blocking.MaxMinSup != mfiblocks.NewConfig().MaxMinSup {
		t.Error("blocking defaults not applied")
	}
	// Classify defaults on but needs a model; supply one and run.
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, fx.gen.Collection, fx.gen.Gaz, MaybeAsNo)
	if err != nil {
		t.Fatal(err)
	}
	opts.Model = model
	opts.Gazetteer = fx.gen.Gaz
	if _, err := Run(opts, fx.gen.Collection); err != nil {
		t.Fatalf("Run with defaults: %v", err)
	}
}

func TestEntityOf(t *testing.T) {
	fx := newFixture(t, 150)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	id := fx.gen.Collection.Records[0].BookID
	e, ok := res.EntityOf(id, 0.3)
	if !ok {
		t.Fatalf("record %d not in any entity", id)
	}
	found := false
	for _, rid := range e.Reports {
		if rid == id {
			found = true
		}
	}
	if !found {
		t.Error("EntityOf returned an entity not containing the record")
	}
	if _, ok := res.EntityOf(-1, 0.3); ok {
		t.Error("unknown record resolved to an entity")
	}
}

func TestInstancesUnknownRecord(t *testing.T) {
	fx := newFixture(t, 100)
	bad := dataset.NewTagSet([]dataset.TaggedPair{
		{Pair: record.MakePair(1, 2), Tag: dataset.Yes},
	})
	if _, _, err := Instances(bad, fx.gen.Collection, fx.gen.Gaz, MaybeAsNo); err == nil {
		t.Error("tagged pair with unknown records accepted")
	}
}
