package core

import (
	"fmt"

	"repro/internal/adtree"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/record"
	"repro/internal/similarity"
)

// MaybeMode selects how Maybe-tagged pairs enter training (Table 5).
type MaybeMode uint8

// The three Maybe-handling policies the paper compares.
const (
	// MaybeAsNo folds Maybe into the non-match class.
	MaybeAsNo MaybeMode = iota
	// OmitMaybe drops Maybe pairs from training and evaluation.
	OmitMaybe
	// IdentifyMaybe keeps Maybe as a third class to be recognized at
	// run time (implemented as a dedicated Maybe-vs-rest ADTree beside
	// the match model).
	IdentifyMaybe
)

func (m MaybeMode) String() string {
	switch m {
	case MaybeAsNo:
		return "Maybe:=No"
	case OmitMaybe:
		return "Maybe values omitted"
	case IdentifyMaybe:
		return "Identify Maybe values"
	}
	return "MaybeMode(?)"
}

// Instances converts tagged pairs to training instances under the given
// Maybe policy. For IdentifyMaybe it returns the match instances (Maybe
// omitted) plus a parallel Maybe-vs-rest instance set.
func Instances(ts *dataset.TagSet, coll *record.Collection, geo similarity.GeoDistancer, mode MaybeMode) (match, maybe []adtree.Instance, err error) {
	ex := features.NewExtractor(geo)
	for _, tp := range ts.Pairs {
		ra, rb := coll.ByID(tp.Pair.A), coll.ByID(tp.Pair.B)
		if ra == nil || rb == nil {
			return nil, nil, fmt.Errorf("core: tagged pair %v references unknown record", tp.Pair)
		}
		x := ex.Extract(ra, rb)
		switch mode {
		case MaybeAsNo:
			match = append(match, adtree.Instance{X: x, Match: tp.Tag.IsMatch()})
		case OmitMaybe:
			if tp.Tag != dataset.Maybe {
				match = append(match, adtree.Instance{X: x, Match: tp.Tag.IsMatch()})
			}
		case IdentifyMaybe:
			if tp.Tag != dataset.Maybe {
				match = append(match, adtree.Instance{X: x, Match: tp.Tag.IsMatch()})
			}
			maybe = append(maybe, adtree.Instance{X: x, Match: tp.Tag == dataset.Maybe})
		default:
			return nil, nil, fmt.Errorf("core: unknown MaybeMode %d", mode)
		}
	}
	return match, maybe, nil
}

// TrainModel trains the match ADTree on the tagged pairs under the given
// Maybe policy.
func TrainModel(cfg adtree.TrainConfig, ts *dataset.TagSet, coll *record.Collection, geo similarity.GeoDistancer, mode MaybeMode) (*adtree.Model, error) {
	insts, _, err := Instances(ts, coll, geo, mode)
	if err != nil {
		return nil, err
	}
	return adtree.Train(cfg, features.Defs(), insts)
}

// CrossValidate estimates classification accuracy with k-fold CV over the
// instance set. For IdentifyMaybe, pass the combined three-class scorer
// via CrossValidateMaybe instead.
func CrossValidate(cfg adtree.TrainConfig, insts []adtree.Instance, k int) (float64, error) {
	if len(insts) < k {
		return 0, fmt.Errorf("core: %d instances for %d folds", len(insts), k)
	}
	folds := eval.Folds(len(insts), k)
	correct, total := 0, 0
	for f := range folds {
		var train []adtree.Instance
		for _, i := range eval.TrainIndices(folds, f) {
			train = append(train, insts[i])
		}
		m, err := adtree.Train(cfg, features.Defs(), train)
		if err != nil {
			return 0, err
		}
		for _, i := range folds[f] {
			if m.Classify(insts[i].X) == insts[i].Match {
				correct++
			}
			total++
		}
	}
	return eval.Accuracy(correct, total), nil
}

// ThreeClassPrediction labels a pair Maybe when the maybe model fires,
// otherwise match/non-match from the match model.
type ThreeClassPrediction uint8

// Three-class prediction labels.
const (
	PredictNo ThreeClassPrediction = iota
	PredictMaybe
	PredictYes
)

// CrossValidateMaybe estimates three-class accuracy (Table 5's "Identify
// Maybe" row): a Maybe-vs-rest model gates a match model; a prediction is
// correct when it reproduces the expert's (simplified) grade.
func CrossValidateMaybe(cfg adtree.TrainConfig, ts *dataset.TagSet, coll *record.Collection, geo similarity.GeoDistancer, k int) (float64, error) {
	ex := features.NewExtractor(geo)
	type labelled struct {
		x   features.Vector
		tag dataset.Tag
	}
	all := make([]labelled, 0, ts.Len())
	for _, tp := range ts.Pairs {
		ra, rb := coll.ByID(tp.Pair.A), coll.ByID(tp.Pair.B)
		if ra == nil || rb == nil {
			return 0, fmt.Errorf("core: tagged pair %v references unknown record", tp.Pair)
		}
		all = append(all, labelled{x: ex.Extract(ra, rb), tag: tp.Tag})
	}
	if len(all) < k {
		return 0, fmt.Errorf("core: %d instances for %d folds", len(all), k)
	}
	folds := eval.Folds(len(all), k)
	correct, total := 0, 0
	for f := range folds {
		var matchInsts, maybeInsts []adtree.Instance
		for _, i := range eval.TrainIndices(folds, f) {
			l := all[i]
			maybeInsts = append(maybeInsts, adtree.Instance{X: l.x, Match: l.tag == dataset.Maybe})
			if l.tag != dataset.Maybe {
				matchInsts = append(matchInsts, adtree.Instance{X: l.x, Match: l.tag.IsMatch()})
			}
		}
		matchModel, err := adtree.Train(cfg, features.Defs(), matchInsts)
		if err != nil {
			return 0, err
		}
		maybeModel, err := adtree.Train(cfg, features.Defs(), maybeInsts)
		if err != nil {
			return 0, err
		}
		for _, i := range folds[f] {
			l := all[i]
			pred := PredictNo
			switch {
			case maybeModel.Classify(l.x):
				pred = PredictMaybe
			case matchModel.Classify(l.x):
				pred = PredictYes
			}
			want := PredictNo
			switch {
			case l.tag == dataset.Maybe:
				want = PredictMaybe
			case l.tag.IsMatch():
				want = PredictYes
			}
			if pred == want {
				correct++
			}
			total++
		}
	}
	return eval.Accuracy(correct, total), nil
}
