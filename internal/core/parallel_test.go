package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/adtree"
	"repro/internal/mfiblocks"
)

// equivalenceWorkerCounts are the worker counts the suite sweeps; 1 is the
// exact serial seed path, the rest exercise the chunked pool (7 is chosen
// to leave a ragged final chunk).
func equivalenceWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

func assertRunsEqual(t *testing.T, tag string, ref, got *Resolution) {
	t.Helper()
	if len(ref.Matches) != len(got.Matches) {
		t.Fatalf("%s: match counts differ: %d vs %d", tag, len(ref.Matches), len(got.Matches))
	}
	for i := range ref.Matches {
		if ref.Matches[i] != got.Matches[i] {
			t.Fatalf("%s: match %d differs: %+v vs %+v", tag, i, ref.Matches[i], got.Matches[i])
		}
	}
	if ref.DiscardedSameSrc != got.DiscardedSameSrc {
		t.Fatalf("%s: DiscardedSameSrc %d vs %d", tag, ref.DiscardedSameSrc, got.DiscardedSameSrc)
	}
	if ref.DiscardedByModel != got.DiscardedByModel {
		t.Fatalf("%s: DiscardedByModel %d vs %d", tag, ref.DiscardedByModel, got.DiscardedByModel)
	}
}

// TestRunWorkerEquivalence is the parallel-vs-serial equivalence suite:
// over seeded generated collections and several pipeline configurations,
// Run must yield identical Matches (pairs, block scores, model scores, and
// order) and identical discard counters for every worker count.
func TestRunWorkerEquivalence(t *testing.T) {
	for _, persons := range []int{200, 400} {
		fx := newFixture(t, persons)
		gen := fx.gen
		model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, OmitMaybe)
		if err != nil {
			t.Fatalf("TrainModel: %v", err)
		}

		configs := []struct {
			name string
			opts Options
		}{
			{"blockOnly", Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz}},
			{"model", Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz, Model: model}},
			{"full", Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz, Model: model, Classify: true, SameSrc: true}},
		}
		for _, cfg := range configs {
			serial := cfg.opts
			serial.Workers = 1
			ref, err := Run(serial, gen.Collection)
			if err != nil {
				t.Fatalf("Run(serial %s): %v", cfg.name, err)
			}
			for _, workers := range equivalenceWorkerCounts() {
				if workers == 1 {
					continue
				}
				par := cfg.opts
				par.Workers = workers
				got, err := Run(par, gen.Collection)
				if err != nil {
					t.Fatalf("Run(%s workers=%d): %v", cfg.name, workers, err)
				}
				tag := fmt.Sprintf("persons=%d %s workers=%d", persons, cfg.name, workers)
				assertRunsEqual(t, tag, ref, got)
			}
		}
	}
}

// TestScorePairSpillMode is the regression test for /api/pair under
// -spill-pairs: spilling never builds Blocking.PairScores, so ScorePair
// must recover each candidate's block score from the lazy pair index
// instead of silently reading 0 out of a nil map.
func TestScorePairSpillMode(t *testing.T) {
	fx := newFixture(t, 200)
	gen := fx.gen
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz}
	ref, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	opts.Blocking.SpillPairs = 64
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsEqual(t, "spill", ref, res)
	if res.Blocking.PairScores != nil {
		t.Fatal("spill run unexpectedly materialized PairScores")
	}
	n := len(res.Matches)
	if n > 50 {
		n = 50
	}
	for _, m := range res.Matches[:n] {
		got, err := res.ScorePair(m.Pair.A, m.Pair.B)
		if err != nil {
			t.Fatalf("ScorePair(%v): %v", m.Pair, err)
		}
		if got != m {
			t.Fatalf("ScorePair(%v) = %+v, ranked as %+v", m.Pair, got, m)
		}
	}
	// A pair blocking never proposed has no block score in either mode.
	if m, err := res.ScorePair(res.Matches[0].Pair.A, -1); err == nil {
		t.Fatalf("ScorePair with unknown report = %+v, want error", m)
	}
}

// TestScorePairAgreesWithRanking verifies the query-time profiled scorer
// reproduces the ranked list's scores exactly.
func TestScorePairAgreesWithRanking(t *testing.T) {
	fx := newFixture(t, 300)
	gen := fx.gen
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz, Model: model}
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches")
	}
	n := len(res.Matches)
	if n > 50 {
		n = 50
	}
	for _, m := range res.Matches[:n] {
		got, err := res.ScorePair(m.Pair.A, m.Pair.B)
		if err != nil {
			t.Fatalf("ScorePair(%v): %v", m.Pair, err)
		}
		if got != m {
			t.Fatalf("ScorePair(%v) = %+v, ranked as %+v", m.Pair, got, m)
		}
	}
	if _, err := res.ScorePair(-1, res.Matches[0].Pair.A); err == nil {
		t.Error("ScorePair with unknown report did not fail")
	}
	if _, err := res.ScorePair(res.Matches[0].Pair.A, res.Matches[0].Pair.A); err == nil {
		t.Error("ScorePair of a report with itself did not fail")
	}
}

// TestAtCertaintyNaNSafe pins the NaN semantics: a NaN threshold matches
// nothing instead of silently returning every match (sort.Search's
// predicate is always false against NaN).
func TestAtCertaintyNaNSafe(t *testing.T) {
	r := &Resolution{Matches: []RankedMatch{{Score: 2}, {Score: 1}, {Score: 0}}}
	if got := r.AtCertainty(math.NaN()); len(got) != 0 {
		t.Fatalf("AtCertainty(NaN) returned %d matches, want 0", len(got))
	}
	if got := r.AtCertainty(math.Inf(-1)); len(got) != 3 {
		t.Fatalf("AtCertainty(-Inf) returned %d matches, want all 3", len(got))
	}
	if got := r.AtCertainty(math.Inf(1)); len(got) != 0 {
		t.Fatalf("AtCertainty(+Inf) returned %d matches, want 0", len(got))
	}
}

// TestClustersMemoized checks the per-certainty memo returns the same
// (cached) slice across calls and distinct results across thresholds.
func TestClustersMemoized(t *testing.T) {
	fx := newFixture(t, 200)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Clusters(0.3)
	b := res.Clusters(0.3)
	if len(a) != len(b) {
		t.Fatalf("memoized Clusters sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("memoized Clusters returned different entities")
		}
	}
	// NaN thresholds must not poison the cache and resolve to singletons.
	ents := res.Clusters(math.NaN())
	if len(ents) != fx.gen.Collection.Len() {
		t.Fatalf("Clusters(NaN) = %d entities, want %d singletons", len(ents), fx.gen.Collection.Len())
	}
}
