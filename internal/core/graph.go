package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/record"
)

// KnowledgeGraph is the Figure-2 artifact: the entity and its immediate
// world — relatives, places, dates — as labeled nodes and edges, assembled
// from all reports attributed to the entity.
type KnowledgeGraph struct {
	// Center is the entity's display name.
	Center string
	// Nodes are all node labels, Center first.
	Nodes []string
	// Edges are labeled, directed facts (from, label, to).
	Edges []GraphEdge
}

// GraphEdge is one labeled fact in the knowledge graph.
type GraphEdge struct {
	From, Label, To string
}

// graphRelations maps item types to edge labels for relational and
// locational facts.
var graphRelations = []struct {
	t     record.ItemType
	label string
}{
	{record.FatherName, "father"},
	{record.MotherName, "mother"},
	{record.SpouseName, "spouse"},
	{record.MaidenName, "maiden name"},
	{record.BirthYear, "born"},
	{record.BirthCity, "born in"},
	{record.PermCity, "lived in"},
	{record.WarCity, "was during the war in"},
	{record.DeathCity, "perished in"},
	{record.Profession, "worked as"},
}

// Graph builds the entity's knowledge graph. Every distinct observed
// value becomes a node, so conflicting evidence appears as parallel edges
// — the uncertain model's view of the entity.
func (e *Entity) Graph() *KnowledgeGraph {
	first, _ := e.Best(record.FirstName)
	last, _ := e.Best(record.LastName)
	center := strings.TrimSpace(first + " " + last)
	if center == "" {
		center = fmt.Sprintf("entity(%v)", e.Reports)
	}
	g := &KnowledgeGraph{Center: center, Nodes: []string{center}}
	seen := map[string]bool{center: true}

	for _, rel := range graphRelations {
		for _, vs := range e.Values[rel.t] {
			node := vs.Value
			if !seen[node] {
				seen[node] = true
				g.Nodes = append(g.Nodes, node)
			}
			g.Edges = append(g.Edges, GraphEdge{From: center, Label: rel.label, To: node})
		}
	}
	// Provenance: each report is a node pointing at the center.
	for _, id := range e.Reports {
		node := fmt.Sprintf("report %d", id)
		g.Nodes = append(g.Nodes, node)
		g.Edges = append(g.Edges, GraphEdge{From: node, Label: "describes", To: center})
	}
	sort.SliceStable(g.Edges, func(i, j int) bool {
		if g.Edges[i].Label != g.Edges[j].Label {
			return g.Edges[i].Label < g.Edges[j].Label
		}
		return g.Edges[i].To < g.Edges[j].To
	})
	return g
}

// DOT renders the graph in Graphviz format.
func (g *KnowledgeGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph entity {\n")
	fmt.Fprintf(&b, "  %q [shape=box];\n", g.Center)
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.Label)
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the graph as indented facts.
func (g *KnowledgeGraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Center)
	for _, e := range g.Edges {
		if e.From == g.Center {
			fmt.Fprintf(&b, "  —%s→ %s\n", e.Label, e.To)
		}
	}
	for _, e := range g.Edges {
		if e.To == g.Center {
			fmt.Fprintf(&b, "  ←%s— %s\n", e.Label, e.From)
		}
	}
	return b.String()
}
