package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mfiblocks"
	"repro/internal/store"
	"repro/internal/telemetry/trace"
)

// canonicalJSON renders a run's canonical span tree for comparison.
func canonicalJSON(t *testing.T, res *Resolution) string {
	t.Helper()
	tree := res.Trace.Tree(trace.Canonical)
	if tree == nil {
		t.Fatal("traced run produced no tree")
	}
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTraceCanonicalEquivalence is the span system's determinism lock:
// the Canonical tree — timings zeroed, worker/shard/setup spans pruned,
// siblings totally ordered — must be byte-identical across the fan-out
// matrix, because the workload (iterations mined, blocks built, pairs
// spilled, matches ranked) is the same regardless of how it was
// parallelized. A diverging cell means a span site leaked configuration
// into the deterministic tree.
func TestTraceCanonicalEquivalence(t *testing.T) {
	g := equivDataset(t, 200, 777)
	base := Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz, SameSrc: true}

	var want, wantLabel string
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 2, 8} {
			for _, mineShards := range []int{1, 4} {
				// The block cache rides the matrix as a fourth dimension:
				// its hit counts are volatile span attrs, so cached and
				// uncached runs must emit the same canonical bytes.
				for _, blockCache := range []int{0, mfiblocks.DefaultBlockCache} {
					label := fmt.Sprintf("shards=%d mineShards=%d workers=%d cache=%d", shards, mineShards, workers, blockCache)
					opts := StreamOptions{Options: base}
					opts.Workers = workers
					opts.Blocking.Workers = workers
					opts.Blocking.Shards = shards
					opts.Blocking.MineShards = mineShards
					opts.Blocking.BlockCache = blockCache
					opts.Blocking.SpillPairs = 64
					opts.Blocking.SpillDir = t.TempDir()
					opts.Trace = trace.New()
					res, err := RunStream(opts, NewCollectionSource(g.Collection))
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if res.Blocking.Spill.Stats().Runs == 0 {
						t.Fatalf("%s: spill never flushed; the matrix is not exercising spill spans", label)
					}
					got := canonicalJSON(t, res)
					if want == "" {
						want, wantLabel = got, label
						continue
					}
					if got != want {
						t.Errorf("canonical trees diverge: %s vs %s\n%s\nvs\n%s", wantLabel, label, want, got)
					}
				}
			}
		}
	}
}

// TestTraceBatchRun pins the batch pipeline's trace surface: the report
// embeds the Full span tree, the hierarchy reaches run → stage →
// iteration → op depth, and the run span carries workload attributes.
func TestTraceBatchRun(t *testing.T) {
	fx := newFixture(t, 200)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz, SameSrc: true}
	opts.Trace = trace.New()
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != opts.Trace {
		t.Fatal("resolution does not carry the tracer")
	}
	tree := res.Report.Spans
	if tree == nil {
		t.Fatal("report has no span tree")
	}
	if tree.SchemaVersion != trace.TreeSchemaVersion || tree.Spans != opts.Trace.Len() {
		t.Fatalf("tree header = %+v (tracer Len %d)", tree, opts.Trace.Len())
	}
	if d := tree.MaxDepth(); d < 4 {
		t.Fatalf("MaxDepth = %d, want >= 4 (run -> stage -> iteration -> op)", d)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Name != "run" || root.Attrs["records"] != int64(fx.gen.Collection.Len()) ||
		root.Attrs["matches"] != int64(len(res.Matches)) {
		t.Fatalf("run span = %+v", root)
	}
	stages := map[string]bool{}
	for _, c := range root.Children {
		if c.Kind == "stage" {
			stages[c.Name] = true
		}
	}
	for _, want := range []string{"preprocess", "blocking", "scoring", "rank"} {
		if !stages[want] {
			t.Fatalf("stage span %q missing (have %+v)", want, stages)
		}
	}
}

// TestTraceDisabledByDefault pins the no-op default: an untraced run
// must carry no tracer and no span section, so golden reports are
// untouched by the feature.
func TestTraceDisabledByDefault(t *testing.T) {
	fx := newFixture(t, 100)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz, SameSrc: true}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.Report.Spans != nil {
		t.Fatal("untraced run recorded spans")
	}
}

// TestStreamReportSpillStats pins the satellite surfaces on the
// streaming report: spill-run statistics land in the blocking section,
// and a torn-tail store surfaces its skipped bytes.
func TestStreamReportSpillStats(t *testing.T) {
	g := equivDataset(t, 150, 1944)
	path := filepath.Join(t.TempDir(), "records.yvst")
	if err := store.WriteAll(path, g.Collection.Records); err != nil {
		t.Fatal(err)
	}
	// Tear the tail the way a killed writer would: truncate inside the
	// final frame, leaving a partial frame the recovering reader skips.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	src, err := store.OpenWindowReader(path, store.Recover)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	opts := StreamOptions{Options: Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz, SameSrc: true}}
	opts.Blocking.Shards = 2
	opts.Blocking.SpillPairs = 64
	opts.Blocking.SpillDir = t.TempDir()
	res, err := RunStream(opts, src)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if src.TornBytes() == 0 {
		t.Fatal("truncation did not tear a frame")
	}
	if rep.TornBytes != src.TornBytes() {
		t.Fatalf("report TornBytes = %d, reader reports %d", rep.TornBytes, src.TornBytes())
	}
	if rep.Records != g.Collection.Len()-1 {
		t.Fatalf("records = %d, want %d (one lost to the torn frame)", rep.Records, g.Collection.Len()-1)
	}
	st := res.Blocking.Spill.Stats()
	if st.Runs == 0 {
		t.Fatal("fixture never spilled")
	}
	if rep.Blocking.SpillRuns != st.Runs ||
		rep.Blocking.SpilledEntries != st.SpilledEntries ||
		rep.Blocking.SpilledBytes != st.SpilledBytes ||
		rep.Blocking.MergedEntries != st.MergedEntries ||
		rep.Blocking.MergedBytes != st.MergedBytes {
		t.Fatalf("report spill stats %+v diverge from accumulator %+v", rep.Blocking, st)
	}
}
