package core

import (
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// stageRunner executes the pipeline's stages, landing each one's wall
// clock and counters in both the metrics registry and the run report —
// and, when the run is traced, opening one KindStage span per stage
// under the run's root span. Run and RunStream are built from the same
// runner, so the two entry points expose identical per-stage telemetry
// shapes — the stage list is the execution order and golden tests key
// on it.
type stageRunner struct {
	reg    *telemetry.Registry
	report *telemetry.RunReport
	// root is the run's root span (nil when tracing is disabled); every
	// stage span is its child.
	root *trace.Span
}

func newStageRunner(reg *telemetry.Registry, report *telemetry.RunReport, root *trace.Span) *stageRunner {
	return &stageRunner{reg: reg, report: report, root: root}
}

// run executes one named stage, handing the stage's span (nil when
// untraced) to fn so the stage can parent deeper spans under it. The
// stage's counters are recorded only on success — and copied onto the
// span as attributes; a failing stage leaves no report entry, exactly
// as a failing pipeline returned before its stage() call historically.
func (s *stageRunner) run(name string, fn func(sp *trace.Span) (map[string]int64, error)) error {
	t0 := time.Now()
	sp := s.root.Child(name, trace.WithKind(trace.KindStage))
	counters, err := fn(sp)
	if err != nil {
		sp.End()
		return err
	}
	sp.Attrs(counters).End()
	d := time.Since(t0)
	s.reg.Timer("core_stage_seconds", telemetry.L("stage", name)).Observe(d)
	s.report.AddStage(name, d, counters)
	telemetry.Log().Debug("core stage done", "stage", name, "elapsed", d)
	return nil
}
