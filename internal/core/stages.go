package core

import (
	"time"

	"repro/internal/telemetry"
)

// stageRunner executes the pipeline's stages, landing each one's wall
// clock and counters in both the metrics registry and the run report.
// Run and RunStream are built from the same runner, so the two entry
// points expose identical per-stage telemetry shapes — the stage list is
// the execution order and golden tests key on it.
type stageRunner struct {
	reg    *telemetry.Registry
	report *telemetry.RunReport
}

func newStageRunner(reg *telemetry.Registry, report *telemetry.RunReport) *stageRunner {
	return &stageRunner{reg: reg, report: report}
}

// run executes one named stage. The stage's counters are recorded only
// on success; a failing stage leaves no report entry, exactly as a
// failing pipeline returned before its stage() call historically.
func (s *stageRunner) run(name string, fn func() (map[string]int64, error)) error {
	t0 := time.Now()
	counters, err := fn()
	if err != nil {
		return err
	}
	d := time.Since(t0)
	s.reg.Timer("core_stage_seconds", telemetry.L("stage", name)).Observe(d)
	s.report.AddStage(name, d, counters)
	telemetry.Log().Debug("core stage done", "stage", name, "elapsed", d)
	return nil
}
