package core

import (
	"testing"

	"repro/internal/mfiblocks"
)

// TestPipelineDeterministic asserts the full pipeline is reproducible:
// two runs over the same collection yield identical ranked matches.
func TestPipelineDeterministic(t *testing.T) {
	fx := newFixture(t, 250)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz}

	r1, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Matches) != len(r2.Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(r1.Matches), len(r2.Matches))
	}
	for i := range r1.Matches {
		if r1.Matches[i] != r2.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, r1.Matches[i], r2.Matches[i])
		}
	}
	// And the derived views agree.
	e1, e2 := r1.Clusters(0.3), r2.Clusters(0.3)
	if len(e1) != len(e2) {
		t.Fatalf("cluster counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if len(e1[i].Reports) != len(e2[i].Reports) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j := range e1[i].Reports {
			if e1[i].Reports[j] != e2[i].Reports[j] {
				t.Fatalf("cluster %d member %d differs", i, j)
			}
		}
	}
}

// TestRankedOrderMatchesScores asserts the ranked list is sorted.
func TestRankedOrderMatchesScores(t *testing.T) {
	fx := newFixture(t, 250)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Score > res.Matches[i-1].Score {
			t.Fatalf("ranking violated at %d: %v after %v", i, res.Matches[i].Score, res.Matches[i-1].Score)
		}
	}
}
