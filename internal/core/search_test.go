package core

import (
	"testing"

	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func searchFixture(t *testing.T) *Resolution {
	t.Helper()
	fx := newFixture(t, 400)
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: fx.gen.Gaz, Preprocess: true, Gazetteer: fx.gen.Gaz}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSearchByName(t *testing.T) {
	res := searchFixture(t)
	// Pick a real entity's names to query for.
	var first, last string
	for _, e := range res.Clusters(0.3) {
		f, okF := e.Best(record.FirstName)
		l, okL := e.Best(record.LastName)
		if okF && okL && len(e.Reports) >= 2 {
			first, last = f, l
			break
		}
	}
	if first == "" {
		t.Skip("no multi-report entity with full name")
	}
	hits := res.Search(Query{First: first, Last: last, Certainty: 0.3})
	if len(hits) == 0 {
		t.Fatalf("Search(%q,%q) found nothing", first, last)
	}
	for _, e := range hits {
		if !anyNameMatches(e.Values[record.FirstName], first, true) {
			t.Errorf("hit does not match first name %q", first)
		}
	}
}

func TestSearchCertaintyControlsResponse(t *testing.T) {
	res := searchFixture(t)
	loose := res.Search(Query{Certainty: -10}) // every match accepted
	tight := res.Search(Query{Certainty: 10})  // nothing merged
	// With everything merged there are at most as many entities as with
	// nothing merged.
	if len(loose) > len(tight) {
		t.Errorf("loose certainty returned more entities (%d) than tight (%d)", len(loose), len(tight))
	}
	// At maximal certainty every entity is a singleton.
	for _, e := range tight {
		if len(e.Reports) != 1 {
			t.Fatalf("tight search returned merged entity %v", e.Reports)
		}
	}
}

func TestSearchVariantsFold(t *testing.T) {
	res := searchFixture(t)
	// Searching for a nickname-class member should find entities recorded
	// under any variant: count hits for the canonical and for a variant.
	canon := res.Search(Query{First: "Yitzhak", Certainty: 0.3})
	variant := res.Search(Query{First: "Isacco", Certainty: 0.3})
	if len(canon) != len(variant) {
		t.Errorf("class members disagree: Yitzhak=%d Isacco=%d", len(canon), len(variant))
	}
}

func TestSearchEmptyQueryReturnsAll(t *testing.T) {
	res := searchFixture(t)
	all := res.Search(Query{Certainty: 0.5})
	if len(all) != len(res.Clusters(0.5)) {
		t.Errorf("empty query returned %d of %d entities", len(all), len(res.Clusters(0.5)))
	}
}
