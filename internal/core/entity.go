package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/record"
)

// Entity is a resolved person: the set of reports attributed to one
// individual at the chosen certainty, with a merged attribute view.
type Entity struct {
	// Reports are the member BookIDs, ascending.
	Reports []int64
	// Values merges the members' items: every distinct value observed per
	// item type, with the number of supporting reports.
	Values map[record.ItemType][]ValueSupport
}

// ValueSupport is one observed value and how many member reports carry it.
type ValueSupport struct {
	Value   string
	Reports int
}

// Best returns the entity's most supported value of an item type.
func (e *Entity) Best(t record.ItemType) (string, bool) {
	vs := e.Values[t]
	if len(vs) == 0 {
		return "", false
	}
	return vs[0].Value, true
}

// maxClusterCacheEntries bounds the per-certainty Clusters memo so a
// client sweeping thresholds cannot grow the resolution unboundedly.
const maxClusterCacheEntries = 64

// Clusters resolves the matches at the given certainty into entities:
// connected components over the accepted pairs, with singletons for
// unmatched records. This is the query-time crisp view of the uncertain
// resolution. Results are memoized per certainty — repeated server
// queries at one threshold skip the union-find — and must be treated as
// read-only. Safe for concurrent use.
func (r *Resolution) Clusters(theta float64) []*Entity {
	if math.IsNaN(theta) {
		// NaN is not a usable map key (NaN != NaN); compute uncached.
		return r.clusters(theta)
	}
	r.clusterMu.Lock()
	if ents, ok := r.clusterCache[theta]; ok {
		r.clusterMu.Unlock()
		return ents
	}
	r.clusterMu.Unlock()
	ents := r.clusters(theta)
	r.clusterMu.Lock()
	if r.clusterCache == nil || len(r.clusterCache) >= maxClusterCacheEntries {
		r.clusterCache = make(map[float64][]*Entity)
	}
	r.clusterCache[theta] = ents
	r.clusterMu.Unlock()
	return ents
}

func (r *Resolution) clusters(theta float64) []*Entity {
	accepted := r.AtCertainty(theta)
	uf := newUnionFind()
	for _, rec := range r.Collection.Records {
		uf.find(rec.BookID)
	}
	for _, m := range accepted {
		uf.union(m.Pair.A, m.Pair.B)
	}
	groups := make(map[int64][]int64)
	for _, rec := range r.Collection.Records {
		root := uf.find(rec.BookID)
		groups[root] = append(groups[root], rec.BookID)
	}
	roots := make([]int64, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	entities := make([]*Entity, 0, len(groups))
	for _, root := range roots {
		ids := groups[root]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		entities = append(entities, r.buildEntity(ids))
	}
	return entities
}

// EntityOf returns the resolved entity containing the given report at the
// given certainty.
func (r *Resolution) EntityOf(bookID int64, theta float64) (*Entity, bool) {
	for _, e := range r.Clusters(theta) {
		for _, id := range e.Reports {
			if id == bookID {
				return e, true
			}
		}
	}
	return nil, false
}

func (r *Resolution) buildEntity(ids []int64) *Entity {
	e := &Entity{Reports: ids, Values: make(map[record.ItemType][]ValueSupport)}
	counts := make(map[record.ItemType]map[string]int)
	for _, id := range ids {
		rec := r.Collection.ByID(id)
		if rec == nil {
			continue
		}
		seen := make(map[string]bool)
		for _, it := range rec.Items {
			key := it.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			if counts[it.Type] == nil {
				counts[it.Type] = make(map[string]int)
			}
			counts[it.Type][it.Value]++
		}
	}
	for t, vs := range counts {
		for v, c := range vs {
			e.Values[t] = append(e.Values[t], ValueSupport{Value: v, Reports: c})
		}
		sort.Slice(e.Values[t], func(i, j int) bool {
			if e.Values[t][i].Reports != e.Values[t][j].Reports {
				return e.Values[t][i].Reports > e.Values[t][j].Reports
			}
			return e.Values[t][i].Value < e.Values[t][j].Value
		})
	}
	return e
}

// Narrative renders a short biographical narrative from the entity's
// merged view — the paper's motivating application: weaving victim
// reports into a person's story.
func (e *Entity) Narrative() string {
	var b strings.Builder
	first, _ := e.Best(record.FirstName)
	last, _ := e.Best(record.LastName)
	name := strings.TrimSpace(first + " " + last)
	if name == "" {
		name = "An unidentified person"
	}
	b.WriteString(name)

	if year, ok := e.Best(record.BirthYear); ok {
		if city, okCity := e.Best(record.BirthCity); okCity {
			fmt.Fprintf(&b, " was born in %s in %s", year, city)
		} else {
			fmt.Fprintf(&b, " was born in %s", year)
		}
	}
	if father, ok := e.Best(record.FatherName); ok {
		fmt.Fprintf(&b, ", child of %s", father)
		if mother, okM := e.Best(record.MotherName); okM {
			fmt.Fprintf(&b, " and %s", mother)
		}
	}
	if spouse, ok := e.Best(record.SpouseName); ok {
		fmt.Fprintf(&b, ", married to %s", spouse)
	}
	if perm, ok := e.Best(record.PermCity); ok {
		fmt.Fprintf(&b, ". They lived in %s", perm)
	}
	if war, ok := e.Best(record.WarCity); ok {
		fmt.Fprintf(&b, "; during the war they were in %s", war)
	}
	if death, ok := e.Best(record.DeathCity); ok {
		fmt.Fprintf(&b, ". They perished in %s", death)
	}
	fmt.Fprintf(&b, ". The story is told by %d report(s).", len(e.Reports))
	return b.String()
}

// unionFind is a path-compressing union-find over BookIDs.
type unionFind struct {
	parent map[int64]int64
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[int64]int64)}
}

func (u *unionFind) find(x int64) int64 {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p != x {
		u.parent[x] = u.find(p)
	}
	return u.parent[x]
}

func (u *unionFind) union(a, b int64) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}
