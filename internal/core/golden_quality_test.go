package core

import (
	"testing"

	"repro/internal/adtree"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
)

// Golden end-to-end quality bounds on the Italy preset (600 persons,
// seed 1944) with the full trained pipeline. The generator and pipeline
// are both deterministic, so drift outside these windows means resolution
// quality changed — regenerate intentionally or find the regression.
// The windows leave headroom for intentional model/feature tuning while
// still catching gross regressions (a broken filter, a scoring
// inversion, a blocking recall collapse).
// Measured on the current pipeline: precision 0.964, recall 0.650,
// F1 0.776.
const (
	goldenMinPrecision = 0.90
	goldenMinRecall    = 0.60
	goldenMinF1        = 0.72
)

// TestGoldenEndToEndQuality pins the full pipeline's quality on the
// Italy preset — and requires the streaming sharded path to land on the
// exact same metrics, since its matches must be bit-identical.
func TestGoldenEndToEndQuality(t *testing.T) {
	fx := newFixture(t, 600)
	gen := fx.gen
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        gen.Gaz,
		Preprocess: true,
		Gazetteer:  gen.Gaz,
		SameSrc:    true,
		Model:      model,
		Classify:   true,
	}
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}

	truth := eval.NewPairSet(gen.Gold.TruePairs())
	m := eval.Evaluate(res.Pairs(), truth)
	t.Logf("golden e2e: precision=%.4f recall=%.4f f1=%.4f (tp=%d fp=%d fn=%d)",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
	if m.Precision < goldenMinPrecision {
		t.Errorf("precision %.4f below golden floor %.2f", m.Precision, goldenMinPrecision)
	}
	if m.Recall < goldenMinRecall {
		t.Errorf("recall %.4f below golden floor %.2f", m.Recall, goldenMinRecall)
	}
	if m.F1 < goldenMinF1 {
		t.Errorf("f1 %.4f below golden floor %.2f", m.F1, goldenMinF1)
	}

	// The streaming sharded path must land on the exact same metrics.
	sopts := StreamOptions{Options: opts, RetainRecords: true}
	sopts.Blocking.Shards = 4
	sopts.Blocking.SpillPairs = 256
	sopts.Blocking.SpillDir = t.TempDir()
	sres, err := RunStream(sopts, NewCollectionSource(gen.Collection))
	if err != nil {
		t.Fatal(err)
	}
	sm := eval.Evaluate(sres.Pairs(), truth)
	if sm != m {
		t.Errorf("streaming metrics diverge from batch: %+v vs %+v", sm, m)
	}
}
