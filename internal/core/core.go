// Package core is the uncertain entity resolution pipeline of the paper:
// preprocessing (name and place equivalence classes), MFIBlocks soft
// blocking, pair feature extraction, ADTree scoring, and — the heart of
// the uncertain-ER model — a *ranked* resolution that is disambiguated
// only at query time, by a certainty threshold and a granularity choice
// (person vs. family), instead of a single crisp clustering.
package core

import (
	"fmt"
	"sort"

	"repro/internal/adtree"
	"repro/internal/features"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Options configures a pipeline run.
type Options struct {
	// Blocking parameterizes the MFIBlocks stage.
	Blocking mfiblocks.Config
	// Geo resolves place distances for feature extraction (and for
	// ExpertSim blocking if enabled there).
	Geo similarity.GeoDistancer
	// Preprocess folds name and place spelling variants into their
	// equivalence classes before blocking, as the Names Project
	// preprocessing did.
	Preprocess bool
	// Gazetteer, when set, canonicalizes place names during
	// preprocessing; nil falls back to the built-in catalogue.
	Gazetteer *gazetteer.Gazetteer
	// SameSrc discards candidate pairs that share a source (the same
	// victim list or the same testimony submitter): the same person is
	// unlikely to appear twice in one source.
	SameSrc bool
	// Model scores candidate pairs; nil leaves matches ranked by block
	// score only.
	Model *adtree.Model
	// Classify drops pairs the model scores at or below zero (the Cls
	// condition). Requires Model.
	Classify bool
}

// NewOptions returns the deployment defaults: preprocessing on, default
// blocking, SameSrc and classification enabled once a model is supplied.
func NewOptions(geo similarity.GeoDistancer) Options {
	return Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        geo,
		Preprocess: true,
		SameSrc:    true,
		Classify:   true,
	}
}

// RankedMatch is one candidate pair with its similarity evidence.
type RankedMatch struct {
	Pair record.Pair
	// BlockScore is the best MFIBlocks block score containing the pair.
	BlockScore float64
	// Score is the ADTree confidence when a model is set, otherwise the
	// block score. Matches are ranked by it.
	Score float64
}

// Resolution is the uncertain-ER outcome: a ranked list of possible
// matches, resolved into entities only on demand.
type Resolution struct {
	// Matches are ranked by descending Score.
	Matches []RankedMatch
	// Blocking is the raw MFIBlocks result.
	Blocking *mfiblocks.Result
	// Collection is the (possibly preprocessed) collection resolved.
	Collection *record.Collection
	// DiscardedSameSrc counts candidates dropped by the SameSrc filter.
	DiscardedSameSrc int
	// DiscardedByModel counts candidates dropped by classification.
	DiscardedByModel int
}

// Run executes the pipeline.
func Run(opts Options, coll *record.Collection) (*Resolution, error) {
	work := coll
	if opts.Preprocess {
		gaz := opts.Gazetteer
		if gaz == nil {
			gaz = gazetteer.Builtin(0)
		}
		var err error
		work, err = PreprocessWith(coll, gaz)
		if err != nil {
			return nil, fmt.Errorf("core: preprocess: %w", err)
		}
	}
	if opts.Classify && opts.Model == nil {
		return nil, fmt.Errorf("core: Classify requires a Model")
	}

	blk, err := mfiblocks.Run(opts.Blocking, work)
	if err != nil {
		return nil, fmt.Errorf("core: blocking: %w", err)
	}

	res := &Resolution{Blocking: blk, Collection: work}
	ex := features.NewExtractor(opts.Geo)
	for _, p := range blk.Pairs {
		ra, rb := work.ByID(p.A), work.ByID(p.B)
		if opts.SameSrc && ra.Source != "" && ra.Source == rb.Source {
			res.DiscardedSameSrc++
			continue
		}
		m := RankedMatch{Pair: p, BlockScore: blk.PairScores[p]}
		m.Score = m.BlockScore
		if opts.Model != nil {
			m.Score = opts.Model.Score(ex.Extract(ra, rb))
			if opts.Classify && m.Score <= 0 {
				res.DiscardedByModel++
				continue
			}
		}
		res.Matches = append(res.Matches, m)
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].Score != res.Matches[j].Score {
			return res.Matches[i].Score > res.Matches[j].Score
		}
		a, b := res.Matches[i].Pair, res.Matches[j].Pair
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return res, nil
}

// AtCertainty returns the matches with Score >= theta — the query-time
// certainty slider of the uncertain-ER model.
func (r *Resolution) AtCertainty(theta float64) []RankedMatch {
	// Matches are sorted descending; binary search for the cut.
	lo := sort.Search(len(r.Matches), func(i int) bool {
		return r.Matches[i].Score < theta
	})
	return r.Matches[:lo]
}

// Pairs returns the ranked matches' pairs in rank order.
func (r *Resolution) Pairs() []record.Pair {
	out := make([]record.Pair, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = m.Pair
	}
	return out
}
