// Package core is the uncertain entity resolution pipeline of the paper:
// preprocessing (name and place equivalence classes), MFIBlocks soft
// blocking, pair feature extraction, ADTree scoring, and — the heart of
// the uncertain-ER model — a *ranked* resolution that is disambiguated
// only at query time, by a certainty threshold and a granularity choice
// (person vs. family), instead of a single crisp clustering.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/adtree"
	"repro/internal/features"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Options configures a pipeline run.
type Options struct {
	// Blocking parameterizes the MFIBlocks stage.
	Blocking mfiblocks.Config
	// Geo resolves place distances for feature extraction (and for
	// ExpertSim blocking if enabled there).
	Geo similarity.GeoDistancer
	// Preprocess folds name and place spelling variants into their
	// equivalence classes before blocking, as the Names Project
	// preprocessing did.
	Preprocess bool
	// Gazetteer, when set, canonicalizes place names during
	// preprocessing; nil falls back to the built-in catalogue.
	Gazetteer *gazetteer.Gazetteer
	// SameSrc discards candidate pairs that share a source (the same
	// victim list or the same testimony submitter): the same person is
	// unlikely to appear twice in one source.
	SameSrc bool
	// Model scores candidate pairs; nil leaves matches ranked by block
	// score only.
	Model *adtree.Model
	// Classify drops pairs the model scores at or below zero (the Cls
	// condition). Requires Model.
	Classify bool
	// Workers bounds the goroutines scoring candidate pairs: 0 means
	// GOMAXPROCS, 1 runs the exact serial path. Output is deterministic —
	// identical Matches order and discard counters — for every worker
	// count.
	Workers int
}

// NewOptions returns the deployment defaults: preprocessing on, default
// blocking, SameSrc and classification enabled once a model is supplied.
func NewOptions(geo similarity.GeoDistancer) Options {
	return Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        geo,
		Preprocess: true,
		SameSrc:    true,
		Classify:   true,
	}
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RankedMatch is one candidate pair with its similarity evidence.
type RankedMatch struct {
	Pair record.Pair
	// BlockScore is the best MFIBlocks block score containing the pair.
	BlockScore float64
	// Score is the ADTree confidence when a model is set, otherwise the
	// block score. Matches are ranked by it.
	Score float64
}

// Resolution is the uncertain-ER outcome: a ranked list of possible
// matches, resolved into entities only on demand.
type Resolution struct {
	// Matches are ranked by descending Score.
	Matches []RankedMatch
	// Blocking is the raw MFIBlocks result.
	Blocking *mfiblocks.Result
	// Collection is the (possibly preprocessed) collection resolved.
	Collection *record.Collection
	// DiscardedSameSrc counts candidates dropped by the SameSrc filter.
	DiscardedSameSrc int
	// DiscardedByModel counts candidates dropped by classification.
	DiscardedByModel int

	// model and profiles carry the scoring machinery into the query
	// paths: ScorePair (and the server's /api/pair) re-score ad-hoc pairs
	// without redoing per-record extraction work.
	model    *adtree.Model
	profiles *features.ProfileCache

	// clusterMu guards clusterCache, the per-certainty memo of Clusters —
	// repeated server queries at the same threshold skip the union-find.
	clusterMu    sync.Mutex
	clusterCache map[float64][]*Entity
}

// scoreResult is one scoring stage's output before ranking.
type scoreResult struct {
	matches []RankedMatch
	sameSrc int
	byModel int
}

// scoreChunkSize is the number of candidate pairs a scoring worker claims
// at a time. Small enough to balance skewed chunks, large enough that the
// per-chunk bookkeeping is noise.
const scoreChunkSize = 512

// Run executes the pipeline.
func Run(opts Options, coll *record.Collection) (*Resolution, error) {
	work := coll
	if opts.Preprocess {
		gaz := opts.Gazetteer
		if gaz == nil {
			gaz = gazetteer.Builtin(0)
		}
		var err error
		work, err = PreprocessWith(coll, gaz)
		if err != nil {
			return nil, fmt.Errorf("core: preprocess: %w", err)
		}
	}
	if opts.Classify && opts.Model == nil {
		return nil, fmt.Errorf("core: Classify requires a Model")
	}

	blk, err := mfiblocks.Run(opts.Blocking, work)
	if err != nil {
		return nil, fmt.Errorf("core: blocking: %w", err)
	}

	res := &Resolution{
		Blocking:   blk,
		Collection: work,
		model:      opts.Model,
		profiles:   features.NewProfileCache(features.NewExtractor(opts.Geo)),
	}
	st := scorePairs(&opts, work, blk, res.profiles, opts.workers())
	res.Matches = st.matches
	res.DiscardedSameSrc = st.sameSrc
	res.DiscardedByModel = st.byModel
	sortMatches(res.Matches)
	return res, nil
}

// sortMatches ranks matches by descending score, breaking ties by pair —
// a total order over distinct pairs, so the ranking is independent of the
// pre-sort order the scoring stage produced.
func sortMatches(ms []RankedMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		a, b := ms[i].Pair, ms[j].Pair
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// scorePairs runs the scoring stage — SameSrc filtering, feature
// extraction, model scoring, classification — over the blocking
// candidates. workers==1 runs the exact serial seed path; otherwise the
// pairs are scored on a chunked worker pool over cached record profiles,
// with chunk-ordered merging so the output is identical to the serial
// path for every worker count.
func scorePairs(opts *Options, work *record.Collection, blk *mfiblocks.Result, cache *features.ProfileCache, workers int) scoreResult {
	if workers <= 1 || len(blk.Pairs) == 0 {
		return scoreSerial(opts, work, blk, cache.Extractor())
	}

	profs := cache.Build(work, workers)
	pairs := blk.Pairs
	numChunks := (len(pairs) + scoreChunkSize - 1) / scoreChunkSize
	if workers > numChunks {
		workers = numChunks
	}
	chunks := make([]scoreResult, numChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := cache.Extractor()
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo, hi := c*scoreChunkSize, (c+1)*scoreChunkSize
				if hi > len(pairs) {
					hi = len(pairs)
				}
				var out scoreResult
				for _, p := range pairs[lo:hi] {
					ia, ib := work.Index(p.A), work.Index(p.B)
					ra, rb := work.Records[ia], work.Records[ib]
					if opts.SameSrc && ra.Source != "" && ra.Source == rb.Source {
						out.sameSrc++
						continue
					}
					m := RankedMatch{Pair: p, BlockScore: blk.PairScores[p]}
					m.Score = m.BlockScore
					if opts.Model != nil {
						m.Score = opts.Model.Score(ex.ExtractProfiled(profs[ia], profs[ib]))
						if opts.Classify && m.Score <= 0 {
							out.byModel++
							continue
						}
					}
					out.matches = append(out.matches, m)
				}
				chunks[c] = out
			}
		}()
	}
	wg.Wait()

	var total scoreResult
	n := 0
	for i := range chunks {
		n += len(chunks[i].matches)
	}
	total.matches = make([]RankedMatch, 0, n)
	for i := range chunks {
		total.matches = append(total.matches, chunks[i].matches...)
		total.sameSrc += chunks[i].sameSrc
		total.byModel += chunks[i].byModel
	}
	return total
}

// scoreSerial is the seed's serial scoring loop, byte-for-byte: one
// goroutine, per-pair Extract with no profile cache.
func scoreSerial(opts *Options, work *record.Collection, blk *mfiblocks.Result, ex *features.Extractor) scoreResult {
	var out scoreResult
	for _, p := range blk.Pairs {
		ra, rb := work.ByID(p.A), work.ByID(p.B)
		if opts.SameSrc && ra.Source != "" && ra.Source == rb.Source {
			out.sameSrc++
			continue
		}
		m := RankedMatch{Pair: p, BlockScore: blk.PairScores[p]}
		m.Score = m.BlockScore
		if opts.Model != nil {
			m.Score = opts.Model.Score(ex.Extract(ra, rb))
			if opts.Classify && m.Score <= 0 {
				out.byModel++
				continue
			}
		}
		out.matches = append(out.matches, m)
	}
	return out
}

// Profiles returns the resolution's record-profile cache. Query paths use
// it to re-score pairs without re-deriving per-record features; profiles
// are built lazily on first use.
func (r *Resolution) Profiles() *features.ProfileCache { return r.profiles }

// ScorePair scores an arbitrary pair of reports on demand, through the
// cached profiles: the model confidence when the resolution carries a
// model, otherwise the pair's blocking score (0 when blocking never
// proposed the pair). It is safe for concurrent use.
func (r *Resolution) ScorePair(aID, bID int64) (RankedMatch, error) {
	ra, rb := r.Collection.ByID(aID), r.Collection.ByID(bID)
	if ra == nil {
		return RankedMatch{}, fmt.Errorf("core: unknown report %d", aID)
	}
	if rb == nil {
		return RankedMatch{}, fmt.Errorf("core: unknown report %d", bID)
	}
	if aID == bID {
		return RankedMatch{}, fmt.Errorf("core: report %d paired with itself", aID)
	}
	m := RankedMatch{Pair: record.MakePair(aID, bID)}
	if r.Blocking != nil {
		m.BlockScore = r.Blocking.PairScores[m.Pair]
	}
	m.Score = m.BlockScore
	if r.model != nil && r.profiles != nil {
		ex := r.profiles.Extractor()
		m.Score = r.model.Score(ex.ExtractProfiled(r.profiles.Get(ra), r.profiles.Get(rb)))
	}
	return m, nil
}

// AtCertainty returns the matches with Score >= theta — the query-time
// certainty slider of the uncertain-ER model. A NaN threshold matches
// nothing (NaN compares false with every score).
func (r *Resolution) AtCertainty(theta float64) []RankedMatch {
	if math.IsNaN(theta) {
		return nil
	}
	// Matches are sorted descending; binary search for the cut.
	lo := sort.Search(len(r.Matches), func(i int) bool {
		return r.Matches[i].Score < theta
	})
	return r.Matches[:lo]
}

// Pairs returns the ranked matches' pairs in rank order.
func (r *Resolution) Pairs() []record.Pair {
	out := make([]record.Pair, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = m.Pair
	}
	return out
}
