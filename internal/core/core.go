// Package core is the uncertain entity resolution pipeline of the paper:
// preprocessing (name and place equivalence classes), MFIBlocks soft
// blocking, pair feature extraction, ADTree scoring, and — the heart of
// the uncertain-ER model — a *ranked* resolution that is disambiguated
// only at query time, by a certainty threshold and a granularity choice
// (person vs. family), instead of a single crisp clustering.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adtree"
	"repro/internal/features"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Options configures a pipeline run.
type Options struct {
	// Blocking parameterizes the MFIBlocks stage.
	Blocking mfiblocks.Config
	// Geo resolves place distances for feature extraction (and for
	// ExpertSim blocking if enabled there).
	Geo similarity.GeoDistancer
	// Preprocess folds name and place spelling variants into their
	// equivalence classes before blocking, as the Names Project
	// preprocessing did.
	Preprocess bool
	// Gazetteer, when set, canonicalizes place names during
	// preprocessing; nil falls back to the built-in catalogue.
	Gazetteer *gazetteer.Gazetteer
	// SameSrc discards candidate pairs that share a source (the same
	// victim list or the same testimony submitter): the same person is
	// unlikely to appear twice in one source.
	SameSrc bool
	// Model scores candidate pairs; nil leaves matches ranked by block
	// score only.
	Model *adtree.Model
	// Classify drops pairs the model scores at or below zero (the Cls
	// condition). Requires Model.
	Classify bool
	// Workers bounds the goroutines used by the pipeline's parallel
	// stages: candidate-pair scoring and — unless Blocking.Workers is set
	// explicitly — the blocking stage's MFI mining and block construction.
	// 0 means GOMAXPROCS, 1 runs the exact serial paths. Output is
	// deterministic — identical Matches order, candidate pairs, and
	// discard counters — for every worker count.
	Workers int
	// MemoSize bounds the scoring stage's value-pair similarity memo
	// cache (entries): the dataset's value skew makes the same
	// (surname, surname) or (city, city) kernel comparison recur across
	// thousands of candidate pairs, and the memo computes each once per
	// run. 0 selects features.DefaultMemoSize; negative disables the
	// memo. The memo stores pure kernel results, so it never changes
	// outputs — Matches are bit-identical with the memo on or off.
	MemoSize int
	// Metrics receives pipeline counters, timings, and distributions
	// (core_*, mfiblocks_*, fpgrowth_* families); nil falls back to
	// telemetry.Default().
	Metrics *telemetry.Registry
	// Trace, when set, records the run's hierarchical span tree — run →
	// stage → iteration/shard → worker — plus any flight-recorder series
	// the caller started on it. The tree lands in Report.Spans and the
	// tracer survives on Resolution.Trace for the Chrome export. Nil
	// disables tracing at one nil check per span site.
	Trace *trace.Tracer
	// Progress, when set, receives live stage transitions, item counts,
	// and shard completions. Callers own Start/Stop. Nil disables.
	Progress *trace.Progress
}

// NewOptions returns the deployment defaults: preprocessing on, default
// blocking, SameSrc and classification enabled once a model is supplied.
func NewOptions(geo similarity.GeoDistancer) Options {
	return Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        geo,
		Preprocess: true,
		SameSrc:    true,
		Classify:   true,
	}
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) metrics() *telemetry.Registry {
	if o.Metrics != nil {
		return o.Metrics
	}
	return telemetry.Default()
}

// Validate reports the first problem with the options. Run calls it,
// and the CLIs call it right after flag parsing so a bad -workers or a
// NaN blocking parameter fails at the flag, not deep inside the
// scoring pool.
func (o *Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", o.Workers)
	}
	if o.Classify && o.Model == nil {
		return fmt.Errorf("core: Classify requires a Model")
	}
	if err := o.Blocking.Validate(); err != nil {
		return fmt.Errorf("core: blocking: %w", err)
	}
	return nil
}

// RankedMatch is one candidate pair with its similarity evidence.
type RankedMatch struct {
	Pair record.Pair
	// BlockScore is the best MFIBlocks block score containing the pair.
	BlockScore float64
	// Score is the ADTree confidence when a model is set, otherwise the
	// block score. Matches are ranked by it.
	Score float64
}

// Resolution is the uncertain-ER outcome: a ranked list of possible
// matches, resolved into entities only on demand.
type Resolution struct {
	// Matches are ranked by descending Score.
	Matches []RankedMatch
	// Blocking is the raw MFIBlocks result.
	Blocking *mfiblocks.Result
	// Collection is the (possibly preprocessed) collection resolved.
	Collection *record.Collection
	// DiscardedSameSrc counts candidates dropped by the SameSrc filter.
	DiscardedSameSrc int
	// DiscardedByModel counts candidates dropped by classification.
	DiscardedByModel int
	// Report is the run's telemetry breakdown: per-stage wall clock,
	// blocking iterations, scoring counters, and the score
	// distribution. The server exposes it at /api/report; the CLIs
	// write it with -report.
	Report *telemetry.RunReport
	// Trace is the run's tracer when Options.Trace was set: the full
	// span record behind Report.Spans, exportable as Chrome trace-event
	// JSON (the server's /api/trace, the CLIs' -trace-out). Nil when the
	// run was untraced.
	Trace *trace.Tracer

	// model and profiles carry the scoring machinery into the query
	// paths: ScorePair (and the server's /api/pair) re-score ad-hoc pairs
	// without redoing per-record extraction work.
	model    *adtree.Model
	profiles *features.ProfileCache

	// clusterMu guards clusterCache, the per-certainty memo of Clusters —
	// repeated server queries at the same threshold skip the union-find.
	clusterMu    sync.Mutex
	clusterCache map[float64][]*Entity

	// pairOnce/pairIdx lazily index Matches by pair for ScorePair when
	// candidate pairs were spilled to disk and Blocking.PairScores was
	// never materialized. Only query paths that ask for ad-hoc pairs pay
	// the index's memory.
	pairOnce sync.Once
	pairIdx  map[record.Pair]int
}

// scoreResult is one scoring stage's output before ranking. The
// telemetry fields (candidates, chunks, scores) ride along so Run can
// fold them into the RunReport without re-walking the matches.
type scoreResult struct {
	matches    []RankedMatch
	candidates int
	sameSrc    int
	byModel    int
	chunks     int
	scores     *telemetry.Histogram
}

// observe folds one match score into the stage's local distribution.
func (s *scoreResult) observe(score float64) {
	if s.scores != nil {
		s.scores.Observe(score)
	}
}

// scoreChunkSize is the number of candidate pairs a scoring worker claims
// at a time. Small enough to balance skewed chunks, large enough that the
// per-chunk bookkeeping is noise.
const scoreChunkSize = 512

// wireDefaults threads the run-wide registry and worker knob into the
// blocking config unless the caller pinned its own.
func wireDefaults(opts *Options, reg *telemetry.Registry) {
	if opts.Blocking.Metrics == nil {
		// One registry for the whole run: blocking (and its miner)
		// report where the pipeline reports.
		opts.Blocking.Metrics = reg
	}
	if opts.Blocking.Workers == 0 {
		// One worker knob for the whole pipeline: -workers bounds the
		// blocking fan-out exactly as it bounds pair scoring, unless the
		// blocking config pins its own count.
		opts.Blocking.Workers = opts.Workers
	}
	if opts.Blocking.Progress == nil {
		// One progress hook for the whole pipeline: the blocking stage
		// posts covered-record counts and shard completions to the same
		// sink the ingest and scoring stages use.
		opts.Blocking.Progress = opts.Progress
	}
}

// Run executes the pipeline, recording a per-stage telemetry breakdown
// (attached to the Resolution as Report) and registry metrics along the
// way. It is the batch entry point over an in-memory collection;
// RunStream is its streaming twin over a RecordSource.
func Run(opts Options, coll *record.Collection) (*Resolution, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	reg := opts.metrics()
	wireDefaults(&opts, reg)
	report := &telemetry.RunReport{
		SchemaVersion: telemetry.ReportSchemaVersion,
		Records:       coll.Len(),
		Workers:       opts.workers(),
	}
	// The root span carries workload attributes only (no worker/shard
	// counts): Canonical trees must be identical across fan-out
	// configurations, and configuration already lives in the report.
	root := opts.Trace.StartSpan(nil, "run", trace.WithKind(trace.KindRun)).
		Attr("records", int64(coll.Len()))
	stages := newStageRunner(reg, report, root)

	work := coll
	if err := stages.run("preprocess", func(sp *trace.Span) (map[string]int64, error) {
		opts.Progress.Stage("preprocess", int64(coll.Len()))
		if opts.Preprocess {
			gaz := opts.Gazetteer
			if gaz == nil {
				gaz = gazetteer.Builtin(0)
			}
			var err error
			work, err = PreprocessWith(coll, gaz)
			if err != nil {
				return nil, fmt.Errorf("core: preprocess: %w", err)
			}
		}
		opts.Progress.Add(int64(work.Len()))
		return map[string]int64{"records": int64(work.Len())}, nil
	}); err != nil {
		return nil, err
	}

	var blk *mfiblocks.Result
	if err := stages.run("blocking", func(sp *trace.Span) (map[string]int64, error) {
		blocking := opts.Blocking
		blocking.Trace = sp
		var err error
		blk, err = mfiblocks.Run(blocking, work)
		if err != nil {
			return nil, fmt.Errorf("core: blocking: %w", err)
		}
		return blockingCounters(blk), nil
	}); err != nil {
		return nil, err
	}

	return resolve(&opts, reg, report, stages, work, blk)
}

// resolve runs the pipeline's back half — scoring and ranking — over a
// finished blocking result, then assembles the Resolution and its
// report. Run and RunStream converge here: spilled and in-memory
// candidate sets take the same path from this point on.
func resolve(opts *Options, reg *telemetry.Registry, report *telemetry.RunReport, stages *stageRunner, work *record.Collection, blk *mfiblocks.Result) (*Resolution, error) {
	report.Blocking = blockingReport(blk)
	res := &Resolution{
		Blocking:   blk,
		Collection: work,
		model:      opts.Model,
		profiles:   features.NewProfileCache(newScoringExtractor(opts)),
		Report:     report,
	}

	var st scoreResult
	if err := stages.run("scoring", func(sp *trace.Span) (map[string]int64, error) {
		var err error
		st, err = runScoring(opts, work, blk, res.profiles, opts.workers(), reg, sp)
		if err != nil {
			return nil, fmt.Errorf("core: scoring: %w", err)
		}
		res.Matches = st.matches
		res.DiscardedSameSrc = st.sameSrc
		res.DiscardedByModel = st.byModel
		return map[string]int64{
			"candidates":       int64(st.candidates),
			"matches":          int64(len(st.matches)),
			"same_src_dropped": int64(st.sameSrc),
			"model_dropped":    int64(st.byModel),
		}, nil
	}); err != nil {
		return nil, err
	}

	if err := stages.run("rank", func(sp *trace.Span) (map[string]int64, error) {
		opts.Progress.Stage("rank", int64(len(res.Matches)))
		sortMatches(res.Matches)
		opts.Progress.Add(int64(len(res.Matches)))
		return map[string]int64{"matches": int64(len(res.Matches))}, nil
	}); err != nil {
		return nil, err
	}

	// A spilled run learns its exact candidate count only at the merge,
	// so the blocking report is finalized after scoring.
	report.Blocking.Pairs = st.candidates
	if blk.Spill != nil {
		// Stats stay valid after Close: runs, spilled entries/bytes, and
		// what the scoring merge delivered back.
		ss := blk.Spill.Stats()
		report.Blocking.SpillRuns = ss.Runs
		report.Blocking.SpilledEntries = ss.SpilledEntries
		report.Blocking.SpilledBytes = ss.SpilledBytes
		report.Blocking.MergedEntries = ss.MergedEntries
		report.Blocking.MergedBytes = ss.MergedBytes
	}
	report.Scoring = scoringReport(&st, res.profiles, opts.workers())
	stages.root.Attr("matches", int64(len(res.Matches))).End()
	if opts.Trace != nil {
		res.Trace = opts.Trace
		report.Spans = opts.Trace.Tree(trace.Full)
	}
	reg.Counter("core_runs_total").Inc()
	reg.Counter("core_candidate_pairs_total").Add(int64(st.candidates))
	reg.Counter("core_matches_total").Add(int64(len(res.Matches)))
	reg.Counter("core_samesrc_dropped_total").Add(int64(st.sameSrc))
	reg.Counter("core_model_dropped_total").Add(int64(st.byModel))
	if st.scores != nil {
		reg.Histogram("core_score_distribution", telemetry.ScoreBuckets).Merge(st.scores)
	}
	cs := res.profiles.Stats()
	reg.Gauge("core_profiles_cached").Set(float64(cs.Size))
	ex := res.profiles.Extractor()
	if ms := ex.Memo.Stats(); ex.Memo != nil {
		reg.Counter(telemetry.FamilyMemoHits).Add(ms.Hits)
		reg.Counter(telemetry.FamilyMemoMisses).Add(ms.Misses)
		reg.Counter(telemetry.FamilyMemoEvictions).Add(ms.Evictions)
		reg.Gauge(telemetry.FamilyMemoEntries).Set(float64(ms.Entries))
	}
	reg.Gauge(telemetry.FamilyInternedStrings).Set(float64(ex.InternedStrings()))
	telemetry.Log().Info("core run done",
		"records", work.Len(), "candidates", st.candidates,
		"matches", len(res.Matches), "workers", opts.workers(),
		"elapsed", time.Duration(report.TotalNS))
	return res, nil
}

// blockingCounters summarizes a blocking result for its stage entry. A
// spilled run reports its spill activity instead of an exact pair count
// — distinct pairs are only known once the scoring stage merges the
// runs.
func blockingCounters(blk *mfiblocks.Result) map[string]int64 {
	c := map[string]int64{
		"blocks":     int64(len(blk.Blocks)),
		"pairs":      int64(len(blk.Pairs)),
		"iterations": int64(len(blk.Iterations)),
	}
	if blk.Spill != nil {
		st := blk.Spill.Stats()
		c["spill_runs"] = int64(st.Runs)
		c["spill_entries"] = st.SpilledEntries
	}
	return c
}

// runScoring dispatches the scoring stage on the blocking result's
// candidate representation: the in-memory pair slice goes through the
// chunked pool (or the exact serial seed path), a spilled run is drained
// through its sorted merge. Both yield the same Matches after ranking —
// sortMatches is a total order, so the pre-sort order difference between
// first-seen and (A, B)-merged streams cannot survive it.
func runScoring(opts *Options, work *record.Collection, blk *mfiblocks.Result, cache *features.ProfileCache, workers int, reg *telemetry.Registry, sp *trace.Span) (scoreResult, error) {
	if blk.Spill != nil {
		opts.Progress.Stage("scoring", 0) // distinct-pair total unknown until the merge
		blk.Spill.Trace = sp              // merge-open span lands under the scoring stage
		st, err := scoreSpill(opts, work, blk, cache, workers, reg, sp)
		if err != nil {
			return st, err
		}
		// The merge is single-shot; release the run files now rather
		// than holding descriptors for the Resolution's lifetime.
		if err := blk.Spill.Close(); err != nil {
			return st, err
		}
		return st, nil
	}
	opts.Progress.Stage("scoring", int64(len(blk.Pairs)))
	st := scorePairs(opts, work, blk, cache, workers, reg, sp)
	st.candidates = len(blk.Pairs)
	return st, nil
}

// blockingReport converts the blocking result into its report form.
func blockingReport(blk *mfiblocks.Result) *telemetry.BlockingReport {
	covered := 0
	for _, c := range blk.Covered {
		if c {
			covered++
		}
	}
	br := &telemetry.BlockingReport{
		Blocks:         len(blk.Blocks),
		Pairs:          len(blk.Pairs),
		Covered:        covered,
		CacheHits:      blk.Cache.Hits,
		CacheMisses:    blk.Cache.Misses,
		CacheEvictions: blk.Cache.Evictions,
		CacheEntries:   blk.Cache.Entries,
	}
	for _, it := range blk.Iterations {
		br.Iterations = append(br.Iterations, telemetry.IterationReport{
			MinSup:     it.MinSup,
			Active:     it.Active,
			MFIs:       it.MFIs,
			Blocks:     it.Blocks,
			CSPruned:   it.CSPruned,
			NGPruned:   it.NGPruned,
			NewPairs:   it.NewPairs,
			CoveredNow: it.CoveredNow,
			MinTh:      it.MinTh,
			DurationNS: it.Elapsed.Nanoseconds(),
		})
	}
	return br
}

// newScoringExtractor builds the extractor Run and ScoreCandidates
// share: the canonical 48 features over opts.Geo, carrying the pair-
// similarity memo unless MemoSize disables it.
func newScoringExtractor(opts *Options) *features.Extractor {
	ex := features.NewExtractor(opts.Geo)
	if opts.MemoSize >= 0 {
		ex.Memo = features.NewPairMemo(opts.MemoSize)
	}
	return ex
}

// scoringReport converts the scoring stage's outcome into its report
// form.
func scoringReport(st *scoreResult, cache *features.ProfileCache, workers int) *telemetry.ScoringReport {
	cs := cache.Stats()
	ms := cache.Extractor().Memo.Stats()
	sr := &telemetry.ScoringReport{
		Candidates:      st.candidates,
		SameSrcDropped:  st.sameSrc,
		ModelDropped:    st.byModel,
		Matches:         len(st.matches),
		Workers:         workers,
		Chunks:          st.chunks,
		ProfilesBuilt:   int(cs.Built),
		ProfileHits:     cs.Hits,
		ProfileMisses:   cs.Misses,
		MemoHits:        ms.Hits,
		MemoMisses:      ms.Misses,
		MemoEvictions:   ms.Evictions,
		MemoEntries:     ms.Entries,
		InternedStrings: cache.Extractor().InternedStrings(),
	}
	if st.scores != nil {
		snap := st.scores.Snapshot()
		sr.Scores = &snap
	}
	return sr
}

// sortMatches ranks matches by descending score, breaking ties by pair —
// a total order over distinct pairs, so the ranking is independent of the
// pre-sort order the scoring stage produced.
func sortMatches(ms []RankedMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		a, b := ms[i].Pair, ms[j].Pair
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// scorePairs runs the scoring stage — SameSrc filtering, feature
// extraction, model scoring, classification — over the blocking
// candidates. workers==1 runs the exact serial seed path; otherwise the
// pairs are scored on a chunked worker pool over cached record profiles,
// with chunk-ordered merging so the output is identical to the serial
// path for every worker count.
func scorePairs(opts *Options, work *record.Collection, blk *mfiblocks.Result, cache *features.ProfileCache, workers int, reg *telemetry.Registry, sp *trace.Span) scoreResult {
	if workers <= 1 || len(blk.Pairs) == 0 {
		st := scoreSerial(opts, work, blk, cache.Extractor())
		opts.Progress.Add(int64(len(blk.Pairs)))
		return st
	}

	t0 := time.Now()
	psp := sp.Child("profile_build", trace.WithKind(trace.KindSetup)).
		Attr("records", int64(work.Len()))
	profs := cache.Build(work, workers)
	psp.End()
	reg.Timer("core_profile_build_seconds").Observe(time.Since(t0))

	pairs := blk.Pairs
	numChunks := (len(pairs) + scoreChunkSize - 1) / scoreChunkSize
	if workers > numChunks {
		workers = numChunks
	}
	chunks := make([]scoreResult, numChunks)
	// Shared instruments: workers touch them once per chunk (or merge
	// once at exit for the per-pair score distribution), so the hot
	// per-pair loop never contends on a shared cache line.
	scores := telemetry.NewHistogram(telemetry.ScoreBuckets)
	chunkTimer := reg.Timer("core_score_chunk_seconds")
	chunkCounter := reg.Counter("core_score_chunks_total")
	pairCounter := reg.Counter("core_scored_pairs_total")
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := sp.Child("score_worker", trace.WithKind(trace.KindWorker), trace.WithTrack(w+1))
			scored := int64(0)
			ex := cache.Extractor()
			local := telemetry.NewHistogram(telemetry.ScoreBuckets)
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					break
				}
				tc := time.Now()
				lo, hi := c*scoreChunkSize, (c+1)*scoreChunkSize
				if hi > len(pairs) {
					hi = len(pairs)
				}
				var out scoreResult
				for _, p := range pairs[lo:hi] {
					ia, ib := work.Index(p.A), work.Index(p.B)
					ra, rb := work.Records[ia], work.Records[ib]
					if opts.SameSrc && ra.Source != "" && ra.Source == rb.Source {
						out.sameSrc++
						continue
					}
					m := RankedMatch{Pair: p, BlockScore: blk.PairScores[p]}
					m.Score = m.BlockScore
					if opts.Model != nil {
						m.Score = opts.Model.Score(ex.ExtractProfiled(profs[ia], profs[ib]))
						if opts.Classify && m.Score <= 0 {
							out.byModel++
							continue
						}
					}
					local.Observe(m.Score)
					out.matches = append(out.matches, m)
				}
				chunks[c] = out
				chunkTimer.Observe(time.Since(tc))
				chunkCounter.Inc()
				pairCounter.Add(int64(hi - lo))
				opts.Progress.Add(int64(hi - lo))
				scored += int64(hi - lo)
			}
			scores.Merge(local)
			wsp.Attr("pairs", scored).End()
		}(w)
	}
	wg.Wait()

	total := scoreResult{chunks: numChunks, scores: scores}
	n := 0
	for i := range chunks {
		n += len(chunks[i].matches)
	}
	total.matches = make([]RankedMatch, 0, n)
	for i := range chunks {
		total.matches = append(total.matches, chunks[i].matches...)
		total.sameSrc += chunks[i].sameSrc
		total.byModel += chunks[i].byModel
	}
	return total
}

// ScoreCandidates runs the scoring stage alone — SameSrc filtering,
// profiled feature extraction, model scoring, classification, and
// ranking — over an existing blocking result, exactly as Run's scoring
// stage does (including the memo cache controlled by opts.MemoSize).
// Callers that re-block rarely but re-score often (threshold sweeps,
// model comparisons, the yvbench -bench-scoring harness) use it to skip
// the blocking stage. work must be the collection blk was produced
// from.
func ScoreCandidates(opts Options, work *record.Collection, blk *mfiblocks.Result) []RankedMatch {
	cache := features.NewProfileCache(newScoringExtractor(&opts))
	st := scorePairs(&opts, work, blk, cache, opts.workers(), opts.metrics(), nil)
	sortMatches(st.matches)
	return st.matches
}

// scoreSerial is the seed's serial scoring loop — one goroutine,
// per-pair Extract with no profile cache — producing the exact seed
// Matches; the score-distribution observations are new but do not
// touch the outputs.
func scoreSerial(opts *Options, work *record.Collection, blk *mfiblocks.Result, ex *features.Extractor) scoreResult {
	out := scoreResult{scores: telemetry.NewHistogram(telemetry.ScoreBuckets)}
	for _, p := range blk.Pairs {
		ra, rb := work.ByID(p.A), work.ByID(p.B)
		if opts.SameSrc && ra.Source != "" && ra.Source == rb.Source {
			out.sameSrc++
			continue
		}
		m := RankedMatch{Pair: p, BlockScore: blk.PairScores[p]}
		m.Score = m.BlockScore
		if opts.Model != nil {
			m.Score = opts.Model.Score(ex.Extract(ra, rb))
			if opts.Classify && m.Score <= 0 {
				out.byModel++
				continue
			}
		}
		out.observe(m.Score)
		out.matches = append(out.matches, m)
	}
	return out
}

// Profiles returns the resolution's record-profile cache. Query paths use
// it to re-score pairs without re-deriving per-record features; profiles
// are built lazily on first use.
func (r *Resolution) Profiles() *features.ProfileCache { return r.profiles }

// ScorePair validation errors, distinguishable with errors.Is: a
// self-pair is a malformed request however the IDs resolve, while an
// unknown report is a lookup miss. API layers map the former to 400 and
// the latter to 404.
var (
	ErrSelfPair      = errors.New("core: report paired with itself")
	ErrUnknownReport = errors.New("core: unknown report")
)

// ScorePair scores an arbitrary pair of reports on demand, through the
// cached profiles: the model confidence when the resolution carries a
// model, otherwise the pair's blocking score (0 when blocking never
// proposed the pair). It is safe for concurrent use.
func (r *Resolution) ScorePair(aID, bID int64) (RankedMatch, error) {
	if aID == bID {
		return RankedMatch{}, fmt.Errorf("%w: report %d", ErrSelfPair, aID)
	}
	ra, rb := r.Collection.ByID(aID), r.Collection.ByID(bID)
	if ra == nil {
		return RankedMatch{}, fmt.Errorf("%w: %d", ErrUnknownReport, aID)
	}
	if rb == nil {
		return RankedMatch{}, fmt.Errorf("%w: %d", ErrUnknownReport, bID)
	}
	m := RankedMatch{Pair: record.MakePair(aID, bID)}
	if r.Blocking != nil && r.Blocking.PairScores != nil {
		m.BlockScore = r.Blocking.PairScores[m.Pair]
	} else if i, ok := r.pairIndex()[m.Pair]; ok {
		// Spill mode never builds PairScores; every candidate's block
		// score survives on its ranked match instead.
		m.BlockScore = r.Matches[i].BlockScore
	}
	m.Score = m.BlockScore
	if r.model != nil && r.profiles != nil {
		ex := r.profiles.Extractor()
		m.Score = r.model.Score(ex.ExtractProfiled(r.profiles.Get(ra), r.profiles.Get(rb)))
	}
	return m, nil
}

// pairIndex returns the lazy pair → Matches index, building it on first
// use. Matches hold every scored candidate, so the index answers the
// same lookups Blocking.PairScores would.
func (r *Resolution) pairIndex() map[record.Pair]int {
	r.pairOnce.Do(func() {
		r.pairIdx = make(map[record.Pair]int, len(r.Matches))
		for i, m := range r.Matches {
			r.pairIdx[m.Pair] = i
		}
	})
	return r.pairIdx
}

// AtCertainty returns the matches with Score >= theta — the query-time
// certainty slider of the uncertain-ER model. A NaN threshold matches
// nothing (NaN compares false with every score).
func (r *Resolution) AtCertainty(theta float64) []RankedMatch {
	if math.IsNaN(theta) {
		return nil
	}
	// Matches are sorted descending; binary search for the cut.
	lo := sort.Search(len(r.Matches), func(i int) bool {
		return r.Matches[i].Score < theta
	})
	return r.Matches[:lo]
}

// Pairs returns the ranked matches' pairs in rank order.
func (r *Resolution) Pairs() []record.Pair {
	out := make([]record.Pair, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = m.Pair
	}
	return out
}
