package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adtree"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// testFixture generates a small Italy-like dataset, runs blocking once to
// obtain candidates, and simulates expert tagging — the setup shared by
// the pipeline tests.
type testFixture struct {
	gen  *dataset.Generated
	tags *dataset.TagSet
}

func newFixture(t testing.TB, persons int) *testFixture {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = persons
	gen, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pre, err := PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	blk, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		t.Fatalf("mfiblocks: %v", err)
	}
	tagger := &dataset.Tagger{Gold: gen.Gold, Coll: gen.Collection, Rng: rand.New(rand.NewSource(99))}
	return &testFixture{gen: gen, tags: tagger.TagPairs(blk.Pairs)}
}

func TestPipelineWithModelImprovesPrecision(t *testing.T) {
	fx := newFixture(t, 600)
	gen := fx.gen

	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}

	base := Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz}
	resBase, err := Run(base, gen.Collection)
	if err != nil {
		t.Fatalf("Run(base): %v", err)
	}

	full := base
	full.Model = model
	full.Classify = true
	full.SameSrc = true
	resFull, err := Run(full, gen.Collection)
	if err != nil {
		t.Fatalf("Run(full): %v", err)
	}

	truth := eval.NewPairSet(gen.Gold.TruePairs())
	mBase := eval.Evaluate(resBase.Pairs(), truth)
	mFull := eval.Evaluate(resFull.Pairs(), truth)
	t.Logf("base: %v", mBase)
	t.Logf("full: %v (sameSrc dropped %d, model dropped %d)", mFull, resFull.DiscardedSameSrc, resFull.DiscardedByModel)

	if mFull.Precision <= mBase.Precision {
		t.Errorf("classification did not improve precision: %.3f -> %.3f", mBase.Precision, mFull.Precision)
	}
	if mFull.F1 < mBase.F1 {
		t.Errorf("F1 degraded with the full pipeline: %.3f -> %.3f", mBase.F1, mFull.F1)
	}
}

func TestPreprocessFoldsVariantsForTruePairs(t *testing.T) {
	// Preprocessing must strictly increase the exact-item overlap of true
	// pairs: "Isacco" and "Yitzhak" become one item, "Turin" and "Torino"
	// one place. Overlap is what frequent-itemset blocking sees.
	fx := newFixture(t, 500)
	gen := fx.gen
	pre, err := PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		t.Fatal(err)
	}
	sharedKeys := func(coll *record.Collection, p record.Pair) int {
		a, b := coll.ByID(p.A), coll.ByID(p.B)
		set := make(map[string]bool)
		for _, k := range a.Keys() {
			set[k] = true
		}
		n := 0
		for _, k := range b.Keys() {
			if set[k] {
				n++
			}
		}
		return n
	}
	before, after := 0, 0
	for _, p := range gen.Gold.TruePairs() {
		before += sharedKeys(gen.Collection, p)
		after += sharedKeys(pre, p)
	}
	t.Logf("true-pair shared items: %d raw -> %d preprocessed", before, after)
	if after <= before {
		t.Errorf("preprocessing did not increase true-pair overlap: %d -> %d", before, after)
	}
	// And it must never merge items of different types or touch BookIDs.
	for i, r := range pre.Records {
		if r.BookID != gen.Collection.Records[i].BookID {
			t.Fatal("preprocessing reordered records")
		}
		if len(r.Items) != len(gen.Collection.Records[i].Items) {
			t.Fatal("preprocessing changed item count")
		}
	}
}

func TestAtCertaintyMonotonic(t *testing.T) {
	fx := newFixture(t, 400)
	gen := fx.gen
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, MaybeAsNo)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz, Model: model}
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches")
	}
	prev := len(res.Matches) + 1
	thetas := []float64{-5, -1, 0, 0.5, 1, 2, 5}
	for _, th := range thetas {
		n := len(res.AtCertainty(th))
		if n > prev {
			t.Errorf("AtCertainty(%v) grew: %d > %d", th, n, prev)
		}
		prev = n
		for _, m := range res.AtCertainty(th) {
			if m.Score < th {
				t.Fatalf("AtCertainty(%v) returned score %v", th, m.Score)
			}
		}
	}
	// Raising certainty should raise precision on this data.
	truth := eval.NewPairSet(gen.Gold.TruePairs())
	loose := eval.Evaluate(matchPairs(res.AtCertainty(-5)), truth)
	tight := eval.Evaluate(matchPairs(res.AtCertainty(1.5)), truth)
	if len(res.AtCertainty(1.5)) > 10 && tight.Precision < loose.Precision {
		t.Errorf("precision at high certainty (%.3f) below loose (%.3f)", tight.Precision, loose.Precision)
	}
}

func matchPairs(ms []RankedMatch) []record.Pair {
	out := make([]record.Pair, len(ms))
	for i, m := range ms {
		out[i] = m.Pair
	}
	return out
}

func TestClustersPartitionCollection(t *testing.T) {
	fx := newFixture(t, 300)
	gen := fx.gen
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz}
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	ents := res.Clusters(0.2)
	seen := make(map[int64]bool)
	total := 0
	for _, e := range ents {
		for _, id := range e.Reports {
			if seen[id] {
				t.Fatalf("report %d in two entities", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != gen.Collection.Len() {
		t.Errorf("clusters cover %d of %d records", total, gen.Collection.Len())
	}
}

func TestNarrativeMentionsName(t *testing.T) {
	fx := newFixture(t, 200)
	gen := fx.gen
	opts := Options{Blocking: mfiblocks.NewConfig(), Geo: gen.Gaz, Preprocess: true, Gazetteer: gen.Gaz}
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Clusters(0.3) {
		if len(e.Reports) < 2 {
			continue
		}
		n := e.Narrative()
		if n == "" {
			t.Fatal("empty narrative")
		}
		if first, ok := e.Best(record.FirstName); ok {
			if !contains(n, first) {
				t.Errorf("narrative %q does not mention first name %q", n, first)
			}
		}
		break
	}
}

func TestRunValidations(t *testing.T) {
	fx := newFixture(t, 100)
	opts := Options{Blocking: mfiblocks.NewConfig(), Classify: true} // Classify without Model
	if _, err := Run(opts, fx.gen.Collection); err == nil {
		t.Error("Classify without Model should fail")
	}
	bad := Options{Blocking: mfiblocks.Config{}}
	if _, err := Run(bad, fx.gen.Collection); err == nil {
		t.Error("invalid blocking config should fail")
	}
}

func TestCrossValidateAccuracy(t *testing.T) {
	fx := newFixture(t, 500)
	insts, _, err := Instances(fx.tags, fx.gen.Collection, fx.gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := CrossValidate(adtree.NewTrainConfig(), insts, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CV accuracy over %d instances: %.3f", len(insts), acc)
	if acc < 0.85 {
		t.Errorf("classifier accuracy %.3f below 0.85", acc)
	}
}
