package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/features"
	"repro/internal/gazetteer"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/spill"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// RecordSource yields records one at a time; io.EOF ends the stream.
// store.WindowReader satisfies it directly, so a .yvst file streams into
// the pipeline without ever materializing the whole corpus.
type RecordSource interface {
	NextRecord() (*record.Record, error)
}

// CollectionSource streams an in-memory collection — the adapter the
// equivalence tests use to drive RunStream over the exact records a
// batch Run saw.
type CollectionSource struct {
	records []*record.Record
	pos     int
}

// NewCollectionSource streams the collection's records in order.
func NewCollectionSource(coll *record.Collection) *CollectionSource {
	return &CollectionSource{records: coll.Records}
}

// NextRecord implements RecordSource.
func (s *CollectionSource) NextRecord() (*record.Record, error) {
	if s.pos >= len(s.records) {
		return nil, io.EOF
	}
	r := s.records[s.pos]
	s.pos++
	return r, nil
}

// StreamOptions configures RunStream.
type StreamOptions struct {
	Options
	// RetainRecords keeps the full (preprocessed) records in memory.
	// When false — the bounded-memory default — the ingest stage keeps
	// only skeleton records (BookID, Source, Kind): enough for SameSrc
	// filtering and entity clustering, while the corpus holds just the
	// compact encoded transactions. Model scoring and ExpertSim blocking
	// compare record values, so they require RetainRecords.
	RetainRecords bool
}

// Validate extends Options.Validate with the streaming constraints.
func (o *StreamOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.Model != nil && !o.RetainRecords {
		return fmt.Errorf("core: Model scoring requires RetainRecords")
	}
	if o.Blocking.ExpertSim && !o.RetainRecords {
		return fmt.Errorf("core: ExpertSim blocking requires RetainRecords")
	}
	return nil
}

// RunStream executes the pipeline over a record stream: ingest (read,
// preprocess, encode — one record at a time), blocking over the encoded
// corpus, scoring over the disk-spillable candidate stream, and ranking.
// Candidate pairs always route through the spill accumulator
// (Blocking.SpillPairs, defaulting to spill.DefaultCap), so peak memory
// is bounded by the encoded corpus plus the spill window — not by the
// candidate-pair count. The final Matches (and everything derived from
// them: Pairs, AtCertainty, Clusters) are bit-identical to a batch Run
// over the same records with the same options.
func RunStream(opts StreamOptions, src RecordSource) (*Resolution, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	reg := opts.metrics()
	wireDefaults(&opts.Options, reg)
	if opts.Blocking.SpillPairs == 0 {
		opts.Blocking.SpillPairs = spill.DefaultCap
	}
	report := &telemetry.RunReport{
		SchemaVersion: telemetry.ReportSchemaVersion,
		Workers:       opts.workers(),
	}
	// Workload attributes only — no worker/shard counts — so Canonical
	// trees stay identical across fan-out configurations; records is
	// attached once the ingest count is known.
	root := opts.Trace.StartSpan(nil, "run", trace.WithKind(trace.KindRun))
	stages := newStageRunner(reg, report, root)

	corpus := &mfiblocks.Corpus{Dict: record.NewDictionary()}
	var kept []*record.Record
	if err := stages.run("ingest", func(sp *trace.Span) (map[string]int64, error) {
		opts.Progress.Stage("ingest", 0)
		gaz := opts.Gazetteer
		if gaz == nil {
			gaz = gazetteer.Builtin(0)
		}
		for {
			r, err := src.NextRecord()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("core: ingest: %w", err)
			}
			if opts.Preprocess {
				r = preprocessRecord(r, gaz)
			}
			corpus.Append(corpus.Dict.Observe(r), r.BookID)
			if opts.RetainRecords {
				kept = append(kept, r)
			} else {
				// Skeleton: identity and provenance survive, item values
				// are dropped — the encoded transaction already carries
				// everything blocking needs.
				kept = append(kept, &record.Record{BookID: r.BookID, Source: r.Source, Kind: r.Kind})
			}
			opts.Progress.Add(1)
		}
		// A windowed store reader knows how many bytes of torn tail it
		// skipped; surface that in the report without coupling core to
		// the store package.
		if tr, ok := src.(interface{ TornBytes() int64 }); ok {
			report.TornBytes = tr.TornBytes()
		}
		return map[string]int64{"records": int64(len(kept))}, nil
	}); err != nil {
		return nil, err
	}

	work, err := record.NewCollection(kept)
	if err != nil {
		return nil, fmt.Errorf("core: ingest: %w", err)
	}
	report.Records = work.Len()
	root.Attr("records", int64(work.Len()))
	if opts.RetainRecords {
		corpus.Records = work.Records
	}

	var blk *mfiblocks.Result
	if err := stages.run("blocking", func(sp *trace.Span) (map[string]int64, error) {
		blocking := opts.Blocking
		blocking.Trace = sp
		var err error
		blk, err = mfiblocks.RunCorpus(blocking, corpus)
		if err != nil {
			return nil, fmt.Errorf("core: blocking: %w", err)
		}
		return blockingCounters(blk), nil
	}); err != nil {
		return nil, err
	}

	return resolve(&opts.Options, reg, report, stages, work, blk)
}

// pairScore is one spilled candidate surfaced to the scoring stage.
type pairScore struct {
	pair  record.Pair
	score float64
}

// scoreSpill drains the blocking stage's spilled candidate stream
// through the scoring filters — SameSrc, model scoring, classification.
// The merged stream is read sequentially in chunks; with workers > 1 the
// chunks are scored on a bounded pool, so in-flight memory stays at
// workers×chunk candidates while the accepted matches accumulate. The
// pre-sort match order differs from scorePairs' first-seen order, but
// sortMatches is a total order over (score, pair), so the ranked output
// is identical.
func scoreSpill(opts *Options, work *record.Collection, blk *mfiblocks.Result, cache *features.ProfileCache, workers int, reg *telemetry.Registry, sp *trace.Span) (scoreResult, error) {
	it, err := blk.Spill.Iter()
	if err != nil {
		return scoreResult{}, err
	}
	ex := cache.Extractor()
	scoreOne := func(out *scoreResult, c pairScore) {
		ra, rb := work.ByID(c.pair.A), work.ByID(c.pair.B)
		if opts.SameSrc && ra.Source != "" && ra.Source == rb.Source {
			out.sameSrc++
			return
		}
		m := RankedMatch{Pair: c.pair, BlockScore: c.score}
		m.Score = m.BlockScore
		if opts.Model != nil {
			m.Score = opts.Model.Score(ex.Extract(ra, rb))
			if opts.Classify && m.Score <= 0 {
				out.byModel++
				return
			}
		}
		out.observe(m.Score)
		out.matches = append(out.matches, m)
	}

	total := scoreResult{scores: telemetry.NewHistogram(telemetry.ScoreBuckets)}
	chunkTimer := reg.Timer("core_score_chunk_seconds")
	chunkCounter := reg.Counter("core_score_chunks_total")
	pairCounter := reg.Counter("core_scored_pairs_total")

	if workers <= 1 {
		for {
			p, score, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return total, err
			}
			total.candidates++
			scoreOne(&total, pairScore{p, score})
			opts.Progress.Add(1)
		}
		pairCounter.Add(int64(total.candidates))
		return total, nil
	}

	jobs := make(chan []pairScore, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := sp.Child("score_worker", trace.WithKind(trace.KindWorker), trace.WithTrack(w+1))
			scored := int64(0)
			local := scoreResult{scores: telemetry.NewHistogram(telemetry.ScoreBuckets)}
			for chunk := range jobs {
				tc := time.Now()
				for _, c := range chunk {
					scoreOne(&local, c)
				}
				local.chunks++
				chunkTimer.Observe(time.Since(tc))
				chunkCounter.Inc()
				pairCounter.Add(int64(len(chunk)))
				opts.Progress.Add(int64(len(chunk)))
				scored += int64(len(chunk))
			}
			wsp.Attr("pairs", scored).End()
			mu.Lock()
			total.matches = append(total.matches, local.matches...)
			total.sameSrc += local.sameSrc
			total.byModel += local.byModel
			total.chunks += local.chunks
			total.scores.Merge(local.scores)
			mu.Unlock()
		}(w)
	}

	var readErr error
	chunk := make([]pairScore, 0, scoreChunkSize)
	for {
		p, score, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		total.candidates++
		chunk = append(chunk, pairScore{p, score})
		if len(chunk) == scoreChunkSize {
			jobs <- chunk
			chunk = make([]pairScore, 0, scoreChunkSize)
		}
	}
	if len(chunk) > 0 && readErr == nil {
		jobs <- chunk
	}
	close(jobs)
	wg.Wait()
	return total, readErr
}
