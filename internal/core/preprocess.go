package core

import (
	"repro/internal/gazetteer"
	"repro/internal/names"
	"repro/internal/record"
)

// Preprocess folds value variants into equivalence classes, mirroring the
// Names Project preprocessing ("equivalence classes of first names, last
// names and places ... were created to help deal with multiple spellings
// and variants"): first-name-like values map to their nickname-class
// canonical; place city values map to their gazetteer canonical. Typos
// survive — preprocessing resolves registered variants, not arbitrary
// clerical errors. The input collection is not modified.
func Preprocess(coll *record.Collection) (*record.Collection, error) {
	return PreprocessWith(coll, gazetteer.Builtin(0))
}

// PreprocessWith is Preprocess with an explicit gazetteer for place
// canonicalization. A nil gazetteer skips place folding.
func PreprocessWith(coll *record.Collection, gaz *gazetteer.Gazetteer) (*record.Collection, error) {
	out := make([]*record.Record, coll.Len())
	for i, r := range coll.Records {
		out[i] = preprocessRecord(r, gaz)
	}
	return record.NewCollection(out)
}

// preprocessRecord canonicalizes one record's values — the per-record
// kernel PreprocessWith applies collection-wide and the streaming ingest
// stage applies record by record. The input record is not modified.
func preprocessRecord(r *record.Record, gaz *gazetteer.Gazetteer) *record.Record {
	cp := r.Clone()
	for k := range cp.Items {
		it := &cp.Items[k]
		switch {
		case it.Type.IsName() && it.Type != record.LastName &&
			it.Type != record.MaidenName && it.Type != record.MotherMaiden:
			it.Value = names.Canonical(it.Value)
		case it.Type.IsPlace():
			if _, part, _ := it.Type.Place(); part == record.City && gaz != nil {
				if p, ok := gaz.Lookup(it.Value); ok {
					it.Value = p.City
				}
			}
		}
	}
	return cp
}
