package core

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/adtree"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/store"
)

// equivDataset generates one seeded Italy-like corpus for the
// equivalence matrix.
func equivDataset(t *testing.T, persons int, seed int64) *dataset.Generated {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = persons
	cfg.Seed = seed
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// assertResolutionsMatch asserts the streaming run reproduces the batch
// run bit-for-bit on everything derived from the ranked matches:
// Matches, Pairs, discard counters, and the 0.3-certainty clustering.
func assertResolutionsMatch(t *testing.T, label string, want, got *Resolution) {
	t.Helper()
	if !reflect.DeepEqual(want.Matches, got.Matches) {
		t.Fatalf("%s: Matches diverge (%d vs %d)", label, len(got.Matches), len(want.Matches))
	}
	if !reflect.DeepEqual(want.Pairs(), got.Pairs()) {
		t.Fatalf("%s: Pairs diverge", label)
	}
	if want.DiscardedSameSrc != got.DiscardedSameSrc || want.DiscardedByModel != got.DiscardedByModel {
		t.Fatalf("%s: discard counters diverge: samesrc %d/%d model %d/%d", label,
			got.DiscardedSameSrc, want.DiscardedSameSrc, got.DiscardedByModel, want.DiscardedByModel)
	}
	wc, gc := want.Clusters(0.3), got.Clusters(0.3)
	if len(wc) != len(gc) {
		t.Fatalf("%s: cluster counts diverge: %d vs %d", label, len(gc), len(wc))
	}
	for i := range wc {
		if !reflect.DeepEqual(wc[i].Reports, gc[i].Reports) {
			t.Fatalf("%s: cluster %d membership diverges", label, i)
		}
	}
}

// TestStreamShardEquivalence is the harness the tentpole is locked down
// by: the streaming sharded pipeline — windowless ingest, signature-
// sharded block materialization, shard-local MFI mining, disk-spilled
// candidates, skeleton records — must reproduce the monolithic batch
// Run bit-for-bit across the shards × mining-shards × workers matrix on
// multiple seeds. The spill cap is forced tiny so every cell actually
// exercises the disk-merge path (and, since spilling enables the async
// emitter, the overlapped emission path too).
func TestStreamShardEquivalence(t *testing.T) {
	datasets := []struct {
		persons int
		seed    int64
	}{
		{250, 1944},
		{200, 777},
	}
	for _, d := range datasets {
		g := equivDataset(t, d.persons, d.seed)
		base := Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz, SameSrc: true}
		want, err := Run(base, g.Collection)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Matches) == 0 {
			t.Fatal("baseline produced no matches")
		}

		for _, shards := range []int{1, 2, 8} {
			for _, workers := range []int{1, 8} {
				for _, mineShards := range []int{1, 4, 8} {
					label := fmt.Sprintf("seed=%d shards=%d mineShards=%d workers=%d", d.seed, shards, mineShards, workers)
					opts := StreamOptions{Options: base}
					opts.Workers = workers
					opts.Blocking.Shards = shards
					opts.Blocking.MineShards = mineShards
					opts.Blocking.SpillPairs = 64
					opts.Blocking.SpillDir = t.TempDir()
					got, err := RunStream(opts, NewCollectionSource(g.Collection))
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if got.Blocking.Spill.Stats().Runs == 0 {
						t.Fatalf("%s: spill cap 64 never spilled; harness is not exercising the merge", label)
					}
					assertResolutionsMatch(t, label, want, got)
				}
			}
		}

		// Block-cache dimension: off, a tiny eviction-churning bound, and
		// the CLI default must all reproduce the cache-less baseline
		// bit-for-bit, composed with shard and mining fan-out.
		for _, blockCache := range []int{0, 64, mfiblocks.DefaultBlockCache} {
			for _, shards := range []int{1, 4} {
				for _, mineShards := range []int{1, 4} {
					label := fmt.Sprintf("seed=%d cache=%d shards=%d mineShards=%d", d.seed, blockCache, shards, mineShards)
					opts := StreamOptions{Options: base}
					opts.Workers = 8
					opts.Blocking.Shards = shards
					opts.Blocking.MineShards = mineShards
					opts.Blocking.BlockCache = blockCache
					opts.Blocking.SpillPairs = 64
					opts.Blocking.SpillDir = t.TempDir()
					got, err := RunStream(opts, NewCollectionSource(g.Collection))
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertResolutionsMatch(t, label, want, got)
				}
			}
		}
	}
}

// TestStreamRetainRecordsFullEquivalence runs the streaming pipeline
// with records retained: beyond match equality, the entity views must
// carry the identical merged values, since the retained records are the
// same preprocessed records the batch path resolved.
func TestStreamRetainRecordsFullEquivalence(t *testing.T) {
	g := equivDataset(t, 250, 1944)
	base := Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz, SameSrc: true}
	want, err := Run(base, g.Collection)
	if err != nil {
		t.Fatal(err)
	}

	opts := StreamOptions{Options: base, RetainRecords: true}
	opts.Blocking.Shards = 4
	opts.Blocking.SpillPairs = 128
	opts.Blocking.SpillDir = t.TempDir()
	got, err := RunStream(opts, NewCollectionSource(g.Collection))
	if err != nil {
		t.Fatal(err)
	}
	assertResolutionsMatch(t, "retained", want, got)
	if !reflect.DeepEqual(want.Clusters(0.3), got.Clusters(0.3)) {
		t.Fatal("retained-records clustering diverges beyond membership")
	}
}

// tieHeavyRecords builds groups of byte-identical records so block
// scores collide massively — candidate ties land on shard boundaries and
// in the same spill windows, the worst case for merge determinism.
func tieHeavyRecords(t *testing.T) *record.Collection {
	t.Helper()
	var records []*record.Record
	id := int64(1)
	for group := 0; group < 12; group++ {
		first := fmt.Sprintf("Name%c", 'A'+group)
		last := fmt.Sprintf("Fam%c", 'A'+group%4)
		for dup := 0; dup < 5; dup++ {
			r := &record.Record{BookID: id, Source: fmt.Sprintf("list-%d", dup), Kind: record.List}
			r.Add(record.FirstName, first)
			r.Add(record.LastName, last)
			r.Add(record.BirthYear, "1910")
			records = append(records, r)
			id++
		}
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		t.Fatal(err)
	}
	return coll
}

// TestStreamDeterministicUnderShardBoundaryTies runs the tie-heavy
// fixture through the sharded spilled pipeline twice (and against the
// batch baseline): identical output every time, or the shard merge has a
// tie leak.
func TestStreamDeterministicUnderShardBoundaryTies(t *testing.T) {
	coll := tieHeavyRecords(t)
	blocking := mfiblocks.NewConfig()
	blocking.PruneFraction = 0
	base := Options{Blocking: blocking, Preprocess: false, SameSrc: true}
	want, err := Run(base, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("tie-heavy fixture produced no matches")
	}

	var first *Resolution
	for run := 0; run < 3; run++ {
		opts := StreamOptions{Options: base}
		opts.Blocking.Shards = 8
		opts.Blocking.MineShards = 4
		opts.Blocking.SpillPairs = 16
		opts.Blocking.SpillDir = t.TempDir()
		got, err := RunStream(opts, NewCollectionSource(coll))
		if err != nil {
			t.Fatal(err)
		}
		assertResolutionsMatch(t, fmt.Sprintf("run=%d", run), want, got)
		if first == nil {
			first = got
			continue
		}
		if !reflect.DeepEqual(first.Matches, got.Matches) {
			t.Fatalf("run %d: streaming matches not reproducible", run)
		}
	}
}

// TestStreamValidation pins the streaming-specific constraints: value-
// dependent scoring cannot run over skeleton records.
func TestStreamValidation(t *testing.T) {
	g := equivDataset(t, 50, 1944)
	fx := newFixture(t, 200)
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, fx.gen.Collection, fx.gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatal(err)
	}

	opts := StreamOptions{Options: Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Model: model}}
	if _, err := RunStream(opts, NewCollectionSource(g.Collection)); err == nil {
		t.Fatal("model without RetainRecords accepted")
	}

	expert := StreamOptions{Options: Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz}}
	expert.Blocking.ExpertSim = true
	expert.Blocking.Geo = g.Gaz
	if _, err := RunStream(expert, NewCollectionSource(g.Collection)); err == nil {
		t.Fatal("ExpertSim without RetainRecords accepted")
	}

	opts.RetainRecords = true
	if _, err := RunStream(opts, NewCollectionSource(g.Collection)); err != nil {
		t.Fatalf("retained model run rejected: %v", err)
	}
}

// TestStreamFromStore drives RunStream from an actual .yvst window
// reader, closing the loop the 1M benchmark depends on: store → windowed
// ingest → sharded blocking → spilled scoring.
func TestStreamFromStore(t *testing.T) {
	g := equivDataset(t, 150, 1944)
	base := Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz, SameSrc: true}
	want, err := Run(base, g.Collection)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "records.yvst")
	if err := store.WriteAll(path, g.Collection.Records); err != nil {
		t.Fatal(err)
	}
	src, err := store.OpenWindowReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	opts := StreamOptions{Options: base}
	opts.Blocking.Shards = 2
	opts.Blocking.MineShards = 2
	opts.Blocking.SpillPairs = 64
	opts.Blocking.SpillDir = t.TempDir()
	got, err := RunStream(opts, src)
	if err != nil {
		t.Fatal(err)
	}
	assertResolutionsMatch(t, "store", want, got)
}
