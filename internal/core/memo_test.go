package core

import (
	"fmt"
	"testing"

	"repro/internal/adtree"
	"repro/internal/mfiblocks"
)

// TestMemoWorkerStability is the memo arm of the equivalence suite:
// Resolution.Pairs (and the full ranked matches) must be byte-stable
// across Workers ∈ {1, 2, 8} with the pair-similarity memo enabled
// (default and deliberately tiny, eviction-heavy) and disabled. The
// memo stores pure kernel results, so residency and eviction order can
// never leak into outputs.
func TestMemoWorkerStability(t *testing.T) {
	fx := newFixture(t, 300)
	gen := fx.gen
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        gen.Gaz,
		Preprocess: true,
		Gazetteer:  gen.Gaz,
		Model:      model,
		Classify:   true,
		SameSrc:    true,
	}

	serial := base
	serial.Workers = 1
	serial.MemoSize = -1 // the exact serial seed path, memo off
	ref, err := Run(serial, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	refPairs := ref.Pairs()

	for _, memo := range []int{-1, 0, 64} {
		for _, workers := range []int{1, 2, 8} {
			opts := base
			opts.Workers = workers
			opts.MemoSize = memo
			got, err := Run(opts, gen.Collection)
			if err != nil {
				t.Fatalf("Run(memo=%d workers=%d): %v", memo, workers, err)
			}
			tag := fmt.Sprintf("memo=%d workers=%d", memo, workers)
			assertRunsEqual(t, tag, ref, got)
			gotPairs := got.Pairs()
			if len(gotPairs) != len(refPairs) {
				t.Fatalf("%s: %d pairs, want %d", tag, len(gotPairs), len(refPairs))
			}
			for i := range refPairs {
				if gotPairs[i] != refPairs[i] {
					t.Fatalf("%s: pair %d = %v, want %v", tag, i, gotPairs[i], refPairs[i])
				}
			}
			if memo >= 0 && workers > 1 {
				sc := got.Report.Scoring
				if sc.MemoHits == 0 {
					t.Errorf("%s: memo saw no hits", tag)
				}
				if sc.InternedStrings == 0 {
					t.Errorf("%s: no strings interned", tag)
				}
			}
		}
	}
}

// TestScoreCandidatesMatchesRun checks the standalone scoring-stage
// entry point reproduces Run's ranked matches over the same blocking
// result.
func TestScoreCandidatesMatchesRun(t *testing.T) {
	fx := newFixture(t, 250)
	gen := fx.gen
	model, err := TrainModel(adtree.NewTrainConfig(), fx.tags, gen.Collection, gen.Gaz, OmitMaybe)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        gen.Gaz,
		Preprocess: true,
		Gazetteer:  gen.Gaz,
		Model:      model,
		Classify:   true,
		SameSrc:    true,
	}
	res, err := Run(opts, gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	// ScoreCandidates consumes the already-preprocessed collection.
	got := ScoreCandidates(opts, res.Collection, res.Blocking)
	if len(got) != len(res.Matches) {
		t.Fatalf("ScoreCandidates returned %d matches, Run had %d", len(got), len(res.Matches))
	}
	for i := range got {
		if got[i] != res.Matches[i] {
			t.Fatalf("match %d: %+v vs %+v", i, got[i], res.Matches[i])
		}
	}
}
