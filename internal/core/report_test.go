package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mfiblocks"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRunReportGolden pins the RunReport JSON shape — field names, stage
// ordering, and deterministic counts — against a golden file. Timings
// are stripped first; Workers is forced to 1 so the serial path keeps
// the score-distribution sum bit-for-bit reproducible. Regenerate with
//
//	go test ./internal/core -run TestRunReportGolden -update
func TestRunReportGolden(t *testing.T) {
	fx := newFixture(t, 120)
	opts := Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        fx.gen.Gaz,
		Preprocess: true,
		Gazetteer:  fx.gen.Gaz,
		Workers:    1,
		Metrics:    telemetry.NewRegistry(),
	}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("Run attached no Report")
	}
	rep.StripTimings()

	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "runreport.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("RunReport JSON drifted from golden (run with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunReportShape asserts the schema invariants directly — readable
// failures for the properties the golden file encodes implicitly.
func TestRunReportShape(t *testing.T) {
	fx := newFixture(t, 120)
	opts := Options{
		Blocking:   mfiblocks.NewConfig(),
		Geo:        fx.gen.Gaz,
		Preprocess: true,
		Gazetteer:  fx.gen.Gaz,
		Metrics:    telemetry.NewRegistry(),
	}
	res, err := Run(opts, fx.gen.Collection)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.SchemaVersion != telemetry.ReportSchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", rep.SchemaVersion, telemetry.ReportSchemaVersion)
	}
	if rep.Records != fx.gen.Collection.Len() {
		t.Errorf("Records = %d, want %d", rep.Records, fx.gen.Collection.Len())
	}
	want := []string{"preprocess", "blocking", "scoring", "rank"}
	if len(rep.Stages) != len(want) {
		t.Fatalf("Stages = %d, want %d", len(rep.Stages), len(want))
	}
	for i, name := range want {
		if rep.Stages[i].Name != name {
			t.Errorf("Stages[%d] = %q, want %q", i, rep.Stages[i].Name, name)
		}
		if rep.Stages[i].DurationNS < 0 {
			t.Errorf("Stages[%d] negative duration", i)
		}
	}
	if rep.Blocking == nil {
		t.Fatal("Blocking report missing")
	}
	if rep.Blocking.Pairs != len(res.Blocking.Pairs) {
		t.Errorf("Blocking.Pairs = %d, want %d", rep.Blocking.Pairs, len(res.Blocking.Pairs))
	}
	if len(rep.Blocking.Iterations) != len(res.Blocking.Iterations) {
		t.Errorf("Blocking.Iterations = %d, want %d",
			len(rep.Blocking.Iterations), len(res.Blocking.Iterations))
	}
	if rep.Scoring == nil {
		t.Fatal("Scoring report missing")
	}
	if rep.Scoring.Matches != len(res.Matches) {
		t.Errorf("Scoring.Matches = %d, want %d", rep.Scoring.Matches, len(res.Matches))
	}
	if rep.Scoring.Candidates != len(res.Blocking.Pairs) {
		t.Errorf("Scoring.Candidates = %d, want %d", rep.Scoring.Candidates, len(res.Blocking.Pairs))
	}
	if rep.Scoring.Scores == nil || rep.Scoring.Scores.Count != int64(len(res.Matches)) {
		t.Errorf("Scoring.Scores = %+v, want count %d", rep.Scoring.Scores, len(res.Matches))
	}
}
