package core

import (
	"strings"
	"testing"

	"repro/internal/record"
)

func entityFixture() *Entity {
	return &Entity{
		Reports: []int64{1016196, 1059654},
		Values: map[record.ItemType][]ValueSupport{
			record.FirstName:  {{Value: "Guido", Reports: 2}},
			record.LastName:   {{Value: "Foa", Reports: 2}, {Value: "Foy", Reports: 1}},
			record.FatherName: {{Value: "Donato", Reports: 2}},
			record.SpouseName: {{Value: "Olga", Reports: 1}, {Value: "Estela", Reports: 1}},
			record.BirthYear:  {{Value: "1920", Reports: 2}},
			record.DeathCity:  {{Value: "Auschwitz", Reports: 1}},
		},
	}
}

func TestGraphStructure(t *testing.T) {
	g := entityFixture().Graph()
	if g.Center != "Guido Foa" {
		t.Errorf("center = %q", g.Center)
	}
	var fatherEdges, spouseEdges, provenance int
	for _, e := range g.Edges {
		switch e.Label {
		case "father":
			fatherEdges++
			if e.To != "Donato" {
				t.Errorf("father edge to %q", e.To)
			}
		case "spouse":
			spouseEdges++
		case "describes":
			provenance++
			if e.To != g.Center {
				t.Errorf("provenance edge to %q", e.To)
			}
		}
	}
	if fatherEdges != 1 {
		t.Errorf("father edges = %d", fatherEdges)
	}
	// Conflicting spouse evidence appears as parallel edges.
	if spouseEdges != 2 {
		t.Errorf("spouse edges = %d, want 2 (Olga and Estela)", spouseEdges)
	}
	if provenance != 2 {
		t.Errorf("provenance edges = %d", provenance)
	}
	// All edge endpoints are nodes.
	nodes := map[string]bool{}
	for _, n := range g.Nodes {
		nodes[n] = true
	}
	for _, e := range g.Edges {
		if !nodes[e.From] || !nodes[e.To] {
			t.Errorf("edge %+v references unknown node", e)
		}
	}
}

func TestGraphDOT(t *testing.T) {
	dot := entityFixture().Graph().DOT()
	for _, want := range []string{"digraph entity", `"Guido Foa"`, `label="father"`, "Auschwitz"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestGraphStringMentionsFacts(t *testing.T) {
	s := entityFixture().Graph().String()
	for _, want := range []string{"Guido Foa", "Donato", "report 1016196"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestGraphEmptyEntity(t *testing.T) {
	e := &Entity{Reports: []int64{5}, Values: map[record.ItemType][]ValueSupport{}}
	g := e.Graph()
	if g.Center == "" {
		t.Error("empty entity needs a fallback center")
	}
	if len(g.Edges) != 1 { // just the provenance edge
		t.Errorf("edges = %v", g.Edges)
	}
}
