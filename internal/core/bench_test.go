package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/adtree"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/mfiblocks"
	"repro/internal/record"
	"repro/internal/telemetry"
)

// benchScoring prepares the scoring stage's inputs once: a generated
// collection, its preprocessed form, the blocking result, and a trained
// model — so the benchmark isolates pair scoring from the rest of the
// pipeline.
type benchScoring struct {
	opts Options
	work *record.Collection
	blk  *mfiblocks.Result
}

func newBenchScoring(b *testing.B, persons int) *benchScoring {
	b.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = persons
	gen, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pre, err := PreprocessWith(gen.Collection, gen.Gaz)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		b.Fatal(err)
	}
	tagger := &dataset.Tagger{Gold: gen.Gold, Coll: gen.Collection, Rng: rand.New(rand.NewSource(99))}
	tags := tagger.TagPairs(blk.Pairs)
	model, err := TrainModel(adtree.NewTrainConfig(), tags, gen.Collection, gen.Gaz, OmitMaybe)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Geo: gen.Gaz, Model: model, Classify: true, SameSrc: true}
	return &benchScoring{opts: opts, work: pre, blk: blk}
}

// BenchmarkScorePairs measures the scoring stage — SameSrc filter, feature
// extraction, ADTree scoring, classification — serial (workers=1, the seed
// path) against the profiled worker pool at several worker counts.
func BenchmarkScorePairs(b *testing.B) {
	bs := newBenchScoring(b, 600)
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := bs.opts
			opts.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache := features.NewProfileCache(features.NewExtractor(opts.Geo))
				st := scorePairs(&opts, bs.work, bs.blk, cache, workers, telemetry.NewRegistry(), nil)
				if len(st.matches) == 0 {
					b.Fatal("no matches scored")
				}
			}
		})
	}
}

// BenchmarkRunDefaultWorkers measures end-to-end Run (blocking included)
// at the default worker count — the common call site.
func BenchmarkRunDefaultWorkers(b *testing.B) {
	bs := newBenchScoring(b, 400)
	coll := bs.work
	opts := bs.opts
	opts.Blocking = mfiblocks.NewConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(opts, coll); err != nil {
			b.Fatal(err)
		}
	}
}
