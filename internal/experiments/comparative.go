package experiments

import (
	"fmt"
	"io"

	"repro/internal/blocking"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
)

// Table10 compares MFIBlocks against the ten baseline blocking techniques
// on the Italy set. As in the paper, MFIBlocks runs without classification
// to avoid an unfair advantage, and all baselines use their survey-default
// configurations.
func (r *Runner) Table10(w io.Writer) error {
	header(w, "Table 10", "Comparative analysis of Blocking Techniques")
	g := r.Italy()
	pre := r.ItalyPre()
	n := pre.Len()

	// Truth as collection index pairs for the bitmap evaluation.
	truePairs := g.Gold.TruePairs()
	truthIdx := make([][2]int, 0, len(truePairs))
	for _, p := range truePairs {
		i, j := pre.Index(p.A), pre.Index(p.B)
		if i >= 0 && j >= 0 {
			truthIdx = append(truthIdx, [2]int{i, j})
		}
	}

	fmt.Fprintf(w, "%-12s %8s %10s %12s\n", "Algorithm", "Recall", "Precision", "Comparisons")

	// MFIBlocks (base configuration, no classifier).
	res, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		return err
	}
	truthSet := eval.NewPairSet(truePairs)
	m := eval.Evaluate(res.Pairs, truthSet)
	fmt.Fprintf(w, "%-12s %8.3f %10s %12d\n", "MFIBlocks", m.Recall, fmtPrec(m.Precision), len(res.Pairs))

	for _, b := range blocking.All() {
		blocks := b.Block(pre)
		bm := blocking.EvaluateBlocks(blocks, n, truthIdx)
		fmt.Fprintf(w, "%-12s %8.3f %10s %12d\n", b.Name(), bm.Recall, fmtPrec(bm.Precision), bm.TP+bm.FP)
	}
	return nil
}

// fmtPrec renders tiny precisions the way the paper does ("< 0.001").
func fmtPrec(p float64) string {
	if p > 0 && p < 0.001 {
		return "< 0.001"
	}
	return fmt.Sprintf("%.3f", p)
}
