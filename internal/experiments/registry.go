package experiments

import "io"

// Experiment pairs an id with its reproduction function.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner, w io.Writer) error
}

// All returns every experiment in paper order, followed by the ablations.
func All() []Experiment {
	return []Experiment{
		{"table3", "Item Type Prevalence", (*Runner).Table3},
		{"table4", "Item Type Cardinality", (*Runner).Table4},
		{"fig8", "Tag-Similarity Comparison", (*Runner).Fig8},
		{"fig11", "Data Pattern Counts", (*Runner).Fig11},
		{"fig12", "FP-Growth Run-Time", (*Runner).Fig12},
		{"table5", "Classifier Quality - Maybe values", (*Runner).Table5},
		{"table6", "Classifier Quality - MV source", (*Runner).Table6},
		{"table7", "Full dataset ADT model", (*Runner).Table7},
		{"table8", "ADT model without MV records", (*Runner).Table8},
		{"fig15", "F-1 by NG and MaxMinSup", (*Runner).Fig15},
		{"fig16", "Precision/Recall by NG and MaxMinSup", (*Runner).Fig16},
		{"table9", "Quality under Varying Conditions", (*Runner).Table9},
		{"table10", "Comparative Blocking Techniques", (*Runner).Table10},
		{"ablation-scoring", "Block scoring function", (*Runner).AblationScoring},
		{"ablation-rounds", "ADTree boosting rounds", (*Runner).AblationBoostingRounds},
		{"ablation-maximality", "Direct MFI mining vs mine-all+filter", (*Runner).AblationMaximality},
		{"ablation-pruning", "Frequent-item pruning fraction", (*Runner).AblationPruning},
		{"ablation-workers", "Parallel block construction", (*Runner).AblationWorkers},
		{"ablation-scoring-workers", "Parallel pair scoring", (*Runner).AblationScoringWorkers},
		{"ablation-metablocking", "Meta-blocking comparison cleaning", (*Runner).AblationMetaBlocking},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			cp := e
			return &cp
		}
	}
	return nil
}
