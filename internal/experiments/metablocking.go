package experiments

import (
	"fmt"
	"io"

	"repro/internal/blocking"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

// AblationMetaBlocking studies comparison cleaning: Standard Blocking's
// raw pair set against its meta-blocked refinements (all weight/prune
// scheme combinations), with MFIBlocks as the reference point — does
// generic comparison cleaning close the precision gap the paper's
// classification-based cleaning closes?
func (r *Runner) AblationMetaBlocking(w io.Writer) error {
	header(w, "Ablation", "Meta-blocking (comparison cleaning) over StBl")
	g := r.Italy()
	pre := r.ItalyPre()
	// The comparison graph materializes per-pair weights; StBl emits
	// ~n²/3 pairs, so cap the study size to keep the weight maps in
	// memory (the behaviour under study is scale-free).
	const maxRecords = 3000
	if pre.Len() > maxRecords {
		sub, err := record.NewCollection(pre.Records[:maxRecords])
		if err != nil {
			return err
		}
		pre = sub
		fmt.Fprintf(w, "(capped to the first %d records)\n", maxRecords)
	}
	// Truth restricted to pairs with both members inside the (possibly
	// capped) collection, so every method shares one recall denominator.
	var truth []record.Pair
	truthIdx := make([][2]int, 0)
	for _, p := range g.Gold.TruePairs() {
		i, j := pre.Index(p.A), pre.Index(p.B)
		if i >= 0 && j >= 0 {
			truth = append(truth, p)
			truthIdx = append(truthIdx, [2]int{i, j})
		}
	}

	fmt.Fprintf(w, "%-14s %8s %10s %12s\n", "Method", "Recall", "Precision", "Comparisons")

	blocks := blocking.Standard{}.Block(pre)
	base := blocking.EvaluateBlocks(blocks, pre.Len(), truthIdx)
	fmt.Fprintf(w, "%-14s %8.3f %10.5f %12d\n", "StBl raw", base.Recall, base.Precision, base.TP+base.FP)

	for _, ws := range []blocking.WeightScheme{blocking.CBS, blocking.JS, blocking.ARCS} {
		for _, ps := range []blocking.PruneScheme{blocking.WEP, blocking.WNP} {
			mb := blocking.MetaBlocking{Weight: ws, Prune: ps}
			kept := mb.Refine(blocks, pre.Len())
			recall, precision := blocking.EvaluatePairs(kept, pre.Len(), truthIdx)
			fmt.Fprintf(w, "StBl+%s/%-6s %8.3f %10.5f %12d\n", ws, ps, recall, precision, len(kept))
		}
	}

	res, err := mfiblocks.Run(mfiblocks.NewConfig(), pre)
	if err != nil {
		return err
	}
	m := eval.Evaluate(res.Pairs, eval.NewPairSet(truth))
	fmt.Fprintf(w, "%-14s %8.3f %10.5f %12d\n", "MFIBlocks", m.Recall, m.Precision, len(res.Pairs))
	return nil
}
