package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRunner returns a runner shrunk for test speed; the sweep grid is
// also what the benchmarks reuse.
func tinyRunner() *Runner {
	r := NewRunner(Quick)
	r.PersonsOverride = 300
	return r
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure of the paper's evaluation is present.
	for _, want := range []string{"table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "fig8", "fig11", "fig12", "fig15", "fig16"} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if ByID("table3") == nil || ByID("zzz") != nil {
		t.Error("ByID broken")
	}
}

func TestDatasetMemoization(t *testing.T) {
	r := tinyRunner()
	if r.Italy() != r.Italy() {
		t.Error("Italy dataset not memoized")
	}
	if r.ItalyPre() != r.ItalyPre() {
		t.Error("preprocessed Italy not memoized")
	}
}

func TestCheapExperimentsProduceOutput(t *testing.T) {
	r := tinyRunner()
	for _, id := range []string{"table3", "table4", "fig11"} {
		var buf bytes.Buffer
		if err := ByID(id).Run(r, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", id, out)
		}
		if !strings.Contains(out, "==") {
			t.Errorf("%s missing banner", id)
		}
	}
}

func TestTable3RowsSumWithinBounds(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	// Names columns must show near-total prevalence, spouse/maiden low.
	out := buf.String()
	if !strings.Contains(out, "Last Name") || !strings.Contains(out, "Maiden Name") {
		t.Errorf("missing rows:\n%s", out)
	}
}

func TestTagsShapedLikeThePaper(t *testing.T) {
	r := tinyRunner()
	tags := r.Tags()
	if tags.Len() < 200 {
		t.Fatalf("only %d tagged pairs", tags.Len())
	}
	hist := tags.CountByTag()
	total := 0
	for _, c := range hist {
		total += c
	}
	maybeShare := float64(hist[2]) / float64(total)
	// The paper's Maybe share is 611/10016 ~ 6%; the simulator should be
	// in a loose band around that.
	if maybeShare < 0.01 || maybeShare > 0.25 {
		t.Errorf("Maybe share = %.3f, want ~0.06", maybeShare)
	}
	// Every tagged pair carries a blocking similarity in (0,1].
	scores := r.TagScores()
	for _, tp := range tags.Pairs {
		s, ok := scores[tp.Pair]
		if !ok || s <= 0 || s > 1 {
			t.Fatalf("pair %v has score %v (ok=%v)", tp.Pair, s, ok)
		}
	}
}

func TestFig8OutputsBins(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Fig8(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.5") || !strings.Contains(buf.String(), "%") {
		t.Errorf("Fig8 output malformed:\n%s", buf.String())
	}
}

func TestSweepMemoizedAndOrdered(t *testing.T) {
	r := tinyRunner()
	s1, err := r.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(sweepNGs)*len(sweepMms) {
		t.Fatalf("sweep size = %d", len(s1))
	}
	if &s1[0] != &s2[0] {
		t.Error("sweep not memoized")
	}
	// Candidates grow with NG within each MaxMinSup series.
	for _, mms := range sweepMms {
		prev := -1
		for _, ng := range sweepNGs {
			for _, s := range s1 {
				if s.MaxMinSup == mms && s.NG == ng {
					if s.Candidates < prev {
						t.Errorf("mms=%d: candidates fell from %d to %d at NG=%v",
							mms, prev, s.Candidates, ng)
					}
					prev = s.Candidates
				}
			}
		}
	}
}

func TestTable5OrderAndRange(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Table5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, cond := range []string{"Maybe:=No", "Maybe values omitted", "Identify Maybe values"} {
		if !strings.Contains(out, cond) {
			t.Errorf("Table5 missing condition %q:\n%s", cond, out)
		}
	}
}

func TestTable7RendersTree(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Table7(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(1)") || !strings.Contains(out, "features used:") {
		t.Errorf("Table7 output malformed:\n%s", out)
	}
}
