package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mfiblocks"
)

// sweepNGs and sweepMms parameterize the Figures 15/16 sweep.
var (
	sweepNGs = []float64{1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	sweepMms = []int{4, 5, 6}
)

// SweepResult is one (MaxMinSup, NG) blocking evaluation.
type SweepResult struct {
	MaxMinSup  int
	NG         float64
	Candidates int
	Metrics    eval.Metrics
}

// Sweep evaluates blocking quality over the NG x MaxMinSup grid on the
// Italy set (memoized by callers through Fig15/Fig16 printing both from
// one pass).
func (r *Runner) Sweep() ([]SweepResult, error) {
	r.mu.Lock()
	cached := r.sweep
	r.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	g := r.Italy()
	pre := r.ItalyPre()
	truth := eval.NewPairSet(g.Gold.TruePairs())
	var out []SweepResult
	for _, mms := range sweepMms {
		for _, ng := range sweepNGs {
			bc := mfiblocks.NewConfig()
			bc.MaxMinSup, bc.NG = mms, ng
			res, err := mfiblocks.Run(bc, pre)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepResult{
				MaxMinSup:  mms,
				NG:         ng,
				Candidates: len(res.Pairs),
				Metrics:    eval.Evaluate(res.Pairs, truth),
			})
		}
	}
	r.mu.Lock()
	r.sweep = out
	r.mu.Unlock()
	return out, nil
}

// Fig15 reports F1 by NG and MaxMinSup.
func (r *Runner) Fig15(w io.Writer) error {
	header(w, "Figure 15", "F-1 score by NG and MaxMinSup")
	return r.printSweep(w, func(s SweepResult) float64 { return s.Metrics.F1 })
}

// Fig16 reports precision and recall by NG and MaxMinSup.
func (r *Runner) Fig16(w io.Writer) error {
	header(w, "Figure 16", "Precision and Recall by NG and MaxMinSup")
	fmt.Fprintln(w, "Recall:")
	if err := r.printSweep(w, func(s SweepResult) float64 { return s.Metrics.Recall }); err != nil {
		return err
	}
	fmt.Fprintln(w, "Precision:")
	return r.printSweep(w, func(s SweepResult) float64 { return s.Metrics.Precision })
}

func (r *Runner) printSweep(w io.Writer, f func(SweepResult) float64) error {
	sweep, err := r.Sweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s", "NG:")
	for _, ng := range sweepNGs {
		fmt.Fprintf(w, " %6.1f", ng)
	}
	fmt.Fprintln(w)
	for _, mms := range sweepMms {
		fmt.Fprintf(w, "MaxMinSup %d:", mms)
		for _, ng := range sweepNGs {
			for _, s := range sweep {
				if s.MaxMinSup == mms && s.NG == ng {
					fmt.Fprintf(w, " %6.3f", f(s))
				}
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table9NGs are the NG values averaged per condition row (MaxMinSup=5).
var table9NGs = []float64{3, 3.5, 4}

// Table9 reports end-to-end quality under the paper's binary conditions:
// the Base pipeline, expert item-type weighting, the expert similarity
// function, the same-source filter, classification, and the combined
// filters. Each row averages three runs with NG in {3, 3.5, 4}.
func (r *Runner) Table9(w io.Writer) error {
	header(w, "Table 9", "Quality under Varying Conditions")
	g := r.Italy()
	truth := eval.NewPairSet(g.Gold.TruePairs())

	model, err := r.trainOn(r.Tags())
	if err != nil {
		return err
	}

	type condition struct {
		name          string
		expertWeights bool
		expertSim     bool
		sameSrc       bool
		cls           bool
	}
	conditions := []condition{
		{name: "Base"},
		{name: "Expert Weighting", expertWeights: true},
		{name: "ExpertSim", expertWeights: true, expertSim: true},
		{name: "SameSrc", expertWeights: true, sameSrc: true},
		{name: "Cls", expertWeights: true, cls: true},
		{name: "SameSrc + Cls", expertWeights: true, sameSrc: true, cls: true},
	}
	fmt.Fprintf(w, "%-18s %8s %10s %8s\n", "Condition", "Recall", "Precision", "F-1")
	for _, c := range conditions {
		var sumR, sumP, sumF float64
		for _, ng := range table9NGs {
			bc := mfiblocks.NewConfig()
			bc.MaxMinSup = 5
			bc.NG = ng
			bc.ExpertWeights = c.expertWeights
			bc.ExpertSim = c.expertSim
			if c.expertSim {
				bc.Geo = g.Gaz
			}
			opts := core.Options{
				Blocking:   bc,
				Geo:        g.Gaz,
				Preprocess: true,
				Gazetteer:  g.Gaz,
				SameSrc:    c.sameSrc,
				Workers:    r.ScoringWorkers,
			}
			if c.cls {
				opts.Model = model
				opts.Classify = true
			}
			res, err := core.Run(opts, g.Collection)
			if err != nil {
				return err
			}
			m := eval.Evaluate(res.Pairs(), truth)
			sumR += m.Recall
			sumP += m.Precision
			sumF += m.F1
		}
		n := float64(len(table9NGs))
		fmt.Fprintf(w, "%-18s %8.3f %10.3f %8.3f\n", c.name, sumR/n, sumP/n, sumF/n)
	}
	return nil
}
