package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentRuns drives the complete registry at a tiny scale:
// every table, figure, and ablation must produce non-trivial output
// without error. This is the harness's end-to-end safety net; the
// full-scale numbers are yvbench's job.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(Quick)
	r.PersonsOverride = 150
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(r, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.HasPrefix(out, "== ") {
				t.Errorf("%s: missing banner:\n%s", e.ID, out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("%s: output too short:\n%s", e.ID, out)
			}
		})
	}
}
