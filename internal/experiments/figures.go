package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/fpgrowth"
	"repro/internal/record"
)

// Fig8 reports the proportion of expert tags per blocking-similarity bin
// (0.1 .. 1.0): high-similarity bins should be dominated by Yes tags and
// low bins by No tags, with aberrations flagged for tag validation.
func (r *Runner) Fig8(w io.Writer) error {
	header(w, "Figure 8", "Tag-Similarity Comparison")
	tags := r.Tags()
	scores := r.TagScores()

	const bins = 10
	var counts [bins][dataset.NumTags]int
	var totals [bins]int
	for _, tp := range tags.Pairs {
		s := scores[tp.Pair]
		bin := int(s * bins)
		if bin >= bins {
			bin = bins - 1
		}
		if bin < 0 {
			bin = 0
		}
		counts[bin][tp.Tag]++
		totals[bin]++
	}
	fmt.Fprintf(w, "%-10s %8s", "Similarity", "N")
	for t := dataset.NumTags - 1; t >= 0; t-- {
		fmt.Fprintf(w, " %12s", dataset.Tag(t))
	}
	fmt.Fprintln(w)
	for b := 0; b < bins; b++ {
		fmt.Fprintf(w, "%-10.1f %8d", float64(b+1)/bins, totals[b])
		for t := dataset.NumTags - 1; t >= 0; t-- {
			fmt.Fprintf(w, " %11.1f%%", pct(counts[b][t], totals[b]))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// fig11Buckets are the paper's pattern-count buckets: patterns shared by
// up to 10, 100, 1K, 10K, and more records.
var fig11Buckets = []int{10, 100, 1000, 10000}

// Fig11 reports the data-pattern histogram over the full-shaped dataset:
// per bucket, how many distinct patterns fall in it and how many records
// those patterns cover.
func (r *Runner) Fig11(w io.Writer) error {
	header(w, "Figure 11", "Data Pattern Counts")
	coll := r.FullShape().Collection
	patterns := coll.PatternCounts()

	nBuckets := len(fig11Buckets) + 1
	patCount := make([]int, nBuckets)
	recSum := make([]int, nBuckets)
	for _, n := range patterns {
		b := sort.SearchInts(fig11Buckets, n)
		patCount[b]++
		recSum[b] += n
	}
	fmt.Fprintf(w, "%-24s %10s %12s\n", "# Records with pattern", "#patterns", "sum#records")
	labels := []string{"<=10", "<=100", "<=1000", "<=10000", "more"}
	for b := 0; b < nBuckets; b++ {
		fmt.Fprintf(w, "%-24s %10d %12d\n", labels[b], patCount[b], recSum[b])
	}
	fmt.Fprintf(w, "distinct patterns: %d over %d records\n", len(patterns), coll.Len())

	// The paper also reports the most prevalent pattern and the count of
	// full-information records.
	var best record.Pattern
	bestN := 0
	for p, n := range patterns {
		if n > bestN {
			best, bestN = p, n
		}
	}
	fmt.Fprintf(w, "most prevalent pattern (%d records): %s\n", bestN, best)
	fmt.Fprintf(w, "full-information records: %d\n", patterns[record.FullPattern()])
	return nil
}

// Fig12 reports FP-Growth mining runtime against the minsup parameter for
// two dataset sizes, with and without frequent-item pruning (the paper's
// 6.5M/600K pair scaled down per the documented substitution).
func (r *Runner) Fig12(w io.Writer) error {
	header(w, "Figure 12", "FP-Growth Run-Time (seconds)")
	// Mining at minsup=2 is exponential in practice; the runtime study
	// caps its own dataset sizes so the 4x4 grid completes in minutes
	// (the shape — growth with decreasing minsup, linearity in size, the
	// pruning gap — is what the figure demonstrates).
	bigPersons := 6000
	if r.ScaleMode == Full {
		bigPersons = 12000
	}
	if r.PersonsOverride > 0 {
		bigPersons = r.PersonsOverride * 3
	}
	bigCfg := dataset.FullShapeConfig(bigPersons)
	big := mustGenerate(bigCfg)
	smallCfg := dataset.FullShapeConfig(bigPersons / 10)
	smallCfg.Seed = 1992
	small := mustGenerate(smallCfg)

	type series struct {
		name  string
		gen   *dataset.Generated
		prune bool
	}
	sets := []series{
		{fmt.Sprintf("%dK", big.Collection.Len()/1000), big, false},
		{fmt.Sprintf("%dK,Prune", big.Collection.Len()/1000), big, true},
		{fmt.Sprintf("%dK", small.Collection.Len()/1000), small, false},
		{fmt.Sprintf("%dK,Prune", small.Collection.Len()/1000), small, true},
	}
	minsups := []int{5, 4, 3, 2}
	fmt.Fprintf(w, "%-14s", "series")
	for _, ms := range minsups {
		fmt.Fprintf(w, " minsup=%d  ", ms)
	}
	fmt.Fprintln(w)
	for _, s := range sets {
		dict := record.BuildDictionary(s.gen.Collection)
		txns := make([][]int, s.gen.Collection.Len())
		for i, rec := range s.gen.Collection.Records {
			txns[i] = dict.Encode(rec)
		}
		miner := fpgrowth.NewMiner(txns)
		if s.prune {
			miner.Prune(dict.MostFrequent(0.0003))
		}
		fmt.Fprintf(w, "%-14s", s.name)
		for _, ms := range minsups {
			t0 := time.Now()
			mfis := miner.MineMaximal(ms, nil)
			el := time.Since(t0).Seconds()
			fmt.Fprintf(w, " %8.3fs", el)
			_ = mfis
		}
		fmt.Fprintln(w)
	}
	return nil
}
