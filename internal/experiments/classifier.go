package experiments

import (
	"fmt"
	"io"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
)

const cvFolds = 10

// Table5 reports classifier accuracy under the three Maybe-handling
// policies (10-fold cross-validation).
func (r *Runner) Table5(w io.Writer) error {
	header(w, "Table 5", "Classifier Quality - Maybe values")
	g := r.Italy()
	tags := r.Tags()
	cfg := adtree.NewTrainConfig()

	fmt.Fprintf(w, "%-28s %8s %10s\n", "Condition", "N", "Accuracy")
	for _, mode := range []core.MaybeMode{core.MaybeAsNo, core.OmitMaybe, core.IdentifyMaybe} {
		var acc float64
		var n int
		var err error
		if mode == core.IdentifyMaybe {
			n = tags.Len()
			acc, err = core.CrossValidateMaybe(cfg, tags, g.Collection, g.Gaz, cvFolds)
		} else {
			insts, _, ierr := core.Instances(tags, g.Collection, g.Gaz, mode)
			if ierr != nil {
				return ierr
			}
			n = len(insts)
			acc, err = core.CrossValidate(cfg, insts, cvFolds)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s %8d %9.1f%%\n", mode, n, 100*acc)
	}
	return nil
}

// withoutMV filters tagged pairs involving a record submitted by the
// extreme-volume submitter.
func withoutMV(tags *dataset.TagSet, g *dataset.Generated) *dataset.TagSet {
	if g.MVSource == "" {
		return tags
	}
	var kept []dataset.TaggedPair
	for _, tp := range tags.Pairs {
		ra, rb := g.Collection.ByID(tp.Pair.A), g.Collection.ByID(tp.Pair.B)
		if ra.Source == g.MVSource || rb.Source == g.MVSource {
			continue
		}
		kept = append(kept, tp)
	}
	return dataset.NewTagSet(kept)
}

// Table6 reports classifier accuracy with and without the MV submitter's
// records (Maybe omitted, as in the paper's preferred configuration).
func (r *Runner) Table6(w io.Writer) error {
	header(w, "Table 6", "Classifier Quality - MV source")
	g := r.Italy()
	cfg := adtree.NewTrainConfig()

	full := r.Tags()
	reduced := withoutMV(full, g)

	fmt.Fprintf(w, "%-14s %8s %10s\n", "Condition", "N", "Accuracy")
	for _, row := range []struct {
		name string
		ts   *dataset.TagSet
	}{{"With MV", full}, {"Without MV", reduced}} {
		insts, _, err := core.Instances(row.ts, g.Collection, g.Gaz, core.OmitMaybe)
		if err != nil {
			return err
		}
		acc, err := core.CrossValidate(cfg, insts, cvFolds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %8d %9.1f%%\n", row.name, len(insts), 100*acc)
	}
	mvPairs := full.Len() - reduced.Len()
	fmt.Fprintf(w, "(pairs involving an MV record: %d of %d)\n", mvPairs, full.Len())
	return nil
}

// trainOn trains the match model on a tag set with Maybe omitted.
func (r *Runner) trainOn(ts *dataset.TagSet) (*adtree.Model, error) {
	g := r.Italy()
	return core.TrainModel(adtree.NewTrainConfig(), ts, g.Collection, g.Gaz, core.OmitMaybe)
}

// Table7 renders the ADTree trained on the full tagged set.
func (r *Runner) Table7(w io.Writer) error {
	header(w, "Table 7", "Full dataset ADT model")
	m, err := r.trainOn(r.Tags())
	if err != nil {
		return err
	}
	fmt.Fprint(w, m.String())
	fmt.Fprintf(w, "(features used: %s)\n", featureNames(m))
	return nil
}

// Table8 renders the ADTree trained without the MV submitter's records.
func (r *Runner) Table8(w io.Writer) error {
	header(w, "Table 8", "ADT model without MV records")
	m, err := r.trainOn(withoutMV(r.Tags(), r.Italy()))
	if err != nil {
		return err
	}
	fmt.Fprint(w, m.String())
	fmt.Fprintf(w, "(features used: %s)\n", featureNames(m))
	return nil
}

func featureNames(m *adtree.Model) string {
	defs := features.Defs()
	out := ""
	for i, f := range m.UsedFeatures() {
		if i > 0 {
			out += ", "
		}
		out += defs[f].Name
	}
	return out
}
