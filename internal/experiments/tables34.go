package experiments

import (
	"fmt"
	"io"

	"repro/internal/record"
)

// table3Rows groups item types into the paper's Table-3 rows: compound
// fields (DOB, places) are represented by their lead component.
var table3Rows = []struct {
	label string
	t     record.ItemType
}{
	{"Last Name", record.LastName},
	{"First Name", record.FirstName},
	{"Gender", record.Gender},
	{"DOB", record.BirthYear},
	{"Father's Name", record.FatherName},
	{"Mother's Name", record.MotherName},
	{"Spouse Name", record.SpouseName},
	{"Maiden Name", record.MaidenName},
	{"Mother's Maiden", record.MotherMaiden},
	{"Permanent Place", record.PermCity},
	{"Wartime Place", record.WarCity},
	{"Birth Place", record.BirthCity},
	{"Death Place", record.DeathCity},
	{"Profession", record.Profession},
}

// Table3 reports item-type prevalence on the full-shaped set, the Italy
// set, and the stratified random set.
func (r *Runner) Table3(w io.Writer) error {
	header(w, "Table 3", "Item Type Prevalence")
	full := r.FullShape().Collection
	italy := r.Italy().Collection
	random := r.Random().Collection

	pFull, pItaly, pRandom := full.Prevalence(), italy.Prevalence(), random.Prevalence()
	fmt.Fprintf(w, "%-18s %14s %14s %14s\n", "Item Type",
		fmt.Sprintf("Full(%d)", full.Len()),
		fmt.Sprintf("Italy(%d)", italy.Len()),
		fmt.Sprintf("Random(%d)", random.Len()))
	for _, row := range table3Rows {
		fmt.Fprintf(w, "%-18s %8d %4.0f%% %8d %4.0f%% %8d %4.0f%%\n", row.label,
			pFull[row.t], pct(pFull[row.t], full.Len()),
			pItaly[row.t], pct(pItaly[row.t], italy.Len()),
			pRandom[row.t], pct(pRandom[row.t], random.Len()))
	}
	return nil
}

// table4Rows are the paper's Table-4 item types in its listing order.
var table4Rows = []struct {
	label string
	t     record.ItemType
}{
	{"Last Name", record.LastName},
	{"First Name", record.FirstName},
	{"Gender", record.Gender},
	{"Maiden Name", record.MaidenName},
	{"Mother's Maiden Name", record.MotherMaiden},
	{"Mother's First Name", record.MotherName},
	{"Profession", record.Profession},
	{"Spouse Name", record.SpouseName},
	{"Father's Name", record.FatherName},
	{"Birth Day", record.BirthDay},
	{"Birth Month", record.BirthMonth},
	{"Birth Year", record.BirthYear},
	{"Birth City", record.BirthCity},
	{"Birth County", record.BirthCounty},
	{"Birth Region", record.BirthRegion},
	{"Birth Country", record.BirthCountry},
	{"War City", record.WarCity},
	{"War County", record.WarCounty},
	{"War Region", record.WarRegion},
	{"War Country", record.WarCountry},
	{"Perm. City", record.PermCity},
	{"Perm. County", record.PermCounty},
	{"Perm. Region", record.PermRegion},
	{"Perm. Country", record.PermCountry},
	{"Death City", record.DeathCity},
	{"Death County", record.DeathCounty},
	{"Death Region", record.DeathRegion},
	{"Death Country", record.DeathCountry},
}

// Table4 reports item-type cardinality (distinct items and average records
// per item) on the Italy and random sets.
func (r *Runner) Table4(w io.Writer) error {
	header(w, "Table 4", "Item Type Cardinality")
	italy := r.Italy().Collection
	random := r.Random().Collection
	dI, oI := italy.Cardinality()
	dR, oR := random.Cardinality()
	fmt.Fprintf(w, "%-22s %18s %20s\n", "", "Italy Set", "Random Set")
	fmt.Fprintf(w, "%-22s %8s %9s %9s %10s\n", "Item Type", "Items", "Rec/Item", "Items", "Rec/Item")
	for _, row := range table4Rows {
		fmt.Fprintf(w, "%-22s %8d %9s %9d %10s\n", row.label,
			dI[row.t], perItem(oI[row.t], dI[row.t]),
			dR[row.t], perItem(oR[row.t], dR[row.t]))
	}
	return nil
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func perItem(occurrences, distinct int) string {
	if distinct == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", occurrences/distinct)
}
