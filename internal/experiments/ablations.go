package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/adtree"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/fpgrowth"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

// AblationScoring isolates the block-scoring design choice: the
// set-monotonic itemset Jaccard (uniform and expert-weighted) against the
// expert fsim soft score, at the base configuration.
func (r *Runner) AblationScoring(w io.Writer) error {
	header(w, "Ablation", "Block scoring function")
	g := r.Italy()
	pre := r.ItalyPre()
	truth := eval.NewPairSet(g.Gold.TruePairs())
	fmt.Fprintf(w, "%-22s %8s %10s %8s %10s\n", "Scoring", "Recall", "Precision", "F-1", "Runtime")
	for _, row := range []struct {
		name    string
		weights bool
		fsim    bool
	}{
		{"Jaccard/uniform", false, false},
		{"Jaccard/expert-wts", true, false},
		{"fsim (Eq. 1)", false, true},
	} {
		bc := mfiblocks.NewConfig()
		bc.ExpertWeights = row.weights
		bc.ExpertSim = row.fsim
		if row.fsim {
			bc.Geo = g.Gaz
		}
		t0 := time.Now()
		res, err := mfiblocks.Run(bc, pre)
		if err != nil {
			return err
		}
		el := time.Since(t0)
		m := eval.Evaluate(res.Pairs, truth)
		fmt.Fprintf(w, "%-22s %8.3f %10.3f %8.3f %10s\n", row.name, m.Recall, m.Precision, m.F1, el.Round(time.Millisecond))
	}
	return nil
}

// AblationBoostingRounds shows classifier accuracy and model size against
// the number of boosting rounds.
func (r *Runner) AblationBoostingRounds(w io.Writer) error {
	header(w, "Ablation", "ADTree boosting rounds")
	g := r.Italy()
	insts, _, err := core.Instances(r.Tags(), g.Collection, g.Gaz, core.OmitMaybe)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %10s\n", "Rounds", "Accuracy", "Features")
	for _, rounds := range []int{1, 2, 5, 10, 15, 20} {
		cfg := adtree.NewTrainConfig()
		cfg.Rounds = rounds
		acc, err := core.CrossValidate(cfg, insts, 5)
		if err != nil {
			return err
		}
		m, err := adtree.Train(cfg, features.Defs(), insts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %9.1f%% %10d\n", rounds, 100*acc, len(m.UsedFeatures()))
	}
	return nil
}

// AblationMaximality compares direct maximal mining (FPmax-style) against
// mining all frequent itemsets and filtering, validating both the speedup
// and result equality.
func (r *Runner) AblationMaximality(w io.Writer) error {
	header(w, "Ablation", "Direct MFI mining vs mine-all+filter")
	// A small subset keeps the mine-all variant tractable — its
	// exponential blowup at low minsup is exactly what the ablation
	// demonstrates.
	coll := r.ItalyPre()
	limit := 400
	if coll.Len() < limit {
		limit = coll.Len()
	}
	sub, err := record.NewCollection(coll.Records[:limit])
	if err != nil {
		return err
	}
	dict := record.BuildDictionary(sub)
	txns := make([][]int, sub.Len())
	for i, rec := range sub.Records {
		txns[i] = dict.Encode(rec)
	}
	miner := fpgrowth.NewMiner(txns)
	miner.Prune(dict.MostFrequent(0.0003))

	fmt.Fprintf(w, "%-8s %12s %12s %10s %10s %8s\n", "minsup", "direct", "mine-all", "MFIs", "frequent", "equal")
	for _, ms := range []int{4, 3, 2} {
		t0 := time.Now()
		direct := miner.MineMaximal(ms, nil)
		dDirect := time.Since(t0)
		if ms == 2 {
			// At minsup=2 the all-frequent enumeration is exponential in
			// the duplicates' shared-itemset sizes — the blowup direct
			// maximal mining exists to avoid. Report direct only.
			fmt.Fprintf(w, "%-8d %12s %12s %10d %10s %8s\n",
				ms, dDirect.Round(time.Millisecond), "(exp.)", len(direct), "-", "-")
			continue
		}
		t1 := time.Now()
		all := miner.Mine(ms, nil)
		filtered := fpgrowth.FilterMaximal(all)
		dAll := time.Since(t1)
		fmt.Fprintf(w, "%-8d %12s %12s %10d %10d %8v\n",
			ms, dDirect.Round(time.Millisecond), dAll.Round(time.Millisecond),
			len(direct), len(all), sameItemsets(direct, filtered))
	}
	return nil
}

func sameItemsets(a, b []fpgrowth.Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(s fpgrowth.Itemset) string {
		out := ""
		for _, it := range s.Items {
			out += fmt.Sprintf("%d,", it)
		}
		return fmt.Sprintf("%s=%d", out, s.Support)
	}
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[key(s)] = true
	}
	for _, s := range b {
		if !set[key(s)] {
			return false
		}
	}
	return true
}

// AblationPruning varies the frequent-item pruning fraction and reports
// runtime and recall.
func (r *Runner) AblationPruning(w io.Writer) error {
	header(w, "Ablation", "Frequent-item pruning fraction")
	g := r.Italy()
	pre := r.ItalyPre()
	truth := eval.NewPairSet(g.Gold.TruePairs())
	fmt.Fprintf(w, "%-10s %10s %8s %10s %8s\n", "fraction", "runtime", "recall", "precision", "cand")
	for _, frac := range []float64{0, 0.0003, 0.003, 0.03} {
		bc := mfiblocks.NewConfig()
		bc.PruneFraction = frac
		t0 := time.Now()
		res, err := mfiblocks.Run(bc, pre)
		if err != nil {
			return err
		}
		el := time.Since(t0)
		m := eval.Evaluate(res.Pairs, truth)
		fmt.Fprintf(w, "%-10.4f %10s %8.3f %10.3f %8d\n", frac, el.Round(time.Millisecond), m.Recall, m.Precision, len(res.Pairs))
	}
	return nil
}

// AblationWorkers reports blocking runtime against the block-construction
// worker count.
func (r *Runner) AblationWorkers(w io.Writer) error {
	header(w, "Ablation", "Parallel block construction workers")
	pre := r.ItalyPre()
	fmt.Fprintf(w, "%-9s %10s\n", "workers", "runtime")
	for _, n := range []int{1, 2, 4, 8} {
		bc := mfiblocks.NewConfig()
		bc.Workers = n
		t0 := time.Now()
		if _, err := mfiblocks.Run(bc, pre); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9d %10s\n", n, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// AblationScoringWorkers reports end-to-end pipeline runtime and the
// scoring stage's throughput against the pair-scoring worker count —
// workers=1 is the serial per-pair extraction path, higher counts use the
// profiled worker pool. The match list is identical at every count.
func (r *Runner) AblationScoringWorkers(w io.Writer) error {
	header(w, "Ablation", "Parallel pair scoring workers")
	g := r.Italy()
	model, err := r.trainOn(r.Tags())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %10s %10s %10s\n", "workers", "runtime", "matches", "pairs/s")
	var refMatches int
	for _, n := range []int{1, 2, 4, 8} {
		opts := core.Options{
			Blocking:   mfiblocks.NewConfig(),
			Geo:        g.Gaz,
			Preprocess: true,
			Gazetteer:  g.Gaz,
			SameSrc:    true,
			Model:      model,
			Classify:   true,
			Workers:    n,
		}
		t0 := time.Now()
		res, err := core.Run(opts, g.Collection)
		if err != nil {
			return err
		}
		el := time.Since(t0)
		scored := len(res.Blocking.Pairs)
		rate := float64(scored) / el.Seconds()
		fmt.Fprintf(w, "%-9d %10s %10d %10.0f\n", n, el.Round(time.Millisecond), len(res.Matches), rate)
		if n == 1 {
			refMatches = len(res.Matches)
		} else if len(res.Matches) != refMatches {
			return fmt.Errorf("scoring workers=%d changed the match count: %d vs %d", n, len(res.Matches), refMatches)
		}
	}
	return nil
}
