// Package experiments regenerates every table and figure of the paper's
// empirical evaluation (Section 6) over the synthetic Names-Project-shaped
// datasets. Each experiment prints rows/series in the same shape the paper
// reports; EXPERIMENTS.md records paper-vs-measured values.
//
// A Runner memoizes the expensive shared artifacts (datasets, the blocking
// run feeding the tagging application, the simulated expert tags) so that
// one yvbench invocation can regenerate many experiments cheaply.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

// Scale selects dataset sizes: Quick for benchmarks and CI, Full for
// paper-scale runs.
type Scale int

// The two scales.
const (
	// Quick uses ~2.5K-record datasets; every experiment finishes in
	// seconds.
	Quick Scale = iota
	// Full uses paper-scale datasets (Italy ~9.5K records); the NG sweep
	// takes minutes.
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Runner memoizes datasets and derived artifacts across experiments.
type Runner struct {
	ScaleMode Scale

	// PersonsOverride, when positive, replaces every preset's person
	// count — used by tests to shrink the datasets.
	PersonsOverride int

	// ScoringWorkers sets core.Options.Workers for experiments that run
	// the full pipeline; 0 keeps the GOMAXPROCS default. Results are
	// worker-count independent — only runtime changes.
	ScoringWorkers int

	mu        sync.Mutex
	italy     *dataset.Generated
	italyPre  *record.Collection
	random    *dataset.Generated
	fullShape *dataset.Generated
	tags      *dataset.TagSet
	tagScores map[record.Pair]float64
	sweep     []SweepResult
}

// NewRunner returns a runner at the given scale.
func NewRunner(scale Scale) *Runner { return &Runner{ScaleMode: scale} }

func (r *Runner) italyPersons() int {
	if r.PersonsOverride > 0 {
		return r.PersonsOverride
	}
	if r.ScaleMode == Full {
		return 4600 // ~9.5K records, the ItalySet size
	}
	return 1200
}

func (r *Runner) randomPersons() int {
	if r.PersonsOverride > 0 {
		return r.PersonsOverride
	}
	if r.ScaleMode == Full {
		return 47000 // ~100K records
	}
	return 2500
}

func (r *Runner) fullShapePersons() int {
	if r.PersonsOverride > 0 {
		return r.PersonsOverride * 3
	}
	if r.ScaleMode == Full {
		return 40000 // ~85K records standing in for 6.5M
	}
	return 6000
}

// Italy returns the (memoized) ItalySet-shaped dataset.
func (r *Runner) Italy() *dataset.Generated {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.italy == nil {
		cfg := dataset.ItalyConfig()
		cfg.Persons = r.italyPersons()
		r.italy = mustGenerate(cfg)
	}
	return r.italy
}

// ItalyPre returns the preprocessed Italy collection.
func (r *Runner) ItalyPre() *record.Collection {
	g := r.Italy()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.italyPre == nil {
		pre, err := core.PreprocessWith(g.Collection, g.Gaz)
		if err != nil {
			panic(fmt.Sprintf("experiments: preprocess: %v", err))
		}
		r.italyPre = pre
	}
	return r.italyPre
}

// Random returns the RandomSet-shaped dataset (stratified six-community
// sample).
func (r *Runner) Random() *dataset.Generated {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.random == nil {
		r.random = mustGenerate(dataset.RandomSetConfig(r.randomPersons()))
	}
	return r.random
}

// FullShape returns the full-database-shaped dataset used by the pattern
// and runtime studies.
func (r *Runner) FullShape() *dataset.Generated {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fullShape == nil {
		r.fullShape = mustGenerate(dataset.FullShapeConfig(r.fullShapePersons()))
	}
	return r.fullShape
}

// Tags returns the simulated expert tag set over the Italy candidates. As
// in the paper, candidates come from several MFIBlocks configurations
// bundled into the tagging application; each pair also carries its best
// blocking similarity (TagScores) for the Figure 8 analysis.
func (r *Runner) Tags() *dataset.TagSet {
	r.ensureTags()
	return r.tags
}

// TagScores returns each tagged pair's blocking similarity.
func (r *Runner) TagScores() map[record.Pair]float64 {
	r.ensureTags()
	return r.tagScores
}

func (r *Runner) ensureTags() {
	g := r.Italy()
	pre := r.ItalyPre()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tags != nil {
		return
	}
	scores := make(map[record.Pair]float64)
	var pairs []record.Pair
	for _, bc := range taggingConfigs() {
		res, err := mfiblocks.Run(bc, pre)
		if err != nil {
			panic(fmt.Sprintf("experiments: tagging blocking run: %v", err))
		}
		for p, s := range res.PairScores {
			if _, seen := scores[p]; !seen {
				pairs = append(pairs, p)
			}
			if s > scores[p] {
				scores[p] = s
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	tagger := &dataset.Tagger{Gold: g.Gold, Coll: g.Collection, Rng: rand.New(rand.NewSource(2016))}
	r.tags = tagger.TagPairs(pairs)
	r.tagScores = scores
}

// taggingConfigs are the "several configurations" whose candidate pairs
// the experts tagged.
func taggingConfigs() []mfiblocks.Config {
	var out []mfiblocks.Config
	for _, mms := range []int{4, 5} {
		for _, ng := range []float64{2.5, 3.5} {
			c := mfiblocks.NewConfig()
			c.MaxMinSup = mms
			c.NG = ng
			out = append(out, c)
		}
	}
	return out
}

func mustGenerate(cfg dataset.Config) *dataset.Generated {
	g, err := dataset.Generate(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: generate: %v", err))
	}
	return g
}

// header prints an experiment banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "== %s: %s ==\n", id, title)
}
