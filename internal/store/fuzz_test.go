package store

import (
	"bytes"
	"testing"

	"repro/internal/record"
)

// FuzzDecodeRecord asserts two properties over arbitrary frames: the
// decoder never panics, and any frame it accepts is canonical — encoding
// the decoded record reproduces the input bytes exactly (decode enforces
// full consumption, so accepted frames have a unique encoding).
func FuzzDecodeRecord(f *testing.F) {
	seeds := []*record.Record{
		{BookID: 1},
		{BookID: 1016196, Source: "page-of-testimony", Kind: record.Testimony},
	}
	r := &record.Record{BookID: 42, Source: "submitter:Мария Коган:Київ", Kind: record.List}
	r.Add(record.FirstName, "Guido")
	r.Add(record.LastName, "Foa")
	r.Add(record.BirthCity, "Torino")
	seeds = append(seeds, r)
	for _, s := range seeds {
		frame, err := encodeRecord(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeRecord(data)
		if err != nil {
			return
		}
		frame, err := encodeRecord(r)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(frame, data) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data, frame)
		}
	})
}
