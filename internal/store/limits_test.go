package store

import (
	"strings"
	"testing"

	"repro/internal/record"
)

func TestEncodeLimits(t *testing.T) {
	long := strings.Repeat("x", 0x10000)

	r := &record.Record{BookID: 1, Source: long}
	if _, err := encodeRecord(r); err == nil {
		t.Error("over-long source accepted")
	}

	r = &record.Record{BookID: 2}
	r.Add(record.FirstName, long)
	if _, err := encodeRecord(r); err == nil {
		t.Error("over-long item value accepted")
	}
}

func TestWriterLen(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Len() != 0 {
		t.Errorf("fresh writer Len = %d", w.Len())
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(&record.Record{BookID: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestDecodeRejectsInvalidKindAndType(t *testing.T) {
	r := &record.Record{BookID: 5, Kind: record.Testimony}
	r.Add(record.FirstName, "x")
	frame, err := encodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the kind byte.
	bad := append([]byte(nil), frame...)
	bad[8] = 99
	if _, err := decodeRecord(bad); err == nil {
		t.Error("invalid kind accepted")
	}
	// Corrupt the item type byte (offset: 8 id + 1 kind + 2 srclen + 0 src + 2 count = 13).
	bad = append([]byte(nil), frame...)
	bad[13] = 0xFE
	if _, err := decodeRecord(bad); err == nil {
		t.Error("invalid item type accepted")
	}
	// Short frame.
	if _, err := decodeRecord(frame[:5]); err == nil {
		t.Error("short frame accepted")
	}
}
