package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/record"
)

// smallRecords builds a handful of records with distinct sizes so frame
// boundaries land at irregular offsets.
func smallRecords() []*record.Record {
	var out []*record.Record
	names := []string{"Guido", "Alessandra", "Foa", "Моше", "קוגן"}
	for i, name := range names {
		r := &record.Record{BookID: int64(1000 + i), Source: "page-of-testimony", Kind: record.Testimony}
		r.Add(record.FirstName, name)
		if i%2 == 0 {
			r.Add(record.LastName, strings.Repeat("x", i*7+1))
		}
		out = append(out, r)
	}
	return out
}

// frameEnds returns the byte offset just past each whole frame, starting
// with the header end — the set of clean truncation points.
func frameEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	ends := []int64{headerLen}
	offset := int64(headerLen)
	for offset < int64(len(data)) {
		frameLen := int64(binary.LittleEndian.Uint32(data[offset : offset+4]))
		offset += 4 + frameLen
		if offset > int64(len(data)) {
			t.Fatalf("reference scan overran file at %d", offset)
		}
		ends = append(ends, offset)
	}
	return ends
}

// TestRecoverFromArbitraryTruncation is the acceptance criterion: a
// store truncated at every byte offset past the header reopens under
// Recover, yielding exactly the records whose frames precede the cut,
// and the repaired file then passes a strict Open.
func TestRecoverFromArbitraryTruncation(t *testing.T) {
	records := smallRecords()
	path := tmpPath(t)
	if err := WriteAll(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	wholeBefore := func(cut int64) int {
		n := 0
		for i, end := range ends[1:] {
			if end <= cut {
				n = i + 1
			}
		}
		return n
	}

	dir := t.TempDir()
	for cut := int64(headerLen); cut < int64(len(data)); cut++ {
		torn := filepath.Join(dir, "torn.yvst")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		clean := false
		for _, end := range ends {
			if end == cut {
				clean = true
			}
		}
		if s, err := Open(torn); err == nil {
			if !clean {
				s.Close()
				t.Fatalf("cut at %d: strict Open accepted a torn tail", cut)
			}
			s.Close()
		} else if clean {
			t.Fatalf("cut at %d: strict Open rejected a clean prefix: %v", cut, err)
		}

		s, err := Open(torn, Recover)
		if err != nil {
			t.Fatalf("cut at %d: Open(Recover) failed: %v", cut, err)
		}
		want := wholeBefore(cut)
		if s.Len() != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, s.Len(), want)
		}
		if clean && s.RepairedBytes != 0 {
			t.Fatalf("cut at %d: clean prefix reported %d repaired bytes", cut, s.RepairedBytes)
		}
		if !clean && s.RepairedBytes == 0 {
			t.Fatalf("cut at %d: torn tail reported no repaired bytes", cut)
		}
		all, err := s.All()
		if err != nil {
			t.Fatalf("cut at %d: All after recovery: %v", cut, err)
		}
		for i, r := range all {
			if !reflect.DeepEqual(r, records[i]) {
				t.Fatalf("cut at %d: record %d differs after recovery", cut, i)
			}
		}
		s.Close()

		// The repair is durable: a strict reopen sees a clean file.
		s2, err := Open(torn)
		if err != nil {
			t.Fatalf("cut at %d: strict reopen after repair failed: %v", cut, err)
		}
		if s2.Len() != want {
			t.Fatalf("cut at %d: reopen has %d records, want %d", cut, s2.Len(), want)
		}
		s2.Close()
	}
}

func TestTornTailDiagnostics(t *testing.T) {
	records := smallRecords()
	path := tmpPath(t)
	if err := WriteAll(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)

	cases := []struct {
		name string
		cut  int64
		want string
	}{
		{"truncated length prefix", ends[2] + 2, "truncated length prefix"},
		{"partial frame", ends[2] + 10, "partial frame"},
	}
	for _, tc := range cases {
		torn := filepath.Join(t.TempDir(), "torn.yvst")
		if err := os.WriteFile(torn, data[:tc.cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(torn)
		if err == nil {
			t.Fatalf("%s: strict Open accepted the file", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestOversizedFrameLenRejected: a complete but absurd length prefix is
// content corruption, not a torn tail — both modes fail, and neither
// attempts the allocation the prefix asks for.
func TestOversizedFrameLenRejected(t *testing.T) {
	path := tmpPath(t)
	if err := WriteAll(path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(MaxFrameLen+1))
	data = append(data, prefix[:]...)
	data = append(data, []byte("junk")...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]OpenOption{nil, {Recover}} {
		s, err := Open(path, opts...)
		if err == nil {
			s.Close()
			t.Fatalf("Open(%d opts) accepted an oversized frame length", len(opts))
		}
		if !strings.Contains(err.Error(), "exceeds cap") {
			t.Errorf("error %q does not mention the cap", err)
		}
	}
}

// TestGetRejectsOversizedFrameLen covers the random-access path: a
// length prefix corrupted after Open must not drive the allocation.
func TestGetRejectsOversizedFrameLen(t *testing.T) {
	records := smallRecords()
	path := tmpPath(t)
	if err := WriteAll(path, records); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Corrupt the first record's length prefix behind the index's back.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(MaxFrameLen+1))
	if _, err := f.WriteAt(prefix[:], headerLen); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := s.Get(records[0].BookID); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Errorf("Get with corrupt length prefix: err = %v, want cap error", err)
	}
}

// TestWriteAllAtomic: a WriteAll that fails mid-stream leaves the
// previous file untouched and no temp files behind; a successful one
// leaves exactly the target.
func TestWriteAllAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.yvst")
	old := smallRecords()
	if err := WriteAll(path, old); err != nil {
		t.Fatal(err)
	}

	bad := &record.Record{BookID: 9999, Source: strings.Repeat("s", 0x10000)}
	if err := WriteAll(path, []*record.Record{bad}); err == nil {
		t.Fatal("WriteAll accepted an unencodable record")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "records.yvst" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after failed WriteAll: %v", names)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("original file damaged by failed WriteAll: %v", err)
	}
	defer s.Close()
	if s.Len() != len(old) {
		t.Errorf("original file has %d records, want %d", s.Len(), len(old))
	}
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !reflect.DeepEqual(all[i], old[i]) {
			t.Errorf("record %d changed by failed WriteAll", i)
		}
	}
}
