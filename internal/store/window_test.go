package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/record"
)

// writeStore persists records and returns the path and raw bytes.
func writeStore(t *testing.T, records []*record.Record) (string, []byte) {
	t.Helper()
	path := tmpPath(t)
	if err := WriteAll(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func genRecords(t *testing.T, persons int) []*record.Record {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = persons
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g.Records
}

// TestWindowReaderMatchesAll asserts the windowed pass delivers exactly
// what Store.All loads, in order, across several window sizes including
// ones that do not divide the record count.
func TestWindowReaderMatchesAll(t *testing.T) {
	records := genRecords(t, 120)
	path, _ := writeStore(t, records)

	for _, win := range []int{1, 7, 64, 100000} {
		w, err := OpenWindowReader(path)
		if err != nil {
			t.Fatal(err)
		}
		var got []*record.Record
		var buf []*record.Record
		for {
			buf, err = w.Next(buf, win)
			got = append(got, buf...)
			if err != nil {
				break
			}
		}
		if err != io.EOF {
			t.Fatalf("window=%d: terminal error %v, want io.EOF", win, err)
		}
		if w.Count() != len(records) {
			t.Fatalf("window=%d: Count=%d, want %d", win, w.Count(), len(records))
		}
		if len(got) != len(records) {
			t.Fatalf("window=%d: got %d records, want %d", win, len(got), len(records))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], records[i]) {
				t.Fatalf("window=%d: record %d differs", win, i)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWindowReaderNextRecord asserts the one-at-a-time adapter sees the
// same sequence as the window API.
func TestWindowReaderNextRecord(t *testing.T) {
	records := genRecords(t, 40)
	path, _ := writeStore(t, records)
	w, err := OpenWindowReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := range records {
		r, err := w.NextRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := w.NextRecord(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestWindowReaderTornTail covers both torn-tail modes at every truncation
// point of the final frame: strict readers deliver the intact prefix then
// fail with a torn-tail diagnostic; Recover readers stop cleanly at the
// last whole frame and report the skipped bytes.
func TestWindowReaderTornTail(t *testing.T) {
	records := genRecords(t, 10)
	_, data := writeStore(t, records)

	// Find the offset of the final frame to truncate inside it.
	s := openBytes(t, data)
	offsets := make([]int64, 0, len(s.order))
	for _, id := range s.order {
		offsets = append(offsets, s.offsets[id])
	}
	s.Close()
	lastFrame := offsets[len(offsets)-1]

	for cut := lastFrame + 1; cut < int64(len(data)); cut += 3 {
		torn := data[:cut]

		// Strict: all whole frames, then the torn-tail error.
		w, err := NewWindowReader(bytes.NewReader(torn), int64(len(torn)))
		if err != nil {
			t.Fatal(err)
		}
		n, terminal := drain(w)
		if n != len(records)-1 {
			t.Fatalf("cut=%d strict: delivered %d, want %d", cut, n, len(records)-1)
		}
		var tt *tornTailError
		if !errors.As(terminal, &tt) {
			t.Fatalf("cut=%d strict: terminal error %v, want torn tail", cut, terminal)
		}

		// Recover: clean EOF at the last whole frame, torn bytes reported.
		w, err = NewWindowReader(bytes.NewReader(torn), int64(len(torn)), Recover)
		if err != nil {
			t.Fatal(err)
		}
		n, terminal = drain(w)
		if n != len(records)-1 || terminal != io.EOF {
			t.Fatalf("cut=%d recover: delivered %d terminal %v", cut, n, terminal)
		}
		if want := cut - lastFrame; w.TornBytes() != want {
			t.Fatalf("cut=%d recover: TornBytes=%d, want %d", cut, w.TornBytes(), want)
		}
	}
}

// TestWindowReaderRejectsCorruption mirrors TestOpenRejectsCorruption:
// content corruption is an error in both modes — only tail truncation is
// recoverable.
func TestWindowReaderRejectsCorruption(t *testing.T) {
	r := &record.Record{BookID: 1}
	r.Add(record.FirstName, "Guido")
	_, data := writeStore(t, []*record.Record{r})

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		ctor   bool // expected to fail at construction
	}{
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] = 'X'; return b }, true},
		{"bad version", func(b []byte) []byte { b = append([]byte(nil), b...); b[4] = 99; return b }, true},
		{"oversized frame length", func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[headerLen] = 0xFF
			b[headerLen+1] = 0xFF
			b[headerLen+2] = 0xFF
			b[headerLen+3] = 0xFF
			return b
		}, false},
		{"undecodable frame", func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[headerLen+4+8] = 0xFF // invalid record kind
			return b
		}, false},
	}
	for _, tc := range cases {
		bad := tc.mutate(data)
		for _, opts := range [][]OpenOption{nil, {Recover}} {
			w, err := NewWindowReader(bytes.NewReader(bad), int64(len(bad)), opts...)
			if tc.ctor {
				if err == nil {
					t.Errorf("%s: construction accepted corrupt store", tc.name)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: unexpected construction error %v", tc.name, err)
			}
			if _, terminal := drain(w); terminal == io.EOF || terminal == nil {
				t.Errorf("%s (recover=%v): corruption not surfaced", tc.name, opts != nil)
			}
		}
	}
}

// TestWindowReaderEmptyStore asserts a header-only store yields a clean
// EOF.
func TestWindowReaderEmptyStore(t *testing.T) {
	path, _ := writeStore(t, nil)
	w, err := OpenWindowReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if n, terminal := drain(w); n != 0 || terminal != io.EOF {
		t.Fatalf("empty store: delivered %d terminal %v", n, terminal)
	}
}

// drain consumes the reader and returns the record count and terminal
// error.
func drain(w *WindowReader) (int, error) {
	n := 0
	var buf []*record.Record
	for {
		out, err := w.Next(buf, 8)
		n += len(out)
		buf = out
		if err != nil {
			return n, err
		}
	}
}

// openBytes opens store bytes through a temp file with the full indexer.
func openBytes(t *testing.T, data []byte) *Store {
	t.Helper()
	path := tmpPath(t)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
