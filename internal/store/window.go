package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/record"
)

// WindowReader streams a store's records forward in bounded windows — the
// reader the 1M-record pipeline uses instead of materializing a full
// record.Collection through Store.All. It performs exactly one sequential
// pass, holds at most one window of decoded records plus one frame buffer,
// and never builds the BookID index (streaming callers that need duplicate
// detection get it from the collection or corpus they assemble downstream).
//
// Torn tails — the signature a killed writer leaves — follow Open's
// contract: strict readers surface the torn tail as an error once the
// intact prefix has been fully delivered, while readers opened with the
// Recover option stop cleanly at the last whole frame and report the
// skipped byte count through TornBytes (the underlying file is never
// modified; repair-in-place stays Open's job). Content corruption (bad
// magic, an oversized frame length, a frame that fails to decode) is an
// error in both modes: dropping a suffix cannot repair it.
type WindowReader struct {
	src     *bufio.Reader
	size    int64
	offset  int64
	recover bool
	done    bool
	err     error // sticky terminal error; io.EOF once exhausted
	torn    int64
	count   int
	lenBuf  [4]byte
	frame   []byte
	window  []*record.Record // scratch for NextRecord
	wpos    int
	file    *os.File // owned when opened via OpenWindowReader
}

// DefaultWindow is the records-per-window default streaming callers use
// when they have no reason to pick another size: large enough that the
// per-window bookkeeping is noise, small enough that a window of decoded
// records stays a rounding error next to the pipeline's own state.
const DefaultWindow = 4096

// OpenWindowReader starts a windowed sequential read of a store file. The
// Recover option selects clean-stop semantics for torn tails; without it a
// torn tail is an error after the intact prefix is delivered. The file is
// opened read-only in both modes and closed by Close.
func OpenWindowReader(path string, opts ...OpenOption) (*WindowReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat: %w", err)
	}
	w, err := NewWindowReader(f, fi.Size(), opts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.file = f
	return w, nil
}

// NewWindowReader wraps an arbitrary sequential reader holding size bytes
// of store-formatted data. It validates the header eagerly, so a malformed
// prefix fails at construction rather than on the first window.
func NewWindowReader(r io.Reader, size int64, opts ...OpenOption) (*WindowReader, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if size < headerLen {
		return nil, fmt.Errorf("store: file is %d bytes, smaller than the %d-byte header", size, headerLen)
	}
	w := &WindowReader{src: bufio.NewReader(r), size: size, recover: cfg.recover}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(w.src, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	w.offset = headerLen
	return w, nil
}

// Next reads up to max records into dst (reset and reused when non-nil)
// and returns the window. It returns an empty window with io.EOF once the
// store is exhausted; in strict mode a torn tail is the terminal error
// instead, surfaced only after every whole frame before it has been
// delivered. Errors are sticky: once Next fails, every later call fails
// identically.
func (w *WindowReader) Next(dst []*record.Record, max int) ([]*record.Record, error) {
	dst = dst[:0]
	if max <= 0 {
		max = DefaultWindow
	}
	if w.err != nil {
		return dst, w.err
	}
	for len(dst) < max {
		r, err := w.next()
		if err != nil {
			w.err = err
			if len(dst) > 0 {
				// Deliver the full window first; the caller sees the
				// terminal error on its next call.
				return dst, nil
			}
			return dst, err
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// next decodes one frame, or reports the terminal condition.
func (w *WindowReader) next() (*record.Record, error) {
	if w.done {
		return nil, io.EOF
	}
	remaining := w.size - w.offset
	if remaining == 0 {
		w.done = true
		return nil, io.EOF
	}
	if remaining < 4 {
		return nil, w.tearOff(fmt.Sprintf("truncated length prefix (%d of 4 bytes)", remaining))
	}
	if _, err := io.ReadFull(w.src, w.lenBuf[:]); err != nil {
		return nil, fmt.Errorf("store: read frame length at %d: %w", w.offset, err)
	}
	frameLen := int64(binary.LittleEndian.Uint32(w.lenBuf[:]))
	if frameLen > MaxFrameLen {
		// Never recoverable: a torn write truncates, it cannot manufacture
		// a complete oversized length prefix.
		return nil, fmt.Errorf("store: frame length %d at offset %d exceeds cap %d (corrupt length prefix)", frameLen, w.offset, MaxFrameLen)
	}
	if frameLen > remaining-4 {
		return nil, w.tearOff(fmt.Sprintf("partial frame (%d of %d bytes)", remaining-4, frameLen))
	}
	if int64(cap(w.frame)) < frameLen {
		w.frame = make([]byte, frameLen)
	}
	w.frame = w.frame[:frameLen]
	if _, err := io.ReadFull(w.src, w.frame); err != nil {
		return nil, fmt.Errorf("store: read frame at %d: %w", w.offset, err)
	}
	r, err := decodeRecord(w.frame)
	if err != nil {
		return nil, fmt.Errorf("%w (frame at offset %d)", err, w.offset)
	}
	w.offset += 4 + frameLen
	w.count++
	return r, nil
}

// tearOff handles a torn tail per the reader's mode: Recover stops cleanly
// (recording the skipped bytes), strict surfaces the same diagnostic Open
// would.
func (w *WindowReader) tearOff(reason string) error {
	w.done = true
	if w.recover {
		w.torn = w.size - w.offset
		return io.EOF
	}
	return &tornTailError{good: w.offset, reason: reason}
}

// NextRecord yields one record at a time over an internal window — the
// adapter shape core.RecordSource expects. It returns io.EOF at the end.
func (w *WindowReader) NextRecord() (*record.Record, error) {
	if w.wpos >= len(w.window) {
		var err error
		w.window, err = w.Next(w.window, DefaultWindow)
		if err != nil {
			return nil, err
		}
		if len(w.window) == 0 {
			return nil, io.EOF
		}
		w.wpos = 0
	}
	r := w.window[w.wpos]
	w.wpos++
	return r, nil
}

// TornBytes reports the torn-tail bytes skipped under the Recover option;
// zero until the tail is actually reached, and always zero in strict mode.
func (w *WindowReader) TornBytes() int64 { return w.torn }

// Count reports the records delivered so far.
func (w *WindowReader) Count() int { return w.count }

// Close releases the underlying file when the reader owns one.
func (w *WindowReader) Close() error {
	if w.file != nil {
		return w.file.Close()
	}
	return nil
}
