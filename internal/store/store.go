// Package store provides a compact append-only on-disk store for victim
// reports with a BookID index — the persistence substrate a deployment
// keeps its 6.5M records in between pipeline runs. The format is a
// length-prefixed binary log: a fixed header, then one framed record per
// report; the index is rebuilt on open by a single sequential scan.
//
// Layout (little-endian):
//
//	header:  magic "YVST" | uint32 version
//	record:  uint32 frameLen | int64 bookID | uint8 kind |
//	         uint16 sourceLen | source bytes |
//	         uint16 itemCount | items (uint8 type | uint16 valueLen | value)
//
// Durability: WriteAll stages the whole file beside the target and
// renames it into place after an fsync, so a crashed writer never leaves
// a half-written store under the final name. A process killed while
// streaming through Create/Append can still leave a torn tail (a
// truncated length prefix or a partial frame); Open detects that and —
// with the Recover option — repairs the file by truncating it back to
// the last whole frame. Frame lengths are capped at MaxFrameLen, so a
// corrupt length prefix is diagnosed instead of driving an arbitrary
// allocation.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/record"
)

var magic = [4]byte{'Y', 'V', 'S', 'T'}

// Version is the current format version.
const Version = 1

// headerLen is the byte length of the file header (magic + version).
const headerLen = 8

// MaxFrameLen caps a single record frame. Encoded records are far
// smaller in practice (sources and values are uint16-length bounded);
// the cap exists so a corrupt length prefix yields a precise error
// instead of a multi-gigabyte allocation.
const MaxFrameLen = 16 << 20

// Writer appends records to a store file.
type Writer struct {
	f   *os.File
	buf *bufio.Writer
	n   int
}

// Create starts a new store file, truncating any existing one.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := newWriter(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// newWriter wraps an open file and writes the header.
func newWriter(f *os.File) (*Writer, error) {
	w := &Writer{f: f, buf: bufio.NewWriter(f)}
	if _, err := w.buf.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(w.buf, binary.LittleEndian, uint32(Version)); err != nil {
		return nil, err
	}
	return w, nil
}

// Append writes one record.
func (w *Writer) Append(r *record.Record) error {
	frame, err := encodeRecord(r)
	if err != nil {
		return err
	}
	if err := binary.Write(w.buf, binary.LittleEndian, uint32(len(frame))); err != nil {
		return err
	}
	if _, err := w.buf.Write(frame); err != nil {
		return err
	}
	w.n++
	return nil
}

// Len returns the number of appended records.
func (w *Writer) Len() int { return w.n }

// Close flushes, fsyncs, and closes the file.
func (w *Writer) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeRecord(r *record.Record) ([]byte, error) {
	if len(r.Source) > 0xFFFF {
		return nil, fmt.Errorf("store: source of record %d too long (%d)", r.BookID, len(r.Source))
	}
	if len(r.Items) > 0xFFFF {
		return nil, fmt.Errorf("store: record %d has too many items (%d)", r.BookID, len(r.Items))
	}
	size := 8 + 1 + 2 + len(r.Source) + 2
	for _, it := range r.Items {
		if len(it.Value) > 0xFFFF {
			return nil, fmt.Errorf("store: record %d item value too long", r.BookID)
		}
		size += 1 + 2 + len(it.Value)
	}
	if size > MaxFrameLen {
		return nil, fmt.Errorf("store: record %d frame is %d bytes, exceeds cap %d", r.BookID, size, MaxFrameLen)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint64(out, uint64(r.BookID))
	out = append(out, byte(r.Kind))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Source)))
	out = append(out, r.Source...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Items)))
	for _, it := range r.Items {
		out = append(out, byte(it.Type))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(it.Value)))
		out = append(out, it.Value...)
	}
	return out, nil
}

func decodeRecord(frame []byte) (*record.Record, error) {
	r := &record.Record{}
	if len(frame) < 13 {
		return nil, fmt.Errorf("store: truncated record frame (%d bytes)", len(frame))
	}
	r.BookID = int64(binary.LittleEndian.Uint64(frame[0:8]))
	kind := frame[8]
	if kind > uint8(record.List) {
		return nil, fmt.Errorf("store: record %d has invalid kind %d", r.BookID, kind)
	}
	r.Kind = record.SourceKind(kind)
	pos := 9
	srcLen := int(binary.LittleEndian.Uint16(frame[pos : pos+2]))
	pos += 2
	if pos+srcLen+2 > len(frame) {
		return nil, fmt.Errorf("store: record %d source overruns frame", r.BookID)
	}
	r.Source = string(frame[pos : pos+srcLen])
	pos += srcLen
	itemCount := int(binary.LittleEndian.Uint16(frame[pos : pos+2]))
	pos += 2
	for k := 0; k < itemCount; k++ {
		if pos+3 > len(frame) {
			return nil, fmt.Errorf("store: record %d item %d truncated", r.BookID, k)
		}
		t := frame[pos]
		if int(t) >= record.NumItemTypes {
			return nil, fmt.Errorf("store: record %d has invalid item type %d", r.BookID, t)
		}
		vLen := int(binary.LittleEndian.Uint16(frame[pos+1 : pos+3]))
		pos += 3
		if pos+vLen > len(frame) {
			return nil, fmt.Errorf("store: record %d item %d value overruns frame", r.BookID, k)
		}
		r.Items = append(r.Items, record.Item{Type: record.ItemType(t), Value: string(frame[pos : pos+vLen])})
		pos += vLen
	}
	if pos != len(frame) {
		return nil, fmt.Errorf("store: record %d frame has %d trailing bytes", r.BookID, len(frame)-pos)
	}
	return r, nil
}

// Store is an opened store with its BookID index.
type Store struct {
	f       *os.File
	offsets map[int64]int64 // BookID -> frame offset (of the length prefix)
	order   []int64         // BookIDs in append order
	// RepairedBytes is the number of torn-tail bytes Open truncated away
	// under the Recover option; zero for a clean file.
	RepairedBytes int64
}

// OpenOption configures Open.
type OpenOption func(*openConfig)

type openConfig struct {
	recover bool
}

// Recover makes Open repair a torn tail — a truncated length prefix or a
// partial final frame, the signature a killed writer leaves — by
// truncating the file back to the last whole frame. Corruption that is
// not a pure tail truncation (bad magic, oversized frame length, a
// complete frame that fails to decode, duplicate BookIDs) still fails:
// those are not recoverable by dropping a suffix. CLIs open with Recover
// by default; library callers that prefer to fail loudly omit it.
func Recover(c *openConfig) { c.recover = true }

// Open reads the header and builds the index with one sequential scan.
// Without options it is strict: any deviation from the format, including
// a torn tail, is an error with the byte offset of the damage. With the
// Recover option a torn tail is repaired in place (the file is opened
// read-write and truncated to the last whole frame).
func Open(path string, opts ...OpenOption) (*Store, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	flag := os.O_RDONLY
	if cfg.recover {
		flag = os.O_RDWR
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, err
	}
	s, err := scan(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// tornTailError describes a tail that a torn write produced: the store
// is intact up to good, then the remaining bytes are an incomplete
// length prefix or frame.
type tornTailError struct {
	good   int64 // offset of the last whole frame's end
	reason string
}

func (e *tornTailError) Error() string {
	return fmt.Sprintf("store: torn tail at offset %d: %s (reopen with recovery to truncate)", e.good, e.reason)
}

func scan(f *os.File, cfg openConfig) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat: %w", err)
	}
	size := fi.Size()

	s := &Store{f: f, offsets: make(map[int64]int64)}
	br := bufio.NewReader(f)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}

	offset := int64(headerLen)
	var lenBuf [4]byte
	var torn *tornTailError
	for offset < size {
		remaining := size - offset
		if remaining < 4 {
			torn = &tornTailError{good: offset, reason: fmt.Sprintf("truncated length prefix (%d of 4 bytes)", remaining)}
			break
		}
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("store: read frame length at %d: %w", offset, err)
		}
		frameLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if frameLen > MaxFrameLen {
			// A torn write truncates; it cannot manufacture a complete
			// length prefix, so an oversized length is content corruption
			// and never recoverable by dropping the tail.
			return nil, fmt.Errorf("store: frame length %d at offset %d exceeds cap %d (corrupt length prefix)", frameLen, offset, MaxFrameLen)
		}
		if frameLen > remaining-4 {
			torn = &tornTailError{good: offset, reason: fmt.Sprintf("partial frame (%d of %d bytes)", remaining-4, frameLen)}
			break
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("store: read frame at %d: %w", offset, err)
		}
		r, err := decodeRecord(frame)
		if err != nil {
			return nil, fmt.Errorf("%w (frame at offset %d)", err, offset)
		}
		if _, dup := s.offsets[r.BookID]; dup {
			return nil, fmt.Errorf("store: duplicate BookID %d", r.BookID)
		}
		s.offsets[r.BookID] = offset
		s.order = append(s.order, r.BookID)
		offset += 4 + frameLen
	}
	if torn != nil {
		if !cfg.recover {
			return nil, torn
		}
		if err := f.Truncate(torn.good); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail at %d: %w", torn.good, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("store: sync after repair: %w", err)
		}
		s.RepairedBytes = size - torn.good
	}
	return s, nil
}

// Len returns the number of stored records.
func (s *Store) Len() int { return len(s.order) }

// Get reads one record by BookID.
func (s *Store) Get(bookID int64) (*record.Record, error) {
	offset, ok := s.offsets[bookID]
	if !ok {
		return nil, fmt.Errorf("store: BookID %d not found", bookID)
	}
	var lenBuf [4]byte
	if _, err := s.f.ReadAt(lenBuf[:], offset); err != nil {
		return nil, fmt.Errorf("store: read length of %d: %w", bookID, err)
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen > MaxFrameLen {
		return nil, fmt.Errorf("store: frame length %d of record %d exceeds cap %d", frameLen, bookID, MaxFrameLen)
	}
	frame := make([]byte, frameLen)
	if _, err := s.f.ReadAt(frame, offset+4); err != nil {
		return nil, fmt.Errorf("store: read frame of %d: %w", bookID, err)
	}
	return decodeRecord(frame)
}

// All loads every record in append order.
func (s *Store) All() ([]*record.Record, error) {
	out := make([]*record.Record, 0, len(s.order))
	for _, id := range s.order {
		r, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Close releases the file.
func (s *Store) Close() error { return s.f.Close() }

// WriteAll stores a record slice atomically: it writes a temp file in
// the target's directory, fsyncs it, and renames it over the target, so
// a crash mid-write leaves either the old file or the new one — never a
// half-written store under the final name.
func WriteAll(path string, records []*record.Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	// Any failure before the rename removes the temp file; the target is
	// untouched either way.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	w, err := newWriter(tmp)
	if err != nil {
		return fail(err)
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			return fail(err)
		}
	}
	if err := w.buf.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Persist the rename itself. Directory fsync is advisory on some
	// platforms; failure to open the directory is not fatal.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
