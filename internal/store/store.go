// Package store provides a compact append-only on-disk store for victim
// reports with a BookID index — the persistence substrate a deployment
// keeps its 6.5M records in between pipeline runs. The format is a
// length-prefixed binary log: a fixed header, then one framed record per
// report; the index is rebuilt on open by a single sequential scan.
//
// Layout (little-endian):
//
//	header:  magic "YVST" | uint32 version
//	record:  uint32 frameLen | int64 bookID | uint8 kind |
//	         uint16 sourceLen | source bytes |
//	         uint16 itemCount | items (uint8 type | uint16 valueLen | value)
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/record"
)

var magic = [4]byte{'Y', 'V', 'S', 'T'}

// Version is the current format version.
const Version = 1

// Writer appends records to a store file.
type Writer struct {
	f   *os.File
	buf *bufio.Writer
	n   int
}

// Create starts a new store file, truncating any existing one.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, buf: bufio.NewWriter(f)}
	if _, err := w.buf.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := binary.Write(w.buf, binary.LittleEndian, uint32(Version)); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append writes one record.
func (w *Writer) Append(r *record.Record) error {
	frame, err := encodeRecord(r)
	if err != nil {
		return err
	}
	if err := binary.Write(w.buf, binary.LittleEndian, uint32(len(frame))); err != nil {
		return err
	}
	if _, err := w.buf.Write(frame); err != nil {
		return err
	}
	w.n++
	return nil
}

// Len returns the number of appended records.
func (w *Writer) Len() int { return w.n }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeRecord(r *record.Record) ([]byte, error) {
	if len(r.Source) > 0xFFFF {
		return nil, fmt.Errorf("store: source of record %d too long (%d)", r.BookID, len(r.Source))
	}
	if len(r.Items) > 0xFFFF {
		return nil, fmt.Errorf("store: record %d has too many items (%d)", r.BookID, len(r.Items))
	}
	size := 8 + 1 + 2 + len(r.Source) + 2
	for _, it := range r.Items {
		if len(it.Value) > 0xFFFF {
			return nil, fmt.Errorf("store: record %d item value too long", r.BookID)
		}
		size += 1 + 2 + len(it.Value)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint64(out, uint64(r.BookID))
	out = append(out, byte(r.Kind))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Source)))
	out = append(out, r.Source...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Items)))
	for _, it := range r.Items {
		out = append(out, byte(it.Type))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(it.Value)))
		out = append(out, it.Value...)
	}
	return out, nil
}

func decodeRecord(frame []byte) (*record.Record, error) {
	r := &record.Record{}
	if len(frame) < 13 {
		return nil, fmt.Errorf("store: truncated record frame (%d bytes)", len(frame))
	}
	r.BookID = int64(binary.LittleEndian.Uint64(frame[0:8]))
	kind := frame[8]
	if kind > uint8(record.List) {
		return nil, fmt.Errorf("store: record %d has invalid kind %d", r.BookID, kind)
	}
	r.Kind = record.SourceKind(kind)
	pos := 9
	srcLen := int(binary.LittleEndian.Uint16(frame[pos : pos+2]))
	pos += 2
	if pos+srcLen+2 > len(frame) {
		return nil, fmt.Errorf("store: record %d source overruns frame", r.BookID)
	}
	r.Source = string(frame[pos : pos+srcLen])
	pos += srcLen
	itemCount := int(binary.LittleEndian.Uint16(frame[pos : pos+2]))
	pos += 2
	for k := 0; k < itemCount; k++ {
		if pos+3 > len(frame) {
			return nil, fmt.Errorf("store: record %d item %d truncated", r.BookID, k)
		}
		t := frame[pos]
		if int(t) >= record.NumItemTypes {
			return nil, fmt.Errorf("store: record %d has invalid item type %d", r.BookID, t)
		}
		vLen := int(binary.LittleEndian.Uint16(frame[pos+1 : pos+3]))
		pos += 3
		if pos+vLen > len(frame) {
			return nil, fmt.Errorf("store: record %d item %d value overruns frame", r.BookID, k)
		}
		r.Items = append(r.Items, record.Item{Type: record.ItemType(t), Value: string(frame[pos : pos+vLen])})
		pos += vLen
	}
	if pos != len(frame) {
		return nil, fmt.Errorf("store: record %d frame has %d trailing bytes", r.BookID, len(frame)-pos)
	}
	return r, nil
}

// Store is an opened store with its BookID index.
type Store struct {
	f       *os.File
	offsets map[int64]int64 // BookID -> frame offset (of the length prefix)
	order   []int64         // BookIDs in append order
}

// Open reads the header and builds the index with one sequential scan.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, offsets: make(map[int64]int64)}
	br := bufio.NewReader(f)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("store: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	offset := int64(8)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			f.Close()
			return nil, fmt.Errorf("store: read frame length at %d: %w", offset, err)
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(br, frame); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: read frame at %d: %w", offset, err)
		}
		r, err := decodeRecord(frame)
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, dup := s.offsets[r.BookID]; dup {
			f.Close()
			return nil, fmt.Errorf("store: duplicate BookID %d", r.BookID)
		}
		s.offsets[r.BookID] = offset
		s.order = append(s.order, r.BookID)
		offset += 4 + int64(frameLen)
	}
	return s, nil
}

// Len returns the number of stored records.
func (s *Store) Len() int { return len(s.order) }

// Get reads one record by BookID.
func (s *Store) Get(bookID int64) (*record.Record, error) {
	offset, ok := s.offsets[bookID]
	if !ok {
		return nil, fmt.Errorf("store: BookID %d not found", bookID)
	}
	var lenBuf [4]byte
	if _, err := s.f.ReadAt(lenBuf[:], offset); err != nil {
		return nil, fmt.Errorf("store: read length of %d: %w", bookID, err)
	}
	frame := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := s.f.ReadAt(frame, offset+4); err != nil {
		return nil, fmt.Errorf("store: read frame of %d: %w", bookID, err)
	}
	return decodeRecord(frame)
}

// All loads every record in append order.
func (s *Store) All() ([]*record.Record, error) {
	out := make([]*record.Record, 0, len(s.order))
	for _, id := range s.order {
		r, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Close releases the file.
func (s *Store) Close() error { return s.f.Close() }

// WriteAll is a convenience that stores a record slice in one call.
func WriteAll(path string, records []*record.Record) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
