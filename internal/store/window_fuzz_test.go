package store

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/record"
)

// FuzzWindowReader drives the windowed reader over arbitrary store bytes —
// valid stores, torn truncations at every boundary, and raw garbage — and
// asserts the streaming contract: the reader never panics, a Recover
// reader never reports an error other than io.EOF for pure tail damage,
// and every record either reader delivers is canonical (it re-encodes to
// the exact frame bytes the store carried). Window boundaries are
// exercised by re-reading each input at several window sizes and requiring
// identical outcomes.
func FuzzWindowReader(f *testing.F) {
	// Seed with a well-formed store, its truncations, and noise.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], Version)
	buf.Write(ver[:])
	for i := 0; i < 3; i++ {
		r := &record.Record{BookID: int64(i + 1), Source: "list-1", Kind: record.List}
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foa")
		frame, err := encodeRecord(r)
		if err != nil {
			f.Fatal(err)
		}
		var fl [4]byte
		binary.LittleEndian.PutUint32(fl[:], uint32(len(frame)))
		buf.Write(fl[:])
		buf.Write(frame)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	for _, cut := range []int{0, 7, 8, 9, 11, 12, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		type outcome struct {
			records [][]byte // re-encoded frames, in order
			torn    int64
			errEOF  bool
		}
		read := func(window int, recoverTail bool) (outcome, bool) {
			var opts []OpenOption
			if recoverTail {
				opts = append(opts, Recover)
			}
			w, err := NewWindowReader(bytes.NewReader(data), int64(len(data)), opts...)
			if err != nil {
				return outcome{}, false
			}
			var out outcome
			var win []*record.Record
			for {
				win, err = w.Next(win, window)
				for _, r := range win {
					frame, encErr := encodeRecord(r)
					if encErr != nil {
						t.Fatalf("delivered record does not re-encode: %v", encErr)
					}
					out.records = append(out.records, frame)
				}
				if err != nil {
					out.errEOF = err == io.EOF
					if recoverTail && !out.errEOF {
						// A Recover reader may fail only on content
						// corruption; torn tails must end in io.EOF.
						var tt *tornTailError
						if ok := asTorn(err, &tt); ok {
							t.Fatalf("recover reader surfaced torn tail: %v", err)
						}
					}
					break
				}
			}
			out.torn = w.TornBytes()
			return out, true
		}

		first, ok := read(1, true)
		if !ok {
			// Header rejected: strict mode must reject identically.
			if _, okStrict := read(1, false); okStrict {
				t.Fatal("strict reader accepted a header the recover reader rejected")
			}
			return
		}
		// Window size must not change the outcome.
		for _, window := range []int{3, 1 << 20} {
			again, ok := read(window, true)
			if !ok {
				t.Fatal("reader accepted then rejected the same header")
			}
			if len(again.records) != len(first.records) || again.torn != first.torn || again.errEOF != first.errEOF {
				t.Fatalf("window=%d changed the outcome: %d/%d records torn=%d/%d eof=%v/%v",
					window, len(again.records), len(first.records), again.torn, first.torn, again.errEOF, first.errEOF)
			}
			for i := range again.records {
				if !bytes.Equal(again.records[i], first.records[i]) {
					t.Fatalf("window=%d record %d differs", window, i)
				}
			}
		}
		// Strict mode delivers the same records; it may only differ in the
		// terminal error when the tail is torn.
		strict, ok := read(5, false)
		if !ok {
			t.Fatal("strict reader rejected a header the recover reader accepted")
		}
		if len(strict.records) != len(first.records) {
			t.Fatalf("strict delivered %d records, recover delivered %d", len(strict.records), len(first.records))
		}
	})
}

// asTorn reports whether err is a tornTailError, assigning it to target.
func asTorn(err error, target **tornTailError) bool {
	tt, ok := err.(*tornTailError)
	if ok {
		*target = tt
	}
	return ok
}
