package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/record"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "records.yvst")
}

func TestRoundTrip(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 200
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := tmpPath(t)
	if err := WriteAll(path, g.Records); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(g.Records) {
		t.Fatalf("stored %d of %d records", s.Len(), len(g.Records))
	}

	// Random access by BookID.
	for _, want := range []int{0, len(g.Records) / 2, len(g.Records) - 1} {
		orig := g.Records[want]
		got, err := s.Get(orig.BookID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, orig) {
			t.Errorf("record %d round-trip mismatch:\n%v\n%v", orig.BookID, got, orig)
		}
	}

	// Bulk load preserves order and content.
	all, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !reflect.DeepEqual(all[i], g.Records[i]) {
			t.Fatalf("record %d differs after All()", i)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	path := tmpPath(t)
	if err := WriteAll(path, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Get(42); err == nil {
		t.Error("unknown BookID should fail")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	path := tmpPath(t)
	r := &record.Record{BookID: 1}
	r.Add(record.FirstName, "Guido")
	if err := WriteAll(path, []*record.Record{r}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b = append([]byte(nil), b...); b[4] = 99; return b }},
		{"truncated frame", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing garbage frame len", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xFF, 0xFF) }},
	}
	for _, tc := range cases {
		bad := path + "-" + tc.name
		if err := os.WriteFile(bad, tc.mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(bad); err == nil {
			s.Close()
			t.Errorf("%s: Open accepted corrupt file", tc.name)
		}
	}
}

func TestDuplicateBookIDRejected(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := &record.Record{BookID: 7}
	if err := w.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if s, err := Open(path); err == nil {
		s.Close()
		t.Error("duplicate BookIDs should be rejected at Open")
	}
}

func TestEmptyValuesAndUnicode(t *testing.T) {
	path := tmpPath(t)
	r := &record.Record{BookID: 1, Source: "submitter:Мария Коган:Київ", Kind: record.Testimony}
	r.Add(record.FirstName, "Марія")
	r.Add(record.LastName, "קוגן")
	if err := WriteAll(path, []*record.Record{r}); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("unicode round trip failed:\n%v\n%v", got, r)
	}
}
