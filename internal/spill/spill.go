// Package spill bounds the memory of candidate-pair accumulation: the
// blocking stage at paper scale emits millions of (pair, score) events,
// and holding them in a Go map is the single largest allocation of an
// end-to-end run. A spill.Pairs accepts the event stream through a
// fixed-size in-memory window; when the window fills it is flushed to
// disk as a sorted binary run, and Iter merges the runs (and the live
// window) with a max-score combine into one deterministic stream sorted
// by (A, B). The merge is pure: the same event multiset yields the same
// stream regardless of window size, flush timing, or emission order, so
// a spilled run is bit-compatible with an in-memory one downstream of
// the stage that consumes it.
//
// Run format (little-endian, 24 bytes per entry): int64 A | int64 B |
// float64 score, sorted ascending by (A, B) with at most one entry per
// pair per run.
package spill

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/record"
	"repro/internal/telemetry/trace"
)

// entryLen is the on-disk size of one (pair, score) entry.
const entryLen = 24

// DefaultCap is the in-memory window used when a caller enables spilling
// without choosing a cap: ~4M distinct pairs, roughly 100–200MB of map —
// small enough for laptop hardware, large enough that corpora below
// ~500K records never spill at all.
const DefaultCap = 4 << 20

// Stats describes a Pairs' lifetime activity.
type Stats struct {
	// Runs is the number of sorted runs flushed to disk.
	Runs int
	// SpilledEntries counts entries written across all runs (a pair
	// re-observed after its window was flushed appears in several runs).
	SpilledEntries int64
	// SpilledBytes counts bytes written across all runs.
	SpilledBytes int64
	// MergedEntries counts the distinct pairs the merge iterator has
	// delivered back to the consumer.
	MergedEntries int64
	// MergedBytes is the on-disk byte equivalent of MergedEntries.
	MergedBytes int64
}

// Pairs accumulates (pair, score) events under a bounded in-memory
// footprint. Not safe for concurrent use; the blocking stage's pair
// emission is sequential by design.
type Pairs struct {
	cap   int
	dir   string
	mem   map[record.Pair]float64
	runs  []*os.File
	stats Stats
	done  bool

	// Trace, when set, parents a span per run flush and one for the
	// merge setup — the disk activity of a spilled run, on the
	// blocking stage's timeline. Nil traces nothing.
	Trace *trace.Span
}

// NewPairs returns an accumulator holding at most capEntries distinct
// pairs in memory (<=0 selects DefaultCap). Runs spill into dir, or the
// system temp directory when dir is empty; files are unlinked on Close.
func NewPairs(capEntries int, dir string) *Pairs {
	if capEntries <= 0 {
		capEntries = DefaultCap
	}
	return &Pairs{cap: capEntries, dir: dir, mem: make(map[record.Pair]float64, min(capEntries, 1<<16))}
}

// Add records one (pair, score) event, keeping the maximal score per
// pair. It reports whether the pair was first seen by the current
// in-memory window — exact overall until the first flush, after which a
// pair evicted to disk and re-observed counts as first-seen again.
func (s *Pairs) Add(p record.Pair, score float64) (first bool, err error) {
	if s.done {
		return false, fmt.Errorf("spill: Add after Iter")
	}
	old, seen := s.mem[p]
	if !seen {
		if len(s.mem) >= s.cap {
			if err := s.flush(); err != nil {
				return false, err
			}
		}
		s.mem[p] = score
		return true, nil
	}
	if score > old {
		s.mem[p] = score
	}
	return false, nil
}

// Len reports the distinct pairs in the current in-memory window.
func (s *Pairs) Len() int { return len(s.mem) }

// Stats reports the accumulated spill activity.
func (s *Pairs) Stats() Stats { return s.stats }

// flush writes the in-memory window as one sorted run and resets it.
func (s *Pairs) flush() error {
	if len(s.mem) == 0 {
		return nil
	}
	sp := s.Trace.Child("spill_flush").
		Attr("run", int64(s.stats.Runs)).
		Attr("entries", int64(len(s.mem))).
		Attr("bytes", int64(len(s.mem))*entryLen)
	defer sp.End()
	keys := make([]record.Pair, 0, len(s.mem))
	for p := range s.mem {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	f, err := os.CreateTemp(s.dir, "yvpairs-*.run")
	if err != nil {
		return fmt.Errorf("spill: create run: %w", err)
	}
	// Unlink immediately: the open descriptor keeps the run readable, and
	// a crashed process leaves nothing behind.
	os.Remove(f.Name())
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [entryLen]byte
	for _, p := range keys {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(p.A))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(p.B))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(s.mem[p]))
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return fmt.Errorf("spill: write run: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("spill: flush run: %w", err)
	}
	s.runs = append(s.runs, f)
	s.stats.Runs++
	s.stats.SpilledEntries += int64(len(keys))
	s.stats.SpilledBytes += int64(len(keys)) * entryLen
	s.mem = make(map[record.Pair]float64, min(s.cap, 1<<16))
	return nil
}

// Iter finalizes the accumulator and returns the merged stream: every
// distinct pair exactly once, ascending by (A, B), each with the maximal
// score observed across all events. Add must not be called afterwards.
func (s *Pairs) Iter() (*Iter, error) {
	s.done = true
	sp := s.Trace.Child("spill_merge_open").
		Attr("runs", int64(s.stats.Runs)).
		Attr("window_entries", int64(len(s.mem)))
	defer sp.End()
	it := &Iter{pairs: s}

	// The live window joins the merge as an in-memory sorted source.
	mem := make([]memEntry, 0, len(s.mem))
	for p, sc := range s.mem {
		mem = append(mem, memEntry{p, sc})
	}
	sort.Slice(mem, func(i, j int) bool {
		if mem[i].p.A != mem[j].p.A {
			return mem[i].p.A < mem[j].p.A
		}
		return mem[i].p.B < mem[j].p.B
	})
	it.mem = mem

	for _, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("spill: rewind run: %w", err)
		}
		src := &runSource{r: bufio.NewReaderSize(f, 1<<20)}
		if err := src.advance(); err != nil {
			return nil, err
		}
		if !src.eof {
			it.h = append(it.h, src)
		}
	}
	if len(it.mem) > 0 {
		src := &runSource{mem: it.mem}
		src.cur, src.curScore = it.mem[0].p, it.mem[0].s
		src.mem = it.mem[1:]
		it.h = append(it.h, src)
	}
	heap.Init(&it.h)
	return it, nil
}

// Close releases all run files. Safe to call more than once.
func (s *Pairs) Close() error {
	var first error
	for _, f := range s.runs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	return first
}

type memEntry struct {
	p record.Pair
	s float64
}

// runSource is one merge input: either a disk run or the live window.
type runSource struct {
	r        *bufio.Reader
	mem      []memEntry
	cur      record.Pair
	curScore float64
	eof      bool
}

// advance loads the source's next entry.
func (s *runSource) advance() error {
	if s.r != nil {
		var buf [entryLen]byte
		_, err := io.ReadFull(s.r, buf[:])
		if err == io.EOF {
			s.eof = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("spill: read run: %w", err)
		}
		s.cur = record.Pair{
			A: int64(binary.LittleEndian.Uint64(buf[0:8])),
			B: int64(binary.LittleEndian.Uint64(buf[8:16])),
		}
		s.curScore = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:24]))
		return nil
	}
	if len(s.mem) == 0 {
		s.eof = true
		return nil
	}
	s.cur, s.curScore = s.mem[0].p, s.mem[0].s
	s.mem = s.mem[1:]
	return nil
}

// mergeHeap orders sources by their current pair.
type mergeHeap []*runSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].cur.A != h[j].cur.A {
		return h[i].cur.A < h[j].cur.A
	}
	return h[i].cur.B < h[j].cur.B
}
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*runSource)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Iter is the merged (A, B)-sorted stream of distinct pairs with maximal
// scores.
type Iter struct {
	pairs *Pairs
	mem   []memEntry
	h     mergeHeap
	count int
}

// Next returns the next pair and score, or io.EOF when exhausted.
func (it *Iter) Next() (record.Pair, float64, error) {
	if it.h.Len() == 0 {
		return record.Pair{}, 0, io.EOF
	}
	top := it.h[0]
	p, score := top.cur, top.curScore
	if err := it.step(); err != nil {
		return record.Pair{}, 0, err
	}
	// Combine duplicates across runs with max score.
	for it.h.Len() > 0 && it.h[0].cur == p {
		if s := it.h[0].curScore; s > score {
			score = s
		}
		if err := it.step(); err != nil {
			return record.Pair{}, 0, err
		}
	}
	it.count++
	it.pairs.stats.MergedEntries++
	it.pairs.stats.MergedBytes += entryLen
	return p, score, nil
}

// step advances the heap's top source, dropping it at EOF.
func (it *Iter) step() error {
	top := it.h[0]
	if err := top.advance(); err != nil {
		return err
	}
	if top.eof {
		heap.Pop(&it.h)
	} else {
		heap.Fix(&it.h, 0)
	}
	return nil
}

// Count reports the distinct pairs delivered so far.
func (it *Iter) Count() int { return it.count }
