package spill

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/record"
)

// drain consumes an iterator, asserting strict (A, B) ascending order, and
// returns the merged stream as a map plus the ordered pair list.
func drain(t *testing.T, it *Iter) (map[record.Pair]float64, []record.Pair) {
	t.Helper()
	out := make(map[record.Pair]float64)
	var order []record.Pair
	for {
		p, score, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n := len(order); n > 0 {
			prev := order[n-1]
			if p.A < prev.A || (p.A == prev.A && p.B <= prev.B) {
				t.Fatalf("iteration out of order: %v after %v", p, prev)
			}
		}
		if _, dup := out[p]; dup {
			t.Fatalf("pair %v delivered twice", p)
		}
		out[p] = score
		order = append(order, p)
	}
	if it.Count() != len(order) {
		t.Fatalf("Count=%d, want %d", it.Count(), len(order))
	}
	return out, order
}

// genEvents produces a deterministic event stream with heavy pair reuse so
// max-combine is exercised both inside a window and across runs.
func genEvents(n int) []struct {
	p record.Pair
	s float64
} {
	rng := rand.New(rand.NewSource(7))
	events := make([]struct {
		p record.Pair
		s float64
	}, n)
	for i := range events {
		a := int64(rng.Intn(60))
		b := int64(rng.Intn(60))
		if a == b {
			b++
		}
		events[i].p = record.MakePair(a, b)
		events[i].s = rng.Float64()
	}
	return events
}

// reference folds the event stream with max-combine in plain Go.
func reference(events []struct {
	p record.Pair
	s float64
}) map[record.Pair]float64 {
	want := make(map[record.Pair]float64)
	for _, e := range events {
		if old, ok := want[e.p]; !ok || e.s > old {
			want[e.p] = e.s
		}
	}
	return want
}

// TestPairsInMemory covers the no-spill path: a cap larger than the
// distinct-pair count must never touch disk.
func TestPairsInMemory(t *testing.T) {
	events := genEvents(500)
	want := reference(events)

	s := NewPairs(1<<20, t.TempDir())
	defer s.Close()
	for _, e := range events {
		if _, err := s.Add(e.p, e.s); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Runs != 0 || st.SpilledEntries != 0 || st.SpilledBytes != 0 {
		t.Fatalf("in-memory run spilled: %+v", st)
	}
	if s.Len() != len(want) {
		t.Fatalf("Len=%d, want %d", s.Len(), len(want))
	}
	it, err := s.Iter()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := drain(t, it)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for p, sc := range want {
		if got[p] != sc {
			t.Fatalf("pair %v: score %v, want %v", p, got[p], sc)
		}
	}
}

// TestPairsSpillEquivalence asserts the merged stream is identical for any
// window cap — the core purity claim the streaming pipeline relies on.
func TestPairsSpillEquivalence(t *testing.T) {
	events := genEvents(3000)
	want := reference(events)

	for _, capEntries := range []int{1, 8, 97, 1 << 20} {
		s := NewPairs(capEntries, t.TempDir())
		for _, e := range events {
			if _, err := s.Add(e.p, e.s); err != nil {
				t.Fatal(err)
			}
		}
		if capEntries == 8 && s.Stats().Runs < 2 {
			t.Fatalf("cap=8 produced %d runs, want several", s.Stats().Runs)
		}
		it, err := s.Iter()
		if err != nil {
			t.Fatal(err)
		}
		got, order := drain(t, it)
		if len(got) != len(want) {
			t.Fatalf("cap=%d: got %d pairs, want %d", capEntries, len(got), len(want))
		}
		for p, sc := range want {
			if got[p] != sc {
				t.Fatalf("cap=%d pair %v: score %v, want %v", capEntries, p, got[p], sc)
			}
		}
		if len(order) != len(want) {
			t.Fatalf("cap=%d: order has %d entries", capEntries, len(order))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPairsFirstSeen pins Add's first-seen report: exact while nothing has
// spilled, window-local afterwards.
func TestPairsFirstSeen(t *testing.T) {
	s := NewPairs(2, t.TempDir())
	defer s.Close()
	p1 := record.MakePair(1, 2)
	p2 := record.MakePair(3, 4)
	p3 := record.MakePair(5, 6)

	if first, _ := s.Add(p1, 0.5); !first {
		t.Fatal("p1 not first-seen")
	}
	if first, _ := s.Add(p1, 0.9); first {
		t.Fatal("repeat p1 reported first-seen")
	}
	if first, _ := s.Add(p2, 0.4); !first {
		t.Fatal("p2 not first-seen")
	}
	// Window full: p3 forces a flush, evicting p1 and p2 to disk.
	if first, _ := s.Add(p3, 0.3); !first {
		t.Fatal("p3 not first-seen")
	}
	if s.Stats().Runs != 1 {
		t.Fatalf("Runs=%d, want 1", s.Stats().Runs)
	}
	// p1 re-observed after eviction: window-local first-seen fires again.
	if first, _ := s.Add(p1, 0.1); !first {
		t.Fatal("evicted p1 not window-local first-seen")
	}

	it, err := s.Iter()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := drain(t, it)
	// Max-combine must survive the eviction: 0.9 from the spilled run wins
	// over the 0.1 re-observation in the live window.
	if got[p1] != 0.9 {
		t.Fatalf("p1 score %v, want 0.9", got[p1])
	}
	if len(got) != 3 {
		t.Fatalf("got %d pairs, want 3", len(got))
	}
}

// TestPairsAddAfterIter asserts the accumulator rejects writes once the
// merge has started.
func TestPairsAddAfterIter(t *testing.T) {
	s := NewPairs(4, t.TempDir())
	defer s.Close()
	if _, err := s.Add(record.MakePair(1, 2), 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Iter(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(record.MakePair(3, 4), 0.5); err == nil {
		t.Fatal("Add after Iter succeeded")
	}
}

// TestPairsStats pins the byte accounting of the run format.
func TestPairsStats(t *testing.T) {
	s := NewPairs(3, t.TempDir())
	defer s.Close()
	for i := int64(0); i < 7; i++ {
		if _, err := s.Add(record.MakePair(i, i+100), 1.0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Runs != 2 {
		t.Fatalf("Runs=%d, want 2", st.Runs)
	}
	if st.SpilledEntries != 6 {
		t.Fatalf("SpilledEntries=%d, want 6", st.SpilledEntries)
	}
	if st.SpilledBytes != 6*entryLen {
		t.Fatalf("SpilledBytes=%d, want %d", st.SpilledBytes, 6*entryLen)
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d, want 1", s.Len())
	}
}

// TestPairsEmpty asserts an untouched accumulator merges to an empty
// stream.
func TestPairsEmpty(t *testing.T) {
	s := NewPairs(0, t.TempDir())
	defer s.Close()
	it, err := s.Iter()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.Next(); err != io.EOF {
		t.Fatalf("empty iter: %v, want io.EOF", err)
	}
}

// TestPairsDefaultCap asserts the zero-value cap selects DefaultCap rather
// than spilling on every Add.
func TestPairsDefaultCap(t *testing.T) {
	s := NewPairs(0, t.TempDir())
	defer s.Close()
	for i := int64(0); i < 1000; i++ {
		if _, err := s.Add(record.MakePair(i, i+1), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Runs != 0 {
		t.Fatalf("default cap spilled after 1000 pairs: %+v", s.Stats())
	}
}
