// Package features defines and extracts the 48 record-pair similarity
// features the classifier consumes (Section 5.1). Features are typed
// (numeric or categorical) and may be missing: when either record lacks
// the underlying attribute, the feature is absent for the pair — the
// ADTree's missing-value semantics then skip every test on it.
package features

import (
	"fmt"

	"repro/internal/record"
)

// Kind is a feature's value type.
type Kind uint8

// Feature kinds.
const (
	Numeric Kind = iota
	Categorical
)

// Categorical levels of the sameXName features.
const (
	SameYes     = "yes"
	SamePartial = "partial"
	SameNo      = "no"
)

// Boolean categorical levels.
const (
	True  = "true"
	False = "false"
)

// Def describes one feature.
type Def struct {
	// ID is the feature's index into a Vector.
	ID int
	// Name matches the paper's tree-rendering labels (e.g. "FFNdist").
	Name string
	Kind Kind
	// Levels enumerates the values of a categorical feature.
	Levels []string
}

// Value is one extracted feature value; Present is false when the pair
// lacks the underlying attributes.
type Value struct {
	Present bool
	Num     float64
	Cat     string
}

// Vector is a pair's feature vector, indexed by Def.ID.
type Vector []Value

// nameAttr pairs a name-typed attribute with its label stem.
type nameAttr struct {
	t    record.ItemType
	stem string
}

// The seven name attributes, in the paper's listing order.
var nameAttrs = []nameAttr{
	{record.FirstName, "FN"},
	{record.LastName, "LN"},
	{record.SpouseName, "SN"},
	{record.FatherName, "FFN"},
	{record.MotherName, "MFN"},
	{record.MotherMaiden, "MMN"},
	{record.MaidenName, "MN"},
}

var placeStems = [record.NumPlaceTypes]string{"B", "W", "P", "D"}

// Defs returns the 48 feature definitions in canonical order:
//
//	0..6    sameXName        categorical {yes,partial,no}
//	7..13   XNdist           token/q-gram Jaccard similarity, max over values
//	14..20  XNjw             Jaro-Winkler similarity, max over values
//	21..23  B1dist/B2dist/B3dist  absolute day/month/year difference
//	24..39  samePlace{B,W,P,D}{City,County,Region,Country} categorical bool
//	40..43  {B,W,P,D}PGeoDist     km between the place-type cities
//	44      sameSource       categorical bool
//	45      sameGender       categorical bool
//	46      sameProfession   categorical bool
//	47      sameDOB          categorical bool (full date equal)
func Defs() []Def {
	var defs []Def
	add := func(name string, k Kind, levels []string) {
		defs = append(defs, Def{ID: len(defs), Name: name, Kind: k, Levels: levels})
	}
	triLevels := []string{SameYes, SamePartial, SameNo}
	boolLevels := []string{True, False}
	for _, na := range nameAttrs {
		add("same"+na.stem, Categorical, triLevels)
	}
	for _, na := range nameAttrs {
		add(na.stem+"dist", Numeric, nil)
	}
	for _, na := range nameAttrs {
		add(na.stem+"jw", Numeric, nil)
	}
	add("B1dist", Numeric, nil)
	add("B2dist", Numeric, nil)
	add("B3dist", Numeric, nil)
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		for pp := 0; pp < record.NumPlaceParts; pp++ {
			add(fmt.Sprintf("same%s%v", placeStems[pt], record.PlacePart(pp)), Categorical, boolLevels)
		}
	}
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		add(placeStems[pt]+"PGeoDist", Numeric, nil)
	}
	add("sameSource", Categorical, boolLevels)
	add("sameGender", Categorical, boolLevels)
	add("sameProfession", Categorical, boolLevels)
	add("sameDOB", Categorical, boolLevels)
	return defs
}

// NumFeatures is the size of a feature vector.
var NumFeatures = len(Defs())

// IndexByName maps feature names to ids for the canonical definition set.
func IndexByName() map[string]int {
	m := make(map[string]int, NumFeatures)
	for _, d := range Defs() {
		m[d.Name] = d.ID
	}
	return m
}
