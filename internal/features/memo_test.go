package features

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestPairMemoCanonicalOrdering checks (a, b) and (b, a) share one entry.
func TestPairMemoCanonicalOrdering(t *testing.T) {
	pm := NewPairMemo(128)
	pm.put(memoJW, "zeta", "alpha", 0.75)
	if v, ok := pm.get(memoJW, "alpha", "zeta"); !ok || v != 0.75 {
		t.Fatalf("get(alpha, zeta) = %v, %v; want the (zeta, alpha) entry", v, ok)
	}
	if v, ok := pm.get(memoJW, "zeta", "alpha"); !ok || v != 0.75 {
		t.Fatalf("get(zeta, alpha) = %v, %v", v, ok)
	}
	if pm.Len() != 1 {
		t.Fatalf("Len = %d, want 1 canonical entry", pm.Len())
	}
}

// TestPairMemoKindsPartition checks kinds never alias.
func TestPairMemoKindsPartition(t *testing.T) {
	pm := NewPairMemo(128)
	pm.put(memoJW, "a", "b", 0.9)
	if _, ok := pm.get(memoGram, "a", "b"); ok {
		t.Fatal("gram lookup served a JW entry")
	}
	pm.put(memoGram, "a", "b", 0.1)
	if v, _ := pm.get(memoJW, "a", "b"); v != 0.9 {
		t.Fatalf("JW entry clobbered by gram put: %v", v)
	}
}

// TestPairMemoBound checks the per-shard bound holds under arbitrary
// insertion and that evictions are counted.
func TestPairMemoBound(t *testing.T) {
	const size = 64
	pm := NewPairMemo(size)
	for i := 0; i < 10*size; i++ {
		pm.put(memoJW, fmt.Sprintf("k%05d", i), "x", float64(i))
	}
	// Bound is enforced per shard: residency never exceeds
	// shards * perShard (= size rounded up to a multiple of the shard
	// count).
	limit := memoShardCount * ((size + memoShardCount - 1) / memoShardCount)
	if n := pm.Len(); n > limit {
		t.Fatalf("Len = %d exceeds bound %d", n, limit)
	}
	st := pm.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions counted after 10x-capacity insertion")
	}
	if st.Entries != pm.Len() {
		t.Errorf("Stats.Entries = %d, Len = %d", st.Entries, pm.Len())
	}
}

// TestPairMemoStatsCounts checks hit/miss accounting.
func TestPairMemoStatsCounts(t *testing.T) {
	pm := NewPairMemo(0) // default size
	if _, ok := pm.get(memoJW, "a", "b"); ok {
		t.Fatal("empty memo hit")
	}
	pm.put(memoJW, "a", "b", 1)
	if _, ok := pm.get(memoJW, "b", "a"); !ok {
		t.Fatal("stored entry missed")
	}
	st := pm.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("Stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestPairMemoNilSafe checks the nil memo contract the extractor relies
// on.
func TestPairMemoNilSafe(t *testing.T) {
	var pm *PairMemo
	if _, ok := pm.get(memoJW, "a", "b"); ok {
		t.Fatal("nil memo hit")
	}
	pm.put(memoJW, "a", "b", 1) // must not panic
	if pm.Len() != 0 || pm.Stats() != (MemoStats{}) {
		t.Fatal("nil memo reported state")
	}
}

// TestPairMemoConcurrent hammers one memo from many goroutines over a
// skewed key set (run under -race in CI); values must always read back
// as the pure function of their key.
func TestPairMemoConcurrent(t *testing.T) {
	pm := NewPairMemo(256)
	value := func(a, b string) float64 {
		if a > b {
			a, b = b, a
		}
		return float64(len(a)*31 + len(b))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				a := fmt.Sprintf("v%d", rng.Intn(40))
				b := fmt.Sprintf("v%d", rng.Intn(40))
				if v, ok := pm.get(memoJW, a, b); ok {
					if v != value(a, b) {
						t.Errorf("memo returned %v for (%s, %s), want %v", v, a, b, value(a, b))
						return
					}
					continue
				}
				pm.put(memoJW, a, b, value(a, b))
			}
		}(w)
	}
	wg.Wait()
}

// TestExtractProfiledMemoEquality is the memo arm of the golden-equality
// suite: with the memo enabled (including a deliberately tiny memo that
// evicts constantly), ExtractProfiled must stay bit-identical to Extract
// and to the memo-less profiled path.
func TestExtractProfiledMemoEquality(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 200
	gen, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewExtractor(gen.Gaz)
	memod := NewExtractor(gen.Gaz)
	memod.Memo = NewPairMemo(0)
	tiny := NewExtractor(gen.Gaz)
	tiny.Memo = NewPairMemo(16) // constant eviction pressure
	caches := []*ProfileCache{NewProfileCache(plain), NewProfileCache(memod), NewProfileCache(tiny)}

	records := gen.Collection.Records
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 600; i++ {
		a := records[rng.Intn(len(records))]
		b := records[rng.Intn(len(records))]
		want := plain.Extract(a, b)
		for ci, cache := range caches {
			got := cache.Extractor().ExtractProfiled(cache.Get(a), cache.Get(b))
			assertVectorsEqual(t, fmt.Sprintf("cache%d", ci), want, got)
		}
	}
	st := memod.Memo.Stats()
	if st.Hits == 0 {
		t.Error("memo saw no hits over 600 skewed pairs")
	}
	if tiny.Memo.Stats().Evictions == 0 {
		t.Error("tiny memo never evicted")
	}
}
