//go:build !race

package features

// raceEnabled reports whether the race detector is active; the strict
// allocation guards skip under it (sync.Pool intentionally drops items
// when racing, so AllocsPerRun is not meaningful there).
const raceEnabled = false
