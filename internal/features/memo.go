package features

import (
	"sync"
	"sync/atomic"
)

// Memo kinds: which symmetric value-pair similarity a memo entry holds.
// Kinds partition the key space so a (surname, surname) Jaro–Winkler
// entry can never be served for the same strings' q-gram Jaccard.
const (
	memoJW uint8 = iota + 1
	memoGram
)

// DefaultMemoSize is the entry bound NewPairMemo applies when the caller
// passes size <= 0. At ~64 bytes per entry (two short interned-adjacent
// strings plus the float) the default stays in the low megabytes.
const DefaultMemoSize = 1 << 16

// memoShardCount is the fan-out of the memo's lock striping; a power of
// two so shard selection is a mask.
const memoShardCount = 16

// pairKey is one memoized comparison: the kind plus the two value
// strings in canonical (a <= b) order. Every similarity the memo stores
// is symmetric, so canonical ordering halves the key space and makes
// get(a, b) and get(b, a) the same entry.
type pairKey struct {
	kind uint8
	a, b string
}

type memoShard struct {
	mu sync.RWMutex
	m  map[pairKey]float64
}

// PairMemo is a sharded, bounded memo of symmetric value-pair
// similarities. The dataset's heavy value skew — a handful of surnames,
// given names, and cities dominate the candidate pairs — means the same
// (value, value) comparison recurs across thousands of record pairs;
// the memo computes each once per run.
//
// Determinism: the memo only ever stores results of pure functions of
// the key, so a hit returns exactly what the kernel would have computed
// — outputs are bit-identical with the memo on, off, or racing across
// workers. Eviction (a wholesale shard reset at the per-shard bound)
// therefore affects hit rates, never results.
//
// PairMemo is safe for concurrent use; a nil *PairMemo is valid and
// never hits.
type PairMemo struct {
	shards   [memoShardCount]memoShard
	perShard int

	hits, misses, evictions atomic.Int64
}

// MemoStats is a point-in-time view of the memo's traffic.
type MemoStats struct {
	Hits      int64 // lookups served from the memo
	Misses    int64 // lookups that fell through to the kernel
	Evictions int64 // entries dropped by shard resets
	Entries   int   // entries currently resident
}

// NewPairMemo returns an empty memo bounded to roughly size entries
// (the bound is enforced per shard). size <= 0 selects DefaultMemoSize.
func NewPairMemo(size int) *PairMemo {
	if size <= 0 {
		size = DefaultMemoSize
	}
	per := (size + memoShardCount - 1) / memoShardCount
	if per < 1 {
		per = 1
	}
	pm := &PairMemo{perShard: per}
	for i := range pm.shards {
		pm.shards[i].m = make(map[pairKey]float64)
	}
	return pm
}

// shardFor hashes the key (FNV-1a over kind and both strings) to a
// shard. Inlined hashing keeps lookups allocation-free.
func (pm *PairMemo) shardFor(k pairKey) *memoShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(k.kind)) * prime64
	for i := 0; i < len(k.a); i++ {
		h = (h ^ uint64(k.a[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator so ("ab","c") != ("a","bc")
	for i := 0; i < len(k.b); i++ {
		h = (h ^ uint64(k.b[i])) * prime64
	}
	return &pm.shards[h&(memoShardCount-1)]
}

// get returns the memoized similarity for the canonicalized key. A nil
// memo never hits (and counts nothing).
func (pm *PairMemo) get(kind uint8, a, b string) (float64, bool) {
	if pm == nil {
		return 0, false
	}
	if a > b {
		a, b = b, a
	}
	k := pairKey{kind: kind, a: a, b: b}
	s := pm.shardFor(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		pm.hits.Add(1)
	} else {
		pm.misses.Add(1)
	}
	return v, ok
}

// put stores the similarity for the canonicalized key, resetting the
// shard first if it is at its bound. Concurrent puts of the same key
// are benign: every writer stores the same pure-function result.
func (pm *PairMemo) put(kind uint8, a, b string, v float64) {
	if pm == nil {
		return
	}
	if a > b {
		a, b = b, a
	}
	k := pairKey{kind: kind, a: a, b: b}
	s := pm.shardFor(k)
	s.mu.Lock()
	if len(s.m) >= pm.perShard {
		pm.evictions.Add(int64(len(s.m)))
		clear(s.m)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Len returns the number of resident entries across all shards.
func (pm *PairMemo) Len() int {
	if pm == nil {
		return 0
	}
	n := 0
	for i := range pm.shards {
		s := &pm.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Stats returns the memo's cumulative hit/miss/eviction counts and
// current residency. Safe on a nil memo (all zeros).
func (pm *PairMemo) Stats() MemoStats {
	if pm == nil {
		return MemoStats{}
	}
	return MemoStats{
		Hits:      pm.hits.Load(),
		Misses:    pm.misses.Load(),
		Evictions: pm.evictions.Load(),
		Entries:   pm.Len(),
	}
}
