package features

import (
	"math"
	"testing"

	"repro/internal/record"
)

func TestDefsShape(t *testing.T) {
	defs := Defs()
	if len(defs) != 48 {
		t.Fatalf("the paper defines 48 features; got %d", len(defs))
	}
	byName := map[string]bool{}
	for i, d := range defs {
		if d.ID != i {
			t.Errorf("def %d has ID %d", i, d.ID)
		}
		if byName[d.Name] {
			t.Errorf("duplicate feature name %q", d.Name)
		}
		byName[d.Name] = true
		if d.Kind == Categorical && len(d.Levels) < 2 {
			t.Errorf("categorical %q has %d levels", d.Name, len(d.Levels))
		}
	}
	// Spot-check the paper's labels.
	for _, name := range []string{"sameFFN", "MFNdist", "FFNdist", "B3dist", "DPGeoDist", "sameSource", "LNdist", "SNdist", "MNdist"} {
		if !byName[name] {
			t.Errorf("feature %q missing", name)
		}
	}
	if NumFeatures != len(defs) {
		t.Errorf("NumFeatures = %d", NumFeatures)
	}
}

type fakeGeo struct{}

func (fakeGeo) Distance(a, b string) (float64, bool) {
	if a == "Torino" && b == "Moncalieri" || a == "Moncalieri" && b == "Torino" {
		return 9, true
	}
	if a == b {
		return 0, true
	}
	return 0, false
}

func rec(build func(*record.Record)) *record.Record {
	r := &record.Record{}
	build(r)
	return r
}

func TestSameNameTrinary(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()

	// {John, Harris} vs {John} -> partial (the paper's example).
	a := rec(func(r *record.Record) { r.Add(record.FirstName, "John"); r.Add(record.FirstName, "Harris") })
	b := rec(func(r *record.Record) { r.Add(record.FirstName, "John") })
	v := ex.Extract(a, b)
	if got := v[idx["sameFN"]]; !got.Present || got.Cat != SamePartial {
		t.Errorf("sameFN = %+v, want partial", got)
	}

	// Equal sets -> yes, case-insensitive.
	c := rec(func(r *record.Record) { r.Add(record.FirstName, "JOHN") })
	v = ex.Extract(b, c)
	if got := v[idx["sameFN"]]; got.Cat != SameYes {
		t.Errorf("sameFN equal sets = %+v", got)
	}

	// Disjoint -> no.
	d := rec(func(r *record.Record) { r.Add(record.FirstName, "Maria") })
	v = ex.Extract(b, d)
	if got := v[idx["sameFN"]]; got.Cat != SameNo {
		t.Errorf("sameFN disjoint = %+v", got)
	}
}

func TestMissingSemantics(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()
	a := rec(func(r *record.Record) { r.Add(record.FirstName, "Guido") })
	b := rec(func(r *record.Record) { r.Add(record.LastName, "Foa") })
	v := ex.Extract(a, b)
	present := 0
	for _, val := range v {
		if val.Present {
			present++
		}
	}
	if present != 0 {
		t.Errorf("no shared attributes but %d features present: %+v", present, v)
	}
	if v[idx["sameFN"]].Present || v[idx["LNdist"]].Present {
		t.Error("one-sided attributes must be missing")
	}
}

func TestNameDistancesMaxOverValues(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()
	a := rec(func(r *record.Record) {
		r.Add(record.FirstName, "Zzz")
		r.Add(record.FirstName, "Guido")
	})
	b := rec(func(r *record.Record) { r.Add(record.FirstName, "Guido") })
	v := ex.Extract(a, b)
	if got := v[idx["FNdist"]]; !got.Present || got.Num != 1 {
		t.Errorf("FNdist = %+v, want 1 (max over values)", got)
	}
	if got := v[idx["FNjw"]]; !got.Present || got.Num != 1 {
		t.Errorf("FNjw = %+v, want 1", got)
	}
}

func TestDateDistancesRaw(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()
	a := rec(func(r *record.Record) {
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthMonth, "11")
		r.Add(record.BirthDay, "18")
	})
	b := rec(func(r *record.Record) {
		r.Add(record.BirthYear, "1936")
		r.Add(record.BirthMonth, "8")
		r.Add(record.BirthDay, "2")
	})
	v := ex.Extract(a, b)
	if got := v[idx["B3dist"]]; got.Num != 16 {
		t.Errorf("B3dist = %+v, want 16", got)
	}
	if got := v[idx["B2dist"]]; got.Num != 3 {
		t.Errorf("B2dist = %+v, want 3", got)
	}
	if got := v[idx["B1dist"]]; got.Num != 16 {
		t.Errorf("B1dist = %+v, want 16", got)
	}
}

func TestGeoDistanceFeature(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()
	a := rec(func(r *record.Record) { r.Add(record.BirthCity, "Torino") })
	b := rec(func(r *record.Record) { r.Add(record.BirthCity, "Moncalieri") })
	v := ex.Extract(a, b)
	if got := v[idx["BPGeoDist"]]; !got.Present || math.Abs(got.Num-9) > 1e-12 {
		t.Errorf("BPGeoDist = %+v, want 9", got)
	}
	// Unknown city pair -> missing.
	c := rec(func(r *record.Record) { r.Add(record.BirthCity, "Unknown1") })
	d := rec(func(r *record.Record) { r.Add(record.BirthCity, "Unknown2") })
	v = ex.Extract(c, d)
	if v[idx["BPGeoDist"]].Present {
		t.Error("unresolvable geo distance must be missing")
	}
	// Nil geo -> missing.
	exNil := NewExtractor(nil)
	v = exNil.Extract(a, b)
	if v[idx["BPGeoDist"]].Present {
		t.Error("nil geo must leave the feature missing")
	}
}

func TestSourceGenderProfessionDOB(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()
	a := rec(func(r *record.Record) {
		r.Source = "list:1"
		r.Add(record.Gender, "0")
		r.Add(record.Profession, "tailor")
		r.Add(record.BirthDay, "2")
		r.Add(record.BirthMonth, "8")
		r.Add(record.BirthYear, "1936")
	})
	b := rec(func(r *record.Record) {
		r.Source = "list:1"
		r.Add(record.Gender, "0")
		r.Add(record.Profession, "Tailor")
		r.Add(record.BirthDay, "2")
		r.Add(record.BirthMonth, "8")
		r.Add(record.BirthYear, "1936")
	})
	v := ex.Extract(a, b)
	for _, name := range []string{"sameSource", "sameGender", "sameProfession", "sameDOB"} {
		if got := v[idx[name]]; !got.Present || got.Cat != True {
			t.Errorf("%s = %+v, want true", name, got)
		}
	}
	b.Source = "list:2"
	v = ex.Extract(a, b)
	if got := v[idx["sameSource"]]; got.Cat != False {
		t.Errorf("different sources: sameSource = %+v", got)
	}
	// Partial DOB -> sameDOB missing.
	c := rec(func(r *record.Record) { r.Add(record.BirthYear, "1936") })
	v = ex.Extract(a, c)
	if v[idx["sameDOB"]].Present {
		t.Error("sameDOB must be missing without full dates on both sides")
	}
}

func TestSamePlaceParts(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	idx := IndexByName()
	a := rec(func(r *record.Record) {
		r.Add(record.BirthCity, "Torino")
		r.Add(record.BirthCountry, "Italy")
	})
	b := rec(func(r *record.Record) {
		r.Add(record.BirthCity, "Canischio")
		r.Add(record.BirthCountry, "Italy")
	})
	v := ex.Extract(a, b)
	if got := v[idx["sameBCity"]]; got.Cat != False {
		t.Errorf("sameBCity = %+v", got)
	}
	if got := v[idx["sameBCountry"]]; got.Cat != True {
		t.Errorf("sameBCountry = %+v", got)
	}
	if v[idx["sameBCounty"]].Present {
		t.Error("absent county must be missing")
	}
}

func TestExtractSymmetric(t *testing.T) {
	ex := NewExtractor(fakeGeo{})
	a := rec(func(r *record.Record) {
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foa")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthCity, "Torino")
	})
	b := rec(func(r *record.Record) {
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foy")
		r.Add(record.BirthYear, "1936")
		r.Add(record.BirthCity, "Moncalieri")
	})
	ab, ba := ex.Extract(a, b), ex.Extract(b, a)
	for i := range ab {
		if ab[i].Present != ba[i].Present || math.Abs(ab[i].Num-ba[i].Num) > 1e-12 || ab[i].Cat != ba[i].Cat {
			t.Errorf("feature %d asymmetric: %+v vs %+v", i, ab[i], ba[i])
		}
	}
}
