package features

import (
	"testing"

	"repro/internal/record"
)

func BenchmarkExtract(b *testing.B) {
	ex := NewExtractor(fakeGeo{})
	a := rec(func(r *record.Record) {
		r.Source = "list:1"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foa")
		r.Add(record.Gender, "0")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthMonth, "11")
		r.Add(record.BirthDay, "18")
		r.Add(record.BirthCity, "Torino")
		r.Add(record.PermCity, "Torino")
		r.Add(record.SpouseName, "Olga")
		r.Add(record.FatherName, "Donato")
	})
	c := rec(func(r *record.Record) {
		r.Source = "list:2"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foy")
		r.Add(record.Gender, "0")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthCity, "Moncalieri")
		r.Add(record.FatherName, "Donato")
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Extract(a, c)
	}
}

// BenchmarkExtractProfiled measures the pair-time cost once the records'
// profiles are cached — the steady state of the parallel scoring stage.
func BenchmarkExtractProfiled(b *testing.B) {
	ex := NewExtractor(fakeGeo{})
	a := rec(func(r *record.Record) {
		r.Source = "list:1"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foa")
		r.Add(record.Gender, "0")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthMonth, "11")
		r.Add(record.BirthDay, "18")
		r.Add(record.BirthCity, "Torino")
		r.Add(record.PermCity, "Torino")
		r.Add(record.SpouseName, "Olga")
		r.Add(record.FatherName, "Donato")
	})
	c := rec(func(r *record.Record) {
		r.Source = "list:2"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foy")
		r.Add(record.Gender, "0")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthCity, "Moncalieri")
		r.Add(record.FatherName, "Donato")
	})
	pa, pc := ex.Profile(a), ex.Profile(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.ExtractProfiled(pa, pc)
	}
}
