package features

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/record"
)

// assertVectorsEqual requires exact — bit-identical, not approximate —
// equality between the plain and profiled extraction paths.
func assertVectorsEqual(t *testing.T, tag string, want, got Vector) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: vector lengths differ: %d vs %d", tag, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: feature %d (%s) differs: Extract=%+v ExtractProfiled=%+v",
				tag, i, Defs()[i].Name, want[i], got[i])
		}
	}
}

// TestExtractProfiledGoldenEquality compares ExtractProfiled against
// Extract over 1k random pairs of generated records, with a gazetteer Geo
// (the CoordResolver fast path): the profiled vector must be bit-identical.
func TestExtractProfiledGoldenEquality(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 300
	gen, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExtractor(gen.Gaz)
	cache := NewProfileCache(ex)
	records := gen.Collection.Records
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := records[rng.Intn(len(records))]
		b := records[rng.Intn(len(records))]
		want := ex.Extract(a, b)
		got := ex.ExtractProfiled(cache.Get(a), cache.Get(b))
		assertVectorsEqual(t, "gazetteer", want, got)
	}
	if cache.Len() == 0 || cache.Len() > gen.Collection.Len() {
		t.Errorf("cache holds %d profiles for %d records", cache.Len(), gen.Collection.Len())
	}
}

// TestExtractProfiledFallbackGeo exercises the non-CoordResolver Geo
// fallback (distances resolved through the interface at pair time) and the
// nil-Geo case.
func TestExtractProfiledFallbackGeo(t *testing.T) {
	a := rec(func(r *record.Record) {
		r.Source = "list:1"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foa")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthMonth, "11")
		r.Add(record.BirthDay, "18")
		r.Add(record.BirthCity, "Torino")
		r.Add(record.Gender, "0")
		r.Add(record.Profession, "merchant")
	})
	b := rec(func(r *record.Record) {
		r.Source = "list:2"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foy")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthCity, "Moncalieri")
		r.Add(record.Gender, "0")
	})
	for _, tc := range []struct {
		name string
		ex   *Extractor
	}{
		{"fakeGeo", NewExtractor(fakeGeo{})},
		{"nilGeo", NewExtractor(nil)},
	} {
		want := tc.ex.Extract(a, b)
		got := tc.ex.ExtractProfiled(tc.ex.Profile(a), tc.ex.Profile(b))
		assertVectorsEqual(t, tc.name, want, got)
	}
}

// TestProfileCacheBuild checks the parallel Build path returns profiles
// aligned with the collection and memoizes them for Get.
func TestProfileCacheBuild(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 80
	gen, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExtractor(gen.Gaz)
	cache := NewProfileCache(ex)
	profs := cache.Build(gen.Collection, 4)
	if len(profs) != gen.Collection.Len() {
		t.Fatalf("Build returned %d profiles for %d records", len(profs), gen.Collection.Len())
	}
	if cache.Len() != gen.Collection.Len() {
		t.Fatalf("cache holds %d profiles, want %d", cache.Len(), gen.Collection.Len())
	}
	for i, r := range gen.Collection.Records {
		if cache.Get(r) != profs[i] {
			t.Fatalf("Get(%d) did not return the built profile", r.BookID)
		}
	}
}
