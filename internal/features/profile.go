package features

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/gazetteer"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Profile is a per-record snapshot of everything Extract re-derives from
// raw strings on every pair: lowered name values and their q-gram sets,
// parsed birth-date components, first-values of places and demographic
// attributes, and (when the extractor's Geo implements
// similarity.CoordResolver) gazetteer-resolved coordinates.
//
// ExtractProfiled over two profiles built by the same extractor produces a
// Vector bit-identical to Extract over the underlying records; the
// parallel scoring stage in internal/core relies on that equivalence.
type Profile struct {
	source string

	names []nameProfile

	// date holds the first BirthDay/BirthMonth/BirthYear values, parsed.
	date [3]dateComponent
	// dob is the fullDOB concatenation, present only with all three
	// components.
	dob    string
	hasDOB bool

	place [record.NumPlaceTypes][record.NumPlaceParts]firstValue
	geo   [record.NumPlaceTypes]geoValue
	// coordMode records whether geo coordinates were resolved at build
	// time (Geo implemented similarity.CoordResolver).
	coordMode bool

	gender, profession firstValue
}

// nameProfile caches one name attribute's values: the lowered strings
// (for Jaro-Winkler and memo keys), the distinct lowered set as sorted
// interned IDs (for sameXName), and each value's padded 2-gram set as
// sorted interned IDs in insertion order (for XNdist). The ID slices are
// backed by the owning extractor's interner, so pair-time set operations
// are integer merges with no map probes or string hashing.
type nameProfile struct {
	lower   []string
	setIDs  []uint32
	gramIDs [][]uint32
}

type dateComponent struct {
	present bool
	parsed  bool
	value   int
}

type firstValue struct {
	present bool
	value   string
}

type geoValue struct {
	present  bool
	resolved bool
	city     string
	lat, lon float64
}

// Profile precomputes the record's pairwise-extraction inputs. Profiles
// are immutable after construction and safe for concurrent use; they must
// be paired with profiles built by the same extractor.
func (e *Extractor) Profile(r *record.Record) *Profile {
	p := &Profile{source: r.Source, names: make([]nameProfile, len(nameAttrs))}
	for i, na := range nameAttrs {
		vs := r.Values(na.t)
		if len(vs) == 0 {
			continue
		}
		np := nameProfile{
			lower:   make([]string, len(vs)),
			setIDs:  similarity.InternSet(e.interner, vs),
			gramIDs: make([][]uint32, len(vs)),
		}
		for j, v := range vs {
			np.lower[j] = strings.ToLower(v)
			np.gramIDs[j] = similarity.QGramIDs(e.interner, v, 2)
		}
		p.names[i] = np
	}

	for i, t := range []record.ItemType{record.BirthDay, record.BirthMonth, record.BirthYear} {
		if v, ok := r.First(t); ok {
			p.date[i].present = true
			if n, err := strconv.Atoi(v); err == nil {
				p.date[i].parsed = true
				p.date[i].value = n
			}
		}
	}
	p.dob, p.hasDOB = fullDOB(r)

	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		for pp := 0; pp < record.NumPlaceParts; pp++ {
			if v, ok := r.First(record.PlaceItem(record.PlaceType(pt), record.PlacePart(pp))); ok {
				p.place[pt][pp] = firstValue{present: true, value: v}
			}
		}
	}
	resolver, hasResolver := e.Geo.(similarity.CoordResolver)
	p.coordMode = hasResolver
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		city := p.place[pt][record.City]
		if !city.present {
			continue
		}
		g := geoValue{present: true, city: city.value}
		if hasResolver {
			if lat, lon, ok := resolver.ResolveCoord(city.value); ok {
				g.resolved = true
				g.lat, g.lon = lat, lon
			}
		}
		p.geo[pt] = g
	}

	if v, ok := r.First(record.Gender); ok {
		p.gender = firstValue{present: true, value: v}
	}
	if v, ok := r.First(record.Profession); ok {
		p.profession = firstValue{present: true, value: v}
	}
	return p
}

// ExtractProfiled computes the pair's feature vector from two cached
// profiles. The result is bit-identical to Extract over the profiles'
// records.
func (e *Extractor) ExtractProfiled(a, b *Profile) Vector {
	v := make(Vector, len(e.defs))
	id := 0

	// sameXName over the cached interned lowered sets.
	for i := range nameAttrs {
		na, nb := &a.names[i], &b.names[i]
		if len(na.lower) == 0 || len(nb.lower) == 0 {
			id++
			continue
		}
		v[id] = Value{Present: true, Cat: compareIDSets(na.setIDs, nb.setIDs)}
		id++
	}

	// XNdist: max q-gram Jaccard over the cached interned gram sets,
	// with repeated value pairs served from the memo.
	for i := range nameAttrs {
		na, nb := &a.names[i], &b.names[i]
		if len(na.lower) == 0 || len(nb.lower) == 0 {
			id++
			continue
		}
		best := 0.0
		for ja := range na.gramIDs {
			for jb := range nb.gramIDs {
				if s := e.gramSim(na, nb, ja, jb); s > best {
					best = s
				}
			}
		}
		v[id] = Value{Present: true, Num: best}
		id++
	}

	// XNjw: max Jaro-Winkler over the cached lowered values, memoized
	// per value pair.
	for i := range nameAttrs {
		na, nb := &a.names[i], &b.names[i]
		if len(na.lower) == 0 || len(nb.lower) == 0 {
			id++
			continue
		}
		best := 0.0
		for _, x := range na.lower {
			for _, y := range nb.lower {
				if s := e.jwSim(x, y); s > best {
					best = s
				}
			}
		}
		v[id] = Value{Present: true, Num: best}
		id++
	}

	// Birth-date component distances over the parsed components.
	for i := 0; i < 3; i++ {
		da, db := a.date[i], b.date[i]
		if da.present && db.present && da.parsed && db.parsed {
			v[id] = Value{Present: true, Num: math.Abs(float64(da.value - db.value))}
		}
		id++
	}

	// samePlaceXPartY.
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		for pp := 0; pp < record.NumPlaceParts; pp++ {
			pa, pb := a.place[pt][pp], b.place[pt][pp]
			if pa.present && pb.present {
				v[id] = Value{Present: true, Cat: boolCat(strings.EqualFold(pa.value, pb.value))}
			}
			id++
		}
	}

	// PlaceXGeoDistance: Haversine over the resolved coordinates when both
	// profiles carry them, otherwise through the Geo interface.
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		ga, gb := a.geo[pt], b.geo[pt]
		if ga.present && gb.present && e.Geo != nil {
			if a.coordMode && b.coordMode {
				if ga.resolved && gb.resolved {
					km := gazetteer.Haversine(ga.lat, ga.lon, gb.lat, gb.lon)
					v[id] = Value{Present: true, Num: km}
				}
			} else if km, ok := e.Geo.Distance(ga.city, gb.city); ok {
				v[id] = Value{Present: true, Num: km}
			}
		}
		id++
	}

	// sameSource.
	if a.source != "" && b.source != "" {
		v[id] = Value{Present: true, Cat: boolCat(a.source == b.source)}
	}
	id++

	// sameGender.
	if a.gender.present && b.gender.present {
		v[id] = Value{Present: true, Cat: boolCat(a.gender.value == b.gender.value)}
	}
	id++

	// sameProfession.
	if a.profession.present && b.profession.present {
		v[id] = Value{Present: true, Cat: boolCat(strings.EqualFold(a.profession.value, b.profession.value))}
	}
	id++

	// sameDOB.
	if a.hasDOB && b.hasDOB {
		v[id] = Value{Present: true, Cat: boolCat(a.dob == b.dob)}
	}
	id++

	return v
}

// gramSim returns the q-gram Jaccard of value ja of na against value jb
// of nb — a merge over the interned sorted gram IDs, memoized on the
// lowered value strings. QGramIDs lowercases before gramming, so the
// lowered value is a faithful memo key for the gram set.
func (e *Extractor) gramSim(na, nb *nameProfile, ja, jb int) float64 {
	if e.Memo == nil {
		return similarity.JaccardSortedIDs(na.gramIDs[ja], nb.gramIDs[jb])
	}
	x, y := na.lower[ja], nb.lower[jb]
	if v, ok := e.Memo.get(memoGram, x, y); ok {
		return v
	}
	v := similarity.JaccardSortedIDs(na.gramIDs[ja], nb.gramIDs[jb])
	e.Memo.put(memoGram, x, y, v)
	return v
}

// jwSim returns the Jaro–Winkler similarity of two lowered values,
// memoized when the extractor carries a memo.
func (e *Extractor) jwSim(x, y string) float64 {
	if e.Memo == nil {
		return similarity.JaroWinkler(x, y)
	}
	if v, ok := e.Memo.get(memoJW, x, y); ok {
		return v
	}
	v := similarity.JaroWinkler(x, y)
	e.Memo.put(memoJW, x, y, v)
	return v
}

// ProfileCache memoizes record profiles by BookID so repeated pair
// extractions — the scoring worker pool, or ad-hoc query-time scoring —
// pay the per-record derivation once. It is safe for concurrent use.
type ProfileCache struct {
	ex   *Extractor
	mu   sync.RWMutex
	byID map[int64]*Profile

	// hits and misses count Get outcomes; built counts profiles derived
	// by Build. Telemetry reads them via Stats.
	hits, misses, built atomic.Int64
}

// CacheStats is a point-in-time view of the cache's traffic.
type CacheStats struct {
	Hits   int64 // Get served from the cache
	Misses int64 // Get derived a fresh profile
	Built  int64 // profiles derived by bulk Build
	Size   int   // distinct cached profiles
}

// Stats returns the cache's cumulative hit/miss/build counts.
func (c *ProfileCache) Stats() CacheStats {
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Built:  c.built.Load(),
		Size:   c.Len(),
	}
}

// NewProfileCache returns an empty cache building profiles with ex.
func NewProfileCache(ex *Extractor) *ProfileCache {
	return &ProfileCache{ex: ex, byID: make(map[int64]*Profile)}
}

// Extractor returns the extractor the cache builds profiles with.
func (c *ProfileCache) Extractor() *Extractor { return c.ex }

// Len returns the number of cached profiles.
func (c *ProfileCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

// Get returns the record's profile, building and caching it on a miss.
func (c *ProfileCache) Get(r *record.Record) *Profile {
	c.mu.RLock()
	p, ok := c.byID[r.BookID]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return p
	}
	c.misses.Add(1)
	p = c.ex.Profile(r)
	c.mu.Lock()
	// A concurrent builder may have won the race; keep the first entry so
	// every caller sees one profile per record.
	if prev, dup := c.byID[r.BookID]; dup {
		p = prev
	} else {
		c.byID[r.BookID] = p
	}
	c.mu.Unlock()
	return p
}

// Build precomputes profiles for the whole collection on the given number
// of workers (<=0 means one per record chunk up to GOMAXPROCS is chosen by
// the caller; Build clamps to at least 1). It returns the profiles aligned
// with coll.Records, so index-based callers can bypass the map lookup.
func (c *ProfileCache) Build(coll *record.Collection, workers int) []*Profile {
	n := coll.Len()
	profs := make([]*Profile, n)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers && w*chunk < n; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				profs[i] = c.ex.Profile(coll.Records[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	c.built.Add(int64(n))
	c.mu.Lock()
	for i, r := range coll.Records {
		if _, dup := c.byID[r.BookID]; !dup {
			c.byID[r.BookID] = profs[i]
		} else {
			profs[i] = c.byID[r.BookID]
		}
	}
	c.mu.Unlock()
	return profs
}
