//go:build race

package features

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
