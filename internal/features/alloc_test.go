package features

import (
	"testing"

	"repro/internal/record"
)

// allocPair builds the bench fixture pair used by the allocation guards.
func allocPair() (*record.Record, *record.Record) {
	a := rec(func(r *record.Record) {
		r.Source = "list:1"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foa")
		r.Add(record.Gender, "0")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthMonth, "11")
		r.Add(record.BirthDay, "18")
		r.Add(record.BirthCity, "Torino")
		r.Add(record.PermCity, "Torino")
		r.Add(record.SpouseName, "Olga")
		r.Add(record.FatherName, "Donato")
	})
	b := rec(func(r *record.Record) {
		r.Source = "list:2"
		r.Add(record.FirstName, "Guido")
		r.Add(record.LastName, "Foy")
		r.Add(record.Gender, "0")
		r.Add(record.BirthYear, "1920")
		r.Add(record.BirthCity, "Moncalieri")
		r.Add(record.FatherName, "Donato")
	})
	return a, b
}

// TestExtractProfiledAllocs guards the steady-state pair cost: with
// profiles cached, the only allocation ExtractProfiled may make is the
// result Vector itself — the interned gram merges, pooled kernels, and
// memo lookups must all be allocation-free.
func TestExtractProfiledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race (sync.Pool drops items)")
	}
	for _, tc := range []struct {
		name string
		memo *PairMemo
	}{
		{"no-memo", nil},
		{"memo", NewPairMemo(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ex := NewExtractor(fakeGeo{})
			ex.Memo = tc.memo
			a, b := allocPair()
			pa, pb := ex.Profile(a), ex.Profile(b)
			// Warm the memo so the measured runs are pure hits.
			ex.ExtractProfiled(pa, pb)
			if n := testing.AllocsPerRun(200, func() { ex.ExtractProfiled(pa, pb) }); n > 1 {
				t.Errorf("ExtractProfiled allocates %v per op, want <= 1 (the Vector)", n)
			}
		})
	}
}
