package features

import (
	"strings"

	"repro/internal/record"
	"repro/internal/similarity"
)

// Extractor computes feature vectors for record pairs.
type Extractor struct {
	// Geo resolves place distances for the PlaceXGeoDistance features;
	// nil leaves them missing.
	Geo similarity.GeoDistancer

	// Memo, when set, memoizes the symmetric value-pair similarities of
	// the profiled path (Jaro–Winkler and q-gram Jaccard over lowered
	// name values) across record pairs. It never changes outputs — a
	// hit returns exactly the kernel's result — so it may be shared by
	// concurrent workers. Set it before the first ExtractProfiled call.
	Memo *PairMemo

	defs []Def

	// interner backs the profiled path's q-gram and name-set IDs.
	// Profiles are only comparable when built by the same extractor —
	// IDs from different interners are unrelated.
	interner *similarity.Interner
}

// NewExtractor returns an extractor over the canonical 48 features.
func NewExtractor(geo similarity.GeoDistancer) *Extractor {
	return &Extractor{Geo: geo, defs: Defs(), interner: similarity.NewInterner()}
}

// InternedStrings returns the number of distinct strings (q-grams and
// lowered name values) the extractor's profiles have interned so far.
func (e *Extractor) InternedStrings() int { return e.interner.Len() }

// Defs returns the extractor's feature definitions.
func (e *Extractor) Defs() []Def { return e.defs }

// Extract computes the pair's feature vector. A feature is missing when
// either record lacks every value of the underlying attribute.
func (e *Extractor) Extract(a, b *record.Record) Vector {
	v := make(Vector, len(e.defs))
	id := 0

	// sameXName: yes when the name sets are equal, partial when they
	// intersect, no otherwise.
	for _, na := range nameAttrs {
		va, vb := a.Values(na.t), b.Values(na.t)
		if len(va) == 0 || len(vb) == 0 {
			id++
			continue
		}
		v[id] = Value{Present: true, Cat: compareNameSets(va, vb)}
		id++
	}

	// XNdist: max q-gram Jaccard similarity over the value cross product.
	for _, na := range nameAttrs {
		va, vb := a.Values(na.t), b.Values(na.t)
		if len(va) == 0 || len(vb) == 0 {
			id++
			continue
		}
		best := 0.0
		for _, x := range va {
			for _, y := range vb {
				if s := similarity.JaccardQGrams(x, y, 2); s > best {
					best = s
				}
			}
		}
		v[id] = Value{Present: true, Num: best}
		id++
	}

	// XNjw: max Jaro-Winkler similarity.
	for _, na := range nameAttrs {
		va, vb := a.Values(na.t), b.Values(na.t)
		if len(va) == 0 || len(vb) == 0 {
			id++
			continue
		}
		best := 0.0
		for _, x := range va {
			for _, y := range vb {
				if s := similarity.JaroWinkler(strings.ToLower(x), strings.ToLower(y)); s > best {
					best = s
				}
			}
		}
		v[id] = Value{Present: true, Num: best}
		id++
	}

	// Birth-date component distances (raw absolute differences, matching
	// the tree thresholds like "B3dist < 1.5").
	for _, t := range []record.ItemType{record.BirthDay, record.BirthMonth, record.BirthYear} {
		xa, okA := a.First(t)
		xb, okB := b.First(t)
		if okA && okB {
			if d, ok := similarity.DateDist(xa, xb); ok {
				v[id] = Value{Present: true, Num: d}
			}
		}
		id++
	}

	// samePlaceXPartY.
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		for pp := 0; pp < record.NumPlaceParts; pp++ {
			t := record.PlaceItem(record.PlaceType(pt), record.PlacePart(pp))
			xa, okA := a.First(t)
			xb, okB := b.First(t)
			if okA && okB {
				v[id] = Value{Present: true, Cat: boolCat(strings.EqualFold(xa, xb))}
			}
			id++
		}
	}

	// PlaceXGeoDistance over the place-type cities.
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		t := record.PlaceItem(record.PlaceType(pt), record.City)
		xa, okA := a.First(t)
		xb, okB := b.First(t)
		if okA && okB && e.Geo != nil {
			if km, ok := e.Geo.Distance(xa, xb); ok {
				v[id] = Value{Present: true, Num: km}
			}
		}
		id++
	}

	// sameSource: same list, or testimonies by the same submitter.
	if a.Source != "" && b.Source != "" {
		v[id] = Value{Present: true, Cat: boolCat(a.Source == b.Source)}
	}
	id++

	// sameGender.
	ga, okA := a.First(record.Gender)
	gb, okB := b.First(record.Gender)
	if okA && okB {
		v[id] = Value{Present: true, Cat: boolCat(ga == gb)}
	}
	id++

	// sameProfession.
	pa, okA := a.First(record.Profession)
	pb, okB := b.First(record.Profession)
	if okA && okB {
		v[id] = Value{Present: true, Cat: boolCat(strings.EqualFold(pa, pb))}
	}
	id++

	// sameDOB: full date equality, present only when both carry all three
	// components.
	if dobA, okA := fullDOB(a); okA {
		if dobB, okB := fullDOB(b); okB {
			v[id] = Value{Present: true, Cat: boolCat(dobA == dobB)}
		}
	}
	id++

	return v
}

func fullDOB(r *record.Record) (string, bool) {
	d, okD := r.First(record.BirthDay)
	m, okM := r.First(record.BirthMonth)
	y, okY := r.First(record.BirthYear)
	if !okD || !okM || !okY {
		return "", false
	}
	return d + "/" + m + "/" + y, true
}

// compareNameSets implements the trinary sameXName semantics over the two
// value sets (case-insensitive).
func compareNameSets(va, vb []string) string {
	return compareLowerSets(lowerSet(va), lowerSet(vb))
}

// compareLowerSets is compareNameSets over already-lowered distinct sets —
// the form the profile cache snapshots per record.
func compareLowerSets(setA, setB map[string]struct{}) string {
	inter := 0
	for x := range setA {
		if _, ok := setB[x]; ok {
			inter++
		}
	}
	switch {
	case inter == len(setA) && inter == len(setB):
		return SameYes
	case inter > 0:
		return SamePartial
	default:
		return SameNo
	}
}

// compareIDSets is compareLowerSets over sorted interned-ID sets — the
// representation profiles snapshot per record. Interning is injective,
// so the intersection count (and hence the trinary outcome) is exactly
// the string-set one.
func compareIDSets(a, b []uint32) string {
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	switch {
	case inter == len(a) && inter == len(b):
		return SameYes
	case inter > 0:
		return SamePartial
	default:
		return SameNo
	}
}

func lowerSet(vs []string) map[string]struct{} {
	m := make(map[string]struct{}, len(vs))
	for _, v := range vs {
		m[strings.ToLower(v)] = struct{}{}
	}
	return m
}

func boolCat(b bool) string {
	if b {
		return True
	}
	return False
}
