package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

func testServer(t *testing.T) (*Server, *dataset.Generated, *core.Resolution) {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = 250
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz}
	res, err := core.Run(opts, g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	return New(res, g.Collection), g, res
}

func get(t *testing.T, s *Server, path string, wantCode int) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		t.Fatalf("GET %s = %d, want %d (%s)", path, rec.Code, wantCode, rec.Body.String())
	}
	return rec.Body.Bytes()
}

func TestStats(t *testing.T) {
	s, g, res := testServer(t)
	body := get(t, s, "/api/stats?certainty=0.3", http.StatusOK)
	var out struct {
		Records  int `json:"records"`
		Matches  int `json:"ranked_matches"`
		Entities int `json:"entities"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records != g.Collection.Len() {
		t.Errorf("records = %d, want %d", out.Records, g.Collection.Len())
	}
	if out.Matches != len(res.Matches) {
		t.Errorf("matches = %d, want %d", out.Matches, len(res.Matches))
	}
	if out.Entities != len(res.Clusters(0.3)) {
		t.Errorf("entities = %d", out.Entities)
	}
}

func TestSearchCertaintySlider(t *testing.T) {
	s, g, _ := testServer(t)
	// Use a real last name from the data.
	last, _ := g.Collection.Records[0].First(record.LastName)
	if last == "" {
		t.Skip("first record has no last name")
	}
	type resp struct {
		Entities []struct {
			Reports []int64 `json:"reports"`
		} `json:"entities"`
	}
	parse := func(b []byte) resp {
		var r resp
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	loose := parse(get(t, s, "/api/search?last="+last+"&certainty=-10", http.StatusOK))
	tight := parse(get(t, s, "/api/search?last="+last+"&certainty=10", http.StatusOK))
	if len(loose.Entities) == 0 || len(tight.Entities) == 0 {
		t.Fatalf("search found nothing for %q", last)
	}
	// Tight certainty = singletons only.
	for _, e := range tight.Entities {
		if len(e.Reports) != 1 {
			t.Errorf("tight search returned merged entity %v", e.Reports)
		}
	}
}

func TestEntityAndNarrative(t *testing.T) {
	s, g, _ := testServer(t)
	book := strconv.FormatInt(g.Collection.Records[0].BookID, 10)

	body := get(t, s, "/api/entity?book="+book+"&certainty=0.3", http.StatusOK)
	var ent struct {
		Reports   []int64             `json:"reports"`
		Narrative string              `json:"narrative"`
		Values    map[string][]string `json:"values"`
	}
	if err := json.Unmarshal(body, &ent); err != nil {
		t.Fatal(err)
	}
	if len(ent.Reports) == 0 || ent.Narrative == "" {
		t.Errorf("entity response incomplete: %+v", ent)
	}

	body = get(t, s, "/api/narrative?book="+book+"&certainty=0.3", http.StatusOK)
	var nar struct {
		Subject string `json:"subject"`
		Events  []struct {
			Kind       string  `json:"kind"`
			Confidence float64 `json:"confidence"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &nar); err != nil {
		t.Fatal(err)
	}
	for _, ev := range nar.Events {
		if ev.Confidence <= 0 || ev.Confidence > 1 {
			t.Errorf("event confidence %v out of range", ev.Confidence)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s, _, _ := testServer(t)
	get(t, s, "/api/search?certainty=0.3", http.StatusBadRequest)          // no name
	get(t, s, "/api/search?last=Foa&certainty=abc", http.StatusBadRequest) // bad certainty
	get(t, s, "/api/entity?book=xyz", http.StatusBadRequest)               // bad book
	get(t, s, "/api/entity?book=42", http.StatusNotFound)                  // unknown book
}

func TestNonFiniteCertaintyRejected(t *testing.T) {
	s, _, _ := testServer(t)
	// strconv.ParseFloat accepts all of these; the sorted certainty cut
	// must never see them.
	for _, raw := range []string{"NaN", "nan", "Inf", "+Inf", "-Inf", "Infinity"} {
		get(t, s, "/api/search?last=Foa&certainty="+raw, http.StatusBadRequest)
		get(t, s, "/api/stats?certainty="+raw, http.StatusBadRequest)
	}
	// Ordinary finite values still pass.
	get(t, s, "/api/stats?certainty=0.5", http.StatusOK)
}

func TestPairEndpoint(t *testing.T) {
	s, _, res := testServer(t)
	if len(res.Matches) == 0 {
		t.Fatal("no ranked matches to query")
	}
	m := res.Matches[0]
	body := get(t, s, "/api/pair?a="+strconv.FormatInt(m.Pair.A, 10)+"&b="+strconv.FormatInt(m.Pair.B, 10), http.StatusOK)
	var out struct {
		A          int64   `json:"a"`
		B          int64   `json:"b"`
		Score      float64 `json:"score"`
		BlockScore float64 `json:"block_score"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != m.Pair.A || out.B != m.Pair.B {
		t.Errorf("pair echoed %d/%d, want %d/%d", out.A, out.B, m.Pair.A, m.Pair.B)
	}
	if out.Score != m.Score || out.BlockScore != m.BlockScore {
		t.Errorf("scores %v/%v, want %v/%v", out.Score, out.BlockScore, m.Score, m.BlockScore)
	}

	get(t, s, "/api/pair?a=abc&b=1", http.StatusBadRequest)
	get(t, s, "/api/pair?a=1&b=1", http.StatusBadRequest) // self pair is a client error
	get(t, s, "/api/pair?a=1&b=2", http.StatusNotFound)   // unknown books
	// Self-pairing a *known* book is still a 400, not a 404.
	known := strconv.FormatInt(m.Pair.A, 10)
	get(t, s, "/api/pair?a="+known+"&b="+known, http.StatusBadRequest)
}

func TestSearchTruncation(t *testing.T) {
	s, _, _ := testServer(t)
	s.MaxResults = 1
	// Search broadly enough to exceed one result: use a common surname
	// from the Italy corpus.
	body := get(t, s, "/api/search?last=Levi&certainty=10", http.StatusOK)
	var out struct {
		Truncated bool `json:"truncated"`
		Entities  []struct{}
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entities) > 1 {
		t.Errorf("MaxResults not enforced: %d entities", len(out.Entities))
	}
}
