package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/telemetry"
)

// testServerWithRegistry runs the pipeline and the server against one
// shared registry, so a single /metrics scrape exposes both.
func testServerWithRegistry(t *testing.T, reg *telemetry.Registry) (*Server, *dataset.Generated, *core.Resolution) {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = 120
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz, Metrics: reg}
	res, err := core.Run(opts, g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	s := New(res, g.Collection)
	s.Metrics = reg
	return s, g, res
}

// scrape fetches /metrics and parses every sample line into series →
// value, failing on malformed lines.
func scrape(t *testing.T, s *Server) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func TestMiddlewareCountsAndMetricsEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	s.Metrics = telemetry.NewRegistry() // isolate from other tests

	for i := 0; i < 3; i++ {
		get(t, s, "/api/stats?certainty=0.3", http.StatusOK)
	}
	get(t, s, "/api/stats?certainty=abc", http.StatusBadRequest)
	get(t, s, "/api/nosuch", http.StatusNotFound)

	series := scrape(t, s)
	if v := series[`http_requests_total{route="/api/stats",class="2xx"}`]; v != 3 {
		t.Errorf("stats 2xx count = %v, want 3", v)
	}
	if v := series[`http_requests_total{route="/api/stats",class="4xx"}`]; v != 1 {
		t.Errorf("stats 4xx count = %v, want 1", v)
	}
	if v := series[`http_requests_total{route="other",class="4xx"}`]; v != 1 {
		t.Errorf("fallback 4xx count = %v, want 1", v)
	}
	if v := series[`http_request_seconds_count{route="/api/stats"}`]; v != 4 {
		t.Errorf("latency histogram count = %v, want 4", v)
	}
	if v := series[`http_request_seconds_bucket{route="/api/stats",le="+Inf"}`]; v != 4 {
		t.Errorf("latency +Inf bucket = %v, want 4", v)
	}
	if v := series[`http_inflight_requests{route="/api/stats"}`]; v != 0 {
		t.Errorf("inflight gauge = %v, want 0 at rest", v)
	}
	if v := series[`http_response_bytes_total{route="/api/stats"}`]; v <= 0 {
		t.Errorf("response bytes = %v, want > 0", v)
	}
}

// TestMetricsIncludesPipelineStages asserts one scrape surfaces both
// HTTP middleware series and the pipeline's stage timings — the
// acceptance criterion for /metrics.
func TestMetricsIncludesPipelineStages(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, _, _ := testServerWithRegistry(t, reg)
	get(t, s, "/api/stats", http.StatusOK)
	series := scrape(t, s)
	for _, stage := range []string{"preprocess", "blocking", "scoring", "rank"} {
		key := `core_stage_seconds_count{stage="` + stage + `"}`
		if v := series[key]; v != 1 {
			t.Errorf("%s = %v, want 1", key, v)
		}
	}
	if v := series["mfiblocks_pairs_total"]; v <= 0 {
		t.Errorf("mfiblocks_pairs_total = %v, want > 0", v)
	}
	if v := series["core_candidate_pairs_total"]; int(v) == 0 {
		t.Errorf("core_candidate_pairs_total missing")
	}
}

func TestMiddlewareConcurrentRequests(t *testing.T) {
	s, _, _ := testServer(t)
	s.Metrics = telemetry.NewRegistry()
	var wg sync.WaitGroup
	const perWorker = 10
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("concurrent GET = %d", rec.Code)
				}
			}
		}()
	}
	wg.Wait()
	series := scrape(t, s)
	if v := series[`http_requests_total{route="/api/stats",class="2xx"}`]; v != 4*perWorker {
		t.Errorf("concurrent count = %v, want %d", v, 4*perWorker)
	}
}

func TestReportEndpoint(t *testing.T) {
	s, g, res := testServer(t)
	body := get(t, s, "/api/report", http.StatusOK)
	var rep struct {
		SchemaVersion int `json:"schema_version"`
		Records       int `json:"records"`
		Stages        []struct {
			Name string `json:"name"`
		} `json:"stages"`
		Blocking *struct {
			Pairs int `json:"pairs"`
		} `json:"blocking"`
		Scoring *struct {
			Matches int `json:"matches"`
		} `json:"scoring"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != telemetry.ReportSchemaVersion {
		t.Errorf("schema_version = %d", rep.SchemaVersion)
	}
	if rep.Records != g.Collection.Len() {
		t.Errorf("records = %d, want %d", rep.Records, g.Collection.Len())
	}
	if rep.Blocking == nil || rep.Blocking.Pairs != len(res.Blocking.Pairs) {
		t.Errorf("blocking pairs mismatch: %+v", rep.Blocking)
	}
	if rep.Scoring == nil || rep.Scoring.Matches != len(res.Matches) {
		t.Errorf("scoring matches mismatch: %+v", rep.Scoring)
	}
	wantStages := []string{"preprocess", "blocking", "scoring", "rank"}
	if len(rep.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v", rep.Stages)
	}
	for i, w := range wantStages {
		if rep.Stages[i].Name != w {
			t.Errorf("stage[%d] = %q, want %q", i, rep.Stages[i].Name, w)
		}
	}
	// The scoring block always carries the kernel/memo fields, even when
	// they are zero (this fixture has no model, so the serial path skips
	// profiled extraction). Consumers key on presence, not value.
	var raw struct {
		Scoring map[string]json.RawMessage `json:"scoring"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"memo_hits", "memo_misses", "memo_evictions", "memo_entries", "interned_strings"} {
		if _, ok := raw.Scoring[k]; !ok {
			t.Errorf("scoring report missing %q field", k)
		}
	}
}

func TestNotFoundIsJSON(t *testing.T) {
	s, _, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/api/nosuch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("404 Content-Type = %q", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("404 body not a JSON error: %q", rec.Body.String())
	}
}

func TestErrorBodiesAreJSON(t *testing.T) {
	s, _, _ := testServer(t)
	for _, path := range []string{
		"/api/pair?a=abc&b=1",
		"/api/entity?book=xyz",
		"/api/search?certainty=0.3",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q", path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("GET %s body not a JSON error: %q", path, rec.Body.String())
		}
	}
}

func TestPprofOptIn(t *testing.T) {
	s, _, _ := testServer(t)
	// Off by default: the JSON 404 fallback answers.
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: %d", rec.Code)
	}
	s.EnablePprof()
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof after EnablePprof = %d", rec.Code)
	}
}
