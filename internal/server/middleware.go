package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// statusWriter captures the response status code (and bytes written)
// for the instrumentation middleware. WriteHeader-less handlers imply
// 200 on first Write, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// statusClass renders a code as its Prometheus-conventional class
// ("2xx", "4xx", ...).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// instrument wraps a handler with per-route telemetry: request counts
// by status class, latency histograms, and in-flight gauge. The route
// label is the registered pattern, not the raw URL, so cardinality
// stays bounded.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := s.metrics()
		inflight := reg.Gauge("http_inflight_requests", telemetry.L("route", route))
		inflight.Add(1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(t0)
		inflight.Add(-1)
		reg.Counter("http_requests_total",
			telemetry.L("route", route), telemetry.L("class", statusClass(sw.status))).Inc()
		reg.Timer("http_request_seconds", telemetry.L("route", route)).Observe(d)
		reg.Counter("http_response_bytes_total", telemetry.L("route", route)).Add(int64(sw.bytes))
		telemetry.Log().Debug("http request",
			"route", route, "status", sw.status, "bytes", sw.bytes, "elapsed", d)
	}
}

// handleMetrics renders the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics().WritePrometheus(w); err != nil {
		telemetry.Log().Warn("metrics render failed", "err", err)
	}
}

// handleReport serves the pipeline's RunReport.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep := s.res.Report
	if rep == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no run report recorded"))
		return
	}
	writeJSON(w, rep)
}

// handleTrace serves the last run's trace as Chrome trace-event JSON —
// the same bytes -trace-out writes, fetchable for Perfetto without
// shell access to the serving host.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.res.Trace
	if tr == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("run was not traced (start yvserve with -trace)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := tr.WriteChrome(w); err != nil {
		telemetry.Log().Warn("trace render failed", "err", err)
	}
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in (the
// yvserve -pprof flag) because profiles expose internals that have no
// place on a public deployment surface.
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
