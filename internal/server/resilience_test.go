package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// call invokes a middleware-wrapped handler directly (for synthetic
// routes that are not registered on the mux).
func call(h http.HandlerFunc, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	return rec
}

func jsonError(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("body is not a JSON error: %q", rec.Body.String())
	}
	return e.Error
}

// TestPanicRecovery: a panicking handler yields a JSON 500 and a counter
// increment, and the server keeps answering afterwards.
func TestPanicRecovery(t *testing.T) {
	s, _, _ := testServer(t)
	s.Metrics = telemetry.NewRegistry()

	boom := s.handler("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rec := call(boom, "/boom")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	jsonError(t, rec)

	// The server is still alive and the panic is visible in /metrics.
	get(t, s, "/api/stats?certainty=0.3", http.StatusOK)
	series := scrape(t, s)
	if v := series[`http_panics_total{route="boom"}`]; v != 1 {
		t.Errorf("http_panics_total = %v, want 1", v)
	}
	if v := series[`http_requests_total{route="boom",class="5xx"}`]; v != 1 {
		t.Errorf("5xx count = %v, want 1", v)
	}
}

// TestPanicAfterPartialWrite: under a deadline the response is buffered,
// so a handler that writes half a body and then panics still produces a
// clean JSON 500 instead of garbage + error.
func TestPanicAfterPartialWrite(t *testing.T) {
	s, _, _ := testServer(t)
	s.Metrics = telemetry.NewRegistry()
	s.RequestTimeout = time.Second

	h := s.handler("halfway", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"partial":`))
		panic("mid-body")
	})
	rec := call(h, "/halfway")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "partial") {
		t.Errorf("partial output leaked: %q", rec.Body.String())
	}
	jsonError(t, rec)
}

// TestLoadShedding: requests beyond MaxInflight get JSON 503 with
// Retry-After and an http_shed_total increment; capacity frees up again
// once the slow request finishes.
func TestLoadShedding(t *testing.T) {
	s, _, _ := testServer(t)
	s.Metrics = telemetry.NewRegistry()
	s.MaxInflight = 1

	entered := make(chan struct{})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	slow := s.handler("slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		writeJSON(w, map[string]string{"ok": "true"})
	})

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- call(slow, "/slow") }()
	<-entered

	rec := call(s.handler("fast", s.handleStats), "/api/stats?certainty=0.3")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("503 lacks Retry-After")
	}
	jsonError(t, rec)

	close(release)
	if slowRec := <-done; slowRec.Code != http.StatusOK {
		t.Fatalf("slow request = %d, want 200", slowRec.Code)
	}

	// Capacity is back: the same route answers normally now.
	rec = call(s.handler("fast", s.handleStats), "/api/stats?certainty=0.3")
	if rec.Code != http.StatusOK {
		t.Fatalf("request after drain = %d, want 200", rec.Code)
	}

	series := scrape(t, s)
	if v := series[`http_shed_total{route="fast"}`]; v != 1 {
		t.Errorf("http_shed_total = %v, want 1", v)
	}
	if v := series[`http_requests_total{route="fast",class="5xx"}`]; v != 1 {
		t.Errorf("shed 5xx count = %v, want 1", v)
	}
}

// TestRequestDeadline: a handler that outlives RequestTimeout yields an
// immediate JSON 503 and an http_timeouts_total increment; its late
// output is discarded.
func TestRequestDeadline(t *testing.T) {
	s, _, _ := testServer(t)
	s.Metrics = telemetry.NewRegistry()
	s.RequestTimeout = 20 * time.Millisecond

	release := make(chan struct{})
	defer close(release)
	stuck := s.handler("stuck", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("you should never see this"))
		<-release
	})
	rec := call(stuck, "/stuck")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d, want 503", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "never see") {
		t.Errorf("stale handler output leaked: %q", rec.Body.String())
	}
	msg := jsonError(t, rec)
	if !strings.Contains(msg, "deadline") {
		t.Errorf("error %q does not mention the deadline", msg)
	}
	series := scrape(t, s)
	if v := series[`http_timeouts_total{route="stuck"}`]; v != 1 {
		t.Errorf("http_timeouts_total = %v, want 1", v)
	}
}

// TestFastRequestsUnaffectedByDeadline: the buffered path is transparent
// for handlers that finish in time — status, headers, and body all pass
// through.
func TestFastRequestsUnaffectedByDeadline(t *testing.T) {
	s, _, _ := testServer(t)
	s.RequestTimeout = 5 * time.Second
	body := get(t, s, "/api/stats?certainty=0.3", http.StatusOK)
	var out struct {
		Records int `json:"records"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Records == 0 {
		t.Error("buffered response dropped the body")
	}
	rec := call(s.handler("nf", s.handleNotFound), "/api/nosuch")
	if rec.Code != http.StatusNotFound {
		t.Errorf("buffered 404 = %d", rec.Code)
	}
}

// TestStatusCodeTable pins the full error surface: 400 for malformed
// requests, 404 for lookup misses, 500 for panics, 503 for shed load —
// every body a JSON error object.
func TestStatusCodeTable(t *testing.T) {
	s, _, res := testServer(t)
	s.Metrics = telemetry.NewRegistry()
	if len(res.Matches) == 0 {
		t.Fatal("no matches")
	}

	cases := []struct {
		name string
		path string
		want int
	}{
		{"bad certainty", "/api/search?last=Foa&certainty=abc", http.StatusBadRequest},
		{"missing name", "/api/search?certainty=0.3", http.StatusBadRequest},
		{"bad book id", "/api/entity?book=xyz", http.StatusBadRequest},
		{"self pair", "/api/pair?a=7&b=7", http.StatusBadRequest},
		{"unknown book", "/api/entity?book=42", http.StatusNotFound},
		{"unknown pair", "/api/pair?a=1&b=2", http.StatusNotFound},
		{"unknown endpoint", "/api/nosuch", http.StatusNotFound},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, tc.path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: GET %s = %d, want %d", tc.name, tc.path, rec.Code, tc.want)
			continue
		}
		jsonError(t, rec)
	}

	// 500: panic path.
	rec := call(s.handler("p", func(w http.ResponseWriter, r *http.Request) { panic("x") }), "/p")
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic route = %d, want 500", rec.Code)
	}
	jsonError(t, rec)

	// 503: shed path (capacity zero-width: one request already counted
	// by the panic above is gone, so hold one open).
	s.MaxInflight = 1
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	slow := s.handler("hold", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})
	go call(slow, "/hold")
	<-entered
	rec = call(s.handler("shed", s.handleStats), "/api/stats")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("shed route = %d, want 503", rec.Code)
	}
	jsonError(t, rec)
}

// TestEmptyResultsSerializeAsArrays: empty search results are [] (not
// null), and narrative events always carry an "alternatives" array.
func TestEmptyResultsSerializeAsArrays(t *testing.T) {
	s, g, _ := testServer(t)

	body := get(t, s, "/api/search?last=zzzznosuchname&certainty=0.3", http.StatusOK)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["entities"]) == "null" {
		t.Errorf(`empty search serialized "entities": null`)
	}
	var ents []json.RawMessage
	if err := json.Unmarshal(raw["entities"], &ents); err != nil || len(ents) != 0 {
		t.Errorf("entities = %s, want []", raw["entities"])
	}

	book := g.Collection.Records[0].BookID
	body = get(t, s, "/api/narrative?book="+jsonInt(book)+"&certainty=0.3", http.StatusOK)
	var nar struct {
		Subject string `json:"subject"`
		Events  []map[string]json.RawMessage
	}
	if err := json.Unmarshal(body, &nar); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(nar.Subject) != nar.Subject {
		t.Errorf("subject %q has stray spaces", nar.Subject)
	}
	for i, ev := range nar.Events {
		alts, ok := ev["alternatives"]
		if !ok {
			t.Errorf("event %d omits alternatives", i)
			continue
		}
		if string(alts) == "null" {
			t.Errorf("event %d serialized alternatives: null", i)
		}
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestJoinName pins the trimming join used for entity names and
// narrative subjects.
func TestJoinName(t *testing.T) {
	cases := []struct{ first, last, want string }{
		{"Guido", "Foa", "Guido Foa"},
		{"Guido", "", "Guido"},
		{"", "Foa", "Foa"},
		{"", "", ""},
	}
	for _, tc := range cases {
		if got := joinName(tc.first, tc.last); got != tc.want {
			t.Errorf("joinName(%q, %q) = %q, want %q", tc.first, tc.last, got, tc.want)
		}
	}
}
