package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"

	"repro/internal/telemetry"
)

// The resilience layer sits between the instrumentation middleware and
// every handler, so its 500/503 responses land in the request counters
// like any other outcome. It provides, outermost first:
//
//   - load shedding: beyond MaxInflight concurrent requests, respond
//     JSON 503 with Retry-After instead of queueing without bound;
//   - a per-request deadline: the handler runs in a goroutine against a
//     buffered response; if it misses the deadline the client gets a
//     JSON 503 now and the stale result is discarded;
//   - panic recovery: a panicking handler becomes a JSON 500 and an
//     http_panics_total increment; the server keeps serving.

// resilient wraps h with the shed → timeout → recover stack.
func (s *Server) resilient(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if max := s.MaxInflight; max > 0 && n > int64(max) {
			s.metrics().Counter(telemetry.FamilyHTTPShed, telemetry.L("route", route)).Inc()
			telemetry.Log().Warn("shedding request", "route", route, "inflight", n, "max", max)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("server at capacity (%d requests in flight)", max))
			return
		}
		if s.RequestTimeout <= 0 {
			s.recovering(route, h, w, r)
			return
		}
		s.withDeadline(route, h, w, r)
	}
}

// recovering runs h, converting a panic into a JSON 500. When the
// response is still buffered (the deadline path), partial output from
// before the panic is discarded so the error body is well-formed.
func (s *Server) recovering(route string, h http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				// The conventional "hang up without logging" sentinel.
				panic(p)
			}
			s.metrics().Counter(telemetry.FamilyHTTPPanics, telemetry.L("route", route)).Inc()
			telemetry.Log().Error("handler panic",
				"route", route, "panic", p, "stack", string(debug.Stack()))
			if b, ok := w.(*bufferedResponse); ok {
				b.reset()
			}
			httpError(w, http.StatusInternalServerError, errors.New("internal server error"))
		}
	}()
	h(w, r)
}

// withDeadline runs h against a buffered response in a goroutine and
// races it with the request deadline. On time, the buffer is flushed to
// the client; on timeout the client gets a 503 immediately and the
// handler's eventual output is dropped. The handler also sees the
// deadline on its context, so context-aware work can stop early.
func (s *Server) withDeadline(route string, h http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
	defer cancel()
	buf := &bufferedResponse{header: make(http.Header)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.recovering(route, h, buf, r.WithContext(ctx))
	}()
	select {
	case <-done:
		buf.flush(w)
	case <-ctx.Done():
		s.metrics().Counter(telemetry.FamilyHTTPTimeouts, telemetry.L("route", route)).Inc()
		telemetry.Log().Warn("request deadline exceeded", "route", route, "timeout", s.RequestTimeout)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("request exceeded %s deadline", s.RequestTimeout))
	}
}

// bufferedResponse captures a handler's response so the deadline path
// can either forward it whole or discard it. Only the handler goroutine
// touches it until done is closed; after a timeout nobody reads it, so
// no locking is needed.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.body.Write(p)
}

// reset drops everything written so far (the panic-recovery path).
func (b *bufferedResponse) reset() {
	b.header = make(http.Header)
	b.status = 0
	b.body.Reset()
}

// flush replays the buffered response onto the real writer.
func (b *bufferedResponse) flush(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		h[k] = vs
	}
	if b.status != 0 && b.status != http.StatusOK {
		w.WriteHeader(b.status)
	}
	if b.body.Len() > 0 {
		w.Write(b.body.Bytes())
	}
}
