package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/telemetry/trace"
)

// TestMetricsContentType pins the scrape contract: Prometheus requires
// the text exposition format to be served as text/plain with the
// version parameter.
func TestMetricsContentType(t *testing.T) {
	s, _, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	want := "text/plain; version=0.0.4; charset=utf-8"
	if got := rec.Header().Get("Content-Type"); got != want {
		t.Fatalf("Content-Type = %q, want %q", got, want)
	}
}

// TestTraceNotTraced pins the untraced default: /api/trace is a 404
// that tells the operator how to enable it, not an empty export.
func TestTraceNotTraced(t *testing.T) {
	s, _, _ := testServer(t)
	get(t, s, "/api/trace", http.StatusNotFound)
}

// TestTraceEndpoint runs a traced resolution and pins the endpoint: the
// Chrome trace-event JSON served at /api/trace is the same export
// -trace-out writes — valid JSON, non-empty, span events present.
func TestTraceEndpoint(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 100
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz}
	opts.Trace = trace.New()
	res, err := core.Run(opts, g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	s := New(res, g.Collection)

	req := httptest.NewRequest(http.MethodGet, "/api/trace", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/trace = %d (%s)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type = %q", got)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var run bool
	for _, e := range out.TraceEvents {
		if e.Ph == "X" && e.Name == "run" {
			run = true
		}
	}
	if !run {
		t.Fatalf("trace has no run span (%d events)", len(out.TraceEvents))
	}
}
