// Package server exposes a resolved collection over HTTP — the paper's
// deployment surface: "a person searching for perished relatives can
// control the size of the response by tuning a certainty parameter in a
// Web-query interface", while "a user app relaying historical
// information ... requires a single deterministic answer".
//
// Endpoints (all JSON):
//
//	GET /api/search?first=&last=&certainty=0.3   relative search
//	GET /api/entity?book=1016196&certainty=0.3   the report's entity
//	GET /api/narrative?book=1016196&certainty=0.3 the entity's narrative
//	GET /api/pair?a=1016196&b=1016197            re-score one report pair
//	GET /api/stats                               collection statistics
//	GET /api/report                              the pipeline's RunReport
//	GET /api/trace                               the run's Chrome trace-event JSON
//	GET /metrics                                 Prometheus text format
//
// Every handler runs behind an instrumentation middleware recording
// per-route request counts by status class, latency histograms, and
// response sizes into the server's telemetry registry — the same one
// the pipeline stages report into, so one /metrics scrape shows both.
// Under the instrumentation sits a resilience layer (resilience.go):
// load shedding beyond MaxInflight (JSON 503 + Retry-After), a
// per-request deadline (JSON 503 on expiry), and panic recovery (JSON
// 500; the server keeps serving).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/narrative"
	"repro/internal/record"
	"repro/internal/telemetry"
)

// Server serves one resolution.
type Server struct {
	res  *core.Resolution
	coll *record.Collection
	mux  *http.ServeMux
	// DefaultCertainty applies when the query omits the parameter.
	DefaultCertainty float64
	// MaxResults caps search responses.
	MaxResults int
	// MaxInflight caps concurrent requests across all instrumented
	// routes; excess requests are shed with JSON 503 + Retry-After.
	// Zero means unlimited.
	MaxInflight int
	// RequestTimeout bounds how long a client waits on one request; a
	// handler that misses the deadline yields a JSON 503. Zero disables
	// the deadline.
	RequestTimeout time.Duration
	// Metrics is the registry behind /metrics and the request
	// middleware; nil falls back to telemetry.Default() (which is also
	// where the pipeline reports unless overridden).
	Metrics *telemetry.Registry

	inflight atomic.Int64
}

// New builds a server over a finished resolution. The collection is the
// one the resolution was computed over (used for narratives, which want
// the raw values).
func New(res *core.Resolution, coll *record.Collection) *Server {
	s := &Server{
		res:              res,
		coll:             coll,
		mux:              http.NewServeMux(),
		DefaultCertainty: 0.0,
		MaxResults:       50,
	}
	s.mux.HandleFunc("GET /api/search", s.handler("/api/search", s.handleSearch))
	s.mux.HandleFunc("GET /api/entity", s.handler("/api/entity", s.handleEntity))
	s.mux.HandleFunc("GET /api/narrative", s.handler("/api/narrative", s.handleNarrative))
	s.mux.HandleFunc("GET /api/pair", s.handler("/api/pair", s.handlePair))
	s.mux.HandleFunc("GET /api/stats", s.handler("/api/stats", s.handleStats))
	s.mux.HandleFunc("GET /api/report", s.handler("/api/report", s.handleReport))
	s.mux.HandleFunc("GET /api/trace", s.handler("/api/trace", s.handleTrace))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Unmatched paths get a JSON 404 (and land in the middleware's
	// counters) instead of net/http's plain-text default.
	s.mux.HandleFunc("/", s.handler("other", s.handleNotFound))
	return s
}

// handler is the standard middleware stack: instrumentation outermost,
// so shed/timeout/panic outcomes are counted like any other status, then
// the resilience layer, then the handler itself.
func (s *Server) handler(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrument(route, s.resilient(route, h))
}

func (s *Server) metrics() *telemetry.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return telemetry.Default()
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	httpError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// entityJSON is the wire form of a resolved entity.
type entityJSON struct {
	Reports   []int64             `json:"reports"`
	Name      string              `json:"name"`
	Values    map[string][]string `json:"values"`
	Narrative string              `json:"narrative,omitempty"`
}

// joinName joins name parts with single spaces, skipping missing parts
// — "Guido"+"" is "Guido", not "Guido ".
func joinName(first, last string) string {
	switch {
	case first == "":
		return last
	case last == "":
		return first
	}
	return first + " " + last
}

func toJSON(e *core.Entity, withNarrative bool) entityJSON {
	out := entityJSON{Reports: e.Reports, Values: make(map[string][]string)}
	first, _ := e.Best(record.FirstName)
	last, _ := e.Best(record.LastName)
	out.Name = joinName(first, last)
	for t, vs := range e.Values {
		for _, v := range vs {
			out.Values[t.String()] = append(out.Values[t.String()], v.Value)
		}
	}
	if withNarrative {
		out.Narrative = e.Narrative()
	}
	return out
}

func (s *Server) certainty(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("certainty")
	if raw == "" {
		return s.DefaultCertainty, nil
	}
	c, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(c) || math.IsInf(c, 0) {
		// ParseFloat accepts "NaN" and "Inf", which would silently break
		// the sorted certainty cut; reject them like any other bad input.
		return 0, fmt.Errorf("bad certainty %q", raw)
	}
	return c, nil
}

// handlePair re-scores an arbitrary report pair through the resolution's
// cached record profiles — repeated queries pay feature extraction once
// per report, not once per request.
func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	a, errA := strconv.ParseInt(r.URL.Query().Get("a"), 10, 64)
	b, errB := strconv.ParseInt(r.URL.Query().Get("b"), 10, 64)
	if errA != nil || errB != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("need numeric a and b book ids"))
		return
	}
	m, err := s.res.ScorePair(a, b)
	if err != nil {
		// Self-pairing is a malformed request; only unknown BookIDs are
		// lookup misses.
		code := http.StatusNotFound
		if errors.Is(err, core.ErrSelfPair) {
			code = http.StatusBadRequest
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, struct {
		A          int64   `json:"a"`
		B          int64   `json:"b"`
		Score      float64 `json:"score"`
		BlockScore float64 `json:"block_score"`
	}{A: m.Pair.A, B: m.Pair.B, Score: m.Score, BlockScore: m.BlockScore})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	certainty, err := s.certainty(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := core.Query{
		First:     r.URL.Query().Get("first"),
		Last:      r.URL.Query().Get("last"),
		Certainty: certainty,
	}
	if q.First == "" && q.Last == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("need first or last"))
		return
	}
	hits := s.res.Search(q)
	truncated := false
	if len(hits) > s.MaxResults {
		hits = hits[:s.MaxResults]
		truncated = true
	}
	out := struct {
		Certainty float64      `json:"certainty"`
		Truncated bool         `json:"truncated"`
		Entities  []entityJSON `json:"entities"`
	}{Certainty: q.Certainty, Truncated: truncated,
		// Non-nil even when empty: clients always see "entities": [].
		Entities: make([]entityJSON, 0, len(hits))}
	for _, e := range hits {
		out.Entities = append(out.Entities, toJSON(e, false))
	}
	writeJSON(w, out)
}

func (s *Server) bookEntity(w http.ResponseWriter, r *http.Request) (*core.Entity, bool) {
	certainty, err := s.certainty(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, false
	}
	book, err := strconv.ParseInt(r.URL.Query().Get("book"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad book id"))
		return nil, false
	}
	e, ok := s.res.EntityOf(book, certainty)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("report %d not found", book))
		return nil, false
	}
	return e, true
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	e, ok := s.bookEntity(w, r)
	if !ok {
		return
	}
	writeJSON(w, toJSON(e, true))
}

func (s *Server) handleNarrative(w http.ResponseWriter, r *http.Request) {
	e, ok := s.bookEntity(w, r)
	if !ok {
		return
	}
	nb := &narrative.Builder{Coll: s.coll}
	first, _ := e.Best(record.FirstName)
	last, _ := e.Best(record.LastName)
	n := nb.Build(joinName(first, last), e.Reports)

	type eventJSON struct {
		Kind         string   `json:"kind"`
		Text         string   `json:"text"`
		Confidence   float64  `json:"confidence"`
		Support      []int64  `json:"support"`
		Alternatives []string `json:"alternatives"`
	}
	// Slices are initialized non-nil so empty results serialize as []
	// and "alternatives" is always present, never null or omitted.
	out := struct {
		Subject string      `json:"subject"`
		Reports []int64     `json:"reports"`
		Events  []eventJSON `json:"events"`
	}{Subject: n.Subject, Reports: n.Reports, Events: make([]eventJSON, 0, len(n.Events))}
	for _, ev := range n.Events {
		ej := eventJSON{
			Kind:         ev.Kind.String(),
			Text:         ev.Text,
			Confidence:   ev.Confidence,
			Support:      ev.Support,
			Alternatives: make([]string, 0, len(ev.Alternatives)),
		}
		for _, alt := range ev.Alternatives {
			ej.Alternatives = append(ej.Alternatives, alt.Text)
		}
		out.Events = append(out.Events, ej)
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	certainty, err := s.certainty(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ents := s.res.Clusters(certainty)
	multi := 0
	for _, e := range ents {
		if len(e.Reports) > 1 {
			multi++
		}
	}
	writeJSON(w, struct {
		Records     int     `json:"records"`
		Matches     int     `json:"ranked_matches"`
		Certainty   float64 `json:"certainty"`
		Entities    int     `json:"entities"`
		MultiReport int     `json:"multi_report_entities"`
	}{
		Records:     s.coll.Len(),
		Matches:     len(s.res.Matches),
		Certainty:   certainty,
		Entities:    len(ents),
		MultiReport: multi,
	})
}

// writeJSON is the single success path: every handler responds through
// it so Content-Type and encoding are uniform.
func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus writes v as indented JSON with the given status.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers (and possibly part of the body) are gone; log is the
		// only remaining channel.
		telemetry.Log().Warn("response encode failed", "err", err)
	}
}

// httpError is the single error path: a JSON {"error": ...} body with
// the given status, never plain text.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSONStatus(w, code, map[string]string{"error": err.Error()})
}
