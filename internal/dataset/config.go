package dataset

import (
	"fmt"

	"repro/internal/gazetteer"
	"repro/internal/record"
)

// Config controls generation. The zero value is not usable; start from a
// preset (ItalyConfig, RandomSetConfig, FullShapeConfig) and override.
type Config struct {
	// Seed drives all randomness; equal seeds give identical datasets.
	Seed int64
	// Persons is the number of ground-truth individuals to create.
	Persons int
	// Communities and their relative weights; reports are split between
	// them proportionally. Must be non-empty with positive weights.
	Communities []CommunityWeight
	// TestimonyFraction is the probability a report arrives as a Page of
	// Testimony rather than through a victim list.
	TestimonyFraction float64
	// ReportsDist[i] is the relative weight of a person receiving i+1
	// reports. Length at most 8 (the archival experts' duplicate bound).
	ReportsDist []float64
	// MVSubmitterShare, when positive, routes this fraction of all
	// testimony reports through one extreme-volume submitter with the
	// fixed pattern {First, Last, Father, BirthPlace, DeathPlace}.
	MVSubmitterShare float64
	// ListCount is the number of victim lists to spread list reports
	// over; 0 derives one list per ~150 list reports.
	ListCount int
	// TownsPerCounty sizes the synthetic gazetteer.
	TownsPerCounty int

	// Corruption rates.
	VariantRate float64 // swap a name for an equivalence-class variant
	TypoRate    float64 // clerical error in a name
	YearSlip    float64 // birth year off by 1-3
	SecondName  float64 // add a second first name
}

// CommunityWeight pairs a community with its sampling weight.
type CommunityWeight struct {
	Comm   gazetteer.Community
	Weight float64
}

// Validate reports the first configuration problem.
func (c *Config) Validate() error {
	switch {
	case c.Persons <= 0:
		return fmt.Errorf("dataset: Persons must be positive, got %d", c.Persons)
	case len(c.Communities) == 0:
		return fmt.Errorf("dataset: at least one community required")
	case len(c.ReportsDist) == 0 || len(c.ReportsDist) > MaxReportsPerPerson:
		return fmt.Errorf("dataset: ReportsDist length must be 1..%d, got %d", MaxReportsPerPerson, len(c.ReportsDist))
	case c.TestimonyFraction < 0 || c.TestimonyFraction > 1:
		return fmt.Errorf("dataset: TestimonyFraction %v out of [0,1]", c.TestimonyFraction)
	case c.MVSubmitterShare < 0 || c.MVSubmitterShare > 1:
		return fmt.Errorf("dataset: MVSubmitterShare %v out of [0,1]", c.MVSubmitterShare)
	}
	total := 0.0
	for _, cw := range c.Communities {
		if cw.Weight <= 0 {
			return fmt.Errorf("dataset: community %v has non-positive weight", cw.Comm)
		}
		total += cw.Weight
	}
	if total <= 0 {
		return fmt.Errorf("dataset: community weights sum to %v", total)
	}
	sum := 0.0
	for _, w := range c.ReportsDist {
		if w < 0 {
			return fmt.Errorf("dataset: negative ReportsDist weight %v", w)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("dataset: ReportsDist weights sum to %v", sum)
	}
	return nil
}

// MaxReportsPerPerson is the archival experts' estimate of the maximal
// number of duplicate reports per victim.
const MaxReportsPerPerson = 8

// defaultReportsDist skews toward single reports with a thin tail to eight,
// matching the experts' "eight records or less" estimate and the pilot
// observation that valid sets never exceeded seven.
var defaultReportsDist = []float64{0.50, 0.24, 0.12, 0.07, 0.04, 0.02, 0.008, 0.002}

// ItalyConfig mirrors the ItalySet: a homogeneous single-community set of
// about 9,499 records, testimony-heavy, with the MV submitter supplying
// roughly 1,400 of them.
func ItalyConfig() Config {
	return Config{
		Seed:    1944,
		Persons: 4600, // ~9.5K records under defaultReportsDist
		Communities: []CommunityWeight{
			{Comm: gazetteer.Italy, Weight: 1},
		},
		TestimonyFraction: 0.72,
		ReportsDist:       append([]float64(nil), defaultReportsDist...),
		MVSubmitterShare:  0.205, // ~1400/9499 over all reports, applied to testimonies
		TownsPerCounty:    10,
		VariantRate:       0.25,
		TypoRate:          0.04,
		YearSlip:          0.06,
		SecondName:        0.08,
	}
}

// RandomSetConfig mirrors the stratified 100K sample: six communities,
// list-heavy like the full database. persons scales the dataset
// (~2.1 reports/person).
func RandomSetConfig(persons int) Config {
	return Config{
		Seed:    1953,
		Persons: persons,
		Communities: []CommunityWeight{
			{Comm: gazetteer.Italy, Weight: 0.8},
			{Comm: gazetteer.Poland, Weight: 3.0},
			{Comm: gazetteer.Germany, Weight: 1.2},
			{Comm: gazetteer.Hungary, Weight: 1.6},
			{Comm: gazetteer.Greece, Weight: 0.7},
			{Comm: gazetteer.Soviet, Weight: 2.2},
		},
		TestimonyFraction: 0.34,
		ReportsDist:       append([]float64(nil), defaultReportsDist...),
		TownsPerCounty:    25,
		VariantRate:       0.25,
		TypoRate:          0.04,
		YearSlip:          0.06,
		SecondName:        0.08,
	}
}

// FullShapeConfig mirrors the full 6.5M database's *shape* at a reduced
// size: the same community mix and source structure as RandomSetConfig but
// with large lists dominating, so the pattern histogram reproduces the
// Figure-11 skew.
func FullShapeConfig(persons int) Config {
	c := RandomSetConfig(persons)
	c.Seed = 1991
	// Few, large lists per community give the Figure-11 skew: a handful
	// of head patterns covering most records.
	c.ListCount = persons / 6000
	if c.ListCount < 4 {
		c.ListCount = 4
	}
	return c
}

// prevalence profiles: probability a field appears on a report, by source
// kind. Testimonies are rich; lists are sparse and pattern-locked. The
// numbers target Table 3's full-set column once mixed at the configured
// testimony fraction.
type fieldProfile struct {
	last, first, gender            float64
	dob                            float64 // year present; day+month conditional
	father, mother, spouse         float64
	maiden, motherMaiden           float64
	perm, war, birthPlace, deathPl float64
	profession                     float64
}

var testimonyProfile = fieldProfile{
	last: 0.99, first: 0.99, gender: 0.97,
	dob:    0.72,
	father: 0.74, mother: 0.62, spouse: 0.55,
	maiden: 0.50, motherMaiden: 0.18,
	perm: 0.88, war: 0.70, birthPlace: 0.62, deathPl: 0.52,
	profession: 0.33,
}

var listProfile = fieldProfile{
	last: 0.97, first: 0.95, gender: 0.83,
	dob:    0.60,
	father: 0.41, mother: 0.29, spouse: 0.42,
	maiden: 0.35, motherMaiden: 0.09,
	perm: 0.61, war: 0.52, birthPlace: 0.23, deathPl: 0.25,
	profession: 0.36,
}

// italyAdjust nudges the testimony profile toward the Italy column of
// Table 3 (father names near-universal, birth places ~90%).
func italyAdjust(p fieldProfile) fieldProfile {
	p.father = 0.86
	p.birthPlace = 0.93
	p.perm = 0.92
	p.deathPl = 0.62
	p.mother = 0.60
	p.spouse = 0.42
	p.profession = 0.27
	return p
}

// italyListAdjust nudges the list profile for the Italian community's
// sources, which are unusually rich in birth and death places.
func italyListAdjust(p fieldProfile) fieldProfile {
	p.birthPlace = 0.65
	p.deathPl = 0.50
	p.gender = 0.92
	return p
}

// mvPattern is the MV submitter's fixed data pattern: first name, last
// name, father name, birth place, and death place, plus the gender the
// registrars derived from the first name.
var mvPattern = []record.ItemType{
	record.FirstName, record.LastName, record.FatherName, record.Gender,
	record.BirthCity, record.BirthCounty, record.BirthRegion, record.BirthCountry,
	record.DeathCity, record.DeathCounty, record.DeathRegion, record.DeathCountry,
}
