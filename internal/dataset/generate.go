package dataset

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/gazetteer"
	"repro/internal/names"
	"repro/internal/record"
)

// Generated bundles everything a generation run produces.
type Generated struct {
	Config     Config
	Records    []*record.Record
	Collection *record.Collection
	Gold       *Gold
	Persons    []*Person
	Families   []*Family
	Gaz        *gazetteer.Gazetteer
	// MVSource is the source key of the extreme-volume submitter, or ""
	// when the config did not request one.
	MVSource string
}

// logical report fields; each may expand to several item types.
type field int

const (
	fLast field = iota
	fFirst
	fGender
	fDOB
	fFather
	fMother
	fSpouse
	fMaiden
	fMotherMaiden
	fPerm
	fWar
	fBirthP
	fDeathP
	fProf
	numFields
)

// victimList is one extracted source with a fixed data pattern: every
// record drawn from the list carries exactly the list's fields.
type victimList struct {
	id      string
	comm    gazetteer.Community
	fields  [numFields]bool
	dobFull bool // day+month alongside the year
}

// submitter is a Page-of-Testimony submitter identified, as in the real
// database, by first name, last name, and city.
type submitter struct {
	key  string
	uses int
}

const firstBookID = 1000000

// Generate produces a dataset from the config. Equal configs (including
// Seed) produce byte-identical datasets.
func Generate(cfg Config) (*Generated, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gaz := gazetteer.Builtin(cfg.TownsPerCounty)

	// Split persons across communities by weight.
	persons, families := allocatePersons(rng, gaz, cfg)

	lists := makeLists(rng, cfg, persons)

	g := &Generated{
		Config:   cfg,
		Persons:  persons,
		Families: families,
		Gaz:      gaz,
		Gold:     NewGold(),
	}

	subPools := make(map[gazetteer.Community][]*submitter)
	if cfg.MVSubmitterShare > 0 {
		g.MVSource = "submitter:MV Verdi:Torino"
	}

	nextID := int64(firstBookID)
	for _, p := range persons {
		n := sampleDist(rng, cfg.ReportsDist) + 1
		for i := 0; i < n; i++ {
			rec := emitReport(rng, cfg, gaz, p, lists, subPools, g.MVSource, nextID)
			nextID++
			g.Records = append(g.Records, rec)
			g.Gold.Add(rec.BookID, p.ID, p.FamilyID)
		}
	}

	coll, err := record.NewCollection(g.Records)
	if err != nil {
		return nil, err
	}
	g.Collection = coll
	return g, nil
}

func allocatePersons(rng *rand.Rand, gaz *gazetteer.Gazetteer, cfg Config) ([]*Person, []*Family) {
	total := 0.0
	for _, cw := range cfg.Communities {
		total += cw.Weight
	}
	var persons []*Person
	var families []*Family
	id, famID := 0, 0
	remaining := cfg.Persons
	for i, cw := range cfg.Communities {
		count := int(float64(cfg.Persons) * cw.Weight / total)
		if i == len(cfg.Communities)-1 {
			count = remaining
		}
		if count <= 0 {
			continue
		}
		ps, fs := generatePersons(rng, gaz, cw.Comm, id, famID, count)
		persons = append(persons, ps...)
		families = append(families, fs...)
		id += len(ps)
		famID += len(fs)
		remaining -= len(ps)
	}
	return persons, families
}

// makeLists builds the victim lists, one pool per community, with the list
// pattern sampled once per list from the list profile.
func makeLists(rng *rand.Rand, cfg Config, persons []*Person) map[gazetteer.Community][]*victimList {
	// Estimate list-report volume to size the pools.
	perComm := make(map[gazetteer.Community]int)
	for _, p := range persons {
		perComm[p.Comm]++
	}
	meanReports := 0.0
	{
		sum, wsum := 0.0, 0.0
		for i, w := range cfg.ReportsDist {
			sum += float64(i+1) * w
			wsum += w
		}
		meanReports = sum / wsum
	}
	lists := make(map[gazetteer.Community][]*victimList)
	seq := 0
	for comm, count := range perComm {
		expected := float64(count) * meanReports * (1 - cfg.TestimonyFraction)
		n := cfg.ListCount
		if n == 0 {
			n = int(expected/150) + 1
		}
		for i := 0; i < n; i++ {
			l := &victimList{
				id:   fmt.Sprintf("list:%s-%04d", comm, seq),
				comm: comm,
			}
			seq++
			p := listProfile
			if comm == gazetteer.Italy {
				p = italyListAdjust(p)
			}
			l.fields[fLast] = rng.Float64() < p.last
			l.fields[fFirst] = rng.Float64() < p.first
			l.fields[fGender] = rng.Float64() < p.gender
			l.fields[fDOB] = rng.Float64() < p.dob
			l.fields[fFather] = rng.Float64() < p.father
			l.fields[fMother] = rng.Float64() < p.mother
			l.fields[fSpouse] = rng.Float64() < p.spouse
			l.fields[fMaiden] = rng.Float64() < p.maiden
			l.fields[fMotherMaiden] = rng.Float64() < p.motherMaiden
			l.fields[fPerm] = rng.Float64() < p.perm
			l.fields[fWar] = rng.Float64() < p.war
			l.fields[fBirthP] = rng.Float64() < p.birthPlace
			l.fields[fDeathP] = rng.Float64() < p.deathPl
			l.fields[fProf] = rng.Float64() < p.profession
			l.dobFull = rng.Float64() < 0.6
			lists[comm] = append(lists[comm], l)
		}
	}
	return lists
}

func sampleDist(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// emitReport materializes one victim report for person p.
func emitReport(rng *rand.Rand, cfg Config, gaz *gazetteer.Gazetteer, p *Person, lists map[gazetteer.Community][]*victimList, pools map[gazetteer.Community][]*submitter, mvSource string, bookID int64) *record.Record {
	rec := &record.Record{BookID: bookID}

	var present [numFields]bool
	dobFull := false

	isTestimony := rng.Float64() < cfg.TestimonyFraction
	isMV := false
	if isTestimony && mvSource != "" && p.Comm == gazetteer.Italy && rng.Float64() < cfg.MVSubmitterShare/maxf(cfg.TestimonyFraction, 0.01) {
		isMV = true
	}

	switch {
	case isMV:
		rec.Kind = record.Testimony
		rec.Source = mvSource
		present[fFirst], present[fLast], present[fFather] = true, true, true
		present[fGender], present[fBirthP], present[fDeathP] = true, true, true
	case isTestimony:
		rec.Kind = record.Testimony
		rec.Source = pickSubmitter(rng, pools, p.Comm, gaz)
		prof := testimonyProfile
		if p.Comm == gazetteer.Italy {
			prof = italyAdjust(prof)
		}
		present[fLast] = rng.Float64() < prof.last
		present[fFirst] = rng.Float64() < prof.first
		present[fGender] = rng.Float64() < prof.gender
		present[fDOB] = rng.Float64() < prof.dob
		present[fFather] = rng.Float64() < prof.father
		present[fMother] = rng.Float64() < prof.mother
		present[fSpouse] = rng.Float64() < prof.spouse
		present[fMaiden] = rng.Float64() < prof.maiden
		present[fMotherMaiden] = rng.Float64() < prof.motherMaiden
		present[fPerm] = rng.Float64() < prof.perm
		present[fWar] = rng.Float64() < prof.war
		present[fBirthP] = rng.Float64() < prof.birthPlace
		present[fDeathP] = rng.Float64() < prof.deathPl
		present[fProf] = rng.Float64() < prof.profession
		dobFull = rng.Float64() < 0.6
	default:
		rec.Kind = record.List
		pool := lists[p.Comm]
		l := pool[rng.Intn(len(pool))]
		rec.Source = l.id
		present = l.fields
		dobFull = l.dobFull
	}

	// Maiden names only exist for married women; spouse only if married.
	if p.Maiden == "" {
		present[fMaiden] = false
	}
	if p.Spouse == "" {
		present[fSpouse] = false
	}
	if p.MotherMdn == "" {
		present[fMotherMaiden] = false
	}

	if present[fLast] {
		rec.Add(record.LastName, emitName(rng, cfg, p.Last, false))
	}
	if present[fFirst] {
		rec.Add(record.FirstName, emitName(rng, cfg, p.First, true))
		if rng.Float64() < cfg.SecondName {
			corpus := names.CorpusFor(p.Comm.String())
			pool := corpus.MaleFirst
			if p.Gender == names.Female {
				pool = corpus.FemaleFirst
			}
			rec.Add(record.FirstName, pick(rng, pool))
		}
	}
	if present[fGender] {
		rec.Add(record.Gender, p.Gender)
	}
	if present[fDOB] {
		year := p.BirthYear
		if rng.Float64() < cfg.YearSlip {
			year += 1 + rng.Intn(3)
			if rng.Intn(2) == 0 {
				year = p.BirthYear - (1 + rng.Intn(3))
			}
		}
		rec.Add(record.BirthYear, strconv.Itoa(year))
		if dobFull {
			rec.Add(record.BirthMonth, strconv.Itoa(p.BirthMonth))
			rec.Add(record.BirthDay, strconv.Itoa(p.BirthDay))
		}
	}
	if present[fFather] {
		rec.Add(record.FatherName, emitName(rng, cfg, p.Father, true))
	}
	if present[fMother] {
		rec.Add(record.MotherName, emitName(rng, cfg, p.Mother, true))
	}
	if present[fSpouse] {
		rec.Add(record.SpouseName, emitName(rng, cfg, p.Spouse, true))
	}
	if present[fMaiden] {
		rec.Add(record.MaidenName, emitName(rng, cfg, p.Maiden, false))
	}
	if present[fMotherMaiden] {
		rec.Add(record.MotherMaiden, emitName(rng, cfg, p.MotherMdn, false))
	}
	if present[fPerm] {
		emitPlace(rng, cfg, rec, record.Permanent, p.PermPlace, gaz)
	}
	if present[fWar] {
		emitPlace(rng, cfg, rec, record.Wartime, p.WarPlace, gaz)
	}
	if present[fBirthP] {
		emitPlace(rng, cfg, rec, record.Birth, p.BirthPlace, gaz)
	}
	if present[fDeathP] {
		emitPlace(rng, cfg, rec, record.Death, p.DeathPlace, gaz)
	}
	if present[fProf] {
		rec.Add(record.Profession, p.Profession)
	}
	return rec
}

// emitName renders a person name with the configured variant and typo
// rates. Equivalence-class variants apply only to first-name-like values.
func emitName(rng *rand.Rand, cfg Config, name string, firstName bool) string {
	out := name
	if firstName && rng.Float64() < cfg.VariantRate {
		out = names.PickVariant(rng, out)
	}
	if rng.Float64() < cfg.TypoRate {
		out = names.Corrupt(rng, out)
	}
	return out
}

// emitPlace writes the four components of a place. The city may appear
// under a spelling variant; coarser components are copied verbatim.
func emitPlace(rng *rand.Rand, cfg Config, rec *record.Record, pt record.PlaceType, pl gazetteer.Place, gaz *gazetteer.Gazetteer) {
	city := pl.City
	if len(pl.Variants) > 0 && rng.Float64() < cfg.VariantRate*0.6 {
		city = pl.Variants[rng.Intn(len(pl.Variants))]
	}
	rec.Add(record.PlaceItem(pt, record.City), city)
	rec.Add(record.PlaceItem(pt, record.County), pl.County)
	rec.Add(record.PlaceItem(pt, record.Region), pl.Region)
	rec.Add(record.PlaceItem(pt, record.Country), pl.Country)
}

// pickSubmitter reuses an existing submitter (people filed 1-5 pages) or
// mints a new one.
func pickSubmitter(rng *rand.Rand, pools map[gazetteer.Community][]*submitter, comm gazetteer.Community, gaz *gazetteer.Gazetteer) string {
	pool := pools[comm]
	if len(pool) > 0 && rng.Float64() < 0.35 {
		s := pool[rng.Intn(len(pool))]
		if s.uses < 5 {
			s.uses++
			return s.key
		}
	}
	corpus := names.CorpusFor(comm.String())
	places := gaz.CommunityPlaces(comm)
	first := pick(rng, corpus.MaleFirst)
	if rng.Intn(2) == 0 {
		first = pick(rng, corpus.FemaleFirst)
	}
	key := fmt.Sprintf("submitter:%s %s:%s", first, pick(rng, corpus.Last), places[rng.Intn(len(places))].City)
	s := &submitter{key: key, uses: 1}
	pools[comm] = append(pools[comm], s)
	return key
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
