package dataset

import (
	"sort"

	"repro/internal/record"
)

// Gold is the matching ground truth: which entity (person) and family each
// report refers to.
type Gold struct {
	entityOf map[int64]int
	familyOf map[int64]int
	members  map[int][]int64 // entity -> BookIDs, insertion order
}

// NewGold returns an empty gold standard.
func NewGold() *Gold {
	return &Gold{
		entityOf: make(map[int64]int),
		familyOf: make(map[int64]int),
		members:  make(map[int][]int64),
	}
}

// Add registers a report's entity and family.
func (g *Gold) Add(bookID int64, entityID, familyID int) {
	g.entityOf[bookID] = entityID
	g.familyOf[bookID] = familyID
	g.members[entityID] = append(g.members[entityID], bookID)
}

// Entity returns the entity of a report; ok is false for unknown reports.
func (g *Gold) Entity(bookID int64) (int, bool) {
	e, ok := g.entityOf[bookID]
	return e, ok
}

// Family returns the family of a report; ok is false for unknown reports.
func (g *Gold) Family(bookID int64) (int, bool) {
	f, ok := g.familyOf[bookID]
	return f, ok
}

// Match reports whether two reports refer to the same person.
func (g *Gold) Match(a, b int64) bool {
	ea, okA := g.entityOf[a]
	eb, okB := g.entityOf[b]
	return okA && okB && ea == eb
}

// SameFamily reports whether two reports refer to members of one family
// (including the same person).
func (g *Gold) SameFamily(a, b int64) bool {
	fa, okA := g.familyOf[a]
	fb, okB := g.familyOf[b]
	return okA && okB && fa == fb
}

// TruePairs returns every intra-entity report pair, canonically ordered
// and sorted, the recall denominator of the evaluation.
func (g *Gold) TruePairs() []record.Pair {
	var pairs []record.Pair
	for _, ids := range g.members {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				pairs = append(pairs, record.MakePair(ids[i], ids[j]))
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs
}

// TruePairCount returns the number of intra-entity pairs without
// materializing them.
func (g *Gold) TruePairCount() int {
	n := 0
	for _, ids := range g.members {
		n += len(ids) * (len(ids) - 1) / 2
	}
	return n
}

// FamilyPairs returns every intra-family report pair (including
// intra-entity pairs), the denominator for family-level resolution.
func (g *Gold) FamilyPairs() []record.Pair {
	byFamily := make(map[int][]int64)
	for id, fam := range g.familyOf {
		byFamily[fam] = append(byFamily[fam], id)
	}
	var pairs []record.Pair
	for _, ids := range byFamily {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				pairs = append(pairs, record.MakePair(ids[i], ids[j]))
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs
}

// Entities returns the number of distinct entities with at least one
// report.
func (g *Gold) Entities() int { return len(g.members) }

// Reports returns the number of registered reports.
func (g *Gold) Reports() int { return len(g.entityOf) }

// ClusterSizes returns a histogram of entity cluster sizes: sizes[k] is the
// number of entities with exactly k reports.
func (g *Gold) ClusterSizes() map[int]int {
	h := make(map[int]int)
	for _, ids := range g.members {
		h[len(ids)]++
	}
	return h
}
