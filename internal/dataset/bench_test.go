package dataset

import (
	"math/rand"
	"testing"
)

func BenchmarkGenerateItaly(b *testing.B) {
	cfg := ItalyConfig()
	cfg.Persons = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateRandomSet(b *testing.B) {
	cfg := RandomSetConfig(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTagPairs(b *testing.B) {
	g := genSmall(b, 500)
	pairs := g.Gold.TruePairs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tagger := &Tagger{Gold: g.Gold, Coll: g.Collection, Rng: rand.New(rand.NewSource(int64(i)))}
		tagger.TagPairs(pairs)
	}
}
