package dataset

import (
	"math/rand"

	"repro/internal/record"
)

// Tag is one of the five grades the Yad Vashem archival experts assigned to
// candidate pairs.
type Tag uint8

// The five expert grades. A Maybe tag means the pair does not carry enough
// information to decide.
const (
	No Tag = iota
	ProbablyNo
	Maybe
	ProbablyYes
	Yes

	// NumTags is the number of grades.
	NumTags = int(Yes) + 1
)

var tagNames = [NumTags]string{"No", "Probably-No", "Maybe", "Probably Yes", "Yes"}

func (t Tag) String() string {
	if int(t) < NumTags {
		return tagNames[t]
	}
	return "Tag(?)"
}

// IsMatch reports whether the simplified grade counts as a match
// (Yes + Probably Yes, per Section 5.1).
func (t Tag) IsMatch() bool { return t >= ProbablyYes }

// TaggedPair is one expert-graded candidate pair.
type TaggedPair struct {
	Pair record.Pair
	Tag  Tag
}

// TagSet holds the expert grades for a set of candidate pairs.
type TagSet struct {
	Pairs []TaggedPair
	byKey map[record.Pair]Tag
}

// NewTagSet indexes tagged pairs.
func NewTagSet(pairs []TaggedPair) *TagSet {
	ts := &TagSet{Pairs: pairs, byKey: make(map[record.Pair]Tag, len(pairs))}
	for _, tp := range pairs {
		ts.byKey[tp.Pair] = tp.Tag
	}
	return ts
}

// Lookup returns the grade of a pair; ok is false for untagged pairs.
func (ts *TagSet) Lookup(p record.Pair) (Tag, bool) {
	t, ok := ts.byKey[p]
	return t, ok
}

// Len returns the number of tagged pairs.
func (ts *TagSet) Len() int { return len(ts.Pairs) }

// CountByTag returns a histogram over grades.
func (ts *TagSet) CountByTag() [NumTags]int {
	var h [NumTags]int
	for _, tp := range ts.Pairs {
		h[tp.Tag]++
	}
	return h
}

// Tagger simulates the archival experts: grades depend on ground truth and
// on the information content of the pair — sparse pairs draw Maybe grades,
// borderline evidence draws the Probably grades, and non-matching relatives
// (same family) are the hardest to reject.
type Tagger struct {
	Gold *Gold
	Coll *record.Collection
	Rng  *rand.Rand
}

// informativeTypes are the item types experts weigh when grading; place
// components count once per place role (via the city), and gender or
// profession alone decide nothing.
var informativeTypes = []record.ItemType{
	record.FirstName, record.LastName, record.FatherName, record.MotherName,
	record.SpouseName, record.MaidenName, record.MotherMaiden,
	record.BirthYear, record.BirthCity, record.PermCity, record.WarCity,
	record.DeathCity,
}

// sharedInfo counts the informative item types both records carry.
func sharedInfo(a, b *record.Record) int {
	pa, pb := a.Pattern(), b.Pattern()
	n := 0
	for _, t := range informativeTypes {
		if pa.Has(t) && pb.Has(t) {
			n++
		}
	}
	return n
}

// TagPairs grades candidate pairs. Pairs referencing unknown records are
// skipped.
func (tg *Tagger) TagPairs(pairs []record.Pair) *TagSet {
	tagged := make([]TaggedPair, 0, len(pairs))
	for _, p := range pairs {
		ra, rb := tg.Coll.ByID(p.A), tg.Coll.ByID(p.B)
		if ra == nil || rb == nil {
			continue
		}
		tagged = append(tagged, TaggedPair{Pair: p, Tag: tg.grade(p, ra, rb)})
	}
	return NewTagSet(tagged)
}

func (tg *Tagger) grade(p record.Pair, ra, rb *record.Record) Tag {
	info := sharedInfo(ra, rb)
	x := tg.Rng.Float64()
	if tg.Gold.Match(p.A, p.B) {
		switch {
		case info >= 5:
			return pickTag(x, [NumTags]float64{0, 0, 0.02, 0.12, 0.86})
		case info >= 3:
			return pickTag(x, [NumTags]float64{0, 0.02, 0.13, 0.40, 0.45})
		default:
			return pickTag(x, [NumTags]float64{0, 0.08, 0.57, 0.30, 0.05})
		}
	}
	if tg.Gold.SameFamily(p.A, p.B) {
		return pickTag(x, [NumTags]float64{0.22, 0.43, 0.30, 0.04, 0.01})
	}
	if info <= 2 {
		return pickTag(x, [NumTags]float64{0.48, 0.30, 0.20, 0.02, 0})
	}
	return pickTag(x, [NumTags]float64{0.74, 0.20, 0.05, 0.01, 0})
}

func pickTag(x float64, probs [NumTags]float64) Tag {
	for t := 0; t < NumTags; t++ {
		x -= probs[t]
		if x < 0 {
			return Tag(t)
		}
	}
	return Yes
}
