// Package dataset generates synthetic Names-Project-shaped datasets: ground
// truth persons and families, victim reports emitted through testimony and
// list sources with realistic field dropout and corruption, the matching
// gold standard, and a simulator of the archival experts' five-grade pair
// tags.
//
// The real Yad Vashem database is proprietary; the generator is calibrated
// to the paper's published marginals — field prevalence (Table 3), value
// cardinality (Table 4), data-pattern skew (Figure 11), duplicate cluster
// sizes of at most eight, and the presence of an extreme-volume submitter
// ("MV") with a fixed submission pattern.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/gazetteer"
	"repro/internal/names"
)

// Person is a ground-truth individual: the entity reports refer to.
type Person struct {
	ID       int
	FamilyID int
	Comm     gazetteer.Community

	Gender     string // names.Male or names.Female
	First      string
	Last       string
	Maiden     string // for married women
	Father     string
	Mother     string
	MotherMdn  string
	Spouse     string
	Profession string

	BirthDay, BirthMonth, BirthYear int

	BirthPlace gazetteer.Place
	PermPlace  gazetteer.Place
	WarPlace   gazetteer.Place
	DeathPlace gazetteer.Place
}

// Family is a nuclear family: two parents and their children, sharing a
// last name, places, and parent names — the structure behind the paper's
// family-level resolution discussion (the Capelluto example).
type Family struct {
	ID       int
	Comm     gazetteer.Community
	Last     string
	Members  []*Person
	HomeCity gazetteer.Place
}

// generatePersons builds families of persons for one community until the
// target count is reached. It returns persons in generation order.
func generatePersons(rng *rand.Rand, g *gazetteer.Gazetteer, comm gazetteer.Community, startID, startFamily, count int) ([]*Person, []*Family) {
	corpus := names.CorpusFor(comm.String())
	places := g.CommunityPlaces(comm)
	if len(places) == 0 {
		panic(fmt.Sprintf("dataset: no places for community %v", comm))
	}
	deaths := gazetteer.DeathSites()

	var persons []*Person
	var families []*Family
	id := startID
	famID := startFamily
	for len(persons) < count {
		fam := &Family{
			ID:       famID,
			Comm:     comm,
			Last:     pick(rng, corpus.Last),
			HomeCity: places[rng.Intn(len(places))],
		}
		famID++

		father := &Person{
			ID: id, FamilyID: fam.ID, Comm: comm,
			Gender: names.Male,
			First:  pick(rng, corpus.MaleFirst),
			Last:   fam.Last,
		}
		id++
		mother := &Person{
			ID: id, FamilyID: fam.ID, Comm: comm,
			Gender: names.Female,
			First:  pick(rng, corpus.FemaleFirst),
			Last:   fam.Last,
			Maiden: pick(rng, corpus.Last),
		}
		id++
		father.Spouse = mother.First
		mother.Spouse = father.First
		// Grandparent names for the parents themselves.
		father.Father = pick(rng, corpus.MaleFirst)
		father.Mother = pick(rng, corpus.FemaleFirst)
		father.MotherMdn = pick(rng, corpus.Last)
		mother.Father = pick(rng, corpus.MaleFirst)
		mother.Mother = pick(rng, corpus.FemaleFirst)
		mother.MotherMdn = pick(rng, corpus.Last)

		parentBirthYear := 1880 + rng.Intn(35) // 1880-1914
		fillVitals(rng, father, fam, places, deaths, parentBirthYear)
		fillVitals(rng, mother, fam, places, deaths, parentBirthYear+rng.Intn(6)-2)

		members := []*Person{father, mother}
		nChildren := rng.Intn(5) // 0..4
		for c := 0; c < nChildren; c++ {
			child := &Person{
				ID: id, FamilyID: fam.ID, Comm: comm,
				Last:      fam.Last,
				Father:    father.First,
				Mother:    mother.First,
				MotherMdn: mother.Maiden,
			}
			id++
			if rng.Intn(2) == 0 {
				child.Gender = names.Male
				child.First = pick(rng, corpus.MaleFirst)
			} else {
				child.Gender = names.Female
				child.First = pick(rng, corpus.FemaleFirst)
			}
			childYear := parentBirthYear + 20 + rng.Intn(22)
			fillVitals(rng, child, fam, places, deaths, childYear)
			members = append(members, child)
		}
		fam.Members = members
		families = append(families, fam)
		persons = append(persons, members...)
	}
	if len(persons) > count {
		persons = persons[:count]
	}
	return persons, families
}

// fillVitals assigns birth date, profession, and the four places.
func fillVitals(rng *rand.Rand, p *Person, fam *Family, places []gazetteer.Place, deaths []gazetteer.Place, birthYear int) {
	corpus := names.CorpusFor(p.Comm.String())
	p.BirthYear = birthYear
	p.BirthMonth = 1 + rng.Intn(12)
	p.BirthDay = 1 + rng.Intn(28)
	p.Profession = pick(rng, corpus.Professions)

	// Births happen near the family home; permanent residence is the home
	// city; the war-time place is the home or a nearby city; death is a
	// camp or the war-time place.
	p.PermPlace = fam.HomeCity
	if rng.Float64() < 0.7 {
		p.BirthPlace = fam.HomeCity
	} else {
		p.BirthPlace = places[rng.Intn(len(places))]
	}
	if rng.Float64() < 0.6 {
		p.WarPlace = fam.HomeCity
	} else {
		p.WarPlace = places[rng.Intn(len(places))]
	}
	if rng.Float64() < 0.65 {
		p.DeathPlace = deaths[rng.Intn(len(deaths))]
	} else {
		p.DeathPlace = p.WarPlace
	}
}

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}
