package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/record"
)

func genSmall(t testing.TB, persons int) *Generated {
	t.Helper()
	cfg := ItalyConfig()
	cfg.Persons = persons
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := genSmall(t, 300), genSmall(t, 300)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].String() != b.Records[i].String() {
			t.Fatalf("record %d differs:\n%s\n%s", i, a.Records[i], b.Records[i])
		}
		if a.Records[i].Source != b.Records[i].Source {
			t.Fatalf("record %d source differs", i)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	cfg := ItalyConfig()
	cfg.Persons = 200
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if a.Records[i].String() == b.Records[i].String() {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical datasets")
	}
}

func TestClusterSizesBounded(t *testing.T) {
	g := genSmall(t, 500)
	for size := range g.Gold.ClusterSizes() {
		if size < 1 || size > MaxReportsPerPerson {
			t.Errorf("cluster size %d outside 1..%d", size, MaxReportsPerPerson)
		}
	}
}

func TestEveryRecordInGold(t *testing.T) {
	g := genSmall(t, 300)
	for _, r := range g.Records {
		e, ok := g.Gold.Entity(r.BookID)
		if !ok {
			t.Fatalf("record %d missing from gold", r.BookID)
		}
		if e < 0 || e >= len(g.Persons) {
			t.Fatalf("record %d has entity %d outside person range", r.BookID, e)
		}
		if _, ok := g.Gold.Family(r.BookID); !ok {
			t.Fatalf("record %d missing family", r.BookID)
		}
	}
	if g.Gold.Reports() != len(g.Records) {
		t.Errorf("gold reports %d != records %d", g.Gold.Reports(), len(g.Records))
	}
}

func TestTruePairsConsistent(t *testing.T) {
	g := genSmall(t, 300)
	pairs := g.Gold.TruePairs()
	if len(pairs) != g.Gold.TruePairCount() {
		t.Errorf("TruePairs len %d != TruePairCount %d", len(pairs), g.Gold.TruePairCount())
	}
	for _, p := range pairs {
		if !g.Gold.Match(p.A, p.B) {
			t.Fatalf("true pair %v does not Match", p)
		}
		if !g.Gold.SameFamily(p.A, p.B) {
			t.Fatalf("same entity implies same family: %v", p)
		}
	}
	// FamilyPairs is a superset of TruePairs.
	famSet := map[record.Pair]bool{}
	for _, p := range g.Gold.FamilyPairs() {
		famSet[p] = true
	}
	for _, p := range pairs {
		if !famSet[p] {
			t.Fatalf("true pair %v missing from family pairs", p)
		}
	}
}

func TestMVSubmitterShape(t *testing.T) {
	g := genSmall(t, 800)
	if g.MVSource == "" {
		t.Fatal("Italy config must produce an MV submitter")
	}
	mv := 0
	wantPattern := map[record.ItemType]bool{}
	for _, ty := range mvPattern {
		wantPattern[ty] = true
	}
	for _, r := range g.Records {
		if r.Source != g.MVSource {
			continue
		}
		mv++
		if r.Kind != record.Testimony {
			t.Errorf("MV record %d is not a testimony", r.BookID)
		}
		for _, it := range r.Items {
			if !wantPattern[it.Type] {
				t.Errorf("MV record %d carries unexpected item type %v", r.BookID, it.Type)
			}
		}
	}
	share := float64(mv) / float64(len(g.Records))
	if share < 0.10 || share > 0.30 {
		t.Errorf("MV share = %.3f (%d of %d), want ~0.2", share, mv, len(g.Records))
	}
}

func TestSourcesWellFormed(t *testing.T) {
	g := genSmall(t, 300)
	for _, r := range g.Records {
		if r.Source == "" {
			t.Fatalf("record %d has no source", r.BookID)
		}
		switch r.Kind {
		case record.Testimony:
			if len(r.Source) < len("submitter:") || r.Source[:10] != "submitter:" {
				t.Errorf("testimony %d has source %q", r.BookID, r.Source)
			}
		case record.List:
			if r.Source[:5] != "list:" {
				t.Errorf("list record %d has source %q", r.BookID, r.Source)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	base := ItalyConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no persons", func(c *Config) { c.Persons = 0 }},
		{"no communities", func(c *Config) { c.Communities = nil }},
		{"bad testimony fraction", func(c *Config) { c.TestimonyFraction = 1.5 }},
		{"bad mv share", func(c *Config) { c.MVSubmitterShare = -0.1 }},
		{"long reports dist", func(c *Config) { c.ReportsDist = make([]float64, 9) }},
		{"empty reports dist", func(c *Config) { c.ReportsDist = nil }},
		{"negative weight", func(c *Config) { c.Communities[0].Weight = -1 }},
		{"negative dist weight", func(c *Config) { c.ReportsDist[0] = -1 }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Communities = append([]CommunityWeight(nil), base.Communities...)
		cfg.ReportsDist = append([]float64(nil), base.ReportsDist...)
		tc.mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate succeeded, want error", tc.name)
		}
	}
}

func TestPresetsValid(t *testing.T) {
	for _, cfg := range []Config{ItalyConfig(), RandomSetConfig(100), FullShapeConfig(100)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestTaggerGrading(t *testing.T) {
	g := genSmall(t, 500)
	tagger := &Tagger{Gold: g.Gold, Coll: g.Collection, Rng: rand.New(rand.NewSource(1))}

	// Tag all true pairs plus an equal number of random non-pairs.
	pairs := g.Gold.TruePairs()
	rng := rand.New(rand.NewSource(2))
	n := len(g.Records)
	for i := 0; i < len(g.Gold.TruePairs()); i++ {
		a := g.Records[rng.Intn(n)].BookID
		b := g.Records[rng.Intn(n)].BookID
		if a != b && !g.Gold.Match(a, b) {
			pairs = append(pairs, record.MakePair(a, b))
		}
	}
	ts := tagger.TagPairs(pairs)

	var matchYes, matchTotal, nonYes, nonTotal int
	for _, tp := range ts.Pairs {
		if g.Gold.Match(tp.Pair.A, tp.Pair.B) {
			matchTotal++
			if tp.Tag.IsMatch() {
				matchYes++
			}
		} else {
			nonTotal++
			if tp.Tag.IsMatch() {
				nonYes++
			}
		}
	}
	if matchTotal == 0 || nonTotal == 0 {
		t.Fatal("degenerate tag distribution")
	}
	if rate := float64(matchYes) / float64(matchTotal); rate < 0.6 {
		t.Errorf("only %.2f of true pairs graded match", rate)
	}
	if rate := float64(nonYes) / float64(nonTotal); rate > 0.1 {
		t.Errorf("%.2f of non-pairs graded match", rate)
	}
	// Histogram covers all five grades on this mix.
	hist := ts.CountByTag()
	for tag, c := range hist {
		if c == 0 {
			t.Errorf("grade %v never assigned", Tag(tag))
		}
	}
}

func TestTagSetLookup(t *testing.T) {
	p := record.MakePair(1, 2)
	ts := NewTagSet([]TaggedPair{{Pair: p, Tag: Maybe}})
	if got, ok := ts.Lookup(p); !ok || got != Maybe {
		t.Errorf("Lookup = %v, %v", got, ok)
	}
	if _, ok := ts.Lookup(record.MakePair(3, 4)); ok {
		t.Error("unknown pair should be !ok")
	}
	if ts.Len() != 1 {
		t.Errorf("Len = %d", ts.Len())
	}
}

func TestTagSemantics(t *testing.T) {
	if !Yes.IsMatch() || !ProbablyYes.IsMatch() {
		t.Error("Yes/ProbablyYes must be matches")
	}
	if Maybe.IsMatch() || ProbablyNo.IsMatch() || No.IsMatch() {
		t.Error("Maybe and below must not be matches")
	}
	for i := 0; i < NumTags; i++ {
		if Tag(i).String() == "Tag(?)" {
			t.Errorf("tag %d has no name", i)
		}
	}
}

func TestCommunityMixInRandomSet(t *testing.T) {
	g, err := Generate(RandomSetConfig(600))
	if err != nil {
		t.Fatal(err)
	}
	comms := map[string]int{}
	for _, p := range g.Persons {
		comms[p.Comm.String()]++
	}
	if len(comms) < 5 {
		t.Errorf("random set has only %d communities: %v", len(comms), comms)
	}
	if comms["Poland"] <= comms["Italy"] {
		t.Errorf("Poland should dominate Italy in the mix: %v", comms)
	}
}

func TestFamilyStructure(t *testing.T) {
	g := genSmall(t, 300)
	for _, fam := range g.Families {
		if len(fam.Members) < 2 {
			t.Fatalf("family %d has %d members", fam.ID, len(fam.Members))
		}
		father, mother := fam.Members[0], fam.Members[1]
		if father.Spouse != mother.First || mother.Spouse != father.First {
			t.Errorf("family %d spouses inconsistent", fam.ID)
		}
		for _, child := range fam.Members[2:] {
			if child.Father != father.First || child.Mother != mother.First {
				t.Errorf("family %d child parent names inconsistent", fam.ID)
			}
			if child.Last != fam.Last {
				t.Errorf("family %d child last name %q != %q", fam.ID, child.Last, fam.Last)
			}
		}
	}
}
