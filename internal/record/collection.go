package record

import (
	"fmt"
	"sort"
)

// Collection is an ordered set of records with index structures shared by
// the blocking algorithms: a BookID index and per-item posting lists.
type Collection struct {
	Records []*Record

	byID map[int64]int // BookID -> index into Records
}

// NewCollection builds a collection over the given records. BookIDs must be
// unique; duplicates return an error.
func NewCollection(records []*Record) (*Collection, error) {
	c := &Collection{
		Records: records,
		byID:    make(map[int64]int, len(records)),
	}
	for i, r := range records {
		if _, dup := c.byID[r.BookID]; dup {
			return nil, fmt.Errorf("record: duplicate BookID %d", r.BookID)
		}
		c.byID[r.BookID] = i
	}
	return c, nil
}

// Len returns the number of records.
func (c *Collection) Len() int { return len(c.Records) }

// ByID returns the record with the given BookID, or nil.
func (c *Collection) ByID(id int64) *Record {
	if i, ok := c.byID[id]; ok {
		return c.Records[i]
	}
	return nil
}

// Index returns the positional index of a BookID, or -1.
func (c *Collection) Index(id int64) int {
	if i, ok := c.byID[id]; ok {
		return i
	}
	return -1
}

// PatternCounts returns the number of records sharing each data pattern.
func (c *Collection) PatternCounts() map[Pattern]int {
	m := make(map[Pattern]int)
	for _, r := range c.Records {
		m[r.Pattern()]++
	}
	return m
}

// Prevalence returns, per item type, how many records carry at least one
// value of that type (Table 3).
func (c *Collection) Prevalence() [NumItemTypes]int {
	var counts [NumItemTypes]int
	for _, r := range c.Records {
		p := r.Pattern()
		for t := 0; t < NumItemTypes; t++ {
			if p.Has(ItemType(t)) {
				counts[t]++
			}
		}
	}
	return counts
}

// Cardinality returns, per item type, the number of distinct values and the
// total number of value occurrences (Table 4: items and records/item).
func (c *Collection) Cardinality() (distinct, occurrences [NumItemTypes]int) {
	sets := make([]map[string]struct{}, NumItemTypes)
	for t := range sets {
		sets[t] = make(map[string]struct{})
	}
	for _, r := range c.Records {
		for _, it := range r.Items {
			sets[it.Type][it.Value] = struct{}{}
			occurrences[it.Type]++
		}
	}
	for t, s := range sets {
		distinct[t] = len(s)
	}
	return distinct, occurrences
}

// Dictionary maps canonical item keys ("F:guido") to dense integer ids and
// back, and tracks per-item document frequency (number of records carrying
// the item). Itemset mining operates on the integer ids.
type Dictionary struct {
	ids   map[string]int
	keys  []string
	types []ItemType
	freq  []int
}

// NewDictionary returns an empty dictionary for incremental observation
// (see Observe).
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]int)}
}

// BuildDictionary encodes a collection: it assigns each distinct item key a
// dense id and counts its document frequency.
func BuildDictionary(c *Collection) *Dictionary {
	d := NewDictionary()
	for _, r := range c.Records {
		seen := make(map[int]struct{}, len(r.Items))
		for _, it := range r.Items {
			id := d.intern(it)
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			d.freq[id]++
		}
	}
	return d
}

// Observe interns one record's items, counts its document frequencies,
// and returns the record's encoded transaction — the incremental
// equivalent of BuildDictionary over a collection followed by Encode per
// record. Observing a record sequence in collection order yields the
// identical dictionary (same ids, same frequencies) and identical
// transactions, which is what lets a streaming ingest stage encode each
// record the moment it arrives and then drop it.
func (d *Dictionary) Observe(r *Record) []int {
	seen := make(map[int]struct{}, len(r.Items))
	ids := make([]int, 0, len(r.Items))
	for _, it := range r.Items {
		id := d.intern(it)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		d.freq[id]++
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (d *Dictionary) intern(it Item) int {
	k := it.Key()
	if id, ok := d.ids[k]; ok {
		return id
	}
	id := len(d.keys)
	d.ids[k] = id
	d.keys = append(d.keys, k)
	d.types = append(d.types, it.Type)
	d.freq = append(d.freq, 0)
	return id
}

// Len returns the number of distinct items.
func (d *Dictionary) Len() int { return len(d.keys) }

// ID returns the id of an item key and whether it is known.
func (d *Dictionary) ID(key string) (int, bool) {
	id, ok := d.ids[key]
	return id, ok
}

// Key returns the item key for an id.
func (d *Dictionary) Key(id int) string { return d.keys[id] }

// TypeOf returns the item type for an id.
func (d *Dictionary) TypeOf(id int) ItemType { return d.types[id] }

// Freq returns the document frequency of an id.
func (d *Dictionary) Freq(id int) int { return d.freq[id] }

// Encode converts a record to a sorted, deduplicated slice of item ids.
// Items absent from the dictionary are skipped.
func (d *Dictionary) Encode(r *Record) []int {
	seen := make(map[int]struct{}, len(r.Items))
	ids := make([]int, 0, len(r.Items))
	for _, it := range r.Items {
		id, ok := d.ids[it.Key()]
		if !ok {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// MostFrequent returns the item ids whose document frequency places them in
// the top `fraction` of all items (e.g. 0.0003 for the paper's .03% pruning
// rule), ties included. fraction <= 0 returns nil.
func (d *Dictionary) MostFrequent(fraction float64) []int {
	if fraction <= 0 || len(d.keys) == 0 {
		return nil
	}
	n := int(float64(len(d.keys)) * fraction)
	if n == 0 {
		n = 1
	}
	ids := make([]int, len(d.keys))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return d.freq[ids[a]] > d.freq[ids[b]] })
	if n > len(ids) {
		n = len(ids)
	}
	cut := d.freq[ids[n-1]]
	for n < len(ids) && d.freq[ids[n]] == cut {
		n++
	}
	out := make([]int, n)
	copy(out, ids[:n])
	sort.Ints(out)
	return out
}
