package record

import (
	"fmt"
	"sort"
	"strings"
)

// SourceKind distinguishes the two provenance classes of the Names Project.
type SourceKind uint8

// Source kinds: a Page of Testimony filed by an individual submitter, or an
// extracted victim list (transport manifest, camp registry, ...).
const (
	Testimony SourceKind = iota
	List
)

func (k SourceKind) String() string {
	if k == Testimony {
		return "Testimony"
	}
	return "List"
}

// Record is one victim report: a BookID, its provenance, and a bag of typed
// items. Multiple items of the same type (e.g. two first names) are allowed
// and common.
type Record struct {
	// BookID is the sequential identifier assigned when the report was
	// entered into the database.
	BookID int64
	// Source identifies the report's origin: the victim list it was
	// extracted from, or the submitter of the Page of Testimony. Records
	// sharing a Source are "same source" for the SameSrc filter.
	Source string
	// Kind tells whether Source names a list or a testimony submitter.
	Kind SourceKind
	// Items is the report's bag of typed items.
	Items []Item
}

// Values returns all values of the given item type, in insertion order.
func (r *Record) Values(t ItemType) []string {
	var vs []string
	for _, it := range r.Items {
		if it.Type == t {
			vs = append(vs, it.Value)
		}
	}
	return vs
}

// First returns the first value of the given item type and whether one
// exists.
func (r *Record) First(t ItemType) (string, bool) {
	for _, it := range r.Items {
		if it.Type == t {
			return it.Value, true
		}
	}
	return "", false
}

// Has reports whether the record carries at least one item of the type.
func (r *Record) Has(t ItemType) bool {
	_, ok := r.First(t)
	return ok
}

// Add appends an item, skipping empty values.
func (r *Record) Add(t ItemType, value string) {
	if value == "" {
		return
	}
	r.Items = append(r.Items, Item{Type: t, Value: value})
}

// Keys returns the canonical item keys of the record's bag, deduplicated
// and sorted. This is the representation consumed by itemset mining.
func (r *Record) Keys() []string {
	seen := make(map[string]struct{}, len(r.Items))
	keys := make([]string, 0, len(r.Items))
	for _, it := range r.Items {
		k := it.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pattern returns the record's data pattern: the set of distinct item types
// it has values for, encoded as a canonical string. Records share a pattern
// iff they have values for exactly the same item types (Section 6.2).
func (r *Record) Pattern() Pattern {
	var mask uint32
	for _, it := range r.Items {
		mask |= 1 << uint(it.Type)
	}
	return Pattern(mask)
}

// String renders the record in the paper's Table-2 item-bag style.
func (r *Record) String() string {
	parts := make([]string, 0, len(r.Items)+1)
	parts = append(parts, fmt.Sprintf("%d", r.BookID))
	for _, it := range r.Items {
		parts = append(parts, it.String())
	}
	return strings.Join(parts, ", ")
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	cp := *r
	cp.Items = append([]Item(nil), r.Items...)
	return &cp
}

// Pattern is a bitset over item types: bit t is set iff the record has at
// least one value of ItemType(t). It is comparable and usable as a map key.
type Pattern uint32

// Has reports whether the pattern includes the item type.
func (p Pattern) Has(t ItemType) bool {
	return p&(1<<uint(t)) != 0
}

// Size returns the number of distinct item types in the pattern.
func (p Pattern) Size() int {
	n := 0
	for v := uint32(p); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Types returns the item types in the pattern, in declaration order.
func (p Pattern) Types() []ItemType {
	var ts []ItemType
	for t := 0; t < NumItemTypes; t++ {
		if p.Has(ItemType(t)) {
			ts = append(ts, ItemType(t))
		}
	}
	return ts
}

// FullPattern returns the pattern containing every item type.
func FullPattern() Pattern {
	return Pattern(1<<uint(NumItemTypes) - 1)
}

// String renders the pattern as a +-joined list of prefixes.
func (p Pattern) String() string {
	ts := p.Types()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.Prefix()
	}
	return strings.Join(parts, "+")
}
