// Package record defines the victim-report data model of the Names Project
// database: typed items, records as bags of items, data patterns, and the
// item dictionary used to encode records for frequent-itemset mining.
//
// A record is a bag of typed items. Following the paper, every field value
// is prefixed with a short field tag when serialized to an item bag, so the
// first name "Avraham" becomes the item "F:avraham". Records may carry
// multiple occurrences of the same item type (e.g. two first names), which
// the bag-of-items model supports directly.
package record

import "fmt"

// ItemType identifies one of the 28 typed fields of a victim report
// (Table 4 of the paper).
type ItemType uint8

// Item types. The order groups names, demographic attributes, birth-date
// components, and the four place types by their four components.
const (
	LastName ItemType = iota
	FirstName
	Gender
	MaidenName
	MotherMaiden
	MotherName
	Profession
	SpouseName
	FatherName
	BirthDay
	BirthMonth
	BirthYear
	BirthCity
	BirthCounty
	BirthRegion
	BirthCountry
	WarCity
	WarCounty
	WarRegion
	WarCountry
	PermCity
	PermCounty
	PermRegion
	PermCountry
	DeathCity
	DeathCounty
	DeathRegion
	DeathCountry

	// NumItemTypes is the number of distinct item types.
	NumItemTypes = int(DeathCountry) + 1
)

// PlaceType distinguishes the four place roles a report may mention.
type PlaceType uint8

// The four place types of the Names Project schema.
const (
	Birth PlaceType = iota
	Wartime
	Permanent
	Death

	// NumPlaceTypes is the number of place roles.
	NumPlaceTypes = int(Death) + 1
)

// PlacePart distinguishes the four components of a hierarchical place.
type PlacePart uint8

// The four components of a place, finest to coarsest.
const (
	City PlacePart = iota
	County
	Region
	Country

	// NumPlaceParts is the number of place components.
	NumPlaceParts = int(Country) + 1
)

var placeTypeNames = [NumPlaceTypes]string{"Birth", "Wartime", "Permanent", "Death"}

func (p PlaceType) String() string {
	if int(p) < len(placeTypeNames) {
		return placeTypeNames[p]
	}
	return fmt.Sprintf("PlaceType(%d)", uint8(p))
}

var placePartNames = [NumPlaceParts]string{"City", "County", "Region", "Country"}

func (p PlacePart) String() string {
	if int(p) < len(placePartNames) {
		return placePartNames[p]
	}
	return fmt.Sprintf("PlacePart(%d)", uint8(p))
}

// PlaceItem returns the item type holding the given component of the given
// place role, e.g. PlaceItem(Birth, City) == BirthCity.
func PlaceItem(t PlaceType, p PlacePart) ItemType {
	return BirthCity + ItemType(int(t)*NumPlaceParts+int(p))
}

// itemMeta carries the display name and the serialization prefix of an item
// type. Prefixes follow the paper's item-bag convention (Table 2): name
// fields use single letters, place components use P1..P4 per role.
type itemMeta struct {
	name   string
	prefix string
}

var itemMetas = [NumItemTypes]itemMeta{
	LastName:     {"Last Name", "L"},
	FirstName:    {"First Name", "F"},
	Gender:       {"Gender", "G"},
	MaidenName:   {"Maiden Name", "MD"},
	MotherMaiden: {"Mother's Maiden Name", "MM"},
	MotherName:   {"Mother's First Name", "MF"},
	Profession:   {"Profession", "PR"},
	SpouseName:   {"Spouse Name", "S"},
	FatherName:   {"Father's Name", "FF"},
	BirthDay:     {"Birth Day", "B1"},
	BirthMonth:   {"Birth Month", "B2"},
	BirthYear:    {"Birth Year", "B3"},
	BirthCity:    {"Birth City", "BP1"},
	BirthCounty:  {"Birth County", "BP2"},
	BirthRegion:  {"Birth Region", "BP3"},
	BirthCountry: {"Birth Country", "BP4"},
	WarCity:      {"War City", "WP1"},
	WarCounty:    {"War County", "WP2"},
	WarRegion:    {"War Region", "WP3"},
	WarCountry:   {"War Country", "WP4"},
	PermCity:     {"Perm. City", "PP1"},
	PermCounty:   {"Perm. County", "PP2"},
	PermRegion:   {"Perm. Region", "PP3"},
	PermCountry:  {"Perm. Country", "PP4"},
	DeathCity:    {"Death City", "DP1"},
	DeathCounty:  {"Death County", "DP2"},
	DeathRegion:  {"Death Region", "DP3"},
	DeathCountry: {"Death Country", "DP4"},
}

var prefixToType = func() map[string]ItemType {
	m := make(map[string]ItemType, NumItemTypes)
	for t, meta := range itemMetas {
		m[meta.prefix] = ItemType(t)
	}
	return m
}()

// String returns the human-readable item type name used in the paper's
// tables (e.g. "Mother's Maiden Name").
func (t ItemType) String() string {
	if int(t) < NumItemTypes {
		return itemMetas[t].name
	}
	return fmt.Sprintf("ItemType(%d)", uint8(t))
}

// Prefix returns the serialization prefix of the item type.
func (t ItemType) Prefix() string {
	if int(t) < NumItemTypes {
		return itemMetas[t].prefix
	}
	return "?"
}

// TypeForPrefix resolves a serialization prefix back to its item type.
func TypeForPrefix(prefix string) (ItemType, bool) {
	t, ok := prefixToType[prefix]
	return t, ok
}

// IsName reports whether the item type holds a personal name.
func (t ItemType) IsName() bool {
	switch t {
	case LastName, FirstName, MaidenName, MotherMaiden, MotherName, SpouseName, FatherName:
		return true
	}
	return false
}

// IsPlace reports whether the item type is a place component.
func (t ItemType) IsPlace() bool {
	return t >= BirthCity && t <= DeathCountry
}

// IsDatePart reports whether the item type is a birth-date component.
func (t ItemType) IsDatePart() bool {
	return t == BirthDay || t == BirthMonth || t == BirthYear
}

// Place decomposes a place item type into its role and component. It
// reports ok=false for non-place types.
func (t ItemType) Place() (pt PlaceType, pp PlacePart, ok bool) {
	if !t.IsPlace() {
		return 0, 0, false
	}
	off := int(t - BirthCity)
	return PlaceType(off / NumPlaceParts), PlacePart(off % NumPlaceParts), true
}

// AllItemTypes returns all item types in declaration order. The returned
// slice is freshly allocated and may be modified by the caller.
func AllItemTypes() []ItemType {
	ts := make([]ItemType, NumItemTypes)
	for i := range ts {
		ts[i] = ItemType(i)
	}
	return ts
}

// Item is a single typed value in a record's item bag.
type Item struct {
	Type  ItemType
	Value string
}

// Key returns the canonical "prefix:value" encoding of the item, unique per
// (type, value) pair. Two items with equal keys are the same item for
// frequent-itemset mining.
func (it Item) Key() string {
	return it.Type.Prefix() + ":" + it.Value
}

// String implements fmt.Stringer using the paper's "F Avraham" style.
func (it Item) String() string {
	return it.Type.Prefix() + " " + it.Value
}
