package record

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestItemTypeMetadata(t *testing.T) {
	seenPrefix := map[string]bool{}
	for _, ty := range AllItemTypes() {
		if ty.String() == "" {
			t.Errorf("type %d has empty name", ty)
		}
		p := ty.Prefix()
		if p == "" || p == "?" {
			t.Errorf("type %v has bad prefix %q", ty, p)
		}
		if seenPrefix[p] {
			t.Errorf("duplicate prefix %q", p)
		}
		seenPrefix[p] = true
		back, ok := TypeForPrefix(p)
		if !ok || back != ty {
			t.Errorf("TypeForPrefix(%q) = %v, %v; want %v", p, back, ok, ty)
		}
	}
	if len(seenPrefix) != NumItemTypes {
		t.Errorf("expected %d prefixes, got %d", NumItemTypes, len(seenPrefix))
	}
}

func TestPlaceItemRoundTrip(t *testing.T) {
	for pt := 0; pt < NumPlaceTypes; pt++ {
		for pp := 0; pp < NumPlaceParts; pp++ {
			ty := PlaceItem(PlaceType(pt), PlacePart(pp))
			if !ty.IsPlace() {
				t.Fatalf("PlaceItem(%d,%d)=%v is not a place", pt, pp, ty)
			}
			gotPT, gotPP, ok := ty.Place()
			if !ok || gotPT != PlaceType(pt) || gotPP != PlacePart(pp) {
				t.Errorf("Place() round trip failed for %v: got %v/%v/%v", ty, gotPT, gotPP, ok)
			}
		}
	}
	if _, _, ok := FirstName.Place(); ok {
		t.Error("FirstName.Place() should not be ok")
	}
}

func TestTypeClassification(t *testing.T) {
	if !FirstName.IsName() || !MaidenName.IsName() {
		t.Error("name types misclassified")
	}
	if Gender.IsName() || BirthCity.IsName() {
		t.Error("non-name classified as name")
	}
	if !BirthYear.IsDatePart() || BirthCity.IsDatePart() {
		t.Error("date part misclassified")
	}
}

func TestRecordAccessors(t *testing.T) {
	r := &Record{BookID: 7}
	r.Add(FirstName, "Guido")
	r.Add(FirstName, "Massimo")
	r.Add(LastName, "Foa")
	r.Add(Gender, "") // empty values are skipped

	if got := r.Values(FirstName); !reflect.DeepEqual(got, []string{"Guido", "Massimo"}) {
		t.Errorf("Values(FirstName) = %v", got)
	}
	if v, ok := r.First(LastName); !ok || v != "Foa" {
		t.Errorf("First(LastName) = %q, %v", v, ok)
	}
	if r.Has(Gender) {
		t.Error("empty value should not be added")
	}
	if _, ok := r.First(SpouseName); ok {
		t.Error("First on absent type should be !ok")
	}
}

func TestRecordKeysSortedDeduped(t *testing.T) {
	r := &Record{}
	r.Add(LastName, "Foa")
	r.Add(FirstName, "Guido")
	r.Add(FirstName, "Guido") // duplicate
	keys := r.Keys()
	if !reflect.DeepEqual(keys, []string{"F:Guido", "L:Foa"}) {
		t.Errorf("Keys() = %v", keys)
	}
}

func TestPattern(t *testing.T) {
	r := &Record{}
	r.Add(FirstName, "Guido")
	r.Add(LastName, "Foa")
	p := r.Pattern()
	if !p.Has(FirstName) || !p.Has(LastName) || p.Has(Gender) {
		t.Errorf("pattern %v wrong membership", p)
	}
	if p.Size() != 2 {
		t.Errorf("pattern size = %d", p.Size())
	}
	if got := p.Types(); len(got) != 2 || got[0] != LastName || got[1] != FirstName {
		t.Errorf("pattern types = %v", got)
	}
	full := FullPattern()
	if full.Size() != NumItemTypes {
		t.Errorf("full pattern size = %d", full.Size())
	}
}

func TestPatternEqualityMatchesTypeSets(t *testing.T) {
	a := &Record{}
	a.Add(FirstName, "X")
	a.Add(LastName, "Y")
	b := &Record{}
	b.Add(LastName, "Q")
	b.Add(FirstName, "R")
	b.Add(FirstName, "S") // multiplicity does not change the pattern
	if a.Pattern() != b.Pattern() {
		t.Error("records with same type sets must share a pattern")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := &Record{BookID: 1}
	r.Add(FirstName, "Guido")
	cp := r.Clone()
	cp.Items[0].Value = "Massimo"
	if v, _ := r.First(FirstName); v != "Guido" {
		t.Error("Clone shares item storage")
	}
}

func TestCollection(t *testing.T) {
	a := &Record{BookID: 1}
	b := &Record{BookID: 2}
	c, err := NewCollection([]*Record{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.ByID(2) != b || c.ByID(9) != nil {
		t.Error("ByID lookup wrong")
	}
	if c.Index(1) != 0 || c.Index(9) != -1 {
		t.Error("Index lookup wrong")
	}
	if _, err := NewCollection([]*Record{a, a}); err == nil {
		t.Error("duplicate BookIDs must be rejected")
	}
}

func TestPrevalenceAndCardinality(t *testing.T) {
	a := &Record{BookID: 1}
	a.Add(FirstName, "Guido")
	a.Add(FirstName, "Massimo")
	b := &Record{BookID: 2}
	b.Add(FirstName, "Guido")
	b.Add(LastName, "Foa")
	c, _ := NewCollection([]*Record{a, b})

	prev := c.Prevalence()
	if prev[FirstName] != 2 || prev[LastName] != 1 || prev[Gender] != 0 {
		t.Errorf("prevalence = %v", prev[:3])
	}
	distinct, occ := c.Cardinality()
	if distinct[FirstName] != 2 {
		t.Errorf("distinct first names = %d", distinct[FirstName])
	}
	if occ[FirstName] != 3 {
		t.Errorf("first-name occurrences = %d", occ[FirstName])
	}
}

func TestDictionary(t *testing.T) {
	a := &Record{BookID: 1}
	a.Add(FirstName, "Guido")
	a.Add(LastName, "Foa")
	b := &Record{BookID: 2}
	b.Add(FirstName, "Guido")
	c, _ := NewCollection([]*Record{a, b})
	d := BuildDictionary(c)

	if d.Len() != 2 {
		t.Fatalf("dictionary size = %d", d.Len())
	}
	id, ok := d.ID("F:Guido")
	if !ok {
		t.Fatal("F:Guido not interned")
	}
	if d.Freq(id) != 2 {
		t.Errorf("freq = %d", d.Freq(id))
	}
	if d.TypeOf(id) != FirstName {
		t.Errorf("TypeOf = %v", d.TypeOf(id))
	}
	if d.Key(id) != "F:Guido" {
		t.Errorf("Key = %q", d.Key(id))
	}
	enc := d.Encode(a)
	if len(enc) != 2 {
		t.Errorf("Encode(a) = %v", enc)
	}
	// Unknown items are skipped.
	x := &Record{BookID: 3}
	x.Add(Gender, "0")
	if got := d.Encode(x); len(got) != 0 {
		t.Errorf("Encode(unknown) = %v", got)
	}
}

func TestMostFrequent(t *testing.T) {
	var recs []*Record
	for i := 0; i < 100; i++ {
		r := &Record{BookID: int64(i)}
		r.Add(Gender, "0") // appears everywhere
		if i < 3 {
			r.Add(FirstName, "Rare")
		}
		recs = append(recs, r)
	}
	c, _ := NewCollection(recs)
	d := BuildDictionary(c)
	top := d.MostFrequent(0.0001) // tiny fraction still yields >= 1 item
	if len(top) != 1 {
		t.Fatalf("MostFrequent = %v", top)
	}
	if d.Key(top[0]) != "G:0" {
		t.Errorf("top item = %q", d.Key(top[0]))
	}
	if got := d.MostFrequent(0); got != nil {
		t.Errorf("MostFrequent(0) = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	a := &Record{BookID: 1, Source: "list:x", Kind: List}
	a.Add(FirstName, "Guido")
	a.Add(BirthCity, "Torino")
	b := &Record{BookID: 2, Source: "submitter:Y", Kind: Testimony}
	b.Add(LastName, "Foa")

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*Record{a, b}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d records", len(back))
	}
	if !reflect.DeepEqual(back[0], a) || !reflect.DeepEqual(back[1], b) {
		t.Errorf("round trip mismatch:\n%v\n%v", back[0], back[1])
	}
}

func TestParseItemKeyErrors(t *testing.T) {
	if _, err := ParseItemKey("noseparator"); err == nil {
		t.Error("missing separator should fail")
	}
	if _, err := ParseItemKey("ZZ:value"); err == nil {
		t.Error("unknown prefix should fail")
	}
	it, err := ParseItemKey("F:with:colons")
	if err != nil || it.Value != "with:colons" {
		t.Errorf("colon values must survive: %v %v", it, err)
	}
}

func TestMakePairProperties(t *testing.T) {
	f := func(a, b int64) bool {
		p := MakePair(a, b)
		if p.A > p.B {
			return false
		}
		if p != MakePair(b, a) {
			return false
		}
		return p.Contains(a) && p.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairOther(t *testing.T) {
	p := MakePair(5, 3)
	if o, ok := p.Other(3); !ok || o != 5 {
		t.Errorf("Other(3) = %d, %v", o, ok)
	}
	if _, ok := p.Other(9); ok {
		t.Error("Other(9) should be !ok")
	}
}
