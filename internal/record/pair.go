package record

// Pair is an unordered record pair in canonical order (A < B). Use MakePair
// to construct one so map keys compare correctly.
type Pair struct {
	A, B int64
}

// MakePair returns the canonical pair of two BookIDs.
func MakePair(a, b int64) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Contains reports whether the pair involves the given BookID.
func (p Pair) Contains(id int64) bool { return p.A == id || p.B == id }

// Other returns the pair member that is not id; ok is false when id is not
// in the pair.
func (p Pair) Other(id int64) (int64, bool) {
	switch id {
	case p.A:
		return p.B, true
	case p.B:
		return p.A, true
	}
	return 0, false
}
