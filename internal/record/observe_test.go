package record

import (
	"fmt"
	"reflect"
	"testing"
)

// TestObserveMatchesBatch pins the incremental dictionary contract:
// observing records one at a time in collection order yields the exact
// dictionary (ids, keys, frequencies) and transactions that
// BuildDictionary plus Encode produce — the equivalence the streaming
// ingest stage rests on.
func TestObserveMatchesBatch(t *testing.T) {
	var records []*Record
	for i := 0; i < 40; i++ {
		r := &Record{BookID: int64(i + 1), Source: "list-1", Kind: List}
		r.Add(FirstName, fmt.Sprintf("Name%d", i%7))
		r.Add(LastName, fmt.Sprintf("Fam%d", i%3))
		r.Add(BirthYear, fmt.Sprintf("%d", 1900+i%5))
		if i%2 == 0 {
			// Duplicate item value: Observe must count document frequency
			// once per record, exactly as BuildDictionary does.
			r.Add(FirstName, fmt.Sprintf("Name%d", i%7))
		}
		records = append(records, r)
	}
	coll, err := NewCollection(records)
	if err != nil {
		t.Fatal(err)
	}

	batch := BuildDictionary(coll)
	inc := NewDictionary()
	var incEncoded [][]int
	for _, r := range coll.Records {
		incEncoded = append(incEncoded, inc.Observe(r))
	}

	if batch.Len() != inc.Len() {
		t.Fatalf("dictionary sizes diverge: %d vs %d", inc.Len(), batch.Len())
	}
	for id := 0; id < batch.Len(); id++ {
		if batch.Key(id) != inc.Key(id) {
			t.Fatalf("id %d: key %q vs %q", id, inc.Key(id), batch.Key(id))
		}
		if batch.Freq(id) != inc.Freq(id) {
			t.Fatalf("id %d (%s): freq %d vs %d", id, batch.Key(id), inc.Freq(id), batch.Freq(id))
		}
		if batch.TypeOf(id) != inc.TypeOf(id) {
			t.Fatalf("id %d: type diverges", id)
		}
	}
	for i, r := range coll.Records {
		if want := batch.Encode(r); !reflect.DeepEqual(want, incEncoded[i]) {
			t.Fatalf("record %d: transaction %v vs %v", i, incEncoded[i], want)
		}
	}
}
