package record

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomRecord builds a record with arbitrary typed values, including
// unicode and separator characters that must survive serialization.
func randomRecord(rng *rand.Rand, id int64) *Record {
	alphabet := []rune("abcXYZ :|\tкогнקוגן-'.")
	r := &Record{BookID: id}
	if rng.Intn(2) == 0 {
		r.Kind = List
		r.Source = "list:x"
	} else {
		r.Source = "submitter:A B:C"
	}
	n := rng.Intn(8)
	for k := 0; k < n; k++ {
		t := ItemType(rng.Intn(NumItemTypes))
		m := 1 + rng.Intn(10)
		val := make([]rune, m)
		for i := range val {
			val[i] = alphabet[rng.Intn(len(alphabet))]
		}
		r.Add(t, string(val))
	}
	return r
}

func TestJSONLRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		recs := make([]*Record, n)
		for i := range recs {
			recs[i] = randomRecord(rng, int64(i+1))
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, recs); err != nil {
			return false
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(recs) {
			return false
		}
		for i := range recs {
			if back[i].BookID != recs[i].BookID || back[i].Source != recs[i].Source ||
				back[i].Kind != recs[i].Kind || !reflect.DeepEqual(back[i].Items, recs[i].Items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternInvariantUnderValueChange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRecord(rng, 1)
		p := r.Pattern()
		// Changing values (not types) never changes the pattern.
		cp := r.Clone()
		for i := range cp.Items {
			cp.Items[i].Value = "changed"
		}
		return cp.Pattern() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryEncodeSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]*Record, 5)
		for i := range recs {
			recs[i] = randomRecord(rng, int64(i+1))
		}
		coll, err := NewCollection(recs)
		if err != nil {
			return false
		}
		d := BuildDictionary(coll)
		for _, r := range recs {
			enc := d.Encode(r)
			for i := 1; i < len(enc); i++ {
				if enc[i] <= enc[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
