package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonRecord is the wire form of a record: items are flattened to
// "prefix:value" keys so the encoding is stable across ItemType renumbering.
type jsonRecord struct {
	BookID int64    `json:"book_id"`
	Source string   `json:"source"`
	Kind   string   `json:"kind"`
	Items  []string `json:"items"`
}

// WriteJSONL writes records as JSON Lines, one record per line.
func WriteJSONL(w io.Writer, records []*Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		jr := jsonRecord{
			BookID: r.BookID,
			Source: r.Source,
			Kind:   r.Kind.String(),
			Items:  make([]string, len(r.Items)),
		}
		for i, it := range r.Items {
			jr.Items[i] = it.Key()
		}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("record: encode %d: %w", r.BookID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records []*Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal([]byte(text), &jr); err != nil {
			return nil, fmt.Errorf("record: line %d: %w", line, err)
		}
		rec := &Record{BookID: jr.BookID, Source: jr.Source}
		if jr.Kind == List.String() {
			rec.Kind = List
		}
		for _, key := range jr.Items {
			it, err := ParseItemKey(key)
			if err != nil {
				return nil, fmt.Errorf("record: line %d: %w", line, err)
			}
			rec.Items = append(rec.Items, it)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}

// ParseItemKey parses a canonical "prefix:value" item key.
func ParseItemKey(key string) (Item, error) {
	i := strings.IndexByte(key, ':')
	if i < 0 {
		return Item{}, fmt.Errorf("record: malformed item key %q", key)
	}
	t, ok := TypeForPrefix(key[:i])
	if !ok {
		return Item{}, fmt.Errorf("record: unknown item prefix %q", key[:i])
	}
	return Item{Type: t, Value: key[i+1:]}, nil
}
