package telemetry

// Well-known metric family names shared between the HTTP serving layer
// and its tests. The registry creates families on first use, so these
// constants are the single place the resilience middleware and the
// /metrics assertions agree on spelling.
const (
	// FamilyHTTPPanics counts handler panics converted to JSON 500s by
	// the recovery middleware, labeled by route. The server keeps
	// serving; a non-zero value is a bug report, not an outage.
	FamilyHTTPPanics = "http_panics_total"
	// FamilyHTTPShed counts requests rejected with 503 + Retry-After by
	// the max-inflight load shedder, labeled by route.
	FamilyHTTPShed = "http_shed_total"
	// FamilyHTTPTimeouts counts requests answered with 503 because the
	// handler exceeded the per-request deadline, labeled by route.
	FamilyHTTPTimeouts = "http_timeouts_total"
)

// Blocking-engine families (fpgrowth_*): the miner reports per-call tree
// construction and mining wall clock, the worker fan-out width, and the
// cost of the deterministic merge of worker-local MFI stores.
const (
	// FamilyFPGrowthTreeBuild times one flat FP-tree construction
	// (frequency ordering plus transaction insertion).
	FamilyFPGrowthTreeBuild = "fpgrowth_tree_build_seconds"
	// FamilyFPGrowthMine times one full mining call (fan-out, merge, and
	// maximality sweep included for MineMaximal).
	FamilyFPGrowthMine = "fpgrowth_mine_seconds"
	// FamilyFPGrowthMerge times the deterministic merge of worker-local
	// MFI stores; observed only when the fan-out actually ran (>1 worker).
	FamilyFPGrowthMerge = "fpgrowth_merge_seconds"
	// FamilyFPGrowthWorkers gauges the worker count the last MineMaximal
	// fanned its top-level items out to (after clamping to the item
	// count).
	FamilyFPGrowthWorkers = "fpgrowth_workers"
)
