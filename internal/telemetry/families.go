package telemetry

// Well-known metric family names shared between the HTTP serving layer
// and its tests. The registry creates families on first use, so these
// constants are the single place the resilience middleware and the
// /metrics assertions agree on spelling.
const (
	// FamilyHTTPPanics counts handler panics converted to JSON 500s by
	// the recovery middleware, labeled by route. The server keeps
	// serving; a non-zero value is a bug report, not an outage.
	FamilyHTTPPanics = "http_panics_total"
	// FamilyHTTPShed counts requests rejected with 503 + Retry-After by
	// the max-inflight load shedder, labeled by route.
	FamilyHTTPShed = "http_shed_total"
	// FamilyHTTPTimeouts counts requests answered with 503 because the
	// handler exceeded the per-request deadline, labeled by route.
	FamilyHTTPTimeouts = "http_timeouts_total"
)

// Blocking-engine families (fpgrowth_*): the miner reports per-call tree
// construction and mining wall clock, the worker fan-out width, and the
// cost of the deterministic merge of worker-local MFI stores.
const (
	// FamilyFPGrowthTreeBuild times one flat FP-tree construction
	// (frequency ordering plus transaction insertion).
	FamilyFPGrowthTreeBuild = "fpgrowth_tree_build_seconds"
	// FamilyFPGrowthMine times one full mining call (fan-out, merge, and
	// maximality sweep included for MineMaximal).
	FamilyFPGrowthMine = "fpgrowth_mine_seconds"
	// FamilyFPGrowthMerge times the deterministic merge of worker-local
	// MFI stores; observed only when the fan-out actually ran (>1 worker).
	FamilyFPGrowthMerge = "fpgrowth_merge_seconds"
	// FamilyFPGrowthWorkers gauges the worker count the last MineMaximal
	// fanned its top-level items out to (after clamping to the item
	// count).
	FamilyFPGrowthWorkers = "fpgrowth_workers"
)

// Scoring-kernel families (features_*): the pair-similarity memo cache
// and the string interner backing the profiled extraction path. The
// memo stores pure kernel results, so its hit rate is an efficiency
// signal only — outputs are identical with the memo on or off.
const (
	// FamilyMemoHits counts value-pair similarity lookups served from
	// the memo instead of recomputed by a kernel.
	FamilyMemoHits = "features_memo_hits_total"
	// FamilyMemoMisses counts memo lookups that fell through to a
	// kernel computation.
	FamilyMemoMisses = "features_memo_misses_total"
	// FamilyMemoEvictions counts memo entries dropped by bounded-shard
	// resets.
	FamilyMemoEvictions = "features_memo_evictions_total"
	// FamilyMemoEntries gauges the memo's resident entries after the
	// last scoring stage.
	FamilyMemoEntries = "features_memo_entries"
	// FamilyInternedStrings gauges the distinct strings (q-grams and
	// lowered name values) the extractor interned for its profiles.
	FamilyInternedStrings = "features_interned_strings"
)
