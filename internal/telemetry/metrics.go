// Package telemetry is the repo's dependency-free observability core:
// atomic counters, gauges, and fixed-bucket histograms collected in a
// Registry (rendered as Prometheus text by WritePrometheus), stage
// timers, a package-level structured logger (log/slog), and the
// JSON-serializable RunReport the pipeline attaches to every
// Resolution.
//
// Metric families follow the Prometheus naming scheme
// <subsystem>_<what>_<unit>: counters end in _total, duration
// histograms in _seconds. Instruments are safe for concurrent use, and
// every accessor tolerates a nil receiver (a nil *Registry hands out
// nil instruments whose methods no-op), so instrumented code never
// branches on "telemetry enabled".
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters only
// go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// implicit +Inf overflow bucket, a running sum, and a total count. The
// bucket layout is immutable after construction.
type Histogram struct {
	bounds  []float64 // ascending upper bounds (le), excluding +Inf
	buckets []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is copied; an empty layout still counts and
// sums observations in the +Inf bucket.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.bucketFor(v).Add(1)
	h.count.Add(1)
	h.addSum(v)
}

func (h *Histogram) bucketFor(v float64) *atomic.Int64 {
	// First bound >= v; sort.SearchFloat64s finds the first >= which is
	// what `le` semantics want.
	i := sort.SearchFloat64s(h.bounds, v)
	if i == len(h.bounds) {
		return &h.inf
	}
	return &h.buckets[i]
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds another histogram with the identical bucket layout into
// h. It panics on layout mismatch — merging is for flushing per-worker
// locals into a shared registry histogram, where the layout is shared
// by construction.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	if len(src.bounds) != len(h.bounds) {
		panic("telemetry: Merge across different bucket layouts")
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	if n := src.inf.Load(); n > 0 {
		h.inf.Add(n)
	}
	if n := src.count.Load(); n > 0 {
		h.count.Add(n)
		h.addSum(math.Float64frombits(src.sumBits.Load()))
	}
}

// HistogramSnapshot is a point-in-time, JSON-friendly view of a
// histogram: cumulative counts per upper bound plus the +Inf total.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"` // len(Bounds)+1; last is the total (+Inf)
	Sum        float64   `json:"sum"`
	Count      int64     `json:"count"`
}

// Snapshot captures the histogram's current state. Concurrent
// observers may land between bucket reads; the snapshot is re-monotonized
// so cumulative counts never decrease.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]int64, len(h.bounds)+1),
	}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Cumulative[i] = cum
	}
	s.Cumulative[len(h.bounds)] = cum + h.inf.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Count = h.count.Load()
	if s.Count < s.Cumulative[len(h.bounds)] {
		s.Count = s.Cumulative[len(h.bounds)]
	}
	return s
}

// Bounds returns the histogram's upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// DurationBuckets is the default layout for stage and request timers,
// in seconds: 100µs up to ~2 minutes.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// ScoreBuckets is the default layout for match-score distributions:
// model confidences are unbounded reals centred near zero, block scores
// live in [0,1].
var ScoreBuckets = []float64{
	-5, -2, -1, -0.5, -0.25, 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1, 1.5, 2, 5,
}

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// metricKind discriminates registry entries for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one registered time series: a metric family name, its
// rendered label set, and the instrument.
type series struct {
	family string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry hands out named instruments, get-or-create style, and
// renders them all as Prometheus text. The zero value is not usable;
// call NewRegistry. A nil *Registry is safe: it returns nil instruments.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*series
	order []string // insertion order of keys, for stable iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Pipeline stages fall back
// to it when no registry is configured, so CLIs and the server observe
// metrics without any wiring.
func Default() *Registry { return defaultRegistry }

// seriesKey renders the unique key of a family + label set.
func seriesKey(family string, labels []Label) string {
	if len(labels) == 0 {
		return family
	}
	key := family
	for _, l := range labels {
		key += "\x00" + l.Key + "\x00" + l.Value
	}
	return key
}

// lookup returns the series for key under the read lock, or nil.
func (r *Registry) lookup(key string) *series {
	r.mu.RLock()
	s := r.byKey[key]
	r.mu.RUnlock()
	return s
}

// register inserts the series built by mk unless a concurrent writer
// won; the surviving entry is returned.
func (r *Registry) register(key string, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		return s
	}
	s := mk()
	r.byKey[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns the counter named family with the given labels,
// creating it on first use.
func (r *Registry) Counter(family string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(family, labels)
	if s := r.lookup(key); s != nil {
		return s.c
	}
	s := r.register(key, func() *series {
		return &series{family: family, labels: labels, kind: kindCounter, c: &Counter{}}
	})
	return s.c
}

// Gauge returns the gauge named family with the given labels, creating
// it on first use.
func (r *Registry) Gauge(family string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(family, labels)
	if s := r.lookup(key); s != nil {
		return s.g
	}
	s := r.register(key, func() *series {
		return &series{family: family, labels: labels, kind: kindGauge, g: &Gauge{}}
	})
	return s.g
}

// Histogram returns the histogram named family with the given labels,
// creating it with the bounds on first use. Later calls for the same
// series ignore bounds (the first layout wins).
func (r *Registry) Histogram(family string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(family, labels)
	if s := r.lookup(key); s != nil {
		return s.h
	}
	s := r.register(key, func() *series {
		return &series{family: family, labels: labels, kind: kindHistogram, h: NewHistogram(bounds)}
	})
	return s.h
}
