package telemetry

import (
	"strconv"
	"strings"
	"testing"
)

// parseProm parses Prometheus text lines into a map of series → value,
// skipping comments. It fails the test on any malformed line — the
// scrape-format contract the /metrics endpoint relies on.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type in %q", line)
			}
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil && raw != "+Inf" && raw != "-Inf" && raw != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if strings.Contains(name, "{") && !strings.HasSuffix(name, "}") {
			t.Fatalf("unbalanced labels in %q", line)
		}
		out[name] = v
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", L("route", "/a"), L("class", "2xx")).Add(3)
	r.Counter("req_total", L("route", "/b"), L("class", "5xx")).Add(1)
	r.Gauge("inflight").Set(2)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	series := parseProm(t, text)

	if v := series[`req_total{route="/a",class="2xx"}`]; v != 3 {
		t.Errorf("labeled counter = %v, want 3 in:\n%s", v, text)
	}
	if v := series["inflight"]; v != 2 {
		t.Errorf("gauge = %v, want 2", v)
	}
	if v := series[`lat_seconds_bucket{le="0.1"}`]; v != 1 {
		t.Errorf("le=0.1 bucket = %v, want 1", v)
	}
	if v := series[`lat_seconds_bucket{le="+Inf"}`]; v != 3 {
		t.Errorf("+Inf bucket = %v, want 3", v)
	}
	if v := series["lat_seconds_count"]; v != 3 {
		t.Errorf("count = %v, want 3", v)
	}
	if v := series["lat_seconds_sum"]; v != 5.55 {
		t.Errorf("sum = %v, want 5.55", v)
	}
	// One TYPE header per family, before its samples.
	if strings.Count(text, "# TYPE req_total counter") != 1 {
		t.Errorf("req_total TYPE header count wrong:\n%s", text)
	}
	if strings.Count(text, "# TYPE lat_seconds histogram") != 1 {
		t.Errorf("lat_seconds TYPE header count wrong:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("q", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `c_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped output missing %q:\n%s", want, sb.String())
	}
}

// unescapeLabel is the scrape-side inverse of escapeLabel, per the
// Prometheus text-format rules: \\, \n, and \" are the only escapes.
func unescapeLabel(t *testing.T, v string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' {
			b.WriteByte(v[i])
			continue
		}
		i++
		if i >= len(v) {
			t.Fatalf("dangling backslash in %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case '"':
			b.WriteByte('"')
		default:
			t.Fatalf("unknown escape \\%c in %q", v[i], v)
		}
	}
	return b.String()
}

// TestLabelEscapingRoundTrip pins the full escape cycle: every
// adversarial label value must survive render → parse → unescape
// unchanged, or a scraper would record a different label than the one
// the pipeline emitted.
func TestLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`a"b`,
		`back\slash`,
		"line\nbreak",
		`mixed \" of \\ everything` + "\n" + `even "quoted\nfake" escapes`,
		`trailing backslash \`,
		"\n\n",
		`\\n`, // literal backslash-backslash-n, not an escape sequence
	}
	for _, v := range values {
		if got := unescapeLabel(t, escapeLabel(v)); got != v {
			t.Errorf("round trip of %q = %q", v, got)
		}
	}

	// And through the full exposition pipeline: render a counter with the
	// adversarial value, extract the quoted label back out of the text,
	// unescape, compare.
	for i, v := range values {
		r := NewRegistry()
		name := "rt_" + strconv.Itoa(i) + "_total"
		r.Counter(name, L("q", v)).Inc()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		text := sb.String()
		start := strings.Index(text, name+`{q="`)
		if start < 0 {
			t.Fatalf("series for %q missing:\n%s", v, text)
		}
		raw := text[start+len(name)+4:]
		// The value ends at the first unescaped quote.
		end := -1
		for j := 0; j < len(raw); j++ {
			if raw[j] == '\\' {
				j++
				continue
			}
			if raw[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			t.Fatalf("unterminated label value for %q:\n%s", v, text)
		}
		if got := unescapeLabel(t, raw[:end]); got != v {
			t.Errorf("exposition round trip of %q = %q", v, got)
		}
	}
}

func TestSnapshotJSONKeys(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b").Set(4)
	r.Histogram("c", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap.Counters["a_total"] != 1 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Gauges["b"] != 4 {
		t.Errorf("snapshot gauges = %+v", snap.Gauges)
	}
	if h, ok := snap.Histograms["c"]; !ok || h.Count != 1 {
		t.Errorf("snapshot histograms = %+v", snap.Histograms)
	}
}
