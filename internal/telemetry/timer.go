package telemetry

import "time"

// Timer records durations into a seconds histogram. Obtain one from
// Registry.Timer; a nil Timer no-ops.
type Timer struct {
	h *Histogram
}

// Timer returns the duration histogram named family (DurationBuckets
// layout) wrapped as a Timer.
func (r *Registry) Timer(family string, labels ...Label) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(family, DurationBuckets, labels...)}
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Start begins a timing; the returned stop function records the elapsed
// duration (and returns it, for callers that also want the raw value).
func (t *Timer) Start() func() time.Duration {
	t0 := time.Now()
	return func() time.Duration {
		d := time.Since(t0)
		t.Observe(d)
		return d
	}
}
