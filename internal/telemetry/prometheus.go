package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// `# TYPE` header per family, series within a family sorted by label
// set, histograms expanded into cumulative `_bucket{le=...}` lines plus
// `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	keys := append([]string(nil), r.order...)
	entries := make([]*series, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, r.byKey[k])
	}
	r.mu.RUnlock()

	// Group by family, families alphabetical, series stable within.
	byFamily := make(map[string][]*series)
	families := make([]string, 0, len(entries))
	for _, s := range entries {
		if _, ok := byFamily[s.family]; !ok {
			families = append(families, s.family)
		}
		byFamily[s.family] = append(byFamily[s.family], s)
	}
	sort.Strings(families)

	for _, fam := range families {
		group := byFamily[fam]
		sort.SliceStable(group, func(i, j int) bool {
			return labelString(group[i].labels) < labelString(group[j].labels)
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typeName(group[0].kind)); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func writeSeries(w io.Writer, s *series) error {
	ls := labelString(s.labels)
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.family, braced(ls), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.family, braced(ls), formatFloat(s.g.Value()))
		return err
	default:
		snap := s.h.Snapshot()
		for i, b := range snap.Bounds {
			le := labelString(append(append([]Label(nil), s.labels...), L("le", formatFloat(b))))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.family, braced(le), snap.Cumulative[i]); err != nil {
				return err
			}
		}
		le := labelString(append(append([]Label(nil), s.labels...), L("le", "+Inf")))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.family, braced(le), snap.Cumulative[len(snap.Bounds)]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.family, braced(ls), formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.family, braced(ls), snap.Count)
		return err
	}
}

// labelString renders `k1="v1",k2="v2"` with escaped values, or "".
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func braced(ls string) string {
	if ls == "" {
		return ""
	}
	return "{" + ls + "}"
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
