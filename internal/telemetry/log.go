package telemetry

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// The package-level logger: pipeline stages log through L() so one
// switch controls the whole process. The default writes slog text to
// stderr at Info; SetVerbose(true) (the CLIs' -v flag) drops the level
// to Debug, where per-iteration and per-stage chatter lives; Silence()
// (tests) discards everything.

var (
	logLevel  = new(slog.LevelVar) // defaults to Info
	curLogger atomic.Pointer[slog.Logger]
)

func init() {
	curLogger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel})))
}

// Log returns the current package logger. It never returns nil.
func Log() *slog.Logger { return curLogger.Load() }

// SetLogger replaces the package logger; nil restores the default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))
	}
	curLogger.Store(l)
}

// SetVerbose toggles Debug-level logging on the default handler.
func SetVerbose(v bool) {
	if v {
		logLevel.Set(slog.LevelDebug)
	} else {
		logLevel.Set(slog.LevelInfo)
	}
}

// Silence discards all log output; tests use it to keep pipeline runs
// quiet. Returns a restore function.
func Silence() func() {
	prev := curLogger.Load()
	curLogger.Store(slog.New(discardHandler{}))
	return func() { curLogger.Store(prev) }
}

// discardHandler drops every record (slog.DiscardHandler exists only
// from Go 1.24; this keeps the module buildable at its declared 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NewWriterLogger returns a text logger to w at the package level —
// the CLIs use it to route -v output somewhere other than stderr.
func NewWriterLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: logLevel}))
}
