package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"time"

	"repro/internal/telemetry/trace"
)

// ReportSchemaVersion identifies the RunReport JSON layout; bump it on
// any field removal or rename so downstream consumers can dispatch.
const ReportSchemaVersion = 1

// RunReport is the JSON-serializable per-stage breakdown of one
// pipeline run. core.Run attaches one to every Resolution; the server
// exposes it at /api/report and the CLIs write it with -report.
//
// Stage order is the execution order (preprocess, blocking, scoring,
// rank) and is stable across runs — golden tests key on it.
type RunReport struct {
	SchemaVersion int `json:"schema_version"`
	Records       int `json:"records"`
	Workers       int `json:"workers"`
	// TornBytes is the byte count of the torn tail a streaming run's
	// windowed reader skipped (store.WindowReader.TornBytes); zero for
	// batch runs and intact stores.
	TornBytes int64           `json:"torn_bytes,omitempty"`
	TotalNS   int64           `json:"total_ns"`
	Stages    []StageReport   `json:"stages"`
	Blocking  *BlockingReport `json:"blocking,omitempty"`
	Scoring   *ScoringReport  `json:"scoring,omitempty"`
	// Spans is the run's hierarchical trace (its own schema version,
	// trace.TreeSchemaVersion), present when the run was traced. The
	// flight recorder's summary rides inside it.
	Spans *trace.SpanTree `json:"spans,omitempty"`
}

// StageReport is one pipeline stage's wall clock and counters.
type StageReport struct {
	Name       string           `json:"name"`
	DurationNS int64            `json:"duration_ns"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// BlockingReport is the MFIBlocks stage breakdown. The Spill* fields
// describe the disk-spilled candidate accumulator when spilling was
// enabled (streaming runs): sorted runs written, entries and bytes
// spilled, and the distinct entries/bytes the scoring stage's k-way
// merge delivered back.
type BlockingReport struct {
	Iterations     []IterationReport `json:"iterations"`
	Blocks         int               `json:"blocks"`
	Pairs          int               `json:"pairs"`
	Covered        int               `json:"covered"`
	SpillRuns      int               `json:"spill_runs,omitempty"`
	SpilledEntries int64             `json:"spilled_entries,omitempty"`
	SpilledBytes   int64             `json:"spilled_bytes,omitempty"`
	MergedEntries  int64             `json:"merged_entries,omitempty"`
	MergedBytes    int64             `json:"merged_bytes,omitempty"`
	// Cache* describe the cross-iteration block materialization cache
	// (all zero when it is disabled). Cache state never changes blocks
	// or pairs — these are efficiency signals only.
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheEvictions int64 `json:"cache_evictions,omitempty"`
	CacheEntries   int   `json:"cache_entries,omitempty"`
}

// IterationReport is one minsup level of the MFIBlocks loop.
type IterationReport struct {
	MinSup     int     `json:"minsup"`
	Active     int     `json:"active"` // uncovered records mined this iteration
	MFIs       int     `json:"mfis"`
	Blocks     int     `json:"blocks"`
	CSPruned   int     `json:"cs_pruned"` // dropped by the compact-set size cap
	NGPruned   int     `json:"ng_pruned"` // vetoed by the sparse-neighborhood cap
	NewPairs   int     `json:"new_pairs"`
	CoveredNow int     `json:"covered_now"`
	MinTh      float64 `json:"min_th"`
	DurationNS int64   `json:"duration_ns"`
}

// ScoringReport is the pair-scoring stage breakdown.
type ScoringReport struct {
	Candidates     int   `json:"candidates"`
	SameSrcDropped int   `json:"same_src_dropped"`
	ModelDropped   int   `json:"model_dropped"`
	Matches        int   `json:"matches"`
	Workers        int   `json:"workers"`
	Chunks         int   `json:"chunks"`
	ProfilesBuilt  int   `json:"profiles_built"`
	ProfileHits    int64 `json:"profile_hits"`
	ProfileMisses  int64 `json:"profile_misses"`
	// Memo* describe the value-pair similarity memo cache (zero when the
	// memo is disabled, or at Workers=1 where the serial seed path
	// bypasses profiled extraction entirely). The memo stores pure
	// kernel results, so these are efficiency signals only.
	MemoHits      int64 `json:"memo_hits"`
	MemoMisses    int64 `json:"memo_misses"`
	MemoEvictions int64 `json:"memo_evictions"`
	MemoEntries   int   `json:"memo_entries"`
	// InternedStrings counts the distinct q-grams and lowered name
	// values the extractor's profiles interned.
	InternedStrings int `json:"interned_strings"`
	// Scores is the distribution of ranked-match scores (ScoreBuckets
	// layout). Omitted when no pairs were scored.
	Scores *HistogramSnapshot `json:"scores,omitempty"`
}

// AddStage appends a stage in execution order.
func (r *RunReport) AddStage(name string, d time.Duration, counters map[string]int64) {
	if r == nil {
		return
	}
	r.Stages = append(r.Stages, StageReport{Name: name, DurationNS: d.Nanoseconds(), Counters: counters})
	r.TotalNS += d.Nanoseconds()
}

// Stage returns the named stage, or nil.
func (r *RunReport) Stage(name string) *StageReport {
	if r == nil {
		return nil
	}
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// StripTimings zeroes every duration in place — golden tests compare
// report shape and counts, never wall clock.
func (r *RunReport) StripTimings() {
	if r == nil {
		return
	}
	r.TotalNS = 0
	for i := range r.Stages {
		r.Stages[i].DurationNS = 0
	}
	if r.Blocking != nil {
		for i := range r.Blocking.Iterations {
			r.Blocking.Iterations[i].DurationNS = 0
		}
	}
	r.Spans.StripTimings()
}

// WriteJSON writes the report, indented, to w.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the CLIs' -report flag).
func (r *RunReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
