package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters never go down
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	if nilC.Value() != 0 {
		t.Error("nil counter non-zero")
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Error("nil gauge non-zero")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: 0.5 and 1; le=2: +1.5; le=5: +3; +Inf: +10.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 0.5+1+1.5+3+10 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(3)
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 3 || s.Cumulative[2] != 3 {
		t.Errorf("merged snapshot = %+v", s)
	}
	if s.Sum != 5 {
		t.Errorf("merged sum = %v, want 5", s.Sum)
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge across layouts did not panic")
		}
	}()
	NewHistogram([]float64{1}).Merge(NewHistogram([]float64{1, 2}))
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Error("same name returned distinct counters")
	}
	l1 := r.Counter("y_total", L("route", "/a"))
	l2 := r.Counter("y_total", L("route", "/b"))
	if l1 == l2 {
		t.Error("distinct labels shared a counter")
	}
	h1 := r.Histogram("h_seconds", DurationBuckets)
	h2 := r.Histogram("h_seconds", nil) // bounds ignored on re-get
	if h1 != h2 {
		t.Error("histogram not memoized")
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", DurationBuckets).Observe(1)
	r.Timer("d").Observe(time.Second)
	stop := r.Timer("e").Start()
	stop()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry rendered %q, err %v", sb.String(), err)
	}
	_ = r.Snapshot()
}

func TestTimerObserves(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op_seconds")
	tm.Observe(50 * time.Millisecond)
	stop := tm.Start()
	stop()
	s := r.Histogram("op_seconds", DurationBuckets).Snapshot()
	if s.Count != 2 {
		t.Errorf("timer count = %d, want 2", s.Count)
	}
}

// TestRegistryConcurrent exercises concurrent get-or-create and updates
// across all instrument kinds; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("labeled_total", L("w", string(rune('a'+w%4)))).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{1, 10, 100}).Observe(float64(i))
				if i%50 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Errorf("shared_total = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("g").Value(); got != 8*500 {
		t.Errorf("gauge = %v, want %d", got, 8*500)
	}
}

func TestSilenceRestores(t *testing.T) {
	restore := Silence()
	Log().Info("this must be discarded")
	restore()
	if Log() == nil {
		t.Fatal("logger nil after restore")
	}
}
