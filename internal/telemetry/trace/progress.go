package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultProgressInterval is how often Progress prints when the caller
// doesn't choose: frequent enough to feel live, sparse enough not to
// flood a CI log over a multi-hour run.
const DefaultProgressInterval = 2 * time.Second

// Progress is the live-progress hook for long runs: the pipeline posts
// stage transitions, item counts, and shard completions through atomic
// setters; a background goroutine prints a status line (stage, items
// done, rate, shard completion, ETA) every interval. A nil *Progress
// no-ops on every method, so instrumented code never branches on
// "progress enabled".
//
// Hooks are cheap — Add is one atomic add — and may be called from the
// pipeline's worker pools.
type Progress struct {
	// W receives the status lines; nil falls back to io.Discard.
	W io.Writer
	// Interval is the print cadence (<= 0 selects
	// DefaultProgressInterval).
	Interval time.Duration

	stage       atomic.Pointer[progressStage]
	shardsDone  atomic.Int64
	shardsTotal atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// progressStage is the immutable per-stage state the printer reads.
type progressStage struct {
	name  string
	total int64 // 0 = unknown
	t0    time.Time
	done  atomic.Int64
}

// Stage switches the progress to a new stage with the expected item
// count (0 when unknown), resetting the rate clock and the counter.
func (p *Progress) Stage(name string, total int64) {
	if p == nil {
		return
	}
	p.stage.Store(&progressStage{name: name, total: total, t0: time.Now()})
	p.shardsDone.Store(0)
	p.shardsTotal.Store(0)
}

// Add advances the current stage's item counter.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	if st := p.stage.Load(); st != nil {
		st.done.Add(n)
	}
}

// Shards publishes the current iteration's shard completion.
func (p *Progress) Shards(done, total int) {
	if p == nil {
		return
	}
	p.shardsDone.Store(int64(done))
	p.shardsTotal.Store(int64(total))
}

// Start launches the printer goroutine. Idempotent.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.startOnce.Do(func() {
		p.stop = make(chan struct{})
		p.done = make(chan struct{})
		go p.loop()
	})
}

// Stop halts the printer after one final line. Safe on a nil or
// never-started Progress, and idempotent.
func (p *Progress) Stop() {
	if p == nil || p.stop == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Progress) loop() {
	defer close(p.done)
	interval := p.Interval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			p.print()
			return
		case <-tick.C:
			p.print()
		}
	}
}

// print renders one status line. Unknown totals print the raw count;
// known totals add percentage and ETA from the stage-local rate.
func (p *Progress) print() {
	st := p.stage.Load()
	if st == nil {
		return
	}
	w := p.W
	if w == nil {
		w = io.Discard
	}
	done := st.done.Load()
	elapsed := time.Since(st.t0)
	line := fmt.Sprintf("progress: stage=%s %d", st.name, done)
	if st.total > 0 {
		line += fmt.Sprintf("/%d (%.1f%%)", st.total, 100*float64(done)/float64(st.total))
	}
	if secs := elapsed.Seconds(); secs > 0 && done > 0 {
		rate := float64(done) / secs
		line += fmt.Sprintf(" %.0f/s", rate)
		if st.total > 0 {
			// A stage may overshoot its estimate (coverage counters can
			// pass the record total); clamp so the line reads eta=0s
			// instead of a negative duration.
			remaining := st.total - done
			if remaining < 0 {
				remaining = 0
			}
			eta := time.Duration(float64(remaining) / rate * float64(time.Second))
			line += fmt.Sprintf(" eta=%s", eta.Round(100*time.Millisecond))
		}
	}
	if total := p.shardsTotal.Load(); total > 0 {
		line += fmt.Sprintf(" shards=%d/%d", p.shardsDone.Load(), total)
	}
	fmt.Fprintln(w, line)
}
