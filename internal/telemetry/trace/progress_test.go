package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe strings.Builder for the printer's
// output.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestProgressLine pins the status-line contract: stage name, count
// with total and percentage, and shard completion all appear in the
// final line Stop flushes.
func TestProgressLine(t *testing.T) {
	var buf syncBuffer
	p := &Progress{W: &buf, Interval: time.Hour} // only the final print
	p.Start()
	p.Stage("blocking", 200)
	p.Add(50)
	p.Shards(3, 8)
	p.Stop()
	out := buf.String()
	for _, want := range []string{"stage=blocking", "50/200", "25.0%", "shards=3/8"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress line missing %q:\n%s", want, out)
		}
	}
}

// TestProgressUnknownTotal pins the open-ended form (ingest has no
// record count up front): raw count, no percentage or ETA.
func TestProgressUnknownTotal(t *testing.T) {
	var buf syncBuffer
	p := &Progress{W: &buf, Interval: time.Hour}
	p.Start()
	p.Stage("ingest", 0)
	p.Add(123)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "stage=ingest 123") {
		t.Errorf("unknown-total line wrong:\n%s", out)
	}
	if strings.Contains(out, "%") || strings.Contains(out, "eta=") {
		t.Errorf("unknown total printed percentage/ETA:\n%s", out)
	}
}

// TestProgressETAClampsAtZero pins the overshoot form: when the counter
// passes the stage total (coverage can exceed the record estimate), the
// ETA clamps to zero instead of rendering a negative duration.
func TestProgressETAClampsAtZero(t *testing.T) {
	var buf syncBuffer
	p := &Progress{W: &buf, Interval: time.Hour}
	p.Start()
	p.Stage("blocking", 100)
	p.Add(150) // done > total
	time.Sleep(10 * time.Millisecond) // non-zero elapsed so the rate term prints
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "eta=0s") {
		t.Errorf("overshot stage should print eta=0s:\n%s", out)
	}
	if strings.Contains(out, "eta=-") {
		t.Errorf("negative ETA leaked:\n%s", out)
	}
}

// TestProgressETAExactTotal pins the done == total boundary: finished
// stages report eta=0s rather than dropping the field mid-format.
func TestProgressETAExactTotal(t *testing.T) {
	var buf syncBuffer
	p := &Progress{W: &buf, Interval: time.Hour}
	p.Start()
	p.Stage("scoring", 100)
	p.Add(100)
	time.Sleep(10 * time.Millisecond)
	p.Stop()
	if out := buf.String(); !strings.Contains(out, "eta=0s") {
		t.Errorf("completed stage should print eta=0s:\n%s", out)
	}
}

// TestProgressStopWithoutStart pins that Stop on a never-started (or
// nil) Progress is a no-op — teardown paths call it unconditionally.
func TestProgressStopWithoutStart(t *testing.T) {
	p := &Progress{}
	p.Stop()
	var nilP *Progress
	nilP.Stop()
}

// TestProgressConcurrentAdds hammers the hooks from worker-pool-like
// goroutines while the printer runs — with -race this is the progress
// hook's data-race certificate.
func TestProgressConcurrentAdds(t *testing.T) {
	var buf syncBuffer
	p := &Progress{W: &buf, Interval: time.Millisecond}
	p.Start()
	p.Stage("scoring", 1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				p.Add(1)
				p.Shards(i%4, 4)
			}
		}()
	}
	wg.Wait()
	p.Stop()
	if !strings.Contains(buf.String(), "1000/1000") {
		t.Errorf("final count wrong:\n%s", buf.String())
	}
}
