package trace

import "sort"

// TreeSchemaVersion identifies the SpanTree JSON layout embedded in
// telemetry.RunReport; bump it on any field removal or rename.
const TreeSchemaVersion = 1

// Node is one span in the compact tree export.
type Node struct {
	Name       string           `json:"name"`
	Kind       string           `json:"kind"`
	StartNS    int64            `json:"start_ns"`
	DurationNS int64            `json:"duration_ns"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []*Node          `json:"children,omitempty"`
}

// SpanTree is the versioned span section of a run report: the run's
// span hierarchy plus the flight recorder's summary when a sampler ran.
type SpanTree struct {
	SchemaVersion int             `json:"schema_version"`
	Spans         int             `json:"spans"`
	Roots         []*Node         `json:"roots"`
	Sampler       *SamplerSummary `json:"sampler,omitempty"`
}

// TreeMode selects how Tree renders the hierarchy.
type TreeMode int

const (
	// Full keeps every span with its timings, children in creation
	// order — the report form humans read.
	Full TreeMode = iota
	// Canonical is the determinism-test form: timings zeroed,
	// configuration-dependent spans (KindWorker, KindShard, KindSetup)
	// pruned with their subtrees, and siblings sorted under a total
	// order. Two runs over the same input and parameters produce
	// byte-identical Canonical trees for every worker and shard count.
	Canonical
)

// Tree exports the span hierarchy. Orphans (spans whose parent was
// never published — impossible through the public API) and roots beyond
// the run span all surface as roots, so nothing recorded is dropped.
func (t *Tracer) Tree(mode TreeMode) *SpanTree {
	if t == nil {
		return nil
	}
	spans := t.spans()
	tree := &SpanTree{SchemaVersion: TreeSchemaVersion, Spans: len(spans)}
	if s := t.sampler.Load(); s != nil {
		tree.Sampler = s.Summary()
	}
	nodes := make(map[*Span]*Node, len(spans))
	for _, s := range spans {
		n := &Node{
			Name:       s.name,
			Kind:       s.kind.String(),
			StartNS:    s.start,
			DurationNS: s.endOrNow() - s.start,
		}
		for _, a := range s.attrs {
			if mode == Canonical && a.Volatile {
				continue
			}
			if n.Attrs == nil {
				n.Attrs = make(map[string]int64, len(s.attrs))
			}
			n.Attrs[a.Key] = a.Value
		}
		nodes[s] = n
	}
	for _, s := range spans {
		n := nodes[s]
		if s.parent != nil {
			if p := nodes[s.parent]; p != nil {
				p.Children = append(p.Children, n)
				continue
			}
		}
		tree.Roots = append(tree.Roots, n)
	}
	if mode == Canonical {
		tree.Roots = canonicalize(tree.Roots)
		tree.Sampler = nil
		total := 0
		for _, r := range tree.Roots {
			total += countNodes(r)
		}
		tree.Spans = total
	}
	return tree
}

// StripTimings zeroes every start offset and duration in place — golden
// report tests compare span shape and counters, never wall clock.
func (st *SpanTree) StripTimings() {
	if st == nil {
		return
	}
	var walk func(*Node)
	walk = func(n *Node) {
		n.StartNS = 0
		n.DurationNS = 0
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range st.Roots {
		walk(r)
	}
	if st.Sampler != nil {
		st.Sampler = nil
	}
}

// canonicalize prunes variable-cardinality subtrees, zeroes timings,
// and sorts siblings by (kind, name, attrs) — a total order over the
// deterministic spans, since sibling iterations differ in their minsup
// attribute and sibling stages differ in name.
func canonicalize(roots []*Node) []*Node {
	var walk func(ns []*Node) []*Node
	walk = func(ns []*Node) []*Node {
		out := ns[:0]
		for _, n := range ns {
			if n.Kind == KindWorker.String() || n.Kind == KindShard.String() || n.Kind == KindSetup.String() {
				continue
			}
			n.StartNS = 0
			n.DurationNS = 0
			n.Children = walk(n.Children)
			out = append(out, n)
		}
		sort.SliceStable(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Kind != b.Kind {
				return kindOf(a.Kind) < kindOf(b.Kind)
			}
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			return attrMapString(a.Attrs) < attrMapString(b.Attrs)
		})
		return out
	}
	return walk(append([]*Node(nil), roots...))
}

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// attrMapString renders a node's attrs as a deterministic sort key.
func attrMapString(m map[string]int64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]Attr, 0, len(keys))
	for _, k := range keys {
		attrs = append(attrs, Attr{Key: k, Value: m[k]})
	}
	return attrString(attrs)
}

// MaxDepth reports the deepest nesting level of the tree (a run with
// stage → iteration → worker spans has depth 4). The trace-smoke CI
// assertion keys on it.
func (st *SpanTree) MaxDepth() int {
	if st == nil {
		return 0
	}
	var walk func(n *Node) int
	walk = func(n *Node) int {
		best := 0
		for _, c := range n.Children {
			if d := walk(c); d > best {
				best = d
			}
		}
		return best + 1
	}
	best := 0
	for _, r := range st.Roots {
		if d := walk(r); d > best {
			best = d
		}
	}
	return best
}
