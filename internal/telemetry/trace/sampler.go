package trace

import (
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sample is one flight-recorder observation.
type Sample struct {
	// AtNS is the sample's offset from the tracer's start.
	AtNS int64 `json:"at_ns"`
	// HeapBytes is the live heap (runtime.MemStats.HeapAlloc).
	HeapBytes int64 `json:"heap_bytes"`
	// RSSBytes is the process resident set from /proc/self/statm;
	// meaningless on platforms without procfs — check the sampler's
	// RSSAvailable before trusting it.
	RSSBytes int64 `json:"rss_bytes"`
	// Goroutines is runtime.NumGoroutine.
	Goroutines int64 `json:"goroutines"`
	// GCPauseNS is the cumulative stop-the-world pause total.
	GCPauseNS int64 `json:"gc_pause_total_ns"`
	// GCCycles is the completed GC cycle count.
	GCCycles int64 `json:"gc_cycles"`
}

// DefaultSampleInterval balances resolution against cost: ReadMemStats
// briefly stops the world, and 50ms keeps that well under 0.1% of run
// time while still resolving per-iteration RSS swings.
const DefaultSampleInterval = 50 * time.Millisecond

// defaultSamplerCap bounds the ring: at the default interval it holds
// the last ~27 minutes, far beyond any current run.
const defaultSamplerCap = 1 << 15

// Sampler is the runtime flight recorder: a background goroutine
// sampling heap, RSS, goroutine count, and GC activity into a bounded
// ring buffer. When the ring fills, the oldest samples are overwritten
// — like a flight recorder, the recent past survives.
type Sampler struct {
	tracer   *Tracer
	interval time.Duration
	rssOK    bool // procfs readable at start: rss series and summary present

	mu      sync.Mutex
	ring    []Sample
	next    int
	wrapped bool
	taken   int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartSampler launches the flight recorder at the given interval
// (<= 0 selects DefaultSampleInterval). The sampler's series join the
// Chrome export as counter events and the run report as a summary.
// Stop it before the process exits; a second StartSampler replaces the
// first in the exports but does not stop it.
func (t *Tracer) StartSampler(interval time.Duration) *Sampler {
	if t == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{
		tracer:   t,
		interval: interval,
		ring:     make([]Sample, 0, defaultSamplerCap),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	_, s.rssOK = readRSS()
	t.sampler.Store(s)
	go s.loop()
	return s
}

// Sampler returns the tracer's flight recorder, or nil.
func (t *Tracer) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.sampler.Load()
}

func (s *Sampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	s.take() // one sample at start, so even sub-interval runs record
	for {
		select {
		case <-s.stop:
			s.take() // and one at the end, for the same reason
			return
		case <-tick.C:
			s.take()
		}
	}
}

// take records one sample into the ring.
func (s *Sampler) take() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rss, _ := readRSS()
	smp := Sample{
		AtNS:       s.tracer.now(),
		HeapBytes:  int64(ms.HeapAlloc),
		RSSBytes:   rss,
		Goroutines: int64(runtime.NumGoroutine()),
		GCPauseNS:  int64(ms.PauseTotalNs),
		GCCycles:   int64(ms.NumGC),
	}
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, smp)
	} else {
		s.ring[s.next] = smp
		s.wrapped = true
	}
	s.next = (s.next + 1) % cap(s.ring)
	s.taken++
	s.mu.Unlock()
}

// Stop halts the sampling goroutine after one final sample and waits
// for it to exit. Idempotent and safe on a nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// RSSAvailable reports whether the platform exposed resident-set
// samples when the recorder started. When false the rss counter lane is
// left out of the Chrome export and the summary omits its RSS fields —
// an absent series, not a series of zeros masquerading as measurements.
func (s *Sampler) RSSAvailable() bool { return s != nil && s.rssOK }

// Samples returns the recorded window in chronological order.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.wrapped {
		return append([]Sample(nil), s.ring...)
	}
	out := make([]Sample, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// SamplerSummary condenses the flight recorder for the run report:
// sample accounting plus peak and median of the memory series.
type SamplerSummary struct {
	IntervalNS     int64 `json:"interval_ns"`
	Samples        int64 `json:"samples"`
	Retained       int   `json:"retained"`
	PeakHeapBytes  int64 `json:"peak_heap_bytes"`
	P50HeapBytes   int64 `json:"p50_heap_bytes"`
	// The RSS pair is omitted (not zeroed) when procfs is unavailable.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
	P50RSSBytes  int64 `json:"p50_rss_bytes,omitempty"`
	PeakGoroutines int64 `json:"peak_goroutines"`
	GCPauseNS      int64 `json:"gc_pause_total_ns"`
	GCCycles       int64 `json:"gc_cycles"`
}

// Summary computes the report-form condensation of the current window.
func (s *Sampler) Summary() *SamplerSummary {
	if s == nil {
		return nil
	}
	samples := s.Samples()
	s.mu.Lock()
	sum := &SamplerSummary{IntervalNS: int64(s.interval), Samples: s.taken, Retained: len(samples)}
	s.mu.Unlock()
	if len(samples) == 0 {
		return sum
	}
	heap := make([]int64, 0, len(samples))
	rss := make([]int64, 0, len(samples))
	for _, smp := range samples {
		heap = append(heap, smp.HeapBytes)
		rss = append(rss, smp.RSSBytes)
		if smp.Goroutines > sum.PeakGoroutines {
			sum.PeakGoroutines = smp.Goroutines
		}
	}
	last := samples[len(samples)-1]
	sum.GCPauseNS = last.GCPauseNS
	sum.GCCycles = last.GCCycles
	sum.PeakHeapBytes, sum.P50HeapBytes = peakAndP50(heap)
	if s.rssOK {
		sum.PeakRSSBytes, sum.P50RSSBytes = peakAndP50(rss)
	}
	return sum
}

func peakAndP50(vs []int64) (peak, p50 int64) {
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)-1], sorted[len(sorted)/2]
}

// statmPath is the procfs source for resident-set samples. A variable
// so tests can point it at a missing file and exercise the
// no-procfs path on any platform.
var statmPath = "/proc/self/statm"

// readRSS reads the resident set size from statmPath (field 2, in
// pages). ok is false on platforms without procfs — callers drop the
// series instead of recording zeros.
func readRSS() (rss int64, ok bool) {
	data, err := os.ReadFile(statmPath)
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * int64(os.Getpagesize()), true
}
