package trace

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// mustJSON round-trips a value through encoding/json, failing the test
// on error — both a serializer check and a canonical comparison form.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(data)
}

// chromeFile is the loadable subset of the trace-event format the tests
// decode exports back into.
type chromeFile struct {
	TraceEvents []struct {
		Name string           `json:"name"`
		Ph   string           `json:"ph"`
		Ts   float64          `json:"ts"`
		Dur  float64          `json:"dur"`
		Pid  int              `json:"pid"`
		Tid  int              `json:"tid"`
		Args json.RawMessage  `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestWriteChromeNil pins the disabled export: a nil tracer still
// writes a loadable (empty) trace, so -trace-out plumbing never has to
// branch.
func TestWriteChromeNil(t *testing.T) {
	var tr *Tracer
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatalf("nil export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 0 || f.DisplayTimeUnit != "ms" {
		t.Fatalf("nil export = %+v", f)
	}
}

// TestWriteChrome pins the export contract the CI smoke validation and
// Perfetto both rely on: valid JSON, complete events for every span,
// per-worker thread_name metadata, and non-decreasing timestamps.
func TestWriteChrome(t *testing.T) {
	tr := New()
	run := tr.StartSpan(nil, "run", WithKind(KindRun)).Attr("records", 10)
	st := run.Child("scoring", WithKind(KindStage))
	for w := 0; w < 2; w++ {
		st.Child("score_worker", WithKind(KindWorker), WithTrack(w+1)).End()
	}
	st.End()
	run.End()

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	var complete, meta int
	workerTracks := map[string]bool{}
	lastTS := -1.0
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Ts < lastTS {
				t.Fatalf("timestamps not monotonic: %g after %g (%s)", e.Ts, lastTS, e.Name)
			}
			lastTS = e.Ts
			if e.Dur < 0 {
				t.Fatalf("negative duration on %s", e.Name)
			}
		case "M":
			meta++
			if e.Name == "thread_name" {
				var args map[string]string
				if err := json.Unmarshal(e.Args, &args); err != nil {
					t.Fatal(err)
				}
				workerTracks[args["name"]] = true
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta == 0 {
		t.Fatal("no metadata events")
	}
	if !workerTracks["worker 0"] || !workerTracks["worker 1"] {
		t.Fatalf("worker tracks missing: %+v", workerTracks)
	}

	// The run span's attrs ride along as args.
	found := false
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.Name == "run" {
			var args map[string]int64
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatal(err)
			}
			found = args["records"] == 10
		}
	}
	if !found {
		t.Fatal("run span args missing records attr")
	}
}

// TestWriteChromeCounterSeries pins the flight-recorder lanes: with a
// sampler attached the export carries "C" counter events on the
// dedicated sampler track.
func TestWriteChromeCounterSeries(t *testing.T) {
	tr := New()
	tr.StartSpan(nil, "run", WithKind(KindRun)).End()
	smp := tr.StartSampler(time.Hour) // start+stop samples only; no timer churn
	smp.Stop()

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int{}
	for _, e := range f.TraceEvents {
		if e.Ph == "C" {
			if e.Tid != samplerTrack {
				t.Fatalf("counter %s on track %d, want %d", e.Name, e.Tid, samplerTrack)
			}
			counters[e.Name]++
		}
	}
	for _, name := range []string{"heap_bytes", "rss_bytes", "goroutines", "gc_pause_total_ns"} {
		if counters[name] == 0 {
			t.Fatalf("counter series %q missing (have %+v)", name, counters)
		}
	}
}

// TestWriteChromeFile pins the file form of the export.
func TestWriteChromeFile(t *testing.T) {
	tr := New()
	tr.StartSpan(nil, "run", WithKind(KindRun)).End()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("file is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("file export is empty")
	}
}
