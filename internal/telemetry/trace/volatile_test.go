package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestVolatileAttrs pins the three-surface contract volatile attributes
// carry: present in the Full tree (debugging), present in the Chrome
// export args (the CI e2e validation asserts build_blocks cache_hits
// there), and absent from the Canonical tree — so runs that differ only
// in cache configuration still canonicalize byte-identically.
func TestVolatileAttrs(t *testing.T) {
	tr := New()
	run := tr.StartSpan(nil, "run", WithKind(KindRun))
	op := run.Child("build_blocks", WithKind(KindOp)).
		Attr("blocks", 7).
		VolatileAttr("cache_hits", 42).
		VolatileAttr("cache_misses", 3)
	op.End()
	run.End()

	full := tr.Tree(Full)
	node := full.Roots[0].Children[0]
	if node.Attrs["blocks"] != 7 || node.Attrs["cache_hits"] != 42 || node.Attrs["cache_misses"] != 3 {
		t.Fatalf("Full tree attrs = %v, want stable and volatile attrs", node.Attrs)
	}

	canon := tr.Tree(Canonical)
	cnode := canon.Roots[0].Children[0]
	if cnode.Attrs["blocks"] != 7 {
		t.Fatalf("Canonical tree lost a stable attr: %v", cnode.Attrs)
	}
	if _, ok := cnode.Attrs["cache_hits"]; ok {
		t.Fatalf("Canonical tree kept a volatile attr: %v", cnode.Attrs)
	}
	if _, ok := cnode.Attrs["cache_misses"]; ok {
		t.Fatalf("Canonical tree kept a volatile attr: %v", cnode.Attrs)
	}

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	found := false
	for _, e := range f.TraceEvents {
		if e.Ph != "X" || e.Name != "build_blocks" {
			continue
		}
		var args map[string]int64
		if err := json.Unmarshal(e.Args, &args); err != nil {
			t.Fatal(err)
		}
		if args["cache_hits"] != 42 || args["blocks"] != 7 {
			t.Fatalf("chrome args = %v, want volatile attrs exported", args)
		}
		found = true
	}
	if !found {
		t.Fatal("build_blocks event missing from chrome export")
	}
}

// TestVolatileAttrNilSafety extends the nil contract to the new entry
// point.
func TestVolatileAttrNilSafety(t *testing.T) {
	var sp *Span
	if sp.VolatileAttr("x", 1) != nil {
		t.Fatal("nil span returned a live span from VolatileAttr")
	}
	var tr *Tracer
	tr.StartSpan(nil, "run").VolatileAttr("x", 1).End()
}

// TestCanonicalEqualAcrossVolatileDivergence is the property the
// volatile mechanism exists for: two traces whose spans differ only in
// volatile attr values produce byte-identical canonical JSON.
func TestCanonicalEqualAcrossVolatileDivergence(t *testing.T) {
	build := func(hits int64) string {
		tr := New()
		run := tr.StartSpan(nil, "run", WithKind(KindRun))
		run.Child("build_blocks", WithKind(KindOp)).
			Attr("blocks", 5).
			VolatileAttr("cache_hits", hits).
			End()
		run.End()
		tree := tr.Tree(Canonical)
		return mustJSON(t, tree)
	}
	if a, b := build(0), build(10_000); a != b {
		t.Fatalf("canonical trees diverge on volatile attrs:\n%s\nvs\n%s", a, b)
	}
}
