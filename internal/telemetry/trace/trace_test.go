package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every entry point through nil handles — the
// "disabled is free" contract: a pipeline built with no tracer must run
// all its span sites without branching or panicking.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(nil, "run", WithKind(KindRun))
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	child := sp.Child("stage", WithKind(KindStage), WithTrack(3))
	if child != nil {
		t.Fatal("nil span returned a live child")
	}
	sp.Attr("records", 1).Attrs(map[string]int64{"a": 1}).End()
	child.End()
	if tr.Len() != 0 {
		t.Fatal("nil tracer has spans")
	}
	if got := tr.Tree(Full); got != nil {
		t.Fatalf("nil tracer tree = %+v", got)
	}
	if s := tr.StartSampler(0); s != nil {
		t.Fatal("nil tracer started a sampler")
	}
	tr.Sampler().Stop()
	var smp *Sampler
	smp.Stop()
	if smp.Samples() != nil || smp.Summary() != nil {
		t.Fatal("nil sampler returned data")
	}
	var p *Progress
	p.Stage("ingest", 10)
	p.Add(5)
	p.Shards(1, 4)
	p.Start()
	p.Stop()
	var st *SpanTree
	st.StripTimings()
	if st.MaxDepth() != 0 {
		t.Fatal("nil tree has depth")
	}
}

// TestTreeShape builds a small run → stage → iteration hierarchy and
// checks the Full export: parentage, creation-order children, attrs, and
// depth.
func TestTreeShape(t *testing.T) {
	tr := New()
	run := tr.StartSpan(nil, "run", WithKind(KindRun)).Attr("records", 100)
	blocking := run.Child("blocking", WithKind(KindStage))
	it1 := blocking.Child("iteration", WithKind(KindIteration)).Attr("minsup", 8)
	it1.Child("tree_build").End()
	it1.End()
	it2 := blocking.Child("iteration", WithKind(KindIteration)).Attr("minsup", 4)
	it2.End()
	blocking.End()
	run.Child("rank", WithKind(KindStage)).End()
	run.End()

	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	tree := tr.Tree(Full)
	if tree.SchemaVersion != TreeSchemaVersion || tree.Spans != 6 {
		t.Fatalf("tree header = %+v", tree)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "run" || tree.Roots[0].Kind != "run" {
		t.Fatalf("roots = %+v", tree.Roots)
	}
	root := tree.Roots[0]
	if root.Attrs["records"] != 100 {
		t.Fatalf("root attrs = %+v", root.Attrs)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "blocking" || root.Children[1].Name != "rank" {
		t.Fatalf("stage order not creation order: %+v", root.Children)
	}
	iters := root.Children[0].Children
	if len(iters) != 2 || iters[0].Attrs["minsup"] != 8 || iters[1].Attrs["minsup"] != 4 {
		t.Fatalf("iterations = %+v", iters)
	}
	if d := tree.MaxDepth(); d != 4 {
		t.Fatalf("MaxDepth = %d, want 4 (run→stage→iteration→op)", d)
	}
}

// TestEndIdempotent pins that the first End wins: a double End (or a
// racing End) must not move the recorded duration.
func TestEndIdempotent(t *testing.T) {
	tr := New()
	sp := tr.StartSpan(nil, "op")
	sp.End()
	first := sp.end.Load()
	if first == 0 {
		t.Fatal("End did not record")
	}
	time.Sleep(time.Millisecond)
	sp.End()
	if got := sp.end.Load(); got != first {
		t.Fatalf("second End moved the end time: %d -> %d", first, got)
	}
}

// TestAttrsSorted pins that map-form attributes land in key order
// regardless of map iteration randomness.
func TestAttrsSorted(t *testing.T) {
	tr := New()
	sp := tr.StartSpan(nil, "op").Attrs(map[string]int64{"zeta": 1, "alpha": 2, "mid": 3})
	if len(sp.attrs) != 3 || sp.attrs[0].Key != "alpha" || sp.attrs[1].Key != "mid" || sp.attrs[2].Key != "zeta" {
		t.Fatalf("attrs not sorted: %+v", sp.attrs)
	}
}

// TestConcurrentSpanCreation hammers StartSpan/Child/End from many
// goroutines — the Treiber-stack publication path the mining and scoring
// pools rely on. Run with -race this is the span system's data-race
// certificate; without it it still checks no span is lost.
func TestConcurrentSpanCreation(t *testing.T) {
	tr := New()
	root := tr.StartSpan(nil, "run", WithKind(KindRun))
	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := root.Child("worker", WithKind(KindWorker), WithTrack(w+1))
			for i := 0; i < perWorker; i++ {
				wsp.Child("op").Attr("i", int64(i)).End()
			}
			wsp.Attr("ops", perWorker).End()
		}(w)
	}
	wg.Wait()
	root.End()
	want := 1 + workers*(perWorker+1)
	if tr.Len() != want {
		t.Fatalf("Len = %d, want %d", tr.Len(), want)
	}
	tree := tr.Tree(Full)
	if tree.Spans != want || len(tree.Roots) != 1 {
		t.Fatalf("tree lost spans: %d roots=%d", tree.Spans, len(tree.Roots))
	}
}

// TestCanonicalPrunesFanOut pins the determinism mechanism: worker,
// shard, and setup subtrees vanish under Canonical, timings zero, and
// siblings sort — so a 1-worker and an 8-worker run of the same workload
// export identical canonical trees.
func TestCanonicalPrunesFanOut(t *testing.T) {
	build := func(workers int) *SpanTree {
		tr := New()
		run := tr.StartSpan(nil, "run", WithKind(KindRun)).Attr("records", 50)
		st := run.Child("scoring", WithKind(KindStage))
		st.Child("profile_build", WithKind(KindSetup)).End()
		for w := 0; w < workers; w++ {
			wsp := st.Child("score_worker", WithKind(KindWorker), WithTrack(w+1))
			wsp.Child("chunk").End() // descendants of pruned spans go too
			wsp.End()
		}
		st.End()
		run.End()
		return tr.Tree(Canonical)
	}
	one, eight := build(1), build(8)
	a, b := marshal(t, one), marshal(t, eight)
	if a != b {
		t.Fatalf("canonical trees diverge across worker counts:\n%s\nvs\n%s", a, b)
	}
	if one.Spans != 2 {
		t.Fatalf("canonical span count = %d, want 2 (run, stage)", one.Spans)
	}
	if one.Roots[0].StartNS != 0 || one.Roots[0].DurationNS != 0 {
		t.Fatal("canonical tree kept timings")
	}
	if one.Sampler != nil {
		t.Fatal("canonical tree kept the sampler summary")
	}
}

// TestCanonicalSortsSiblings pins the sibling total order: stages by
// name, same-name iterations by attrs.
func TestCanonicalSortsSiblings(t *testing.T) {
	tr := New()
	run := tr.StartSpan(nil, "run", WithKind(KindRun))
	run.Child("iteration", WithKind(KindIteration)).Attr("minsup", 8).End()
	run.Child("iteration", WithKind(KindIteration)).Attr("minsup", 16).End()
	run.Child("blocking", WithKind(KindStage)).End()
	run.End()
	tree := tr.Tree(Canonical)
	kids := tree.Roots[0].Children
	if len(kids) != 3 {
		t.Fatalf("children = %+v", kids)
	}
	// Stage kind sorts before iteration kind; iterations order by attrs.
	if kids[0].Name != "blocking" {
		t.Fatalf("stage not first: %+v", kids)
	}
	if kids[1].Attrs["minsup"] != 16 || kids[2].Attrs["minsup"] != 8 {
		t.Fatalf("iteration attr order wrong: %+v %+v", kids[1].Attrs, kids[2].Attrs)
	}
}

// TestStripTimings pins the golden-report form: shape and attrs survive,
// wall clock does not.
func TestStripTimings(t *testing.T) {
	tr := New()
	run := tr.StartSpan(nil, "run", WithKind(KindRun)).Attr("records", 9)
	run.Child("stage", WithKind(KindStage)).End()
	run.End()
	tree := tr.Tree(Full)
	tree.StripTimings()
	if tree.Roots[0].StartNS != 0 || tree.Roots[0].DurationNS != 0 ||
		tree.Roots[0].Children[0].DurationNS != 0 {
		t.Fatal("timings survived StripTimings")
	}
	if tree.Roots[0].Attrs["records"] != 9 {
		t.Fatal("attrs did not survive StripTimings")
	}
}

// TestKindRoundTrip pins String/kindOf as inverses — canonicalize keys
// pruning on the string form, so a drifting name would silently stop
// pruning its kind.
func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindRun, KindStage, KindIteration, KindShard, KindWorker, KindSetup, KindOp} {
		if got := kindOf(k.String()); got != k {
			t.Errorf("kindOf(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	return fmt.Sprintf("%+v", mustJSON(t, v))
}
