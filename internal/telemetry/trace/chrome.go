package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Object Format" with a traceEvents array), the subset Perfetto and
// chrome://tracing both load: complete events ("X") for spans, counter
// events ("C") for flight-recorder series, and metadata ("M") naming
// the tracks.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeTrace is the top-level export object.
type chromeTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

const chromePid = 1

// WriteChrome renders the trace — spans as complete events on their
// tracks, flight-recorder samples as counter series — as Chrome
// trace-event JSON. Events are emitted in ascending timestamp order
// (ties broken by track and name), so consumers that stream the file
// see a monotonic timeline. Load the output in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}

	type ordered struct {
		ts    float64
		tid   int
		name  string
		seq   int
		event any
	}
	var events []ordered
	tracks := map[int]bool{}
	for i, s := range t.spans() {
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   float64(s.start) / 1e3,
			Dur:  float64(s.endOrNow()-s.start) / 1e3,
			Pid:  chromePid,
			Tid:  int(s.track),
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]int64, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		tracks[ev.Tid] = true
		events = append(events, ordered{ts: ev.Ts, tid: ev.Tid, name: ev.Name, seq: i, event: ev})
	}
	if smp := t.sampler.Load(); smp != nil {
		type lane struct {
			name string
			key  string
			v    int64
		}
		for i, s := range smp.Samples() {
			ts := float64(s.AtNS) / 1e3
			counters := []lane{{"heap_bytes", "bytes", s.HeapBytes}}
			if smp.RSSAvailable() {
				// No procfs means no measurements: leave the lane out
				// rather than plot a flat zero line.
				counters = append(counters, lane{"rss_bytes", "bytes", s.RSSBytes})
			}
			counters = append(counters,
				lane{"goroutines", "count", s.Goroutines},
				lane{"gc_pause_total_ns", "ns", s.GCPauseNS})
			for _, c := range counters {
				events = append(events, ordered{ts: ts, tid: samplerTrack, name: c.name, seq: i, event: chromeEvent{
					Name: c.name, Ph: "C", Ts: ts, Pid: chromePid, Tid: samplerTrack,
					Args: map[string]int64{c.key: c.v},
				}})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.seq < b.seq
	})

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]json.RawMessage, 0, len(events)+len(tracks)+2)}
	appendEvent := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out.TraceEvents = append(out.TraceEvents, raw)
		return nil
	}
	// Track names first (metadata events are timestamp-less).
	if err := appendEvent(chromeMeta{Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]string{"name": "pipeline"}}); err != nil {
		return err
	}
	trackIDs := make([]int, 0, len(tracks))
	for tid := range tracks {
		trackIDs = append(trackIDs, tid)
	}
	sort.Ints(trackIDs)
	for _, tid := range trackIDs {
		name := "pipeline"
		if tid > 0 && tid < samplerTrack {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		if err := appendEvent(chromeMeta{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]string{"name": name}}); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := appendEvent(e.event); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// WriteChromeFile writes the Chrome trace-event export to path (the
// CLIs' -trace-out flag).
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// samplerTrack is the Chrome tid the flight recorder's counter series
// land on — far above any plausible worker fan-out so the lanes never
// collide.
const samplerTrack = 1 << 16
