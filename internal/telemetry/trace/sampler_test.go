package trace

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSamplerRecords pins the flight recorder's basic contract: it
// samples at start and stop (so even sub-interval runs record), the
// series is chronological, and every sample carries live runtime
// readings.
func TestSamplerRecords(t *testing.T) {
	tr := New()
	smp := tr.StartSampler(5 * time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	smp.Stop()

	samples := smp.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d, want >= 2 (start + stop)", len(samples))
	}
	last := int64(-1)
	for i, s := range samples {
		if s.AtNS < last {
			t.Fatalf("sample %d out of order: %d after %d", i, s.AtNS, last)
		}
		last = s.AtNS
		if s.HeapBytes <= 0 || s.Goroutines <= 0 {
			t.Fatalf("sample %d has no runtime readings: %+v", i, s)
		}
	}
	if tr.Sampler() != smp {
		t.Fatal("tracer lost its sampler")
	}
}

// TestSamplerSummary pins the report condensation: counts, peaks, and
// medians derived from the recorded window.
func TestSamplerSummary(t *testing.T) {
	tr := New()
	smp := tr.StartSampler(time.Hour) // only the start and stop samples
	smp.Stop()
	sum := smp.Summary()
	if sum.IntervalNS != int64(time.Hour) {
		t.Fatalf("interval = %d", sum.IntervalNS)
	}
	if sum.Samples < 2 || sum.Retained != int(sum.Samples) {
		t.Fatalf("accounting = %+v", sum)
	}
	if sum.PeakHeapBytes <= 0 || sum.P50HeapBytes <= 0 || sum.P50HeapBytes > sum.PeakHeapBytes {
		t.Fatalf("heap stats = %+v", sum)
	}
	if sum.PeakGoroutines <= 0 {
		t.Fatalf("goroutine peak = %+v", sum)
	}
}

// TestSamplerRSSUnavailable pins the no-procfs contract: when statm is
// unreadable the summary omits the RSS pair (JSON omitempty, zero
// values) and the Chrome export drops the rss_bytes counter lane —
// absent series, not zero-valued ones.
func TestSamplerRSSUnavailable(t *testing.T) {
	orig := statmPath
	statmPath = filepath.Join(t.TempDir(), "no-such-statm")
	defer func() { statmPath = orig }()

	tr := New()
	tr.StartSpan(nil, "run", WithKind(KindRun)).End()
	smp := tr.StartSampler(time.Hour)
	smp.Stop()
	if smp.RSSAvailable() {
		t.Fatal("RSSAvailable = true with unreadable statm")
	}
	sum := smp.Summary()
	if sum.PeakRSSBytes != 0 || sum.P50RSSBytes != 0 {
		t.Fatalf("RSS summary fields should be zero (omitted): %+v", sum)
	}
	if sum.PeakHeapBytes <= 0 {
		t.Fatalf("heap stats must survive RSS unavailability: %+v", sum)
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "rss") {
		t.Fatalf("summary JSON should omit RSS fields:\n%s", raw)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "rss_bytes") {
		t.Fatalf("Chrome export kept the rss_bytes lane:\n%s", out)
	}
	if !strings.Contains(out, "heap_bytes") {
		t.Fatalf("Chrome export lost the heap lane:\n%s", out)
	}
}

// TestSamplerRSSAvailable pins the procfs-present path on Linux: the
// series and summary carry real resident-set readings.
func TestSamplerRSSAvailable(t *testing.T) {
	if _, ok := readRSS(); !ok {
		t.Skip("no procfs on this platform")
	}
	tr := New()
	smp := tr.StartSampler(time.Hour)
	smp.Stop()
	if !smp.RSSAvailable() {
		t.Fatal("RSSAvailable = false with readable statm")
	}
	if sum := smp.Summary(); sum.PeakRSSBytes <= 0 || sum.P50RSSBytes <= 0 {
		t.Fatalf("RSS summary empty despite procfs: %+v", sum)
	}
}

// TestSamplerStopIdempotent pins double-Stop safety — the CLIs stop the
// sampler before export and again on teardown.
func TestSamplerStopIdempotent(t *testing.T) {
	tr := New()
	smp := tr.StartSampler(time.Hour)
	smp.Stop()
	smp.Stop() // must not panic or deadlock
}

// TestSamplerInTree pins that a run with a sampler embeds its summary
// in the Full tree export and drops it from the Canonical one.
func TestSamplerInTree(t *testing.T) {
	tr := New()
	tr.StartSpan(nil, "run", WithKind(KindRun)).End()
	tr.StartSampler(time.Hour).Stop()
	if tree := tr.Tree(Full); tree.Sampler == nil || tree.Sampler.Samples < 2 {
		t.Fatalf("Full tree sampler = %+v", tree.Sampler)
	}
	if tree := tr.Tree(Canonical); tree.Sampler != nil {
		t.Fatal("Canonical tree kept the sampler")
	}
}
