package trace

import (
	"testing"
	"time"
)

// TestSamplerRecords pins the flight recorder's basic contract: it
// samples at start and stop (so even sub-interval runs record), the
// series is chronological, and every sample carries live runtime
// readings.
func TestSamplerRecords(t *testing.T) {
	tr := New()
	smp := tr.StartSampler(5 * time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	smp.Stop()

	samples := smp.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d, want >= 2 (start + stop)", len(samples))
	}
	last := int64(-1)
	for i, s := range samples {
		if s.AtNS < last {
			t.Fatalf("sample %d out of order: %d after %d", i, s.AtNS, last)
		}
		last = s.AtNS
		if s.HeapBytes <= 0 || s.Goroutines <= 0 {
			t.Fatalf("sample %d has no runtime readings: %+v", i, s)
		}
	}
	if tr.Sampler() != smp {
		t.Fatal("tracer lost its sampler")
	}
}

// TestSamplerSummary pins the report condensation: counts, peaks, and
// medians derived from the recorded window.
func TestSamplerSummary(t *testing.T) {
	tr := New()
	smp := tr.StartSampler(time.Hour) // only the start and stop samples
	smp.Stop()
	sum := smp.Summary()
	if sum.IntervalNS != int64(time.Hour) {
		t.Fatalf("interval = %d", sum.IntervalNS)
	}
	if sum.Samples < 2 || sum.Retained != int(sum.Samples) {
		t.Fatalf("accounting = %+v", sum)
	}
	if sum.PeakHeapBytes <= 0 || sum.P50HeapBytes <= 0 || sum.P50HeapBytes > sum.PeakHeapBytes {
		t.Fatalf("heap stats = %+v", sum)
	}
	if sum.PeakGoroutines <= 0 {
		t.Fatalf("goroutine peak = %+v", sum)
	}
}

// TestSamplerStopIdempotent pins double-Stop safety — the CLIs stop the
// sampler before export and again on teardown.
func TestSamplerStopIdempotent(t *testing.T) {
	tr := New()
	smp := tr.StartSampler(time.Hour)
	smp.Stop()
	smp.Stop() // must not panic or deadlock
}

// TestSamplerInTree pins that a run with a sampler embeds its summary
// in the Full tree export and drops it from the Canonical one.
func TestSamplerInTree(t *testing.T) {
	tr := New()
	tr.StartSpan(nil, "run", WithKind(KindRun)).End()
	tr.StartSampler(time.Hour).Stop()
	if tree := tr.Tree(Full); tree.Sampler == nil || tree.Sampler.Samples < 2 {
		t.Fatalf("Full tree sampler = %+v", tree.Sampler)
	}
	if tree := tr.Tree(Canonical); tree.Sampler != nil {
		t.Fatal("Canonical tree kept the sampler")
	}
}
