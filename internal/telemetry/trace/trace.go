// Package trace is the pipeline's structured-tracing layer: a
// low-overhead hierarchical span system (run → stage → shard →
// iteration → worker) with explicit parent handles, a runtime flight
// recorder sampling heap/RSS/goroutines/GC into a ring buffer, and a
// live-progress hook for long streaming runs.
//
// Aggregate telemetry (package telemetry's counters and histograms)
// answers "how much, on average"; trace answers "which shard stalled,
// when, and what was RSS doing at that moment" — the question the
// 6.5M-record scale work is debugged with.
//
// Design constraints, in order:
//
//   - Disabled is free. Every entry point tolerates a nil *Tracer, nil
//     *Span, nil *Sampler, and nil *Progress: a disabled pipeline pays
//     one nil check per span site and allocates nothing. Span sites are
//     coarse (stages, iterations, workers, spill flushes) — never
//     per-pair — so even enabled tracing is a rounding error next to
//     the work it describes.
//
//   - Safe under the existing worker pools. Spans are published onto an
//     atomic intrusive list (Treiber stack), so concurrent StartSpan
//     calls from mining and scoring workers never contend on a lock.
//     End is an atomic store. A span's attributes are owned by the
//     goroutine that started it until End.
//
//   - Deterministic output. Timings and span publication order vary run
//     to run, but the span *tree* is a pure function of the input and
//     configuration: Tree(Canonical) strips timings, prunes
//     variable-cardinality spans (workers, shards — their count is the
//     fan-out width, not the workload), and sorts siblings under a
//     total order, yielding byte-identical JSON across worker and shard
//     counts. The equivalence suite locks this down.
//
// Two exporters: WriteChrome emits Chrome trace-event JSON loadable in
// Perfetto (spans as complete events on per-worker tracks, flight
// recorder samples as counter series), and Tree emits the compact
// versioned span tree embedded in telemetry.RunReport.
package trace

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Kind classifies a span for export and canonicalization. Worker and
// shard spans are "variable cardinality": how many exist depends on the
// fan-out configuration, not on the workload, so Canonical prunes them
// when comparing traces across configurations.
type Kind uint8

const (
	// KindRun is the root span of one pipeline run.
	KindRun Kind = iota
	// KindStage is one pipeline stage (ingest, preprocess, blocking,
	// scoring, rank).
	KindStage
	// KindIteration is one minsup level of the MFIBlocks loop.
	KindIteration
	// KindShard is one signature shard's block materialization.
	KindShard
	// KindWorker is one goroutine's share of a parallel fan-out.
	KindWorker
	// KindSetup is a helper step that exists only under some fan-out
	// configurations (the scoring pool's profile-cache build, which the
	// serial path skips); Canonical prunes it like workers and shards.
	KindSetup
	// KindOp is a sequential sub-operation (tree build, spill flush,
	// merge).
	KindOp
)

// String renders the kind for the tree export.
func (k Kind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindStage:
		return "stage"
	case KindIteration:
		return "iteration"
	case KindShard:
		return "shard"
	case KindWorker:
		return "worker"
	case KindSetup:
		return "setup"
	default:
		return "op"
	}
}

// kindOf parses the string form; the inverse of Kind.String.
func kindOf(s string) Kind {
	switch s {
	case "run":
		return KindRun
	case "stage":
		return KindStage
	case "iteration":
		return KindIteration
	case "shard":
		return KindShard
	case "worker":
		return KindWorker
	case "setup":
		return KindSetup
	default:
		return KindOp
	}
}

// Attr is one integer attribute on a span: records, candidates, MFIs,
// spill runs, bytes. Integer-only keeps attributes deterministic and
// the export compact; durations live on the span itself. Volatile
// attributes carry values that legitimately vary across equivalent
// runs (cache hit counts, scheduling artifacts): Full trees and the
// Chrome export keep them, Canonical trees drop them so the
// equivalence suite can compare traces across cache and fan-out
// configurations.
type Attr struct {
	Key      string
	Value    int64
	Volatile bool
}

// Span is one timed node of the run's hierarchy. Create with
// Tracer.StartSpan (root) or Span.Child; finish with End. The starting
// goroutine owns the span's attributes until End; after End the span is
// immutable. A nil *Span is a valid no-op handle, so call sites never
// branch on "tracing enabled".
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	kind   Kind
	track  int32
	start  int64 // ns since tracer start
	end    atomic.Int64
	attrs  []Attr
	next   *Span // intrusive publication list link
}

// Tracer collects one run's spans and flight-recorder samples. Create
// one per run with New; a nil *Tracer disables tracing at zero cost.
type Tracer struct {
	t0      time.Time
	head    atomic.Pointer[Span]
	count   atomic.Int64
	sampler atomic.Pointer[Sampler]
}

// New returns an empty tracer; its clock starts now.
func New() *Tracer {
	return &Tracer{t0: time.Now()}
}

// now returns nanoseconds since the tracer's start.
func (t *Tracer) now() int64 { return int64(time.Since(t.t0)) }

// publish pushes a span onto the lock-free list.
func (t *Tracer) publish(s *Span) {
	for {
		head := t.head.Load()
		s.next = head
		if t.head.CompareAndSwap(head, s) {
			t.count.Add(1)
			return
		}
	}
}

// StartSpan opens a span under parent (nil parent makes a root span —
// normally the single run span). The span inherits its parent's track
// unless WithTrack overrides it.
func (t *Tracer) StartSpan(parent *Span, name string, opts ...Option) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, parent: parent, name: name, start: t.now()}
	if parent != nil {
		s.track = parent.track
	}
	for _, o := range opts {
		o(s)
	}
	t.publish(s)
	return s
}

// Child opens a span under s, through s's tracer. On a nil span it
// returns nil, so a subsystem handed no parent traces nothing.
func (s *Span) Child(name string, opts ...Option) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.StartSpan(s, name, opts...)
}

// Option configures a span at start.
type Option func(*Span)

// WithKind sets the span's kind (default KindOp).
func WithKind(k Kind) Option { return func(s *Span) { s.kind = k } }

// WithTrack places the span on an explicit export track (Chrome tid).
// Parallel fan-outs give each worker its own track so their spans don't
// overlap on one timeline lane; sequential spans inherit the parent's.
func WithTrack(track int) Option { return func(s *Span) { s.track = int32(track) } }

// Attr records one integer attribute. Only the starting goroutine may
// call it, and only before End.
func (s *Span) Attr(key string, value int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// VolatileAttr records one integer attribute excluded from Canonical
// trees. Use it for values that depend on cache state or scheduling —
// anything two equivalent runs may legitimately disagree on. Same
// ownership rule as Attr.
func (s *Span) VolatileAttr(key string, value int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value, Volatile: true})
	return s
}

// Attrs records a map of attributes in sorted key order (maps iterate
// randomly; the span's attribute order must not).
func (s *Span) Attrs(m map[string]int64) *Span {
	if s == nil || len(m) == 0 {
		return s
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.attrs = append(s.attrs, Attr{Key: k, Value: m[k]})
	}
	return s
}

// End closes the span. Idempotent: the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end.CompareAndSwap(0, s.tracer.now())
}

// Len reports how many spans the tracer holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return int(t.count.Load())
}

// Start returns the tracer's epoch (the zero point of every span's
// start offset).
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

// spans returns the published spans in creation order (the publication
// list is LIFO, so it is reversed). Spans still open at export time are
// rendered as ending at the export instant; callers exporting a
// finished run see only closed spans.
func (t *Tracer) spans() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for s := t.head.Load(); s != nil; s = s.next {
		out = append(out, s)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// endOrNow returns the span's end offset, substituting the current
// clock for still-open spans.
func (s *Span) endOrNow() int64 {
	if e := s.end.Load(); e != 0 {
		return e
	}
	return s.tracer.now()
}

// attrString renders attributes as a deterministic sort key.
func attrString(attrs []Attr) string {
	var b []byte
	for _, a := range attrs {
		b = append(b, a.Key...)
		b = append(b, '=')
		b = strconv.AppendInt(b, a.Value, 10)
		b = append(b, ';')
	}
	return string(b)
}
