package telemetry

import (
	"encoding/json"
	"io"
	"os"
)

// RegistrySnapshot is a point-in-time JSON view of every registered
// series, keyed by `family{labels}` — yvbench's -report output, and a
// programmatic alternative to scraping /metrics.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	entries := make([]*series, 0, len(r.order))
	for _, k := range r.order {
		entries = append(entries, r.byKey[k])
	}
	r.mu.RUnlock()
	for _, s := range entries {
		key := s.family + braced(labelString(s.labels))
		switch s.kind {
		case kindCounter:
			snap.Counters[key] = s.c.Value()
		case kindGauge:
			snap.Gauges[key] = s.g.Value()
		default:
			snap.Histograms[key] = s.h.Snapshot()
		}
	}
	return snap
}

// WriteJSON writes the snapshot, indented, to w.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the snapshot to path.
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
