package gazetteer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinValidates(t *testing.T) {
	for _, towns := range []int{0, 5, 30} {
		g := Builtin(towns)
		if err := g.Validate(); err != nil {
			t.Errorf("Builtin(%d): %v", towns, err)
		}
		if g.Len() == 0 {
			t.Errorf("Builtin(%d) empty", towns)
		}
	}
}

func TestBuiltinDeterministic(t *testing.T) {
	a, b := Builtin(10), Builtin(10)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i, p := range a.Places() {
		q := b.Places()[i]
		if p.City != q.City || p.Lat != q.Lat || p.Lon != q.Lon {
			t.Fatalf("entry %d differs: %v vs %v", i, p, q)
		}
	}
}

func TestLookupVariants(t *testing.T) {
	g := Builtin(0)
	turin, ok := g.Lookup("Turin")
	if !ok {
		t.Fatal("Turin not found")
	}
	torino, ok := g.Lookup("Torino")
	if !ok {
		t.Fatal("Torino not found")
	}
	if turin.City != torino.City {
		t.Errorf("Turin and Torino resolve differently: %q vs %q", turin.City, torino.City)
	}
	if _, ok := g.Lookup("Atlantis"); ok {
		t.Error("unknown city resolved")
	}
	// Case-insensitive.
	if _, ok := g.Lookup("  warsaw "); !ok {
		t.Error("normalized lookup failed")
	}
}

func TestDistanceKnownCities(t *testing.T) {
	g := Builtin(0)
	km, ok := g.Distance("Torino", "Moncalieri")
	if !ok {
		t.Fatal("distance lookup failed")
	}
	// The paper quotes Turin-Moncalieri as ~9 km.
	if km < 4 || km > 15 {
		t.Errorf("Torino-Moncalieri = %.1f km, want ~9", km)
	}
	km2, ok := g.Distance("Warszawa", "Rhodes")
	if !ok || km2 < 1500 {
		t.Errorf("Warsaw-Rhodes = %.0f km, want >1500", km2)
	}
	if _, ok := g.Distance("Torino", "Nowhere"); ok {
		t.Error("distance to unknown city should fail")
	}
}

func TestHaversineProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		// Clamp into valid ranges.
		lat1 = math.Mod(math.Abs(lat1), 90)
		lat2 = math.Mod(math.Abs(lat2), 90)
		lon1 = math.Mod(math.Abs(lon1), 180)
		lon2 = math.Mod(math.Abs(lon2), 180)
		d := Haversine(lat1, lon1, lat2, lon2)
		rev := Haversine(lat2, lon2, lat1, lon1)
		self := Haversine(lat1, lon1, lat1, lon1)
		const maxEarth = 20037.6 // half circumference, km
		return d >= 0 && d <= maxEarth+1 && math.Abs(d-rev) < 1e-9 && self < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleSampled(t *testing.T) {
	pts := [][2]float64{{45, 7}, {52, 21}, {36, 28}, {50, 30}, {48, 2}}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				ab := Haversine(a[0], a[1], b[0], b[1])
				bc := Haversine(b[0], b[1], c[0], c[1])
				ac := Haversine(a[0], a[1], c[0], c[1])
				if ac > ab+bc+1e-6 {
					t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestCommunityPlaces(t *testing.T) {
	g := Builtin(5)
	for c := 0; c < NumCommunities; c++ {
		ps := g.CommunityPlaces(Community(c))
		if len(ps) == 0 {
			t.Errorf("community %v has no places", Community(c))
		}
		for _, p := range ps {
			if isDeathSite(p.City) {
				t.Errorf("community %v contains death site %q", Community(c), p.City)
			}
		}
	}
}

func TestDeathSitesShared(t *testing.T) {
	sites := DeathSites()
	if len(sites) < 5 {
		t.Fatalf("only %d death sites", len(sites))
	}
	g := Builtin(0)
	for _, s := range sites {
		if _, ok := g.Lookup(s.City); !ok {
			t.Errorf("death site %q not in catalogue", s.City)
		}
	}
	// The returned slice is a copy.
	sites[0].City = "Mutated"
	if DeathSites()[0].City == "Mutated" {
		t.Error("DeathSites returns shared storage")
	}
}

func TestValidateCatchesBadEntries(t *testing.T) {
	bad := New([]Place{{City: "X", County: "", Region: "R", Country: "C"}})
	if err := bad.Validate(); err == nil {
		t.Error("empty county must fail validation")
	}
	bad2 := New([]Place{{City: "X", County: "Y", Region: "R", Country: "C", Lat: 100}})
	if err := bad2.Validate(); err == nil {
		t.Error("latitude 100 must fail validation")
	}
}

func TestTownExpansionGrowsCatalogue(t *testing.T) {
	small, big := Builtin(0), Builtin(20)
	if big.Len() <= small.Len() {
		t.Errorf("towns did not grow catalogue: %d vs %d", big.Len(), small.Len())
	}
	// Town names must be unique enough to resolve.
	for _, p := range big.Places() {
		got, ok := big.Lookup(p.City)
		if !ok {
			t.Fatalf("place %q not resolvable", p.City)
		}
		if got.Country != p.Country {
			// A name collision resolved to another country's entry; allowed
			// for variants but the base city should win its own name unless
			// claimed earlier.
			continue
		}
	}
}
