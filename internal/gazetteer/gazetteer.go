// Package gazetteer provides the place substrate of the Names Project
// database: a hierarchical place catalogue (City -> County -> Region ->
// Country) with GPS coordinates, spelling variants, and great-circle
// distance. The paper's PlaceXGeoDistance features and the expert item
// similarity (Eq. 1) both resolve place values through a gazetteer.
//
// The built-in catalogue is synthetic but shaped like the six pre-Holocaust
// Jewish communities the paper's stratified sample draws from (Italy,
// Poland, Germany, Hungary, Greece/Rhodes, and the Soviet territories),
// with real anchor cities (Turin, Warsaw, ...) so distances are plausible.
package gazetteer

import (
	"fmt"
	"math"
	"strings"
)

// Place is one city entry with its full administrative hierarchy and
// coordinates.
type Place struct {
	City    string
	County  string
	Region  string
	Country string
	Lat     float64
	Lon     float64
	// Variants are alternative spellings/transliterations of the city
	// name ("Turin" vs "Torino"), all resolving to this place.
	Variants []string
}

// Gazetteer resolves place names to catalogue entries.
type Gazetteer struct {
	places []Place
	byName map[string]int // normalized city name or variant -> index
}

// New builds a gazetteer over the given places. Later entries do not
// displace earlier ones for conflicting names.
func New(places []Place) *Gazetteer {
	g := &Gazetteer{places: places, byName: make(map[string]int)}
	for i, p := range places {
		g.addName(p.City, i)
		for _, v := range p.Variants {
			g.addName(v, i)
		}
	}
	return g
}

func (g *Gazetteer) addName(name string, idx int) {
	key := Normalize(name)
	if _, taken := g.byName[key]; !taken {
		g.byName[key] = idx
	}
}

// Normalize lower-cases and trims a place name for lookup.
func Normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Lookup resolves a city name or variant to its place entry.
func (g *Gazetteer) Lookup(city string) (Place, bool) {
	if i, ok := g.byName[Normalize(city)]; ok {
		return g.places[i], true
	}
	return Place{}, false
}

// Places returns the full catalogue (shared slice; treat as read-only).
func (g *Gazetteer) Places() []Place { return g.places }

// Len returns the number of catalogue entries.
func (g *Gazetteer) Len() int { return len(g.places) }

// ResolveCoord resolves a city name or variant to its coordinates. It
// satisfies similarity.CoordResolver: Distance(a, b) is exactly
// Haversine over the two resolved coordinate pairs.
func (g *Gazetteer) ResolveCoord(city string) (lat, lon float64, ok bool) {
	p, ok := g.Lookup(city)
	if !ok {
		return 0, 0, false
	}
	return p.Lat, p.Lon, true
}

// Distance returns the great-circle distance in kilometres between the two
// named cities. ok is false when either name is unknown.
func (g *Gazetteer) Distance(cityA, cityB string) (km float64, ok bool) {
	a, okA := g.Lookup(cityA)
	b, okB := g.Lookup(cityB)
	if !okA || !okB {
		return 0, false
	}
	return Haversine(a.Lat, a.Lon, b.Lat, b.Lon), true
}

// earthRadiusKm is the mean Earth radius used by the haversine formula.
const earthRadiusKm = 6371.0

// Haversine returns the great-circle distance in kilometres between two
// WGS84 coordinates.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	dLat := (lat2 - lat1) * deg
	dLon := (lon2 - lon1) * deg
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*deg)*math.Cos(lat2*deg)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Validate checks catalogue integrity: non-empty hierarchy fields and
// coordinates within range. It returns the first problem found.
func (g *Gazetteer) Validate() error {
	for i, p := range g.places {
		switch {
		case p.City == "" || p.County == "" || p.Region == "" || p.Country == "":
			return fmt.Errorf("gazetteer: entry %d (%q) has empty hierarchy field", i, p.City)
		case p.Lat < -90 || p.Lat > 90:
			return fmt.Errorf("gazetteer: entry %d (%q) latitude %v out of range", i, p.City, p.Lat)
		case p.Lon < -180 || p.Lon > 180:
			return fmt.Errorf("gazetteer: entry %d (%q) longitude %v out of range", i, p.City, p.Lon)
		}
	}
	return nil
}
