package gazetteer

import (
	"fmt"
	"math/rand"
)

// Community identifies one of the six pre-Holocaust Jewish communities the
// paper's stratified sample draws from.
type Community int

// The six communities. They differ — as in the paper — in naming culture
// and in how persecution progressed, which the dataset generator uses to
// vary field prevalence per community.
const (
	Italy Community = iota
	Poland
	Germany
	Hungary
	Greece
	Soviet

	// NumCommunities is the number of communities.
	NumCommunities = int(Soviet) + 1
)

var communityNames = [NumCommunities]string{"Italy", "Poland", "Germany", "Hungary", "Greece", "Soviet"}

func (c Community) String() string {
	if int(c) < NumCommunities {
		return communityNames[c]
	}
	return fmt.Sprintf("Community(%d)", int(c))
}

// regionSpec declares one community's administrative skeleton and real
// anchor cities used to ground coordinates.
type regionSpec struct {
	country string
	regions []regionDef
}

type regionDef struct {
	name     string
	counties []countyDef
}

type countyDef struct {
	name    string
	anchors []anchorCity
	// stems seed synthetic town names around the anchors.
	stems []string
}

type anchorCity struct {
	name     string
	lat, lon float64
	variants []string
}

var communitySpecs = [NumCommunities]regionSpec{
	Italy: {
		country: "Italy",
		regions: []regionDef{
			{"Piedmont", []countyDef{
				{"Torino", []anchorCity{
					{"Torino", 45.07, 7.69, []string{"Turin"}},
					{"Moncalieri", 45.00, 7.68, nil},
					{"Cuorgne", 45.39, 7.65, []string{"Cuorgnè"}},
					{"Canischio", 45.37, 7.60, nil},
				}, []string{"Riva", "Borgo", "Castel", "Monte", "Villa"}},
				{"Cuneo", []anchorCity{
					{"Cuneo", 44.39, 7.55, nil},
					{"Saluzzo", 44.64, 7.49, nil},
				}, []string{"Pian", "Rocca", "San"}},
			}},
			{"Lombardy", []countyDef{
				{"Milano", []anchorCity{
					{"Milano", 45.46, 9.19, []string{"Milan"}},
					{"Monza", 45.58, 9.27, nil},
				}, []string{"Sesto", "Cassano", "Corte"}},
			}},
			{"Lazio", []countyDef{
				{"Roma", []anchorCity{
					{"Roma", 41.90, 12.50, []string{"Rome"}},
				}, []string{"Colle", "Grotta", "Campo"}},
			}},
			{"Tuscany", []countyDef{
				{"Firenze", []anchorCity{
					{"Firenze", 43.77, 11.26, []string{"Florence"}},
					{"Livorno", 43.55, 10.31, []string{"Leghorn"}},
				}, []string{"Poggio", "Bagno", "Serra"}},
			}},
		},
	},
	Poland: {
		country: "Poland",
		regions: []regionDef{
			{"Mazovia", []countyDef{
				{"Warszawa", []anchorCity{
					{"Warszawa", 52.23, 21.01, []string{"Warsaw", "Varshava"}},
					{"Otwock", 52.11, 21.26, nil},
				}, []string{"Nowy", "Stary", "Wola"}},
			}},
			{"Galicia", []countyDef{
				{"Lwow", []anchorCity{
					{"Lwow", 49.84, 24.03, []string{"Lviv", "Lemberg", "Lvov"}},
					{"Lubaczow", 50.16, 23.12, []string{"Lubaczo"}},
				}, []string{"Zolkiew", "Brody", "Sambor"}},
				{"Krakow", []anchorCity{
					{"Krakow", 50.06, 19.94, []string{"Cracow", "Kroke"}},
					{"Tarnow", 50.01, 20.99, nil},
				}, []string{"Bochnia", "Wadowice", "Oswiecim"}},
			}},
			{"Polesie", []countyDef{
				{"Kobryn", []anchorCity{
					{"Kobryn", 52.21, 24.36, nil},
					{"Antopol", 52.20, 24.78, nil},
				}, []string{"Pinsk", "Drohiczyn", "Janow"}},
			}},
			{"Lodz", []countyDef{
				{"Lodz", []anchorCity{
					{"Lodz", 51.76, 19.46, []string{"Litzmannstadt"}},
					{"Pabianice", 51.66, 19.35, nil},
				}, []string{"Zgierz", "Ozorkow", "Brzeziny"}},
			}},
		},
	},
	Germany: {
		country: "Germany",
		regions: []regionDef{
			{"Prussia", []countyDef{
				{"Berlin", []anchorCity{
					{"Berlin", 52.52, 13.40, nil},
					{"Potsdam", 52.39, 13.06, nil},
				}, []string{"Spandau", "Kopenick", "Teltow"}},
			}},
			{"Hesse", []countyDef{
				{"Frankfurt", []anchorCity{
					{"Frankfurt", 50.11, 8.68, []string{"Frankfurt am Main"}},
					{"Offenbach", 50.10, 8.76, nil},
				}, []string{"Hanau", "Giessen", "Fulda"}},
			}},
			{"Bavaria", []countyDef{
				{"Munchen", []anchorCity{
					{"Munchen", 48.14, 11.58, []string{"Munich"}},
					{"Augsburg", 48.37, 10.90, nil},
				}, []string{"Furth", "Erding", "Dachau"}},
			}},
		},
	},
	Hungary: {
		country: "Hungary",
		regions: []regionDef{
			{"Budapest", []countyDef{
				{"Pest", []anchorCity{
					{"Budapest", 47.50, 19.04, nil},
					{"Ujpest", 47.56, 19.09, nil},
				}, []string{"Vac", "Godollo", "Cegled"}},
			}},
			{"Transylvania", []countyDef{
				{"Kolozs", []anchorCity{
					{"Kolozsvar", 46.77, 23.59, []string{"Cluj", "Klausenburg"}},
					{"Des", 47.14, 23.87, []string{"Dej"}},
				}, []string{"Szamos", "Banffy", "Torda"}},
			}},
			{"Carpathia", []countyDef{
				{"Munkacs", []anchorCity{
					{"Munkacs", 48.44, 22.72, []string{"Mukacevo"}},
					{"Ungvar", 48.62, 22.30, []string{"Uzhhorod"}},
				}, []string{"Bereg", "Huszt", "Szolyva"}},
			}},
		},
	},
	Greece: {
		country: "Greece",
		regions: []regionDef{
			{"Macedonia", []countyDef{
				{"Salonika", []anchorCity{
					{"Salonika", 40.64, 22.94, []string{"Thessaloniki", "Saloniki"}},
					{"Veria", 40.52, 22.20, nil},
				}, []string{"Kavala", "Drama", "Serres"}},
			}},
			{"Dodecanese", []countyDef{
				{"Rhodes", []anchorCity{
					{"Rhodes", 36.43, 28.22, []string{"Rodi", "Rodos"}},
					{"Kos", 36.89, 27.29, nil},
				}, []string{"Lindos", "Trianda", "Kremasti"}},
			}},
		},
	},
	Soviet: {
		country: "USSR",
		regions: []regionDef{
			{"Ukraine", []countyDef{
				{"Kiev", []anchorCity{
					{"Kiev", 50.45, 30.52, []string{"Kyiv"}},
					{"Berdichev", 49.90, 28.58, []string{"Berdychiv"}},
				}, []string{"Uman", "Fastov", "Zhitomir"}},
				{"Odessa", []anchorCity{
					{"Odessa", 46.48, 30.73, nil},
					{"Balta", 47.94, 29.62, nil},
				}, []string{"Ananiev", "Tulchin", "Bershad"}},
			}},
			{"Transnistria", []countyDef{
				{"Moghilev", []anchorCity{
					{"Moghilev", 48.45, 27.79, []string{"Mogilev-Podolsky"}},
					{"Shargorod", 48.74, 28.08, nil},
				}, []string{"Djurin", "Murafa", "Kopaygorod"}},
			}},
			{"Belarus", []countyDef{
				{"Minsk", []anchorCity{
					{"Minsk", 53.90, 27.56, nil},
					{"Slutsk", 53.02, 27.55, nil},
				}, []string{"Borisov", "Nesvizh", "Kletsk"}},
			}},
		},
	},
}

// deathPlaces are camps/sites that appear as death places across all
// communities in addition to home-region places.
var deathPlaces = []Place{
	{City: "Auschwitz", County: "Oswiecim", Region: "Galicia", Country: "Poland", Lat: 50.03, Lon: 19.18, Variants: []string{"Oswiecim-Birkenau"}},
	{City: "Sobibor", County: "Wlodawa", Region: "Lublin", Country: "Poland", Lat: 51.45, Lon: 23.59, Variants: nil},
	{City: "Treblinka", County: "Sokolow", Region: "Mazovia", Country: "Poland", Lat: 52.63, Lon: 22.05, Variants: nil},
	{City: "Mauthausen", County: "Perg", Region: "Upper Austria", Country: "Austria", Lat: 48.26, Lon: 14.50, Variants: nil},
	{City: "Drancy", County: "Seine", Region: "Ile-de-France", Country: "France", Lat: 48.92, Lon: 2.45, Variants: nil},
	{City: "Bergen-Belsen", County: "Celle", Region: "Lower Saxony", Country: "Germany", Lat: 52.76, Lon: 9.91, Variants: nil},
	{City: "Dachau", County: "Munchen", Region: "Bavaria", Country: "Germany", Lat: 48.27, Lon: 11.47, Variants: nil},
	{City: "Theresienstadt", County: "Litomerice", Region: "Bohemia", Country: "Czechoslovakia", Lat: 50.51, Lon: 14.17, Variants: []string{"Terezin"}},
}

// townSuffixes expand name stems into synthetic towns per community.
var townSuffixes = [NumCommunities][]string{
	Italy:   {"etto", "ara", "ino", "ella", "ate"},
	Poland:  {"ow", "ice", "owka", "in", "sk"},
	Germany: {"heim", "dorf", "burg", "stadt", "feld"},
	Hungary: {"halom", "haza", "falu", "var", "kut"},
	Greece:  {"os", "ia", "ion", "ada", "iki"},
	Soviet:  {"ovka", "insk", "grad", "ichi", "poli"},
}

// Builtin returns the built-in catalogue. townsPerCounty synthetic towns are
// generated deterministically around each county's first anchor in addition
// to the anchors themselves; pass 0 for anchors only.
func Builtin(townsPerCounty int) *Gazetteer {
	rng := rand.New(rand.NewSource(77))
	var places []Place
	for c := 0; c < NumCommunities; c++ {
		spec := communitySpecs[c]
		for _, reg := range spec.regions {
			for _, cty := range reg.counties {
				for _, a := range cty.anchors {
					places = append(places, Place{
						City: a.name, County: cty.name, Region: reg.name,
						Country: spec.country, Lat: a.lat, Lon: a.lon,
						Variants: a.variants,
					})
				}
				base := cty.anchors[0]
				suffixes := townSuffixes[c]
				for n := 0; n < townsPerCounty; n++ {
					stem := cty.stems[n%len(cty.stems)]
					suffix := suffixes[(n/len(cty.stems))%len(suffixes)]
					name := stem + suffix
					if n >= len(cty.stems)*len(suffixes) {
						name = fmt.Sprintf("%s %d", name, n)
					}
					places = append(places, Place{
						City: name, County: cty.name, Region: reg.name,
						Country: spec.country,
						Lat:     base.lat + (rng.Float64()-0.5)*0.8,
						Lon:     base.lon + (rng.Float64()-0.5)*0.8,
					})
				}
			}
		}
	}
	places = append(places, deathPlaces...)
	return New(places)
}

// CommunityPlaces returns the catalogue entries belonging to one community
// (by country), excluding the shared death-place sites.
func (g *Gazetteer) CommunityPlaces(c Community) []Place {
	country := communitySpecs[c].country
	var out []Place
	for _, p := range g.places {
		if p.Country == country && !isDeathSite(p.City) {
			out = append(out, p)
		}
	}
	return out
}

// DeathSites returns the shared camp/site entries.
func DeathSites() []Place {
	out := make([]Place, len(deathPlaces))
	copy(out, deathPlaces)
	return out
}

func isDeathSite(city string) bool {
	for _, d := range deathPlaces {
		if d.City == city {
			return true
		}
	}
	return false
}
