package adtree

import (
	"strings"
	"testing"

	"repro/internal/features"
)

func TestConditionEval(t *testing.T) {
	num := Condition{Feature: 0, Numeric: true, Threshold: 0.5}
	cat := Condition{Feature: 1, Level: "yes"}

	v := features.Vector{
		{Present: true, Num: 0.3},
		{Present: true, Cat: "yes"},
	}
	if num.Eval(v) != 1 {
		t.Error("0.3 < 0.5 should hold")
	}
	if cat.Eval(v) != 1 {
		t.Error("cat=yes should hold")
	}

	v[0].Num = 0.5 // boundary: strictly less-than
	if num.Eval(v) != 0 {
		t.Error("0.5 < 0.5 must not hold")
	}
	v[1].Cat = "no"
	if cat.Eval(v) != 0 {
		t.Error("cat=no must not hold")
	}

	v[0].Present = false
	if num.Eval(v) != -1 {
		t.Error("missing feature must evaluate to -1")
	}
	// Out-of-range feature index is treated as missing.
	far := Condition{Feature: 99, Numeric: true, Threshold: 1}
	if far.Eval(v) != -1 {
		t.Error("out-of-range feature must be missing")
	}
}

func TestConditionDescribe(t *testing.T) {
	defs := []features.Def{
		{ID: 0, Name: "B3dist", Kind: features.Numeric},
		{ID: 1, Name: "sameFFN", Kind: features.Categorical, Levels: []string{"yes", "no"}},
	}
	num := Condition{Feature: 0, Numeric: true, Threshold: 1.5}
	if got := num.describe(defs, true); got != "B3dist < 1.5" {
		t.Errorf("describe true = %q", got)
	}
	if got := num.describe(defs, false); got != "B3dist >= 1.5" {
		t.Errorf("describe false = %q", got)
	}
	cat := Condition{Feature: 1, Level: "no"}
	if got := cat.describe(defs, true); got != "sameFFN = no" {
		t.Errorf("describe cat = %q", got)
	}
	if got := cat.describe(defs, false); got != "sameFFN != no" {
		t.Errorf("describe cat false = %q", got)
	}
	// Unknown feature id falls back to a positional name.
	anon := Condition{Feature: 7, Numeric: true, Threshold: 2}
	if got := anon.describe(defs, true); !strings.HasPrefix(got, "f7") {
		t.Errorf("anonymous describe = %q", got)
	}
}

func TestClassBalanceInRoot(t *testing.T) {
	// Root prediction has the sign of the majority class.
	var insts []Instance
	for i := 0; i < 90; i++ {
		insts = append(insts, Instance{X: numVec(0.5), Match: true})
	}
	for i := 0; i < 10; i++ {
		insts = append(insts, Instance{X: numVec(0.5), Match: false})
	}
	m, err := Train(TrainConfig{Rounds: 1, MaxThresholds: 4}, numDefs(1), insts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Root.Value <= 0 {
		t.Errorf("root value %v should be positive for 90%% positive data", m.Root.Value)
	}
}

func TestTrainStopsWhenNoSplitHelps(t *testing.T) {
	// A constant feature offers no useful split; boosting should stop
	// early rather than add vacuous rules forever.
	var insts []Instance
	for i := 0; i < 50; i++ {
		insts = append(insts, Instance{X: numVec(1.0), Match: i%2 == 0})
	}
	cfg := NewTrainConfig()
	cfg.Rounds = 50
	m, err := Train(cfg, numDefs(1), insts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds > 5 {
		t.Logf("model kept boosting a constant feature for %d rounds", m.Rounds)
	}
	// Whatever it does, scoring must stay finite and symmetric.
	s := m.Score(numVec(1.0))
	if s != s || s > 1e6 || s < -1e6 {
		t.Errorf("score diverged: %v", s)
	}
}
