package adtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/features"
)

func numDefs(n int) []features.Def {
	defs := make([]features.Def, n)
	for i := range defs {
		defs[i] = features.Def{ID: i, Name: "x" + string(rune('0'+i)), Kind: features.Numeric}
	}
	return defs
}

func numVec(vals ...float64) features.Vector {
	v := make(features.Vector, len(vals))
	for i, x := range vals {
		v[i] = features.Value{Present: true, Num: x}
	}
	return v
}

func TestLearnsThreshold(t *testing.T) {
	// Single numeric feature: match iff x < 0.5.
	defs := numDefs(1)
	rng := rand.New(rand.NewSource(1))
	var insts []Instance
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		insts = append(insts, Instance{X: numVec(x), Match: x < 0.5})
	}
	m, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, inst := range insts {
		if m.Classify(inst.X) == inst.Match {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(insts)); acc < 0.98 {
		t.Errorf("threshold accuracy %.3f < 0.98\n%s", acc, m)
	}
}

func TestLearnsXOR(t *testing.T) {
	// XOR over two numeric features needs an alternating structure —
	// a single split cannot express it.
	defs := numDefs(2)
	rng := rand.New(rand.NewSource(2))
	var insts []Instance
	for i := 0; i < 800; i++ {
		a, b := rng.Float64(), rng.Float64()
		insts = append(insts, Instance{X: numVec(a, b), Match: (a < 0.5) != (b < 0.5)})
	}
	cfg := NewTrainConfig()
	cfg.Rounds = 12
	m, err := Train(cfg, defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, inst := range insts {
		if m.Classify(inst.X) == inst.Match {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(insts)); acc < 0.95 {
		t.Errorf("XOR accuracy %.3f < 0.95\n%s", acc, m)
	}
}

func TestLearnsCategorical(t *testing.T) {
	defs := []features.Def{{ID: 0, Name: "color", Kind: features.Categorical, Levels: []string{"red", "green", "blue"}}}
	var insts []Instance
	for i := 0; i < 300; i++ {
		lv := []string{"red", "green", "blue"}[i%3]
		v := features.Vector{{Present: true, Cat: lv}}
		insts = append(insts, Instance{X: v, Match: lv == "green"})
	}
	m, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range []string{"red", "green", "blue"} {
		v := features.Vector{{Present: true, Cat: lv}}
		if got, want := m.Classify(v), lv == "green"; got != want {
			t.Errorf("Classify(%s) = %v, want %v", lv, got, want)
		}
	}
}

func TestMissingValueSkipsSubtree(t *testing.T) {
	// Train on two features where feature 0 is decisive; an instance
	// missing feature 0 must still get a score (root + reachable nodes)
	// and must not consult the missing splitter.
	defs := numDefs(2)
	rng := rand.New(rand.NewSource(3))
	var insts []Instance
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		insts = append(insts, Instance{X: numVec(x, rng.Float64()), Match: x < 0.5})
	}
	m, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	missing := features.Vector{{Present: false}, {Present: true, Num: 0.3}}
	got := m.Score(missing)
	// The score must equal the root plus contributions of splitters on
	// feature 1 only. Recompute by zeroing out feature-0 splitters.
	want := scoreSkipping(m.Root, missing, 0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("missing-feature score %v, want %v", got, want)
	}
}

// scoreSkipping mirrors Model.Score but asserts no splitter on the skipped
// feature is entered.
func scoreSkipping(p *PredictionNode, v features.Vector, skip int) float64 {
	sum := p.Value
	for _, s := range p.Splitters {
		if s.Cond.Feature == skip {
			continue
		}
		switch s.Cond.Eval(v) {
		case 1:
			sum += scoreSkipping(s.True, v, skip)
		case 0:
			sum += scoreSkipping(s.False, v, skip)
		}
	}
	return sum
}

func TestScoreIsSumOfReachablePredictions(t *testing.T) {
	defs := numDefs(2)
	rng := rand.New(rand.NewSource(4))
	var insts []Instance
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		insts = append(insts, Instance{X: numVec(a, b), Match: a+b < 1})
	}
	m, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	v := numVec(0.25, 0.75)
	// Manual reachable-sum.
	var manual func(p *PredictionNode) float64
	manual = func(p *PredictionNode) float64 {
		sum := p.Value
		for _, s := range p.Splitters {
			switch s.Cond.Eval(v) {
			case 1:
				sum += manual(s.True)
			case 0:
				sum += manual(s.False)
			}
		}
		return sum
	}
	if got, want := m.Score(v), manual(m.Root); math.Abs(got-want) > 1e-12 {
		t.Errorf("Score=%v, manual=%v", got, want)
	}
}

func TestTrainingErrorNonIncreasing(t *testing.T) {
	defs := numDefs(3)
	rng := rand.New(rand.NewSource(5))
	var insts []Instance
	for i := 0; i < 400; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		insts = append(insts, Instance{X: numVec(a, b, c), Match: a < 0.4 || (b < 0.3 && c > 0.6)})
	}
	errAt := func(rounds int) float64 {
		cfg := NewTrainConfig()
		cfg.Rounds = rounds
		m, err := Train(cfg, defs, insts)
		if err != nil {
			t.Fatal(err)
		}
		wrong := 0
		for _, inst := range insts {
			if m.Classify(inst.X) != inst.Match {
				wrong++
			}
		}
		return float64(wrong) / float64(len(insts))
	}
	e1, e5, e15 := errAt(1), errAt(5), errAt(15)
	if e5 > e1+0.02 || e15 > e5+0.02 {
		t.Errorf("training error not roughly decreasing: %v -> %v -> %v", e1, e5, e15)
	}
}

func TestRenderFormat(t *testing.T) {
	defs := numDefs(1)
	var insts []Instance
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		insts = append(insts, Instance{X: numVec(x), Match: x < 0.5})
	}
	cfg := NewTrainConfig()
	cfg.Rounds = 2
	m, err := Train(cfg, defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if !strings.HasPrefix(s, ": ") {
		t.Errorf("rendering must start with root value, got %q", s)
	}
	if !strings.Contains(s, "(1)x0 < ") || !strings.Contains(s, "(1)x0 >= ") {
		t.Errorf("rendering missing split branches:\n%s", s)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(NewTrainConfig(), numDefs(1), nil); err == nil {
		t.Error("Train with no instances should fail")
	}
	cfg := NewTrainConfig()
	cfg.Rounds = 0
	if _, err := Train(cfg, numDefs(1), []Instance{{X: numVec(1), Match: true}}); err == nil {
		t.Error("Train with zero rounds should fail")
	}
}

func TestDeterministicTraining(t *testing.T) {
	defs := numDefs(2)
	rng := rand.New(rand.NewSource(6))
	var insts []Instance
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		insts = append(insts, Instance{X: numVec(a, b), Match: a < b})
	}
	m1, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Errorf("training not deterministic:\n%s\nvs\n%s", m1, m2)
	}
}

func TestUsedFeaturesSubset(t *testing.T) {
	defs := numDefs(4)
	rng := rand.New(rand.NewSource(7))
	var insts []Instance
	for i := 0; i < 300; i++ {
		// Only feature 2 matters.
		v := numVec(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		insts = append(insts, Instance{X: v, Match: v[2].Num < 0.5})
	}
	cfg := NewTrainConfig()
	cfg.Rounds = 3
	m, err := Train(cfg, defs, insts)
	if err != nil {
		t.Fatal(err)
	}
	used := m.UsedFeatures()
	foundDecisive := false
	for _, f := range used {
		if f == 2 {
			foundDecisive = true
		}
	}
	if !foundDecisive {
		t.Errorf("decisive feature 2 not used; used=%v\n%s", used, m)
	}
}
