// Package adtree implements alternating decision trees (Freund & Mason,
// ICML 1999): a boosted ensemble of rules arranged as a tree that
// alternates prediction nodes (real-valued confidence contributions) and
// splitter nodes (tests). The instance score is the sum of every reachable
// prediction node; its sign is the classification and its magnitude the
// ranking confidence the paper's uncertain resolution relies on.
//
// Missing feature values follow the paper's semantics: a splitter whose
// feature is absent for the instance is unreachable, contributing nothing
// on either branch.
package adtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/features"
)

// Condition is one splitter test over a feature.
type Condition struct {
	// Feature indexes the feature vector.
	Feature int
	// Numeric selects "value < Threshold" tests; otherwise the test is
	// "value == Level".
	Numeric   bool
	Threshold float64
	Level     string
}

// Eval returns +1 when the condition holds, 0 when it does not, and -1
// when the feature is missing.
func (c Condition) Eval(v features.Vector) int {
	if c.Feature >= len(v) || !v[c.Feature].Present {
		return -1
	}
	var ok bool
	if c.Numeric {
		ok = v[c.Feature].Num < c.Threshold
	} else {
		ok = v[c.Feature].Cat == c.Level
	}
	if ok {
		return 1
	}
	return 0
}

// describe renders the condition's true or false branch label.
func (c Condition) describe(defs []features.Def, branch bool) string {
	name := fmt.Sprintf("f%d", c.Feature)
	if c.Feature < len(defs) {
		name = defs[c.Feature].Name
	}
	if c.Numeric {
		if branch {
			return fmt.Sprintf("%s < %.3g", name, c.Threshold)
		}
		return fmt.Sprintf("%s >= %.3g", name, c.Threshold)
	}
	if branch {
		return fmt.Sprintf("%s = %s", name, c.Level)
	}
	return fmt.Sprintf("%s != %s", name, c.Level)
}

// PredictionNode carries a confidence contribution and the splitters
// attached beneath it. General ADTrees allow several splitters per
// prediction node.
type PredictionNode struct {
	Value     float64
	Splitters []*SplitterNode
}

// SplitterNode tests a condition and routes to two prediction nodes.
type SplitterNode struct {
	// Order is the boosting round (1-based) that introduced the rule,
	// shown in the rendered tree as "(order)".
	Order int
	Cond  Condition
	True  *PredictionNode
	False *PredictionNode
}

// Model is a trained alternating decision tree.
type Model struct {
	Root *PredictionNode
	// Defs are the feature definitions the model was trained over, used
	// for rendering.
	Defs []features.Def
	// Rounds is the number of boosting rounds performed.
	Rounds int
}

// Score returns the sum of all reachable prediction node values — the
// ranking confidence. Positive means match.
func (m *Model) Score(v features.Vector) float64 {
	return scoreNode(m.Root, v)
}

func scoreNode(p *PredictionNode, v features.Vector) float64 {
	sum := p.Value
	for _, s := range p.Splitters {
		switch s.Cond.Eval(v) {
		case 1:
			sum += scoreNode(s.True, v)
		case 0:
			sum += scoreNode(s.False, v)
			// -1: feature missing; the splitter and its whole subtree are
			// unreachable.
		}
	}
	return sum
}

// Classify returns true when the score exceeds zero (the paper's default
// decision rule).
func (m *Model) Classify(v features.Vector) bool { return m.Score(v) > 0 }

// UsedFeatures returns the distinct feature ids tested anywhere in the
// tree, sorted.
func (m *Model) UsedFeatures() []int {
	seen := map[int]bool{}
	var walk func(p *PredictionNode)
	walk = func(p *PredictionNode) {
		for _, s := range p.Splitters {
			seen[s.Cond.Feature] = true
			walk(s.True)
			walk(s.False)
		}
	}
	walk(m.Root)
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// String renders the model in the Weka-style layout of Tables 7 and 8:
//
//	: -0.289
//	|  (1)sameFFN = no: -1.314
//	|  |  (6)MFNdist < 0.728: -0.718
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ": %.3g\n", m.Root.Value)
	renderSplitters(&b, m.Root, m.Defs, 1)
	return b.String()
}

func renderSplitters(b *strings.Builder, p *PredictionNode, defs []features.Def, depth int) {
	indent := strings.Repeat("|  ", depth)
	for _, s := range p.Splitters {
		fmt.Fprintf(b, "%s(%d)%s: %.3g\n", indent, s.Order, s.Cond.describe(defs, true), s.True.Value)
		renderSplitters(b, s.True, defs, depth+1)
		fmt.Fprintf(b, "%s(%d)%s: %.3g\n", indent, s.Order, s.Cond.describe(defs, false), s.False.Value)
		renderSplitters(b, s.False, defs, depth+1)
	}
}

// sign is the training-label convention: +1 match, -1 non-match.
func sign(match bool) float64 {
	if match {
		return 1
	}
	return -1
}

// halfLogRatio is the smoothed confidence value 0.5*ln((wp+1)/(wn+1)).
func halfLogRatio(wp, wn float64) float64 {
	return 0.5 * math.Log((wp+1)/(wn+1))
}
