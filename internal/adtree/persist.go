package adtree

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/features"
)

// Wire format: nodes are flattened with parent/branch references so the
// alternating structure round-trips exactly.

type jsonModel struct {
	Rounds    int            `json:"rounds"`
	Root      float64        `json:"root"`
	Splitters []jsonSplitter `json:"splitters"`
	Features  []jsonFeature  `json:"features"`
}

type jsonSplitter struct {
	Order int `json:"order"`
	// Parent is the prediction-node id the splitter hangs under: 0 is
	// the root; splitter k's true/false prediction nodes are 2k+1/2k+2.
	Parent    int     `json:"parent"`
	Feature   int     `json:"feature"`
	Numeric   bool    `json:"numeric"`
	Threshold float64 `json:"threshold,omitempty"`
	Level     string  `json:"level,omitempty"`
	TrueVal   float64 `json:"true_val"`
	FalseVal  float64 `json:"false_val"`
}

type jsonFeature struct {
	Name   string   `json:"name"`
	Kind   uint8    `json:"kind"`
	Levels []string `json:"levels,omitempty"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	jm := jsonModel{Rounds: m.Rounds, Root: m.Root.Value}
	for _, d := range m.Defs {
		jm.Features = append(jm.Features, jsonFeature{Name: d.Name, Kind: uint8(d.Kind), Levels: d.Levels})
	}
	// Assign ids: walk prediction nodes in splitter-discovery order.
	ids := map[*PredictionNode]int{m.Root: 0}
	next := 1
	var walk func(p *PredictionNode)
	walk = func(p *PredictionNode) {
		for _, s := range p.Splitters {
			tID, fID := next, next+1
			next += 2
			ids[s.True], ids[s.False] = tID, fID
			jm.Splitters = append(jm.Splitters, jsonSplitter{
				Order:     s.Order,
				Parent:    ids[p],
				Feature:   s.Cond.Feature,
				Numeric:   s.Cond.Numeric,
				Threshold: s.Cond.Threshold,
				Level:     s.Cond.Level,
				TrueVal:   s.True.Value,
				FalseVal:  s.False.Value,
			})
			walk(s.True)
			walk(s.False)
		}
	}
	walk(m.Root)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&jm)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("adtree: decode model: %w", err)
	}
	m := &Model{Root: &PredictionNode{Value: jm.Root}, Rounds: jm.Rounds}
	for i, f := range jm.Features {
		m.Defs = append(m.Defs, features.Def{ID: i, Name: f.Name, Kind: features.Kind(f.Kind), Levels: f.Levels})
	}
	nodes := map[int]*PredictionNode{0: m.Root}
	next := 1
	for _, s := range jm.Splitters {
		parent, ok := nodes[s.Parent]
		if !ok {
			return nil, fmt.Errorf("adtree: splitter order %d references unknown node %d", s.Order, s.Parent)
		}
		sp := &SplitterNode{
			Order: s.Order,
			Cond: Condition{
				Feature:   s.Feature,
				Numeric:   s.Numeric,
				Threshold: s.Threshold,
				Level:     s.Level,
			},
			True:  &PredictionNode{Value: s.TrueVal},
			False: &PredictionNode{Value: s.FalseVal},
		}
		parent.Splitters = append(parent.Splitters, sp)
		nodes[next] = sp.True
		nodes[next+1] = sp.False
		next += 2
	}
	return m, nil
}
