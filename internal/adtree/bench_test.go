package adtree

import (
	"math/rand"
	"testing"
)

func benchInstances(n int) []Instance {
	rng := rand.New(rand.NewSource(21))
	insts := make([]Instance, n)
	for i := range insts {
		x := numVec(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		// Sprinkle missing values, as the multi-source data does.
		if rng.Float64() < 0.3 {
			x[rng.Intn(4)].Present = false
		}
		insts[i] = Instance{X: x, Match: x[0].Present && x[0].Num < 0.4 || x[1].Num > 0.7}
	}
	return insts
}

func BenchmarkTrain(b *testing.B) {
	defs := numDefs(4)
	insts := benchInstances(2000)
	cfg := NewTrainConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(cfg, defs, insts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScore(b *testing.B) {
	defs := numDefs(4)
	insts := benchInstances(2000)
	m, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(insts[i%len(insts)].X)
	}
}
