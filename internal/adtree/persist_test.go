package adtree

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	defs := numDefs(3)
	rng := rand.New(rand.NewSource(8))
	var insts []Instance
	for i := 0; i < 300; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x := numVec(a, b, c)
		if rng.Float64() < 0.2 {
			x[rng.Intn(3)].Present = false
		}
		insts = append(insts, Instance{X: x, Match: a < 0.4 || b > 0.8})
	}
	m, err := Train(NewTrainConfig(), defs, insts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if back.Rounds != m.Rounds {
		t.Errorf("rounds %d != %d", back.Rounds, m.Rounds)
	}
	if back.String() != m.String() {
		t.Errorf("rendering differs:\n%s\nvs\n%s", back, m)
	}
	// Scores must be bit-identical for every training instance.
	for _, inst := range insts {
		a, b := m.Score(inst.X), back.Score(inst.X)
		if math.Abs(a-b) > 0 {
			t.Fatalf("score differs: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// A splitter referencing a nonexistent parent is rejected.
	bad := `{"rounds":1,"root":0.1,"splitters":[{"order":1,"parent":9,"feature":0,"numeric":true,"threshold":1,"true_val":1,"false_val":-1}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("dangling parent accepted")
	}
}

func TestLoadEmptyModel(t *testing.T) {
	m, err := Load(strings.NewReader(`{"rounds":0,"root":-0.25}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(numVec(1)); got != -0.25 {
		t.Errorf("root-only score = %v", got)
	}
}
