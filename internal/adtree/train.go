package adtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/features"
)

// Instance is one labelled training example.
type Instance struct {
	X features.Vector
	// Match is the binary label (+1 match / -1 non-match).
	Match bool
}

// TrainConfig controls boosting.
type TrainConfig struct {
	// Rounds is the number of boosting rounds (splitters added). The
	// paper's models use about ten.
	Rounds int
	// MaxThresholds caps the candidate split points per numeric feature;
	// candidates are value midpoints, quantile-thinned beyond the cap.
	MaxThresholds int
}

// NewTrainConfig returns the defaults used across the experiments.
func NewTrainConfig() TrainConfig {
	return TrainConfig{Rounds: 10, MaxThresholds: 48}
}

// Train boosts an alternating decision tree over the instances.
func Train(cfg TrainConfig, defs []features.Def, insts []Instance) (*Model, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("adtree: no training instances")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("adtree: Rounds must be >= 1, got %d", cfg.Rounds)
	}
	if cfg.MaxThresholds < 1 {
		cfg.MaxThresholds = 48
	}

	t := &trainer{cfg: cfg, defs: defs, insts: insts}
	t.init()
	for round := 1; round <= cfg.Rounds; round++ {
		if !t.boostOnce(round) {
			break // no splittable mass left
		}
	}
	return &Model{Root: t.root, Defs: defs, Rounds: t.completed}, nil
}

// trainer carries boosting state.
type trainer struct {
	cfg   TrainConfig
	defs  []features.Def
	insts []Instance

	weights   []float64
	root      *PredictionNode
	nodes     []*PredictionNode // all prediction nodes (preconditions)
	reach     [][]int           // per node: instance indices reaching it
	completed int

	candidates [][]Condition // per feature
}

func (t *trainer) init() {
	n := len(t.insts)
	t.weights = make([]float64, n)
	var wp, wn float64
	for i, inst := range t.insts {
		t.weights[i] = 1
		if inst.Match {
			wp++
		} else {
			wn++
		}
	}
	t.root = &PredictionNode{Value: halfLogRatio(wp, wn)}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	t.nodes = []*PredictionNode{t.root}
	t.reach = [][]int{all}

	// Reweight by the root prediction.
	for i, inst := range t.insts {
		t.weights[i] = math.Exp(-sign(inst.Match) * t.root.Value)
	}

	t.buildCandidates()
}

// buildCandidates enumerates the base conditions per feature: equality
// with each level for categoricals, and midpoints of observed values
// (quantile-thinned) for numerics.
func (t *trainer) buildCandidates() {
	t.candidates = make([][]Condition, len(t.defs))
	for _, d := range t.defs {
		if d.Kind == features.Categorical {
			for _, lv := range d.Levels {
				t.candidates[d.ID] = append(t.candidates[d.ID], Condition{Feature: d.ID, Level: lv})
			}
			continue
		}
		var vals []float64
		for _, inst := range t.insts {
			if d.ID < len(inst.X) && inst.X[d.ID].Present {
				vals = append(vals, inst.X[d.ID].Num)
			}
		}
		if len(vals) < 2 {
			continue
		}
		sort.Float64s(vals)
		var mids []float64
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[i-1] {
				mids = append(mids, (vals[i]+vals[i-1])/2)
			}
		}
		if len(mids) > t.cfg.MaxThresholds {
			thinned := make([]float64, 0, t.cfg.MaxThresholds)
			for k := 0; k < t.cfg.MaxThresholds; k++ {
				thinned = append(thinned, mids[k*len(mids)/t.cfg.MaxThresholds])
			}
			mids = thinned
		}
		for _, m := range mids {
			t.candidates[d.ID] = append(t.candidates[d.ID], Condition{Feature: d.ID, Numeric: true, Threshold: m})
		}
	}
}

// boostOnce adds the rule minimizing the Z criterion. It reports false
// when no candidate improves on the trivial rule.
func (t *trainer) boostOnce(round int) bool {
	totalW := 0.0
	for _, w := range t.weights {
		totalW += w
	}

	type best struct {
		z    float64
		node int
		cond Condition
		ok   bool
	}
	bst := best{z: math.Inf(1)}

	for ni := range t.nodes {
		reach := t.reach[ni]
		if len(reach) == 0 {
			continue
		}
		var wNode float64
		for _, i := range reach {
			wNode += t.weights[i]
		}
		wRest := totalW - wNode

		for f := range t.candidates {
			if len(t.candidates[f]) == 0 {
				continue
			}
			// Split the node's mass by presence of feature f.
			var wMissing float64
			var present []int
			for _, i := range reach {
				if f < len(t.insts[i].X) && t.insts[i].X[f].Present {
					present = append(present, i)
				} else {
					wMissing += t.weights[i]
				}
			}
			if len(present) == 0 {
				continue
			}
			base := wRest + wMissing

			if t.defs[f].Kind == features.Categorical {
				t.scanCategorical(&bst.z, &bst.node, &bst.cond, &bst.ok, ni, f, present, base)
			} else {
				t.scanNumeric(&bst.z, &bst.node, &bst.cond, &bst.ok, ni, f, present, base)
			}
		}
	}
	if !bst.ok {
		return false
	}
	t.addRule(round, bst.node, bst.cond)
	t.completed = round
	return true
}

// scanCategorical evaluates every level of feature f at node ni.
func (t *trainer) scanCategorical(bestZ *float64, bestNode *int, bestCond *Condition, ok *bool, ni, f int, present []int, base float64) {
	// Per-level positive/negative weights.
	type wpair struct{ wp, wn float64 }
	perLevel := make(map[string]wpair)
	var wpAll, wnAll float64
	for _, i := range present {
		w := t.weights[i]
		lv := t.insts[i].X[f].Cat
		e := perLevel[lv]
		if t.insts[i].Match {
			e.wp += w
			wpAll += w
		} else {
			e.wn += w
			wnAll += w
		}
		perLevel[lv] = e
	}
	for _, cond := range t.candidates[f] {
		e := perLevel[cond.Level]
		z := zValue(e.wp, e.wn, wpAll-e.wp, wnAll-e.wn, base)
		if z < *bestZ {
			*bestZ, *bestNode, *bestCond, *ok = z, ni, cond, true
		}
	}
}

// scanNumeric sweeps the sorted present values once, evaluating every
// candidate threshold cumulatively.
func (t *trainer) scanNumeric(bestZ *float64, bestNode *int, bestCond *Condition, ok *bool, ni, f int, present []int, base float64) {
	type rec struct {
		v     float64
		w     float64
		match bool
	}
	recs := make([]rec, len(present))
	var wpAll, wnAll float64
	for k, i := range present {
		recs[k] = rec{v: t.insts[i].X[f].Num, w: t.weights[i], match: t.insts[i].Match}
		if recs[k].match {
			wpAll += recs[k].w
		} else {
			wnAll += recs[k].w
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].v < recs[b].v })

	conds := t.candidates[f] // sorted by construction (midpoints ascending)
	ci := 0
	var wpLT, wnLT float64
	for k := 0; k < len(recs) && ci < len(conds); k++ {
		// Advance thresholds that lie at or below the current value: all
		// records before k are < threshold.
		for ci < len(conds) && conds[ci].Threshold <= recs[k].v {
			z := zValue(wpLT, wnLT, wpAll-wpLT, wnAll-wnLT, base)
			if z < *bestZ {
				*bestZ, *bestNode, *bestCond, *ok = z, ni, conds[ci], true
			}
			ci++
		}
		if recs[k].match {
			wpLT += recs[k].w
		} else {
			wnLT += recs[k].w
		}
	}
	for ; ci < len(conds); ci++ {
		z := zValue(wpLT, wnLT, wpAll-wpLT, wnAll-wnLT, base)
		if z < *bestZ {
			*bestZ, *bestNode, *bestCond, *ok = z, ni, conds[ci], true
		}
	}
}

// zValue is the Freund–Mason Z criterion with the remainder mass `base`
// (weights outside the precondition plus missing-feature mass).
func zValue(wpT, wnT, wpF, wnF, base float64) float64 {
	return 2*(math.Sqrt(wpT*wnT)+math.Sqrt(wpF*wnF)) + base
}

// addRule attaches the chosen splitter, computes its prediction values,
// reweights, and extends the precondition set.
func (t *trainer) addRule(round, ni int, cond Condition) {
	reach := t.reach[ni]
	var listT, listF []int
	var wpT, wnT, wpF, wnF float64
	for _, i := range reach {
		switch cond.Eval(t.insts[i].X) {
		case 1:
			listT = append(listT, i)
			if t.insts[i].Match {
				wpT += t.weights[i]
			} else {
				wnT += t.weights[i]
			}
		case 0:
			listF = append(listF, i)
			if t.insts[i].Match {
				wpF += t.weights[i]
			} else {
				wnF += t.weights[i]
			}
		}
	}
	nodeT := &PredictionNode{Value: halfLogRatio(wpT, wnT)}
	nodeF := &PredictionNode{Value: halfLogRatio(wpF, wnF)}
	sp := &SplitterNode{Order: round, Cond: cond, True: nodeT, False: nodeF}
	t.nodes[ni].Splitters = append(t.nodes[ni].Splitters, sp)

	for _, i := range listT {
		t.weights[i] *= math.Exp(-sign(t.insts[i].Match) * nodeT.Value)
	}
	for _, i := range listF {
		t.weights[i] *= math.Exp(-sign(t.insts[i].Match) * nodeF.Value)
	}

	t.nodes = append(t.nodes, nodeT, nodeF)
	t.reach = append(t.reach, listT, listF)
}
