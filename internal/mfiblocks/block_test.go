package mfiblocks

import (
	"math"
	"testing"

	"repro/internal/fpgrowth"
	"repro/internal/record"
)

// scorerFixture builds a scorer over hand-made records.
func scorerFixture(t *testing.T, cfg Config, recs []*record.Record) *scorer {
	t.Helper()
	coll, err := record.NewCollection(recs)
	if err != nil {
		t.Fatal(err)
	}
	dict := record.BuildDictionary(coll)
	txns := fpgrowth.NewTransactions(len(recs), 0)
	for _, r := range recs {
		txns.Append(dict.Encode(r))
	}
	return newScorer(&cfg, dict, txns, recs)
}

func mkRec(id int64, items ...record.Item) *record.Record {
	r := &record.Record{BookID: id}
	r.Items = append(r.Items, items...)
	return r
}

func it(t record.ItemType, v string) record.Item { return record.Item{Type: t, Value: v} }

func TestClusterJaccard(t *testing.T) {
	recs := []*record.Record{
		mkRec(1, it(record.FirstName, "Guido"), it(record.LastName, "Foa"), it(record.Gender, "0")),
		mkRec(2, it(record.FirstName, "Guido"), it(record.LastName, "Foa"), it(record.BirthYear, "1920")),
		mkRec(3, it(record.FirstName, "Guido"), it(record.LastName, "Levi")),
	}
	sc := scorerFixture(t, NewConfig(), recs)

	// Pair {0,1}: intersection {F:Guido, L:Foa} = 2, union 4 -> 0.5.
	if got := sc.score([]int{0, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("score({0,1}) = %v, want 0.5", got)
	}
	// Triple: intersection {F:Guido} = 1, union 5 -> 0.2.
	if got := sc.score([]int{0, 1, 2}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("score({0,1,2}) = %v, want 0.2", got)
	}
	// Set-monotonic: growing the cluster cannot raise the score.
	if sc.score([]int{0, 1, 2}) > sc.score([]int{0, 1}) {
		t.Error("cluster Jaccard must be set-monotonic")
	}
	// Degenerate block.
	if got := sc.score([]int{0}); got != 0 {
		t.Errorf("singleton score = %v", got)
	}
}

func TestWeightedJaccardFavorsNames(t *testing.T) {
	// Two records sharing a first name vs two sharing only gender: with
	// expert weights the name pair must score higher.
	recs := []*record.Record{
		mkRec(1, it(record.FirstName, "Guido"), it(record.Gender, "0")),
		mkRec(2, it(record.FirstName, "Guido"), it(record.Gender, "1")),
		mkRec(3, it(record.FirstName, "Elsa"), it(record.Gender, "0")),
		mkRec(4, it(record.FirstName, "Sara"), it(record.Gender, "0")),
	}
	cfg := NewConfig()
	cfg.ExpertWeights = true
	sc := scorerFixture(t, cfg, recs)
	nameShare := sc.score([]int{0, 1})
	genderShare := sc.score([]int{2, 3})
	if nameShare <= genderShare {
		t.Errorf("expert weights: name share %v <= gender share %v", nameShare, genderShare)
	}

	// Under uniform weights the two pairs score identically.
	scU := scorerFixture(t, NewConfig(), recs)
	if a, b := scU.score([]int{0, 1}), scU.score([]int{2, 3}); math.Abs(a-b) > 1e-12 {
		t.Errorf("uniform weights differ: %v vs %v", a, b)
	}
}

type constGeo struct{ km float64 }

func (c constGeo) Distance(a, b string) (float64, bool) { return c.km, true }

func TestSoftScoreUsesFsim(t *testing.T) {
	// Typos that defeat exact Jaccard still score under fsim.
	recs := []*record.Record{
		mkRec(1, it(record.FirstName, "Bella"), it(record.BirthYear, "1920")),
		mkRec(2, it(record.FirstName, "Della"), it(record.BirthYear, "1921")),
	}
	cfg := NewConfig()
	cfg.ExpertSim = true
	cfg.Geo = constGeo{km: 5}
	sc := scorerFixture(t, cfg, recs)
	soft := sc.score([]int{0, 1})
	if soft <= 0 {
		t.Errorf("soft score = %v, want > 0 for near-identical items", soft)
	}
	// Exact Jaccard sees nothing in common.
	hard := scorerFixture(t, NewConfig(), recs).score([]int{0, 1})
	if hard != 0 {
		t.Errorf("hard score = %v, want 0", hard)
	}
	if soft > 1 {
		t.Errorf("soft score %v out of range", soft)
	}
}

func TestSoftJaccardGreedyMatching(t *testing.T) {
	cfg := NewConfig()
	cfg.ExpertSim = true
	cfg.Geo = constGeo{km: 0}
	recs := []*record.Record{
		mkRec(1, it(record.FirstName, "Guido")),
		mkRec(2, it(record.FirstName, "Guido")),
	}
	sc := scorerFixture(t, cfg, recs)
	// One perfect match over 1+1-1 items -> 1.0.
	if got := sc.softJaccard(recs[0], recs[1]); math.Abs(got-1) > 1e-12 {
		t.Errorf("softJaccard identical = %v", got)
	}
	// Cross-type values never match.
	a := mkRec(3, it(record.FirstName, "Guido"))
	b := mkRec(4, it(record.LastName, "Guido"))
	if got := sc.softJaccard(a, b); got != 0 {
		t.Errorf("cross-type softJaccard = %v", got)
	}
}

func TestBlockPairsEnumeration(t *testing.T) {
	b := &Block{Members: []int{3, 5, 9}}
	pairs := b.Pairs(nil)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
	want := [][2]int{{3, 5}, {3, 9}, {5, 9}}
	for i, p := range want {
		if pairs[i] != p {
			t.Errorf("pair %d = %v, want %v", i, pairs[i], p)
		}
	}
	if b.Size() != 3 {
		t.Errorf("Size = %d", b.Size())
	}
}

func TestEnforceNGOrderingAndThreshold(t *testing.T) {
	cfg := NewConfig()
	cfg.NG = 0.2 // tiny budget: NG*MaxMinSup = 1 comparison per record
	cfg.MinScore = 0.0
	blocks := []*Block{
		{Members: []int{0, 1}, Score: 0.9},
		{Members: []int{0, 2}, Score: 0.5}, // record 0 over budget
		{Members: []int{3, 4}, Score: 0.3},
	}
	spent := make([]int, 5)
	kept, th, ngPruned := enforceNG(&cfg, blocks, spent)
	if len(kept) != 2 {
		t.Fatalf("kept %d blocks: %+v", len(kept), kept)
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.3 {
		t.Errorf("kept wrong blocks: %+v", kept)
	}
	if th != 0.3 {
		t.Errorf("threshold = %v, want lowest kept score", th)
	}
	if ngPruned != 1 {
		t.Errorf("ngPruned = %d, want 1", ngPruned)
	}
	// Budgets persist: a second call sees record 3/4 exhausted.
	kept2, _, _ := enforceNG(&cfg, []*Block{{Members: []int{3, 4}, Score: 0.8}}, spent)
	if len(kept2) != 0 {
		t.Errorf("lifetime budget not enforced: %+v", kept2)
	}
}

func TestEnforceNGDropsBelowMinScore(t *testing.T) {
	cfg := NewConfig()
	cfg.MinScore = 0.5
	blocks := []*Block{
		{Members: []int{0, 1}, Score: 0.6},
		{Members: []int{2, 3}, Score: 0.4},
	}
	kept, _, _ := enforceNG(&cfg, blocks, make([]int, 4))
	if len(kept) != 1 || kept[0].Score != 0.6 {
		t.Errorf("MinScore filter failed: %+v", kept)
	}
}
