package mfiblocks

import (
	"math/rand"
	"testing"
)

func benchRng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func BenchmarkRun(b *testing.B) {
	for _, persons := range []int{250, 500, 1000} {
		b.Run(sizeName(persons), func(b *testing.B) {
			g := smallItaly(b, persons)
			cfg := NewConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, g.Collection); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnforceNG measures the sparse-neighborhood filter with its
// dense []int comparison budgets — the map it replaced dominated the
// allocation profile of the blocking hot path.
func BenchmarkEnforceNG(b *testing.B) {
	const n = 2000
	cfg := NewConfig()
	cfg.MinScore = 0.0
	rng := benchRng()
	blocks := make([]*Block, 600)
	for i := range blocks {
		members := make([]int, 2+rng.Intn(6))
		for j := range members {
			members[j] = rng.Intn(n)
		}
		blocks[i] = &Block{Members: members, Score: 0.1 + rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spent := make([]int, n)
		enforceNG(&cfg, blocks, spent)
	}
}

func sizeName(persons int) string {
	switch persons {
	case 250:
		return "persons250"
	case 500:
		return "persons500"
	default:
		return "persons1000"
	}
}
