package mfiblocks

import "testing"

func BenchmarkRun(b *testing.B) {
	for _, persons := range []int{250, 500, 1000} {
		b.Run(sizeName(persons), func(b *testing.B) {
			g := smallItaly(b, persons)
			cfg := NewConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, g.Collection); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(persons int) string {
	switch persons {
	case 250:
		return "persons250"
	case 500:
		return "persons500"
	default:
		return "persons1000"
	}
}
