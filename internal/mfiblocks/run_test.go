package mfiblocks

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/record"
)

func smallItaly(t testing.TB, persons int) *dataset.Generated {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = persons
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g
}

func TestRunFindsDuplicates(t *testing.T) {
	g := smallItaly(t, 500)
	cfg := NewConfig()
	res, err := Run(cfg, g.Collection)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no candidate pairs produced")
	}
	truth := eval.NewPairSet(g.Gold.TruePairs())
	m := eval.Evaluate(res.Pairs, truth)
	t.Logf("records=%d truePairs=%d candidates=%d %v", g.Collection.Len(), len(truth), len(res.Pairs), m)
	if m.Recall < 0.4 {
		t.Errorf("recall %.3f too low; blocking is broken", m.Recall)
	}
	if m.Precision < 0.01 {
		t.Errorf("precision %.3f too low", m.Precision)
	}
}

func TestBlocksRespectInvariants(t *testing.T) {
	g := smallItaly(t, 300)
	cfg := NewConfig()
	res, err := Run(cfg, g.Collection)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, b := range res.Blocks {
		if b.Size() < 2 {
			t.Errorf("block with %d members", b.Size())
		}
		maxSize := int(float64(b.MinSup) * cfg.P)
		if b.Size() > maxSize {
			t.Errorf("block size %d exceeds cap %d at minsup %d", b.Size(), maxSize, b.MinSup)
		}
		if b.Score < 0 || b.Score > 1 {
			t.Errorf("block score %v out of [0,1]", b.Score)
		}
	}
	// Every candidate pair must come from at least one block and carry a
	// positive score.
	for _, p := range res.Pairs {
		if len(res.PairBlocks[p]) == 0 {
			t.Errorf("pair %v has no source block", p)
		}
		if res.PairScores[p] <= 0 {
			t.Errorf("pair %v has score %v", p, res.PairScores[p])
		}
	}
	// Coverage: every covered record appears in some pair.
	inPair := make(map[int64]bool)
	for _, p := range res.Pairs {
		inPair[p.A] = true
		inPair[p.B] = true
	}
	for i, covered := range res.Covered {
		id := g.Collection.Records[i].BookID
		if covered != inPair[id] {
			t.Errorf("record %d: covered=%v but inPair=%v", id, covered, inPair[id])
		}
	}
}

func TestCoverageMonotonic(t *testing.T) {
	g := smallItaly(t, 300)
	res, err := Run(NewConfig(), g.Collection)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	prev := 0
	for _, it := range res.Iterations {
		if it.CoveredNow < prev {
			t.Errorf("coverage decreased: %d -> %d at minsup %d", prev, it.CoveredNow, it.MinSup)
		}
		prev = it.CoveredNow
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	first := res.Iterations[0]
	if first.MinSup != NewConfig().MaxMinSup {
		t.Errorf("first iteration minsup = %d, want %d", first.MinSup, NewConfig().MaxMinSup)
	}
}

func TestNGControlsOverlap(t *testing.T) {
	g := smallItaly(t, 400)
	low := NewConfig()
	low.NG = 1.5
	high := NewConfig()
	high.NG = 5
	resLow, err := Run(low, g.Collection)
	if err != nil {
		t.Fatalf("Run(low): %v", err)
	}
	resHigh, err := Run(high, g.Collection)
	if err != nil {
		t.Fatalf("Run(high): %v", err)
	}
	if len(resHigh.Pairs) < len(resLow.Pairs) {
		t.Errorf("NG=5 produced fewer pairs (%d) than NG=1.5 (%d)", len(resHigh.Pairs), len(resLow.Pairs))
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"low maxminsup", func(c *Config) { c.MaxMinSup = 1 }},
		{"zero P", func(c *Config) { c.P = 0 }},
		{"zero NG", func(c *Config) { c.NG = 0 }},
		{"bad prune", func(c *Config) { c.PruneFraction = 1 }},
		{"expertsim without geo", func(c *Config) { c.ExpertSim = true; c.Geo = nil }},
	}
	for _, tc := range cases {
		cfg := NewConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
		}
	}
	good := NewConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := smallItaly(t, 200)
	r1, err := Run(NewConfig(), g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(NewConfig(), g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Pairs) != len(r2.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(r1.Pairs), len(r2.Pairs))
	}
	s1 := eval.NewPairSet(r1.Pairs)
	for _, p := range r2.Pairs {
		if !s1.Has(p) {
			t.Fatalf("pair %v only in second run", p)
		}
	}
	for p, sc := range r1.PairScores {
		if sc2 := r2.PairScores[p]; sc != sc2 {
			t.Fatalf("pair %v score %v vs %v", p, sc, sc2)
		}
	}
}

func TestExpertSimRuns(t *testing.T) {
	g := smallItaly(t, 200)
	cfg := NewConfig()
	cfg.ExpertSim = true
	cfg.Geo = g.Gaz
	res, err := Run(cfg, g.Collection)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Pairs) == 0 {
		t.Error("expert-sim run produced no pairs")
	}
}

func TestPairScoreIsMaxBlockScore(t *testing.T) {
	g := smallItaly(t, 200)
	res, err := Run(NewConfig(), g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	for p, blocks := range res.PairBlocks {
		best := 0.0
		for _, bi := range blocks {
			if s := res.Blocks[bi].Score; s > best {
				best = s
			}
		}
		if got := res.PairScores[p]; got != best {
			t.Errorf("pair %v score %v != best block score %v", p, got, best)
		}
	}
	_ = record.MakePair // keep record import for readability of pair types
}
