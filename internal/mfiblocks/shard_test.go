package mfiblocks

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/record"
)

// stripElapsed zeroes the wall-clock field so iteration stats compare
// structurally.
func stripElapsed(stats []IterationStats) []IterationStats {
	out := append([]IterationStats(nil), stats...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// TestRunShardedBitIdentical is the engine-level half of the sharding
// contract: for every shard count, Blocks, Pairs, PairScores, PairBlocks,
// Covered, and the per-iteration statistics are bit-identical to the
// unsharded run — not merely set-equal.
func TestRunShardedBitIdentical(t *testing.T) {
	g := smallItaly(t, 400)
	base := NewConfig()
	want, err := Run(base, g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) == 0 {
		t.Fatal("baseline produced no pairs")
	}

	for _, shards := range []int{1, 2, 3, 8, 64} {
		for _, workers := range []int{1, 8} {
			cfg := NewConfig()
			cfg.Shards = shards
			cfg.Workers = workers
			got, err := Run(cfg, g.Collection)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if !reflect.DeepEqual(want.Pairs, got.Pairs) {
				t.Fatalf("shards=%d workers=%d: Pairs diverge (%d vs %d)",
					shards, workers, len(got.Pairs), len(want.Pairs))
			}
			if !reflect.DeepEqual(want.PairScores, got.PairScores) {
				t.Fatalf("shards=%d workers=%d: PairScores diverge", shards, workers)
			}
			if !reflect.DeepEqual(want.PairBlocks, got.PairBlocks) {
				t.Fatalf("shards=%d workers=%d: PairBlocks diverge", shards, workers)
			}
			if !reflect.DeepEqual(want.Blocks, got.Blocks) {
				t.Fatalf("shards=%d workers=%d: Blocks diverge", shards, workers)
			}
			if !reflect.DeepEqual(want.Covered, got.Covered) {
				t.Fatalf("shards=%d workers=%d: Covered diverges", shards, workers)
			}
			if !reflect.DeepEqual(stripElapsed(want.Iterations), stripElapsed(got.Iterations)) {
				t.Fatalf("shards=%d workers=%d: iteration stats diverge", shards, workers)
			}
		}
	}
}

// TestRunShardedDeterministicUnderTies reruns the tie-heavy fixture
// sharded: score collisions that cross shard boundaries must still
// resolve through the canonical block order, identically on every run.
func TestRunShardedDeterministicUnderTies(t *testing.T) {
	coll := tieHeavyCollection(t)
	cfg := NewConfig()
	cfg.PruneFraction = 0
	cfg.Shards = 8

	first, err := Run(cfg, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Pairs) == 0 {
		t.Fatal("tie-heavy collection produced no pairs")
	}
	mono := cfg
	mono.Shards = 0
	base, err := Run(mono, coll)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Pairs, first.Pairs) {
		t.Fatal("sharded tie-heavy Pairs diverge from monolithic")
	}
	for run := 0; run < 3; run++ {
		again, err := Run(cfg, coll)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Pairs, again.Pairs) {
			t.Fatalf("run %d: sharded Pairs not reproducible", run)
		}
		if !reflect.DeepEqual(first.PairScores, again.PairScores) {
			t.Fatalf("run %d: sharded PairScores not reproducible", run)
		}
	}
}

// drainSpill collects a spill result's merged stream.
func drainSpill(t *testing.T, res *Result) map[record.Pair]float64 {
	t.Helper()
	it, err := res.Spill.Iter()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[record.Pair]float64)
	for {
		p, score, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out[p] = score
	}
	return out
}

// TestRunSpillMatchesInMemory asserts the spilled candidate stream holds
// exactly the pairs and max-combined scores of the unspilled run, for a
// cap small enough to force many disk runs and a cap that never spills.
func TestRunSpillMatchesInMemory(t *testing.T) {
	g := smallItaly(t, 300)
	want, err := Run(NewConfig(), g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) < 100 {
		t.Fatalf("baseline too small to exercise spilling: %d pairs", len(want.Pairs))
	}

	for _, capEntries := range []int{32, 1 << 20} {
		cfg := NewConfig()
		cfg.SpillPairs = capEntries
		cfg.SpillDir = t.TempDir()
		cfg.Shards = 4 // spill and sharding compose
		res, err := Run(cfg, g.Collection)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pairs != nil || res.PairScores != nil || res.PairBlocks != nil {
			t.Fatalf("cap=%d: spill run populated in-memory pair state", capEntries)
		}
		if capEntries == 32 && res.Spill.Stats().Runs == 0 {
			t.Fatal("cap=32 never spilled; fixture too small")
		}
		got := drainSpill(t, res)
		if len(got) != len(want.PairScores) {
			t.Fatalf("cap=%d: %d pairs, want %d", capEntries, len(got), len(want.PairScores))
		}
		for p, score := range want.PairScores {
			if got[p] != score {
				t.Fatalf("cap=%d: pair %v score %v, want %v", capEntries, p, got[p], score)
			}
		}
		if !reflect.DeepEqual(want.Covered, res.Covered) {
			t.Fatalf("cap=%d: Covered diverges", capEntries)
		}
		if !reflect.DeepEqual(want.Blocks, res.Blocks) {
			t.Fatalf("cap=%d: Blocks diverge", capEntries)
		}
		if err := res.Spill.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunCorpusWithoutRecords asserts the default scorer never needs raw
// records — the property the streaming pipeline's skeleton mode relies
// on — while ExpertSim correctly refuses a record-free corpus.
func TestRunCorpusWithoutRecords(t *testing.T) {
	g := smallItaly(t, 200)
	corpus := NewCorpus(g.Collection)
	want, err := RunCorpus(NewConfig(), corpus)
	if err != nil {
		t.Fatal(err)
	}

	bare := &Corpus{Dict: corpus.Dict, Txns: corpus.Txns, BookIDs: corpus.BookIDs}
	got, err := RunCorpus(NewConfig(), bare)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Pairs, got.Pairs) {
		t.Fatal("record-free corpus changed Pairs")
	}
	if !reflect.DeepEqual(want.PairScores, got.PairScores) {
		t.Fatal("record-free corpus changed PairScores")
	}

	expert := NewConfig()
	expert.ExpertSim = true
	expert.Geo = g.Gaz
	if _, err := RunCorpus(expert, bare); err == nil {
		t.Fatal("ExpertSim accepted a corpus without records")
	}
}

// TestCorpusValidate pins the structural checks.
func TestCorpusValidate(t *testing.T) {
	g := smallItaly(t, 50)
	corpus := NewCorpus(g.Collection)
	if err := corpus.validate(); err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
	bad := *corpus
	bad.BookIDs = bad.BookIDs[:1]
	if err := bad.validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	bad = *corpus
	bad.Dict = nil
	if err := bad.validate(); err == nil {
		t.Error("nil dictionary accepted")
	}
	bad = *corpus
	bad.Records = bad.Records[:1]
	if err := bad.validate(); err == nil {
		t.Error("record misalignment accepted")
	}
}

// TestShardOfStable pins the signature hash: values must not drift, or a
// resumed pipeline would re-partition mid-run.
func TestShardOfStable(t *testing.T) {
	if s := shardOf([]int{1, 2, 3}, 8); s != shardOf([]int{1, 2, 3}, 8) {
		t.Fatal("shardOf not deterministic")
	}
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		s := shardOf([]int{i, i * 31}, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d of 8 shards populated over 256 keys", len(seen))
	}
}

// TestConfigValidateShardSpill extends the validation table to the new
// knobs.
func TestConfigValidateShardSpill(t *testing.T) {
	cfg := NewConfig()
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Shards accepted")
	}
	cfg = NewConfig()
	cfg.SpillPairs = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SpillPairs accepted")
	}
	cfg = NewConfig()
	cfg.Shards = 8
	cfg.SpillPairs = 1024
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid sharded spill config rejected: %v", err)
	}
}
