//go:build !race

package mfiblocks

// raceEnabled reports whether the race detector is active. The strict
// allocation guards are relaxed under -race: sync.Pool intentionally
// drops items there, so pooled scratch reuse cannot be asserted.
const raceEnabled = false
