package mfiblocks

import (
	"fmt"

	"repro/internal/fpgrowth"
	"repro/internal/record"
)

// BlockBench exposes one iteration's block-materialization hot paths —
// the merge-based cluster-Jaccard scorer and the cached/uncached
// buildBlocks loop — to cmd/yvbench -bench-blocking without exporting
// the engine internals. It freezes the mined MFIs of one minsup level so
// repeated calls measure exactly the same work.
type BlockBench struct {
	cfg    Config
	sc     *scorer
	index  *fpgrowth.Index
	mfis   []fpgrowth.Itemset
	minsup int
	cache  *blockCache
}

// NewBlockBench encodes the collection, mines the MFIs at minsup, and
// returns the frozen benchmark state. The cache used by
// BuildBlocks(true) is bounded at cfg.BlockCache (DefaultBlockCache
// when unset) and persists across calls, so every call after the first
// measures the hit path.
func NewBlockBench(cfg Config, coll *record.Collection, minsup int) (*BlockBench, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corpus := NewCorpus(coll)
	miner := fpgrowth.NewMinerTxns(corpus.Txns)
	miner.Workers = cfg.Workers
	mfis := miner.MineMaximal(minsup, nil)
	if len(mfis) == 0 {
		return nil, fmt.Errorf("mfiblocks: bench mined no MFIs at minsup=%d", minsup)
	}
	size := cfg.BlockCache
	if size == 0 {
		size = DefaultBlockCache
	}
	return &BlockBench{
		cfg:    cfg,
		sc:     newScorer(&cfg, corpus.Dict, corpus.Txns, corpus.Records),
		index:  miner.BuildIndex(),
		mfis:   mfis,
		minsup: minsup,
		cache:  newBlockCache(size),
	}, nil
}

// MFIs reports how many itemsets each BuildBlocks call materializes.
func (b *BlockBench) MFIs() int { return len(b.mfis) }

// LargestMembers returns the largest materialized support set among the
// mined MFIs — the representative input for scoring benchmarks.
func (b *BlockBench) LargestMembers() []int {
	var best []int
	for _, m := range b.mfis {
		if set := b.index.SupportSet(m.Items); len(set) > len(best) {
			best = set
		}
	}
	return best
}

// Score runs the block scorer (cluster Jaccard under the bench config)
// over the members.
func (b *BlockBench) Score(members []int) float64 { return b.sc.score(members) }

// BuildBlocks materializes, caps, and scores every frozen MFI through
// the engine's buildBlocks pool and returns the surviving block count.
// useCache routes the calls through the persistent cross-iteration
// cache; false measures the cold path every time.
func (b *BlockBench) BuildBlocks(useCache bool) int {
	cache := b.cache
	if !useCache {
		cache = nil
	}
	blocks, _ := buildBlocks(&b.cfg, b.sc, b.index, cache, b.mfis, b.minsup)
	return len(blocks)
}
