// Package mfiblocks implements the MFIBlocks soft-blocking algorithm
// (Kenig & Gal, Information Systems 2013) as instantiated by the paper:
// maximal frequent itemsets mined with decreasing minimum support become
// candidate blocks, filtered by a block-size cap (compact set) and a
// neighborhood-growth cap (sparse neighborhood), yielding possibly
// overlapping blocks and scored candidate record pairs.
package mfiblocks

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/record"
	"repro/internal/similarity"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Config parameterizes a run. NewConfig supplies the defaults used across
// the paper's experiments.
type Config struct {
	// MaxMinSup is the initial (maximal) minimum support; the algorithm
	// iterates with minsup = MaxMinSup..2.
	MaxMinSup int
	// P caps block sizes at minsup*P (the compact-set filter of
	// Algorithm 1, line 8).
	P float64
	// NG is the neighborhood-growth parameter: a record's neighborhood
	// (records sharing a block with it) may hold at most NG*minsup
	// records per iteration; lower-scoring blocks are pruned to enforce
	// this.
	NG float64
	// ExpertWeights applies the expert item-type weighting scheme to the
	// block score instead of uniform weights.
	ExpertWeights bool
	// ExpertSim replaces the set-monotonic itemset-Jaccard block score
	// with the expert item similarity of Eq. 1 (averaged soft Jaccard
	// over member pairs). The paper found this detrimental.
	ExpertSim bool
	// Geo resolves place distances for ExpertSim.
	Geo similarity.GeoDistancer
	// PruneFraction prunes this fraction of the most frequent items
	// before mining (the paper uses 0.0003).
	PruneFraction float64
	// MinScore is the initial block score threshold (minTh).
	MinScore float64
	// Workers bounds the goroutines used across the blocking stage: the
	// MFI miner's top-level fan-out and block construction/scoring alike.
	// 0 means GOMAXPROCS, 1 runs the exact serial paths. Mined MFIs,
	// blocks, and Result.Pairs are bit-identical for every worker count.
	Workers int
	// Shards partitions each iteration's block materialization by a
	// deterministic signature hash of the MFI key: shard k materializes
	// and scores only the blocks whose key hashes to k, and the per-shard
	// outputs are merged under the engine's canonical block order. Mining
	// stays global (itemset support and maximality are whole-corpus
	// properties — shard-local mining would admit phantom MFIs), so the
	// output is bit-identical for every shard count. 0 or 1 disables
	// sharding.
	Shards int
	// MineShards partitions each iteration's MFI mining itself into
	// shard-local miners over contiguous structural-rank ranges of one
	// shared projection tree (fpgrowth.Miner.Shards): each shard mines
	// only its owned top-level suffixes into its own store, and the
	// cross-shard FilterMaximal merge keeps the mined MFIs — and
	// everything downstream — bit-identical for every shard count. 0 or
	// 1 runs the single monolithic mining pass.
	MineShards int
	// BlockCache bounds the cross-iteration block materialization cache
	// (total memoized blocks). The SupportSet contract materializes every
	// block over the whole database, so an MFI key re-mined at a lower
	// minsup yields identical members and score; the cache skips that
	// re-materialization while the per-iteration caps are still re-applied
	// on every hit, keeping Result.Pairs bit-identical for every cache
	// size. 0 disables the cache; DefaultBlockCache is the CLI default.
	BlockCache int
	// SpillPairs, when positive, routes candidate-pair emission through a
	// disk-spillable accumulator holding at most this many distinct pairs
	// in memory: Result.Spill carries the merged (A, B)-sorted stream and
	// Pairs/PairScores/PairBlocks stay nil. The stream holds exactly the
	// pairs and max-combined scores of an unspilled run; only the
	// per-iteration NewPairs statistic degrades to a window-local count.
	// 0 disables spilling (the in-memory default).
	SpillPairs int
	// SpillDir is where SpillPairs writes its sorted runs; empty selects
	// the system temp directory. Run files are unlinked at creation, so a
	// crash leaves nothing behind.
	SpillDir string
	// Metrics receives blocking-stage counters and timings (mfiblocks_*
	// and fpgrowth_* families); nil falls back to telemetry.Default().
	Metrics *telemetry.Registry
	// Trace, when set, parents the blocking stage's per-iteration,
	// per-shard, and miner spans. Nil traces nothing.
	Trace *trace.Span
	// Progress, when set, receives live item counts and shard
	// completions from the minsup loop. Nil disables.
	Progress *trace.Progress
}

// NewConfig returns the defaults the paper's Italy experiments settle on:
// MaxMinSup 5, NG 3.5, uniform weights, itemset-Jaccard scoring.
func NewConfig() Config {
	return Config{
		MaxMinSup:     5,
		P:             2.5,
		NG:            3.5,
		PruneFraction: 0.0003,
		MinScore:      0.1,
	}
}

// Validate reports the first problem with the configuration. NaN fails
// every ordered comparison, so the finiteness checks come first — a
// NaN NG or P would otherwise slip through and poison every block
// score downstream.
func (c *Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"P", c.P}, {"NG", c.NG}, {"PruneFraction", c.PruneFraction}, {"MinScore", c.MinScore}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("mfiblocks: %s must be finite, got %v", f.name, f.v)
		}
	}
	switch {
	case c.MaxMinSup < 2:
		return fmt.Errorf("mfiblocks: MaxMinSup must be >= 2, got %d", c.MaxMinSup)
	case c.P <= 0:
		return fmt.Errorf("mfiblocks: P must be positive, got %v", c.P)
	case c.NG <= 0:
		return fmt.Errorf("mfiblocks: NG must be positive, got %v", c.NG)
	case c.PruneFraction < 0 || c.PruneFraction >= 1:
		return fmt.Errorf("mfiblocks: PruneFraction %v out of [0,1)", c.PruneFraction)
	case c.ExpertSim && c.Geo == nil:
		return fmt.Errorf("mfiblocks: ExpertSim requires Geo")
	case c.Shards < 0:
		return fmt.Errorf("mfiblocks: Shards must be >= 0, got %d", c.Shards)
	case c.MineShards < 0:
		return fmt.Errorf("mfiblocks: MineShards must be >= 0, got %d", c.MineShards)
	case c.SpillPairs < 0:
		return fmt.Errorf("mfiblocks: SpillPairs must be >= 0, got %d", c.SpillPairs)
	case c.BlockCache < 0:
		return fmt.Errorf("mfiblocks: BlockCache must be >= 0, got %d", c.BlockCache)
	}
	return nil
}

// metrics resolves the registry blocking telemetry lands in.
func (c *Config) metrics() *telemetry.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return telemetry.Default()
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// expertWeights is the expert-derived item-type weighting for block
// scoring: identifying names and dates dominate, coarse place parts and
// low-cardinality codes contribute little.
var expertWeights = func() [record.NumItemTypes]float64 {
	var w [record.NumItemTypes]float64
	for t := 0; t < record.NumItemTypes; t++ {
		w[t] = 1 // uniform default
	}
	w[record.FirstName] = 3.0
	w[record.LastName] = 3.0
	w[record.FatherName] = 2.5
	w[record.MotherName] = 2.0
	w[record.SpouseName] = 2.0
	w[record.MaidenName] = 2.0
	w[record.MotherMaiden] = 1.5
	w[record.BirthYear] = 2.0
	w[record.BirthMonth] = 1.0
	w[record.BirthDay] = 1.0
	w[record.Gender] = 0.2
	w[record.Profession] = 0.5
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		w[record.PlaceItem(record.PlaceType(pt), record.City)] = 2.0
		w[record.PlaceItem(record.PlaceType(pt), record.County)] = 0.7
		w[record.PlaceItem(record.PlaceType(pt), record.Region)] = 0.5
		w[record.PlaceItem(record.PlaceType(pt), record.Country)] = 0.3
	}
	return w
}()

// Weight returns the scoring weight of an item type under the config.
func (c *Config) Weight(t record.ItemType) float64 {
	if c.ExpertWeights {
		return expertWeights[t]
	}
	return 1
}
