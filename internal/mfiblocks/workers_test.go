package mfiblocks

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/record"
)

// workerCollection builds a noisy collection with partial duplicates so
// the run exercises several minsup iterations and contested blocks.
func workerCollection(t *testing.T) *record.Collection {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	firsts := []string{"Abram", "Chana", "Dov", "Ester", "Gitel", "Lejb", "Mirla", "Szmul"}
	lasts := []string{"Goldberg", "Kac", "Lewin", "Rozen", "Szwarc", "Wajs"}
	var records []*record.Record
	id := int64(1)
	addVariant := func(first, last, year string, src string) {
		r := &record.Record{BookID: id, Source: src, Kind: record.List}
		r.Add(record.FirstName, first)
		r.Add(record.LastName, last)
		r.Add(record.BirthYear, year)
		if rng.Intn(2) == 0 {
			r.Add(record.FatherName, firsts[rng.Intn(len(firsts))])
		}
		records = append(records, r)
		id++
	}
	for g := 0; g < 40; g++ {
		first := firsts[rng.Intn(len(firsts))]
		last := lasts[rng.Intn(len(lasts))]
		year := fmt.Sprintf("19%02d", rng.Intn(30))
		for dup := 0; dup < 2+rng.Intn(3); dup++ {
			addVariant(first, last, year, fmt.Sprintf("list-%d", 1+dup%3))
		}
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		t.Fatal(err)
	}
	return coll
}

// TestRunWorkerCountInvariance is the acceptance check from the blocking
// engine rework: Result.Pairs, PairScores, Covered, and the per-iteration
// stats must be bit-identical across every Workers setting.
func TestRunWorkerCountInvariance(t *testing.T) {
	coll := workerCollection(t)
	cfg := NewConfig()
	cfg.PruneFraction = 0
	cfg.Workers = 1
	want, err := Run(cfg, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) == 0 {
		t.Fatal("fixture produced no candidate pairs")
	}
	for _, workers := range []int{2, 8} {
		cfg := NewConfig()
		cfg.PruneFraction = 0
		cfg.Workers = workers
		got, err := Run(cfg, coll)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Pairs, got.Pairs) {
			t.Fatalf("workers=%d: Pairs diverge from serial run (%d vs %d)",
				workers, len(got.Pairs), len(want.Pairs))
		}
		if !reflect.DeepEqual(want.PairScores, got.PairScores) {
			t.Fatalf("workers=%d: PairScores diverge", workers)
		}
		if !reflect.DeepEqual(want.Covered, got.Covered) {
			t.Fatalf("workers=%d: Covered diverges", workers)
		}
		for i := range want.Iterations {
			w, g := want.Iterations[i], got.Iterations[i]
			w.Elapsed, g.Elapsed = 0, 0
			if w != g {
				t.Fatalf("workers=%d iteration %d: stats %+v, want %+v", workers, i, g, w)
			}
		}
	}
}

// TestRunParallelRunTwice: a parallel run is reproducible against itself,
// mirroring TestRunDeterministicUnderTies for the Workers>1 paths.
func TestRunParallelRunTwice(t *testing.T) {
	coll := workerCollection(t)
	cfg := NewConfig()
	cfg.PruneFraction = 0
	cfg.Workers = 8
	first, err := Run(cfg, coll)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Run(cfg, coll)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Pairs, again.Pairs) {
			t.Fatalf("run %d: parallel Pairs not reproducible", run)
		}
		if !reflect.DeepEqual(first.PairScores, again.PairScores) {
			t.Fatalf("run %d: parallel PairScores not reproducible", run)
		}
	}
}
