package mfiblocks

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/record"
)

// randomScoringRecords builds records whose item values collide heavily
// — names from a tiny pool of near-identical strings, tightly packed
// birth years, cities that all compare equal under constGeo — so both
// the merge-based cluster Jaccard and the sorted soft Jaccard face the
// maximum number of duplicate items and tied similarities.
func randomScoringRecords(rng *rand.Rand, n int) []*record.Record {
	firsts := []string{"Anna", "Anne", "Anja", "Hanna"}
	lasts := []string{"Levi", "Levy", "Foa"}
	years := []string{"1918", "1919", "1920", "1921"}
	cities := []string{"Roma", "Milano", "Torino"}
	recs := make([]*record.Record, n)
	for i := range recs {
		r := mkRec(int64(i + 1))
		r.Items = append(r.Items, it(record.FirstName, firsts[rng.Intn(len(firsts))]))
		if rng.Intn(3) > 0 {
			r.Items = append(r.Items, it(record.LastName, lasts[rng.Intn(len(lasts))]))
		}
		if rng.Intn(2) == 0 {
			r.Items = append(r.Items, it(record.BirthYear, years[rng.Intn(len(years))]))
		}
		if rng.Intn(2) == 0 {
			r.Items = append(r.Items, it(record.BirthCity, cities[rng.Intn(len(cities))]))
		}
		recs[i] = r
	}
	return recs
}

// refClusterJaccard is the map-based predecessor of the merge-based
// scorer, kept as the test oracle. Weights are summed in ascending
// item-id order — the same order the merge path uses — so weighted
// comparisons are exact, not epsilon-based.
func refClusterJaccard(s *scorer, members []int) float64 {
	count := make(map[int]int)
	for _, m := range members {
		for _, id := range s.txns.Txn(m) {
			count[int(id)]++
		}
	}
	maxID := -1
	for id := range count {
		if id > maxID {
			maxID = id
		}
	}
	var wInter, wUnion float64
	for id := 0; id <= maxID; id++ {
		c, ok := count[id]
		if !ok {
			continue
		}
		w := s.weight(id)
		wUnion += w
		if c == len(members) {
			wInter += w
		}
	}
	if wUnion == 0 {
		return 0
	}
	return wInter / wUnion
}

// TestClusterJaccardMatchesReference cross-checks the merge-based
// scorer against the map-based oracle over randomized tie-heavy
// clusters, weighted and unweighted, bit-for-bit.
func TestClusterJaccardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := randomScoringRecords(rng, 60)
	for _, weighted := range []bool{false, true} {
		cfg := NewConfig()
		cfg.ExpertWeights = weighted
		sc := scorerFixture(t, cfg, recs)
		for trial := 0; trial < 200; trial++ {
			size := 2 + rng.Intn(6)
			members := rng.Perm(len(recs))[:size]
			got := sc.clusterJaccard(members)
			want := refClusterJaccard(sc, members)
			if got != want {
				t.Fatalf("weighted=%v trial=%d members=%v: merge %v != reference %v",
					weighted, trial, members, got, want)
			}
		}
	}
}

// TestClusterJaccardAllocs is the tentpole's steady-state guard: after
// the pooled scratch warms up, scoring a cluster — weighted or not —
// performs zero heap allocations per call. Relaxed under -race, where
// sync.Pool drops items by design.
func TestClusterJaccardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc guard not meaningful")
	}
	rng := rand.New(rand.NewSource(7))
	recs := randomScoringRecords(rng, 40)
	members := []int{0, 3, 7, 11, 19, 23, 31, 39}
	for _, weighted := range []bool{false, true} {
		cfg := NewConfig()
		cfg.ExpertWeights = weighted
		sc := scorerFixture(t, cfg, recs)
		for i := 0; i < 10; i++ {
			sc.score(members) // warm the scratch pool
		}
		allocs := testing.AllocsPerRun(100, func() { sc.score(members) })
		if allocs != 0 {
			t.Errorf("weighted=%v: clusterJaccard allocates %v/op, want 0", weighted, allocs)
		}
	}
}

// TestWeightedJaccardRunTwiceDeterministic is the regression test for
// the map-order bug the merge rewrite fixed: under ExpertWeights the
// predecessor summed weights in map-iteration order, so tied block
// scores could flip enforceNG admission between runs. Two full runs
// over the tie-heavy fixture must now agree bit-for-bit.
func TestWeightedJaccardRunTwiceDeterministic(t *testing.T) {
	coll := tieHeavyCollection(t)
	cfg := NewConfig()
	cfg.ExpertWeights = true
	cfg.PruneFraction = 0

	first, err := Run(cfg, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Pairs) == 0 {
		t.Fatal("tie-heavy collection produced no pairs under expert weights")
	}
	for run := 0; run < 3; run++ {
		again, err := Run(cfg, coll)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Pairs, again.Pairs) {
			t.Fatalf("run %d: weighted Pairs differ across runs", run)
		}
		if !reflect.DeepEqual(first.PairScores, again.PairScores) {
			t.Fatalf("run %d: weighted PairScores differ across runs", run)
		}
	}
}

// refSoftJaccard is the quadratic rescan-and-remove greedy matcher the
// sorted rewrite replaced: candidates enumerated i-major, the first
// strict maximum taken each round. The rewrite must reproduce it
// exactly, ties included.
func refSoftJaccard(s *scorer, a, b *record.Record) float64 {
	type cand struct {
		sim  float64
		i, j int
	}
	var cands []cand
	for i, ia := range a.Items {
		for j, ib := range b.Items {
			if ia.Type != ib.Type {
				continue
			}
			if sim := s.itemSim.Compare(ia, ib); sim > 0 {
				cands = append(cands, cand{sim, i, j})
			}
		}
	}
	usedA := make([]bool, len(a.Items))
	usedB := make([]bool, len(b.Items))
	var total float64
	matched := 0
	for {
		best := -1
		for k, c := range cands {
			if usedA[c.i] || usedB[c.j] {
				continue
			}
			if best == -1 || c.sim > cands[best].sim {
				best = k
			}
		}
		if best == -1 {
			break
		}
		usedA[cands[best].i] = true
		usedB[cands[best].j] = true
		total += cands[best].sim
		matched++
	}
	denom := float64(len(a.Items) + len(b.Items) - matched)
	if denom <= 0 {
		return 0
	}
	return total / denom
}

// TestSoftJaccardGolden locks the greedy tie order. The fixture's four
// birth-year candidates tie at similarity 0.5: matching (0,0) first —
// the (sim desc, i asc, j asc) order — blocks (1,0), leaves (1,1), and
// yields exactly 0.5; any other tie resolution yields 1/6. The golden
// value therefore fails if the deterministic order drifts.
func TestSoftJaccardGolden(t *testing.T) {
	cfg := NewConfig()
	cfg.ExpertSim = true
	cfg.Geo = constGeo{km: 0}
	a := mkRec(1, it(record.BirthYear, "1900"), it(record.BirthYear, "1950"))
	b := mkRec(2, it(record.BirthYear, "1925"), it(record.BirthYear, "1975"))
	sc := scorerFixture(t, cfg, []*record.Record{a, b})

	// Candidates: (0,0)=0.5, (1,0)=0.5, (1,1)=0.5; (0,1) is 0 (75-year
	// gap) and never enters. Greedy takes (0,0) then (1,1).
	const want = 0.5
	for run := 0; run < 50; run++ {
		if got := sc.softJaccard(a, b); got != want {
			t.Fatalf("run %d: softJaccard = %v, want golden %v", run, got, want)
		}
	}
	if ref := refSoftJaccard(sc, a, b); ref != want {
		t.Fatalf("reference greedy = %v, want %v — fixture no longer order-sensitive", ref, want)
	}
}

// TestSoftJaccardMatchesReference cross-checks the sorted bitmask
// matcher against the quadratic greedy oracle over randomized records
// dense with tied similarities (identical name pools, constant-distance
// cities), bit-for-bit.
func TestSoftJaccardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	recs := randomScoringRecords(rng, 50)
	cfg := NewConfig()
	cfg.ExpertSim = true
	cfg.Geo = constGeo{km: 30} // every city pair ties at 0.7
	sc := scorerFixture(t, cfg, recs)
	for trial := 0; trial < 300; trial++ {
		a := recs[rng.Intn(len(recs))]
		b := recs[rng.Intn(len(recs))]
		got := sc.softJaccard(a, b)
		want := refSoftJaccard(sc, a, b)
		if got != want {
			t.Fatalf("trial %d (%v vs %v): sorted %v != greedy oracle %v",
				trial, a.Items, b.Items, got, want)
		}
	}
}

// TestScorerConcurrentUse exercises the pooled scratch under real
// concurrency: one shared scorer, many goroutines, results identical to
// the serial answers. Run with -race this doubles as the data-race
// certification for the scratch pools.
func TestScorerConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := randomScoringRecords(rng, 48)
	cfg := NewConfig()
	cfg.ExpertWeights = true
	sc := scorerFixture(t, cfg, recs)

	clusters := make([][]int, 64)
	want := make([]float64, len(clusters))
	for i := range clusters {
		clusters[i] = rng.Perm(len(recs))[:2+rng.Intn(6)]
		want[i] = sc.score(clusters[i])
	}

	got := make([]float64, len(clusters))
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := w; i < len(clusters); i += 8 {
				got[i] = sc.score(clusters[i])
			}
			done <- w
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	for i := range clusters {
		if got[i] != want[i] {
			t.Fatalf("cluster %d: concurrent score %v != serial %v", i, got[i], want[i])
		}
	}
}
