//go:build race

package mfiblocks

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
