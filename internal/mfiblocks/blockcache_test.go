package mfiblocks

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fpgrowth"
	"repro/internal/record"
)

// TestBlockCacheBasics pins the unit contract: misses before puts, hits
// after, full-key verification behind the hash, duplicate puts ignored,
// and nil-cache methods all no-ops.
func TestBlockCacheBasics(t *testing.T) {
	c := newBlockCache(64)
	key := []int{3, 17, 99}
	if _, _, ok := c.get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	members := []int{1, 2, 5}
	c.put(key, members, 0.75)
	gotM, gotS, ok := c.get(key)
	if !ok || gotS != 0.75 || !reflect.DeepEqual(gotM, members) {
		t.Fatalf("get = (%v, %v, %v), want (%v, 0.75, true)", gotM, gotS, ok, members)
	}
	// A duplicate put must not clobber or duplicate the entry.
	c.put(key, []int{9}, 0.1)
	if gotM, gotS, _ = c.get(key); gotS != 0.75 || !reflect.DeepEqual(gotM, members) {
		t.Fatal("duplicate put replaced the original entry")
	}
	if _, _, ok := c.get([]int{3, 17}); ok {
		t.Fatal("prefix key reported a hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses, 1 entry", st)
	}

	var nilCache *blockCache
	if _, _, ok := nilCache.get(key); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.put(key, members, 1)
	if st := nilCache.Stats(); st != (BlockCacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if newBlockCache(0) != nil || newBlockCache(-5) != nil {
		t.Fatal("non-positive bound did not disable the cache")
	}
}

// TestBlockCacheEviction fills a tiny cache far past its bound: entries
// stay bounded per shard and the eviction counter accounts for every
// cleared entry.
func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(16) // one entry per shard
	for i := 0; i < 400; i++ {
		c.put([]int{i, i * 7, i * 31}, []int{i, i + 1}, 0.5)
	}
	st := c.Stats()
	if st.Entries > 16 {
		t.Fatalf("entries = %d exceed bound 16", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("400 puts into a 16-entry cache never evicted")
	}
	if st.Evictions+int64(st.Entries) != 400 {
		t.Fatalf("evictions %d + entries %d != 400 puts", st.Evictions, st.Entries)
	}
}

// TestBuildBlocksCacheAdversarial is the satellite's adversarial case:
// the same MFI keys recur across three minsup levels whose compact-set
// caps differ (maxSize = minsup*P shrinks as minsup falls), so cached
// entries admitted at one level must be re-filtered — not replayed — at
// the next. Every level's blocks and prune count must match a cache-off
// build bit-for-bit, while the shared cache demonstrably serves hits.
func TestBuildBlocksCacheAdversarial(t *testing.T) {
	g := smallItaly(t, 300)
	cfg := NewConfig()
	// Tighten the compact-set multiplier so maxSize = minsup*P actually
	// prunes at the lower minsup levels (the fixture's largest support
	// set has 3 members, so maxSize must fall to 2): entries cached and
	// admitted at minsup 5 must be re-filtered, not replayed, at minsup 2.
	cfg.P = 1.2
	corpus := NewCorpus(g.Collection)
	miner := fpgrowth.NewMinerTxns(corpus.Txns)
	index := miner.BuildIndex()
	sc := newScorer(&cfg, corpus.Dict, corpus.Txns, corpus.Records)
	mfis := miner.MineMaximal(2, nil)
	if len(mfis) < 50 {
		t.Fatalf("fixture mined only %d MFIs", len(mfis))
	}

	cache := newBlockCache(DefaultBlockCache)
	prunedDiffers := false
	for _, minsup := range []int{5, 4, 3, 2} {
		wantBlocks, wantPruned := buildBlocks(&cfg, sc, index, nil, mfis, minsup)
		gotBlocks, gotPruned := buildBlocks(&cfg, sc, index, cache, mfis, minsup)
		if gotPruned != wantPruned {
			t.Fatalf("minsup=%d: csPruned %d with cache, %d without", minsup, gotPruned, wantPruned)
		}
		if !reflect.DeepEqual(wantBlocks, gotBlocks) {
			t.Fatalf("minsup=%d: cached blocks diverge (%d vs %d)", minsup, len(gotBlocks), len(wantBlocks))
		}
		if wantPruned > 0 {
			prunedDiffers = true
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatal("recurring keys across minsup levels produced no cache hits")
	}
	if !prunedDiffers {
		t.Fatal("no level exercised the compact-set cap; fixture too permissive")
	}

	// Same keys through a pathologically tiny cache: eviction churn must
	// not change a single bit either.
	tiny := newBlockCache(8)
	for _, minsup := range []int{5, 4, 3, 2} {
		wantBlocks, wantPruned := buildBlocks(&cfg, sc, index, nil, mfis, minsup)
		gotBlocks, gotPruned := buildBlocks(&cfg, sc, index, tiny, mfis, minsup)
		if gotPruned != wantPruned || !reflect.DeepEqual(wantBlocks, gotBlocks) {
			t.Fatalf("minsup=%d: tiny cache diverges from cache-off build", minsup)
		}
	}
	if tiny.Stats().Evictions == 0 {
		t.Fatal("tiny cache never evicted; churn path unexercised")
	}
}

// assertSameBlocking compares everything blocking-derived in two
// results except the cache counters (which legitimately differ across
// cache configurations).
func assertSameBlocking(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Pairs, got.Pairs) {
		t.Fatalf("%s: Pairs diverge (%d vs %d)", label, len(got.Pairs), len(want.Pairs))
	}
	if !reflect.DeepEqual(want.PairScores, got.PairScores) {
		t.Fatalf("%s: PairScores diverge", label)
	}
	if !reflect.DeepEqual(want.PairBlocks, got.PairBlocks) {
		t.Fatalf("%s: PairBlocks diverge", label)
	}
	if !reflect.DeepEqual(want.Blocks, got.Blocks) {
		t.Fatalf("%s: Blocks diverge", label)
	}
	if !reflect.DeepEqual(want.Covered, got.Covered) {
		t.Fatalf("%s: Covered diverges", label)
	}
	if !reflect.DeepEqual(stripElapsed(want.Iterations), stripElapsed(got.Iterations)) {
		t.Fatalf("%s: iteration stats diverge", label)
	}
}

// TestRunBlockCacheBitIdentical is the engine-level acceptance check:
// Result is bit-identical across cache off, a tiny eviction-churning
// cache, and the default cache — alone and composed with signature
// shards and worker fan-out.
func TestRunBlockCacheBitIdentical(t *testing.T) {
	g := smallItaly(t, 400)
	base := NewConfig()
	want, err := Run(base, g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) == 0 {
		t.Fatal("baseline produced no pairs")
	}
	if want.Cache != (BlockCacheStats{}) {
		t.Fatalf("cache-off run reported cache activity: %+v", want.Cache)
	}

	for _, cacheSize := range []int{4, 64, DefaultBlockCache} {
		for _, shards := range []int{0, 4} {
			for _, workers := range []int{1, 2, 8} {
				label := fmt.Sprintf("cache=%d shards=%d workers=%d", cacheSize, shards, workers)
				cfg := NewConfig()
				cfg.BlockCache = cacheSize
				cfg.Shards = shards
				cfg.Workers = workers
				got, err := Run(cfg, g.Collection)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertSameBlocking(t, label, want, got)
				if got.Cache.Hits+got.Cache.Misses == 0 {
					t.Fatalf("%s: cache never consulted", label)
				}
			}
		}
	}
}

// blockCacheRecurrenceCollection builds groups whose shared {first,
// last} itemset scores well below the raised MinScore: every iteration
// re-mines the same maximal keys (nothing is ever admitted, so nothing
// is ever covered), guaranteeing cross-iteration cache hits.
func blockCacheRecurrenceCollection(t *testing.T) *record.Collection {
	t.Helper()
	var records []*record.Record
	id := int64(1)
	for group := 0; group < 6; group++ {
		for dup := 0; dup < 5; dup++ {
			r := &record.Record{BookID: id, Source: "list-1", Kind: record.List}
			r.Add(record.FirstName, fmt.Sprintf("Name%c", 'A'+group))
			r.Add(record.LastName, fmt.Sprintf("Fam%c", 'A'+group))
			r.Add(record.BirthYear, fmt.Sprintf("%d", 1900+int(id)))
			records = append(records, r)
			id++
		}
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		t.Fatal(err)
	}
	return coll
}

// TestRunBlockCacheHitsOnRecurringKeys drives the run that motivates
// the cache: keys that are materialized but never admitted recur at
// every minsup level, so the cached (members, score) is reused instead
// of re-intersecting posting lists — with and without hits, the output
// is identical.
func TestRunBlockCacheHitsOnRecurringKeys(t *testing.T) {
	coll := blockCacheRecurrenceCollection(t)
	base := NewConfig()
	base.PruneFraction = 0
	base.MinScore = 0.99 // nothing admitted: the active set never shrinks

	off := base
	want, err := Run(off, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) != 0 {
		t.Fatal("MinScore 0.99 still admitted pairs; fixture drifted")
	}

	cached := base
	cached.BlockCache = DefaultBlockCache
	got, err := Run(cached, coll)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBlocking(t, "recurrence", want, got)
	if got.Cache.Hits == 0 {
		t.Fatalf("recurring keys never hit the cache: %+v", got.Cache)
	}
	if got.Cache.Misses == 0 {
		t.Fatal("first materialization of each key should miss")
	}
}

// TestConfigValidateBlockCache extends the validation table.
func TestConfigValidateBlockCache(t *testing.T) {
	cfg := NewConfig()
	cfg.BlockCache = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative BlockCache accepted")
	}
	cfg = NewConfig()
	cfg.BlockCache = DefaultBlockCache
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid BlockCache rejected: %v", err)
	}
}
