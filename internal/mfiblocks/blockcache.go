package mfiblocks

import (
	"sync"
	"sync/atomic"
)

// Cross-iteration block materialization cache.
//
// Correctness rests on the SupportSet contract: blocks are always
// materialized over the *whole* transaction database, never the
// iteration's active subset, so an MFI key mined again at a lower minsup
// level yields byte-identical members — and the scorer is a pure
// function of those members — making (members, score) safely memoizable
// by key content. Everything minsup-dependent (the compact-set cap
// maxSize, the < 2 member floor) is re-applied by the caller on every
// hit, so a cached entry admitted at one level can still be pruned at
// another.
//
// The cache is sharded 16 ways (block building runs on a worker pool),
// bounded per shard, and evicts by clearing a full shard — the same
// regime as features.PairMemo. Hash collisions chain and verify full key
// equality, so a hit is never a false positive.

// DefaultBlockCache is the default bound (total entries) of the
// cross-iteration block cache; the CLIs' -block-cache flag defaults to
// it, and 0 disables the cache entirely.
const DefaultBlockCache = 1 << 16

// BlockCacheStats is the cache's lifetime counters, surfaced on Result
// and folded into telemetry and the run report.
type BlockCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

const blockCacheShards = 16

type blockCacheEntry struct {
	key     []int
	members []int
	score   float64
}

type blockCacheShard struct {
	mu sync.RWMutex
	m  map[uint64][]blockCacheEntry
	n  int
}

// blockCache memoizes materialized blocks across minsup iterations.
// A nil *blockCache disables every method at zero cost.
type blockCache struct {
	shards   [blockCacheShards]blockCacheShard
	perShard int
	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64
}

// newBlockCache returns a cache bounded at maxEntries total entries
// (minimum one per shard), or nil when maxEntries <= 0.
func newBlockCache(maxEntries int) *blockCache {
	if maxEntries <= 0 {
		return nil
	}
	per := maxEntries / blockCacheShards
	if per < 1 {
		per = 1
	}
	c := &blockCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64][]blockCacheEntry)
	}
	return c
}

// hashKey is FNV-1a over the key's item ids (the same inline idiom as
// the signature-shard router and features.PairMemo).
func hashKey(key []int) uint64 {
	h := uint64(14695981039346656037)
	for _, it := range key {
		v := uint64(it)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the memoized members and score for the key, verifying full
// key equality behind the hash.
func (c *blockCache) get(key []int) (members []int, score float64, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	h := hashKey(key)
	sh := &c.shards[h%blockCacheShards]
	sh.mu.RLock()
	for _, e := range sh.m[h] {
		if intsEqual(e.key, key) {
			members, score, ok = e.members, e.score, true
			break
		}
	}
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return members, score, ok
}

// put memoizes a materialized block. The key and members slices are
// retained as-is and must never be mutated afterwards (MFI keys and
// kept-block member slices are both immutable once built). A full shard
// is cleared wholesale before inserting — cheap, and the minsup loop
// re-materializes anything it still needs.
func (c *blockCache) put(key []int, members []int, score float64) {
	if c == nil {
		return
	}
	h := hashKey(key)
	sh := &c.shards[h%blockCacheShards]
	sh.mu.Lock()
	for _, e := range sh.m[h] {
		if intsEqual(e.key, key) {
			sh.mu.Unlock()
			return
		}
	}
	if sh.n >= c.perShard {
		c.evicted.Add(int64(sh.n))
		clear(sh.m)
		sh.n = 0
	}
	sh.m[h] = append(sh.m[h], blockCacheEntry{key: key, members: members, score: score})
	sh.n++
	sh.mu.Unlock()
}

// Stats snapshots the cache counters. Safe on nil (all zeros).
func (c *blockCache) Stats() BlockCacheStats {
	if c == nil {
		return BlockCacheStats{}
	}
	st := BlockCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		st.Entries += sh.n
		sh.mu.RUnlock()
	}
	return st
}
