package mfiblocks

import (
	"fmt"

	"repro/internal/record"
)

// Corpus is the encoded form the blocking engine actually operates on:
// the item dictionary, the per-record sorted item-id transactions, and
// the BookID of each transaction. It decouples the engine from
// record.Collection so a streaming caller can assemble it incrementally
// (interning items record by record, then dropping the raw records) while
// batch callers keep the one-shot Run entry point.
type Corpus struct {
	// Dict maps item keys to the dense ids Encoded uses.
	Dict *record.Dictionary
	// Encoded holds one sorted, deduplicated item-id transaction per
	// record, indexed by the same position as BookIDs.
	Encoded [][]int
	// BookIDs gives each transaction's report identifier — the values
	// candidate pairs are expressed in.
	BookIDs []int64
	// Records optionally carries the raw records, positionally aligned
	// with Encoded. Required only by ExpertSim scoring, which compares
	// item values; a streaming caller that sticks to the default
	// itemset-Jaccard score leaves it nil and the engine never touches
	// record values.
	Records []*record.Record
}

// NewCorpus encodes a collection: the exact dictionary-and-transaction
// preparation Run has always performed, exposed so callers can share one
// encoding across several engine invocations.
func NewCorpus(coll *record.Collection) *Corpus {
	n := coll.Len()
	dict := record.BuildDictionary(coll)
	c := &Corpus{
		Dict:    dict,
		Encoded: make([][]int, n),
		BookIDs: make([]int64, n),
		Records: coll.Records,
	}
	for i, r := range coll.Records {
		c.Encoded[i] = dict.Encode(r)
		c.BookIDs[i] = r.BookID
	}
	return c
}

// Len returns the number of transactions.
func (c *Corpus) Len() int { return len(c.Encoded) }

// validate reports the first structural problem with the corpus.
func (c *Corpus) validate() error {
	switch {
	case c.Dict == nil:
		return fmt.Errorf("mfiblocks: corpus has no dictionary")
	case len(c.Encoded) != len(c.BookIDs):
		return fmt.Errorf("mfiblocks: corpus has %d transactions but %d book ids", len(c.Encoded), len(c.BookIDs))
	case c.Records != nil && len(c.Records) != len(c.Encoded):
		return fmt.Errorf("mfiblocks: corpus has %d transactions but %d records", len(c.Encoded), len(c.Records))
	}
	return nil
}
