package mfiblocks

import (
	"fmt"

	"repro/internal/fpgrowth"
	"repro/internal/record"
)

// Corpus is the encoded form the blocking engine actually operates on:
// the item dictionary, the per-record transactions in flat arena form,
// and the BookID of each transaction. It decouples the engine from
// record.Collection so a streaming caller can assemble it incrementally
// (interning items record by record, then dropping the raw records) while
// batch callers keep the one-shot Run entry point.
type Corpus struct {
	// Dict maps item keys to the dense ids Txns uses.
	Dict *record.Dictionary
	// Txns holds one sorted, deduplicated item-id transaction per record
	// in a flat int32 arena (one allocation, cache-linear scans), indexed
	// by the same position as BookIDs. Append grows it record by record.
	Txns *fpgrowth.Transactions
	// BookIDs gives each transaction's report identifier — the values
	// candidate pairs are expressed in.
	BookIDs []int64
	// Records optionally carries the raw records, positionally aligned
	// with Txns. Required only by ExpertSim scoring, which compares
	// item values; a streaming caller that sticks to the default
	// itemset-Jaccard score leaves it nil and the engine never touches
	// record values.
	Records []*record.Record
}

// NewCorpus encodes a collection: the exact dictionary-and-transaction
// preparation Run has always performed, exposed so callers can share one
// encoding across several engine invocations.
func NewCorpus(coll *record.Collection) *Corpus {
	n := coll.Len()
	dict := record.BuildDictionary(coll)
	c := &Corpus{
		Dict:    dict,
		Txns:    fpgrowth.NewTransactions(n, 0),
		BookIDs: make([]int64, 0, n),
		Records: coll.Records,
	}
	for _, r := range coll.Records {
		c.Append(dict.Encode(r), r.BookID)
	}
	return c
}

// Append adds one encoded transaction and its report identifier — the
// incremental assembly step streaming ingest drives per record.
func (c *Corpus) Append(txn []int, bookID int64) {
	if c.Txns == nil {
		c.Txns = fpgrowth.NewTransactions(0, 0)
	}
	c.Txns.Append(txn)
	c.BookIDs = append(c.BookIDs, bookID)
}

// Len returns the number of transactions.
func (c *Corpus) Len() int { return c.Txns.Len() }

// validate reports the first structural problem with the corpus.
func (c *Corpus) validate() error {
	switch {
	case c.Dict == nil:
		return fmt.Errorf("mfiblocks: corpus has no dictionary")
	case c.Txns.Len() != len(c.BookIDs):
		return fmt.Errorf("mfiblocks: corpus has %d transactions but %d book ids", c.Txns.Len(), len(c.BookIDs))
	case c.Records != nil && len(c.Records) != c.Txns.Len():
		return fmt.Errorf("mfiblocks: corpus has %d transactions but %d records", c.Txns.Len(), len(c.Records))
	}
	return nil
}
