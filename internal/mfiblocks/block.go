package mfiblocks

import (
	"slices"
	"sync"

	"repro/internal/fpgrowth"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Block is one soft cluster: the maximal frequent itemset that induced it,
// the records supporting it, and its score. Blocks may overlap.
type Block struct {
	// Key is the MFI (item ids into the run's dictionary) shared by all
	// member records — the automatically discovered blocking key.
	Key []int
	// Members are positional record indices into the collection.
	Members []int
	// Score is the block's quality under the configured scoring
	// function, in [0,1].
	Score float64
	// MinSup is the iteration (support level) that produced the block.
	MinSup int
}

// Size returns the number of member records.
func (b *Block) Size() int { return len(b.Members) }

// Pairs appends all member pairs (as collection indices) to dst.
func (b *Block) Pairs(dst [][2]int) [][2]int {
	for i := 0; i < len(b.Members); i++ {
		for j := i + 1; j < len(b.Members); j++ {
			dst = append(dst, [2]int{b.Members[i], b.Members[j]})
		}
	}
	return dst
}

// scorer computes block scores.
type scorer struct {
	cfg      *Config
	dict     *record.Dictionary
	txns     *fpgrowth.Transactions // per-record sorted item ids, arena form
	records  []*record.Record
	itemSim  similarity.ItemSim
	useFsim  bool
	weighted bool
}

func newScorer(cfg *Config, dict *record.Dictionary, txns *fpgrowth.Transactions, records []*record.Record) *scorer {
	return &scorer{
		cfg:      cfg,
		dict:     dict,
		txns:     txns,
		records:  records,
		itemSim:  similarity.ItemSim{Geo: cfg.Geo},
		useFsim:  cfg.ExpertSim,
		weighted: cfg.ExpertWeights,
	}
}

// score returns the block's quality. The default is the (optionally
// type-weighted) cluster Jaccard: weight of items shared by every member
// over weight of items held by any member. This score is set-monotonic:
// growing the cluster can only shrink it. The ExpertSim variant averages a
// soft Jaccard built on fsim over all member pairs, which is not
// set-monotonic (Section 6.5 discusses the consequences).
func (s *scorer) score(members []int) float64 {
	if len(members) < 2 {
		return 0
	}
	if s.useFsim {
		return s.softScore(members)
	}
	return s.clusterJaccard(members)
}

// jaccardScratch is one goroutine's merge buffers; scorers are shared
// across the block-building worker pool, so scratch rides a pool rather
// than the scorer.
type jaccardScratch struct {
	inter []int32
	union []int32
	next  []int32
}

var jaccardScratchPool = sync.Pool{New: func() any { return new(jaccardScratch) }}

// clusterJaccard computes the (optionally type-weighted) cluster Jaccard
// by k-way sorted merges: transactions are sorted, deduplicated int32
// arena slices (record.Dictionary.Encode sorts them), so the running
// intersection shrinks in place and the running union ping-pongs between
// two pooled buffers. Zero allocations at steady state — the alloc guard
// in block_test.go holds it there. Weights are summed in ascending
// item-id order, making weighted scores bit-reproducible across runs
// (the map-based predecessor summed in map-iteration order, which could
// flip enforceNG ties under ExpertWeights).
func (s *scorer) clusterJaccard(members []int) float64 {
	js := jaccardScratchPool.Get().(*jaccardScratch)
	first := s.txns.Txn(members[0])
	inter := append(js.inter[:0], first...)
	union := append(js.union[:0], first...)
	next := js.next[:0]
	for _, m := range members[1:] {
		txn := s.txns.Txn(m)
		inter = intersectSorted32(inter, txn)
		next = unionSorted32(next[:0], union, txn)
		union, next = next, union
	}
	var score float64
	if !s.weighted {
		if len(union) != 0 {
			score = float64(len(inter)) / float64(len(union))
		}
	} else {
		var wInter, wUnion float64
		for _, id := range inter {
			wInter += s.weight(int(id))
		}
		for _, id := range union {
			wUnion += s.weight(int(id))
		}
		if wUnion != 0 {
			score = wInter / wUnion
		}
	}
	js.inter, js.union, js.next = inter, union, next
	jaccardScratchPool.Put(js)
	return score
}

// intersectSorted32 intersects two ascending lists, writing the result
// into dst's prefix.
func intersectSorted32(dst, b []int32) []int32 {
	i, j, k := 0, 0, 0
	for i < len(dst) && j < len(b) {
		switch {
		case dst[i] == b[j]:
			dst[k] = dst[i]
			k++
			i++
			j++
		case dst[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst[:k]
}

// unionSorted32 merges two ascending duplicate-free lists into dst
// (cleared by the caller), keeping the result ascending and
// duplicate-free.
func unionSorted32(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		default:
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

func (s *scorer) weight(itemID int) float64 {
	if !s.weighted {
		return 1
	}
	return s.cfg.Weight(s.dict.TypeOf(itemID))
}

// softScore averages the pairwise soft Jaccard (greedy best-match under
// fsim) over all member pairs.
func (s *scorer) softScore(members []int) float64 {
	var sum float64
	n := 0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			sum += s.softJaccard(s.records[members[i]], s.records[members[j]])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// softCand is one cross-record item pair with a positive fsim.
type softCand struct {
	sim  float64
	i, j int32
}

// softScratch is one goroutine's softJaccard state: the candidate list
// and the used-item bitmasks.
type softScratch struct {
	cands []softCand
	usedA []uint64
	usedB []uint64
}

var softScratchPool = sync.Pool{New: func() any { return new(softScratch) }}

// softJaccard greedily matches items of equal type across two records by
// descending fsim and returns sum(sim) / (|a| + |b| - matched). The
// greedy order is one sort by (sim desc, i asc, j asc) followed by a
// used-bitmask scan — the same matching the quadratic
// rescan-and-remove predecessor produced (it scanned candidates in
// (i, j)-ascending order and took the first maximum), locked by the
// golden test in block_test.go.
func (s *scorer) softJaccard(a, b *record.Record) float64 {
	st := softScratchPool.Get().(*softScratch)
	cands := st.cands[:0]
	for i, ia := range a.Items {
		for j, ib := range b.Items {
			if ia.Type != ib.Type {
				continue
			}
			if sim := s.itemSim.Compare(ia, ib); sim > 0 {
				cands = append(cands, softCand{sim, int32(i), int32(j)})
			}
		}
	}
	slices.SortFunc(cands, func(x, y softCand) int {
		switch {
		case x.sim > y.sim:
			return -1
		case x.sim < y.sim:
			return 1
		}
		if x.i != y.i {
			return int(x.i - y.i)
		}
		return int(x.j - y.j)
	})
	usedA := clearedMask(st.usedA, len(a.Items))
	usedB := clearedMask(st.usedB, len(b.Items))
	var total float64
	matched := 0
	for _, c := range cands {
		if usedA[c.i>>6]&(1<<uint(c.i&63)) != 0 || usedB[c.j>>6]&(1<<uint(c.j&63)) != 0 {
			continue
		}
		usedA[c.i>>6] |= 1 << uint(c.i&63)
		usedB[c.j>>6] |= 1 << uint(c.j&63)
		total += c.sim
		matched++
	}
	st.cands, st.usedA, st.usedB = cands, usedA, usedB
	softScratchPool.Put(st)
	denom := float64(len(a.Items) + len(b.Items) - matched)
	if denom <= 0 {
		return 0
	}
	return total / denom
}

// clearedMask returns buf resized to cover n bits, zeroed.
func clearedMask(buf []uint64, n int) []uint64 {
	words := (n + 63) >> 6
	if cap(buf) < words {
		buf = make([]uint64, words)
		return buf
	}
	buf = buf[:words]
	for w := range buf {
		buf[w] = 0
	}
	return buf
}
