package mfiblocks

import (
	"repro/internal/fpgrowth"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Block is one soft cluster: the maximal frequent itemset that induced it,
// the records supporting it, and its score. Blocks may overlap.
type Block struct {
	// Key is the MFI (item ids into the run's dictionary) shared by all
	// member records — the automatically discovered blocking key.
	Key []int
	// Members are positional record indices into the collection.
	Members []int
	// Score is the block's quality under the configured scoring
	// function, in [0,1].
	Score float64
	// MinSup is the iteration (support level) that produced the block.
	MinSup int
}

// Size returns the number of member records.
func (b *Block) Size() int { return len(b.Members) }

// Pairs appends all member pairs (as collection indices) to dst.
func (b *Block) Pairs(dst [][2]int) [][2]int {
	for i := 0; i < len(b.Members); i++ {
		for j := i + 1; j < len(b.Members); j++ {
			dst = append(dst, [2]int{b.Members[i], b.Members[j]})
		}
	}
	return dst
}

// scorer computes block scores.
type scorer struct {
	cfg      *Config
	dict     *record.Dictionary
	txns     *fpgrowth.Transactions // per-record sorted item ids, arena form
	records  []*record.Record
	itemSim  similarity.ItemSim
	useFsim  bool
	weighted bool
}

func newScorer(cfg *Config, dict *record.Dictionary, txns *fpgrowth.Transactions, records []*record.Record) *scorer {
	return &scorer{
		cfg:      cfg,
		dict:     dict,
		txns:     txns,
		records:  records,
		itemSim:  similarity.ItemSim{Geo: cfg.Geo},
		useFsim:  cfg.ExpertSim,
		weighted: cfg.ExpertWeights,
	}
}

// score returns the block's quality. The default is the (optionally
// type-weighted) cluster Jaccard: weight of items shared by every member
// over weight of items held by any member. This score is set-monotonic:
// growing the cluster can only shrink it. The ExpertSim variant averages a
// soft Jaccard built on fsim over all member pairs, which is not
// set-monotonic (Section 6.5 discusses the consequences).
func (s *scorer) score(members []int) float64 {
	if len(members) < 2 {
		return 0
	}
	if s.useFsim {
		return s.softScore(members)
	}
	return s.clusterJaccard(members)
}

func (s *scorer) clusterJaccard(members []int) float64 {
	first := s.txns.Txn(members[0])
	inter := make(map[int]bool, len(first))
	union := make(map[int]bool, len(first))
	for _, id := range first {
		inter[int(id)] = true
		union[int(id)] = true
	}
	for _, m := range members[1:] {
		txn := s.txns.Txn(m)
		cur := make(map[int]bool, len(txn))
		for _, id := range txn {
			cur[int(id)] = true
			union[int(id)] = true
		}
		for id := range inter {
			if !cur[id] {
				delete(inter, id)
			}
		}
	}
	var wInter, wUnion float64
	for id := range inter {
		wInter += s.weight(id)
	}
	for id := range union {
		wUnion += s.weight(id)
	}
	if wUnion == 0 {
		return 0
	}
	return wInter / wUnion
}

func (s *scorer) weight(itemID int) float64 {
	if !s.weighted {
		return 1
	}
	return s.cfg.Weight(s.dict.TypeOf(itemID))
}

// softScore averages the pairwise soft Jaccard (greedy best-match under
// fsim) over all member pairs.
func (s *scorer) softScore(members []int) float64 {
	var sum float64
	n := 0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			sum += s.softJaccard(s.records[members[i]], s.records[members[j]])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// softJaccard greedily matches items of equal type across two records by
// descending fsim and returns sum(sim) / (|a| + |b| - matched).
func (s *scorer) softJaccard(a, b *record.Record) float64 {
	type cand struct {
		i, j int
		sim  float64
	}
	var cands []cand
	for i, ia := range a.Items {
		for j, ib := range b.Items {
			if ia.Type != ib.Type {
				continue
			}
			if sim := s.itemSim.Compare(ia, ib); sim > 0 {
				cands = append(cands, cand{i, j, sim})
			}
		}
	}
	// Greedy: repeatedly take the best remaining candidate.
	usedA := make(map[int]bool)
	usedB := make(map[int]bool)
	var total float64
	matched := 0
	for len(cands) > 0 {
		best := -1
		for k, c := range cands {
			if usedA[c.i] || usedB[c.j] {
				continue
			}
			if best < 0 || c.sim > cands[best].sim {
				best = k
			}
		}
		if best < 0 {
			break
		}
		c := cands[best]
		usedA[c.i] = true
		usedB[c.j] = true
		total += c.sim
		matched++
		cands = append(cands[:best], cands[best+1:]...)
	}
	denom := float64(len(a.Items) + len(b.Items) - matched)
	if denom <= 0 {
		return 0
	}
	return total / denom
}
