package mfiblocks

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/record"
)

// tieHeavyCollection builds groups of byte-identical records (distinct
// BookIDs only), so every block score collides with many others — the
// worst case for a tiebreak that stops at (score, size).
func tieHeavyCollection(t *testing.T) *record.Collection {
	t.Helper()
	var records []*record.Record
	id := int64(1)
	for group := 0; group < 12; group++ {
		first := fmt.Sprintf("Name%c", 'A'+group)
		last := fmt.Sprintf("Fam%c", 'A'+group%4)
		for dup := 0; dup < 5; dup++ {
			r := &record.Record{BookID: id, Source: "list-1", Kind: record.List}
			r.Add(record.FirstName, first)
			r.Add(record.LastName, last)
			r.Add(record.BirthYear, "1910")
			records = append(records, r)
			id++
		}
	}
	coll, err := record.NewCollection(records)
	if err != nil {
		t.Fatal(err)
	}
	return coll
}

// TestRunDeterministicUnderTies is the regression test for the
// enforceNG tiebreak: two runs over the same tie-heavy collection and
// config must produce identical Result.Pairs — the contract documented
// on the field and relied on by chunked downstream scoring.
func TestRunDeterministicUnderTies(t *testing.T) {
	coll := tieHeavyCollection(t)
	cfg := NewConfig()
	cfg.PruneFraction = 0 // keep every item: maximal block overlap

	first, err := Run(cfg, coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Pairs) == 0 {
		t.Fatal("tie-heavy collection produced no pairs")
	}
	for run := 0; run < 3; run++ {
		again, err := Run(cfg, coll)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Pairs, again.Pairs) {
			t.Fatalf("run %d: Pairs differ from first run\nfirst: %v\nagain: %v",
				run, first.Pairs, again.Pairs)
		}
		if !reflect.DeepEqual(first.PairScores, again.PairScores) {
			t.Fatalf("run %d: PairScores differ", run)
		}
	}
}

// TestEnforceNGOrderInvariant feeds the same tied blocks in shuffled
// orders: the total-order sort must admit an identical sequence every
// time, regardless of input permutation.
func TestEnforceNGOrderInvariant(t *testing.T) {
	cfg := NewConfig()
	cfg.NG = 1 // tight budget so admission order decides survival

	// Ten blocks tied on (score, size), distinguishable only by members
	// and key; overlapping membership makes the greedy budget contested.
	mkBlocks := func() []*Block {
		var blocks []*Block
		for i := 0; i < 10; i++ {
			blocks = append(blocks, &Block{
				Key:     []int{i, i + 100},
				Members: []int{i, i + 1, i + 2},
				Score:   0.75,
				MinSup:  3,
			})
		}
		return blocks
	}

	baseline := mkBlocks()
	spent := make([]int, 16)
	wantKept, wantTh, wantPruned := enforceNG(&cfg, baseline, spent)
	if len(wantKept) == 0 || wantPruned == 0 {
		t.Fatalf("fixture not contested: kept=%d pruned=%d", len(wantKept), wantPruned)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		blocks := mkBlocks()
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
		spent := make([]int, 16)
		kept, th, pruned := enforceNG(&cfg, blocks, spent)
		if th != wantTh || pruned != wantPruned || len(kept) != len(wantKept) {
			t.Fatalf("trial %d: (kept=%d th=%v pruned=%d), want (%d, %v, %d)",
				trial, len(kept), th, pruned, len(wantKept), wantTh, wantPruned)
		}
		for i := range kept {
			if !reflect.DeepEqual(kept[i].Key, wantKept[i].Key) {
				t.Fatalf("trial %d: kept[%d].Key = %v, want %v", trial, i, kept[i].Key, wantKept[i].Key)
			}
		}
	}
}
