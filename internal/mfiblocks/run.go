package mfiblocks

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fpgrowth"
	"repro/internal/record"
	"repro/internal/spill"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Result is the outcome of a run: the surviving soft blocks, the candidate
// pairs they induce (with each pair's best block score as its similarity),
// and coverage bookkeeping.
type Result struct {
	// Blocks are the surviving soft clusters across all iterations.
	Blocks []*Block
	// Pairs are the distinct candidate pairs, as BookID pairs, in
	// deterministic first-seen order: iterations run at decreasing
	// minsup, blocks within an iteration are admitted in descending
	// (score, -size) order, and a block enumerates its member pairs in
	// member-index order. Two runs over the same collection and config
	// produce the same slice — downstream scoring stages may chunk it
	// freely and merge by chunk index without changing the result.
	Pairs []record.Pair
	// PairScores maps each candidate pair to the best score among the
	// blocks containing it — the pair's blocking similarity.
	PairScores map[record.Pair]float64
	// PairBlocks maps each candidate pair to the indices (into Blocks)
	// of the blocks that produced it.
	PairBlocks map[record.Pair][]int
	// Covered marks, per collection index, whether the record appeared
	// in any accepted pair.
	Covered []bool
	// Iterations records per-minsup statistics.
	Iterations []IterationStats
	// Spill carries the disk-spillable candidate accumulator when
	// Config.SpillPairs enables spilling; Pairs, PairScores, and
	// PairBlocks are nil in that mode. Consumers call Spill.Iter() for
	// the merged stream — every distinct pair once, ascending by (A, B),
	// with its best block score — and own closing it.
	Spill *spill.Pairs
	// Cache holds the cross-iteration block cache's counters (all zero
	// when Config.BlockCache is 0). Cache state never changes Blocks,
	// Pairs, or any other field — only how much work materializing them
	// took.
	Cache BlockCacheStats
}

// IterationStats captures one minsup level of Algorithm 1.
type IterationStats struct {
	MinSup     int
	Active     int     // uncovered records the MFIs were mined over
	MFIs       int
	Blocks     int     // blocks surviving all filters
	CSPruned   int     // blocks dropped by the compact-set size cap
	NGPruned   int     // blocks vetoed by the sparse-neighborhood cap
	NewPairs   int     // pairs first seen this iteration
	CoveredNow int     // total records covered after the iteration
	MinTh      float64 // score threshold after NG enforcement
	Elapsed    time.Duration
}

// Run executes MFIBlocks over the collection. It is the batch entry
// point: the collection is encoded into a Corpus and handed to
// RunCorpus.
func Run(cfg Config, coll *record.Collection) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return RunCorpus(cfg, NewCorpus(coll))
}

// RunCorpus executes MFIBlocks over a pre-encoded corpus — the entry
// point streaming callers use after assembling the corpus incrementally.
// The corpus may omit raw records unless ExpertSim scoring needs their
// values.
func RunCorpus(cfg Config, corpus *Corpus) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := corpus.validate(); err != nil {
		return nil, err
	}
	if cfg.ExpertSim && corpus.Records == nil {
		return nil, fmt.Errorf("mfiblocks: ExpertSim requires corpus records")
	}
	reg := cfg.metrics()
	n := corpus.Len()
	dict := corpus.Dict
	txns := corpus.Txns
	miner := fpgrowth.NewMinerTxns(txns)
	miner.Metrics = reg
	miner.Workers = cfg.Workers
	miner.Shards = cfg.MineShards
	if cfg.PruneFraction > 0 {
		miner.Prune(dict.MostFrequent(cfg.PruneFraction))
	}
	index := miner.BuildIndex()
	sc := newScorer(&cfg, dict, txns, corpus.Records)
	cache := newBlockCache(cfg.BlockCache)

	res := &Result{Covered: make([]bool, n)}
	var sink *spill.Pairs
	var emit *spillEmitter
	if cfg.SpillPairs > 0 {
		sink = spill.NewPairs(cfg.SpillPairs, cfg.SpillDir)
		sink.Trace = cfg.Trace
		res.Spill = sink
		emit = startSpillEmitter(sink, corpus.BookIDs)
	} else {
		res.PairScores = make(map[record.Pair]float64)
		res.PairBlocks = make(map[record.Pair][]int)
	}
	minTh := cfg.MinScore
	coveredCount := 0
	// Comparison budgets are cumulative over the whole run: NG bounds the
	// total comparisons a record may participate in. Keyed by the dense
	// collection index, so a flat slice beats a map on this hot path.
	spent := make([]int, n)
	// Item frequencies over the still-uncovered records, maintained
	// decrementally as records become covered: each minsup iteration hands
	// the miner ready-made counts instead of recounting every item of
	// every active transaction.
	freq := make([]int, dict.Len())
	for i := 0; i < n; i++ {
		for _, it := range txns.Txn(i) {
			freq[it]++
		}
	}

	cfg.Progress.Stage("blocking", int64(n))
	cfg.Progress.Add(int64(coveredCount))
	for minsup := cfg.MaxMinSup; minsup >= 2 && coveredCount < n; minsup-- {
		iterStart := time.Now()
		iterSpan := cfg.Trace.Child("iteration", trace.WithKind(trace.KindIteration)).
			Attr("minsup", int64(minsup))
		// MFIs are mined over the still-uncovered records (Algorithm 1,
		// line 6), but FindSupport materializes each block over the whole
		// database: a covered record may still join a new block — only
		// the search for new keys narrows as coverage grows.
		active := make([]int, 0, n-coveredCount)
		for i := 0; i < n; i++ {
			if !res.Covered[i] {
				active = append(active, i)
			}
		}

		miner.Trace = iterSpan
		mfis := miner.MineMaximalFreq(minsup, active, freq)
		blocks, csPruned := buildBlocksSharded(&cfg, sc, index, cache, mfis, minsup, reg, iterSpan)

		// Enforce the sparse-neighborhood condition for this iteration:
		// every record admits blocks best-first while its distinct
		// neighborhood stays within NG times the a-priori duplicate
		// estimate (MaxMinSup); a block any member vetoes is pruned.
		kept, iterTh, ngPruned := enforceNG(&cfg, blocks, spent)
		minTh = math.Max(minTh, iterTh)

		prevCovered := coveredCount
		stats := IterationStats{MinSup: minsup, Active: len(active), MFIs: len(mfis), MinTh: iterTh, CSPruned: csPruned, NGPruned: ngPruned}
		for _, b := range kept {
			stats.Blocks++
			bi := len(res.Blocks)
			res.Blocks = append(res.Blocks, b)
			if sink == nil {
				for i := 0; i < len(b.Members); i++ {
					for j := i + 1; j < len(b.Members); j++ {
						p := record.MakePair(corpus.BookIDs[b.Members[i]], corpus.BookIDs[b.Members[j]])
						if _, seen := res.PairScores[p]; !seen {
							res.Pairs = append(res.Pairs, p)
							stats.NewPairs++
						}
						if b.Score > res.PairScores[p] {
							res.PairScores[p] = b.Score
						}
						res.PairBlocks[p] = append(res.PairBlocks[p], bi)
					}
				}
			}
			// Every member of a kept block (size >= 2) joins at least one
			// pair, so covering members directly is equivalent to the
			// per-pair updates — and keeps coverage synchronous while the
			// spill emitter writes pairs in the background.
			for _, m := range b.Members {
				if !res.Covered[m] {
					res.Covered[m] = true
					coveredCount++
					// The record leaves the active set: retire its
					// items from the incremental frequencies.
					for _, it := range txns.Txn(m) {
						freq[it]--
					}
				}
			}
		}
		if emit != nil {
			// Hand the iteration's kept blocks (immutable from here on) to
			// the emitter: sink.Add calls happen in exactly the order the
			// synchronous path used — batches in iteration order, blocks in
			// kept order, pairs in member order — so the spilled stream is
			// bit-identical while the next iteration's mining overlaps the
			// disk writes. NewPairs is backfilled after the drain.
			emit.send(len(res.Iterations), kept)
		}
		stats.CoveredNow = coveredCount
		stats.Elapsed = time.Since(iterStart)
		res.Iterations = append(res.Iterations, stats)
		cfg.Progress.Add(int64(coveredCount - prevCovered))
		iterSpan.Attr("active", int64(stats.Active)).
			Attr("mfis", int64(stats.MFIs)).
			Attr("blocks", int64(stats.Blocks))
		if sink == nil {
			// In spill mode pair emission outlives the iteration span (the
			// async emitter may still be writing when it ends), and a span
			// cannot take attrs after End — so the attr is in-memory only.
			iterSpan.Attr("new_pairs", int64(stats.NewPairs))
		}
		iterSpan.Attr("cs_pruned", int64(stats.CSPruned)).
			Attr("ng_pruned", int64(stats.NGPruned)).
			End()

		reg.Counter("mfiblocks_iterations_total").Inc()
		reg.Counter("mfiblocks_mfis_total").Add(int64(stats.MFIs))
		reg.Counter("mfiblocks_blocks_total").Add(int64(stats.Blocks))
		reg.Counter("mfiblocks_pairs_total").Add(int64(stats.NewPairs))
		reg.Counter("mfiblocks_cs_pruned_total").Add(int64(stats.CSPruned))
		reg.Counter("mfiblocks_ng_pruned_total").Add(int64(stats.NGPruned))
		reg.Gauge("mfiblocks_covered_records").Set(float64(coveredCount))
		reg.Timer("mfiblocks_iteration_seconds").Observe(stats.Elapsed)
		telemetry.Log().Debug("mfiblocks iteration",
			"minsup", minsup, "mfis", stats.MFIs, "blocks", stats.Blocks,
			"cs_pruned", stats.CSPruned, "ng_pruned", stats.NGPruned,
			"new_pairs", stats.NewPairs, "covered", coveredCount, "of", n,
			"min_th", iterTh, "elapsed", stats.Elapsed)
		if emit != nil && emit.failed.Load() {
			break // stop mining; wait() below surfaces the write error
		}
	}
	if emit != nil {
		if err := emit.wait(); err != nil {
			sink.Close()
			return nil, err
		}
		// The emitter owned the first-seen accounting; fold it back into
		// the per-iteration stats and the pair counter now that every
		// sink.Add has happened.
		for i, np := range emit.newPairs {
			res.Iterations[i].NewPairs = np
			reg.Counter("mfiblocks_pairs_total").Add(int64(np))
		}
	}
	if cache != nil {
		res.Cache = cache.Stats()
		reg.Counter("mfiblocks_block_cache_hits_total").Add(res.Cache.Hits)
		reg.Counter("mfiblocks_block_cache_misses_total").Add(res.Cache.Misses)
		reg.Counter("mfiblocks_block_cache_evictions_total").Add(res.Cache.Evictions)
	}
	return res, nil
}

// emitBatch is one iteration's kept blocks queued for spill emission.
type emitBatch struct {
	iter   int // index of the iteration, for NewPairs backfill
	blocks []*Block
}

// spillEmitter overlaps candidate-pair emission with block discovery in
// spill mode: the main loop hands each iteration's kept blocks over a
// small bounded channel and immediately mines the next minsup level
// while this goroutine enumerates member pairs and appends them to the
// spill sink. A single consumer preserving batch order keeps the
// sink.Add sequence — and therefore the spilled runs and every
// first-seen bit — identical to the synchronous path's.
type spillEmitter struct {
	sink    *spill.Pairs
	bookIDs []int64
	ch      chan emitBatch
	done    chan struct{}
	failed  atomic.Bool
	// err and newPairs are written only by the emitter goroutine and read
	// by the producer only after done closes (wait), so the channel close
	// orders every access.
	err      error
	newPairs []int // first-seen pairs per iteration, indexed by emitBatch.iter
}

func startSpillEmitter(sink *spill.Pairs, bookIDs []int64) *spillEmitter {
	e := &spillEmitter{
		sink:    sink,
		bookIDs: bookIDs,
		// Capacity 2 bounds the overlap window: at most the current
		// iteration's blocks plus two queued batches are retained, so the
		// emitter never lets block memory grow with the iteration count.
		ch:   make(chan emitBatch, 2),
		done: make(chan struct{}),
	}
	go e.run()
	return e
}

func (e *spillEmitter) run() {
	defer close(e.done)
	for batch := range e.ch {
		if e.err != nil {
			continue // keep draining so send never blocks after a failure
		}
		first := 0
		for _, b := range batch.blocks {
			for i := 0; i < len(b.Members) && e.err == nil; i++ {
				for j := i + 1; j < len(b.Members); j++ {
					p := record.MakePair(e.bookIDs[b.Members[i]], e.bookIDs[b.Members[j]])
					isFirst, err := e.sink.Add(p, b.Score)
					if err != nil {
						e.err = err
						e.failed.Store(true)
						break
					}
					if isFirst {
						first++
					}
				}
			}
			if e.err != nil {
				break
			}
		}
		for len(e.newPairs) <= batch.iter {
			e.newPairs = append(e.newPairs, 0)
		}
		e.newPairs[batch.iter] = first
	}
}

// send queues one iteration's kept blocks; it blocks when the emitter is
// more than two iterations behind. The blocks must not be mutated after
// the call (the run never does — kept blocks are final once enforceNG
// returns).
func (e *spillEmitter) send(iter int, blocks []*Block) {
	e.ch <- emitBatch{iter: iter, blocks: blocks}
}

// wait closes the queue, drains the emitter, and returns its first
// write error (nil on success). newPairs is complete once wait returns.
func (e *spillEmitter) wait() error {
	close(e.ch)
	<-e.done
	return e.err
}

// materializeRange materializes, caps, and scores mfis[lo:hi] into
// out[lo:hi] — the inner loop both the unsharded pool and the parallel
// shard scheduler share. scratch is the calling goroutine's reusable
// SupportSet buffer: supports materialize into it allocation-free, and
// only admitted blocks copy out an exact-size member slice, so the
// pruned giants that used to spike RSS never allocate at all. Returns
// the compact-set prune count for the range.
//
// The cache path is exact, not approximate: every block is materialized
// over the whole database (the SupportSet contract), so a key's members
// and score are invariants across iterations, while everything
// minsup-dependent — the mined-support pre-filter, the < 2 floor, and
// the compact-set cap — is re-checked here on every hit. A nil cache
// disables memoization with no other change.
func materializeRange(sc *scorer, index *fpgrowth.Index, cache *blockCache, mfis []fpgrowth.Itemset, lo, hi, minsup, maxSize int, out []*Block, scratch *[]int) int64 {
	pruned := int64(0)
	buf := *scratch
	for k := lo; k < hi; k++ {
		// Mining runs over the still-active subset, so the mined
		// support lower-bounds the whole-DB support the cap is
		// checked against: Support > maxSize already implies the
		// materialized set would be pruned.
		if mfis[k].Support > maxSize {
			pruned++
			continue
		}
		if members, score, ok := cache.get(mfis[k].Items); ok {
			if len(members) < 2 {
				continue
			}
			if len(members) > maxSize {
				pruned++
				continue
			}
			out[k] = &Block{Key: mfis[k].Items, Members: members, Score: score, MinSup: minsup}
			continue
		}
		buf = index.AppendSupportSet(mfis[k].Items, buf[:0])
		if len(buf) < 2 {
			continue
		}
		if len(buf) > maxSize {
			pruned++
			continue
		}
		members := make([]int, len(buf))
		copy(members, buf)
		score := sc.score(members)
		cache.put(mfis[k].Items, members, score)
		out[k] = &Block{Key: mfis[k].Items, Members: members, Score: score, MinSup: minsup}
	}
	*scratch = buf
	return pruned
}

// buildBlocks materializes and scores the MFI supports in parallel,
// dropping blocks that are too small (<2) or exceed the compact-set
// cap. It also reports how many blocks the compact-set cap pruned.
// Every block is materialized over the whole database (the SupportSet
// contract): coverage never masks a record out of a new block.
func buildBlocks(cfg *Config, sc *scorer, index *fpgrowth.Index, cache *blockCache, mfis []fpgrowth.Itemset, minsup int) ([]*Block, int) {
	maxSize := int(float64(minsup) * cfg.P)
	out := make([]*Block, len(mfis))
	var csPruned atomic.Int64
	var wg sync.WaitGroup
	workers := cfg.workers()
	chunk := (len(mfis) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(mfis); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(mfis) {
			hi = len(mfis)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var scratch []int
			csPruned.Add(materializeRange(sc, index, cache, mfis, lo, hi, minsup, maxSize, out, &scratch))
		}(lo, hi)
	}
	wg.Wait()
	blocks := out[:0]
	for _, b := range out {
		if b != nil {
			blocks = append(blocks, b)
		}
	}
	return blocks, int(csPruned.Load())
}

// shardOf assigns an MFI key to one of shards partitions by FNV-1a over
// its item ids. The hash depends only on the key's content, so a block
// lands in the same shard in every run and for every worker count.
func shardOf(key []int, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, it := range key {
		v := uint64(it)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xFF
			h *= prime64
		}
	}
	return int(h % uint64(shards))
}

// buildBlocksSharded partitions one iteration's MFIs into signature
// shards and materializes all shards concurrently under one bounded
// worker budget (cfg.workers() goroutines total — shards no longer run
// sequentially, each spinning its own pool). Each shard still fills its
// own deterministic output slot array and per-shard wall clock is still
// recorded (as completion latency, since shards now overlap). Mining is
// global, so each MFI's support set — and therefore its block — is
// identical to the unsharded run's; the merge is plain concatenation in
// shard order because enforceNG re-sorts every iteration's blocks under
// a total order, making the downstream outcome independent of block
// arrival order. Shards <= 1 takes the direct path.
func buildBlocksSharded(cfg *Config, sc *scorer, index *fpgrowth.Index, cache *blockCache, mfis []fpgrowth.Itemset, minsup int, reg *telemetry.Registry, parent *trace.Span) ([]*Block, int) {
	// The build_blocks op span exists for every shard count (shard spans
	// nest under it): Canonical trees prune the KindShard children, so a
	// sharded and an unsharded run canonicalize identically. The cache
	// attrs are volatile — hit counts vary across cache sizes and with
	// eviction timing, so Canonical drops them too.
	bsp := parent.Child("build_blocks", trace.WithKind(trace.KindOp)).
		Attr("mfis", int64(len(mfis)))
	var hits0, misses0 int64
	if cache != nil {
		st := cache.Stats()
		hits0, misses0 = st.Hits, st.Misses
	}
	finish := func(blocks []*Block) {
		if cache != nil {
			st := cache.Stats()
			bsp.VolatileAttr("cache_hits", st.Hits-hits0).
				VolatileAttr("cache_misses", st.Misses-misses0)
		}
		bsp.Attr("blocks", int64(len(blocks))).End()
	}
	if cfg.Shards <= 1 {
		blocks, csPruned := buildBlocks(cfg, sc, index, cache, mfis, minsup)
		finish(blocks)
		return blocks, csPruned
	}
	parts := make([][]fpgrowth.Itemset, cfg.Shards)
	for _, m := range mfis {
		s := shardOf(m.Items, cfg.Shards)
		parts[s] = append(parts[s], m)
	}

	maxSize := int(float64(minsup) * cfg.P)
	workers := cfg.workers()
	// Per-shard state: a deterministic output slot array, the shard's
	// remaining chunk count, and its span/clock. Shard spans are created
	// upfront in shard order so the Full tree's sibling order stays
	// deterministic; the worker finishing a shard's last chunk closes its
	// span and observes its timer.
	type shardState struct {
		out     []*Block
		pruned  atomic.Int64
		pending atomic.Int32
		span    *trace.Span
		start   time.Time
	}
	type chunkTask struct {
		shard, lo, hi int
	}
	states := make([]*shardState, len(parts))
	var tasks []chunkTask
	doneShards := 0
	for si, part := range parts {
		if len(part) == 0 {
			doneShards++
			continue
		}
		st := &shardState{
			out:   make([]*Block, len(part)),
			start: time.Now(),
			span: bsp.Child("shard", trace.WithKind(trace.KindShard)).
				Attr("shard", int64(si)).
				Attr("mfis", int64(len(part))),
		}
		chunk := (len(part) + workers - 1) / workers
		nchunks := 0
		for lo := 0; lo < len(part); lo += chunk {
			hi := lo + chunk
			if hi > len(part) {
				hi = len(part)
			}
			tasks = append(tasks, chunkTask{si, lo, hi})
			nchunks++
		}
		st.pending.Store(int32(nchunks))
		states[si] = st
	}
	cfg.Progress.Shards(doneShards, len(parts))

	var shardsDone atomic.Int32
	shardsDone.Store(int32(doneShards))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []int
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				st := states[t.shard]
				st.pruned.Add(materializeRange(sc, index, cache, parts[t.shard], t.lo, t.hi, minsup, maxSize, st.out, &scratch))
				if st.pending.Add(-1) == 0 {
					// Last chunk of the shard: the decrement chain orders
					// every chunk's slot writes before this read.
					nblocks := 0
					for _, b := range st.out {
						if b != nil {
							nblocks++
						}
					}
					st.span.Attr("blocks", int64(nblocks)).End()
					reg.Timer("mfiblocks_shard_seconds", telemetry.L("shard", strconv.Itoa(t.shard))).Observe(time.Since(st.start))
					cfg.Progress.Shards(int(shardsDone.Add(1)), len(parts))
				}
			}
		}()
	}
	wg.Wait()

	var blocks []*Block
	csPruned := 0
	for _, st := range states {
		if st == nil {
			continue
		}
		for _, b := range st.out {
			if b != nil {
				blocks = append(blocks, b)
			}
		}
		csPruned += int(st.pruned.Load())
	}
	finish(blocks)
	return blocks, csPruned
}

// enforceNG applies the sparse-neighborhood condition: blocks are
// processed globally in descending score order; each record admits a block
// only while its distinct neighborhood (records sharing an admitted block
// with it) stays within NG*MaxMinSup, and a block vetoed by any member is
// pruned. It also drops blocks scoring at or below MinScore. It returns
// the surviving blocks (descending score), the lowest surviving score
// (the effective iteration threshold), and the number of blocks the
// neighborhood cap vetoed. spent is indexed by dense record index and
// sized to the collection.
//
// The admission order is a total order — (score desc, size asc, members
// lex asc, key lex asc) — so the outcome is independent of the incoming
// block order and of sort.Slice's unspecified handling of ties. A
// (score, size)-only tiebreak would let tied blocks land in either order
// and, through the greedy budget, change which pairs Result.Pairs emits
// — violating the documented determinism downstream chunked scoring
// relies on.
func enforceNG(cfg *Config, blocks []*Block, spent []int) (kept []*Block, minTh float64, ngPruned int) {
	limit := int(math.Ceil(cfg.NG * float64(cfg.MaxMinSup)))
	if limit < 1 {
		limit = 1
	}
	ordered := make([]*Block, len(blocks))
	copy(ordered, blocks)
	sort.Slice(ordered, func(i, j int) bool {
		bi, bj := ordered[i], ordered[j]
		if bi.Score != bj.Score {
			return bi.Score > bj.Score
		}
		if bi.Size() != bj.Size() {
			return bi.Size() < bj.Size()
		}
		// Members are ascending collection indices, so lexicographic
		// comparison is deterministic; distinct MFIs give distinct keys,
		// making the order total even for identical support sets.
		if c := slices.Compare(bi.Members, bj.Members); c != 0 {
			return c < 0
		}
		return slices.Compare(bi.Key, bj.Key) < 0
	})
	minTh = cfg.MinScore
	for _, b := range ordered {
		if b.Score <= cfg.MinScore {
			break // ordered by score: everything after is below too
		}
		cost := b.Size() - 1
		veto := false
		for _, m := range b.Members {
			if spent[m]+cost > limit {
				veto = true
				break
			}
		}
		if veto {
			ngPruned++
			continue
		}
		for _, m := range b.Members {
			spent[m] += cost
		}
		kept = append(kept, b)
		minTh = b.Score
	}
	return kept, minTh, ngPruned
}
