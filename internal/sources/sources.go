// Package sources exploits knowledge about record sources — the paper's
// first open question ("How can we exploit implicit and explicit
// knowledge about record sources in the multi-source setting?"). It
// provides two tools:
//
//   - Submitter entity resolution: the Names Project identifies testimony
//     submitters only by first name, last name, and city, yielding 514,251
//     nominally distinct submitters with obvious duplicates (misspellings,
//     nicknames, transliterations). DedupSubmitters clusters them.
//
//   - Source profiling: per source (victim list or resolved submitter),
//     volume, field richness, and an agreement-based reliability score
//     computed from how often the source's records agree with matched
//     records from other sources.
package sources

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/names"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Submitter is one parsed testimony submitter identity.
type Submitter struct {
	// Key is the raw source string ("submitter:First Last:City").
	Key string
	// First, Last, City are the parsed identity parts.
	First, Last, City string
	// Records counts the reports filed under this key.
	Records int
}

// ParseSubmitter parses a testimony source key. ok is false for list
// sources or malformed keys.
func ParseSubmitter(source string) (Submitter, bool) {
	const prefix = "submitter:"
	if !strings.HasPrefix(source, prefix) {
		return Submitter{}, false
	}
	rest := source[len(prefix):]
	i := strings.LastIndexByte(rest, ':')
	if i < 0 {
		return Submitter{}, false
	}
	name, city := rest[:i], rest[i+1:]
	first, last := name, ""
	if j := strings.IndexByte(name, ' '); j >= 0 {
		first, last = name[:j], name[j+1:]
	}
	return Submitter{Key: source, First: first, Last: last, City: city}, true
}

// DedupConfig tunes submitter resolution.
type DedupConfig struct {
	// NameThreshold is the minimal Jaro-Winkler similarity between full
	// names for two submitters to merge (first names are additionally
	// folded through the nickname classes). Default 0.92.
	NameThreshold float64
	// SameCity requires matching cities; when false, city similarity is
	// folded into the name comparison. Default true.
	SameCity bool
}

// NewDedupConfig returns the defaults.
func NewDedupConfig() DedupConfig {
	return DedupConfig{NameThreshold: 0.92, SameCity: true}
}

// SubmitterCluster is one resolved submitter: the member keys and a
// canonical representative (the member with the most records).
type SubmitterCluster struct {
	Canonical Submitter
	Members   []Submitter
	// Records is the total report count across members.
	Records int
}

// DedupSubmitters parses every testimony source in the collection and
// clusters duplicate submitter identities. List sources are ignored.
func DedupSubmitters(cfg DedupConfig, coll *record.Collection) []SubmitterCluster {
	if cfg.NameThreshold == 0 {
		cfg.NameThreshold = 0.92
	}
	// Gather distinct submitters with record counts.
	byKey := make(map[string]*Submitter)
	var order []string
	for _, r := range coll.Records {
		s, ok := ParseSubmitter(r.Source)
		if !ok {
			continue
		}
		if existing, dup := byKey[s.Key]; dup {
			existing.Records++
			continue
		}
		s.Records = 1
		byKey[s.Key] = &s
		order = append(order, s.Key)
	}
	sort.Strings(order)

	// Block by (city, folded-first-name initial + last-name initial):
	// submitters in different cities never merge under SameCity.
	type blockKey struct {
		city    string
		initial string
	}
	blocks := make(map[blockKey][]*Submitter)
	for _, k := range order {
		s := byKey[k]
		bk := blockKey{initial: initials(s)}
		if cfg.SameCity {
			bk.city = strings.ToLower(s.City)
		}
		blocks[bk] = append(blocks[bk], s)
	}

	// Union-find over pairwise comparisons within blocks.
	parent := make(map[string]string, len(byKey))
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, members := range blocks {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if sameSubmitter(cfg, members[i], members[j]) {
					union(members[i].Key, members[j].Key)
				}
			}
		}
	}

	groups := make(map[string][]*Submitter)
	for _, k := range order {
		root := find(k)
		groups[root] = append(groups[root], byKey[k])
	}
	roots := make([]string, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)

	out := make([]SubmitterCluster, 0, len(groups))
	for _, root := range roots {
		members := groups[root]
		cl := SubmitterCluster{}
		for _, m := range members {
			cl.Members = append(cl.Members, *m)
			cl.Records += m.Records
			if m.Records > cl.Canonical.Records ||
				(m.Records == cl.Canonical.Records && m.Key < cl.Canonical.Key) {
				cl.Canonical = *m
			}
		}
		out = append(out, cl)
	}
	return out
}

func initials(s *Submitter) string {
	first := names.Canonical(s.First)
	f, l := "", ""
	if first != "" {
		f = strings.ToLower(first[:1])
	}
	if s.Last != "" {
		l = strings.ToLower(s.Last[:1])
	}
	return f + l
}

func sameSubmitter(cfg DedupConfig, a, b *Submitter) bool {
	if cfg.SameCity && !strings.EqualFold(a.City, b.City) {
		return false
	}
	// First names fold through equivalence classes.
	firstA, firstB := names.Canonical(a.First), names.Canonical(b.First)
	firstSim := similarity.JaroWinkler(strings.ToLower(firstA), strings.ToLower(firstB))
	lastSim := similarity.JaroWinkler(strings.ToLower(a.Last), strings.ToLower(b.Last))
	if names.SameClass(a.First, b.First) {
		firstSim = 1
	}
	return (firstSim+lastSim)/2 >= cfg.NameThreshold
}

// CanonicalSourceMap returns the source-key rewriting implied by the
// clusters: every member key maps to its cluster's canonical key. List
// sources map to themselves implicitly (absent from the map).
func CanonicalSourceMap(clusters []SubmitterCluster) map[string]string {
	m := make(map[string]string)
	for _, cl := range clusters {
		for _, member := range cl.Members {
			m[member.Key] = cl.Canonical.Key
		}
	}
	return m
}

// Rewrite returns a copy of the collection with submitter sources folded
// to their canonical keys — strengthening the SameSrc filter and the
// sameSource feature exactly as resolving the 514k submitters would.
func Rewrite(coll *record.Collection, canon map[string]string) (*record.Collection, error) {
	recs := make([]*record.Record, coll.Len())
	for i, r := range coll.Records {
		cp := r.Clone()
		if c, ok := canon[cp.Source]; ok {
			cp.Source = c
		}
		recs[i] = cp
	}
	return record.NewCollection(recs)
}

// Profile describes one source's behaviour.
type Profile struct {
	// Source is the (canonical) source key.
	Source string
	Kind   record.SourceKind
	// Records filed by the source.
	Records int
	// MeanFields is the average number of distinct item types per record.
	MeanFields float64
	// Agreements and Disagreements count attribute comparisons between
	// this source's records and their matched partners from other
	// sources.
	Agreements, Disagreements int
	// Reliability is Agreements/(Agreements+Disagreements) with a
	// Laplace prior of one agreement and one disagreement.
	Reliability float64
}

// ProfileSources computes per-source profiles given accepted match pairs
// (e.g. a resolution's output or the gold standard).
func ProfileSources(coll *record.Collection, matches []record.Pair) []Profile {
	stats := make(map[string]*Profile)
	ensure := func(r *record.Record) *Profile {
		p, ok := stats[r.Source]
		if !ok {
			p = &Profile{Source: r.Source, Kind: r.Kind}
			stats[r.Source] = p
		}
		return p
	}
	for _, r := range coll.Records {
		p := ensure(r)
		p.Records++
		p.MeanFields += float64(r.Pattern().Size())
	}
	for _, m := range matches {
		a, b := coll.ByID(m.A), coll.ByID(m.B)
		if a == nil || b == nil || a.Source == b.Source {
			continue
		}
		agree, disagree := compareAttributes(a, b)
		for _, r := range []*record.Record{a, b} {
			p := ensure(r)
			p.Agreements += agree
			p.Disagreements += disagree
		}
	}
	out := make([]Profile, 0, len(stats))
	for _, p := range stats {
		if p.Records > 0 {
			p.MeanFields /= float64(p.Records)
		}
		p.Reliability = float64(p.Agreements+1) / float64(p.Agreements+p.Disagreements+2)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Records != out[j].Records {
			return out[i].Records > out[j].Records
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// compareAttributes counts agreeing and disagreeing shared attributes.
func compareAttributes(a, b *record.Record) (agree, disagree int) {
	pa, pb := a.Pattern(), b.Pattern()
	for t := 0; t < record.NumItemTypes; t++ {
		ty := record.ItemType(t)
		if !pa.Has(ty) || !pb.Has(ty) {
			continue
		}
		va, _ := a.First(ty)
		vb, _ := b.First(ty)
		if strings.EqualFold(va, vb) {
			agree++
		} else {
			disagree++
		}
	}
	return agree, disagree
}

// String renders a profile row.
func (p Profile) String() string {
	return fmt.Sprintf("%-40s %-9s records=%d fields=%.1f reliability=%.2f",
		p.Source, p.Kind, p.Records, p.MeanFields, p.Reliability)
}
