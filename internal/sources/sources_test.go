package sources

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/record"
)

func TestParseSubmitter(t *testing.T) {
	s, ok := ParseSubmitter("submitter:Rachele Colombo:Torino")
	if !ok {
		t.Fatal("parse failed")
	}
	if s.First != "Rachele" || s.Last != "Colombo" || s.City != "Torino" {
		t.Errorf("parsed %+v", s)
	}
	if _, ok := ParseSubmitter("list:Italy-0001"); ok {
		t.Error("list source parsed as submitter")
	}
	if _, ok := ParseSubmitter("submitter:no-city"); ok {
		t.Error("malformed key parsed")
	}
	// Single-token names keep last empty.
	s, ok = ParseSubmitter("submitter:Mononym:Roma")
	if !ok || s.First != "Mononym" || s.Last != "" {
		t.Errorf("mononym parsed %+v (%v)", s, ok)
	}
}

func collOf(t *testing.T, sources ...string) *record.Collection {
	t.Helper()
	recs := make([]*record.Record, len(sources))
	for i, src := range sources {
		kind := record.Testimony
		if strings.HasPrefix(src, "list:") {
			kind = record.List
		}
		recs[i] = &record.Record{BookID: int64(i + 1), Source: src, Kind: kind}
	}
	c, err := record.NewCollection(recs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDedupMergesVariantsAndTypos(t *testing.T) {
	coll := collOf(t,
		"submitter:Rachele Colombo:Torino",
		"submitter:Rachele Colombo:Torino",  // same key twice
		"submitter:Rachele Colombbo:Torino", // typo
		"submitter:Isak Levi:Torino",
		"submitter:Yitzhak Levi:Torino", // nickname class
		"submitter:Isak Levi:Roma",      // different city: stays apart
		"list:Italy-0001",
	)
	clusters := DedupSubmitters(NewDedupConfig(), coll)

	byCanon := map[string]SubmitterCluster{}
	for _, cl := range clusters {
		byCanon[cl.Canonical.Key] = cl
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters: %+v", len(clusters), clusters)
	}
	// Rachele cluster holds the typo and 3 records total.
	rachele, ok := byCanon["submitter:Rachele Colombo:Torino"]
	if !ok {
		t.Fatalf("missing Rachele cluster: %+v", byCanon)
	}
	if len(rachele.Members) != 2 || rachele.Records != 3 {
		t.Errorf("Rachele cluster = %+v", rachele)
	}
	// Isak Torino merged with Yitzhak Torino but not with Roma.
	foundTorinoLevi := false
	for _, cl := range clusters {
		keys := map[string]bool{}
		for _, m := range cl.Members {
			keys[m.Key] = true
		}
		if keys["submitter:Isak Levi:Torino"] {
			foundTorinoLevi = true
			if !keys["submitter:Yitzhak Levi:Torino"] {
				t.Error("nickname-class submitters not merged")
			}
			if keys["submitter:Isak Levi:Roma"] {
				t.Error("different-city submitters merged under SameCity")
			}
		}
	}
	if !foundTorinoLevi {
		t.Fatal("Levi cluster missing")
	}
}

func TestCanonicalMapAndRewrite(t *testing.T) {
	coll := collOf(t,
		"submitter:Isak Levi:Torino",
		"submitter:Yitzhak Levi:Torino",
		"list:Italy-0001",
	)
	clusters := DedupSubmitters(NewDedupConfig(), coll)
	canon := CanonicalSourceMap(clusters)
	if len(canon) != 2 {
		t.Fatalf("canon map = %v", canon)
	}
	rw, err := Rewrite(coll, canon)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Records[0].Source != rw.Records[1].Source {
		t.Error("rewrite did not unify the merged submitters")
	}
	if rw.Records[2].Source != "list:Italy-0001" {
		t.Error("list source mutated")
	}
	// Original untouched.
	if coll.Records[0].Source == coll.Records[1].Source {
		t.Error("Rewrite mutated the input collection")
	}
}

func TestDedupOnGeneratedDataset(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 400
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := DedupSubmitters(NewDedupConfig(), g.Collection)
	if len(clusters) == 0 {
		t.Fatal("no submitter clusters")
	}
	distinct := map[string]bool{}
	total := 0
	for _, r := range g.Collection.Records {
		if _, ok := ParseSubmitter(r.Source); ok {
			distinct[r.Source] = true
			total++
		}
	}
	if len(clusters) > len(distinct) {
		t.Errorf("more clusters (%d) than distinct submitters (%d)", len(clusters), len(distinct))
	}
	sum := 0
	for _, cl := range clusters {
		sum += cl.Records
	}
	if sum != total {
		t.Errorf("cluster record counts sum to %d, want %d", sum, total)
	}
}

func TestProfileSources(t *testing.T) {
	mk := func(id int64, src string, kind record.SourceKind, year string) *record.Record {
		r := &record.Record{BookID: id, Source: src, Kind: kind}
		r.Add(record.FirstName, "Guido")
		r.Add(record.BirthYear, year)
		return r
	}
	coll, err := record.NewCollection([]*record.Record{
		mk(1, "list:a", record.List, "1920"),
		mk(2, "list:b", record.List, "1920"), // agrees with 1
		mk(3, "list:c", record.List, "1999"), // disagrees on year
		mk(4, "submitter:X Y:Z", record.Testimony, "1920"),
	})
	if err != nil {
		t.Fatal(err)
	}
	matches := []record.Pair{
		record.MakePair(1, 2),
		record.MakePair(1, 3),
		record.MakePair(2, 2), // degenerate, ignored via same source
	}
	profiles := ProfileSources(coll, matches)
	byKey := map[string]Profile{}
	for _, p := range profiles {
		byKey[p.Source] = p
	}
	if len(profiles) != 4 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	a, b, c := byKey["list:a"], byKey["list:b"], byKey["list:c"]
	if a.Records != 1 || a.MeanFields != 2 {
		t.Errorf("list:a profile = %+v", a)
	}
	if b.Reliability <= c.Reliability {
		t.Errorf("agreeing source (%v) must out-rank disagreeing (%v)", b.Reliability, c.Reliability)
	}
	// No matches at all: Laplace prior gives 0.5.
	if p := byKey["submitter:X Y:Z"]; p.Reliability != 0.5 {
		t.Errorf("unmatched source reliability = %v", p.Reliability)
	}
}

func TestProfileStringRenders(t *testing.T) {
	p := Profile{Source: "list:a", Kind: record.List, Records: 3, MeanFields: 4.5, Reliability: 0.8}
	s := p.String()
	if !strings.Contains(s, "list:a") || !strings.Contains(s, "0.80") {
		t.Errorf("render = %q", s)
	}
}
