package family

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mfiblocks"
	"repro/internal/record"
)

// ent builds a hand-made entity from typed values.
func ent(vals map[record.ItemType][]string) *core.Entity {
	e := &core.Entity{Values: map[record.ItemType][]core.ValueSupport{}}
	for t, vs := range vals {
		for _, v := range vs {
			e.Values[t] = append(e.Values[t], core.ValueSupport{Value: v, Reports: 1})
		}
	}
	return e
}

func capellutoFixture() []*core.Entity {
	shared := func(first string, extra map[record.ItemType][]string) *core.Entity {
		vals := map[record.ItemType][]string{
			record.FirstName:  {first},
			record.LastName:   {"Capelluto"},
			record.FatherName: {"Haim"},
			record.MotherName: {"Zimbul"},
			record.PermCity:   {"Rhodes"},
		}
		for t, vs := range extra {
			vals[t] = vs
		}
		return ent(vals)
	}
	elsa := shared("Elsa", nil)
	giulia := shared("Giulia", nil)
	alberto := shared("Alberto", nil)
	zimbul := ent(map[record.ItemType][]string{
		record.FirstName:  {"Zimbul"},
		record.LastName:   {"Capelluto"},
		record.SpouseName: {"Haim"},
		record.PermCity:   {"Rhodes"},
	})
	stranger := ent(map[record.ItemType][]string{
		record.FirstName:  {"Mario"},
		record.LastName:   {"Rossi"},
		record.FatherName: {"Pietro"},
		record.PermCity:   {"Roma"},
	})
	return []*core.Entity{elsa, giulia, alberto, zimbul, stranger}
}

func TestReconstructCapelluto(t *testing.T) {
	entities := capellutoFixture()
	res := Reconstruct(NewConfig(), entities)

	if len(res.Families) != 1 {
		t.Fatalf("families = %v", res.Families)
	}
	fam := res.Families[0]
	if len(fam) != 4 {
		t.Fatalf("Capelluto family has %d members: %v", len(fam), fam)
	}
	for _, i := range fam {
		if i == 4 {
			t.Error("the stranger joined the family")
		}
	}

	// Relation typing: the children are siblings; Zimbul is their mother.
	var siblings, parentChild int
	for _, l := range res.Links {
		switch l.Rel {
		case Sibling:
			siblings++
		case ParentChild:
			parentChild++
		}
		if l.Score < NewConfig().MinScore || l.Score > 1 {
			t.Errorf("link score %v out of range", l.Score)
		}
	}
	if siblings < 3 {
		t.Errorf("expected the 3 sibling pairs, got %d", siblings)
	}
	if parentChild < 1 {
		t.Errorf("expected Zimbul linked as parent, got %d parent-child links", parentChild)
	}
}

func TestSharedPlaceRequirement(t *testing.T) {
	entities := capellutoFixture()
	// Move Giulia to a different city: with RequireSharedPlace she drops
	// out of the family.
	entities[1].Values[record.PermCity] = []core.ValueSupport{{Value: "Salonika", Reports: 1}}
	cfg := NewConfig()
	res := Reconstruct(cfg, entities)
	for _, fam := range res.Families {
		for _, i := range fam {
			if i == 1 {
				t.Error("Giulia linked without a shared place")
			}
		}
	}
	cfg.RequireSharedPlace = false
	res = Reconstruct(cfg, entities)
	found := false
	for _, fam := range res.Families {
		for _, i := range fam {
			if i == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("without the place requirement Giulia should link via parents")
	}
}

func TestSpouseLinksAreMutual(t *testing.T) {
	a := ent(map[record.ItemType][]string{
		record.FirstName:  {"Guido"},
		record.LastName:   {"Foa"},
		record.SpouseName: {"Olga"},
		record.PermCity:   {"Torino"},
	})
	b := ent(map[record.ItemType][]string{
		record.FirstName:  {"Olga"},
		record.LastName:   {"Foa"},
		record.SpouseName: {"Guido"},
		record.PermCity:   {"Torino"},
	})
	// One-sided naming is not enough for a spouse link.
	c := ent(map[record.ItemType][]string{
		record.FirstName:  {"Elena"},
		record.LastName:   {"Foa"},
		record.SpouseName: {"Guido"},
		record.PermCity:   {"Torino"},
	})
	res := Reconstruct(NewConfig(), []*core.Entity{a, b, c})
	spouseAB := false
	for _, l := range res.Links {
		if l.Rel == Spouse && ((l.A == 0 && l.B == 1) || (l.A == 1 && l.B == 0)) {
			spouseAB = true
		}
		if l.Rel == Spouse && (l.A == 2 || l.B == 2) {
			// c names Guido but Guido names Olga; a spouse link to c would
			// require mutuality. (c may still sibling-link via other
			// evidence, which this fixture lacks.)
			t.Errorf("one-sided spouse link accepted: %+v", l)
		}
	}
	if !spouseAB {
		t.Error("mutual spouses not linked")
	}
}

func TestReconstructOnResolvedDataset(t *testing.T) {
	cfg := dataset.ItalyConfig()
	cfg.Persons = 400
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Blocking: mfiblocks.NewConfig(), Geo: g.Gaz, Preprocess: true, Gazetteer: g.Gaz}
	resolution, err := core.Run(opts, g.Collection)
	if err != nil {
		t.Fatal(err)
	}
	entities := resolution.Clusters(0.3)
	res := Reconstruct(NewConfig(), entities)
	if len(res.Families) == 0 {
		t.Fatal("no families reconstructed")
	}

	// Quality: a family link is correct when the two entities' dominant
	// gold families agree. Majority of links should be correct.
	domFamily := func(e *core.Entity) int {
		count := map[int]int{}
		for _, id := range e.Reports {
			f, _ := g.Gold.Family(id)
			count[f]++
		}
		best, bestN := -1, 0
		for f, n := range count {
			if n > bestN {
				best, bestN = f, n
			}
		}
		return best
	}
	correct := 0
	for _, l := range res.Links {
		if domFamily(entities[l.A]) == domFamily(entities[l.B]) {
			correct++
		}
	}
	precision := float64(correct) / float64(len(res.Links))
	t.Logf("family links=%d precision=%.3f families=%d", len(res.Links), precision, len(res.Families))
	if precision < 0.5 {
		t.Errorf("family-link precision %.3f too low", precision)
	}
}

func TestRelationNames(t *testing.T) {
	for r := 0; r < NumRelations; r++ {
		if Relation(r).String() == "" {
			t.Errorf("relation %d unnamed", r)
		}
	}
}
