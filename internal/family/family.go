// Package family performs entity resolution above the person level — the
// paper's third open question ("how to perform entity resolution at the
// edge and sub-graph level and not just at the node level?"). Starting
// from person-level resolved entities, it links entities into family
// units using relational evidence: spouses name each other, siblings
// share parents, and parents appear as their children's father or mother
// names. Connected components of the typed link graph are reconstructed
// families — the Capelluto children reunited with Zimbul.
package family

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/names"
	"repro/internal/record"
	"repro/internal/similarity"
)

// Relation labels an inter-entity family link.
type Relation uint8

// The relation kinds.
const (
	Sibling Relation = iota
	ParentChild
	Spouse

	// NumRelations is the number of relation kinds.
	NumRelations = int(Spouse) + 1
)

var relationNames = [NumRelations]string{"sibling", "parent-child", "spouse"}

func (r Relation) String() string {
	if int(r) < NumRelations {
		return relationNames[r]
	}
	return fmt.Sprintf("Relation(%d)", uint8(r))
}

// Link is one scored family edge between two entities (indices into the
// input slice).
type Link struct {
	A, B  int
	Rel   Relation
	Score float64
}

// Config tunes reconstruction.
type Config struct {
	// NameThreshold is the minimal Jaro-Winkler similarity for two name
	// values to corroborate (equivalence classes always corroborate).
	NameThreshold float64
	// RequireSharedPlace additionally demands a shared city in any place
	// role before linking. Recommended: family members lived together.
	RequireSharedPlace bool
	// MinScore drops links scoring below it.
	MinScore float64
}

// NewConfig returns the defaults.
func NewConfig() Config {
	return Config{NameThreshold: 0.92, RequireSharedPlace: true, MinScore: 0.5}
}

// Result is the reconstruction outcome.
type Result struct {
	// Links are the accepted family edges, strongest first.
	Links []Link
	// Families are connected components over the links, as entity
	// indices; singletons are omitted.
	Families [][]int
}

// Reconstruct links the entities into families.
func Reconstruct(cfg Config, entities []*core.Entity) *Result {
	if cfg.NameThreshold == 0 {
		cfg.NameThreshold = 0.92
	}
	res := &Result{}

	// Block by last name to avoid the quadratic sweep: family links
	// require a shared surname (married daughters link through maiden
	// names, handled via MaidenName values).
	blocks := make(map[string][]int)
	for i, e := range entities {
		for _, key := range surnameKeys(e) {
			blocks[key] = append(blocks[key], i)
		}
	}
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	seen := make(map[[2]int]bool)
	for _, k := range keys {
		members := blocks[k]
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				i, j := members[x], members[y]
				if i > j {
					i, j = j, i
				}
				if seen[[2]int{i, j}] {
					continue
				}
				seen[[2]int{i, j}] = true
				if cfg.RequireSharedPlace && !sharePlace(entities[i], entities[j]) {
					continue
				}
				if link, ok := bestLink(cfg, entities[i], entities[j]); ok {
					link.A, link.B = i, j
					res.Links = append(res.Links, link)
				}
			}
		}
	}
	sort.Slice(res.Links, func(a, b int) bool {
		if res.Links[a].Score != res.Links[b].Score {
			return res.Links[a].Score > res.Links[b].Score
		}
		if res.Links[a].A != res.Links[b].A {
			return res.Links[a].A < res.Links[b].A
		}
		return res.Links[a].B < res.Links[b].B
	})

	// Components.
	parent := make([]int, len(entities))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, l := range res.Links {
		ra, rb := find(l.A), find(l.B)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	groups := make(map[int][]int)
	for i := range entities {
		root := find(i)
		groups[root] = append(groups[root], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		if len(groups[r]) > 1 {
			res.Families = append(res.Families, groups[r])
		}
	}
	return res
}

// surnameKeys returns the lowercased last names and maiden names an
// entity can block under.
func surnameKeys(e *core.Entity) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range []record.ItemType{record.LastName, record.MaidenName} {
		for _, v := range e.Values[t] {
			k := strings.ToLower(v.Value)
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// sharePlace reports whether the entities share any city in any place
// role.
func sharePlace(a, b *core.Entity) bool {
	for pt := 0; pt < record.NumPlaceTypes; pt++ {
		t := record.PlaceItem(record.PlaceType(pt), record.City)
		for _, va := range a.Values[t] {
			for _, vb := range b.Values[t] {
				if strings.EqualFold(va.Value, vb.Value) {
					return true
				}
			}
		}
	}
	return false
}

// bestLink evaluates the three relation hypotheses and returns the
// strongest one above the config thresholds.
func bestLink(cfg Config, a, b *core.Entity) (Link, bool) {
	var best Link
	ok := false
	consider := func(rel Relation, score float64) {
		if score >= cfg.MinScore && (!ok || score > best.Score) {
			best = Link{Rel: rel, Score: score}
			ok = true
		}
	}

	// Sibling: both parents' names corroborate.
	father := corroboration(cfg, a.Values[record.FatherName], b.Values[record.FatherName])
	mother := corroboration(cfg, a.Values[record.MotherName], b.Values[record.MotherName])
	switch {
	case father > 0 && mother > 0:
		consider(Sibling, (father+mother)/2)
	case father > 0 || mother > 0:
		consider(Sibling, maxf(father, mother)*0.6) // one parent only: weaker
	}

	// Spouse: each names the other.
	ab := corroboration(cfg, a.Values[record.SpouseName], b.Values[record.FirstName])
	ba := corroboration(cfg, b.Values[record.SpouseName], a.Values[record.FirstName])
	if ab > 0 && ba > 0 {
		consider(Spouse, (ab+ba)/2)
	}

	// Parent-child: the child's father/mother name corroborates the
	// parent's first name, in either direction.
	pc := maxf(
		maxf(corroboration(cfg, a.Values[record.FatherName], b.Values[record.FirstName]),
			corroboration(cfg, a.Values[record.MotherName], b.Values[record.FirstName])),
		maxf(corroboration(cfg, b.Values[record.FatherName], a.Values[record.FirstName]),
			corroboration(cfg, b.Values[record.MotherName], a.Values[record.FirstName])))
	if pc > 0 {
		consider(ParentChild, pc)
	}
	return best, ok
}

// corroboration returns the best name-pair similarity above the
// threshold, or 0.
func corroboration(cfg Config, as, bs []core.ValueSupport) float64 {
	best := 0.0
	for _, a := range as {
		for _, b := range bs {
			if names.SameClass(a.Value, b.Value) {
				return 1
			}
			s := similarity.JaroWinkler(strings.ToLower(a.Value), strings.ToLower(b.Value))
			if s >= cfg.NameThreshold && s > best {
				best = s
			}
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
