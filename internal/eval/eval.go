// Package eval provides the pair-level evaluation machinery: precision,
// recall, F1, reduction ratio, tag-bin analysis, and k-fold
// cross-validation splits.
package eval

import (
	"fmt"

	"repro/internal/record"
)

// PairSet is a set of canonical record pairs.
type PairSet map[record.Pair]struct{}

// NewPairSet builds a set from a slice of pairs.
func NewPairSet(pairs []record.Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s[p] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s PairSet) Has(p record.Pair) bool {
	_, ok := s[p]
	return ok
}

// Add inserts a pair.
func (s PairSet) Add(p record.Pair) { s[p] = struct{}{} }

// Metrics holds the confusion counts and derived quality measures of a
// predicted pair set against a truth pair set.
type Metrics struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// Evaluate scores predicted pairs against true pairs.
func Evaluate(predicted []record.Pair, truth PairSet) Metrics {
	var m Metrics
	seen := make(PairSet, len(predicted))
	for _, p := range predicted {
		if seen.Has(p) {
			continue
		}
		seen.Add(p)
		if truth.Has(p) {
			m.TP++
		} else {
			m.FP++
		}
	}
	m.FN = len(truth) - m.TP
	m.Precision = ratio(m.TP, m.TP+m.FP)
	m.Recall = ratio(m.TP, m.TP+m.FN)
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders the metrics in the paper's table style.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

// ReductionRatio returns 1 - comparisons/totalPairs: the fraction of the
// Cartesian pair space a blocking method avoids.
func ReductionRatio(comparisons, records int) float64 {
	total := records * (records - 1) / 2
	if total == 0 {
		return 0
	}
	rr := 1 - float64(comparisons)/float64(total)
	if rr < 0 {
		return 0
	}
	return rr
}

// Accuracy returns the fraction of correct binary decisions.
func Accuracy(correct, total int) float64 { return ratio(correct, total) }

// Folds splits n indices into k contiguous folds for cross-validation.
// Each fold is non-empty when k <= n.
func Folds(n, k int) [][]int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	folds := make([][]int, k)
	for i := 0; i < n; i++ {
		f := i * k / n
		folds[f] = append(folds[f], i)
	}
	return folds
}

// TrainIndices returns all indices not in the held-out fold.
func TrainIndices(folds [][]int, holdout int) []int {
	var out []int
	for f, idxs := range folds {
		if f == holdout {
			continue
		}
		out = append(out, idxs...)
	}
	return out
}
