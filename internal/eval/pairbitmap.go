package eval

import "math/bits"

// PairBitmap is a triangular bitset over unordered index pairs (i,j), i!=j,
// of n records. It counts distinct candidate pairs exactly without
// materializing them — baseline blocking methods emit tens of millions of
// pairs on the Italy set, far too many for a map.
type PairBitmap struct {
	n    int
	bits []uint64
}

// NewPairBitmap allocates a bitmap for n records (n*(n-1)/2 bits).
func NewPairBitmap(n int) *PairBitmap {
	total := n * (n - 1) / 2
	return &PairBitmap{n: n, bits: make([]uint64, (total+63)/64)}
}

// offset maps the unordered pair to its triangular index. Requires
// 0 <= i < j < n.
func (b *PairBitmap) offset(i, j int) int {
	// Pairs (0,1),(0,2),...,(0,n-1),(1,2),... — row i starts at
	// i*n - i*(i+1)/2, column j-i-1.
	return i*b.n - i*(i+1)/2 + (j - i - 1)
}

// Add marks the pair; i and j may come in any order. Adding i==j or
// out-of-range indices panics.
func (b *PairBitmap) Add(i, j int) {
	if i > j {
		i, j = j, i
	}
	if i < 0 || j >= b.n || i == j {
		panic("eval: pair index out of range")
	}
	off := b.offset(i, j)
	b.bits[off/64] |= 1 << uint(off%64)
}

// Has reports whether the pair is marked.
func (b *PairBitmap) Has(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	if i < 0 || j >= b.n || i == j {
		return false
	}
	off := b.offset(i, j)
	return b.bits[off/64]&(1<<uint(off%64)) != 0
}

// Count returns the number of marked pairs.
func (b *PairBitmap) Count() int {
	total := 0
	for _, w := range b.bits {
		total += bits.OnesCount64(w)
	}
	return total
}
