package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

func TestEvaluateBasics(t *testing.T) {
	truth := NewPairSet([]record.Pair{
		record.MakePair(1, 2),
		record.MakePair(3, 4),
		record.MakePair(5, 6),
	})
	pred := []record.Pair{
		record.MakePair(1, 2),
		record.MakePair(3, 4),
		record.MakePair(7, 8), // FP
	}
	m := Evaluate(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 || math.Abs(m.Recall-2.0/3) > 1e-12 {
		t.Errorf("P/R = %v/%v", m.Precision, m.Recall)
	}
	if math.Abs(m.F1-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", m.F1)
	}
}

func TestEvaluatePerfectAndEmpty(t *testing.T) {
	truth := NewPairSet([]record.Pair{record.MakePair(1, 2)})
	perfect := Evaluate([]record.Pair{record.MakePair(1, 2)}, truth)
	if perfect.Precision != 1 || perfect.Recall != 1 || perfect.F1 != 1 {
		t.Errorf("perfect = %+v", perfect)
	}
	empty := Evaluate(nil, truth)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Errorf("empty = %+v", empty)
	}
}

func TestEvaluateDeduplicates(t *testing.T) {
	truth := NewPairSet([]record.Pair{record.MakePair(1, 2)})
	pred := []record.Pair{record.MakePair(1, 2), record.MakePair(2, 1), record.MakePair(1, 2)}
	m := Evaluate(pred, truth)
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("duplicates not collapsed: %+v", m)
	}
}

func TestF1IsHarmonicMean(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		truthPairs := make([]record.Pair, 0)
		pred := make([]record.Pair, 0)
		id := int64(0)
		for i := 0; i < int(tp); i++ {
			p := record.MakePair(id, id+1)
			id += 2
			truthPairs = append(truthPairs, p)
			pred = append(pred, p)
		}
		for i := 0; i < int(fp); i++ {
			pred = append(pred, record.MakePair(id, id+1))
			id += 2
		}
		for i := 0; i < int(fn); i++ {
			truthPairs = append(truthPairs, record.MakePair(id, id+1))
			id += 2
		}
		m := Evaluate(pred, NewPairSet(truthPairs))
		if m.Precision+m.Recall == 0 {
			return m.F1 == 0
		}
		want := 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		return math.Abs(m.F1-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionRatio(t *testing.T) {
	if rr := ReductionRatio(0, 100); rr != 1 {
		t.Errorf("RR(0 comparisons) = %v", rr)
	}
	total := 100 * 99 / 2
	if rr := ReductionRatio(total, 100); rr != 0 {
		t.Errorf("RR(all comparisons) = %v", rr)
	}
	if rr := ReductionRatio(10, 0); rr != 0 {
		t.Errorf("RR with no records = %v", rr)
	}
	if rr := ReductionRatio(total*2, 100); rr != 0 {
		t.Errorf("RR clamps at 0, got %v", rr)
	}
}

func TestFolds(t *testing.T) {
	folds := Folds(10, 3)
	if len(folds) != 3 {
		t.Fatalf("fold count = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) == 0 {
			t.Error("empty fold")
		}
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("folds cover %d of 10", len(seen))
	}
	train := TrainIndices(folds, 1)
	if len(train)+len(folds[1]) != 10 {
		t.Errorf("train+holdout = %d", len(train)+len(folds[1]))
	}
	// k > n clamps.
	if got := Folds(2, 5); len(got) != 2 {
		t.Errorf("Folds(2,5) = %d folds", len(got))
	}
	if got := Folds(3, 0); len(got) != 1 {
		t.Errorf("Folds(3,0) = %d folds", len(got))
	}
}

func TestPairBitmap(t *testing.T) {
	bm := NewPairBitmap(5)
	bm.Add(1, 3)
	bm.Add(3, 1) // same pair
	bm.Add(0, 4)
	if !bm.Has(1, 3) || !bm.Has(3, 1) || !bm.Has(4, 0) {
		t.Error("membership wrong")
	}
	if bm.Has(2, 3) {
		t.Error("false membership")
	}
	if bm.Count() != 2 {
		t.Errorf("Count = %d", bm.Count())
	}
	if bm.Has(1, 1) || bm.Has(-1, 2) || bm.Has(2, 9) {
		t.Error("out-of-range membership")
	}
}

func TestPairBitmapExhaustive(t *testing.T) {
	const n = 12
	bm := NewPairBitmap(n)
	rng := rand.New(rand.NewSource(11))
	ref := map[[2]int]bool{}
	for k := 0; k < 40; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		bm.Add(i, j)
		if i > j {
			i, j = j, i
		}
		ref[[2]int{i, j}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if bm.Has(i, j) != ref[[2]int{i, j}] {
				t.Fatalf("(%d,%d) mismatch", i, j)
			}
		}
	}
	if bm.Count() != len(ref) {
		t.Errorf("Count = %d, want %d", bm.Count(), len(ref))
	}
}

func TestPairBitmapPanicsOnBadAdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(i,i) must panic")
		}
	}()
	NewPairBitmap(3).Add(1, 1)
}

func TestAccuracy(t *testing.T) {
	if Accuracy(3, 4) != 0.75 {
		t.Error("Accuracy(3,4)")
	}
	if Accuracy(0, 0) != 0 {
		t.Error("Accuracy(0,0)")
	}
}
