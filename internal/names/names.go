// Package names provides the personal-name substrate: per-community name
// corpora, gendered first names, nickname and transliteration equivalence
// classes, and the corruption machinery (clerical errors, spelling
// variants) the dataset generator uses to emit realistic report variants.
//
// The Names Project preprocessing built equivalence classes of first names,
// last names, and places to cope with over 30 languages and four alphabets;
// this package plays both roles: it produces the variants and exposes the
// equivalence classes a preprocessing step would recover.
package names

import (
	"math/rand"
	"strings"
)

// Gender codes follow the paper's item encoding ("G 0" / "G 1").
const (
	Male   = "0"
	Female = "1"
)

// Corpus holds the name pools of one community.
type Corpus struct {
	MaleFirst   []string
	FemaleFirst []string
	Last        []string
	Professions []string
}

// nicknameClasses maps a canonical first name to its nicknames and foreign
// forms. All members of a class are the "same name" for equivalence
// purposes.
var nicknameClasses = map[string][]string{
	"Avraham":  {"Avram", "Abram", "Abraham", "Abramo"},
	"Yitzhak":  {"Isak", "Isacco", "Izak", "Itzik"},
	"Moshe":    {"Moise", "Moses", "Moshko", "Mose"},
	"Yaakov":   {"Jakob", "Giacomo", "Yankel", "Jacob"},
	"Shmuel":   {"Samuel", "Samuele", "Shmulik", "Zanvel"},
	"Yosef":    {"Josef", "Giuseppe", "Yosl", "Joseph"},
	"David":    {"Davide", "Dovid", "Dudl"},
	"Eliahu":   {"Elia", "Elias", "Elye"},
	"Guido":    {"Guido"},
	"Massimo":  {"Massimo"},
	"Donato":   {"Donat"},
	"Italo":    {"Italo"},
	"Sara":     {"Sarah", "Sura", "Serena"},
	"Rivka":    {"Rebecca", "Rifka", "Rywka"},
	"Lea":      {"Leah", "Laja", "Leja"},
	"Rachel":   {"Rachele", "Ruchel", "Rokhl"},
	"Hana":     {"Hanna", "Anna", "Chana", "Hannah"},
	"Ester":    {"Esther", "Estera", "Estela", "Stella"},
	"Miriam":   {"Maria", "Mirjam", "Mirel"},
	"Helena":   {"Helene", "Elena", "Ilona"},
	"Olga":     {"Olga"},
	"Zimbul":   {"Zimbul"},
	"Bella":    {"Bela", "Beila", "Bejla"},
	"Gittel":   {"Gitla", "Gitel", "Guta"},
	"Frida":    {"Frieda", "Fradel"},
	"Perla":    {"Perl", "Pearl", "Perel"},
	"Dora":     {"Dwojra", "Dvora", "Deborah"},
	"Regina":   {"Rina", "Rejla"},
	"Giulia":   {"Julia", "Julie"},
	"Elsa":     {"Else", "Elza"},
	"Alberto":  {"Albert", "Abert"},
	"Clotilde": {"Clotilda"},
}

var corpora = map[string]*Corpus{
	"Italy": {
		MaleFirst:   []string{"Guido", "Massimo", "Donato", "Italo", "Alberto", "Giacomo", "Giuseppe", "Isacco", "Davide", "Abramo", "Samuele", "Mose", "Emanuele", "Vittorio", "Cesare", "Aldo", "Bruno", "Enzo"},
		FemaleFirst: []string{"Estela", "Helena", "Olga", "Giulia", "Elsa", "Zimbul", "Rachele", "Anna", "Elena", "Stella", "Allegra", "Fortunata", "Ida", "Bianca", "Clara", "Silvia"},
		Last:        []string{"Foa", "Capelluto", "Levi", "Segre", "Ottolenghi", "Treves", "Momigliano", "Lattes", "Artom", "Colombo", "Sacerdote", "Jona", "Luzzati", "Valabrega", "Debenedetti", "Fubini", "Diena", "Muggia", "Vitale", "Bachi", "Pugliese", "Terracini", "Rimini", "Sonnino"},
		Professions: []string{"merchant", "tailor", "teacher", "physician", "bookkeeper", "shopkeeper", "lawyer", "engineer"},
	},
	"Poland": {
		MaleFirst:   []string{"Avraham", "Yitzhak", "Moshe", "Yaakov", "Shmuel", "Yosef", "David", "Eliahu", "Chaim", "Mordechai", "Hersz", "Szymon", "Leib", "Pinchas", "Zalman", "Baruch", "Mendel", "Wolf"},
		FemaleFirst: []string{"Sara", "Rivka", "Lea", "Rachel", "Hana", "Ester", "Miriam", "Bella", "Gittel", "Frida", "Perla", "Dora", "Fajga", "Chaja", "Golda", "Masza", "Cywia", "Tauba"},
		Last:        []string{"Kesler", "Apoteker", "Postel", "Goldberg", "Rozenberg", "Szwarc", "Wajnsztok", "Grinberg", "Kirszenbaum", "Lewin", "Frydman", "Zylberman", "Kaplan", "Birnbaum", "Sztern", "Rubin", "Edelman", "Goldman", "Perelman", "Wasserman", "Cukierman", "Mandelbaum", "Najman", "Zygelbojm"},
		Professions: []string{"tailor", "cobbler", "carpenter", "baker", "merchant", "rabbi", "watchmaker", "furrier", "glazier"},
	},
	"Germany": {
		MaleFirst:   []string{"Josef", "Jakob", "Samuel", "Moses", "Albert", "Siegfried", "Ludwig", "Hermann", "Kurt", "Walter", "Max", "Fritz", "Erich", "Heinz", "Julius", "Leopold"},
		FemaleFirst: []string{"Hanna", "Else", "Frieda", "Helene", "Rosa", "Martha", "Johanna", "Erna", "Gertrud", "Margarete", "Bertha", "Klara", "Paula", "Recha", "Selma", "Ilse"},
		Last:        []string{"Rosenthal", "Blumenfeld", "Oppenheimer", "Kahn", "Strauss", "Hirsch", "Loewenstein", "Baum", "Stern", "Wolf", "Marx", "Katz", "Adler", "Simon", "Heilbronn", "Gutmann", "Neumann", "Feuchtwanger", "Baruch", "Dreyfus"},
		Professions: []string{"physician", "lawyer", "merchant", "banker", "professor", "pharmacist", "manufacturer", "bookseller"},
	},
	"Hungary": {
		MaleFirst:   []string{"Laszlo", "Istvan", "Sandor", "Ferenc", "Gyorgy", "Miklos", "Imre", "Bela", "Dezso", "Erno", "Jeno", "Zoltan", "Pal", "Janos", "Andor", "Arpad"},
		FemaleFirst: []string{"Ilona", "Erzsebet", "Margit", "Maria", "Iren", "Katalin", "Roza", "Julia", "Aranka", "Gizella", "Olga", "Piroska", "Szeren", "Terez", "Vilma", "Zsofia"},
		Last:        []string{"Kovacs", "Weisz", "Schwartz", "Klein", "Nagy", "Gross", "Braun", "Friedmann", "Gruenwald", "Roth", "Fischer", "Lusztig", "Berkovits", "Moskovits", "Lefkovits", "Hegedus", "Salamon", "Spitzer", "Ungar", "Vamos"},
		Professions: []string{"merchant", "tailor", "innkeeper", "clerk", "physician", "carter", "grain dealer", "butcher"},
	},
	"Greece": {
		MaleFirst:   []string{"Isaac", "Salomon", "Mordohai", "Haim", "Avram", "Yakov", "Sabetai", "Leon", "Moise", "Menahem", "Raphael", "Samuel", "Yeuda", "Nissim", "Pepo", "Bohor"},
		FemaleFirst: []string{"Zimbul", "Rebeka", "Sol", "Allegra", "Djoya", "Ester", "Luna", "Mazaltov", "Rahel", "Sarina", "Fortunee", "Gracia", "Perla", "Reina", "Bellina", "Dudun"},
		Last:        []string{"Capelluto", "Alhadeff", "Franco", "Notrica", "Amato", "Benveniste", "Cohen", "Levy", "Menasce", "Galante", "Hasson", "Israel", "Soriano", "Tarica", "Codron", "Angel", "Almelech", "Berro", "Capuya", "Surmani"},
		Professions: []string{"merchant", "porter", "fisherman", "tobacco worker", "tailor", "peddler", "shopkeeper", "sponge diver"},
	},
	"Soviet": {
		MaleFirst:   []string{"Boris", "Grigori", "Semyon", "Lev", "Naum", "Efim", "Iosif", "Mikhail", "Aron", "Isaak", "Yakov", "Moisei", "Zinovi", "Ilya", "Matvei", "Solomon"},
		FemaleFirst: []string{"Fanya", "Raisa", "Sofia", "Genya", "Tsilya", "Klara", "Berta", "Polina", "Maria", "Evgenia", "Riva", "Mera", "Khana", "Dora", "Ginda", "Basya"},
		Last:        []string{"Abramovich", "Rabinovich", "Kogan", "Gurevich", "Feldman", "Shapiro", "Khaimovich", "Vaisman", "Gershman", "Lifshits", "Pinkus", "Reznik", "Tsukerman", "Berman", "Portnoy", "Slutsky", "Yampolsky", "Zaslavsky", "Krichevsky", "Ostrovsky"},
		Professions: []string{"worker", "engineer", "teacher", "accountant", "doctor", "shoemaker", "driver", "mechanic"},
	},
}

// CorpusFor returns the corpus for a community name (e.g. "Italy"). It
// falls back to the Polish corpus for unknown communities, which is the
// largest population in the Names Project.
func CorpusFor(community string) *Corpus {
	if c, ok := corpora[community]; ok {
		return c
	}
	return corpora["Poland"]
}

// Communities returns the community names with built-in corpora.
func Communities() []string {
	return []string{"Italy", "Poland", "Germany", "Hungary", "Greece", "Soviet"}
}

// Variants returns the equivalence class of a first name (including the
// name itself). Names without a registered class return a singleton.
func Variants(name string) []string {
	if vs, ok := nicknameClasses[name]; ok {
		out := make([]string, 0, len(vs)+1)
		out = append(out, name)
		for _, v := range vs {
			if v != name {
				out = append(out, v)
			}
		}
		return out
	}
	return []string{name}
}

// canonicalOf maps every known variant (lowercased) to its class canonical.
var canonicalOf = func() map[string]string {
	m := make(map[string]string)
	for canon, vs := range nicknameClasses {
		m[strings.ToLower(canon)] = canon
		for _, v := range vs {
			key := strings.ToLower(v)
			if _, taken := m[key]; !taken {
				m[key] = canon
			}
		}
	}
	return m
}()

// Canonical returns the equivalence-class representative of a first name,
// or the name itself when no class is registered. This mirrors the Names
// Project preprocessing that folded synonyms and transliterations into
// equivalence classes.
func Canonical(name string) string {
	if c, ok := canonicalOf[strings.ToLower(name)]; ok {
		return c
	}
	return name
}

// SameClass reports whether two first names belong to the same equivalence
// class (exact match counts).
func SameClass(a, b string) bool {
	if strings.EqualFold(a, b) {
		return true
	}
	for canon, vs := range nicknameClasses {
		inA, inB := strings.EqualFold(canon, a), strings.EqualFold(canon, b)
		for _, v := range vs {
			if strings.EqualFold(v, a) {
				inA = true
			}
			if strings.EqualFold(v, b) {
				inB = true
			}
		}
		if inA && inB {
			return true
		}
	}
	return false
}

// Corrupt applies one clerical error to a name: a substitution
// (Bella→Della), a transposition, a deletion, or an insertion, chosen by
// the rng. Names shorter than 3 runes are returned unchanged.
func Corrupt(rng *rand.Rand, name string) string {
	rs := []rune(name)
	if len(rs) < 3 {
		return name
	}
	switch rng.Intn(4) {
	case 0: // substitute one letter
		i := rng.Intn(len(rs))
		rs[i] = substituteRune(rng, rs[i])
	case 1: // transpose adjacent letters
		i := rng.Intn(len(rs) - 1)
		rs[i], rs[i+1] = rs[i+1], rs[i]
	case 2: // delete one letter
		i := 1 + rng.Intn(len(rs)-1) // keep the initial
		rs = append(rs[:i], rs[i+1:]...)
	default: // duplicate one letter
		i := rng.Intn(len(rs))
		rs = append(rs[:i+1], rs[i:]...)
	}
	return string(rs)
}

// confusable letter pairs mimicking handwriting-deciphering errors.
var confusions = map[rune][]rune{
	'B': {'D', 'R'}, 'D': {'B', 'O'}, 'a': {'o', 'e'}, 'e': {'a', 'o'},
	'o': {'a', 'e'}, 'i': {'j', 'y'}, 'u': {'v', 'n'}, 'n': {'m', 'u'},
	'c': {'e', 'k'}, 'l': {'t', 'i'}, 's': {'z', 'c'}, 'w': {'v', 'u'},
	'k': {'c', 'h'}, 'r': {'n', 'v'}, 't': {'l', 'f'}, 'z': {'s', 'c'},
}

func substituteRune(rng *rand.Rand, r rune) rune {
	if cands, ok := confusions[r]; ok {
		return cands[rng.Intn(len(cands))]
	}
	// Shift within the lowercase alphabet as a fallback.
	if r >= 'a' && r <= 'z' {
		return 'a' + (r-'a'+rune(1+rng.Intn(24)))%26
	}
	return r
}

// PickVariant returns a random member of the name's equivalence class
// (possibly the name itself).
func PickVariant(rng *rand.Rand, name string) string {
	vs := Variants(name)
	return vs[rng.Intn(len(vs))]
}
