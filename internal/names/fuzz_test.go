package names

import (
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzCanonical guards the name-normalization kernel the preprocessing
// stage and the profile cache depend on: canonicalization must be
// idempotent, stay inside the name's equivalence class, and be
// case-insensitive.
func FuzzCanonical(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []string{"Avraham", "Yitzhak", "Bella", "Guido", "Sara", "Maria", "Isak", ""} {
		f.Add(n)
		f.Add(strings.ToUpper(n))
		f.Add(Corrupt(rng, n)) // corrupted generator output
		f.Add(Corrupt(rng, Corrupt(rng, n)))
	}
	f.Fuzz(func(t *testing.T, name string) {
		c := Canonical(name)
		if again := Canonical(c); again != c {
			t.Fatalf("Canonical not idempotent: %q -> %q -> %q", name, c, again)
		}
		if !SameClass(name, c) {
			t.Fatalf("Canonical(%q) = %q left the equivalence class", name, c)
		}
		if lower := Canonical(strings.ToLower(name)); !strings.EqualFold(lower, c) {
			t.Fatalf("case-sensitive canonicalization: %q vs %q", lower, c)
		}
		vs := Variants(c)
		if len(vs) == 0 || vs[0] != c {
			t.Fatalf("Variants(%q) = %v, want the canonical first", c, vs)
		}
		for _, v := range vs {
			if !SameClass(c, v) {
				t.Fatalf("variant %q not SameClass with canonical %q", v, c)
			}
		}
	})
}

// FuzzCorrupt checks the clerical-error generator never panics, preserves
// short names, and emits valid UTF-8 — its output feeds the q-gram and
// Jaro-Winkler kernels directly.
func FuzzCorrupt(f *testing.F) {
	for _, n := range []string{"Guido", "Foa", "ab", "Rywka", "Zimbul", ""} {
		f.Add(int64(1), n)
		f.Add(int64(99), n)
	}
	f.Fuzz(func(t *testing.T, seed int64, name string) {
		if !utf8.ValidString(name) {
			t.Skip("generator inputs are valid UTF-8")
		}
		rng := rand.New(rand.NewSource(seed))
		got := Corrupt(rng, name)
		if utf8.RuneCountInString(name) < 3 && got != name {
			t.Fatalf("Corrupt changed short name %q -> %q", name, got)
		}
		if !utf8.ValidString(got) {
			t.Fatalf("Corrupt(%q) produced invalid UTF-8 %q", name, got)
		}
		n := utf8.RuneCountInString(name)
		g := utf8.RuneCountInString(got)
		if g < n-1 || g > n+1 {
			t.Fatalf("Corrupt(%q) changed length %d -> %d", name, n, g)
		}
	})
}
