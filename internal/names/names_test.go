package names

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCorporaComplete(t *testing.T) {
	for _, comm := range Communities() {
		c := CorpusFor(comm)
		if len(c.MaleFirst) < 10 || len(c.FemaleFirst) < 10 || len(c.Last) < 10 || len(c.Professions) < 4 {
			t.Errorf("%s corpus too small: %d/%d/%d/%d", comm,
				len(c.MaleFirst), len(c.FemaleFirst), len(c.Last), len(c.Professions))
		}
	}
	if CorpusFor("Unknown") != CorpusFor("Poland") {
		t.Error("unknown community should fall back to Poland")
	}
}

func TestVariantsIncludeSelf(t *testing.T) {
	for _, name := range []string{"Avraham", "Ester", "Guido", "NotRegistered"} {
		vs := Variants(name)
		if len(vs) == 0 || vs[0] != name {
			t.Errorf("Variants(%q) = %v", name, vs)
		}
	}
	if len(Variants("Avraham")) < 3 {
		t.Error("Avraham should have several variants")
	}
}

func TestSameClass(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Avraham", "Abramo", true},
		{"avraham", "ABRAM", true}, // case-insensitive
		{"Ester", "Estela", true},
		{"Guido", "Guido", true},
		{"Guido", "Massimo", false},
		{"Unregistered", "Unregistered", true},
		{"Unregistered", "Other", false},
	}
	for _, c := range cases {
		if got := SameClass(c.a, c.b); got != c.want {
			t.Errorf("SameClass(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCanonicalFoldsClass(t *testing.T) {
	for _, v := range Variants("Yitzhak") {
		if got := Canonical(v); got != "Yitzhak" {
			t.Errorf("Canonical(%q) = %q, want Yitzhak", v, got)
		}
	}
	if got := Canonical("Zanzibar"); got != "Zanzibar" {
		t.Errorf("Canonical of unregistered name = %q", got)
	}
	// Canonical is idempotent.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		name := PickVariant(rng, "Sara")
		return Canonical(Canonical(name)) == Canonical(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptChangesLongNames(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	changed := 0
	for i := 0; i < 100; i++ {
		out := Corrupt(rng, "Bella")
		if out != "Bella" {
			changed++
		}
		// A single clerical error keeps the length within one rune.
		if diff := len([]rune(out)) - 5; diff < -1 || diff > 1 {
			t.Errorf("Corrupt(Bella) = %q: length off by %d", out, diff)
		}
	}
	if changed < 80 {
		t.Errorf("Corrupt changed only %d/100", changed)
	}
	if got := Corrupt(rng, "Al"); got != "Al" {
		t.Errorf("short names must be untouched, got %q", got)
	}
}

func TestCorruptDeterministicUnderSeed(t *testing.T) {
	a := Corrupt(rand.New(rand.NewSource(5)), "Margarete")
	b := Corrupt(rand.New(rand.NewSource(5)), "Margarete")
	if a != b {
		t.Errorf("Corrupt not deterministic: %q vs %q", a, b)
	}
}

func TestPickVariantStaysInClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		v := PickVariant(rng, "Rivka")
		if !SameClass("Rivka", v) {
			t.Errorf("PickVariant escaped the class: %q", v)
		}
	}
}

func TestGenderCodes(t *testing.T) {
	if Male == Female {
		t.Error("gender codes must differ")
	}
	if Male != "0" || Female != "1" {
		t.Errorf("paper encoding is G 0/G 1, got %q/%q", Male, Female)
	}
}

func TestNicknameClassesDisjointEnough(t *testing.T) {
	// A variant claimed by two classes silently resolves to one; make
	// sure every canonical resolves to itself.
	for canon := range nicknameClasses {
		if got := Canonical(canon); !strings.EqualFold(got, canon) {
			t.Errorf("canonical %q resolves to %q", canon, got)
		}
	}
}
