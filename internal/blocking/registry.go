package blocking

// All returns the ten baseline blockers with their survey-default
// configurations, in Table 10's order.
func All() []Blocker {
	return []Blocker{
		Standard{},
		AttributeClustering{},
		Canopy{},
		ExtendedCanopy{},
		QGrams{},
		ExtendedQGrams{},
		ExtendedSortedNeighborhood{},
		SuffixArrays{},
		ExtendedSuffixArrays{},
		TYPiMatch{},
	}
}

// ByName returns the blocker with the given Table-10 name, or nil.
func ByName(name string) Blocker {
	for _, b := range All() {
		if b.Name() == name {
			return b
		}
	}
	return nil
}
