// Package blocking implements the ten baseline block-building techniques
// of the paper's comparative evaluation (Table 10, following Papadakis et
// al.'s survey): Standard Blocking, Attribute Clustering, Canopy
// Clustering and its extension, Q-Grams and Extended Q-Grams Blocking,
// Extended Sorted Neighborhood, Suffix Arrays and its extension, and
// TYPiMatch. Each produces blocks of collection indices; evaluation runs
// over the distinct pairs the blocks induce.
package blocking

import (
	"repro/internal/eval"
	"repro/internal/record"
)

// Block is a set of collection indices that will be compared pairwise.
type Block struct {
	// Key describes what brought the members together (debugging aid).
	Key string
	// Members are positional indices into the collection.
	Members []int
}

// Blocker is a block-building technique.
type Blocker interface {
	// Name returns the technique's short name as used in Table 10.
	Name() string
	// Block builds the candidate blocks for the collection.
	Block(coll *record.Collection) []Block
}

// MaxBlockShare is the block-purging guard shared by all baselines: blocks
// holding more than this share of the collection are discarded (they carry
// no discriminating power and only inflate the pair count).
const MaxBlockShare = 0.5

// purge drops blocks with fewer than two members or more than
// MaxBlockShare of the collection.
func purge(blocks []Block, n int) []Block {
	limit := int(MaxBlockShare * float64(n))
	if limit < 2 {
		limit = 2
	}
	out := blocks[:0]
	for _, b := range blocks {
		if len(b.Members) >= 2 && len(b.Members) <= limit {
			out = append(out, b)
		}
	}
	return out
}

// Pairs accumulates the distinct pairs induced by the blocks into a
// bitmap over n records.
func Pairs(blocks []Block, n int) *eval.PairBitmap {
	bm := eval.NewPairBitmap(n)
	for _, b := range blocks {
		for i := 0; i < len(b.Members); i++ {
			for j := i + 1; j < len(b.Members); j++ {
				bm.Add(b.Members[i], b.Members[j])
			}
		}
	}
	return bm
}

// EvaluateBlocks scores a blocker's output against the truth pairs (given
// as collection index pairs).
func EvaluateBlocks(blocks []Block, n int, truth [][2]int) eval.Metrics {
	bm := Pairs(blocks, n)
	var m eval.Metrics
	for _, tp := range truth {
		if bm.Has(tp[0], tp[1]) {
			m.TP++
		}
	}
	candidates := bm.Count()
	m.FP = candidates - m.TP
	m.FN = len(truth) - m.TP
	if candidates > 0 {
		m.Precision = float64(m.TP) / float64(candidates)
	}
	if len(truth) > 0 {
		m.Recall = float64(m.TP) / float64(len(truth))
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// keyIndex builds blocks from a key -> members inverted index,
// deterministically ordered by key.
type keyIndex struct {
	keys    []string
	members map[string][]int
}

func newKeyIndex() *keyIndex {
	return &keyIndex{members: make(map[string][]int)}
}

func (k *keyIndex) add(key string, idx int) {
	if _, ok := k.members[key]; !ok {
		k.keys = append(k.keys, key)
	}
	ms := k.members[key]
	if len(ms) > 0 && ms[len(ms)-1] == idx {
		return // consecutive duplicate from multi-valued attributes
	}
	k.members[key] = append(ms, idx)
}

func (k *keyIndex) blocks() []Block {
	out := make([]Block, 0, len(k.keys))
	for _, key := range k.keys {
		out = append(out, Block{Key: key, Members: dedupInts(k.members[key])})
	}
	return out
}

func dedupInts(xs []int) []int {
	seen := make(map[int]struct{}, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
