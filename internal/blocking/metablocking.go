package blocking

import (
	"fmt"
	"sort"
)

// Meta-blocking (Papadakis et al.): comparison cleaning that restructures
// a redundancy-positive block collection into a weighted comparison graph
// and prunes low-evidence edges. The paper performs comparison cleaning
// through classification; meta-blocking is the schema-agnostic
// alternative the survey evaluates, included here as an extension so the
// baselines can be studied with and without it.

// WeightScheme assigns evidence weights to co-occurring record pairs.
type WeightScheme uint8

// The weighting schemes.
const (
	// CBS weights a pair by its number of common blocks.
	CBS WeightScheme = iota
	// JS weights a pair by the Jaccard coefficient of the records'
	// block lists.
	JS
	// ARCS weights a pair by the sum of 1/|b| over common blocks b:
	// small blocks carry more evidence.
	ARCS
)

func (s WeightScheme) String() string {
	switch s {
	case CBS:
		return "CBS"
	case JS:
		return "JS"
	case ARCS:
		return "ARCS"
	}
	return fmt.Sprintf("WeightScheme(%d)", uint8(s))
}

// PruneScheme decides which weighted edges survive.
type PruneScheme uint8

// The pruning schemes.
const (
	// WEP keeps edges above the global mean weight (weight edge
	// pruning).
	WEP PruneScheme = iota
	// WNP keeps, per node, edges above the node's mean weight (weighted
	// node pruning); an edge survives if either endpoint keeps it.
	WNP
)

func (s PruneScheme) String() string {
	if s == WEP {
		return "WEP"
	}
	return "WNP"
}

// MetaBlocking refines a block collection.
type MetaBlocking struct {
	Weight WeightScheme
	Prune  PruneScheme
}

// WeightedPair is one surviving comparison.
type WeightedPair struct {
	A, B   int
	Weight float64
}

// Refine builds the comparison graph of the blocks over n records and
// prunes it, returning the surviving pairs sorted by descending weight.
func (m MetaBlocking) Refine(blocks []Block, n int) []WeightedPair {
	// Per-record block lists for JS; pair accumulators for CBS/ARCS.
	blocksPerRecord := make([]int, n)
	type key struct{ a, b int }
	common := make(map[key]float64)
	cbs := make(map[key]int)
	for _, blk := range blocks {
		for i := 0; i < len(blk.Members); i++ {
			blocksPerRecord[blk.Members[i]]++
			for j := i + 1; j < len(blk.Members); j++ {
				a, b := blk.Members[i], blk.Members[j]
				if a > b {
					a, b = b, a
				}
				k := key{a, b}
				cbs[k]++
				common[k] += 1 / float64(len(blk.Members))
			}
		}
	}

	pairs := make([]WeightedPair, 0, len(cbs))
	for k, c := range cbs {
		var w float64
		switch m.Weight {
		case CBS:
			w = float64(c)
		case JS:
			union := blocksPerRecord[k.a] + blocksPerRecord[k.b] - c
			if union > 0 {
				w = float64(c) / float64(union)
			}
		case ARCS:
			w = common[k]
		}
		pairs = append(pairs, WeightedPair{A: k.a, B: k.b, Weight: w})
	}

	var kept []WeightedPair
	switch m.Prune {
	case WEP:
		mean := 0.0
		for _, p := range pairs {
			mean += p.Weight
		}
		if len(pairs) > 0 {
			mean /= float64(len(pairs))
		}
		for _, p := range pairs {
			if p.Weight > mean {
				kept = append(kept, p)
			}
		}
	case WNP:
		// Node means.
		sum := make([]float64, n)
		cnt := make([]int, n)
		for _, p := range pairs {
			sum[p.A] += p.Weight
			sum[p.B] += p.Weight
			cnt[p.A]++
			cnt[p.B]++
		}
		mean := func(i int) float64 {
			if cnt[i] == 0 {
				return 0
			}
			return sum[i] / float64(cnt[i])
		}
		for _, p := range pairs {
			if p.Weight >= mean(p.A) || p.Weight >= mean(p.B) {
				kept = append(kept, p)
			}
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Weight != kept[j].Weight {
			return kept[i].Weight > kept[j].Weight
		}
		if kept[i].A != kept[j].A {
			return kept[i].A < kept[j].A
		}
		return kept[i].B < kept[j].B
	})
	return kept
}

// EvaluatePairs scores surviving comparisons against truth index pairs.
func EvaluatePairs(pairs []WeightedPair, n int, truth [][2]int) (recall, precision float64) {
	bm := newPairSet(pairs)
	tp := 0
	for _, t := range truth {
		a, b := t[0], t[1]
		if a > b {
			a, b = b, a
		}
		if bm[[2]int{a, b}] {
			tp++
		}
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	if len(pairs) > 0 {
		precision = float64(tp) / float64(len(pairs))
	}
	return recall, precision
}

func newPairSet(pairs []WeightedPair) map[[2]int]bool {
	m := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		m[[2]int{p.A, p.B}] = true
	}
	return m
}
