package blocking

import (
	"fmt"
	"math/rand"

	"repro/internal/record"
)

// Canopy is CaCl: canopy clustering (McCallum et al. 2000). A random seed
// record is drawn from the candidate pool; records within the loose
// similarity threshold of the seed form a block, and those within the
// tight threshold leave the pool, yielding inherently non-overlapping
// block cores. Candidate retrieval uses a q-gram index, as in the survey's
// setup.
type Canopy struct {
	// Loose and Tight are the two similarity thresholds (token Jaccard
	// over item keys); survey-style defaults 0.3 and 0.6.
	Loose, Tight float64
	// Seed fixes the sampling order for reproducibility.
	Seed int64
}

// Name implements Blocker.
func (Canopy) Name() string { return "CaCl" }

// Block implements Blocker.
func (c Canopy) Block(coll *record.Collection) []Block {
	loose, tight := c.thresholds()
	rng := rand.New(rand.NewSource(c.Seed + 1))
	n := coll.Len()

	keys := make([][]string, n)
	for i, r := range coll.Records {
		keys[i] = r.Keys()
	}
	// q-gram candidate index over item keys.
	index := make(map[string][]int)
	for i, ks := range keys {
		for _, k := range ks {
			index[k] = append(index[k], i)
		}
	}

	inPool := make([]bool, n)
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i
		inPool[i] = true
	}
	var blocks []Block
	for len(pool) > 0 {
		pi := rng.Intn(len(pool))
		seed := pool[pi]

		// Candidates: records sharing any item with the seed.
		candSet := map[int]bool{seed: true}
		for _, k := range keys[seed] {
			for _, j := range index[k] {
				candSet[j] = true
			}
		}
		var members []int
		var tightMembers []int
		for j := range candSet {
			sim := jaccardStrings(keys[seed], keys[j])
			if j == seed || sim >= loose {
				members = append(members, j)
				if j == seed || sim >= tight {
					tightMembers = append(tightMembers, j)
				}
			}
		}
		if len(members) >= 2 {
			blocks = append(blocks, Block{Key: fmt.Sprintf("canopy@%d", seed), Members: dedupInts(members)})
		}
		// Remove tight members (always including the seed) from the pool.
		for _, j := range tightMembers {
			inPool[j] = false
		}
		next := pool[:0]
		for _, j := range pool {
			if inPool[j] {
				next = append(next, j)
			}
		}
		pool = next
	}
	return purge(blocks, n)
}

func (c Canopy) thresholds() (loose, tight float64) {
	loose, tight = c.Loose, c.Tight
	if loose <= 0 {
		loose = 0.3
	}
	if tight <= 0 {
		tight = 0.6
	}
	if tight < loose {
		tight = loose
	}
	return loose, tight
}

// ExtendedCanopy is ECaCl: canopy clustering followed by assigning every
// record left blockless to its most similar existing block (Christen
// 2012).
type ExtendedCanopy struct {
	Canopy
}

// Name implements Blocker.
func (ExtendedCanopy) Name() string { return "ECaCl" }

// Block implements Blocker.
func (e ExtendedCanopy) Block(coll *record.Collection) []Block {
	blocks := e.Canopy.Block(coll)
	n := coll.Len()
	assigned := make([]bool, n)
	for _, b := range blocks {
		for _, m := range b.Members {
			assigned[m] = true
		}
	}
	keys := make([][]string, n)
	for i, r := range coll.Records {
		keys[i] = r.Keys()
	}
	for i := 0; i < n; i++ {
		if assigned[i] || len(blocks) == 0 {
			continue
		}
		best, bestSim := -1, -1.0
		for bi := range blocks {
			rep := blocks[bi].Members[0]
			if sim := jaccardStrings(keys[i], keys[rep]); sim > bestSim {
				best, bestSim = bi, sim
			}
		}
		blocks[best].Members = append(blocks[best].Members, i)
	}
	return purge(blocks, n)
}

// jaccardStrings is the token Jaccard over two sorted string sets.
func jaccardStrings(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}
