package blocking

import (
	"strings"

	"repro/internal/record"
)

// SuffixArrays is SuAr: every value contributes its suffixes of length at
// least MinLength as block keys, improving robustness to prefix noise
// (Aizawa & Oyama 2005).
type SuffixArrays struct {
	// MinLength is the minimal suffix length; survey default 6.
	MinLength int
	// MaxBlockSize discards overly common suffixes; survey default 53.
	MaxBlockSize int
}

// Name implements Blocker.
func (SuffixArrays) Name() string { return "SuAr" }

// Block implements Blocker.
func (s SuffixArrays) Block(coll *record.Collection) []Block {
	minLen, maxBlock := s.defaults()
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			for _, suf := range suffixes(it.Value, minLen) {
				idx.add(it.Type.Prefix()+":"+suf, i)
			}
		}
	}
	return purgeSized(idx.blocks(), coll.Len(), maxBlock)
}

func (s SuffixArrays) defaults() (minLen, maxBlock int) {
	minLen = s.MinLength
	if minLen < 1 {
		minLen = 6
	}
	maxBlock = s.MaxBlockSize
	if maxBlock < 2 {
		maxBlock = 53
	}
	return minLen, maxBlock
}

// suffixes returns the lowercase suffixes of v with length >= minLen;
// shorter values yield the whole value.
func suffixes(v string, minLen int) []string {
	rs := []rune(strings.ToLower(v))
	if len(rs) <= minLen {
		return []string{string(rs)}
	}
	var out []string
	for i := 0; i+minLen <= len(rs); i++ {
		out = append(out, string(rs[i:]))
	}
	return out
}

// ExtendedSuffixArrays is ESuAr: all substrings (not only suffixes) of
// length at least MinLength become keys (Christen 2012).
type ExtendedSuffixArrays struct {
	// MinLength is the minimal substring length; survey default 6.
	MinLength int
	// MaxBlockSize discards overly common substrings; survey default 39.
	MaxBlockSize int
}

// Name implements Blocker.
func (ExtendedSuffixArrays) Name() string { return "ESuAr" }

// Block implements Blocker.
func (s ExtendedSuffixArrays) Block(coll *record.Collection) []Block {
	minLen := s.MinLength
	if minLen < 1 {
		minLen = 6
	}
	maxBlock := s.MaxBlockSize
	if maxBlock < 2 {
		maxBlock = 39
	}
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			for _, sub := range substrings(it.Value, minLen) {
				idx.add(it.Type.Prefix()+":"+sub, i)
			}
		}
	}
	return purgeSized(idx.blocks(), coll.Len(), maxBlock)
}

// substrings returns the distinct lowercase substrings of v with length at
// least minLen; shorter values yield the whole value.
func substrings(v string, minLen int) []string {
	rs := []rune(strings.ToLower(v))
	if len(rs) <= minLen {
		return []string{string(rs)}
	}
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < len(rs); i++ {
		for j := i + minLen; j <= len(rs); j++ {
			sub := string(rs[i:j])
			if !seen[sub] {
				seen[sub] = true
				out = append(out, sub)
			}
		}
	}
	return out
}

// purgeSized applies the shared purge plus a technique-specific absolute
// block size cap.
func purgeSized(blocks []Block, n, maxBlock int) []Block {
	blocks = purge(blocks, n)
	out := blocks[:0]
	for _, b := range blocks {
		if len(b.Members) <= maxBlock {
			out = append(out, b)
		}
	}
	return out
}
