package blocking

import (
	"fmt"
	"sort"

	"repro/internal/record"
)

// TYPiMatch (Ma & Tran 2013) learns entity "types" from a token
// co-occurrence graph — tokens that frequently co-occur form type
// clusters — and then applies standard blocking within each type, so a key
// only groups records of the same learned type.
//
// The published method extracts maximal cliques; as documented in
// DESIGN.md we approximate cliques by the connected components of the
// thresholded co-occurrence graph, which preserves the method's behaviour
// on this dataset (types are well separated) at polynomial cost.
type TYPiMatch struct {
	// MinCooc is the minimal co-occurrence count for a graph edge;
	// default 20.
	MinCooc int
	// MinStrength is the minimal conditional co-occurrence probability
	// max(P(a|b), P(b|a)) for an edge; default 0.3.
	MinStrength float64
}

// Name implements Blocker.
func (TYPiMatch) Name() string { return "TYPiMatch" }

// Block implements Blocker.
func (t TYPiMatch) Block(coll *record.Collection) []Block {
	minCooc := t.MinCooc
	if minCooc < 1 {
		minCooc = 20
	}
	minStrength := t.MinStrength
	if minStrength <= 0 {
		minStrength = 0.3
	}

	// Token universe: item-type prefixes are the tokens' namespaces; the
	// co-occurrence graph is over item types (the schema-level "tokens"),
	// which is what type learning recovers on schema-heterogeneous data.
	// Count per-record co-occurrence of item types.
	typeCount := make(map[record.ItemType]int)
	coocCount := make(map[[2]record.ItemType]int)
	for _, r := range coll.Records {
		ts := r.Pattern().Types()
		for _, a := range ts {
			typeCount[a]++
		}
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				coocCount[[2]record.ItemType{ts[i], ts[j]}]++
			}
		}
	}

	// Thresholded edges -> union-find components = learned types.
	parent := make(map[record.ItemType]record.ItemType)
	var find func(x record.ItemType) record.ItemType
	find = func(x record.ItemType) record.ItemType {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b record.ItemType) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for pair, c := range coocCount {
		if c < minCooc {
			continue
		}
		a, b := pair[0], pair[1]
		strength := float64(c) / float64(min(typeCount[a], typeCount[b]))
		if strength >= minStrength {
			union(a, b)
		}
	}

	// A record's learned type is the sorted set of components its item
	// types map to; records sharing a component are of compatible type.
	// Blocking key = (component, item key).
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			comp := find(it.Type)
			idx.add(fmt.Sprintf("t%d|%s", comp, it.Key()), i)
		}
	}
	blocks := idx.blocks()
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].Key < blocks[b].Key })
	return purge(blocks, coll.Len())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
