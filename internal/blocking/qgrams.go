package blocking

import (
	"sort"
	"strings"

	"repro/internal/record"
)

// QGrams is QGBl: every value is decomposed into its character q-grams and
// each (attribute, q-gram) becomes a block key (Gravano et al. 2001).
type QGrams struct {
	// Q is the gram length; survey default 3 (trigrams).
	Q int
}

// Name implements Blocker.
func (QGrams) Name() string { return "QGBl" }

// Block implements Blocker.
func (g QGrams) Block(coll *record.Collection) []Block {
	q := g.Q
	if q < 1 {
		q = 3
	}
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			for _, gram := range grams(it.Value, q) {
				idx.add(it.Type.Prefix()+":"+gram, i)
			}
		}
	}
	return purge(idx.blocks(), coll.Len())
}

// grams returns the distinct lowercase q-grams of a value; values shorter
// than q yield themselves.
func grams(v string, q int) []string {
	rs := []rune(strings.ToLower(v))
	if len(rs) <= q {
		return []string{string(rs)}
	}
	seen := make(map[string]bool)
	var out []string
	for i := 0; i+q <= len(rs); i++ {
		g := string(rs[i : i+q])
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// ExtendedQGrams is EQGBl: q-grams are concatenated into more
// discriminative keys — for a value with k grams, every combination of at
// least ceil(k*T) grams becomes a key (Christen 2012).
type ExtendedQGrams struct {
	// Q is the gram length (default 3).
	Q int
	// T is the combination threshold in (0,1]; survey default 0.8.
	T float64
	// MaxGrams caps the grams considered per value to bound the
	// combinatorial expansion (default 6).
	MaxGrams int
}

// Name implements Blocker.
func (ExtendedQGrams) Name() string { return "EQGBl" }

// Block implements Blocker.
func (g ExtendedQGrams) Block(coll *record.Collection) []Block {
	q := g.Q
	if q < 1 {
		q = 3
	}
	t := g.T
	if t <= 0 || t > 1 {
		t = 0.8
	}
	maxGrams := g.MaxGrams
	if maxGrams < 1 {
		maxGrams = 6
	}
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			gs := grams(it.Value, q)
			if len(gs) > maxGrams {
				gs = gs[:maxGrams]
			}
			minLen := int(float64(len(gs))*t + 0.9999)
			if minLen < 1 {
				minLen = 1
			}
			for _, combo := range combinations(gs, minLen) {
				idx.add(it.Type.Prefix()+":"+combo, i)
			}
		}
	}
	return purge(idx.blocks(), coll.Len())
}

// combinations returns the concatenations of every subset of gs with size
// >= minLen, each subset in original order.
func combinations(gs []string, minLen int) []string {
	var out []string
	total := 1 << uint(len(gs))
	for mask := 1; mask < total; mask++ {
		n := 0
		for i := range gs {
			if mask&(1<<uint(i)) != 0 {
				n++
			}
		}
		if n < minLen {
			continue
		}
		var b strings.Builder
		for i, g := range gs {
			if mask&(1<<uint(i)) != 0 {
				b.WriteString(g)
			}
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}
