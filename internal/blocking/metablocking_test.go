package blocking

import (
	"testing"
)

func TestMetaBlockingImprovesPrecision(t *testing.T) {
	coll, g := smallCollection(t)
	truth := g.Gold.TruePairs()
	truthIdx := make([][2]int, 0, len(truth))
	for _, p := range truth {
		truthIdx = append(truthIdx, [2]int{coll.Index(p.A), coll.Index(p.B)})
	}
	blocks := Standard{}.Block(coll)
	base := EvaluateBlocks(blocks, coll.Len(), truthIdx)

	for _, ws := range []WeightScheme{CBS, JS, ARCS} {
		for _, ps := range []PruneScheme{WEP, WNP} {
			mb := MetaBlocking{Weight: ws, Prune: ps}
			kept := mb.Refine(blocks, coll.Len())
			if len(kept) == 0 {
				t.Fatalf("%v/%v pruned everything", ws, ps)
			}
			recall, precision := EvaluatePairs(kept, coll.Len(), truthIdx)
			t.Logf("%v/%v: pairs=%d recall=%.3f precision=%.5f (StBl baseline precision %.5f)",
				ws, ps, len(kept), recall, precision, base.Precision)
			if precision <= base.Precision {
				t.Errorf("%v/%v precision %.5f did not improve on raw blocks %.5f",
					ws, ps, precision, base.Precision)
			}
			if recall < base.Recall*0.5 {
				t.Errorf("%v/%v recall collapsed: %.3f (raw %.3f)", ws, ps, recall, base.Recall)
			}
		}
	}
}

func TestMetaBlockingWeights(t *testing.T) {
	// Two blocks: {0,1,2} and {0,1}. Pair (0,1) co-occurs twice.
	blocks := []Block{
		{Members: []int{0, 1, 2}},
		{Members: []int{0, 1}},
	}
	weightOf := func(ws WeightScheme, a, b int) float64 {
		for _, p := range (MetaBlocking{Weight: ws, Prune: WNP}).Refine(blocks, 3) {
			if p.A == a && p.B == b {
				return p.Weight
			}
		}
		return -1
	}
	if w := weightOf(CBS, 0, 1); w != 2 {
		t.Errorf("CBS(0,1) = %v, want 2", w)
	}
	// JS(0,1): common 2, blocks(0)=2, blocks(1)=2, union = 2 -> 1.0.
	if w := weightOf(JS, 0, 1); w != 1 {
		t.Errorf("JS(0,1) = %v, want 1", w)
	}
	// ARCS(0,1) = 1/3 + 1/2.
	if w := weightOf(ARCS, 0, 1); w < 0.83 || w > 0.84 {
		t.Errorf("ARCS(0,1) = %v, want ~0.833", w)
	}
}

func TestMetaBlockingWEPDropsWeakEdges(t *testing.T) {
	blocks := []Block{
		{Members: []int{0, 1}},
		{Members: []int{0, 1}},
		{Members: []int{2, 3}},
	}
	kept := MetaBlocking{Weight: CBS, Prune: WEP}.Refine(blocks, 4)
	// Weights: (0,1)=2, (2,3)=1; mean 1.5 -> only (0,1) survives.
	if len(kept) != 1 || kept[0].A != 0 || kept[0].B != 1 {
		t.Errorf("WEP kept %v", kept)
	}
}

func TestMetaBlockingEmpty(t *testing.T) {
	if got := (MetaBlocking{}).Refine(nil, 5); len(got) != 0 {
		t.Errorf("empty refine = %v", got)
	}
	r, p := EvaluatePairs(nil, 5, [][2]int{{0, 1}})
	if r != 0 || p != 0 {
		t.Errorf("empty evaluate = %v, %v", r, p)
	}
}

func TestSchemeNames(t *testing.T) {
	for _, s := range []WeightScheme{CBS, JS, ARCS} {
		if s.String() == "" {
			t.Error("unnamed weight scheme")
		}
	}
	if WEP.String() != "WEP" || WNP.String() != "WNP" {
		t.Error("prune scheme names wrong")
	}
}
