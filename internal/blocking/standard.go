package blocking

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/record"
	"repro/internal/similarity"
)

// Standard is StBl: one block per attribute value shared by more than one
// record (Christen 2012; Papadakis et al. 2013).
type Standard struct{}

// Name implements Blocker.
func (Standard) Name() string { return "StBl" }

// Block implements Blocker.
func (Standard) Block(coll *record.Collection) []Block {
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			idx.add(it.Key(), i)
		}
	}
	return purge(idx.blocks(), coll.Len())
}

// AttributeClustering is ACl: Standard Blocking after clustering similar
// attribute values (e.g. John/Jhon) into one key (Papadakis et al. 2013).
type AttributeClustering struct {
	// Threshold is the Jaro-Winkler similarity above which two values of
	// the same attribute share a cluster. The survey default is 0.9.
	Threshold float64
}

// Name implements Blocker.
func (AttributeClustering) Name() string { return "ACl" }

// Block implements Blocker.
func (a AttributeClustering) Block(coll *record.Collection) []Block {
	th := a.Threshold
	if th == 0 {
		th = 0.9
	}
	// Cluster distinct values per item type by greedy leader clustering:
	// each value joins the first cluster whose representative is within
	// the threshold.
	valueCluster := make(map[string]string) // item key -> cluster key
	perType := make(map[record.ItemType][]string)
	seen := make(map[string]bool)
	for _, r := range coll.Records {
		for _, it := range r.Items {
			k := it.Key()
			if !seen[k] {
				seen[k] = true
				perType[it.Type] = append(perType[it.Type], it.Value)
			}
		}
	}
	for t, values := range perType {
		sort.Strings(values)
		var reps []string
		for _, v := range values {
			lv := strings.ToLower(v)
			assigned := ""
			for _, rep := range reps {
				if similarity.JaroWinkler(lv, strings.ToLower(rep)) >= th {
					assigned = rep
					break
				}
			}
			if assigned == "" {
				reps = append(reps, v)
				assigned = v
			}
			valueCluster[t.Prefix()+":"+v] = fmt.Sprintf("%s:c(%s)", t.Prefix(), assigned)
		}
	}
	idx := newKeyIndex()
	for i, r := range coll.Records {
		for _, it := range r.Items {
			idx.add(valueCluster[it.Key()], i)
		}
	}
	return purge(idx.blocks(), coll.Len())
}

// ExtendedSortedNeighborhood is ESoNe: attribute values are sorted
// alphabetically and a fixed-size window slides over the sorted value
// list; every window yields a block of the records holding any value in it
// (Christen 2012).
type ExtendedSortedNeighborhood struct {
	// Window is the number of consecutive values per block; survey
	// default 3.
	Window int
}

// Name implements Blocker.
func (ExtendedSortedNeighborhood) Name() string { return "ESoNe" }

// Block implements Blocker.
func (e ExtendedSortedNeighborhood) Block(coll *record.Collection) []Block {
	w := e.Window
	if w < 2 {
		w = 3
	}
	// Global sorted list of distinct item keys (value-first so sorting is
	// alphabetical by value, not by attribute).
	holders := make(map[string][]int)
	var keys []string
	for i, r := range coll.Records {
		for _, it := range r.Items {
			k := strings.ToLower(it.Value) + "\x00" + it.Key()
			if _, ok := holders[k]; !ok {
				keys = append(keys, k)
			}
			holders[k] = append(holders[k], i)
		}
	}
	sort.Strings(keys)
	var blocks []Block
	for start := 0; start+w <= len(keys); start++ {
		var members []int
		for _, k := range keys[start : start+w] {
			members = append(members, holders[k]...)
		}
		blocks = append(blocks, Block{
			Key:     fmt.Sprintf("win@%d", start),
			Members: dedupInts(members),
		})
	}
	return purge(blocks, coll.Len())
}
