package blocking

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/record"
)

func smallCollection(t testing.TB) (*record.Collection, *dataset.Generated) {
	t.Helper()
	cfg := dataset.ItalyConfig()
	cfg.Persons = 250
	g, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g.Collection, g
}

func TestAllBlockersRun(t *testing.T) {
	coll, g := smallCollection(t)
	truth := g.Gold.TruePairs()
	truthIdx := make([][2]int, 0, len(truth))
	for _, p := range truth {
		truthIdx = append(truthIdx, [2]int{coll.Index(p.A), coll.Index(p.B)})
	}
	limit := int(MaxBlockShare * float64(coll.Len()))

	for _, b := range All() {
		blocks := b.Block(coll)
		if len(blocks) == 0 {
			t.Errorf("%s produced no blocks", b.Name())
			continue
		}
		for _, blk := range blocks {
			if len(blk.Members) < 2 {
				t.Errorf("%s emitted a singleton block", b.Name())
			}
			if len(blk.Members) > limit {
				t.Errorf("%s emitted an unpurged block of %d", b.Name(), len(blk.Members))
			}
			seen := map[int]bool{}
			for _, m := range blk.Members {
				if m < 0 || m >= coll.Len() {
					t.Fatalf("%s: member %d out of range", b.Name(), m)
				}
				if seen[m] {
					t.Fatalf("%s: duplicate member %d in block %q", b.Name(), m, blk.Key)
				}
				seen[m] = true
			}
		}
		m := EvaluateBlocks(blocks, coll.Len(), truthIdx)
		t.Logf("%-10s recall=%.3f precision=%.5f comparisons=%d", b.Name(), m.Recall, m.Precision, m.TP+m.FP)
		if m.Recall == 0 {
			t.Errorf("%s found no true pairs", b.Name())
		}
	}
}

func TestHighRecallFamilyDominates(t *testing.T) {
	// The value-based techniques (StBl, QGBl, ESoNe and kin) should reach
	// near-total recall on this pre-cleaned data, as in Table 10.
	coll, g := smallCollection(t)
	truth := g.Gold.TruePairs()
	truthIdx := make([][2]int, 0, len(truth))
	for _, p := range truth {
		truthIdx = append(truthIdx, [2]int{coll.Index(p.A), coll.Index(p.B)})
	}
	for _, name := range []string{"StBl", "ACl", "QGBl", "ESoNe"} {
		b := ByName(name)
		m := EvaluateBlocks(b.Block(coll), coll.Len(), truthIdx)
		if m.Recall < 0.95 {
			t.Errorf("%s recall = %.3f, want >= 0.95", name, m.Recall)
		}
	}
}

func TestSuffixFamilyMoreSelective(t *testing.T) {
	coll, g := smallCollection(t)
	truth := g.Gold.TruePairs()
	truthIdx := make([][2]int, 0, len(truth))
	for _, p := range truth {
		truthIdx = append(truthIdx, [2]int{coll.Index(p.A), coll.Index(p.B)})
	}
	stbl := EvaluateBlocks(Standard{}.Block(coll), coll.Len(), truthIdx)
	suar := EvaluateBlocks(SuffixArrays{}.Block(coll), coll.Len(), truthIdx)
	if suar.Precision <= stbl.Precision {
		t.Errorf("SuAr precision %.5f should beat StBl %.5f", suar.Precision, stbl.Precision)
	}
}

func TestByName(t *testing.T) {
	if ByName("StBl") == nil || ByName("TYPiMatch") == nil {
		t.Error("known blockers not found")
	}
	if ByName("nope") != nil {
		t.Error("unknown blocker resolved")
	}
	names := map[string]bool{}
	for _, b := range All() {
		if names[b.Name()] {
			t.Errorf("duplicate blocker name %q", b.Name())
		}
		names[b.Name()] = true
	}
	if len(names) != 10 {
		t.Errorf("expected 10 baselines, got %d", len(names))
	}
}

func TestStandardBlockingExact(t *testing.T) {
	mk := func(id int64, first, last string) *record.Record {
		r := &record.Record{BookID: id}
		r.Add(record.FirstName, first)
		r.Add(record.LastName, last)
		return r
	}
	coll, err := record.NewCollection([]*record.Record{
		mk(1, "Guido", "Foa"),
		mk(2, "Guido", "Levi"),
		mk(3, "Massimo", "Foa"),
		mk(4, "Elsa", "Capelluto"),
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := Standard{}.Block(coll)
	// Expected blocks: F:Guido -> {0,1}, L:Foa -> {0,2}; singleton values purged.
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	bm := Pairs(blocks, coll.Len())
	if !bm.Has(0, 1) || !bm.Has(0, 2) {
		t.Error("expected pairs missing")
	}
	if bm.Has(1, 2) || bm.Has(0, 3) {
		t.Error("unexpected pairs present")
	}
	if bm.Count() != 2 {
		t.Errorf("pair count = %d", bm.Count())
	}
}

func TestAttributeClusteringMergesTypos(t *testing.T) {
	mk := func(id int64, last string) *record.Record {
		r := &record.Record{BookID: id}
		r.Add(record.LastName, last)
		return r
	}
	coll, err := record.NewCollection([]*record.Record{
		mk(1, "Rosenthal"), mk(2, "Rosenthol"), mk(3, "Katz"), mk(4, "Katz"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Standard blocking cannot pair the typo variants...
	bm := Pairs(Standard{}.Block(coll), coll.Len())
	if bm.Has(0, 1) {
		t.Error("StBl paired distinct values")
	}
	// ...but attribute clustering does.
	bm = Pairs(AttributeClustering{Threshold: 0.9}.Block(coll), coll.Len())
	if !bm.Has(0, 1) {
		t.Error("ACl failed to merge Rosenthal/Rosenthol")
	}
	if !bm.Has(2, 3) {
		t.Error("ACl lost the exact match")
	}
}

func TestQGramsPairsOverlappingValues(t *testing.T) {
	mk := func(id int64, last string) *record.Record {
		r := &record.Record{BookID: id}
		r.Add(record.LastName, last)
		return r
	}
	coll, err := record.NewCollection([]*record.Record{
		mk(1, "Kesler"), mk(2, "Kessler"), mk(3, "Postel"),
	})
	if err != nil {
		t.Fatal(err)
	}
	bm := Pairs(QGrams{Q: 3}.Block(coll), coll.Len())
	if !bm.Has(0, 1) {
		t.Error("QGBl failed to pair Kesler/Kessler")
	}
}

func TestSortedNeighborhoodWindowsNeighbors(t *testing.T) {
	mk := func(id int64, last string) *record.Record {
		r := &record.Record{BookID: id}
		r.Add(record.LastName, last)
		return r
	}
	// Alphabetically adjacent values land in one window even without any
	// shared q-gram. (Padding records keep the windowed block under the
	// half-collection purge guard.)
	coll, err := record.NewCollection([]*record.Record{
		mk(1, "Abel"), mk(2, "Abel"), mk(3, "Abele"), mk(4, "Zweig"),
		mk(5, "Mandel"), mk(6, "Nudel"), mk(7, "Ortman"), mk(8, "Perl"),
		mk(9, "Quint"), mk(10, "Rubin"),
	})
	if err != nil {
		t.Fatal(err)
	}
	bm := Pairs(ExtendedSortedNeighborhood{Window: 2}.Block(coll), coll.Len())
	if !bm.Has(0, 2) {
		t.Error("ESoNe failed to window adjacent values")
	}
}

func TestCanopyDeterministicUnderSeed(t *testing.T) {
	coll, _ := smallCollection(t)
	a := Pairs(Canopy{Seed: 3}.Block(coll), coll.Len()).Count()
	b := Pairs(Canopy{Seed: 3}.Block(coll), coll.Len()).Count()
	if a != b {
		t.Errorf("canopy not deterministic: %d vs %d", a, b)
	}
}

func TestExtendedCanopyCoversMore(t *testing.T) {
	coll, _ := smallCollection(t)
	base := Canopy{Seed: 1}
	plain := Pairs(base.Block(coll), coll.Len()).Count()
	ext := Pairs(ExtendedCanopy{Canopy: base}.Block(coll), coll.Len()).Count()
	if ext < plain {
		t.Errorf("ECaCl (%d pairs) should not shrink CaCl (%d)", ext, plain)
	}
}

func TestSuffixesAndSubstrings(t *testing.T) {
	s := suffixes("Capelluto", 6)
	want := []string{"capelluto", "apelluto", "pelluto", "elluto"}
	if len(s) != len(want) {
		t.Fatalf("suffixes = %v", s)
	}
	for i, x := range want {
		if s[i] != x {
			t.Errorf("suffix %d = %q, want %q", i, s[i], x)
		}
	}
	if got := suffixes("Foa", 6); len(got) != 1 || got[0] != "foa" {
		t.Errorf("short suffixes = %v", got)
	}
	subs := substrings("abcdefg", 6)
	if len(subs) != 3 { // abcdef, abcdefg, bcdefg
		t.Errorf("substrings = %v", subs)
	}
}

func TestCombinations(t *testing.T) {
	got := combinations([]string{"ab", "bc", "cd"}, 2)
	// Subsets of size >= 2: {ab,bc},{ab,cd},{bc,cd},{ab,bc,cd}.
	if len(got) != 4 {
		t.Fatalf("combinations = %v", got)
	}
}

func TestEvaluateBlocksEmpty(t *testing.T) {
	m := EvaluateBlocks(nil, 10, [][2]int{{0, 1}})
	if m.Recall != 0 || m.Precision != 0 {
		t.Errorf("empty blocks metrics = %+v", m)
	}
}
