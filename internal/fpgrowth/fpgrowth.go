// Package fpgrowth implements frequent-itemset mining over integer item
// ids using the FP-Growth algorithm (Han et al.), plus the maximal
// frequent itemset (MFI) extraction and the frequent-item pruning rule
// MFIBlocks relies on.
//
// A transaction is a record's deduplicated item-id set; the support of an
// itemset is the number of transactions containing it. An itemset is
// frequent when its support is at least minsup and maximal when no frequent
// strict superset exists.
//
// Item ids must be non-negative and reasonably dense (dictionary-interned
// ids): frequencies, ranks, and the inverted index are all flat slices
// indexed by item id. Trees are flat arenas (tree.go) and maximal mining
// fans out across a worker pool (mfi.go) while staying bit-identical to
// the serial result.
package fpgrowth

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Itemset is one mined itemset with its support count.
type Itemset struct {
	// Items are the item ids, sorted ascending.
	Items []int
	// Support is the number of transactions containing all Items.
	Support int
}

// String renders the itemset for debugging.
func (s Itemset) String() string {
	return fmt.Sprintf("%v(sup=%d)", s.Items, s.Support)
}

// Miner mines frequent itemsets from a fixed transaction database.
type Miner struct {
	txns    *Transactions
	maxItem int // largest item id seen; -1 when empty
	// Pruned items are excluded from mining entirely (the paper prunes
	// the most frequent .03% of items).
	pruned []bool
	// Metrics, when set, receives tree-build and mining timings plus
	// mined-itemset counts (fpgrowth_* families). Nil disables.
	Metrics *telemetry.Registry
	// Trace, when set, parents the per-call tree-build/mine spans and
	// the per-worker fan-out spans. Callers that mine repeatedly (the
	// MFIBlocks minsup loop) re-point it at each iteration's span; nil
	// traces nothing.
	Trace *trace.Span
	// Workers bounds the goroutines MineMaximal fans the top-level header
	// items out to: 0 means GOMAXPROCS, 1 runs the exact serial path. The
	// mined MFIs are bit-identical for every worker count.
	Workers int
	// Shards, when > 1, splits maximal mining into that many shard-local
	// FP-trees over contiguous structural-rank ranges instead of one
	// monolithic tree: each shard's tree holds only the transaction
	// prefixes its owned items need, so peak tree memory is the largest
	// shard rather than the whole database. The cross-shard merge
	// (FilterMaximal over the concatenated shard stores) restores global
	// maximality, and the mined MFIs are bit-identical for every shard
	// count. 0 or 1 mines the single global tree.
	Shards int
	// SelfVerify, when set, lazily recounts every merged MFI's support
	// against the inverted index after a sharded mine and panics on any
	// divergence — the audit knob the shard-merge test harness turns on.
	// It builds (and caches) an Index on first use; leave it off in
	// production runs.
	SelfVerify bool
	vIndex     *Index
	// scratch is the reusable root projection tree: projectTree recycles
	// it across calls via the dirty-rank reset instead of allocating a
	// fresh arena per minsup level. It makes repeated mining through one
	// Miner non-reentrant — the MFIBlocks loop already mines sequentially.
	scratch    *flatTree
	scratchBuf []int32
}

// NewMiner builds a miner over the transactions. Each transaction must be
// a set (no duplicate ids) of non-negative item ids; order is irrelevant.
func NewMiner(transactions [][]int) *Miner {
	return NewMinerTxns(FromSlices(transactions))
}

// NewMinerTxns builds a miner directly over an arena-form database,
// sharing it with the caller — the zero-copy entry point for streaming
// callers that assemble the arena incrementally.
func NewMinerTxns(txns *Transactions) *Miner {
	return &Miner{txns: txns, maxItem: txns.MaxItem()}
}

// Prune excludes the given item ids from all subsequent mining.
func (m *Miner) Prune(items []int) {
	if m.pruned == nil {
		m.pruned = make([]bool, m.maxItem+1)
	}
	for _, it := range items {
		if it >= 0 && it < len(m.pruned) {
			m.pruned[it] = true
		}
	}
}

func (m *Miner) isPruned(it int) bool {
	return m.pruned != nil && m.pruned[it]
}

func (m *Miner) workers() int {
	if m.Workers > 0 {
		return m.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Mine returns all frequent itemsets with support >= minsup, over the
// transactions whose indices are in active (nil means all). minsup must be
// at least 1. Singleton itemsets are included.
func (m *Miner) Mine(minsup int, active []int) []Itemset {
	if minsup < 1 {
		minsup = 1
	}
	t0 := time.Now()
	tree, order := m.buildFlatTree(minsup, active, nil)
	m.Metrics.Timer(telemetry.FamilyFPGrowthTreeBuild).Observe(time.Since(t0))
	t1 := time.Now()
	var out []Itemset
	ctx := newMineCtx(order, minsup)
	ctx.mineTree(tree, 0, &out)
	for i := range out {
		sort.Ints(out[i].Items)
	}
	m.Metrics.Timer(telemetry.FamilyFPGrowthMine).Observe(time.Since(t1))
	m.Metrics.Counter("fpgrowth_itemsets_total").Add(int64(len(out)))
	return out
}

// TreeStats builds the rank-ordered FP-tree for the given support level and
// reports its size: the node count (excluding the root) and the number of
// frequent items. It exposes the tree-construction hot path in isolation
// for benchmarks (cmd/yvbench -bench-blocking) and introspection.
func (m *Miner) TreeStats(minsup int, active []int) (nodes, items int) {
	if minsup < 1 {
		minsup = 1
	}
	tree, order := m.buildFlatTree(minsup, active, nil)
	return len(tree.item) - 1, len(order)
}

// frequentOrder computes the per-item occurrence counts over the active
// transactions (adopting freq when the caller maintains them
// incrementally), the descending-frequency rank order of the frequent
// unpruned items, and the item-id → rank table. It is the shared front
// half of both the monolithic and the shard-local tree builds: the rank
// order is a global property, so every shard tree agrees on it.
func (m *Miner) frequentOrder(minsup int, active []int, freq []int) (counts, order []int, rankOf []int32, totalOccurrences int) {
	counts = freq
	if counts == nil {
		counts = make([]int, m.maxItem+1)
		m.txns.forEachActive(active, func(txn []int32) {
			for _, it := range txn {
				counts[it]++
			}
		})
	}
	limit := m.maxItem + 1
	if limit > len(counts) {
		limit = len(counts)
	}
	order = make([]int, 0, limit)
	for it := 0; it < limit; it++ {
		if counts[it] >= minsup && !m.isPruned(it) {
			order = append(order, it)
			totalOccurrences += counts[it]
		}
	}
	// Descending frequency, ascending id on ties: ascending rank is the
	// structural item order on every tree path.
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	rankOf = make([]int32, m.maxItem+1)
	for i := range rankOf {
		rankOf[i] = -1
	}
	for r, it := range order {
		rankOf[it] = int32(r)
	}
	return counts, order, rankOf, totalOccurrences
}

// buildFlatTree constructs the initial FP-tree over frequent items only,
// with items ordered by descending frequency, and returns it together with
// the rank -> item-id order (lower rank = closer to the root on every
// path). When freq is non-nil it must hold the per-item-id occurrence
// counts over the active transactions, sparing the counting pass — the
// incremental path mfiblocks.Run maintains across its minsup iterations.
func (m *Miner) buildFlatTree(minsup int, active []int, freq []int) (*flatTree, []int) {
	_, order, rankOf, totalOccurrences := m.frequentOrder(minsup, active, freq)
	return m.projectTree(active, rankOf, len(order), totalOccurrences), order
}

// projectTree inserts every active transaction's frequent-rank projection
// into the miner's scratch tree over the whole rank universe [0, nRanks).
// Both the monolithic and the shard-local miners mine this one tree:
// conditional mining for a top-level rank only ever descends into ranks
// below it, so the tree doubles as every shard's prefix-closed projection
// at once. The scratch tree is recycled across calls (dirty-rank reset +
// rank-table growth), so each mining call must finish with the returned
// tree before the next one starts — true of every caller, including the
// MFIBlocks minsup loop.
func (m *Miner) projectTree(active []int, rankOf []int32, nRanks, nodeCap int) *flatTree {
	tree := m.scratch
	if tree == nil {
		tree = newFlatTree(nRanks, nodeCap)
		m.scratch = tree
	} else {
		tree.reset()
		tree.growRanks(nRanks)
	}
	if cap(m.scratchBuf) == 0 {
		m.scratchBuf = make([]int32, 0, 32)
	}
	buf := m.scratchBuf
	m.txns.forEachActive(active, func(txn []int32) {
		buf = buf[:0]
		for _, it := range txn {
			if r := rankOf[it]; r >= 0 {
				buf = append(buf, r)
			}
		}
		if len(buf) == 0 {
			return
		}
		// Transactions hold each item at most once, so the rank list is
		// duplicate-free; ascending rank order is the insertion order.
		sortInt32(buf)
		tree.insertPath(buf, 1)
	})
	m.scratchBuf = buf[:0]
	return tree
}

// sortInt32 sorts small rank buffers ascending. Insertion sort beats the
// generic sort for the short, mostly-presorted per-transaction buffers.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// mineTree is the recursive FP-Growth step: for each item in the tree
// (least frequent first), emit suffix+item and recurse into the item's
// conditional tree. Single-path trees short-circuit to combinations.
func (ctx *mineCtx) mineTree(t *flatTree, depth int, out *[]Itemset) {
	if nodes, ok := t.singlePath(ctx.sp[:0]); ok {
		ctx.emitPathCombinations(t, nodes, out)
		ctx.sp = nodes[:0]
		return
	}
	// Items in ascending support order for bottom-up growth, original item
	// id descending on ties (the historical emission order).
	lv := ctx.level(depth)
	items := lv.items[:0]
	for _, r := range t.ranks {
		if t.cnt[r] >= ctx.minsup {
			items = append(items, r)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if t.cnt[items[i]] != t.cnt[items[j]] {
			return t.cnt[items[i]] < t.cnt[items[j]]
		}
		return ctx.order[items[i]] > ctx.order[items[j]]
	})
	lv.items = items
	for _, r := range items {
		newSuffix := make([]int, 0, len(ctx.suffix)+1)
		newSuffix = append(newSuffix, ctx.suffix...)
		newSuffix = append(newSuffix, ctx.order[r])
		*out = append(*out, Itemset{Items: newSuffix, Support: t.cnt[r]})

		cond := ctx.getTree()
		ctx.buildConditional(t, r, cond)
		if len(cond.ranks) > 0 {
			ctx.suffix = append(ctx.suffix, ctx.order[r])
			ctx.mineTree(cond, depth+1, out)
			ctx.suffix = ctx.suffix[:len(ctx.suffix)-1]
		}
		ctx.putTree(cond)
	}
}

// maxSinglePathItems bounds the frequent single-path prefix
// emitPathCombinations will enumerate: a path of n frequent nodes implies
// 2^n-1 itemsets, and the historical `1 << len(path)` mask overflowed int
// at 63 nodes, silently emitting nothing. 62 keeps the mask arithmetic
// exact in a uint64 while staying far beyond anything enumerable in
// practice.
const maxSinglePathItems = 62

// emitPathCombinations emits every non-empty combination of a single-path
// tree's nodes, appended to the current suffix, with the support of the
// deepest node in the combination.
func (ctx *mineCtx) emitPathCombinations(t *flatTree, nodes []int32, out *[]Itemset) {
	// Filter path nodes below minsup (the path is count-monotonic
	// decreasing, so frequent nodes form a prefix).
	n := 0
	for n < len(nodes) && t.count[nodes[n]] >= ctx.minsup {
		n++
	}
	nodes = nodes[:n]
	if len(nodes) > maxSinglePathItems {
		panic(fmt.Sprintf(
			"fpgrowth: single-path tree with %d frequent nodes implies 2^%d-1 itemsets; refusing to enumerate more than 2^%d",
			len(nodes), len(nodes), maxSinglePathItems))
	}
	total := uint64(1) << uint(len(nodes))
	for mask := uint64(1); mask < total; mask++ {
		items := make([]int, 0, len(ctx.suffix)+len(nodes))
		items = append(items, ctx.suffix...)
		sup := 0
		for i := 0; i < len(nodes); i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, ctx.order[t.item[nodes[i]]])
				sup = t.count[nodes[i]] // deepest selected node
			}
		}
		*out = append(*out, Itemset{Items: items, Support: sup})
	}
}
