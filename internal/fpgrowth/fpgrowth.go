// Package fpgrowth implements frequent-itemset mining over integer item
// ids using the FP-Growth algorithm (Han et al.), plus the maximal
// frequent itemset (MFI) extraction and the frequent-item pruning rule
// MFIBlocks relies on.
//
// A transaction is a record's deduplicated item-id set; the support of an
// itemset is the number of transactions containing it. An itemset is
// frequent when its support is at least minsup and maximal when no frequent
// strict superset exists.
package fpgrowth

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Itemset is one mined itemset with its support count.
type Itemset struct {
	// Items are the item ids, sorted ascending.
	Items []int
	// Support is the number of transactions containing all Items.
	Support int
}

// String renders the itemset for debugging.
func (s Itemset) String() string {
	return fmt.Sprintf("%v(sup=%d)", s.Items, s.Support)
}

// fpNode is one FP-tree node.
type fpNode struct {
	item     int
	count    int
	parent   *fpNode
	children map[int]*fpNode
	nextHom  *fpNode // next node holding the same item (header list)
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	headers map[int]*fpNode // item -> first node in header list
	counts  map[int]int     // item -> total support in this tree
}

func newTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: make(map[int]*fpNode)},
		headers: make(map[int]*fpNode),
		counts:  make(map[int]int),
	}
}

// insert adds a transaction (items must be ordered by the tree's item
// order) with the given count.
func (t *fpTree) insert(items []int, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[int]*fpNode)}
			node.children[it] = child
			child.nextHom = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		node = child
	}
}

// singlePath returns the tree's unique path when the tree is a chain, or
// nil.
func (t *fpTree) singlePath() []*fpNode {
	var path []*fpNode
	node := t.root
	for {
		if len(node.children) == 0 {
			return path
		}
		if len(node.children) > 1 {
			return nil
		}
		for _, c := range node.children {
			node = c
		}
		path = append(path, node)
	}
}

// Miner mines frequent itemsets from a fixed transaction database.
type Miner struct {
	transactions [][]int
	// Pruned items are excluded from mining entirely (the paper prunes
	// the most frequent .03% of items).
	pruned map[int]bool
	// Metrics, when set, receives tree-build and mining timings plus
	// mined-itemset counts (fpgrowth_* families). Nil disables.
	Metrics *telemetry.Registry
}

// NewMiner builds a miner over the transactions. Each transaction must be
// a set (no duplicate ids); order is irrelevant.
func NewMiner(transactions [][]int) *Miner {
	return &Miner{transactions: transactions}
}

// Prune excludes the given item ids from all subsequent mining.
func (m *Miner) Prune(items []int) {
	if m.pruned == nil {
		m.pruned = make(map[int]bool, len(items))
	}
	for _, it := range items {
		m.pruned[it] = true
	}
}

// Mine returns all frequent itemsets with support >= minsup, over the
// transactions whose indices are in active (nil means all). minsup must be
// at least 1. Singleton itemsets are included.
func (m *Miner) Mine(minsup int, active []int) []Itemset {
	if minsup < 1 {
		minsup = 1
	}
	t0 := time.Now()
	tree, _ := m.buildTree(minsup, active)
	m.Metrics.Timer("fpgrowth_tree_build_seconds").Observe(time.Since(t0))
	t1 := time.Now()
	var out []Itemset
	mineTree(tree, nil, minsup, &out)
	for i := range out {
		sort.Ints(out[i].Items)
	}
	m.Metrics.Timer("fpgrowth_mine_seconds").Observe(time.Since(t1))
	m.Metrics.Counter("fpgrowth_itemsets_total").Add(int64(len(out)))
	return out
}

// buildTree constructs the initial FP-tree over frequent items only, with
// items ordered by descending frequency. It also returns the structural
// rank of each frequent item (lower rank = closer to the root on every
// path).
func (m *Miner) buildTree(minsup int, active []int) (*fpTree, map[int]int) {
	freq := make(map[int]int)
	forEachActive(m.transactions, active, func(txn []int) {
		for _, it := range txn {
			if !m.pruned[it] {
				freq[it]++
			}
		}
	})
	order := make([]int, 0, len(freq))
	for it, f := range freq {
		if f >= minsup {
			order = append(order, it)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if freq[order[i]] != freq[order[j]] {
			return freq[order[i]] > freq[order[j]]
		}
		return order[i] < order[j]
	})
	rank := make(map[int]int, len(order))
	for i, it := range order {
		rank[it] = i
	}

	tree := newTree()
	buf := make([]int, 0, 32)
	forEachActive(m.transactions, active, func(txn []int) {
		buf = buf[:0]
		for _, it := range txn {
			if _, ok := rank[it]; ok {
				buf = append(buf, it)
			}
		}
		sort.Slice(buf, func(i, j int) bool { return rank[buf[i]] < rank[buf[j]] })
		if len(buf) > 0 {
			tree.insert(buf, 1)
		}
	})
	return tree, rank
}

func forEachActive(txns [][]int, active []int, fn func([]int)) {
	if active == nil {
		for _, t := range txns {
			fn(t)
		}
		return
	}
	for _, i := range active {
		fn(txns[i])
	}
}

// mineTree is the recursive FP-Growth step: for each item in the tree
// (least frequent first), emit suffix+item and recurse into the item's
// conditional tree. Single-path trees short-circuit to combinations.
func mineTree(t *fpTree, suffix []int, minsup int, out *[]Itemset) {
	if path := t.singlePath(); path != nil {
		emitPathCombinations(path, suffix, minsup, out)
		return
	}
	// Items in ascending support order for bottom-up growth.
	items := make([]int, 0, len(t.counts))
	for it, c := range t.counts {
		if c >= minsup {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if t.counts[items[i]] != t.counts[items[j]] {
			return t.counts[items[i]] < t.counts[items[j]]
		}
		return items[i] > items[j]
	})
	for _, it := range items {
		newSuffix := append(append([]int(nil), suffix...), it)
		*out = append(*out, Itemset{Items: newSuffix, Support: t.counts[it]})

		// Build the conditional tree from the prefix paths of `it`,
		// rebuilt to contain only items frequent within it.
		pruned := pruneTree(conditionalTree(t, it), minsup)
		if len(pruned.counts) > 0 {
			mineTree(pruned, newSuffix, minsup, out)
		}
	}
}

// pruneTree rebuilds a conditional tree keeping only items with support >=
// minsup, preserving path counts.
func pruneTree(t *fpTree, minsup int) *fpTree {
	keep := make(map[int]bool, len(t.counts))
	for it, c := range t.counts {
		if c >= minsup {
			keep[it] = true
		}
	}
	out := newTree()
	// Walk all leaf-to-root paths via DFS, reinserting filtered paths.
	var walk func(node *fpNode, path []int)
	walk = func(node *fpNode, path []int) {
		cur := path
		if node.item >= 0 && keep[node.item] {
			cur = append(append([]int(nil), path...), node.item)
		}
		childSum := 0
		for _, c := range node.children {
			childSum += c.count
			walk(c, cur)
		}
		if node.item >= 0 {
			// Count mass terminating at this node.
			if rem := node.count - childSum; rem > 0 && len(cur) > 0 {
				out.insert(cur, rem)
			}
		}
	}
	walk(t.root, nil)
	return out
}

// emitPathCombinations emits every non-empty combination of a single-path
// tree's nodes, appended to suffix, with the support of the deepest node in
// the combination.
func emitPathCombinations(path []*fpNode, suffix []int, minsup int, out *[]Itemset) {
	// Filter path nodes below minsup (the path is count-monotonic
	// decreasing, so frequent nodes form a prefix).
	n := 0
	for n < len(path) && path[n].count >= minsup {
		n++
	}
	path = path[:n]
	total := 1 << uint(len(path))
	for mask := 1; mask < total; mask++ {
		items := append([]int(nil), suffix...)
		sup := 0
		for i := 0; i < len(path); i++ {
			if mask&(1<<uint(i)) != 0 {
				items = append(items, path[i].item)
				sup = path[i].count // deepest selected node
			}
		}
		*out = append(*out, Itemset{Items: items, Support: sup})
	}
}
