package fpgrowth

import (
	"math/bits"
	"slices"
	"sync"
)

// Index is an inverted index from item id to the (ascending) transaction
// indices containing it, used to materialize itemset supports as blocks.
// Dense items — those appearing in at least 1/denseBitsetDivisor of the
// transactions (with a small floor) — additionally carry a word-level
// bitset, so intersections against them are O(1) membership tests or
// whole-word ANDs instead of pairwise sorted-list merges; sparse items keep
// the posting-list path.
type Index struct {
	postings [][]int    // item id -> ascending txn indices; nil when absent
	bits     [][]uint64 // item id -> transaction bitset; nil for sparse items
	words    int        // bitset length: ceil(numTxns/64)
	numTxns  int
}

// denseBitsetDivisor sets the posting-list length at which an item earns a
// bitset: numTxns/denseBitsetDivisor, floored at denseBitsetFloor so tiny
// collections don't pay bitset memory for every item.
const (
	denseBitsetDivisor = 32
	denseBitsetFloor   = 64
)

// BuildIndex indexes the miner's transactions.
func (m *Miner) BuildIndex() *Index {
	numTxns := m.txns.Len()
	idx := &Index{
		postings: make([][]int, m.maxItem+1),
		numTxns:  numTxns,
		words:    (numTxns + 63) / 64,
	}
	// Size each posting list exactly before filling: one counting pass
	// spares the append-doubling garbage of the naive build.
	counts := make([]int, m.maxItem+1)
	for _, it := range m.txns.items {
		counts[it]++
	}
	arena := make([]int, 0, total(counts))
	for it, c := range counts {
		if c > 0 {
			idx.postings[it] = arena[len(arena):len(arena):len(arena)+c]
			arena = arena[:len(arena)+c]
		}
	}
	for ti := 0; ti < numTxns; ti++ {
		for _, it := range m.txns.Txn(ti) {
			idx.postings[it] = append(idx.postings[it], ti)
		}
	}

	cutoff := idx.numTxns / denseBitsetDivisor
	if cutoff < denseBitsetFloor {
		cutoff = denseBitsetFloor
	}
	idx.bits = make([][]uint64, m.maxItem+1)
	for it, ps := range idx.postings {
		if len(ps) < cutoff {
			continue
		}
		b := make([]uint64, idx.words)
		for _, ti := range ps {
			b[ti>>6] |= 1 << uint(ti&63)
		}
		idx.bits[it] = b
	}
	return idx
}

func total(counts []int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// wordScratch recycles the intersection buffers of the all-dense word-AND
// path; SupportSet runs concurrently from the block-building worker pool.
var wordScratch = sync.Pool{New: func() any { return new([]uint64) }}

// SupportSet returns the ascending transaction indices containing every
// item of the itemset. The returned slice is freshly allocated and safe for
// the caller to retain.
func (x *Index) SupportSet(items []int) []int {
	out := x.AppendSupportSet(items, nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppendSupportSet appends the ascending transaction indices containing
// every item of the itemset to dst and returns the extended slice — the
// allocation-free form of SupportSet for callers that recycle member
// buffers across blocks (the materialization hot loop). An empty support
// appends nothing.
func (x *Index) AppendSupportSet(items []int, dst []int) []int {
	if len(items) == 0 {
		return dst
	}
	smallest := -1
	allDense := true
	for _, it := range items {
		if it < 0 || it >= len(x.postings) || len(x.postings[it]) == 0 {
			return dst
		}
		if smallest < 0 || len(x.postings[it]) < len(x.postings[smallest]) {
			smallest = it
		}
		if x.bits[it] == nil {
			allDense = false
		}
	}
	if len(items) == 1 {
		return append(dst, x.postings[smallest]...)
	}
	// When every item is dense and even the smallest posting list is
	// longer than the bitset, whole-word ANDs beat per-element probing.
	if allDense && len(x.postings[smallest]) > x.words {
		return x.appendIntersectWords(items, dst)
	}

	// Driver path: copy the smallest posting list once, then shrink it in
	// place against each remaining item — an O(1) bitset probe for dense
	// items, a sorted merge for sparse ones.
	base := len(dst)
	dst = append(dst, x.postings[smallest]...)
	out := dst[base:]
	for _, it := range items {
		if it == smallest {
			continue
		}
		if b := x.bits[it]; b != nil {
			out = filterBits(out, b)
		} else {
			out = intersectInto(out, x.postings[it])
		}
		if len(out) == 0 {
			return dst[:base]
		}
	}
	return dst[:base+len(out)]
}

// ActiveMask returns a transaction bitset with the active indices set —
// the mask SupportCount needs to recount supports over a mined subset.
// A nil active set (meaning "all transactions") returns a nil mask.
func (x *Index) ActiveMask(active []int) []uint64 {
	if active == nil {
		return nil
	}
	mask := make([]uint64, x.words)
	for _, ti := range active {
		mask[ti>>6] |= 1 << uint(ti&63)
	}
	return mask
}

// SupportCount returns how many transactions in mask (nil = all) contain
// every item of the itemset. This is the lazy cross-shard verification
// primitive: the shard merge recounts only its surviving merged MFIs —
// never the shard-local candidate multiset — against the global index.
func (x *Index) SupportCount(items []int, mask []uint64) int {
	set := x.SupportSet(items)
	if mask == nil {
		return len(set)
	}
	n := 0
	for _, ti := range set {
		if mask[ti>>6]&(1<<uint(ti&63)) != 0 {
			n++
		}
	}
	return n
}

// appendIntersectWords ANDs the bitsets of all items into a pooled scratch
// and appends the surviving transaction indices to dst.
func (x *Index) appendIntersectWords(items []int, dst []int) []int {
	sp := wordScratch.Get().(*[]uint64)
	scratch := *sp
	if cap(scratch) < x.words {
		scratch = make([]uint64, x.words)
	}
	scratch = scratch[:x.words]
	copy(scratch, x.bits[items[0]])
	for _, it := range items[1:] {
		b := x.bits[it]
		for w := range scratch {
			scratch[w] &= b[w]
		}
	}
	n := 0
	for _, w := range scratch {
		n += bits.OnesCount64(w)
	}
	if n > 0 {
		dst = slices.Grow(dst, n)
		for wi, w := range scratch {
			base := wi << 6
			for w != 0 {
				dst = append(dst, base+bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
	*sp = scratch
	wordScratch.Put(sp)
	return dst
}

// filterBits keeps the members of dst whose bit is set, in place.
func filterBits(dst []int, b []uint64) []int {
	k := 0
	for _, ti := range dst {
		if b[ti>>6]&(1<<uint(ti&63)) != 0 {
			dst[k] = ti
			k++
		}
	}
	return dst[:k]
}

// intersectInto intersects dst with the sorted list b, writing the result
// into dst's prefix. Both inputs are ascending.
func intersectInto(dst, b []int) []int {
	i, j, k := 0, 0, 0
	for i < len(dst) && j < len(b) {
		switch {
		case dst[i] == b[j]:
			dst[k] = dst[i]
			k++
			i++
			j++
		case dst[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst[:k]
}
