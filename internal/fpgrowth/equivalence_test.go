package fpgrowth

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// equivTxns builds a randomized transaction database with enough item
// overlap that maximal sets are contested across branches.
func equivTxns(seed int64, n, universe, maxLen int) [][]int {
	rng := rand.New(rand.NewSource(seed))
	txns := make([][]int, n)
	for i := range txns {
		seen := map[int]bool{}
		for k := 0; k < 2+rng.Intn(maxLen); k++ {
			seen[int(float64(universe)*rng.Float64()*rng.Float64())] = true
		}
		for it := range seen {
			txns[i] = append(txns[i], it)
		}
		sort.Ints(txns[i])
	}
	return txns
}

// TestMineMaximalWorkerEquivalence is the blocking engine's core contract:
// the mined MFI list — items, supports, and slice order — is bit-identical
// between the serial path and every fan-out width, across seeds and minsup
// levels.
func TestMineMaximalWorkerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		txns := equivTxns(seed, 600, 300, 12)
		for _, minsup := range []int{2, 3, 5} {
			serial := NewMiner(txns)
			serial.Workers = 1
			want := serial.MineMaximal(minsup, nil)
			for _, workers := range []int{2, 8} {
				m := NewMiner(txns)
				m.Workers = workers
				got := m.MineMaximal(minsup, nil)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed=%d minsup=%d workers=%d: MFIs diverge from serial (%d vs %d sets)",
						seed, minsup, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestMineMaximalActiveSubsetEquivalence repeats the worker equivalence
// over active-subset mining — the shape mfiblocks.Run drives per minsup
// iteration — including the incremental-frequency entry point.
func TestMineMaximalActiveSubsetEquivalence(t *testing.T) {
	txns := equivTxns(5, 400, 200, 10)
	rng := rand.New(rand.NewSource(99))
	active := make([]int, 0, len(txns))
	for i := range txns {
		if rng.Intn(3) != 0 {
			active = append(active, i)
		}
	}
	freq := make([]int, 201)
	for _, i := range active {
		for _, it := range txns[i] {
			freq[it]++
		}
	}
	for _, minsup := range []int{2, 4} {
		serial := NewMiner(txns)
		serial.Workers = 1
		want := serial.MineMaximal(minsup, active)
		for _, workers := range []int{2, 8} {
			m := NewMiner(txns)
			m.Workers = workers
			if got := m.MineMaximal(minsup, active); !reflect.DeepEqual(want, got) {
				t.Fatalf("minsup=%d workers=%d: active-subset MFIs diverge", minsup, workers)
			}
			if got := m.MineMaximalFreq(minsup, active, freq); !reflect.DeepEqual(want, got) {
				t.Fatalf("minsup=%d workers=%d: MineMaximalFreq diverges from recounted MineMaximal", minsup, workers)
			}
		}
	}
}

// TestMineMaximalRunTwiceDeterminism: the same miner must return the same
// slice on repeated parallel calls — no scheduling leak into the output.
func TestMineMaximalRunTwiceDeterminism(t *testing.T) {
	txns := equivTxns(3, 800, 400, 14)
	m := NewMiner(txns)
	m.Workers = 8
	first := m.MineMaximal(3, nil)
	if len(first) == 0 {
		t.Fatal("fixture mined no MFIs")
	}
	for run := 0; run < 3; run++ {
		if again := m.MineMaximal(3, nil); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d: parallel MineMaximal not reproducible", run)
		}
	}
}

// TestMineMaximalParallelMatchesBruteForce anchors the parallel miner to
// ground truth on small instances: FilterMaximal over the brute-force
// frequent sets equals the parallel MFI output exactly.
func TestMineMaximalParallelMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nTxn := 3 + rng.Intn(10)
		nItems := 3 + rng.Intn(7)
		txns := make([][]int, nTxn)
		for i := range txns {
			seen := map[int]bool{}
			for k := 0; k < 1+rng.Intn(nItems); k++ {
				seen[rng.Intn(nItems)] = true
			}
			for it := range seen {
				txns[i] = append(txns[i], it)
			}
			sort.Ints(txns[i])
		}
		minsup := 1 + rng.Intn(3)
		want := FilterMaximal(bruteForce(txns, minsup))
		for i := range want {
			sort.Ints(want[i].Items)
		}
		m := NewMiner(txns)
		m.Workers = 4
		got := m.MineMaximal(minsup, nil)
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: mined %v from infrequent db", trial, got)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (minsup=%d, txns=%v):\nwant %v\ngot  %v", trial, minsup, txns, want, got)
		}
	}
}
