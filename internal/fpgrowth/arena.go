package fpgrowth

import "fmt"

// Transactions is the flat arena form of a transaction database: every
// transaction's item ids live contiguously in one int32 slice, with an
// offsets table delimiting the per-transaction windows. Compared to the
// historical [][]int it removes one pointer and one allocation per
// record — at millions of records that is the difference between a
// cache-linear counting/tree-build pass and a pointer chase — and
// halves the per-item footprint (item ids are dictionary-dense and far
// below 2^31).
//
// Append-only: a streaming caller grows the arena record by record and
// hands it to NewMinerTxns once ingest finishes. Txn returns a
// subslice view into the arena; callers must not retain or mutate it
// across Appends.
type Transactions struct {
	items   []int32
	offsets []int64 // len = Len()+1; txn i spans items[offsets[i]:offsets[i+1]]
	maxItem int     // largest item id seen; -1 when empty
}

// NewTransactions returns an empty arena with room hints for nTxns
// transactions totalling nItems item occurrences. Zero hints are fine.
func NewTransactions(nTxns, nItems int) *Transactions {
	t := &Transactions{
		items:   make([]int32, 0, nItems),
		offsets: make([]int64, 1, nTxns+1),
		maxItem: -1,
	}
	return t
}

// FromSlices copies a [][]int database into arena form — the adapter
// NewMiner uses so existing slice-of-slice callers keep working.
func FromSlices(transactions [][]int) *Transactions {
	total := 0
	for _, txn := range transactions {
		total += len(txn)
	}
	t := NewTransactions(len(transactions), total)
	for _, txn := range transactions {
		t.Append(txn)
	}
	return t
}

// Append adds one transaction (a deduplicated set of non-negative item
// ids; order irrelevant) and returns its index.
func (t *Transactions) Append(txn []int) int {
	for _, it := range txn {
		if it < 0 {
			panic(fmt.Sprintf("fpgrowth: negative item id %d", it))
		}
		if it > t.maxItem {
			t.maxItem = it
		}
		t.items = append(t.items, int32(it))
	}
	t.offsets = append(t.offsets, int64(len(t.items)))
	return len(t.offsets) - 2
}

// Len returns the number of transactions.
func (t *Transactions) Len() int {
	if t == nil {
		return 0
	}
	return len(t.offsets) - 1
}

// Items returns the total number of item occurrences across all
// transactions.
func (t *Transactions) Items() int {
	if t == nil {
		return 0
	}
	return len(t.items)
}

// MaxItem returns the largest item id seen, or -1 when empty.
func (t *Transactions) MaxItem() int {
	if t == nil {
		return -1
	}
	return t.maxItem
}

// Txn returns transaction i as a view into the arena. The view is valid
// until the next Append; callers must not mutate it.
func (t *Transactions) Txn(i int) []int32 {
	return t.items[t.offsets[i]:t.offsets[i+1]]
}

// forEachActive visits the transactions whose indices are in active
// (nil means all), in order.
func (t *Transactions) forEachActive(active []int, fn func([]int32)) {
	if active == nil {
		for i := 0; i < t.Len(); i++ {
			fn(t.Txn(i))
		}
		return
	}
	for _, i := range active {
		fn(t.Txn(i))
	}
}
