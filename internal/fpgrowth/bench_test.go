package fpgrowth

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func benchTxns(n, universe, maxLen int) [][]int {
	rng := rand.New(rand.NewSource(13))
	txns := make([][]int, n)
	for i := range txns {
		seen := map[int]bool{}
		for k := 0; k < 2+rng.Intn(maxLen); k++ {
			// Zipf-ish skew: low ids are common.
			id := int(float64(universe) * rng.Float64() * rng.Float64())
			seen[id] = true
		}
		for it := range seen {
			txns[i] = append(txns[i], it)
		}
		sort.Ints(txns[i])
	}
	return txns
}

func BenchmarkTreeBuild(b *testing.B) {
	txns := benchTxns(2000, 800, 14)
	m := NewMiner(txns)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TreeStats(3, nil)
	}
}

func BenchmarkMineMaximal(b *testing.B) {
	txns := benchTxns(2000, 800, 14)
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			m := NewMiner(txns)
			m.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MineMaximal(3, nil)
			}
		})
	}
}

func BenchmarkMineAll(b *testing.B) {
	txns := benchTxns(800, 500, 10)
	m := NewMiner(txns)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(3, nil)
	}
}

func BenchmarkSupportSet(b *testing.B) {
	txns := benchTxns(5000, 600, 14)
	m := NewMiner(txns)
	idx := m.BuildIndex()
	mfis := m.MineMaximal(4, nil)
	if len(mfis) == 0 {
		b.Fatal("no MFIs to probe")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.SupportSet(mfis[i%len(mfis)].Items)
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	txns := benchTxns(5000, 600, 14)
	m := NewMiner(txns)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BuildIndex()
	}
}
