package fpgrowth

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Shard-local maximal mining. The global structural-rank order
// (descending frequency — a whole-corpus property every shard agrees on)
// is cut into Shards contiguous rank ranges, balanced by item occurrence
// mass. Shard s owns ranks [lo_s, hi_s) and mines only those ranks as
// top-level FPmax suffixes, into its own shard-local MFI store.
//
// All shards mine the one shared projection tree. A per-shard tree —
// active transactions projected to ranks below hi_s — is tempting for
// memory, but prefix closure defeats it: because every owned rank drags
// in its whole prefix of more-frequent ranks, the last shard's tree is
// within a few percent of the monolithic tree (measured at 100K records:
// 603K of ~650K nodes), so peak memory is not reduced while build cost
// and allocation churn are multiplied by the shard count. The shared
// tree IS every shard's projection at once: conditional mining for a
// top-level rank r only ever descends into ranks below r, and the head
// chain of r aggregates the same (prefix, count) multiset whether or not
// transactions without owned ranks were inserted around it. Each shard
// therefore mines exactly what its private tree would have yielded,
// from one build pass instead of Shards.
//
// Why the merge is exact: every frequent itemset X has a unique maximal
// structural rank r(X), and conditional trees only ever contain ranks
// below their head item, so X is minable exactly once — in the shard
// that owns r(X), with its exact global (active-set) support. An itemset
// maximal within its shard may still be subsumed by a superset mined in
// another shard — its store never saw the superset — which is precisely
// the redundancy the cross-shard FilterMaximal sweep removes (the same
// sweep that already reconciles worker-local stores). Both paths reduce
// to the true MFI set with exact supports under the same canonical sort:
// bit-identical.
func (m *Miner) mineMaximalSharded(minsup int, active []int, freq []int) []Itemset {
	t0 := time.Now()
	counts, order, rankOf, totalOcc := m.frequentOrder(minsup, active, freq)
	tsp := m.Trace.Child("tree_build", trace.WithKind(trace.KindSetup))
	tree := m.projectTree(active, rankOf, len(order), totalOcc)
	tsp.Attr("nodes", int64(len(tree.item)-1)).Attr("items", int64(len(order))).End()
	m.Metrics.Timer(telemetry.FamilyFPGrowthTreeBuild).Observe(time.Since(t0))
	t1 := time.Now()
	msp := m.Trace.Child("mine", trace.WithKind(trace.KindOp)).Attr("minsup", int64(minsup))
	defer msp.End()

	bounds := shardBounds(counts, order, totalOcc, m.Shards)
	var sets []Itemset
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo == hi {
			continue
		}
		ssp := msp.Child("mine_shard", trace.WithKind(trace.KindShard)).
			Attr("shard", int64(s)).
			Attr("items", int64(hi-lo))
		// Owned ranks deepest-first — the same serial order the monolithic
		// top loop uses within this range, preserving the store's
		// no-late-subsumption pruning power shard-locally.
		top := make([]int32, 0, hi-lo)
		for r := hi - 1; r >= lo; r-- {
			if tree.cnt[r] >= minsup {
				top = append(top, int32(r))
			}
		}
		shardSets := m.mineTops(ssp, tree, order, top, minsup)
		sets = append(sets, shardSets...)
		ssp.Attr("sets", int64(len(shardSets))).End()
	}
	m.Metrics.Gauge("fpgrowth_mine_shards").Set(float64(m.Shards))

	out := m.finishMaximal(msp, sets, t1)
	if m.SelfVerify {
		m.verifySupports(out, active)
	}
	return out
}

// shardBounds cuts the rank order into at most shards contiguous ranges
// balanced by occurrence mass: boundary s is the first rank whose prefix
// mass reaches s/shards of the total. Boundaries are monotone; ranges
// may be empty when shards exceeds the item count.
func shardBounds(counts, order []int, totalOcc, shards int) []int {
	r := 0
	prefix := 0
	bounds := make([]int, 0, shards+1)
	for s := 0; s < shards; s++ {
		target := totalOcc * s / shards
		for r < len(order) && prefix < target {
			prefix += counts[order[r]]
			r++
		}
		bounds = append(bounds, r)
	}
	bounds = append(bounds, len(order))
	return bounds
}

// verifySupports recounts each merged itemset's support over the active
// transactions against the inverted index — the lazy verification knob:
// only the merged survivors are recounted, never the shard-local
// candidate multiset. A mismatch means the shard merge broke the
// exact-support invariant, which is a programming error, so it panics.
func (m *Miner) verifySupports(sets []Itemset, active []int) {
	if m.vIndex == nil {
		m.vIndex = m.BuildIndex()
	}
	mask := m.vIndex.ActiveMask(active)
	for _, s := range sets {
		if got := m.vIndex.SupportCount(s.Items, mask); got != s.Support {
			panic(fmt.Sprintf("fpgrowth: shard merge support mismatch for %v: mined %d, index recounts %d",
				s.Items, s.Support, got))
		}
	}
}
