package fpgrowth

import "testing"

// The flat-arena rewrite turned tree construction and support-set probes
// from thousands of per-node/map allocations into a handful of slab
// allocations amortized across calls. These guards pin that property so a
// regression back to per-node allocation fails loudly. Bounds are
// generous (the steady-state numbers are far lower) to stay robust
// across Go versions.

func TestTreeBuildAllocs(t *testing.T) {
	txns := benchTxns(2000, 800, 14)
	m := NewMiner(txns)
	m.TreeStats(3, nil) // warm the miner's reusable state
	allocs := testing.AllocsPerRun(20, func() {
		m.TreeStats(3, nil)
	})
	// Steady state is ~25 allocs (tree slabs + header tables). The old
	// pointer-node tree allocated one node per insertion — tens of
	// thousands here.
	if allocs > 64 {
		t.Fatalf("tree build allocates %.0f per run, want <= 64", allocs)
	}
}

func TestSupportSetAllocs(t *testing.T) {
	txns := benchTxns(5000, 600, 14)
	m := NewMiner(txns)
	idx := m.BuildIndex()
	mfis := m.MineMaximal(4, nil)
	if len(mfis) == 0 {
		t.Fatal("no MFIs to probe")
	}
	var i int
	allocs := testing.AllocsPerRun(100, func() {
		idx.SupportSet(mfis[i%len(mfis)].Items)
		i++
	})
	// One allocation for the result slice; scratch words come from a
	// sync.Pool. The posting-list implementation allocated ~10 per probe.
	if allocs > 6 {
		t.Fatalf("SupportSet allocates %.2f per run, want <= 6", allocs)
	}
}
