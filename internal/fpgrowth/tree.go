package fpgrowth

// Flat, arena-style FP-tree. Nodes live in contiguous parallel slices
// indexed by int32 handles (index 0 is always the root), with integer
// parent/child/sibling links instead of per-node maps. Items are stored as
// structural ranks — dense 0..R-1 positions in the root tree's descending
// frequency order — so header tables and per-item totals are rank-indexed
// slices. The layout removes the pointer-chasing and per-node map
// allocations of the original map-based tree: building a tree is a handful
// of slice allocations, and conditional trees are recycled through a
// per-goroutine pool (see mineCtx).

// flatTree is one FP-tree. The zero value is not usable; construct with
// newFlatTree and recycle with reset.
type flatTree struct {
	// Per-node arrays. Index 0 is the root (item -1, no parent).
	item    []int32 // structural rank of the node's item; -1 at the root
	count   []int   // transaction count passing through the node
	parent  []int32 // parent node index; -1 at the root
	child   []int32 // first child node index; -1 when leaf
	sibling []int32 // next sibling under the same parent; -1 at the end
	hlink   []int32 // next node holding the same item (header chain); -1 at the end

	// Rank-indexed tables, length R (the root tree's frequent-item count).
	head    []int32 // rank -> first node in the item's header chain; -1 when absent
	cnt     []int   // rank -> total support of the item in this tree
	rootkid []int32 // rank -> the root's child holding the rank; -1 when absent

	// ranks lists the ranks present in this tree (cnt > 0), in first-touch
	// order. It bounds reset to the dirty entries instead of O(R).
	ranks []int32
}

// newFlatTree returns an empty tree over a universe of nRanks items, with
// node storage preallocated for nodeCap nodes (plus the root).
func newFlatTree(nRanks, nodeCap int) *flatTree {
	t := &flatTree{
		item:    make([]int32, 0, nodeCap+1),
		count:   make([]int, 0, nodeCap+1),
		parent:  make([]int32, 0, nodeCap+1),
		child:   make([]int32, 0, nodeCap+1),
		sibling: make([]int32, 0, nodeCap+1),
		hlink:   make([]int32, 0, nodeCap+1),
		head:    make([]int32, nRanks),
		cnt:     make([]int, nRanks),
		rootkid: make([]int32, nRanks),
	}
	for i := range t.head {
		t.head[i] = -1
		t.rootkid[i] = -1
	}
	t.pushRoot()
	return t
}

func (t *flatTree) pushRoot() {
	t.item = append(t.item, -1)
	t.count = append(t.count, 0)
	t.parent = append(t.parent, -1)
	t.child = append(t.child, -1)
	t.sibling = append(t.sibling, -1)
	t.hlink = append(t.hlink, -1)
}

// reset empties the tree for reuse, clearing only the rank entries the
// previous use touched.
func (t *flatTree) reset() {
	for _, r := range t.ranks {
		t.head[r] = -1
		t.cnt[r] = 0
		t.rootkid[r] = -1
	}
	t.ranks = t.ranks[:0]
	t.item = t.item[:0]
	t.count = t.count[:0]
	t.parent = t.parent[:0]
	t.child = t.child[:0]
	t.sibling = t.sibling[:0]
	t.hlink = t.hlink[:0]
	t.pushRoot()
}

// growRanks widens the rank-indexed tables to cover nRanks, initializing
// only the new tail. Reusing one tree across the MFIBlocks minsup loop
// needs this: lower minsup levels admit more frequent items, so the rank
// universe grows between iterations while reset only clears the entries
// the previous build dirtied.
func (t *flatTree) growRanks(nRanks int) {
	for len(t.head) < nRanks {
		t.head = append(t.head, -1)
		t.cnt = append(t.cnt, 0)
		t.rootkid = append(t.rootkid, -1)
	}
}

// insertPath adds one transaction path (ranks ascending — the structural
// item order) with the given count. Root children are found through the
// rank-indexed rootkid table in O(1); deeper levels use a linear sibling
// scan, whose branching is small in practice.
func (t *flatTree) insertPath(path []int32, count int) {
	node := int32(0)
	for depth, r := range path {
		var c int32 = -1
		if depth == 0 {
			c = t.rootkid[r]
		} else {
			for c = t.child[node]; c != -1 && t.item[c] != r; c = t.sibling[c] {
			}
		}
		if c == -1 {
			c = int32(len(t.item))
			t.item = append(t.item, r)
			t.count = append(t.count, 0)
			t.parent = append(t.parent, node)
			t.child = append(t.child, -1)
			t.sibling = append(t.sibling, t.child[node])
			t.child[node] = c
			if t.head[r] == -1 && t.cnt[r] == 0 {
				t.ranks = append(t.ranks, r)
			}
			t.hlink = append(t.hlink, t.head[r])
			t.head[r] = c
			if depth == 0 {
				t.rootkid[r] = c
			}
		}
		t.count[c] += count
		t.cnt[r] += count
		node = c
	}
}

// singlePath reports whether the tree is a single chain and, when it is,
// appends the chain's node indices (root-side first) to buf.
func (t *flatTree) singlePath(buf []int32) ([]int32, bool) {
	node := int32(0)
	for {
		c := t.child[node]
		if c == -1 {
			return buf, true
		}
		if t.sibling[c] != -1 {
			return buf, false
		}
		buf = append(buf, c)
		node = c
	}
}

// mineCtx is one goroutine's mining state: reusable scratch buffers, a
// conditional-tree pool, and (for maximal mining) the local MFI store.
// Workers never share a ctx; the root tree and the rank->item order are the
// only structures shared across workers, and both are read-only during
// mining.
type mineCtx struct {
	order  []int // rank -> original item id
	minsup int
	store  *mfiStore

	suffix  []int   // current itemset prefix (original item ids), stack-like
	condCnt []int   // rank-indexed conditional counts, cleared via touched
	touched []int32 // ranks dirtied in condCnt during one conditional build
	path    []int32 // one prefix path being inserted
	sp      []int32 // singlePath node scratch
	levels  []levelScratch
	pool    []*flatTree
}

// levelScratch holds the per-recursion-depth buffers that must survive the
// recursive calls made while iterating one tree level.
type levelScratch struct {
	items []int32
	cand  []int
}

func newMineCtx(order []int, minsup int) *mineCtx {
	return &mineCtx{
		order:   order,
		minsup:  minsup,
		condCnt: make([]int, len(order)),
	}
}

// level returns the scratch buffers for recursion depth d.
func (ctx *mineCtx) level(d int) *levelScratch {
	for len(ctx.levels) <= d {
		ctx.levels = append(ctx.levels, levelScratch{})
	}
	return &ctx.levels[d]
}

// getTree pops a recycled conditional tree (or allocates one) sized to the
// root universe.
func (ctx *mineCtx) getTree() *flatTree {
	if n := len(ctx.pool); n > 0 {
		t := ctx.pool[n-1]
		ctx.pool = ctx.pool[:n-1]
		return t
	}
	return newFlatTree(len(ctx.order), 16)
}

// putTree resets a conditional tree and returns it to the pool.
func (ctx *mineCtx) putTree(t *flatTree) {
	t.reset()
	ctx.pool = append(ctx.pool, t)
}

// buildConditional fills out with the conditional tree of rank r in t,
// keeping only items whose conditional support reaches minsup (the
// single-pass equivalent of the old conditionalTree+pruneTree rebuild).
func (ctx *mineCtx) buildConditional(t *flatTree, r int32, out *flatTree) {
	// Pass 1: conditional item counts along r's prefix paths.
	touched := ctx.touched[:0]
	for n := t.head[r]; n != -1; n = t.hlink[n] {
		c := t.count[n]
		for p := t.parent[n]; p != 0; p = t.parent[p] {
			ri := t.item[p]
			if ctx.condCnt[ri] == 0 {
				touched = append(touched, ri)
			}
			ctx.condCnt[ri] += c
		}
	}
	// Pass 2: reinsert each prefix path filtered to the surviving items.
	path := ctx.path
	for n := t.head[r]; n != -1; n = t.hlink[n] {
		path = path[:0]
		for p := t.parent[n]; p != 0; p = t.parent[p] {
			ri := t.item[p]
			if ctx.condCnt[ri] >= ctx.minsup {
				path = append(path, ri)
			}
		}
		if len(path) == 0 {
			continue
		}
		// The parent walk yields ranks leaf-side first (descending);
		// insertion wants ascending rank order.
		for l, rr := 0, len(path)-1; l < rr; l, rr = l+1, rr-1 {
			path[l], path[rr] = path[rr], path[l]
		}
		out.insertPath(path, t.count[n])
	}
	for _, ri := range touched {
		ctx.condCnt[ri] = 0
	}
	ctx.touched = touched[:0]
	ctx.path = path[:0]
}
