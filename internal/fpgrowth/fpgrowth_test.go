package fpgrowth

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// bruteForce enumerates all frequent itemsets by counting every subset of
// the item universe against the transactions (exponential; small inputs
// only).
func bruteForce(txns [][]int, minsup int) []Itemset {
	universe := map[int]bool{}
	for _, t := range txns {
		for _, it := range t {
			universe[it] = true
		}
	}
	var items []int
	for it := range universe {
		items = append(items, it)
	}
	sort.Ints(items)
	var out []Itemset
	total := 1 << uint(len(items))
	for mask := 1; mask < total; mask++ {
		var set []int
		for i, it := range items {
			if mask&(1<<uint(i)) != 0 {
				set = append(set, it)
			}
		}
		sup := 0
		for _, t := range txns {
			if containsAll(t, set) {
				sup++
			}
		}
		if sup >= minsup {
			out = append(out, Itemset{Items: set, Support: sup})
		}
	}
	return out
}

func containsAll(txn, set []int) bool {
	m := make(map[int]bool, len(txn))
	for _, it := range txn {
		m[it] = true
	}
	for _, it := range set {
		if !m[it] {
			return false
		}
	}
	return true
}

func canonical(sets []Itemset) map[string]int {
	m := make(map[string]int, len(sets))
	for _, s := range sets {
		m[keyOf(s.Items)] = s.Support
	}
	return m
}

func keyOf(items []int) string {
	b := make([]byte, 0, len(items)*3)
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), '|')
	}
	return string(b)
}

func TestMineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nTxn := 2 + rng.Intn(12)
		nItems := 2 + rng.Intn(8)
		txns := make([][]int, nTxn)
		for i := range txns {
			seen := map[int]bool{}
			for k := 0; k < 1+rng.Intn(nItems); k++ {
				seen[rng.Intn(nItems)] = true
			}
			for it := range seen {
				txns[i] = append(txns[i], it)
			}
			sort.Ints(txns[i])
		}
		minsup := 1 + rng.Intn(4)

		want := canonical(bruteForce(txns, minsup))
		got := canonical(NewMiner(txns).Mine(minsup, nil))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (minsup=%d, txns=%v):\nwant %d sets\ngot  %d sets\nwant=%v\ngot=%v",
				trial, minsup, txns, len(want), len(got), want, got)
		}
	}
}

func TestMineMaximalProperty(t *testing.T) {
	// Every MFI is frequent, no MFI is subset of another, and every
	// frequent itemset is a subset of some MFI.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTxn := 3 + rng.Intn(10)
		nItems := 3 + rng.Intn(7)
		txns := make([][]int, nTxn)
		for i := range txns {
			seen := map[int]bool{}
			for k := 0; k < 1+rng.Intn(nItems); k++ {
				seen[rng.Intn(nItems)] = true
			}
			for it := range seen {
				txns[i] = append(txns[i], it)
			}
			sort.Ints(txns[i])
		}
		minsup := 1 + rng.Intn(3)
		all := bruteForce(txns, minsup)
		mfis := NewMiner(txns).MineMaximal(minsup, nil)

		freq := canonical(all)
		for _, m := range mfis {
			if sup, ok := freq[keyOf(m.Items)]; !ok || sup != m.Support {
				return false
			}
		}
		for i, a := range mfis {
			for j, b := range mfis {
				if i != j && isSubset(a.Items, b.Items) {
					return false
				}
			}
		}
		for _, s := range all {
			covered := false
			for _, m := range mfis {
				if isSubset(s.Items, m.Items) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMineActiveSubset(t *testing.T) {
	txns := [][]int{{0, 1}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	m := NewMiner(txns)
	// Restricted to the first two transactions, {0,1} has support 2.
	got := m.Mine(2, []int{0, 1})
	found := false
	for _, s := range got {
		if reflect.DeepEqual(s.Items, []int{0, 1}) && s.Support == 2 {
			found = true
		}
		if s.Support < 2 {
			t.Errorf("itemset %v below minsup", s)
		}
	}
	if !found {
		t.Errorf("expected {0,1} support 2 in %v", got)
	}
}

func TestPruneExcludesItems(t *testing.T) {
	txns := [][]int{{0, 1}, {0, 1}, {0, 1}}
	m := NewMiner(txns)
	m.Prune([]int{0})
	for _, s := range m.Mine(1, nil) {
		for _, it := range s.Items {
			if it == 0 {
				t.Fatalf("pruned item 0 appeared in %v", s)
			}
		}
	}
}

func TestSupportSet(t *testing.T) {
	txns := [][]int{{0, 1}, {0, 1, 2}, {1, 2}, {0, 2}}
	idx := NewMiner(txns).BuildIndex()

	got := idx.SupportSet([]int{0, 1})
	if want := []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("SupportSet({0,1}) = %v, want %v", got, want)
	}

	if got := idx.SupportSet([]int{5}); got != nil {
		t.Errorf("unknown item support = %v, want nil", got)
	}
	if got := idx.SupportSet(nil); got != nil {
		t.Errorf("empty itemset support = %v, want nil", got)
	}
	if got := idx.SupportSet([]int{0, 1, 2}); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("SupportSet({0,1,2}) = %v, want [1]", got)
	}
}

// TestSupportSetBitsetPathsAgree forces the dense-bitset paths (membership
// probing and whole-word AND) and checks them against a naive reference
// intersection. The generated collection is large enough that common items
// clear the bitset cutoff while rare items keep the posting-list path.
func TestSupportSetBitsetPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nTxn = 4096
	txns := make([][]int, nTxn)
	for i := range txns {
		seen := map[int]bool{
			rng.Intn(4): true, // a handful of very dense items
		}
		for k := 0; k < 3+rng.Intn(6); k++ {
			seen[4+rng.Intn(200)] = true
		}
		if rng.Intn(64) == 0 {
			seen[300+rng.Intn(8)] = true // sparse tail items
		}
		for it := range seen {
			txns[i] = append(txns[i], it)
		}
		sort.Ints(txns[i])
	}
	idx := NewMiner(txns).BuildIndex()

	naive := func(items []int) []int {
		var out []int
		for ti, txn := range txns {
			if containsAll(txn, items) {
				out = append(out, ti)
			}
		}
		return out
	}
	queries := [][]int{
		{0, 1},          // all dense: word-AND path
		{0, 1, 2, 3},    // all dense, deeper AND
		{0, 301},        // dense + sparse: probe path
		{301, 302},      // all sparse: merge path
		{0, 17, 301},    // mixed
		{2, 42, 99},     // dense driver with mid-frequency items
		{0, 1, 2, 3, 0}, // duplicate item must be harmless
	}
	for _, q := range queries {
		got := idx.SupportSet(q)
		want := naive(q)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SupportSet(%v): got %d txns, want %d (first divergence near %v)",
				q, len(got), len(want), firstDiff(got, want))
		}
	}
}

func firstDiff(a, b []int) [2]int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return [2]int{a[i], b[i]}
		}
	}
	return [2]int{len(a), len(b)}
}

func TestSupportSetMatchesMinedSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	txns := make([][]int, 40)
	for i := range txns {
		seen := map[int]bool{}
		for k := 0; k < 1+rng.Intn(6); k++ {
			seen[rng.Intn(10)] = true
		}
		for it := range seen {
			txns[i] = append(txns[i], it)
		}
		sort.Ints(txns[i])
	}
	m := NewMiner(txns)
	idx := m.BuildIndex()
	for _, s := range m.Mine(2, nil) {
		if got := len(idx.SupportSet(s.Items)); got != s.Support {
			t.Errorf("itemset %v: index support %d != mined support %d", s.Items, got, s.Support)
		}
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	if got := NewMiner(nil).Mine(2, nil); len(got) != 0 {
		t.Errorf("empty db mined %v", got)
	}
	if got := NewMiner([][]int{{}}).Mine(1, nil); len(got) != 0 {
		t.Errorf("empty txn mined %v", got)
	}
	// minsup below 1 is clamped to 1.
	got := NewMiner([][]int{{3}}).Mine(0, nil)
	if len(got) != 1 || got[0].Support != 1 {
		t.Errorf("clamped minsup mined %v", got)
	}
}

// TestSinglePathCombinations exercises the single-path fast path at a size
// where full enumeration is checkable: a 16-item chain yields exactly
// 2^16-1 itemsets, each with the support of its deepest item.
func TestSinglePathCombinations(t *testing.T) {
	path := make([]int, 16)
	for i := range path {
		path[i] = i
	}
	got := NewMiner([][]int{path}).Mine(1, nil)
	if want := 1<<16 - 1; len(got) != want {
		t.Fatalf("single path mined %d itemsets, want %d", len(got), want)
	}
	for _, s := range got {
		if s.Support != 1 {
			t.Fatalf("itemset %v has support %d, want 1", s.Items, s.Support)
		}
	}
}

// TestEmitPathCombinationsOverflowGuard is the regression test for the
// historical `1 << len(path)` int overflow: a single path of >= 63
// frequent nodes used to overflow the mask bound and silently emit
// nothing. The enumeration now refuses loudly instead.
func TestEmitPathCombinationsOverflowGuard(t *testing.T) {
	long := make([]int, 70)
	for i := range long {
		long[i] = i
	}
	m := NewMiner([][]int{long})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Mine over a 70-node single path returned instead of refusing")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "refusing to enumerate") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	m.Mine(1, nil)
}

// TestMineMaximalLongSinglePath: maximal mining never enumerates path
// combinations, so the same 70-item chain must mine fine — one MFI, the
// full path.
func TestMineMaximalLongSinglePath(t *testing.T) {
	long := make([]int, 70)
	for i := range long {
		long[i] = i
	}
	got := NewMiner([][]int{long, long}).MineMaximal(2, nil)
	if len(got) != 1 || len(got[0].Items) != 70 || got[0].Support != 2 {
		t.Fatalf("long-path MFI = %v, want one 70-item set with support 2", got)
	}
}

func TestFilterMaximalKeepsLongest(t *testing.T) {
	in := []Itemset{
		{Items: []int{1}, Support: 5},
		{Items: []int{1, 2}, Support: 3},
		{Items: []int{1, 2, 3}, Support: 2},
		{Items: []int{4}, Support: 2},
	}
	out := FilterMaximal(in)
	if len(out) != 2 {
		t.Fatalf("got %v, want 2 maximal sets", out)
	}
	if !reflect.DeepEqual(out[0].Items, []int{1, 2, 3}) || !reflect.DeepEqual(out[1].Items, []int{4}) {
		t.Errorf("maximal sets = %v", out)
	}
}
