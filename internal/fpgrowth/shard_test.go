package fpgrowth

import (
	"math/rand"
	"reflect"
	"testing"
)

// adversarialTxns is a hand-built database where the shard cut falls
// between {0,1} (owned by the low-rank shard) and item 5 (owned by the
// high-rank shard) under two balanced shards: {0,1} is maximal within
// shard 0 — shard 0 never mines item 5 as a top-level suffix — but at
// minsup 2 it is subsumed globally by {0,1,5}, which only shard 1 can
// mine. The cross-shard FilterMaximal sweep must reconcile them.
//
// Item frequencies: 0:6, 1:6, 2:3, 3:3, 4:2, 5:2 → ranks 0..5 in item
// order; total mass 22, so the 2-shard boundary lands after rank 1.
func adversarialTxns() [][]int {
	return [][]int{
		{0, 1}, {0, 1}, {0, 1}, {0, 1},
		{0, 1, 5}, {0, 1, 5},
		{2, 3}, {2, 3}, {2, 4}, {3, 4},
	}
}

func mineWith(t *testing.T, txns [][]int, shards, workers, minsup int, active []int, verify bool) []Itemset {
	t.Helper()
	m := NewMiner(txns)
	m.Shards = shards
	m.Workers = workers
	m.SelfVerify = verify
	return m.MineMaximal(minsup, active)
}

func containsSet(sets []Itemset, items []int) bool {
	for _, s := range sets {
		if reflect.DeepEqual(s.Items, items) {
			return true
		}
	}
	return false
}

// TestShardMergeRestoresGlobalMaximality pins the adversarial case the
// cross-shard merge exists for: an itemset maximal within its shard but
// subsumed by a superset mined in another shard must not survive, and
// the sharded output must be byte-identical to the monolithic one at
// every minsup level (at minsup 3 the superset {0,1,5} drops below
// support and {0,1} becomes globally maximal — the sweep must keep it).
func TestShardMergeRestoresGlobalMaximality(t *testing.T) {
	txns := adversarialTxns()
	for minsup := 2; minsup <= 5; minsup++ {
		want := mineWith(t, txns, 1, 1, minsup, nil, false)
		for _, shards := range []int{2, 3, 8, 64} {
			got := mineWith(t, txns, shards, 1, minsup, nil, true)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("minsup=%d shards=%d: sharded MFIs diverge\nwant %v\ngot  %v",
					minsup, shards, want, got)
			}
		}
		switch minsup {
		case 2:
			if !containsSet(want, []int{0, 1, 5}) || containsSet(want, []int{0, 1}) {
				t.Fatalf("minsup=2 fixture not adversarial: %v", want)
			}
		case 3:
			if !containsSet(want, []int{0, 1}) || containsSet(want, []int{0, 1, 5}) {
				t.Fatalf("minsup=3 fixture lost {0,1}: %v", want)
			}
		}
	}
}

// TestShardEquivalenceRandomized sweeps mining shards × workers × seeds
// × minsup over contested random databases, asserting byte-identical
// MFIs against the serial monolithic path, with lazy index verification
// recounting every merged support.
func TestShardEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		txns := equivTxns(seed, 600, 300, 12)
		for _, minsup := range []int{2, 3, 5} {
			want := mineWith(t, txns, 1, 1, minsup, nil, false)
			if minsup == 2 && len(want) == 0 {
				t.Fatalf("seed=%d: fixture mined no MFIs", seed)
			}
			for _, shards := range []int{2, 4, 8} {
				for _, workers := range []int{1, 2, 8} {
					got := mineWith(t, txns, shards, workers, minsup, nil, true)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("seed=%d minsup=%d shards=%d workers=%d: sharded MFIs diverge (%d vs %d sets)",
							seed, minsup, shards, workers, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestShardActiveSubsetEquivalence repeats the sweep over active-subset
// mining with incremental frequencies — the exact shape the mfiblocks
// minsup loop drives — so the verification mask path (recounting over
// the active subset, not the whole database) is exercised too.
func TestShardActiveSubsetEquivalence(t *testing.T) {
	txns := equivTxns(5, 400, 200, 10)
	rng := rand.New(rand.NewSource(99))
	active := make([]int, 0, len(txns))
	for i := range txns {
		if rng.Intn(3) != 0 {
			active = append(active, i)
		}
	}
	freq := make([]int, 201)
	for _, i := range active {
		for _, it := range txns[i] {
			freq[it]++
		}
	}
	for _, minsup := range []int{2, 4} {
		serial := NewMiner(txns)
		serial.Workers = 1
		want := serial.MineMaximal(minsup, active)
		for _, shards := range []int{2, 8} {
			m := NewMiner(txns)
			m.Shards = shards
			m.SelfVerify = true
			if got := m.MineMaximal(minsup, active); !reflect.DeepEqual(want, got) {
				t.Fatalf("minsup=%d shards=%d: active-subset sharded MFIs diverge", minsup, shards)
			}
			if got := m.MineMaximalFreq(minsup, active, freq); !reflect.DeepEqual(want, got) {
				t.Fatalf("minsup=%d shards=%d: sharded MineMaximalFreq diverges", minsup, shards)
			}
		}
	}
}

// TestShardBounds pins the partition's invariants: monotone boundaries
// covering [0, len(order)) exactly, stable under shards > items (excess
// shards collapse to empty ranges at the tail).
func TestShardBounds(t *testing.T) {
	counts := []int{6, 6, 3, 3, 2, 2}
	order := []int{0, 1, 2, 3, 4, 5}
	for _, shards := range []int{1, 2, 3, 6, 64} {
		bounds := shardBounds(counts, order, 22, shards)
		if len(bounds) != shards+1 {
			t.Fatalf("shards=%d: %d bounds", shards, len(bounds))
		}
		if bounds[0] != 0 || bounds[len(bounds)-1] != len(order) {
			t.Fatalf("shards=%d: bounds %v do not cover the rank range", shards, bounds)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] < bounds[i-1] {
				t.Fatalf("shards=%d: non-monotone bounds %v", shards, bounds)
			}
		}
	}
	two := shardBounds(counts, order, 22, 2)
	if two[1] != 2 {
		t.Fatalf("2-shard boundary = %d, want 2 (mass-balanced after ranks 0-1)", two[1])
	}
}

// TestSupportCountMask pins the lazy-verification primitive against a
// hand-checked fixture, both whole-database and masked to a subset.
func TestSupportCountMask(t *testing.T) {
	txns := adversarialTxns()
	m := NewMiner(txns)
	idx := m.BuildIndex()
	if got := idx.SupportCount([]int{0, 1}, nil); got != 6 {
		t.Fatalf("SupportCount({0,1}) = %d, want 6", got)
	}
	if got := idx.SupportCount([]int{0, 1, 5}, nil); got != 2 {
		t.Fatalf("SupportCount({0,1,5}) = %d, want 2", got)
	}
	// Mask out one {0,1,5} transaction (index 4) and one {0,1} (index 0).
	active := []int{1, 2, 3, 5, 6, 7, 8, 9}
	mask := idx.ActiveMask(active)
	if got := idx.SupportCount([]int{0, 1}, mask); got != 4 {
		t.Fatalf("masked SupportCount({0,1}) = %d, want 4", got)
	}
	if got := idx.SupportCount([]int{0, 1, 5}, mask); got != 1 {
		t.Fatalf("masked SupportCount({0,1,5}) = %d, want 1", got)
	}
	if idx.ActiveMask(nil) != nil {
		t.Fatal("nil active must yield nil mask")
	}
}
