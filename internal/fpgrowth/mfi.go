package fpgrowth

import (
	"sort"
	"time"
)

// MineMaximal returns only the maximal frequent itemsets: frequent itemsets
// with no frequent strict superset (over the same active transactions and
// minsup). Singleton MFIs are included. Unlike Mine followed by
// FilterMaximal, maximal sets are mined directly (FPmax-style) with
// subsumption pruning, avoiding the exponential enumeration of all
// frequent itemsets.
func (m *Miner) MineMaximal(minsup int, active []int) []Itemset {
	if minsup < 1 {
		minsup = 1
	}
	t0 := time.Now()
	tree, rank := m.buildTree(minsup, active)
	m.Metrics.Timer("fpgrowth_tree_build_seconds").Observe(time.Since(t0))
	t1 := time.Now()
	store := newMFIStore()
	fpmax(tree, nil, minsup, rank, store)
	// Safety net: the structural-order argument guarantees no stored set
	// is subsumed by a later one, but a final maximality sweep is cheap
	// relative to mining and makes the guarantee independent of ordering
	// subtleties.
	out := FilterMaximal(store.sets)
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a].Items, out[b].Items
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	m.Metrics.Timer("fpgrowth_mine_seconds").Observe(time.Since(t1))
	m.Metrics.Counter("fpgrowth_mfis_total").Add(int64(len(out)))
	return out
}

// mfiStore accumulates maximal itemsets with posting-list subsumption
// checks. Processing order (least-frequent header items first) guarantees
// no stored set is ever subsumed by a later one.
type mfiStore struct {
	sets    []Itemset
	posting map[int][]int // item -> indices into sets
}

func newMFIStore() *mfiStore {
	return &mfiStore{posting: make(map[int][]int)}
}

// subsumes reports whether cand (sorted) is a subset of a stored set.
func (s *mfiStore) subsumes(cand []int) bool {
	return subsumed(cand, s.sets, s.posting)
}

// insert adds a candidate if it is not subsumed; items must be sorted.
func (s *mfiStore) insert(items []int, support int) {
	if len(items) == 0 || s.subsumes(items) {
		return
	}
	idx := len(s.sets)
	s.sets = append(s.sets, Itemset{Items: items, Support: support})
	for _, it := range items {
		s.posting[it] = append(s.posting[it], idx)
	}
}

// fpmax mines maximal itemsets from the tree under the given suffix.
// Header items are processed deepest-first (descending structural rank) so
// that an item's conditional tree only contains items processed after it —
// the invariant the store's no-late-subsumption argument relies on.
func fpmax(t *fpTree, suffix []int, minsup int, rank map[int]int, store *mfiStore) {
	if len(t.counts) == 0 {
		return
	}
	if path := t.singlePath(); path != nil {
		// The only maximal candidate from a single path is the full
		// frequent prefix of the path plus the suffix.
		items := append([]int(nil), suffix...)
		support := 0
		for _, n := range path {
			if n.count < minsup {
				break
			}
			items = append(items, n.item)
			support = n.count
		}
		if support > 0 {
			sort.Ints(items)
			store.insert(items, support)
		}
		return
	}
	// Head-union-tail pruning: if suffix plus every frequent item here is
	// already covered, nothing new can emerge from this subtree.
	all := append([]int(nil), suffix...)
	for it, c := range t.counts {
		if c >= minsup {
			all = append(all, it)
		}
	}
	sort.Ints(all)
	if store.subsumes(all) {
		return
	}

	// Process header items deepest-first (descending structural rank).
	items := make([]int, 0, len(t.counts))
	for it, c := range t.counts {
		if c >= minsup {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return rank[items[i]] > rank[items[j]] })
	for _, it := range items {
		newSuffix := append(append([]int(nil), suffix...), it)
		cond := conditionalTree(t, it)
		pruned := pruneTree(cond, minsup)
		if len(pruned.counts) == 0 {
			sorted := append([]int(nil), newSuffix...)
			sort.Ints(sorted)
			store.insert(sorted, t.counts[it])
			continue
		}
		// Subsumption pruning on head ∪ tail of the conditional tree.
		cand := append([]int(nil), newSuffix...)
		for ci := range pruned.counts {
			cand = append(cand, ci)
		}
		sort.Ints(cand)
		if store.subsumes(cand) {
			continue
		}
		fpmax(pruned, newSuffix, minsup, rank, store)
		// The bare newSuffix may itself be maximal when no extension
		// found in the subtree covers it.
		sorted := append([]int(nil), newSuffix...)
		sort.Ints(sorted)
		store.insert(sorted, t.counts[it])
	}
}

// conditionalTree builds the conditional tree of an item from its prefix
// paths.
func conditionalTree(t *fpTree, item int) *fpTree {
	cond := newTree()
	for node := t.headers[item]; node != nil; node = node.nextHom {
		var rev []int
		for p := node.parent; p != nil && p.item >= 0; p = p.parent {
			rev = append(rev, p.item)
		}
		if len(rev) == 0 {
			continue
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		cond.insert(rev, node.count)
	}
	return cond
}

// FilterMaximal removes every itemset that is a strict subset of another
// itemset in the input. Input itemsets must have sorted Items.
func FilterMaximal(sets []Itemset) []Itemset {
	if len(sets) == 0 {
		return nil
	}
	// Longest first: a set can only be subsumed by a longer one.
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(sets[order[a]].Items) > len(sets[order[b]].Items)
	})

	var maximal []Itemset
	posting := make(map[int][]int) // item -> indices into maximal
	for _, idx := range order {
		cand := sets[idx]
		if !subsumed(cand.Items, maximal, posting) {
			mi := len(maximal)
			maximal = append(maximal, cand)
			for _, it := range cand.Items {
				posting[it] = append(posting[it], mi)
			}
		}
	}
	sort.Slice(maximal, func(a, b int) bool {
		x, y := maximal[a].Items, maximal[b].Items
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	return maximal
}

// subsumed reports whether cand (sorted) is a subset of any accepted
// maximal itemset, using the posting list of cand's least-covered item.
func subsumed(cand []int, maximal []Itemset, posting map[int][]int) bool {
	if len(cand) == 0 {
		return len(maximal) > 0
	}
	// Pick the candidate item appearing in the fewest maximal sets.
	best := cand[0]
	for _, it := range cand[1:] {
		if len(posting[it]) < len(posting[best]) {
			best = it
		}
	}
	for _, mi := range posting[best] {
		if isSubset(cand, maximal[mi].Items) {
			return true
		}
	}
	return false
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// Index is an inverted index from item id to the (ascending) transaction
// indices containing it, used to materialize itemset supports as blocks.
type Index struct {
	postings map[int][]int
	numTxns  int
}

// BuildIndex indexes the miner's transactions.
func (m *Miner) BuildIndex() *Index {
	idx := &Index{postings: make(map[int][]int), numTxns: len(m.transactions)}
	for ti, txn := range m.transactions {
		for _, it := range txn {
			idx.postings[it] = append(idx.postings[it], ti)
		}
	}
	return idx
}

// SupportSet returns the ascending transaction indices containing every
// item of the itemset. When mask is non-nil, only transactions with
// mask[i]==true are returned.
func (x *Index) SupportSet(items []int, mask []bool) []int {
	if len(items) == 0 {
		return nil
	}
	// Intersect postings, smallest first.
	lists := make([][]int, len(items))
	for i, it := range items {
		lists[i] = x.postings[it]
		if len(lists[i]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	cur := lists[0]
	for _, next := range lists[1:] {
		cur = intersect(cur, next)
		if len(cur) == 0 {
			return nil
		}
	}
	if mask == nil {
		out := make([]int, len(cur))
		copy(out, cur)
		return out
	}
	out := cur[:0:0]
	for _, ti := range cur {
		if mask[ti] {
			out = append(out, ti)
		}
	}
	return out
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
