package fpgrowth

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// MineMaximal returns only the maximal frequent itemsets: frequent itemsets
// with no frequent strict superset (over the same active transactions and
// minsup). Singleton MFIs are included. Unlike Mine followed by
// FilterMaximal, maximal sets are mined directly (FPmax-style) with
// subsumption pruning, avoiding the exponential enumeration of all
// frequent itemsets.
//
// Mining fans the top-level header items out across Workers goroutines,
// each mining its conditional subtrees into a worker-local MFI store; the
// stores are merged in deterministic worker order and swept by
// FilterMaximal, so the output is bit-identical for every worker count.
func (m *Miner) MineMaximal(minsup int, active []int) []Itemset {
	return m.mineMaximal(minsup, active, nil)
}

// MineMaximalFreq is MineMaximal with caller-supplied item frequencies:
// freq[id] must be the occurrence count of item id over the active
// transactions. Callers that maintain frequencies incrementally (like
// mfiblocks.Run, which decrements counts as records become covered) spare
// the full counting pass a plain MineMaximal performs per call.
func (m *Miner) MineMaximalFreq(minsup int, active []int, freq []int) []Itemset {
	return m.mineMaximal(minsup, active, freq)
}

func (m *Miner) mineMaximal(minsup int, active []int, freq []int) []Itemset {
	if minsup < 1 {
		minsup = 1
	}
	if m.Shards > 1 {
		return m.mineMaximalSharded(minsup, active, freq)
	}
	t0 := time.Now()
	// KindSetup: node and item counts describe the build, not the mined
	// workload — keeping the build spans out of the Canonical tree is
	// what lets every shard count canonicalize identically.
	tsp := m.Trace.Child("tree_build", trace.WithKind(trace.KindSetup))
	tree, order := m.buildFlatTree(minsup, active, freq)
	tsp.Attr("nodes", int64(len(tree.item)-1)).Attr("items", int64(len(order))).End()
	m.Metrics.Timer(telemetry.FamilyFPGrowthTreeBuild).Observe(time.Since(t0))
	t1 := time.Now()
	msp := m.Trace.Child("mine", trace.WithKind(trace.KindOp)).Attr("minsup", int64(minsup))
	defer msp.End()

	// Top-level header items deepest-first (descending structural rank):
	// an item's conditional tree only contains items processed after it in
	// the serial order — the invariant the store's no-late-subsumption
	// argument relies on. The root tree holds exactly the frequent items,
	// so every rank is a top-level item.
	top := make([]int32, 0, len(order))
	for r := len(order) - 1; r >= 0; r-- {
		if tree.cnt[r] >= minsup {
			top = append(top, int32(r))
		}
	}

	sets := m.mineTops(msp, tree, order, top, minsup)

	// Maximality sweep over the merged candidates. For Workers=1 this is
	// the historical safety net (the structural-order argument already
	// guarantees no stored set is subsumed by a later one); for Workers>1
	// it also removes the cross-worker redundancy, making the output
	// independent of the fan-out.
	return m.finishMaximal(msp, sets, t1)
}

// finishMaximal is the merge tail shared by the monolithic and
// shard-local paths: the global maximality sweep, the canonical sort,
// mining metrics, and the mine span's workload attribute. Because both
// paths feed their candidate stores through the same sweep and sort,
// the returned MFIs are bit-identical however the candidates were
// produced.
func (m *Miner) finishMaximal(msp *trace.Span, sets []Itemset, t1 time.Time) []Itemset {
	out := FilterMaximal(sets)
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a].Items, out[b].Items
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	m.Metrics.Timer(telemetry.FamilyFPGrowthMine).Observe(time.Since(t1))
	m.Metrics.Counter("fpgrowth_mfis_total").Add(int64(len(out)))
	msp.Attr("mfis", int64(len(out)))
	return out
}

// mineTops runs the FPmax top-item loop over the given top-level ranks
// of tree (already ordered deepest-first), fanning the items out across
// the worker pool with worker-local MFI stores, and returns the
// concatenated candidate sets in deterministic worker order. The caller
// owns the final FilterMaximal sweep; both the monolithic and the
// shard-local paths feed it through here.
func (m *Miner) mineTops(parent *trace.Span, tree *flatTree, order []int, top []int32, minsup int) []Itemset {
	workers := m.workers()
	if workers > len(top) {
		workers = len(top)
	}
	m.Metrics.Gauge(telemetry.FamilyFPGrowthWorkers).Set(float64(workers))

	var sets []Itemset
	switch {
	case len(top) == 0:
		// No frequent items: nothing to mine.
	case workers <= 1:
		ctx := newMineCtx(order, minsup)
		ctx.store = newMFIStore()
		for _, r := range top {
			ctx.mineTopItem(tree, r)
		}
		sets = ctx.store.sets
	default:
		// Deterministic round-robin assignment: worker w owns top[w],
		// top[w+W], ... — contiguous chunks would hand all the cheap
		// deep-rank items to one worker and the expensive shallow ones to
		// another. Each worker keeps the serial deepest-first order within
		// its share, preserving most of the store's subsumption-pruning
		// power; cross-worker redundancy is swept by FilterMaximal.
		stores := make([]*mfiStore, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wsp := parent.Child("mine_worker", trace.WithKind(trace.KindWorker), trace.WithTrack(w+1))
				ctx := newMineCtx(order, minsup)
				ctx.store = newMFIStore()
				for i := w; i < len(top); i += workers {
					ctx.mineTopItem(tree, top[i])
				}
				stores[w] = ctx.store
				wsp.Attr("sets", int64(len(ctx.store.sets))).End()
			}(w)
		}
		wg.Wait()
		t2 := time.Now()
		total := 0
		for _, s := range stores {
			total += len(s.sets)
		}
		sets = make([]Itemset, 0, total)
		for _, s := range stores {
			sets = append(sets, s.sets...)
		}
		m.Metrics.Timer(telemetry.FamilyFPGrowthMerge).Observe(time.Since(t2))
	}
	return sets
}

// mineTopItem runs one top-level item of the FPmax loop: build the item's
// conditional tree, apply head-union-tail subsumption pruning, recurse,
// and record the suffix itself when nothing extends it.
func (ctx *mineCtx) mineTopItem(t *flatTree, r int32) {
	cond := ctx.getTree()
	ctx.buildConditional(t, r, cond)
	if len(cond.ranks) == 0 {
		ctx.store.insert([]int{ctx.order[r]}, t.cnt[r])
		ctx.putTree(cond)
		return
	}
	lv := ctx.level(0)
	cand := append(lv.cand[:0], ctx.order[r])
	for _, cr := range cond.ranks {
		cand = append(cand, ctx.order[cr])
	}
	sort.Ints(cand)
	lv.cand = cand
	if ctx.store.subsumes(cand) {
		ctx.putTree(cond)
		return
	}
	ctx.suffix = append(ctx.suffix[:0], ctx.order[r])
	ctx.fpmax(cond, 1)
	ctx.suffix = ctx.suffix[:0]
	ctx.putTree(cond)
	ctx.store.insert([]int{ctx.order[r]}, t.cnt[r])
}

// fpmax mines maximal itemsets from the (conditional) tree under the
// current ctx.suffix. Header items are processed deepest-first (descending
// structural rank). Every item present in a conditional tree is frequent
// by construction (buildConditional filters), so no support check is
// needed when gathering the level's items.
func (ctx *mineCtx) fpmax(t *flatTree, depth int) {
	if nodes, ok := t.singlePath(ctx.sp[:0]); ok {
		// The only maximal candidate from a single path is the full
		// frequent prefix of the path plus the suffix.
		items := make([]int, 0, len(ctx.suffix)+len(nodes))
		items = append(items, ctx.suffix...)
		support := 0
		for _, n := range nodes {
			if t.count[n] < ctx.minsup {
				break
			}
			items = append(items, ctx.order[t.item[n]])
			support = t.count[n]
		}
		ctx.sp = nodes[:0]
		if support > 0 {
			sort.Ints(items)
			ctx.store.insert(items, support)
		}
		return
	}
	lv := ctx.level(depth)
	// Head-union-tail pruning: if suffix plus every item here is already
	// covered, nothing new can emerge from this subtree.
	all := append(lv.cand[:0], ctx.suffix...)
	for _, r := range t.ranks {
		all = append(all, ctx.order[r])
	}
	sort.Ints(all)
	lv.cand = all
	if ctx.store.subsumes(all) {
		return
	}

	// Process header items deepest-first (descending structural rank).
	items := append(lv.items[:0], t.ranks...)
	sort.Slice(items, func(i, j int) bool { return items[i] > items[j] })
	lv.items = items
	for _, r := range items {
		cond := ctx.getTree()
		ctx.buildConditional(t, r, cond)
		if len(cond.ranks) == 0 {
			sorted := make([]int, 0, len(ctx.suffix)+1)
			sorted = append(sorted, ctx.suffix...)
			sorted = append(sorted, ctx.order[r])
			sort.Ints(sorted)
			ctx.store.insert(sorted, t.cnt[r])
			ctx.putTree(cond)
			continue
		}
		// Subsumption pruning on head ∪ tail of the conditional tree.
		cand := append(lv.cand[:0], ctx.suffix...)
		cand = append(cand, ctx.order[r])
		for _, cr := range cond.ranks {
			cand = append(cand, ctx.order[cr])
		}
		sort.Ints(cand)
		lv.cand = cand
		if ctx.store.subsumes(cand) {
			ctx.putTree(cond)
			continue
		}
		ctx.suffix = append(ctx.suffix, ctx.order[r])
		ctx.fpmax(cond, depth+1)
		ctx.suffix = ctx.suffix[:len(ctx.suffix)-1]
		ctx.putTree(cond)
		// The bare suffix+item may itself be maximal when no extension
		// found in the subtree covers it.
		sorted := make([]int, 0, len(ctx.suffix)+1)
		sorted = append(sorted, ctx.suffix...)
		sorted = append(sorted, ctx.order[r])
		sort.Ints(sorted)
		ctx.store.insert(sorted, t.cnt[r])
	}
}

// mfiStore accumulates maximal itemsets with posting-list subsumption
// checks. Processing order (least-frequent header items first) guarantees
// no stored set is ever subsumed by a later one within a single worker.
type mfiStore struct {
	sets    []Itemset
	posting map[int][]int // item -> indices into sets
}

func newMFIStore() *mfiStore {
	return &mfiStore{posting: make(map[int][]int)}
}

// subsumes reports whether cand (sorted) is a subset of a stored set.
func (s *mfiStore) subsumes(cand []int) bool {
	return subsumed(cand, s.sets, s.posting)
}

// insert adds a candidate if it is not subsumed; items must be sorted.
func (s *mfiStore) insert(items []int, support int) {
	if len(items) == 0 || s.subsumes(items) {
		return
	}
	idx := len(s.sets)
	s.sets = append(s.sets, Itemset{Items: items, Support: support})
	for _, it := range items {
		s.posting[it] = append(s.posting[it], idx)
	}
}

// FilterMaximal removes every itemset that is a strict subset of another
// itemset in the input. Input itemsets must have sorted Items.
func FilterMaximal(sets []Itemset) []Itemset {
	if len(sets) == 0 {
		return nil
	}
	// Longest first: a set can only be subsumed by a longer (or equal,
	// i.e. duplicate) one.
	order := make([]int, len(sets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(sets[order[a]].Items) > len(sets[order[b]].Items)
	})

	var maximal []Itemset
	posting := make(map[int][]int) // item -> indices into maximal
	for _, idx := range order {
		cand := sets[idx]
		if !subsumed(cand.Items, maximal, posting) {
			mi := len(maximal)
			maximal = append(maximal, cand)
			for _, it := range cand.Items {
				posting[it] = append(posting[it], mi)
			}
		}
	}
	sort.Slice(maximal, func(a, b int) bool {
		x, y := maximal[a].Items, maximal[b].Items
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
	return maximal
}

// subsumed reports whether cand (sorted) is a subset of any accepted
// maximal itemset, using the posting list of cand's least-covered item.
func subsumed(cand []int, maximal []Itemset, posting map[int][]int) bool {
	if len(cand) == 0 {
		return len(maximal) > 0
	}
	// Pick the candidate item appearing in the fewest maximal sets.
	best := cand[0]
	for _, it := range cand[1:] {
		if len(posting[it]) < len(posting[best]) {
			best = it
		}
	}
	for _, mi := range posting[best] {
		if isSubset(cand, maximal[mi].Items) {
			return true
		}
	}
	return false
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}
