package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

func randWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(10)
	b := make([]rune, n)
	for i := range b {
		b[i] = rune('a' + rng.Intn(6))
	}
	return string(b)
}

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444},
		{"DIXON", "DICKSONX", 0.766667},
		{"JELLYFISH", "SMELLYFISH", 0.896296},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Jaro(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.961111) > 1e-5 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %v", got)
	}
	if got := JaroWinkler("Bella", "Della"); got <= 0.8 || got >= 1 {
		t.Errorf("JaroWinkler(Bella,Della) = %v, want in (0.8,1)", got)
	}
}

func TestStringSimilarityProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randWord(rng), randWord(rng)
		for _, fn := range []func(string, string) float64{Jaro, JaroWinkler, JaccardTokens} {
			s := fn(a, b)
			if s < 0 || s > 1 {
				return false
			}
			if math.Abs(fn(a, b)-fn(b, a)) > 1e-12 {
				return false
			}
			if fn(a, a) != 1 {
				return false
			}
		}
		q := JaccardQGrams(a, b, 2)
		if q < 0 || q > 1 || JaccardQGrams(a, a, 2) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyStringEdges(t *testing.T) {
	if Jaro("", "") != 1 || JaroWinkler("", "") != 1 {
		t.Error("empty-empty should be 1")
	}
	if Jaro("", "abc") != 0 || Jaro("abc", "") != 0 {
		t.Error("empty vs non-empty should be 0")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"Bella", "Della", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a, b, c := randWord(rng), randWord(rng), randWord(rng)
		if Levenshtein(a, c) > Levenshtein(a, b)+Levenshtein(b, c) {
			t.Fatalf("triangle violated for %q %q %q", a, b, c)
		}
	}
}

func TestJaccardIntSets(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{nil, nil, 1},
		{[]int{1}, nil, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{[]int{1, 2}, []int{1, 2}, 1},
		{[]int{1}, []int{2}, 0},
	}
	for _, c := range cases {
		if got := JaccardIntSets(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JaccardIntSets(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQGramsPadding(t *testing.T) {
	g := QGrams("ab", 2)
	for _, want := range []string{"#a", "ab", "b#"} {
		if _, ok := g[want]; !ok {
			t.Errorf("QGrams(ab,2) missing %q: %v", want, g)
		}
	}
}

func TestDateDist(t *testing.T) {
	if d, ok := DateDist("1920", "1936"); !ok || d != 16 {
		t.Errorf("DateDist(1920,1936) = %v, %v", d, ok)
	}
	if _, ok := DateDist("19x0", "1936"); ok {
		t.Error("unparseable date must fail")
	}
}

type fakeGeo struct{ km float64 }

func (f fakeGeo) Distance(a, b string) (float64, bool) {
	if a == "unknown" || b == "unknown" {
		return 0, false
	}
	if a == b {
		return 0, true
	}
	return f.km, true
}

func TestItemSimEq1(t *testing.T) {
	s := ItemSim{Geo: fakeGeo{km: 9}}
	item := func(ty record.ItemType, v string) record.Item { return record.Item{Type: ty, Value: v} }

	// Different types are dissimilar.
	if got := s.Compare(item(record.FirstName, "Guido"), item(record.LastName, "Guido")); got != 0 {
		t.Errorf("cross-type sim = %v", got)
	}
	// Names use Jaro-Winkler.
	if got := s.Compare(item(record.FirstName, "Guido"), item(record.FirstName, "Guido")); got != 1 {
		t.Errorf("same-name sim = %v", got)
	}
	// Years: 1 - diff/50.
	if got := s.Compare(item(record.BirthYear, "1920"), item(record.BirthYear, "1930")); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("year sim = %v, want 0.8", got)
	}
	// Months: 1 - diff/12.
	if got := s.Compare(item(record.BirthMonth, "1"), item(record.BirthMonth, "7")); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("month sim = %v, want 0.5", got)
	}
	// Days: 1 - diff/31.
	if got := s.Compare(item(record.BirthDay, "1"), item(record.BirthDay, "32")); math.Abs(got-0) > 1e-12 {
		t.Errorf("day sim = %v, want 0", got)
	}
	// Geo: max(0, 1 - km/100) over cities.
	if got := s.Compare(item(record.BirthCity, "Torino"), item(record.BirthCity, "Moncalieri")); math.Abs(got-0.91) > 1e-12 {
		t.Errorf("geo sim = %v, want 0.91", got)
	}
	// Unknown city falls back to exact match.
	if got := s.Compare(item(record.BirthCity, "unknown"), item(record.BirthCity, "unknown")); got != 1 {
		t.Errorf("unknown-city exact fallback = %v", got)
	}
	// Non-city place parts use exact match.
	if got := s.Compare(item(record.BirthCountry, "Italy"), item(record.BirthCountry, "Italy")); got != 1 {
		t.Errorf("country exact = %v", got)
	}
	// Unparseable years score 0.
	if got := s.Compare(item(record.BirthYear, "abc"), item(record.BirthYear, "1930")); got != 0 {
		t.Errorf("bad year sim = %v", got)
	}
	// Gender codes exact.
	if got := s.Compare(item(record.Gender, "0"), item(record.Gender, "1")); got != 0 {
		t.Errorf("gender mismatch sim = %v", got)
	}
}

func TestItemSimNilGeoFallsBack(t *testing.T) {
	s := ItemSim{}
	a := record.Item{Type: record.BirthCity, Value: "Torino"}
	b := record.Item{Type: record.BirthCity, Value: "Torino"}
	if got := s.Compare(a, b); got != 1 {
		t.Errorf("nil-geo same city = %v", got)
	}
}

func TestItemSimRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := ItemSim{Geo: fakeGeo{km: rng.Float64() * 300}}
		types := []record.ItemType{record.FirstName, record.BirthYear, record.BirthMonth, record.BirthDay, record.BirthCity, record.Gender}
		ty := types[rng.Intn(len(types))]
		a := record.Item{Type: ty, Value: randWord(rng)}
		b := record.Item{Type: ty, Value: randWord(rng)}
		got := s.Compare(a, b)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
