package similarity

import (
	"slices"
	"strings"
	"sync"
)

// Interner assigns dense uint32 IDs to distinct strings. The scoring
// stage interns every q-gram and lowered name value once per run, so
// set operations over them become integer merges instead of string-map
// probes. IDs are only meaningful within one Interner: equal IDs ⇔
// equal strings, and any set comparison built on that equivalence
// (Jaccard, subset, equality) is independent of the order IDs were
// handed out — which is why concurrent interning keeps every output
// deterministic.
//
// Interner is safe for concurrent use.
type Interner struct {
	mu  sync.RWMutex
	ids map[string]uint32
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the ID for s, assigning the next free one on first
// sight.
func (in *Interner) Intern(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	id = uint32(len(in.ids))
	// Clone so the map key never pins a larger backing string (grams
	// arrive as substrings of padded buffers).
	in.ids[strings.Clone(s)] = id
	return id
}

// Len returns the number of distinct strings interned so far.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}

// QGramIDs returns the distinct padded q-grams of s (exactly QGrams's
// gram set) as interned IDs, sorted ascending — the representation
// JaccardSortedIDs consumes. ASCII inputs slice the padded string
// byte-wise, so the only allocations are the padded buffer and the
// result slice.
func QGramIDs(in *Interner, s string, q int) []uint32 {
	if q < 1 {
		q = 1
	}
	padded := paddedLower(s, q)
	if isASCII(padded) {
		n := len(padded) - q + 1
		if n <= 0 {
			return nil
		}
		ids := make([]uint32, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, in.Intern(padded[i:i+q]))
		}
		return sortedUnique(ids)
	}
	rs := []rune(padded)
	n := len(rs) - q + 1
	if n <= 0 {
		return nil
	}
	ids := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, in.Intern(string(rs[i:i+q])))
	}
	return sortedUnique(ids)
}

// InternSet interns each string lowered and returns the distinct IDs
// sorted ascending — the interned form of a name-value set.
func InternSet(in *Interner, vs []string) []uint32 {
	ids := make([]uint32, 0, len(vs))
	for _, v := range vs {
		ids = append(ids, in.Intern(strings.ToLower(v)))
	}
	return sortedUnique(ids)
}

func sortedUnique(ids []uint32) []uint32 {
	slices.Sort(ids)
	return slices.Compact(ids)
}

// JaccardSortedIDs returns the Jaccard coefficient of two sorted
// strictly-increasing ID slices via a branch-light merge intersection.
// Over IDs produced by the same Interner it equals JaccardSets over the
// underlying string sets exactly.
func JaccardSortedIDs(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x == y {
			inter++
		}
		if x <= y {
			i++
		}
		if y <= x {
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}
