// Package similarity implements the string, date, and geographic similarity
// measures the paper's pipeline relies on: Jaro and Jaro–Winkler, Jaccard
// over tokens and q-grams, Levenshtein, normalized birth-date component
// distances, and the expert item similarity of Eq. 1.
//
// The string kernels run on two tiers. The common path — pure-ASCII
// inputs, which is what the pipeline's lowered name and place values
// are — indexes the strings byte-wise and borrows its working memory
// from a pooled scratch, so steady-state calls allocate nothing. Any
// non-ASCII byte falls back to the rune-correct reference path, which
// produces bit-identical results for ASCII inputs (the fuzz suite in
// fuzz_test.go pins the two tiers against each other).
package similarity

import (
	"slices"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"
)

// isASCII reports whether s contains only single-byte (ASCII) runes, in
// which case byte indexing and rune indexing coincide.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// kernelScratch is the pooled working memory of the string kernels: the
// Jaro match flags and the Levenshtein rows. One scratch serves one call
// at a time; the pool keeps steady-state kernel calls allocation-free.
type kernelScratch struct {
	flags []bool
	rows  []int
}

var scratchPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// matchFlags returns two zeroed bool slices of lengths la and lb backed
// by the scratch's shared buffer.
func (sc *kernelScratch) matchFlags(la, lb int) ([]bool, []bool) {
	n := la + lb
	if cap(sc.flags) < n {
		sc.flags = make([]bool, n)
	}
	buf := sc.flags[:n]
	clear(buf)
	return buf[:la:la], buf[la:]
}

// intRows returns two int slices of length n backed by the scratch's
// shared buffer. Contents are unspecified; callers initialize them.
func (sc *kernelScratch) intRows(n int) ([]int, []int) {
	if cap(sc.rows) < 2*n {
		sc.rows = make([]int, 2*n)
	}
	buf := sc.rows[:2*n]
	return buf[:n:n], buf[n:]
}

// jaroWindow is the Jaro matching window for rune counts la, lb ≥ 1:
// max(la,lb)/2 - 1, floored at 0. The floor falls out of the arithmetic
// (Go integer division truncates toward zero, so the only negative
// case — two single-rune strings, (1-2)/2 — already yields 0) instead
// of a clamp branch.
func jaroWindow(la, lb int) int {
	return (max(la, lb) - 2) / 2
}

// Jaro returns the Jaro similarity of two strings in [0,1]. Empty strings
// are similar (1) to each other and dissimilar (0) to non-empty strings.
func Jaro(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if isASCII(a) && isASCII(b) {
		return jaroASCII(a, b)
	}
	return jaroRunes([]rune(a), []rune(b))
}

// jaroASCII is the byte-indexed fast path; a and b are non-empty ASCII.
func jaroASCII(a, b string) float64 {
	la, lb := len(a), len(b)
	sc := scratchPool.Get().(*kernelScratch)
	matchA, matchB := sc.matchFlags(la, lb)
	window := jaroWindow(la, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && a[i] == b[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		scratchPool.Put(sc)
		return 0
	}
	// Count transpositions between the matched subsequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	scratchPool.Put(sc)
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// jaroRunes is the rune-correct reference path; ra and rb are non-empty.
// The arithmetic mirrors jaroASCII step for step, so the two tiers agree
// bit for bit on ASCII inputs.
func jaroRunes(ra, rb []rune) float64 {
	la, lb := len(ra), len(rb)
	sc := scratchPool.Get().(*kernelScratch)
	matchA, matchB := sc.matchFlags(la, lb)
	window := jaroWindow(la, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		scratchPool.Put(sc)
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	scratchPool.Put(sc)
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity with the standard prefix
// scale 0.1 and prefix cap 4.
func JaroWinkler(a, b string) float64 {
	const (
		prefixScale = 0.1
		prefixCap   = 4
	)
	j := Jaro(a, b)
	l := 0
	if isASCII(a) && isASCII(b) {
		for l < len(a) && l < len(b) && l < prefixCap && a[l] == b[l] {
			l++
		}
	} else {
		ra, rb := []rune(a), []rune(b)
		for l < len(ra) && l < len(rb) && l < prefixCap && ra[l] == rb[l] {
			l++
		}
	}
	return j + float64(l)*prefixScale*(1-j)
}

// Levenshtein returns the edit distance between two strings (in runes).
func Levenshtein(a, b string) int {
	if isASCII(a) && isASCII(b) {
		return levenshteinASCII(a, b)
	}
	return levenshteinRunes([]rune(a), []rune(b))
}

// levenshteinASCII is the byte-indexed fast path over pooled rows.
func levenshteinASCII(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	sc := scratchPool.Get().(*kernelScratch)
	prev, cur := sc.intRows(lb + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	d := prev[lb]
	scratchPool.Put(sc)
	return d
}

// levenshteinRunes is the rune-correct reference path.
func levenshteinRunes(ra, rb []rune) int {
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	sc := scratchPool.Get().(*kernelScratch)
	prev, cur := sc.intRows(lb + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		ca := ra[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ca == rb[j-1] {
				cost = 0
			}
			cur[j] = min(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	d := prev[lb]
	scratchPool.Put(sc)
	return d
}

// JaccardTokens returns the Jaccard coefficient of the whitespace-token
// sets of two strings, case-insensitive.
func JaccardTokens(a, b string) float64 {
	return jaccard(tokenSet(a), tokenSet(b))
}

func tokenSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		set[tok] = struct{}{}
	}
	return set
}

// paddedLower returns s lowercased and padded with q-1 '#' on both sides —
// the shared input of every q-gram representation in this package.
func paddedLower(s string, q int) string {
	pad := strings.Repeat("#", q-1)
	return pad + strings.ToLower(s) + pad
}

// QGrams returns the padded q-gram multiset of a string as a set of
// distinct grams (padding with q-1 '#' on both sides, lowercased).
func QGrams(s string, q int) map[string]struct{} {
	if q < 1 {
		q = 1
	}
	padded := paddedLower(s, q)
	rs := []rune(padded)
	set := make(map[string]struct{})
	for i := 0; i+q <= len(rs); i++ {
		set[string(rs[i:i+q])] = struct{}{}
	}
	return set
}

// JaccardQGrams returns the Jaccard coefficient of two strings' q-gram
// sets.
func JaccardQGrams(a, b string, q int) float64 {
	return jaccard(QGrams(a, q), QGrams(b, q))
}

// JaccardSets returns the Jaccard coefficient of two precomputed string
// sets. JaccardSets(QGrams(a, q), QGrams(b, q)) equals
// JaccardQGrams(a, b, q) exactly — the map-based reference the interned
// representation (Interner/QGramIDs/JaccardSortedIDs) is fuzzed against.
func JaccardSets(a, b map[string]struct{}) float64 {
	return jaccard(a, b)
}

func jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// JaccardIntSets returns the Jaccard coefficient of two sorted int slices.
// Both must be strictly increasing.
func JaccardIntSets(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// QGramsList returns the distinct padded q-grams of a string as a sorted
// slice — the same grams as QGrams, derived directly (slice, sort,
// compact) instead of through a throwaway map.
func QGramsList(s string, q int) []string {
	if q < 1 {
		q = 1
	}
	padded := paddedLower(s, q)
	rs := []rune(padded)
	n := len(rs) - q + 1
	if n <= 0 {
		return []string{}
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, string(rs[i:i+q]))
	}
	sort.Strings(out)
	return slices.Compact(out)
}
