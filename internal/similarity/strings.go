// Package similarity implements the string, date, and geographic similarity
// measures the paper's pipeline relies on: Jaro and Jaro–Winkler, Jaccard
// over tokens and q-grams, Levenshtein, normalized birth-date component
// distances, and the expert item similarity of Eq. 1.
package similarity

import (
	"sort"
	"strings"
)

// Jaro returns the Jaro similarity of two strings in [0,1]. Empty strings
// are similar (1) to each other and dissimilar (0) to non-empty strings.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the matched subsequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro–Winkler similarity with the standard prefix
// scale 0.1 and prefix cap 4.
func JaroWinkler(a, b string) float64 {
	const (
		prefixScale = 0.1
		prefixCap   = 4
	)
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	l := 0
	for l < len(ra) && l < len(rb) && l < prefixCap && ra[l] == rb[l] {
		l++
	}
	return j + float64(l)*prefixScale*(1-j)
}

// Levenshtein returns the edit distance between two strings.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// JaccardTokens returns the Jaccard coefficient of the whitespace-token
// sets of two strings, case-insensitive.
func JaccardTokens(a, b string) float64 {
	return jaccard(tokenSet(a), tokenSet(b))
}

func tokenSet(s string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, tok := range strings.Fields(strings.ToLower(s)) {
		set[tok] = struct{}{}
	}
	return set
}

// QGrams returns the padded q-gram multiset of a string as a set of
// distinct grams (padding with q-1 '#' on both sides, lowercased).
func QGrams(s string, q int) map[string]struct{} {
	if q < 1 {
		q = 1
	}
	pad := strings.Repeat("#", q-1)
	padded := pad + strings.ToLower(s) + pad
	rs := []rune(padded)
	set := make(map[string]struct{})
	for i := 0; i+q <= len(rs); i++ {
		set[string(rs[i:i+q])] = struct{}{}
	}
	return set
}

// JaccardQGrams returns the Jaccard coefficient of two strings' q-gram
// sets.
func JaccardQGrams(a, b string, q int) float64 {
	return jaccard(QGrams(a, q), QGrams(b, q))
}

// JaccardSets returns the Jaccard coefficient of two precomputed string
// sets. JaccardSets(QGrams(a, q), QGrams(b, q)) equals
// JaccardQGrams(a, b, q) exactly — the profile cache in internal/features
// relies on this to snapshot q-gram sets once per record.
func JaccardSets(a, b map[string]struct{}) float64 {
	return jaccard(a, b)
}

func jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// JaccardIntSets returns the Jaccard coefficient of two sorted int slices.
// Both must be strictly increasing.
func JaccardIntSets(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// QGramsList returns the distinct padded q-grams of a string as an
// ordered slice (same grams as QGrams).
func QGramsList(s string, q int) []string {
	set := QGrams(s, q)
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
