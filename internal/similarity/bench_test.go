package similarity

import (
	"testing"

	"repro/internal/record"
)

func BenchmarkJaro(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Jaro("Capelluto", "Capeluto")
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaroWinkler("Rosenthal", "Rosenthol")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein("Mandelbaum", "Mandelboim")
	}
}

func BenchmarkJaccardQGrams(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaccardQGrams("Ottolenghi", "Ottolengi", 2)
	}
}

// BenchmarkJaccardInterned measures the steady-state scoring path: gram
// IDs already interned per record, pair time is a merge intersection.
func BenchmarkJaccardInterned(b *testing.B) {
	in := NewInterner()
	ga := QGramIDs(in, "Ottolenghi", 2)
	gb := QGramIDs(in, "Ottolengi", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaccardSortedIDs(ga, gb)
	}
}

// BenchmarkQGramIDs measures per-record gram interning (profile build
// time, paid once per record rather than once per pair).
func BenchmarkQGramIDs(b *testing.B) {
	in := NewInterner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QGramIDs(in, "Ottolenghi", 2)
	}
}

func BenchmarkItemSimGeo(b *testing.B) {
	s := ItemSim{Geo: fakeGeo{km: 9}}
	x := record.Item{Type: record.BirthCity, Value: "Torino"}
	y := record.Item{Type: record.BirthCity, Value: "Moncalieri"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Compare(x, y)
	}
}
