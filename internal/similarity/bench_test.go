package similarity

import (
	"testing"

	"repro/internal/record"
)

func BenchmarkJaro(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Jaro("Capelluto", "Capeluto")
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaroWinkler("Rosenthal", "Rosenthol")
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein("Mandelbaum", "Mandelboim")
	}
}

func BenchmarkJaccardQGrams(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JaccardQGrams("Ottolenghi", "Ottolengi", 2)
	}
}

func BenchmarkItemSimGeo(b *testing.B) {
	s := ItemSim{Geo: fakeGeo{km: 9}}
	x := record.Item{Type: record.BirthCity, Value: "Torino"}
	y := record.Item{Type: record.BirthCity, Value: "Moncalieri"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Compare(x, y)
	}
}
