package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestJaroShortStrings pins the len ≤ 1 edge cases the window arithmetic
// must handle without a negative clamp: two single-rune strings have a
// zero matching window, so only equal runes match.
func TestJaroShortStrings(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"a", "a", 1},
		{"a", "b", 0},
		{"a", "ab", (1.0 + 0.5 + 1.0) / 3},
		{"ab", "a", (0.5 + 1.0 + 1.0) / 3},
		{"é", "é", 1}, // single non-ASCII rune
		{"é", "e", 0},
		{"a", "", 0},
		{"", "", 1},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Jaro(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if rev := Jaro(c.b, c.a); rev != Jaro(c.a, c.b) {
			t.Errorf("Jaro(%q, %q) asymmetric", c.a, c.b)
		}
	}
}

// TestJaroWinklerShortStrings covers the prefix boost on tiny inputs.
func TestJaroWinklerShortStrings(t *testing.T) {
	if got := JaroWinkler("a", "a"); got != 1 {
		t.Errorf("JaroWinkler(a,a) = %v, want 1", got)
	}
	if got := JaroWinkler("a", "b"); got != 0 {
		t.Errorf("JaroWinkler(a,b) = %v, want 0", got)
	}
	// One shared prefix rune: jaro=0.8333…, boosted by 0.1*(1-j).
	j := Jaro("a", "ab")
	want := j + 0.1*(1-j)
	if got := JaroWinkler("a", "ab"); math.Abs(got-want) > 1e-15 {
		t.Errorf("JaroWinkler(a,ab) = %v, want %v", got, want)
	}
}

// TestJaroWindowArithmetic checks the clamp-free window formula against
// the defining expression for every plausible length.
func TestJaroWindowArithmetic(t *testing.T) {
	for la := 1; la <= 40; la++ {
		for lb := 1; lb <= 40; lb++ {
			want := max(la, lb)/2 - 1
			if want < 0 {
				want = 0
			}
			if got := jaroWindow(la, lb); got != want {
				t.Fatalf("jaroWindow(%d, %d) = %d, want %d", la, lb, got, want)
			}
		}
	}
}

// TestLevenshteinUnicode checks the rune fallback counts runes, not
// bytes.
func TestLevenshteinUnicode(t *testing.T) {
	if got := Levenshtein("héllo", "hello"); got != 1 {
		t.Errorf("Levenshtein(héllo, hello) = %d, want 1", got)
	}
	if got := Levenshtein("", "héllo"); got != 5 {
		t.Errorf("Levenshtein(\"\", héllo) = %d, want 5 runes", got)
	}
}

// TestQGramsListDirect checks the directly-derived list matches QGrams'
// set: sorted, deduplicated, identical membership.
func TestQGramsListDirect(t *testing.T) {
	for _, s := range []string{"", "a", "aaaa", "Capelluto", "héllo", "##"} {
		for q := 1; q <= 4; q++ {
			list := QGramsList(s, q)
			set := QGrams(s, q)
			if len(list) != len(set) {
				t.Fatalf("QGramsList(%q, %d) has %d grams, QGrams has %d", s, q, len(list), len(set))
			}
			for i, g := range list {
				if _, ok := set[g]; !ok {
					t.Fatalf("QGramsList(%q, %d) gram %q not in QGrams", s, q, g)
				}
				if i > 0 && list[i-1] >= g {
					t.Fatalf("QGramsList(%q, %d) not strictly sorted at %d: %v", s, q, i, list)
				}
			}
		}
	}
	// q clamps to 1 exactly like QGrams.
	if got := QGramsList("ab", 0); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("QGramsList(ab, 0) = %v", got)
	}
}

// TestInterner checks ID stability, distinctness, and Len.
func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("surname")
	if got := in.Intern("surname"); got != a {
		t.Errorf("re-interning changed the ID: %d vs %d", got, a)
	}
	b := in.Intern("city")
	if b == a {
		t.Error("distinct strings share an ID")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}

// TestInternerConcurrent hammers one interner from many goroutines; every
// goroutine must observe the same ID for the same string.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers = 8
	words := make([]string, 200)
	for i := range words {
		words[i] = fmt.Sprintf("w%03d", i%50) // heavy duplication
	}
	got := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, len(words))
			for i, s := range words {
				ids[i] = in.Intern(s)
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(got[0], got[w]) {
			t.Fatalf("worker %d observed different IDs", w)
		}
	}
	if in.Len() != 50 {
		t.Errorf("Len = %d, want 50 distinct words", in.Len())
	}
}

// TestInternSet checks lowering, dedup, and sortedness.
func TestInternSet(t *testing.T) {
	in := NewInterner()
	ids := InternSet(in, []string{"John", "JOHN", "Harris", "john"})
	if len(ids) != 2 {
		t.Fatalf("InternSet kept %d IDs, want 2 distinct lowered values", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("InternSet not strictly sorted: %v", ids)
		}
	}
}

// TestJaccardSortedIDs mirrors the JaccardIntSets table over uint32 IDs.
func TestJaccardSortedIDs(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{nil, nil, 1},
		{[]uint32{1}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 0.5},
		{[]uint32{1, 2}, []uint32{1, 2}, 1},
		{[]uint32{1}, []uint32{2}, 0},
	}
	for _, c := range cases {
		if got := JaccardSortedIDs(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JaccardSortedIDs(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestKernelAllocs guards the zero-allocation contract of the ASCII fast
// paths and the interned merge: the pooled scratch must absorb every
// working buffer. testing.AllocsPerRun warms the pool with one
// unmeasured call first.
func TestKernelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race (sync.Pool drops items)")
	}
	if n := testing.AllocsPerRun(200, func() { Jaro("Capelluto", "Capeluto") }); n != 0 {
		t.Errorf("Jaro allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { JaroWinkler("Rosenthal", "Rosenthol") }); n != 0 {
		t.Errorf("JaroWinkler allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { Levenshtein("Mandelbaum", "Mandelboim") }); n != 0 {
		t.Errorf("Levenshtein allocates %v per op, want 0", n)
	}
	in := NewInterner()
	ga := QGramIDs(in, "Ottolenghi", 2)
	gb := QGramIDs(in, "Ottolengi", 2)
	if n := testing.AllocsPerRun(200, func() { JaccardSortedIDs(ga, gb) }); n != 0 {
		t.Errorf("JaccardSortedIDs allocates %v per op, want 0", n)
	}
	// Long strings exercise the scratch-growth path once, then reuse.
	long1 := randASCII(300, 1)
	long2 := randASCII(300, 2)
	if n := testing.AllocsPerRun(50, func() { Jaro(long1, long2) }); n != 0 {
		t.Errorf("Jaro(long) allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { Levenshtein(long1, long2) }); n != 0 {
		t.Errorf("Levenshtein(long) allocates %v per op, want 0", n)
	}
}

func randASCII(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

// TestKernelsConcurrent drives the pooled kernels from many goroutines —
// the scoring worker pool's usage pattern — and cross-checks against the
// serial result (run with -race in CI).
func TestKernelsConcurrent(t *testing.T) {
	words := make([]string, 64)
	for i := range words {
		words[i] = randASCII(3+i%12, int64(i))
	}
	type key struct{ i, j int }
	want := make(map[key][2]float64)
	for i := range words {
		for j := range words {
			want[key{i, j}] = [2]float64{Jaro(words[i], words[j]), float64(Levenshtein(words[i], words[j]))}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range words {
				for j := range words {
					k := key{i, j}
					if got := Jaro(words[i], words[j]); got != want[k][0] {
						t.Errorf("concurrent Jaro(%q, %q) = %v, want %v", words[i], words[j], got, want[k][0])
						return
					}
					if got := Levenshtein(words[i], words[j]); float64(got) != want[k][1] {
						t.Errorf("concurrent Levenshtein(%q, %q) = %v, want %v", words[i], words[j], got, want[k][1])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
