package similarity

import (
	"math"
	"strconv"

	"repro/internal/record"
)

// GeoDistancer resolves the distance in kilometres between two named
// places. A gazetteer satisfies this interface.
type GeoDistancer interface {
	Distance(cityA, cityB string) (km float64, ok bool)
}

// CoordResolver is an optional interface a GeoDistancer may implement to
// let callers resolve a place name to coordinates once and compute many
// distances from the cached result. Implementations must keep the two
// views consistent: Distance(a, b) succeeds iff ResolveCoord succeeds for
// both names, and returns the great-circle distance between the resolved
// coordinates — so precomputing coordinates yields bit-identical
// distances.
type CoordResolver interface {
	ResolveCoord(city string) (lat, lon float64, ok bool)
}

// Date-component normalization factors of the paper's BXDist features and
// Eq. 1: 31 for days, 12 for months. Years use 50 inside fsim (Eq. 1) and
// 100 for the BYearDist feature, per the paper's two definitions.
const (
	DayRange       = 31
	MonthRange     = 12
	FsimYearRange  = 50
	FeatYearRange  = 100
	FsimGeoRangeKm = 100
)

// DateDist returns |a-b| for two numeric date-component strings. ok is
// false when either fails to parse.
func DateDist(a, b string) (d float64, ok bool) {
	x, errX := strconv.Atoi(a)
	y, errY := strconv.Atoi(b)
	if errX != nil || errY != nil {
		return 0, false
	}
	return math.Abs(float64(x - y)), true
}

// ItemSim is the expert item similarity function of Eq. 1: items of
// different types are dissimilar; names compare by Jaro–Winkler; date
// components by normalized absolute distance; place cities by normalized
// geographic distance. Non-city place parts, gender, and profession fall
// back to exact match, and unparseable values score 0.
type ItemSim struct {
	// Geo resolves city distances. When nil, cities fall back to exact
	// string comparison.
	Geo GeoDistancer
}

// Compare returns fsim(a, b) in [0,1].
func (s ItemSim) Compare(a, b record.Item) float64 {
	if a.Type != b.Type {
		return 0
	}
	t := a.Type
	switch {
	case t.IsName():
		return JaroWinkler(a.Value, b.Value)
	case t == record.BirthYear:
		return normalizedDateSim(a.Value, b.Value, FsimYearRange)
	case t == record.BirthMonth:
		return normalizedDateSim(a.Value, b.Value, MonthRange)
	case t == record.BirthDay:
		return normalizedDateSim(a.Value, b.Value, DayRange)
	case t.IsPlace():
		if _, part, _ := t.Place(); part == record.City && s.Geo != nil {
			if km, ok := s.Geo.Distance(a.Value, b.Value); ok {
				return math.Max(0, 1-km/FsimGeoRangeKm)
			}
		}
		return exact(a.Value, b.Value)
	default:
		return exact(a.Value, b.Value)
	}
}

func normalizedDateSim(a, b string, rangeMax float64) float64 {
	d, ok := DateDist(a, b)
	if !ok {
		return 0
	}
	return math.Max(0, 1-d/rangeMax)
}

func exact(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}
