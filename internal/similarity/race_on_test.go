//go:build race

package similarity

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
