package similarity

import (
	"math/rand"
	"testing"

	"repro/internal/names"
)

// FuzzJaccardQGrams guards the q-gram kernel the feature profile cache
// snapshots per record: whatever the inputs, the similarity must stay in
// [0,1], be symmetric, score a string against itself as 1, and agree with
// the precomputed-set path (JaccardSets over QGrams) bit for bit.
func FuzzJaccardQGrams(f *testing.F) {
	// Seed corpus: clean names plus corrupted generator output — the
	// clerical-error variants the pipeline actually compares.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []string{"Guido", "Foa", "Avraham", "Rywka", "Capelluto", "Torino", ""} {
		f.Add(n, n, 2)
		f.Add(n, names.Corrupt(rng, n), 2)
		f.Add(names.Corrupt(rng, n), names.Corrupt(rng, n), 3)
	}
	f.Add("a", "b", 0)
	f.Add("héllo", "hèllo", 2) // multi-byte runes
	f.Fuzz(func(t *testing.T, a, b string, q int) {
		// QGrams pads with q-1 runes; clamp q to keep memory bounded.
		if q < 1 {
			q = 1
		}
		q = 1 + q%8
		s := JaccardQGrams(a, b, q)
		if s < 0 || s > 1 {
			t.Fatalf("JaccardQGrams(%q, %q, %d) = %v out of [0,1]", a, b, q, s)
		}
		if rev := JaccardQGrams(b, a, q); rev != s {
			t.Fatalf("asymmetric: (%q,%q)=%v but (%q,%q)=%v", a, b, s, b, a, rev)
		}
		if self := JaccardQGrams(a, a, q); self != 1 {
			t.Fatalf("JaccardQGrams(%q, %q, %d) = %v, want 1", a, a, q, self)
		}
		if viaSets := JaccardSets(QGrams(a, q), QGrams(b, q)); viaSets != s {
			t.Fatalf("JaccardSets disagrees with JaccardQGrams: %v vs %v", viaSets, s)
		}
	})
}
