package similarity

import (
	"math/rand"
	"testing"

	"repro/internal/names"
)

// FuzzJaccardQGrams guards the q-gram kernel the feature profile cache
// snapshots per record: whatever the inputs, the similarity must stay in
// [0,1], be symmetric, score a string against itself as 1, and agree with
// the precomputed-set path (JaccardSets over QGrams) bit for bit.
// jaroRef is the seed's rune-allocating Jaro — the reference the tiered
// kernel (ASCII fast path + pooled scratch) is fuzzed against.
func jaroRef(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// jaroWinklerRef applies the standard Winkler prefix boost to jaroRef.
func jaroWinklerRef(a, b string) float64 {
	const (
		prefixScale = 0.1
		prefixCap   = 4
	)
	j := jaroRef(a, b)
	ra, rb := []rune(a), []rune(b)
	l := 0
	for l < len(ra) && l < len(rb) && l < prefixCap && ra[l] == rb[l] {
		l++
	}
	return j + float64(l)*prefixScale*(1-j)
}

// levenshteinRef is the seed's slice-allocating Levenshtein reference.
func levenshteinRef(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// FuzzKernelEquivalence pins the rebuilt kernels — ASCII fast paths with
// pooled scratch, and the interned sorted-ID q-gram Jaccard — against the
// retained rune/map reference implementations on arbitrary inputs,
// including non-ASCII strings and values containing the q-gram padding
// rune '#'. Equality is exact (==), not approximate: the fast paths must
// execute the identical arithmetic.
func FuzzKernelEquivalence(f *testing.F) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []string{"Guido", "Foa", "Avraham", "Rywka", "Capelluto", "Torino", ""} {
		f.Add(n, n, 2)
		f.Add(n, names.Corrupt(rng, n), 2)
	}
	f.Add("##a", "a##", 2)          // padding runes inside values
	f.Add("héllo", "hèllo", 3)      // multi-byte runes
	f.Add("a", "b", 1)              // single-rune window edge
	f.Add("ab", "ba", 2)            // transposition
	f.Add("Mandelbaum", "Mandelboim", 4)
	f.Fuzz(func(t *testing.T, a, b string, q int) {
		if q < 1 {
			q = 1
		}
		q = 1 + q%8

		if got, want := Jaro(a, b), jaroRef(a, b); got != want {
			t.Fatalf("Jaro(%q, %q) = %v, reference %v", a, b, got, want)
		}
		if got, want := JaroWinkler(a, b), jaroWinklerRef(a, b); got != want {
			t.Fatalf("JaroWinkler(%q, %q) = %v, reference %v", a, b, got, want)
		}
		if got, want := Levenshtein(a, b), levenshteinRef(a, b); got != want {
			t.Fatalf("Levenshtein(%q, %q) = %d, reference %d", a, b, got, want)
		}

		// Interned sorted-ID Jaccard against the map reference.
		in := NewInterner()
		ga, gb := QGramIDs(in, a, q), QGramIDs(in, b, q)
		if got, want := JaccardSortedIDs(ga, gb), JaccardQGrams(a, b, q); got != want {
			t.Fatalf("JaccardSortedIDs(%q, %q, q=%d) = %v, reference %v", a, b, q, got, want)
		}
		// The interned gram set must be exactly QGrams's set.
		if set := QGrams(a, q); len(set) != len(ga) {
			t.Fatalf("QGramIDs(%q, %d) has %d grams, QGrams has %d", a, q, len(ga), len(set))
		}
		// And agree with the directly-derived ordered list.
		if list := QGramsList(a, q); len(list) != len(ga) {
			t.Fatalf("QGramsList(%q, %d) has %d grams, QGramIDs has %d", a, q, len(list), len(ga))
		}
	})
}

func FuzzJaccardQGrams(f *testing.F) {
	// Seed corpus: clean names plus corrupted generator output — the
	// clerical-error variants the pipeline actually compares.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []string{"Guido", "Foa", "Avraham", "Rywka", "Capelluto", "Torino", ""} {
		f.Add(n, n, 2)
		f.Add(n, names.Corrupt(rng, n), 2)
		f.Add(names.Corrupt(rng, n), names.Corrupt(rng, n), 3)
	}
	f.Add("a", "b", 0)
	f.Add("héllo", "hèllo", 2) // multi-byte runes
	f.Fuzz(func(t *testing.T, a, b string, q int) {
		// QGrams pads with q-1 runes; clamp q to keep memory bounded.
		if q < 1 {
			q = 1
		}
		q = 1 + q%8
		s := JaccardQGrams(a, b, q)
		if s < 0 || s > 1 {
			t.Fatalf("JaccardQGrams(%q, %q, %d) = %v out of [0,1]", a, b, q, s)
		}
		if rev := JaccardQGrams(b, a, q); rev != s {
			t.Fatalf("asymmetric: (%q,%q)=%v but (%q,%q)=%v", a, b, s, b, a, rev)
		}
		if self := JaccardQGrams(a, a, q); self != 1 {
			t.Fatalf("JaccardQGrams(%q, %q, %d) = %v, want 1", a, a, q, self)
		}
		if viaSets := JaccardSets(QGrams(a, q), QGrams(b, q)); viaSets != s {
			t.Fatalf("JaccardSets disagrees with JaccardQGrams: %v vs %v", viaSets, s)
		}
	})
}
