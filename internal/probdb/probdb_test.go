package probdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

func TestCalibration(t *testing.T) {
	c := NewCalibration()
	if p := c.Prob(0); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("Prob(0) = %v, want 0.5", p)
	}
	if c.Prob(5) <= c.Prob(1) || c.Prob(-5) >= c.Prob(-1) {
		t.Error("calibration not monotone")
	}
	f := func(score float64) bool {
		p := c.Prob(score)
		// Extreme scores saturate to exactly 0 or 1 in float64.
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Moderate scores stay strictly inside (0,1).
	for _, score := range []float64{-20, -2, 0, 2, 20} {
		if p := c.Prob(score); p <= 0 || p >= 1 {
			t.Errorf("Prob(%v) = %v, want in (0,1)", score, p)
		}
	}
	// Zero scale falls back to 1.
	z := Calibration{}
	if p := z.Prob(1); p <= 0.5 {
		t.Errorf("zero-scale Prob(1) = %v", p)
	}
}

func storeFixture(t *testing.T) *Store {
	t.Helper()
	s := New([]int64{1, 2, 3, 4})
	mustAdd := func(a, b int64, p float64) {
		t.Helper()
		if err := s.Add(record.MakePair(a, b), p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(1, 2, 0.9)
	mustAdd(2, 3, 0.9)
	mustAdd(3, 4, 0.05)
	return s
}

func TestAddValidation(t *testing.T) {
	s := New([]int64{1, 2})
	if err := s.Add(record.MakePair(1, 9), 0.5); err == nil {
		t.Error("unknown record accepted")
	}
	if err := s.Add(record.Pair{A: 1, B: 1}, 0.5); err == nil {
		t.Error("self edge accepted")
	}
	if err := s.Add(record.MakePair(1, 2), 7); err != nil {
		t.Fatal(err)
	}
	if got := s.DirectProb(record.MakePair(1, 2)); got != 1 {
		t.Errorf("clamped prob = %v", got)
	}
}

func TestSameEntityProbTransitive(t *testing.T) {
	s := storeFixture(t)
	// Direct edge 1-3 does not exist...
	if got := s.DirectProb(record.MakePair(1, 3)); got != 0 {
		t.Errorf("DirectProb(1,3) = %v", got)
	}
	// ...but transitively P(1~3) ≈ 0.81.
	p, err := s.SameEntityProb(1, 3, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.81) > 0.05 {
		t.Errorf("P(1~3) = %v, want ~0.81", p)
	}
	// The weak 3-4 edge stays weak.
	p, err = s.SameEntityProb(1, 4, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.15 {
		t.Errorf("P(1~4) = %v, want small", p)
	}
	if _, err := s.SameEntityProb(1, 99, 10, 1); err == nil {
		t.Error("unknown record accepted")
	}
}

func TestExpectedEntities(t *testing.T) {
	s := storeFixture(t)
	got := s.ExpectedEntities(4000, 11)
	// Analytic: E[#entities] = 4 - P(1-2) - P(2-3) - P(3-4 merges)
	// Approximately: with independent edges over a path graph, expected
	// merges = sum of edge probs (no cycles) = 0.9+0.9+0.05 = 1.85.
	want := 4 - 1.85
	if math.Abs(got-want) > 0.1 {
		t.Errorf("ExpectedEntities = %v, want ~%v", got, want)
	}
}

func TestWorldClosure(t *testing.T) {
	s := New([]int64{1, 2, 3})
	if err := s.Add(record.MakePair(1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(record.MakePair(2, 3), 1); err != nil {
		t.Fatal(err)
	}
	w := s.World(rand.New(rand.NewSource(1)))
	if w[0] != w[1] || w[1] != w[2] {
		t.Errorf("certain edges must close transitively: %v", w)
	}
}

func TestMostLikelyWorld(t *testing.T) {
	s := storeFixture(t)
	groups := s.MostLikelyWorld()
	// Edges > 0.5: 1-2 and 2-3 -> {1,2,3}, {4}.
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != 1 {
		t.Errorf("first group = %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0] != 4 {
		t.Errorf("second group = %v", groups[1])
	}
}

func TestSamplingDeterministicUnderSeed(t *testing.T) {
	s := storeFixture(t)
	a, _ := s.SameEntityProb(1, 3, 500, 42)
	b, _ := s.SameEntityProb(1, 3, 500, 42)
	if a != b {
		t.Errorf("same seed gave %v vs %v", a, b)
	}
}
