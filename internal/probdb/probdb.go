// Package probdb materializes the probabilistic-database view of
// uncertain entity resolution (Section 3.2): pairwise comparisons are
// retained as a same-as relation with match probabilities, and entities
// are resolved only at query time — here by Monte-Carlo sampling over
// possible worlds, where each world draws every same-as edge
// independently and takes the transitive closure.
//
// The paper stops short of a probability distribution and keeps raw
// ranked scores; this package is the natural extension it cites
// (Andritsos et al.; Beskales et al.; Ioannou et al.): ADTree confidence
// scores are calibrated into probabilities with a logistic map, enabling
// queries such as "with what probability do these two reports describe
// one person?" and "how many victims do these reports describe in
// expectation?".
package probdb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/record"
)

// Calibration maps a ranking score to a match probability.
type Calibration struct {
	// Scale is the logistic steepness: p = 1/(1+exp(-Scale*score)).
	Scale float64
}

// NewCalibration returns the default logistic steepness, chosen so that
// an ADTree score of +2 maps to ~0.88.
func NewCalibration() Calibration { return Calibration{Scale: 1.0} }

// Prob maps a score to (0,1).
func (c Calibration) Prob(score float64) float64 {
	s := c.Scale
	if s == 0 {
		s = 1
	}
	return 1 / (1 + math.Exp(-s*score))
}

// Edge is one same-as fact.
type Edge struct {
	Pair record.Pair
	Prob float64
}

// Store holds the same-as relation over a fixed record universe.
type Store struct {
	ids   []int64
	index map[int64]int
	edges []Edge
}

// New builds a store over the record universe. Edges are added with Add.
func New(ids []int64) *Store {
	s := &Store{ids: append([]int64(nil), ids...), index: make(map[int64]int, len(ids))}
	sort.Slice(s.ids, func(i, j int) bool { return s.ids[i] < s.ids[j] })
	for i, id := range s.ids {
		s.index[id] = i
	}
	return s
}

// Add records a same-as edge. Probabilities are clamped to [0,1]; edges
// touching unknown records or self-pairs are rejected.
func (s *Store) Add(p record.Pair, prob float64) error {
	if _, ok := s.index[p.A]; !ok {
		return fmt.Errorf("probdb: unknown record %d", p.A)
	}
	if _, ok := s.index[p.B]; !ok {
		return fmt.Errorf("probdb: unknown record %d", p.B)
	}
	if p.A == p.B {
		return fmt.Errorf("probdb: self edge %d", p.A)
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	s.edges = append(s.edges, Edge{Pair: p, Prob: prob})
	return nil
}

// Len returns the number of records; Edges the same-as facts.
func (s *Store) Len() int      { return len(s.ids) }
func (s *Store) Edges() []Edge { return s.edges }

// DirectProb returns the stored probability of the pair (the maximum over
// duplicate edges), or 0.
func (s *Store) DirectProb(p record.Pair) float64 {
	best := 0.0
	for _, e := range s.edges {
		if e.Pair == p && e.Prob > best {
			best = e.Prob
		}
	}
	return best
}

// World samples one possible world: every edge is drawn independently,
// and the world's entities are the transitive closure. It returns the
// root index per record.
func (s *Store) World(rng *rand.Rand) []int {
	parent := make([]int, len(s.ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range s.edges {
		if rng.Float64() < e.Prob {
			ra, rb := find(s.index[e.Pair.A]), find(s.index[e.Pair.B])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	for i := range parent {
		parent[i] = find(i)
	}
	return parent
}

// SameEntityProb estimates, over `samples` possible worlds, the
// probability that the two records resolve to the same entity — including
// transitively, which DirectProb cannot see.
func (s *Store) SameEntityProb(a, b int64, samples int, seed int64) (float64, error) {
	ia, ok := s.index[a]
	if !ok {
		return 0, fmt.Errorf("probdb: unknown record %d", a)
	}
	ib, ok := s.index[b]
	if !ok {
		return 0, fmt.Errorf("probdb: unknown record %d", b)
	}
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for k := 0; k < samples; k++ {
		w := s.World(rng)
		if w[ia] == w[ib] {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}

// ExpectedEntities estimates the expected number of distinct entities —
// the paper's deterministic-answer use case ("the number of people
// perished ... requires a single deterministic answer") served from the
// uncertain relation.
func (s *Store) ExpectedEntities(samples int, seed int64) float64 {
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for k := 0; k < samples; k++ {
		w := s.World(rng)
		roots := make(map[int]struct{})
		for _, r := range w {
			roots[r] = struct{}{}
		}
		total += len(roots)
	}
	return float64(total) / float64(samples)
}

// MostLikelyWorld returns the single crisp clustering that accepts
// exactly the edges with probability > 0.5 — the maximum-probability
// world under edge independence — as groups of BookIDs.
func (s *Store) MostLikelyWorld() [][]int64 {
	parent := make([]int, len(s.ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range s.edges {
		if e.Prob > 0.5 {
			ra, rb := find(s.index[e.Pair.A]), find(s.index[e.Pair.B])
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	groups := make(map[int][]int64)
	for i, id := range s.ids {
		root := find(i)
		groups[root] = append(groups[root], id)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int64, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
