package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

// benchPersons shrinks the datasets so each benchmark iteration — a full
// regeneration of one table or figure, dataset included — stays in the
// seconds range. yvbench -scale full runs the paper-scale versions.
const benchPersons = 250

// benchExperiment regenerates one experiment end to end per iteration: a
// fresh runner (no memoized artifacts) generates the datasets, runs the
// pipelines, and prints the table to io.Discard.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp := experiments.ByID(id)
	if exp == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Quick)
		r.PersonsOverride = benchPersons
		if err := exp.Run(r, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable3 regenerates the item-type prevalence table (Table 3).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates the item-type cardinality table (Table 4).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig8 regenerates the tag-by-similarity-bin analysis (Figure 8).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig11 regenerates the data-pattern histogram (Figure 11).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates the FP-Growth runtime study (Figure 12).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkTable5 regenerates the Maybe-handling accuracy table (Table 5).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6 regenerates the MV-source accuracy table (Table 6).
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7 retrains and renders the full-set ADT model (Table 7).
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8 retrains and renders the MV-less ADT model (Table 8).
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkFig15 regenerates the F1-by-NG/MaxMinSup sweep (Figure 15).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates the P/R-by-NG/MaxMinSup sweep (Figure 16).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkTable9 regenerates the varying-conditions quality table
// (Table 9).
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9") }

// BenchmarkTable10 regenerates the comparative blocking table (Table 10).
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }

// BenchmarkAblationScoring runs the block-scoring ablation.
func BenchmarkAblationScoring(b *testing.B) { benchExperiment(b, "ablation-scoring") }

// BenchmarkAblationBoostingRounds runs the boosting-rounds ablation.
func BenchmarkAblationBoostingRounds(b *testing.B) { benchExperiment(b, "ablation-rounds") }

// BenchmarkAblationMaximality runs the MFI-mining-strategy ablation.
func BenchmarkAblationMaximality(b *testing.B) { benchExperiment(b, "ablation-maximality") }

// BenchmarkAblationPruning runs the frequent-item-pruning ablation.
func BenchmarkAblationPruning(b *testing.B) { benchExperiment(b, "ablation-pruning") }

// BenchmarkAblationWorkers runs the parallel-construction ablation.
func BenchmarkAblationWorkers(b *testing.B) { benchExperiment(b, "ablation-workers") }

// BenchmarkAblationScoringWorkers runs the parallel pair-scoring ablation:
// the serial seed path against the profiled worker pool.
func BenchmarkAblationScoringWorkers(b *testing.B) { benchExperiment(b, "ablation-scoring-workers") }

// BenchmarkAblationMetaBlocking runs the comparison-cleaning ablation.
func BenchmarkAblationMetaBlocking(b *testing.B) { benchExperiment(b, "ablation-metablocking") }
